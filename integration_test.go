package repro

import (
	"math"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/trial"
	"repro/internal/vclock"
)

// integrationExperiment is a mid-size job touching every subsystem.
func integrationExperiment(policy core.Policy, seed uint64) *core.Experiment {
	cp := sim.DefaultCloudProfile()
	cp.DatasetGB = model.CIFAR10.SizeGB
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Exponential{MeanValue: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	return &core.Experiment{
		Model:          model.ResNet101(),
		Space:          searchspace.DefaultVisionSpace(),
		Spec:           spec.MustSHA(16, 1, 20, 2),
		Cloud:          cp,
		Deadline:       20 * time.Minute,
		Policy:         policy,
		Seed:           seed,
		Samples:        10,
		MaxGPUs:        64,
		RestoreSeconds: 2,
	}
}

// TestIntegrationFullPipeline drives profile→plan→execute across the
// whole stack and cross-checks invariants that only hold when every
// subsystem cooperates.
func TestIntegrationFullPipeline(t *testing.T) {
	e := integrationExperiment(core.PolicyRubberBand, 77)
	e.UseProfiler = true
	rec := trace.New()
	e.Trace = rec

	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}

	// 1. The plan respects the deadline in prediction and execution.
	if res.Predicted.JCT > e.Deadline.Seconds() {
		t.Errorf("predicted JCT %v over deadline", res.Predicted.JCT)
	}
	if res.Actual.JCT > e.Deadline.Seconds()*1.1 {
		t.Errorf("realized JCT %v blew the deadline by >10%%", res.Actual.JCT)
	}

	// 2. Prediction and execution agree.
	if d := math.Abs(res.Actual.JCT-res.Predicted.JCT) / res.Predicted.JCT; d > 0.2 {
		t.Errorf("sim/real JCT divergence %.0f%%", d*100)
	}
	if d := math.Abs(res.Actual.Cost-res.Predicted.Cost) / res.Predicted.Cost; d > 0.25 {
		t.Errorf("sim/real cost divergence %.0f%%", d*100)
	}

	// 3. Per-stage realized costs sum to (almost) the total: the gap is
	// the final stage's teardown-to-total residue, which is zero because
	// the last barrier coincides with job completion.
	var stageCost float64
	for _, row := range res.Actual.Schedule {
		stageCost += row.Cost
	}
	if math.Abs(stageCost-res.Actual.Cost) > 0.01*res.Actual.Cost+1e-6 {
		t.Errorf("stage costs %v != total %v", stageCost, res.Actual.Cost)
	}

	// 4. The event trace reconstructs the schedule.
	stages := trace.StageBreakdown(rec.Events())
	if len(stages) != e.Spec.NumStages() {
		t.Fatalf("trace has %d stages, want %d", len(stages), e.Spec.NumStages())
	}
	for i, s := range stages {
		row := res.Actual.Schedule[i]
		if math.Abs(s.Duration()-float64(row.End-row.Start)) > 1e-9 {
			t.Errorf("stage %d: trace duration %v != schedule %v", i, s.Duration(), row.End-row.Start)
		}
	}
	// Total kills = trials - 1 (single survivor).
	kills := 0
	for _, s := range stages {
		kills += s.Kills
	}
	if kills != e.Spec.TotalTrials()-1 {
		t.Errorf("kills = %d, want %d", kills, e.Spec.TotalTrials()-1)
	}

	// 5. Gantt spans cover every trial without overlap per trial.
	spans := trace.TrialSpans(rec.Events())
	seen := make(map[int]bool)
	for _, s := range spans {
		if s.End < s.Start {
			t.Errorf("negative span %+v", s)
		}
		seen[s.Trial] = true
	}
	if len(seen) != e.Spec.TotalTrials() {
		t.Errorf("spans cover %d trials, want %d", len(seen), e.Spec.TotalTrials())
	}
}

// TestIntegrationPolicyOrdering checks the headline cost ordering across
// all three policies, realized end-to-end, at a tight deadline.
func TestIntegrationPolicyOrdering(t *testing.T) {
	costs := make(map[core.Policy]float64)
	for _, policy := range []core.Policy{core.PolicyStatic, core.PolicyNaiveElastic, core.PolicyRubberBand} {
		e := integrationExperiment(policy, 78)
		e.Deadline = 8 * time.Minute
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		costs[policy] = res.Actual.Cost
	}
	if costs[core.PolicyRubberBand] > costs[core.PolicyStatic]*1.02 {
		t.Errorf("RubberBand %v above static %v", costs[core.PolicyRubberBand], costs[core.PolicyStatic])
	}
	if costs[core.PolicyRubberBand] > costs[core.PolicyNaiveElastic]*1.02 {
		t.Errorf("RubberBand %v above naive %v", costs[core.PolicyRubberBand], costs[core.PolicyNaiveElastic])
	}
}

// TestIntegrationMinJCTDual verifies the dual planner against the primal:
// the min-JCT plan at budget B must be at least as fast as the min-cost
// plan whose cost it matches.
func TestIntegrationMinJCTDual(t *testing.T) {
	e := integrationExperiment(core.PolicyRubberBand, 79)
	prof := sim.ModelTrainProfile{Model: e.Model, Batch: e.Model.BaseBatch, GPUsPerNode: e.Cloud.Instance.GPUs}
	sm, err := sim.New(e.Spec, prof, e.Cloud, 10, stats.NewRNG(79))
	if err != nil {
		t.Fatal(err)
	}
	p := &planner.Planner{Sim: sm, Deadline: e.Deadline.Seconds(), MaxGPUs: 64}
	primal, err := p.PlanElastic()
	if err != nil {
		t.Fatal(err)
	}
	dual, err := p.PlanMinJCT(primal.Estimate.Cost * 1.02)
	if err != nil {
		t.Fatal(err)
	}
	if dual.Estimate.JCT > primal.Estimate.JCT*1.05 {
		t.Errorf("dual plan (JCT %v) slower than primal (%v) at the primal's own budget",
			dual.Estimate.JCT, primal.Estimate.JCT)
	}
}

// TestIntegrationPreemptionUnderRealWorkload runs the full facade on spot
// capacity with aggressive preemption and verifies the tournament's
// integrity end to end.
func TestIntegrationPreemptionUnderRealWorkload(t *testing.T) {
	e := integrationExperiment(core.PolicyRubberBand, 80)
	e.Cloud.Pricing.Market = cloud.Spot
	e.Faults = cloud.FaultModel{PreemptionMeanSeconds: 300}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Actual.Preemptions == 0 {
		t.Skip("no preemption materialized at this seed")
	}
	completed := 0
	for _, tr := range res.Actual.Trials {
		if tr.State() == trial.Completed {
			completed++
			if tr.CumIters() != e.Spec.MaxIters() {
				t.Errorf("winner trained %d iters, want %d", tr.CumIters(), e.Spec.MaxIters())
			}
		}
	}
	if completed != 1 {
		t.Errorf("completed = %d", completed)
	}
}

// TestIntegrationExecutorDirect drives the executor with manually wired
// substrate (the way power users bypass the facade) and checks usage
// metering consistency between trace and provider.
func TestIntegrationExecutorDirect(t *testing.T) {
	clock := vclock.New()
	rng := stats.NewRNG(81)
	pricing := cloud.Pricing{Billing: cloud.PerFunction}
	ov := cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 1},
		InitLatency: stats.Deterministic{Value: 1},
	}
	provider, err := cloud.NewProvider(clock, rng.Split(), pricing, ov, 0)
	if err != nil {
		t.Fatal(err)
	}
	it, err := cloud.DefaultCatalog().Lookup("p3.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := cluster.NewManager(provider, it, clock)
	if err != nil {
		t.Fatal(err)
	}
	m := model.ResNet101()
	m.IterNoiseStd = 0
	s := spec.MustSHA(8, 1, 8, 2)
	rec := trace.New()
	res, err := executor.Run(executor.Config{
		Spec:     s,
		Plan:     sim.Uniform(8, s.NumStages()),
		Model:    m,
		Batch:    m.BaseBatch,
		Configs:  searchspace.DefaultVisionSpace().SampleN(rng, 8),
		Provider: provider,
		Cluster:  mgr,
		Clock:    clock,
		RNG:      rng,
		Trace:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Under per-function billing, cost = busy GPU-seconds × rate; the
	// trace's busy accounting must therefore price out to the bill.
	want := rec.BusyGPUSeconds() * it.PricePerGPUSecond(cloud.OnDemand)
	if math.Abs(res.Cost-want) > 1e-6 {
		t.Errorf("per-function bill %v != metered %v", res.Cost, want)
	}
}
