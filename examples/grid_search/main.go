// grid_search reproduces the paper's Figure 2 background: a basic
// hyperparameter grid search where every configuration trains to its full
// budget — and contrasts it with Successive Halving on the same grid
// under RubberBand, which reaches an equally good configuration at a
// fraction of the cost by pruning hopeless candidates early.
//
//	go run ./examples/grid_search
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/vclock"
)

func main() {
	m := model.ResNet101()
	space := searchspace.MustNew(
		searchspace.LogUniform{Key: "lr", Lo: 1e-3, Hi: 1},
		searchspace.Uniform{Key: "momentum", Lo: 0.85, Hi: 0.95},
		searchspace.LogUniform{Key: "weight_decay", Lo: 1e-5, Hi: 1e-3},
	)
	grid, err := space.Grid(3, 0) // 27 configurations
	if err != nil {
		log.Fatal(err)
	}
	const fullBudget = 27 // epochs per configuration at convergence

	// --- Grid search: every config trains the full budget, one stage,
	// no pruning. Run it on the simulated cloud with a static cluster.
	clock := vclock.New()
	rng := stats.NewRNG(7)
	cp := sim.DefaultCloudProfile()
	provider, err := cloud.NewProvider(clock, rng.Split(), cp.Pricing, cloud.DefaultOverheads(), m.Dataset.SizeGB)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := cluster.NewManager(provider, cp.Instance, clock)
	if err != nil {
		log.Fatal(err)
	}
	gridSpec := spec.Empty().AddStage(len(grid), fullBudget)
	gridRes, err := executor.Run(executor.Config{
		Spec:     gridSpec,
		Plan:     sim.NewPlan(len(grid)), // one GPU per config
		Model:    m,
		Batch:    m.BaseBatch,
		Configs:  grid,
		Provider: provider,
		Cluster:  mgr,
		Clock:    clock,
		RNG:      rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid search:  %2d configs x %d epochs  cost $%6.2f  JCT %5.0fs  best %.1f%%\n",
		len(grid), fullBudget, gridRes.Cost, gridRes.JCT, gridRes.BestAccuracy*100)

	// --- Successive Halving over the same search space, planned by
	// RubberBand against the grid search's realized JCT as the deadline.
	exp := &core.Experiment{
		Model:          m,
		Space:          space,
		Spec:           spec.MustSHA(27, 1, fullBudget, 3),
		Deadline:       time.Duration(gridRes.JCT * float64(time.Second)),
		Policy:         core.PolicyRubberBand,
		Seed:           7,
		RestoreSeconds: 2,
	}
	shaRes, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SHA + RubberBand: 27 -> 9 -> 3 -> 1   cost $%6.2f  JCT %5.0fs  best %.1f%%\n",
		shaRes.Actual.Cost, shaRes.Actual.JCT, shaRes.Actual.BestAccuracy*100)
	fmt.Printf("\nearly stopping + elastic allocation cut cost %.1fx — and random sampling\n", gridRes.Cost/shaRes.Actual.Cost)
	fmt.Println("covered the space better than the coarse 3-point-per-axis grid did")
}
