// straggler_study explores the interaction of straggler variance and
// billing granularity (§6.1.1, Figure 9): the same tuning job is priced
// under per-instance and per-function billing while the per-iteration
// latency noise grows, showing why synchronization barriers make
// stragglers expensive when idle resources are still metered.
//
//	go run ./examples/straggler_study
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	sha := spec.MustSHA(64, 4, 508, 2)
	fmt.Printf("SHA job %v, ResNet-50 @ batch 512, p3.8xlarge workers\n\n", sha)
	fmt.Printf("%-8s %-14s %-14s %-9s\n", "σ (s)", "per-instance", "per-function", "ratio")

	// A fixed front-loaded elastic plan: one GPU per trial early, the
	// survivor on a single node late.
	plan := sim.NewPlan(64, 32, 16, 8, 8, 4, 4)

	for _, sigma := range []float64{0, 1, 2, 4, 6, 8, 10} {
		m := model.ResNet50()
		m.IterNoiseStd = sigma

		cost := func(billing cloud.BillingModel) float64 {
			it, err := cloud.DefaultCatalog().Lookup("p3.8xlarge")
			if err != nil {
				log.Fatal(err)
			}
			cp := sim.CloudProfile{
				Instance: it,
				Pricing: cloud.Pricing{
					Billing:          billing,
					MinChargeSeconds: 60,
				},
				Overheads: cloud.Overheads{
					QueueDelay:  stats.Deterministic{Value: 5},
					InitLatency: stats.Deterministic{Value: 0},
				},
			}
			prof := sim.ModelTrainProfile{Model: m, Batch: 512, GPUsPerNode: it.GPUs}
			sm, err := sim.New(sha, prof, cp, 50, stats.NewRNG(uint64(sigma*10)+1))
			if err != nil {
				log.Fatal(err)
			}
			est, err := sm.Estimate(plan)
			if err != nil {
				log.Fatal(err)
			}
			return est.Cost
		}

		perInst := cost(cloud.PerInstance)
		perFn := cost(cloud.PerFunction)
		fmt.Printf("%-8g $%-13.2f $%-13.2f %.2fx\n", sigma, perInst, perFn, perInst/perFn)
	}
	fmt.Println("\nper-instance billing pays for idle GPUs held at stage barriers;")
	fmt.Println("per-function billing releases them the moment a trial finishes.")
}
