// Quickstart: tune a ResNet-101 on CIFAR-10 with RubberBand in under a
// minute of real time.
//
// The example builds a Successive Halving experiment, lets RubberBand
// compile a cost-minimizing elastic allocation plan against a 20-minute
// deadline, executes it end-to-end on the simulated cloud, and prints the
// plan, the cost, and the winning hyperparameters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/spec"
)

func main() {
	// 1. Describe the tuning job: 32 candidate configurations, pruned by
	//    Successive Halving with η=3 down to one survivor trained for 50
	//    epochs (the paper's Table 2 workload).
	sha := spec.MustSHA(32, 1, 50, 3)

	// 2. Pick the model and the search space to sample configurations
	//    from.
	exp := &core.Experiment{
		Model:    model.ResNet101(),
		Space:    searchspace.DefaultVisionSpace(),
		Spec:     sha,
		Deadline: 20 * time.Minute,
		Policy:   core.PolicyRubberBand,
		Seed:     7,
	}

	// 3. Plan and execute. RubberBand profiles the model's scaling,
	//    searches the elastic allocation space, provisions the simulated
	//    cluster stage by stage, and runs the tournament.
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("spec:      %v\n", sha)
	fmt.Printf("plan:      %v GPUs across %d stages\n", res.Plan, sha.NumStages())
	fmt.Printf("predicted: JCT %.0fs  cost $%.2f\n", res.Predicted.JCT, res.Predicted.Cost)
	fmt.Printf("realized:  JCT %.0fs  cost $%.2f\n", res.Actual.JCT, res.Actual.Cost)
	fmt.Printf("winner:    %.1f%% accuracy with lr=%.4f\n",
		res.Actual.BestAccuracy*100, res.Actual.BestConfig.Float("lr"))
}
