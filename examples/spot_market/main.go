// spot_market explores the paper's deferred future work: running the
// tuning job on preemptible spot capacity. Spot instances cost ~3x less
// but are reclaimed at random; RubberBand's checkpoint/restore machinery
// absorbs the preemptions by replaying only the interrupted stage on
// automatically provisioned replacements.
//
// The example sweeps the preemption intensity and reports realized cost
// and JCT, showing the trade: cheap capacity vs recovery time — with the
// crossover point where spot stops paying off.
//
//	go run ./examples/spot_market
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	sha := spec.MustSHA(16, 1, 30, 3)
	run := func(market cloud.Market, preemptMean float64) (*core.Result, error) {
		cp := sim.DefaultCloudProfile()
		cp.Pricing.Market = market
		cp.DatasetGB = model.ResNet101().Dataset.SizeGB
		cp.Overheads = cloud.Overheads{
			QueueDelay:  stats.Deterministic{Value: 5},
			InitLatency: stats.Deterministic{Value: 15},
		}
		exp := &core.Experiment{
			Model:          model.ResNet101(),
			Space:          searchspace.DefaultVisionSpace(),
			Spec:           sha,
			Cloud:          cp,
			Deadline:       25 * time.Minute,
			Policy:         core.PolicyRubberBand,
			Seed:           17,
			RestoreSeconds: 5,
			Faults:         cloud.FaultModel{PreemptionMeanSeconds: preemptMean},
		}
		return exp.Run()
	}

	onDemand, err := run(cloud.OnDemand, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-26s cost $%5.2f  JCT %4.0fs  preemptions %d\n",
		"on-demand (baseline)", onDemand.Actual.Cost, onDemand.Actual.JCT, onDemand.Actual.Preemptions)

	for _, mean := range []float64{0, 3600, 1200, 600, 300} {
		res, err := run(cloud.Spot, mean)
		if err != nil {
			log.Fatal(err)
		}
		label := "spot, no preemption"
		if mean > 0 {
			label = fmt.Sprintf("spot, preempt mean %4.0fs", mean)
		}
		fmt.Printf("%-26s cost $%5.2f  JCT %4.0fs  preemptions %d\n",
			label, res.Actual.Cost, res.Actual.JCT, res.Actual.Preemptions)
	}
	fmt.Println("\nspot capacity is ~3x cheaper; preemptions add replayed work and")
	fmt.Println("restore latency, eroding the discount as reclamation intensifies.")
}
