// hyperband runs a full Hyperband(R=27, η=3) experiment as a RubberBand
// multi-job: each Successive Halving bracket is a declarative
// specification (Figure 6's "collection of specifications"), planned
// independently and executed *concurrently* on a shared virtual timeline
// — the multi-job's completion time is the slowest bracket, not the sum.
//
// The brackets trade exploration (many configurations, aggressive
// pruning) against exploitation (few configurations, full budgets);
// RubberBand shrinks each bracket's cluster as its trials are pruned and
// the global winner is taken across brackets.
//
//	go run ./examples/hyperband
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/spec"
)

func main() {
	brackets, err := spec.Hyperband(27, 3)
	if err != nil {
		log.Fatal(err)
	}

	exp := &core.Experiment{
		Model:          model.ResNet101(),
		Space:          searchspace.DefaultVisionSpace(),
		Deadline:       15 * time.Minute,
		Policy:         core.PolicyRubberBand,
		Seed:           100,
		RestoreSeconds: 2,
	}

	fmt.Printf("Hyperband(R=27, η=3): %d brackets, executed concurrently\n\n", len(brackets))
	res, err := exp.RunMultiJob(brackets)
	if err != nil {
		log.Fatal(err)
	}
	for i, b := range res.Brackets {
		fmt.Printf("bracket %d: spec %-28v plan %-18v cost $%5.2f  JCT %4.0fs  best %.1f%%\n",
			i, b.Spec, b.Plan, b.Actual.Cost, b.Actual.JCT, b.Actual.BestAccuracy*100)
	}
	fmt.Printf("\nmulti-job: total cost $%.2f, JCT %.0fs (slowest bracket, not the sum)\n",
		res.TotalCost, res.JCT)
	fmt.Printf("global winner: %.1f%% accuracy, lr=%.4f\n",
		res.BestAccuracy*100, res.BestConfig["lr"])
}
