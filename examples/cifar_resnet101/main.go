// cifar_resnet101 reproduces the paper's end-to-end comparison (§6.3.1,
// Table 2) at one deadline: tuning ResNet-101 on CIFAR-10 under a
// 20-minute constraint with the static, naive-elastic and RubberBand
// policies, reporting simulated and realized JCT/cost for each.
//
// The expected shape: RubberBand's cost is well below the static
// baseline's at this tight deadline; the naive elastic policy demands a
// huge first-stage cluster and still doesn't win.
//
//	go run ./examples/cifar_resnet101
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	m := model.ResNet101()
	sha := spec.MustSHA(32, 1, 50, 3)

	// 15-second provisioning from a warm pool, as in the paper's setup.
	cp := sim.DefaultCloudProfile()
	cp.DatasetGB = m.Dataset.SizeGB
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}

	fmt.Printf("tuning %s on %s, spec %v, deadline 20m\n\n", m.Name, m.Dataset.Name, sha)
	fmt.Printf("%-14s %-22s %-10s %-11s %-10s %-11s\n",
		"policy", "plan", "JCT sim", "cost sim", "JCT real", "cost real")

	for _, policy := range []core.Policy{core.PolicyStatic, core.PolicyNaiveElastic, core.PolicyRubberBand} {
		exp := &core.Experiment{
			Model:          m,
			Space:          searchspace.DefaultVisionSpace(),
			Spec:           sha,
			Cloud:          cp,
			Deadline:       20 * time.Minute,
			Policy:         policy,
			Seed:           11,
			MaxGPUs:        128,
			RestoreSeconds: 2,
		}
		pres, _, err := exp.Plan()
		if err != nil {
			log.Fatalf("%v: %v", policy, err)
		}
		if pres.Plan.Max() > 256 {
			fmt.Printf("%-14s %-22s (execution skipped: needs %d GPUs)\n",
				policy, pres.Plan, pres.Plan.Max())
			continue
		}
		actual, err := exp.Execute(pres.Plan)
		if err != nil {
			log.Fatalf("%v: %v", policy, err)
		}
		fmt.Printf("%-14s %-22s %-10.0f $%-10.2f %-10.0f $%-10.2f\n",
			policy, pres.Plan, pres.Estimate.JCT, pres.Estimate.Cost, actual.JCT, actual.Cost)
	}
}
