// bert_finetune tunes BERT fine-tuning hyperparameters on the RTE task
// (§6.3.2, Table 4's third row). BERT's heavy all-reduce traffic makes it
// the worst-scaling model in the zoo, so this example also prints the
// measured scaling profile to show why RubberBand's savings are smaller
// here than for the vision models: front-loading parallelism buys less
// when parallel efficiency decays quickly.
//
//	go run ./examples/bert_finetune
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/searchspace"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	m := model.BERT()

	// Instrumentation step: measure iteration latency at powers-of-two
	// allocations, exactly as RubberBand does before planning (§5).
	rep, err := profiler.Profile(m, m.BaseBatch, profiler.Options{MaxGPUs: 16}, stats.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured scaling profile (BERT, batch 32):")
	for _, p := range rep.Points {
		fmt.Printf("  %2d GPUs: %5.2f s/iter  speedup %.2fx\n", p.GPUs, p.Mean, p.Speedup)
	}
	fmt.Printf("  (profiling consumed %.0fs of simulated time)\n\n", rep.Duration)

	for _, policy := range []core.Policy{core.PolicyStatic, core.PolicyRubberBand} {
		exp := &core.Experiment{
			Model:          m,
			Space:          searchspace.DefaultNLPSpace(),
			Spec:           spec.MustSHA(32, 1, 30, 3),
			Deadline:       20 * time.Minute,
			Policy:         policy,
			Seed:           5,
			UseProfiler:    true, // plan from the measured profile
			RestoreSeconds: 2,
		}
		res, err := exp.Run()
		if err != nil {
			log.Fatalf("%v: %v", policy, err)
		}
		fmt.Printf("%-11s plan %v  cost $%.2f  JCT %.0fs  best acc %.1f%%\n",
			policy, res.Plan, res.Actual.Cost, res.Actual.JCT, res.Actual.BestAccuracy*100)
	}
}
