# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet bench experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Full unit + integration suite with the outputs the repo records.
record:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

bench:
	go test -bench=. -benchmem

# Regenerate every paper table/figure at full size (see EXPERIMENTS.md).
experiments:
	go run ./cmd/experiments -run all

examples:
	go run ./examples/quickstart
	go run ./examples/cifar_resnet101
	go run ./examples/bert_finetune
	go run ./examples/hyperband
	go run ./examples/straggler_study
	go run ./examples/spot_market
	go run ./examples/grid_search

clean:
	go clean ./...
