# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-race test-replan test-recovery test-serve vet lint lint-fast bench bench-plan bench-sim experiments examples repro fuzz-short clean

all: build vet lint test test-race test-serve

build:
	go build ./...

vet:
	go vet ./...

# Static analysis, full suite: `go vet` plus rbvet's determinism and
# purity invariants (see DESIGN.md "Static analysis"), including the
# escape-analysis-backed noalloc gate. Diagnostics are also written to
# rbvet.json for the CI artifact.
lint: vet
	go run ./cmd/rbvet -json rbvet.json ./...

# lint-fast skips the compiler escape-analysis pass (and with it the
# noalloc analyzer): type-checking only, for quick iteration.
lint-fast:
	go run ./cmd/rbvet -fast ./...

test:
	go test ./...

# Race-detector pass over the packages that fan work across goroutines
# (Monte-Carlo sampling, candidate evaluation, stream derivation, and the
# chaos harness's scenario fan-out).
test-race:
	go test -race -count=1 ./internal/sim ./internal/planner ./internal/stats ./internal/par ./internal/harness

# Replanning suite: the controller's unit tests, the differential
# replan-vs-stale/zero-drift tests, and the metamorphic planner tests,
# all under the race detector.
test-replan:
	go test -race -count=1 ./internal/replan ./internal/profiler
	go test -race -count=1 ./internal/harness -run 'TestReplan|TestZeroDrift'
	go test -race -count=1 ./internal/planner -run 'TestPriceScaling|TestDeadlineTightening|TestPlanInvariant'

# Durability suite: the journal codec/backends, the exhaustive
# crash-point sweep (kill + bit-identical recovery at every journal
# offset, both backends), and the journaling-invisibility property test,
# all under the race detector.
test-recovery:
	go test -race -count=1 ./internal/journal
	go test -race -count=1 ./internal/harness -run 'TestCrashPointSweep|TestReplanScenarioJournals|TestSnapshotIntervalInvisible|TestCrashRecover|TestResumeRefuses'

# Multi-tenant control-plane suite: the arbiter/registry unit and
# property tests, the HTTP backpressure suite (429 + Retry-After, FIFO
# drain, 100+ concurrent experiments with offline replay verification),
# the slack-vs-FIFO arbiter differential, and crash recovery across
# process generations — all under the race detector (the HTTP layer is
# the one deliberately concurrent surface above the deterministic core).
# RB_HEAVY_TESTS=1 additionally runs the p99 status-latency SLO test.
test-serve:
	go test -race -count=1 ./internal/serve ./cmd/rbserve
	go test -race -count=1 ./internal/harness -run 'TestCheckFleet|TestArbitrated|TestGated|TestRunningStepwise'
	go test -race -count=1 ./internal/core -run 'TestRunMultiJobShared'
	go test -race -count=1 ./internal/executor -run 'TestStageGate'

# Bounded chaos pass for CI: a fixed scenario batch through every
# invariant oracle with replay and crash/recovery equivalence, then 30s
# of native fuzzing per target. A reported failure reproduces with
# `go run ./cmd/rbfuzz -seed S -index I`.
fuzz-short:
	go run ./cmd/rbfuzz -seed 1 -n 128
	go run ./cmd/rbfuzz -seed 1 -n 32 -crash
	go test ./internal/harness -run='^$$' -fuzz=FuzzEndToEnd -fuzztime=30s
	go test ./internal/vclock -run='^$$' -fuzz=FuzzKernelEquivalence -fuzztime=30s
	go test ./internal/harness -run='^$$' -fuzz=FuzzRecover -fuzztime=30s
	go test ./internal/journal -run='^$$' -fuzz=FuzzJournalRoundTrip -fuzztime=30s
	go test ./internal/planner -run='^$$' -fuzz=FuzzPlanElastic -fuzztime=30s

# Deterministic reproducibility harness (see tools/repro/run.sh for the
# RB_RUN_REPEATABILITY / RB_RUN_BENCH gates).
repro:
	sh tools/repro/run.sh

# Full unit + integration suite with the outputs the repo records.
record:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

bench:
	go test -bench=. -benchmem

# Planning hot-path benchmark: sim.Estimate, planner.PlanElastic and the
# replanning decision at samples {20,100} under all three estimator
# modes, workers=1, plus the analytic fast-path rows (plan_frontier,
# replan_prescreen). Rewrites BENCH_plan.json and fails if any warm
# plan_elastic row regressed more than 25% against the committed
# baseline; the human-readable record lives in
# results/analytic_bench.md and results/estimator_bench.md.
bench-plan:
	go run ./cmd/rbbench -baseline BENCH_plan.json -out BENCH_plan.json

# Simulation-kernel scale benchmark: a 10^6-concurrent-trial fleet on
# the timer wheel (events/sec, trials held, allocs/event — the dispatch
# path must measure 0), the heap reference at comparison scale, the
# schedule+cancel cycle against a 128k backlog on both kernels, and a
# cross-kernel digest check. Emits BENCH_sim.json and exits nonzero on
# an alloc or equivalence regression; the human-readable record lives
# in results/sim_bench.md.
bench-sim:
	go run ./cmd/rbsimbench -out BENCH_sim.json

# Regenerate every paper table/figure at full size (see EXPERIMENTS.md).
experiments:
	go run ./cmd/experiments -run all

examples:
	go run ./examples/quickstart
	go run ./examples/cifar_resnet101
	go run ./examples/bert_finetune
	go run ./examples/hyperband
	go run ./examples/straggler_study
	go run ./examples/spot_market
	go run ./examples/grid_search

clean:
	go clean ./...
