// Command experiments regenerates the paper's evaluation artifacts: every
// table and figure of §6, plus the planner design-choice ablations.
//
// Usage:
//
//	experiments -run fig9          # one experiment
//	experiments -run all           # everything, in paper order
//	experiments -run table2 -seeds 3 -samples 20
//	experiments -list              # show available experiments
//
// Absolute numbers depend on the simulated substrate; the qualitative
// shapes (who wins, how gaps move with the swept parameter) are the
// reproduction target. See EXPERIMENTS.md for paper-vs-measured notes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment to run (see -list), or \"all\"")
		list    = flag.Bool("list", false, "list available experiments and exit")
		seed    = flag.Uint64("seed", 1, "base random seed")
		seeds   = flag.Int("seeds", 3, "repetitions for mean±std cells")
		samples = flag.Int("samples", 20, "simulator Monte-Carlo samples per plan")
		fast    = flag.Bool("fast", false, "reduced sweeps (smoke test)")
		format  = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want text or csv)\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", r.Name, r.Description)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Seeds: *seeds, Samples: *samples, Fast: *fast}
	var runners []experiments.Runner
	if *run == "all" {
		runners = experiments.Registry()
	} else {
		r, err := experiments.Lookup(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, err)
			os.Exit(1)
		}
		if *format == "csv" {
			c, ok := res.(experiments.CSVer)
			if !ok {
				fmt.Fprintf(os.Stderr, "%s: no CSV rendering\n", r.Name)
				os.Exit(1)
			}
			fmt.Printf("# %s\n%s\n", r.Name, c.CSV())
			continue
		}
		fmt.Printf("== %s (%s) [%.1fs]\n\n%s\n", r.Name, r.Description,
			time.Since(start).Seconds(), res)
	}
}
