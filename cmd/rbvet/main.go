// Command rbvet runs the project's static-analysis suite: it
// type-checks every package of the module and enforces the determinism
// and purity invariants of the planning stack (see DESIGN.md, "Static
// analysis").
//
// Usage:
//
//	rbvet [-list] [-fast] [-json file] [packages]
//
// Packages default to ./... and use go-list patterns. Diagnostics print
// as "file:line:col: [analyzer] message"; the exit status is nonzero
// when any diagnostic survives suppression.
//
// -fast skips the compiler escape-analysis pass (`go build
// -gcflags=-m`), and with it the noalloc analyzer — the rest of the
// suite needs only type-checking. -json writes the full diagnostic list
// as a JSON array to the named file ("-" for stdout) in addition to the
// human-readable output, for CI artifacts and tooling.
//
// Deliberate exceptions are annotated in source: per line with
//
//	//rbvet:ignore <analyzer> — <reason>
//
// on (or directly above) the offending line, and per function with
// //rbvet:impure(reason) in the declaration's doc comment. The
// staleignore analyzer reports directives that no longer suppress
// anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// jsonDiag is the serialized form of one diagnostic, a stable contract
// for CI artifacts: positions are repo-relative.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	fast := flag.Bool("fast", false, "skip the escape-analysis build pass (and the noalloc analyzer)")
	jsonOut := flag.String("json", "", "also write diagnostics as JSON to `file` (\"-\" for stdout)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rbvet [-list] [-fast] [-json file] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.All
	if *fast {
		suite = analysis.Fast
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(dir, patterns)
	if err != nil {
		fatal(err)
	}
	var opts []analysis.RunOption
	if !*fast {
		escapes, err := analysis.LoadEscapes(dir, patterns)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, analysis.WithEscapes(escapes))
	}
	diags := analysis.Run(pkgs, suite, opts...)

	jdiags := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(dir, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		jdiags = append(jdiags, jsonDiag{
			File: pos.Filename, Line: pos.Line, Column: pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, jdiags); err != nil {
			fatal(err)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rbvet: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func writeJSON(path string, diags []jsonDiag) error {
	enc, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(path, enc, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rbvet:", err)
	os.Exit(2)
}
