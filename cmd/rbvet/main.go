// Command rbvet runs the project's static-analysis suite: it
// type-checks every package of the module and enforces the determinism
// and purity invariants of the planning stack (see DESIGN.md,
// "Determinism invariants").
//
// Usage:
//
//	rbvet [-list] [packages]
//
// Packages default to ./... and use go-list patterns. Diagnostics print
// as "file:line:col: [analyzer] message"; the exit status is nonzero
// when any diagnostic survives suppression. Deliberate exceptions are
// annotated in source with
//
//	//rbvet:ignore <analyzer> — <reason>
//
// on (or directly above) the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rbvet [-list] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbvet:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analysis.All)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(dir, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rbvet: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
