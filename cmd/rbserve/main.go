// Command rbserve is the multi-tenant tuning-as-a-service control
// plane: a long-running HTTP/JSON API in front of a cross-experiment
// arbiter sharing one simulated cluster across tenants.
//
// Usage:
//
//	rbserve -addr :8080 -capacity 64                # in-memory
//	rbserve -addr :8080 -capacity 64 -data /var/rb  # durable + recovery
//	rbserve -policy fifo                            # naive baseline arbiter
//
// API:
//
//	POST /v1/experiments                submit (202; 429 + Retry-After on backlog)
//	GET  /v1/experiments/{id}           status: state, live cost, predicted JCT
//	GET  /v1/experiments/{id}/events    chunked ndjson event stream (?from=N)
//	GET  /v1/experiments/{id}/replay    (seed, spec, decisions) replay tuple
//	GET  /v1/tenants/{tenant}           tenant queue/live/quota counters
//	GET  /v1/stats                      fleet-wide capacity and occupancy
//
// Every admitted experiment runs on its own seeded virtual clock; the
// only nondeterministic input it consumes is the arbiter's grant
// sequence, which is journaled and reported in the replay tuple, so
// completed experiments re-derive bit-identical digests offline via
// `rbfuzz -serve-replay`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		capacity  = flag.Int("capacity", 64, "shared cluster capacity in GPUs")
		policy    = flag.String("policy", "slack", "arbitration policy: slack (deadline-slack) or fifo (static shares)")
		dataDir   = flag.String("data", "", "durable data root (empty: in-memory only, no crash recovery)")
		interval  = flag.Uint64("snapshot-interval", 64, "journal snapshot interval in records (0 disables)")
		maxQueued = flag.Int("max-queued", 16, "per-tenant submission queue bound")
		maxLive   = flag.Int("max-live", 4, "per-tenant concurrently-live bound")
		maxGPUs   = flag.Int("max-gpus", 32, "per-submission peak GPU cap")
	)
	flag.Parse()

	pol, err := serve.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbserve:", err)
		os.Exit(2)
	}
	s, err := serve.NewServer(serve.Config{
		Capacity:         *capacity,
		Policy:           pol,
		Quota:            serve.Quota{MaxQueued: *maxQueued, MaxLive: *maxLive, MaxGPUs: *maxGPUs},
		DataDir:          *dataDir,
		SnapshotInterval: *interval,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbserve:", err)
		os.Exit(2)
	}
	if *dataDir != "" {
		rep, err := s.Recover()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbserve: recovery:", err)
			os.Exit(1)
		}
		if rep.Adopted+rep.Resumed+len(rep.Failed) > 0 {
			fmt.Fprintf(os.Stderr, "rbserve: recovered %d completed, resumed %d unfinished, %d damaged, %d failed\n",
				rep.Adopted, rep.Resumed, len(rep.Damaged), len(rep.Failed))
		}
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rbserve: serving on %s (capacity %d GPUs, policy %s)\n", *addr, *capacity, pol)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "rbserve:", err)
			os.Exit(1)
		}
	case <-sig:
		// Graceful: stop accepting, let live virtual runs finish (they
		// complete in wall-milliseconds), then exit. Unfinished journals
		// are recovered on restart.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "rbserve: shutdown:", err)
		}
		s.Close()
	}
}
