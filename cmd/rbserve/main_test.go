package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
)

// TestStatusLatencyP99 is the heavy service-level objective test, gated
// behind RB_HEAVY_TESTS=1: with a fleet of concurrent experiments
// churning through the arbiter, the status endpoint's p99 latency must
// stay interactive. Status reads take one experiment mutex and encode a
// small JSON body — they must never queue behind the simulation drivers.
// This test lives in cmd (not internal/serve) because it measures wall
// time, which the deterministic core forbids.
func TestStatusLatencyP99(t *testing.T) {
	if os.Getenv("RB_HEAVY_TESTS") == "" {
		t.Skip("set RB_HEAVY_TESTS=1 to run the latency SLO test")
	}
	const (
		tenants    = 4
		perTenant  = 16 // 64 experiments total
		probes     = 8  // concurrent latency probes
		perProbe   = 250
		p99Budget  = 250 * time.Millisecond
		meanBudget = 25 * time.Millisecond
	)
	s, err := serve.NewServer(serve.Config{
		Capacity: 64,
		Quota:    serve.Quota{MaxQueued: 64, MaxLive: perTenant, MaxGPUs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// Launch the fleet: 64 experiments submitted concurrently, all live
	// against one shared cluster while the probes run.
	var ids []string
	var idMu sync.Mutex
	var subWG sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		subWG.Add(1)
		go func(ti int) {
			defer subWG.Done()
			for j := 0; j < perTenant; j++ {
				sub := serve.Submission{
					Tenant: fmt.Sprintf("tenant-%d", ti), Model: "resnet50",
					Stages: [][2]int{{8, 2}, {4, 2}, {2, 2}},
					Seed:   uint64(1000*ti + j), MaxGPUs: 4, DeadlineFactor: 2,
				}
				body, _ := json.Marshal(sub)
				resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var st serve.Status
				err = json.NewDecoder(resp.Body).Decode(&st)
				if cerr := resp.Body.Close(); err == nil {
					err = cerr
				}
				if err != nil || resp.StatusCode != http.StatusAccepted {
					t.Errorf("submit: %d (%v)", resp.StatusCode, err)
					return
				}
				idMu.Lock()
				ids = append(ids, st.ID)
				idMu.Unlock()
			}
		}(ti)
	}
	subWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Hammer the status and stats endpoints while the fleet churns.
	latCh := make(chan []float64, probes)
	var probeWG sync.WaitGroup
	for p := 0; p < probes; p++ {
		probeWG.Add(1)
		go func(p int) {
			defer probeWG.Done()
			lat := make([]float64, 0, perProbe)
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; i < perProbe; i++ {
				path := ts.URL + "/v1/experiments/" + ids[(p*perProbe+i)%len(ids)]
				if i%10 == 0 {
					path = ts.URL + "/v1/stats"
				}
				start := time.Now()
				resp, err := client.Get(path)
				if err != nil {
					t.Error(err)
					return
				}
				if err := resp.Body.Close(); err != nil {
					t.Error(err)
					return
				}
				lat = append(lat, time.Since(start).Seconds())
				if resp.StatusCode != http.StatusOK {
					t.Errorf("probe GET %s: %d", path, resp.StatusCode)
					return
				}
			}
			latCh <- lat
		}(p)
	}
	probeWG.Wait()
	close(latCh)
	if t.Failed() {
		t.FailNow()
	}

	var all []float64
	for lat := range latCh {
		all = append(all, lat...)
	}
	if len(all) != probes*perProbe {
		t.Fatalf("collected %d latencies, want %d", len(all), probes*perProbe)
	}
	sort.Float64s(all)
	p50 := time.Duration(stats.Percentile(all, 0.50) * float64(time.Second))
	p99 := time.Duration(stats.Percentile(all, 0.99) * float64(time.Second))
	meanSec, _ := stats.MeanStd(all)
	mean := time.Duration(meanSec * float64(time.Second))
	t.Logf("status latency over %d requests under %d live experiments: p50=%v mean=%v p99=%v",
		len(all), len(ids), p50, mean, p99)
	if p99 > p99Budget {
		t.Fatalf("status p99 latency %v exceeds %v", p99, p99Budget)
	}
	if mean > meanBudget {
		t.Fatalf("status mean latency %v exceeds %v", mean, meanBudget)
	}

	// The fleet still drains cleanly after the probe storm.
	s.Drain()
	done := 0
	for _, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/experiments/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st serve.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			done++
		}
	}
	if done != len(ids) {
		t.Fatalf("%d/%d experiments done after drain", done, len(ids))
	}
}
