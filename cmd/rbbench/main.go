// Command rbbench measures the planning hot path with Go's benchmark
// machinery and emits machine-readable results, so performance
// regressions in the estimator stack are visible in CI and recorded in
// the repository.
//
// It benchmarks sim.Estimate (one plan evaluation, warm caches),
// planner.PlanElastic (a full greedy compilation on a fresh planner and,
// separately, on a fresh simulator) and replan.Controller.Replan (one
// warm online replanning decision: profile refit + tail re-plan + splice)
// at Monte-Carlo sample counts 20 and 100, under both estimator modes, at
// workers=1 — the configuration the repository's speedup claims are
// stated against.
//
// Usage:
//
//	rbbench -out BENCH_plan.json            # full run
//	rbbench -benchtime 100ms -out /dev/stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/replan"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/vclock"
	"testing"
)

// Result is one benchmark measurement in the emitted JSON.
type Result struct {
	// Name identifies the benchmark: estimate, plan_elastic (fresh
	// planner, shared simulator), plan_elastic_cold (fresh simulator per
	// iteration) or replan (one warm online replanning decision).
	Name string `json:"name"`
	// Samples is the simulator's Monte-Carlo sample count.
	Samples int `json:"samples"`
	// Estimator is the mode ("segment" or "full").
	Estimator string `json:"estimator"`
	// Workers is the Monte-Carlo worker bound (always 1 here).
	Workers int `json:"workers"`
	// N is the iteration count the timing averaged over.
	N int `json:"n"`
	// NsPerOp, AllocsPerOp and BytesPerOp are the usual benchmark
	// metrics.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func newSimulator(samples int, mode sim.EstimatorMode) (*sim.Simulator, error) {
	s := spec.MustSHA(64, 4, 508, 2)
	prof := sim.ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	cp := sim.DefaultCloudProfile()
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	return sim.New(s, prof, cp, samples, stats.NewRNG(1), sim.WithWorkers(1), sim.WithEstimator(mode))
}

// newController builds a replanning controller over the same workload as
// newSimulator and feeds it a drifted observation window, so each Replan
// call exercises the full warm path: profile refit, tail re-plan under
// the remaining deadline, and splice.
func newController(samples int, mode sim.EstimatorMode) (*replan.Controller, replan.State, error) {
	s := spec.MustSHA(64, 4, 508, 2)
	prof := sim.ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	cp := sim.DefaultCloudProfile()
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	ctl, err := replan.NewController(replan.Config{
		Spec:      s,
		Profile:   prof,
		Cloud:     cp,
		Deadline:  900,
		MaxGPUs:   128,
		Samples:   samples,
		Workers:   1,
		Estimator: mode,
		RNG:       stats.NewRNG(2),
	})
	if err != nil {
		return nil, replan.State{}, err
	}
	plan := sim.Uniform(32, s.NumStages())
	gpus := sim.GPUsPerTrial(plan.Alloc[0], s.Stage(0).Trials)
	pred := prof.IterDist(gpus).Mean()
	for i := 0; i < 8; i++ {
		ctl.ObserveIteration(gpus, 1.5*pred, vclock.Time(i))
	}
	state := replan.State{Stage: 0, Now: 100, RemainingIters: s.Stage(0).Iters, Plan: plan}
	return ctl, state, nil
}

// measure runs fn under testing.Benchmark and converts the outcome.
func measure(name string, samples int, mode sim.EstimatorMode, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		Samples:     samples,
		Estimator:   mode.String(),
		Workers:     1,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func run(benchtime time.Duration, out string) error {
	// testing.Benchmark sizes runs off the -test.benchtime flag; set it
	// explicitly so rbbench behaves the same outside `go test`.
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		return err
	}

	var results []Result
	for _, samples := range []int{20, 100} {
		for _, mode := range []sim.EstimatorMode{sim.EstimatorSegment, sim.EstimatorFull} {
			sm, err := newSimulator(samples, mode)
			if err != nil {
				return err
			}
			plan := sim.Uniform(32, sm.Spec().NumStages())
			if _, err := sm.Estimate(plan); err != nil { // warm caches once
				return err
			}
			results = append(results, measure("estimate", samples, mode, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sm.Estimate(plan); err != nil {
						b.Fatal(err)
					}
				}
			}))
			results = append(results, measure("plan_elastic", samples, mode, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := &planner.Planner{Sim: sm, Deadline: 900, MaxGPUs: 128, Workers: 1}
					if _, err := p.PlanElastic(); err != nil {
						b.Fatal(err)
					}
				}
			}))
			results = append(results, measure("plan_elastic_cold", samples, mode, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cold, err := newSimulator(samples, mode)
					if err != nil {
						b.Fatal(err)
					}
					p := &planner.Planner{Sim: cold, Deadline: 900, MaxGPUs: 128, Workers: 1}
					if _, err := p.PlanElastic(); err != nil {
						b.Fatal(err)
					}
				}
			}))
			ctl, state, err := newController(samples, mode)
			if err != nil {
				return err
			}
			if _, err := ctl.Replan(state, replan.ReasonDrift); err != nil { // warm once
				return err
			}
			results = append(results, measure("replan", samples, mode, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ctl.Replan(state, replan.ReasonDrift); err != nil {
						b.Fatal(err)
					}
				}
			}))
			fmt.Fprintf(os.Stderr, "rbbench: samples=%d estimator=%v done\n", samples, mode)
		}
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" || out == "/dev/stdout" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

func main() {
	// testing.Benchmark reads the test flag set; it must be registered
	// before flag.Parse touches it.
	testing.Init()
	var (
		out       = flag.String("out", "BENCH_plan.json", "output path for the JSON results (- for stdout)")
		benchtime = flag.Duration("benchtime", time.Second, "minimum measuring time per benchmark")
	)
	flag.Parse()
	if err := run(*benchtime, *out); err != nil {
		fmt.Fprintln(os.Stderr, "rbbench:", err)
		os.Exit(1)
	}
}
