// Command rbbench measures the planning hot path with Go's benchmark
// machinery and emits machine-readable results, so performance
// regressions in the estimator stack are visible in CI and recorded in
// the repository.
//
// It benchmarks sim.Estimate (one plan evaluation, warm caches),
// planner.PlanElastic (a full greedy compilation on a fresh planner and,
// separately, on a fresh simulator) and replan.Controller.Replan (one
// warm online replanning decision: profile refit + tail re-plan + splice)
// at Monte-Carlo sample counts 20 and 100, under all three estimator
// modes, at workers=1 — the configuration the repository's speedup
// claims are stated against. Two mode-independent rows cover the
// analytic fast path on its own: plan_frontier (batch-scoring a
// 128-candidate frontier through the moment-propagation evaluator) and
// replan_prescreen (one read-only analytic drift screen).
//
// With -baseline, rbbench additionally loads a previous result file and
// exits nonzero if any warm plan_elastic row regressed by more than
// -regression (default 25%) — the `make bench-plan` gate.
//
// Usage:
//
//	rbbench -out BENCH_plan.json                         # full run
//	rbbench -benchtime 100ms -out /dev/stdout
//	rbbench -baseline BENCH_plan.json -out BENCH_plan.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/replan"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/vclock"
	"testing"
)

// Result is one benchmark measurement in the emitted JSON.
type Result struct {
	// Name identifies the benchmark: estimate, plan_elastic (fresh
	// planner, shared simulator), plan_elastic_cold (fresh simulator per
	// iteration), replan (one warm online replanning decision),
	// plan_frontier (one analytic batch-score of a 128-candidate
	// frontier) or replan_prescreen (one read-only analytic drift
	// screen).
	Name string `json:"name"`
	// Samples is the simulator's Monte-Carlo sample count.
	Samples int `json:"samples"`
	// Estimator is the mode ("segment", "full" or "analytic").
	Estimator string `json:"estimator"`
	// Workers is the Monte-Carlo worker bound (always 1 here).
	Workers int `json:"workers"`
	// N is the iteration count the timing averaged over.
	N int `json:"n"`
	// NsPerOp, AllocsPerOp and BytesPerOp are the usual benchmark
	// metrics.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func newSimulator(samples int, mode sim.EstimatorMode) (*sim.Simulator, error) {
	s := spec.MustSHA(64, 4, 508, 2)
	prof := sim.ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	cp := sim.DefaultCloudProfile()
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	return sim.New(s, prof, cp, samples, stats.NewRNG(1), sim.WithWorkers(1), sim.WithEstimator(mode))
}

// newController builds a replanning controller over the same workload as
// newSimulator and feeds it a drifted observation window, so each Replan
// call exercises the full warm path: profile refit, tail re-plan under
// the remaining deadline, and splice.
func newController(samples int, mode sim.EstimatorMode) (*replan.Controller, replan.State, error) {
	s := spec.MustSHA(64, 4, 508, 2)
	prof := sim.ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	cp := sim.DefaultCloudProfile()
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	ctl, err := replan.NewController(replan.Config{
		Spec:      s,
		Profile:   prof,
		Cloud:     cp,
		Deadline:  900,
		MaxGPUs:   128,
		Samples:   samples,
		Workers:   1,
		Estimator: mode,
		RNG:       stats.NewRNG(2),
	})
	if err != nil {
		return nil, replan.State{}, err
	}
	plan := sim.Uniform(32, s.NumStages())
	gpus := sim.GPUsPerTrial(plan.Alloc[0], s.Stage(0).Trials)
	pred := prof.IterDist(gpus).Mean()
	for i := 0; i < 8; i++ {
		ctl.ObserveIteration(gpus, 1.5*pred, vclock.Time(i))
	}
	state := replan.State{Stage: 0, Now: 100, RemainingIters: s.Stage(0).Iters, Plan: plan}
	return ctl, state, nil
}

// measure runs fn under testing.Benchmark and converts the outcome.
func measure(name string, samples int, mode sim.EstimatorMode, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		Samples:     samples,
		Estimator:   mode.String(),
		Workers:     1,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// loadBaseline reads a previous result file; a missing file is not an
// error (first run), it just disables the regression gate.
func loadBaseline(path string) ([]Result, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(raw, &rs); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return rs, nil
}

// checkRegression compares warm plan_elastic rows against the baseline
// and reports every row whose ns/op grew by more than limit (a fraction:
// 0.25 means +25%). Rows absent from the baseline — newly added modes —
// are skipped.
func checkRegression(baseline, current []Result, limit float64) []string {
	type key struct {
		name, est string
		samples   int
	}
	base := make(map[key]Result, len(baseline))
	for _, r := range baseline {
		base[key{r.Name, r.Estimator, r.Samples}] = r
	}
	var bad []string
	for _, r := range current {
		if r.Name != "plan_elastic" {
			continue
		}
		b, ok := base[key{r.Name, r.Estimator, r.Samples}]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if r.NsPerOp > (1+limit)*b.NsPerOp {
			bad = append(bad, fmt.Sprintf("%s samples=%d estimator=%s: %.0f ns/op vs baseline %.0f (+%.0f%%, limit +%.0f%%)",
				r.Name, r.Samples, r.Estimator, r.NsPerOp, b.NsPerOp, 100*(r.NsPerOp/b.NsPerOp-1), 100*limit))
		}
	}
	return bad
}

func run(benchtime time.Duration, out, baseline string, regression float64) error {
	// testing.Benchmark sizes runs off the -test.benchtime flag; set it
	// explicitly so rbbench behaves the same outside `go test`.
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		return err
	}

	base, err := loadBaseline(baseline)
	if err != nil {
		return err
	}

	var results []Result
	for _, samples := range []int{20, 100} {
		for _, mode := range []sim.EstimatorMode{sim.EstimatorSegment, sim.EstimatorFull, sim.EstimatorAnalytic} {
			sm, err := newSimulator(samples, mode)
			if err != nil {
				return err
			}
			plan := sim.Uniform(32, sm.Spec().NumStages())
			if _, err := sm.Estimate(plan); err != nil { // warm caches once
				return err
			}
			results = append(results, measure("estimate", samples, mode, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sm.Estimate(plan); err != nil {
						b.Fatal(err)
					}
				}
			}))
			results = append(results, measure("plan_elastic", samples, mode, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := &planner.Planner{Sim: sm, Deadline: 900, MaxGPUs: 128, Workers: 1}
					if _, err := p.PlanElastic(); err != nil {
						b.Fatal(err)
					}
				}
			}))
			results = append(results, measure("plan_elastic_cold", samples, mode, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cold, err := newSimulator(samples, mode)
					if err != nil {
						b.Fatal(err)
					}
					p := &planner.Planner{Sim: cold, Deadline: 900, MaxGPUs: 128, Workers: 1}
					if _, err := p.PlanElastic(); err != nil {
						b.Fatal(err)
					}
				}
			}))
			ctl, state, err := newController(samples, mode)
			if err != nil {
				return err
			}
			if _, err := ctl.Replan(state, replan.ReasonDrift); err != nil { // warm once
				return err
			}
			results = append(results, measure("replan", samples, mode, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ctl.Replan(state, replan.ReasonDrift); err != nil {
						b.Fatal(err)
					}
				}
			}))
			fmt.Fprintf(os.Stderr, "rbbench: samples=%d estimator=%v done\n", samples, mode)
		}
	}

	// The analytic fast path on its own: one batch-score of a whole
	// 128-candidate frontier (the planner's phase-one workload), and one
	// read-only replan pre-screen (refit + stale-tail rescore + analytic
	// mini-plan). Both are sample-count independent; the row records the
	// simulator's nominal budget.
	{
		const frontier = 128
		sm, err := newSimulator(20, sim.EstimatorAnalytic)
		if err != nil {
			return err
		}
		plans := make([]sim.Plan, frontier)
		for g := 1; g <= frontier; g++ {
			plans[g-1] = sim.Uniform(g, sm.Spec().NumStages())
		}
		eval := sm.NewAnalyticEval()
		ests := make([]sim.Estimate, frontier)
		oks := make([]bool, frontier)
		if err := eval.EstimateBatch(plans, ests, oks); err != nil { // warm caches
			return err
		}
		results = append(results, measure("plan_frontier", 20, sim.EstimatorAnalytic, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := eval.EstimateBatch(plans, ests, oks); err != nil {
					b.Fatal(err)
				}
			}
		}))

		ctl, state, err := newController(20, sim.EstimatorAnalytic)
		if err != nil {
			return err
		}
		if _, err := ctl.PreScreen(state); err != nil {
			return err
		}
		results = append(results, measure("replan_prescreen", 20, sim.EstimatorAnalytic, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ctl.PreScreen(state); err != nil {
					b.Fatal(err)
				}
			}
		}))
		fmt.Fprintln(os.Stderr, "rbbench: analytic fast-path rows done")
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" || out == "/dev/stdout" {
		if _, err := os.Stdout.Write(enc); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}

	if bad := checkRegression(base, results, regression); len(bad) > 0 {
		for _, line := range bad {
			fmt.Fprintln(os.Stderr, "rbbench: REGRESSION:", line)
		}
		return fmt.Errorf("%d warm planning regression(s) beyond the %.0f%% limit", len(bad), 100*regression)
	}
	if baseline != "" && len(base) > 0 {
		fmt.Fprintf(os.Stderr, "rbbench: no warm planning regression beyond %.0f%% vs %s\n", 100*regression, baseline)
	}
	return nil
}

func main() {
	// testing.Benchmark reads the test flag set; it must be registered
	// before flag.Parse touches it.
	testing.Init()
	var (
		out        = flag.String("out", "BENCH_plan.json", "output path for the JSON results (- for stdout)")
		benchtime  = flag.Duration("benchtime", time.Second, "minimum measuring time per benchmark")
		baseline   = flag.String("baseline", "", "previous result file to gate warm planning regressions against (missing file disables the gate)")
		regression = flag.Float64("regression", 0.25, "relative warm plan_elastic slowdown vs -baseline that fails the run")
	)
	flag.Parse()
	if err := run(*benchtime, *out, *baseline, *regression); err != nil {
		fmt.Fprintln(os.Stderr, "rbbench:", err)
		os.Exit(1)
	}
}
