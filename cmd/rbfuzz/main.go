// Command rbfuzz runs the deterministic end-to-end chaos harness: it
// generates seeded scenarios (experiment specs, workloads, pricing,
// provisioning overheads, fault models, deadlines), executes each through
// the full pipeline — spec → simulation → planner → placement → elastic
// executor — on the virtual clock, and checks system-wide invariant
// oracles (cost conservation, usage metering, gang-scheduling integrity,
// no lost trials, deadline semantics, bit-identical replay).
//
// Usage:
//
//	rbfuzz -seed 1 -n 64           # one batch, all oracles, with replay
//	rbfuzz -seed 1 -n 64 -workers 8
//	rbfuzz -seed 1 -index 52 -v    # re-run one failing scenario verbosely
//	rbfuzz -seed 1 -n 64 -replan on -drift-threshold 0.15
//	rbfuzz -seed 1 -n 64 -crash    # add crash/recovery equivalence checks
//	rbfuzz -serve-replay t.json    # verify an rbserve replay tuple offline
//
// Everything derives from -seed: a failure printed by any run reproduces
// bit-identically with `go run ./cmd/rbfuzz -seed S -index I`, at any
// -workers count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/serve"
)

// verifyServeReplay re-derives an rbserve experiment's digest offline:
// the tuple's recorded grant sequence is scripted into a fresh gated run
// of the same submission and the digest must match bit for bit.
func verifyServeReplay(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbfuzz:", err)
		return 2
	}
	var t serve.ReplayTuple
	if err := json.Unmarshal(data, &t); err != nil {
		fmt.Fprintf(os.Stderr, "rbfuzz: parsing %s: %v\n", path, err)
		return 2
	}
	d, err := serve.VerifyReplay(t)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbfuzz: replay %s: %v\n", t.ID, err)
		return 1
	}
	fmt.Printf("rbfuzz: replay %s ok, digest %016x matches\n", t.ID, uint64(d))
	return 0
}

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "batch seed; scenario i is a pure function of (seed, i)")
		n       = flag.Int("n", 64, "number of scenarios to run")
		index   = flag.Int("index", -1, "run only this scenario index (failure drill-down)")
		workers = flag.Int("workers", 8, "scenario-level parallelism (results are identical at any width)")
		replay  = flag.Bool("replay", true, "run every scenario twice and require bit-identical digests")
		crash   = flag.Bool("crash", false, "kill each scenario's control plane at a seeded journal point and require bit-identical recovery")
		verbose = flag.Bool("v", false, "print every scenario, not just failures")
		rpl     = flag.String("replan", "auto", "online replanning controller: auto (per-scenario draw), on, or off")
		drift   = flag.Float64("drift-threshold", 0, "override the replan controller's EWMA trigger threshold (0 = per-scenario draw)")
		srvRep  = flag.String("serve-replay", "", "verify an rbserve replay tuple JSON file and exit")
	)
	flag.Parse()

	if *srvRep != "" {
		os.Exit(verifyServeReplay(*srvRep))
	}

	var mutate func(*harness.Scenario)
	switch *rpl {
	case "auto":
	case "on", "off":
		on := *rpl == "on"
		mutate = func(sc *harness.Scenario) { sc.ReplanEnabled = on }
	default:
		fmt.Fprintf(os.Stderr, "rbfuzz: -replan must be auto, on or off (got %q)\n", *rpl)
		os.Exit(2)
	}
	if *drift != 0 {
		if *drift < 0 {
			fmt.Fprintf(os.Stderr, "rbfuzz: -drift-threshold must be positive (got %v)\n", *drift)
			os.Exit(2)
		}
		prev := mutate
		mutate = func(sc *harness.Scenario) {
			if prev != nil {
				prev(sc)
			}
			sc.DriftThreshold = *drift
		}
	}

	opts := harness.Options{Seed: *seed, Scenarios: *n, Workers: *workers, Replay: *replay, CrashCheck: *crash, Mutate: mutate}
	var reports []harness.ScenarioReport
	var batchDigest harness.Digest
	if *index >= 0 {
		reports = []harness.ScenarioReport{harness.RunIndex(opts, *index)}
		batchDigest = reports[0].Digest
	} else {
		rep := harness.RunBatch(opts)
		reports, batchDigest = rep.Scenarios, rep.BatchDigest
	}

	failed := 0
	for i := range reports {
		r := &reports[i]
		idx := r.Scenario.Index
		if *verbose || r.Failed() {
			status := "ok"
			if r.Failed() {
				status = "FAIL"
			}
			fmt.Printf("scenario %d [%s] digest=%016x steps=%d\n  %s\n",
				idx, status, uint64(r.Digest), r.Steps, r.Scenario)
		}
		if !r.Failed() {
			continue
		}
		failed++
		if r.Err != nil {
			fmt.Printf("  pipeline error: %v\n", r.Err)
		}
		for _, v := range r.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
		fmt.Printf("  reproduce: go run ./cmd/rbfuzz -seed %d -index %d -v\n", *seed, idx)
	}

	fmt.Printf("rbfuzz: %d scenario(s), %d failure(s), batch digest %016x\n",
		len(reports), failed, uint64(batchDigest))
	if failed > 0 {
		os.Exit(1)
	}
}
