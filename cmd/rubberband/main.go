// Command rubberband plans and executes one hyperparameter tuning job
// end-to-end on the simulated cloud, printing the compiled allocation
// plan, the simulator's prediction, and the realized JCT, cost, schedule
// and winning configuration.
//
// Usage:
//
//	rubberband -model resnet101 -deadline 20m
//	rubberband -model bert -policy static -trials 16 -min-iters 1 -max-iters 30 -eta 3
//	rubberband -model resnet50 -deadline 15m -profile -trace trace.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "resnet101", "model to tune: resnet50, resnet101, resnet152, bert")
		deadline  = flag.Duration("deadline", 20*time.Minute, "job time constraint")
		policyStr = flag.String("policy", "rubberband", "allocation policy: rubberband, static, naive")
		trials    = flag.Int("trials", 32, "SHA initial trial count n")
		minIters  = flag.Int("min-iters", 1, "SHA minimum per-trial work r")
		maxIters  = flag.Int("max-iters", 50, "SHA maximum cumulative work R")
		eta       = flag.Int("eta", 3, "SHA termination rate η")
		seed      = flag.Uint64("seed", 1, "random seed")
		profile   = flag.Bool("profile", false, "plan from a measured scaling profile (instrumentation step)")
		tracePath = flag.String("trace", "", "write the execution event trace as CSV to this path")
		cfgPath   = flag.String("config", "", "load the experiment from a JSON file (overrides the other job flags)")
		ganttPath = flag.String("gantt", "", "write per-trial activity spans as CSV to this path (for Gantt plots)")
		planStr   = flag.String("plan", "", "execute this explicit per-stage GPU allocation (e.g. \"16,10,12,4\") instead of planning")
		jsonOut   = flag.Bool("json", false, "emit the run result as JSON instead of text")
	)
	flag.Parse()

	var exp *core.Experiment
	if *cfgPath != "" {
		var err error
		exp, err = config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	} else {
		m, err := model.ByName(*modelName)
		if err != nil {
			fatal(err)
		}
		var policy core.Policy
		switch *policyStr {
		case "rubberband":
			policy = core.PolicyRubberBand
		case "static":
			policy = core.PolicyStatic
		case "naive":
			policy = core.PolicyNaiveElastic
		default:
			fatal(fmt.Errorf("unknown policy %q", *policyStr))
		}
		space := searchspace.DefaultVisionSpace()
		if m.Name == "bert" {
			space = searchspace.DefaultNLPSpace()
		}
		sha, err := spec.SHA(spec.SHAParams{N: *trials, R: *minIters, MaxR: *maxIters, Eta: *eta})
		if err != nil {
			fatal(err)
		}
		exp = &core.Experiment{
			Model:          m,
			Space:          space,
			Spec:           sha,
			Deadline:       *deadline,
			Policy:         policy,
			Seed:           *seed,
			UseProfiler:    *profile,
			RestoreSeconds: 2,
		}
	}

	rec := trace.New()
	exp.Trace = rec

	if !*jsonOut {
		fmt.Printf("job: %s on %s, spec %v, deadline %v, policy %v\n",
			exp.Model.Name, exp.Model.Dataset.Name, exp.Spec, exp.Deadline, exp.Policy)
	}

	var res *core.Result
	if *planStr != "" {
		// Execute a user-supplied plan without invoking the planner.
		plan, err := sim.ParsePlan(*planStr)
		if err != nil {
			fatal(err)
		}
		actual, err := exp.Execute(plan)
		if err != nil {
			fatal(err)
		}
		res = &core.Result{Policy: exp.Policy, Plan: plan, Actual: actual}
	} else {
		var err error
		res, err = exp.Run()
		if err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResult(res)); err != nil {
			fatal(err)
		}
	} else {
		printText(res)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace: %d events written to %s\n", len(rec.Events()), *tracePath)
	}
	if *ganttPath != "" {
		f, err := os.Create(*ganttPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		spans := trace.TrialSpans(rec.Events())
		if err := trace.WriteGanttCSV(f, spans); err != nil {
			fatal(err)
		}
		fmt.Printf("gantt: %d spans written to %s\n", len(spans), *ganttPath)
	}
}

// printText writes the human-readable result.
func printText(res *core.Result) {
	if res.ProfilingDuration > 0 {
		fmt.Printf("profiling: %.0fs of instrumentation\n", res.ProfilingDuration)
	}
	fmt.Printf("plan: %v GPUs per stage\n", res.Plan)
	if res.Predicted.JCT > 0 {
		fmt.Printf("predicted: JCT %.0fs, cost $%.2f\n", res.Predicted.JCT, res.Predicted.Cost)
	}
	fmt.Printf("realized:  JCT %.0fs, cost $%.2f, utilization %.0f%%\n",
		res.Actual.JCT, res.Actual.Cost, res.Actual.Utilization*100)
	if res.Actual.Preemptions > 0 {
		fmt.Printf("preemptions survived: %d\n", res.Actual.Preemptions)
	}
	fmt.Printf("winner: trial %d, accuracy %.1f%%, config %v\n",
		res.Actual.BestTrial, res.Actual.BestAccuracy*100, res.Actual.BestConfig)
	fmt.Println("\nrealized schedule:")
	fmt.Printf("%-12s %-7s %-11s %-7s %s\n", "iter range", "trials", "GPUs/trial", "nodes", "cost ($)")
	for _, row := range res.Actual.Schedule {
		fmt.Printf("%-12s %-7d %-11d %-7d %.2f\n",
			fmt.Sprintf("%d-%d", row.IterStart, row.IterEnd),
			row.Trials, row.GPUsPerTrial, row.ClusterNodes, row.Cost)
	}
}

// jsonResult shapes the result for machine consumption.
func jsonResult(res *core.Result) map[string]any {
	stages := make([]map[string]any, 0, len(res.Actual.Schedule))
	for _, row := range res.Actual.Schedule {
		stages = append(stages, map[string]any{
			"iter_start": row.IterStart, "iter_end": row.IterEnd,
			"trials": row.Trials, "gpus_per_trial": row.GPUsPerTrial,
			"nodes": row.ClusterNodes, "cost": row.Cost,
		})
	}
	return map[string]any{
		"policy":         res.Policy.String(),
		"plan":           res.Plan.Alloc,
		"predicted_jct":  res.Predicted.JCT,
		"predicted_cost": res.Predicted.Cost,
		"jct":            res.Actual.JCT,
		"cost":           res.Actual.Cost,
		"utilization":    res.Actual.Utilization,
		"preemptions":    res.Actual.Preemptions,
		"best_trial":     res.Actual.BestTrial,
		"best_accuracy":  res.Actual.BestAccuracy,
		"best_config":    res.Actual.BestConfig,
		"schedule":       stages,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rubberband:", err)
	os.Exit(1)
}
