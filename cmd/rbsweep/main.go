// Command rbsweep sweeps the job deadline and prints the predicted
// cost/JCT frontier for the static and RubberBand policies — an ad hoc
// version of the paper's Figure 12 panels for any model/spec, suitable
// for piping into a plotting tool with -format csv.
//
// Usage:
//
//	rbsweep -model resnet50 -trials 64 -min-iters 4 -max-iters 508 -from 10m -to 40m -steps 7
//	rbsweep -model resnet101 -format csv > frontier.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	var (
		modelName = flag.String("model", "resnet50", "model to tune: resnet50, resnet101, resnet152, bert")
		trials    = flag.Int("trials", 64, "SHA initial trial count n")
		minIters  = flag.Int("min-iters", 4, "SHA minimum per-trial work r")
		maxIters  = flag.Int("max-iters", 508, "SHA maximum cumulative work R")
		eta       = flag.Int("eta", 2, "SHA termination rate η")
		from      = flag.Duration("from", 10*time.Minute, "tightest deadline")
		to        = flag.Duration("to", 40*time.Minute, "laxest deadline")
		steps     = flag.Int("steps", 7, "number of sweep points (inclusive of both ends)")
		seed      = flag.Uint64("seed", 1, "random seed")
		samples   = flag.Int("samples", 10, "simulator Monte-Carlo samples per plan")
		workers   = flag.Int("workers", 0, "planning concurrency: Monte-Carlo and candidate-evaluation workers (0 = GOMAXPROCS, 1 = serial; output is identical at any setting)")
		format    = flag.String("format", "text", "output format: text or csv")
		estimator = flag.String("estimator", "segment", "plan estimator: segment (incremental Monte-Carlo, cached stage segments), full (reference full-DAG streams) or analytic (moment propagation, no sampling; falls back to segment on heavy-tailed latencies)")
	)
	flag.Parse()
	mode, err := sim.ParseEstimator(*estimator)
	if err != nil {
		fatal(err)
	}
	if *steps < 2 {
		fatal(fmt.Errorf("need at least 2 steps"))
	}
	if *to <= *from {
		fatal(fmt.Errorf("-to must exceed -from"))
	}

	m, err := model.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	sha, err := spec.SHA(spec.SHAParams{N: *trials, R: *minIters, MaxR: *maxIters, Eta: *eta})
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "csv":
		fmt.Println("deadline_s,static_cost,static_jct,elastic_cost,elastic_jct,saving_pct")
	case "text":
		fmt.Printf("model %s, spec %v\n\n", m.Name, sha)
		fmt.Printf("%-10s %-24s %-24s %-8s\n", "deadline", "static (cost, JCT)", "RubberBand (cost, JCT)", "saving")
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}

	step := (*to - *from) / time.Duration(*steps-1)
	for i := 0; i < *steps; i++ {
		deadline := *from + time.Duration(i)*step
		exp := &core.Experiment{
			Model:     m,
			Space:     searchspace.DefaultVisionSpace(),
			Spec:      sha,
			Deadline:  deadline,
			Seed:      *seed,
			Samples:   *samples,
			Workers:   *workers,
			Estimator: mode,
		}
		exp.Policy = core.PolicyStatic
		st, _, err := exp.Plan()
		if err == planner.ErrInfeasible {
			printInfeasible(*format, deadline)
			continue
		} else if err != nil {
			fatal(err)
		}
		exp.Policy = core.PolicyRubberBand
		el, _, err := exp.Plan()
		if err != nil {
			fatal(err)
		}
		saving := (1 - el.Estimate.Cost/st.Estimate.Cost) * 100
		if *format == "csv" {
			fmt.Printf("%.0f,%.4f,%.1f,%.4f,%.1f,%.2f\n",
				deadline.Seconds(), st.Estimate.Cost, st.Estimate.JCT,
				el.Estimate.Cost, el.Estimate.JCT, saving)
		} else {
			fmt.Printf("%-10s ($%6.2f, %5.0fs)%8s ($%6.2f, %5.0fs)%8s %5.1f%%\n",
				deadline, st.Estimate.Cost, st.Estimate.JCT, "",
				el.Estimate.Cost, el.Estimate.JCT, "", saving)
		}
	}
}

func printInfeasible(format string, deadline time.Duration) {
	if format == "csv" {
		fmt.Printf("%.0f,,,,,\n", deadline.Seconds())
		return
	}
	fmt.Printf("%-10s infeasible within resource cap\n", deadline)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rbsweep:", err)
	os.Exit(1)
}
