// Command rbplan compiles resource allocation plans without executing
// them, printing each policy's plan and predicted JCT/cost side by side —
// useful for exploring how the planner responds to deadlines, pricing and
// model scaling.
//
// Usage:
//
//	rbplan -model resnet101 -deadline 20m
//	rbplan -model resnet50 -trials 64 -min-iters 4 -max-iters 508 -eta 2 -deadline 15m
//	rbplan -model resnet101 -deadline 20m -replan -drift 2.0
//
// With -replan, rbplan additionally demonstrates the online replanning
// controller: it pretends the RubberBand plan's first stage runs -drift
// times slower than profiled, feeds the controller the drifted
// observations, and prints the resulting replan decision (the spliced
// plan and its re-estimated JCT/cost against the remaining deadline).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/replan"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/vclock"
)

func main() {
	var (
		modelName = flag.String("model", "resnet101", "model to tune: resnet50, resnet101, resnet152, bert")
		deadline  = flag.Duration("deadline", 20*time.Minute, "job time constraint")
		trials    = flag.Int("trials", 32, "SHA initial trial count n")
		minIters  = flag.Int("min-iters", 1, "SHA minimum per-trial work r")
		maxIters  = flag.Int("max-iters", 50, "SHA maximum cumulative work R")
		eta       = flag.Int("eta", 3, "SHA termination rate η")
		seed      = flag.Uint64("seed", 1, "random seed")
		samples   = flag.Int("samples", 20, "simulator Monte-Carlo samples per plan")
		workers   = flag.Int("workers", 0, "planning concurrency: Monte-Carlo and candidate-evaluation workers (0 = GOMAXPROCS, 1 = serial; output is identical at any setting)")
		breakdown = flag.Bool("breakdown", false, "print the RubberBand plan's per-stage time/cost decomposition")
		estimator = flag.String("estimator", "segment", "plan estimator: segment (incremental Monte-Carlo, cached stage segments), full (reference full-DAG streams) or analytic (moment propagation, no sampling; falls back to segment on heavy-tailed latencies)")
		replanOn  = flag.Bool("replan", false, "demo the online replanning controller against an injected slowdown")
		drift     = flag.Float64("drift", 2.0, "observed/predicted latency ratio the replan demo injects")
		threshold = flag.Float64("drift-threshold", 0.25, "replan controller EWMA trigger threshold")
	)
	flag.Parse()

	mode, err := sim.ParseEstimator(*estimator)
	if err != nil {
		fatal(err)
	}
	m, err := model.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	sha, err := spec.SHA(spec.SHAParams{N: *trials, R: *minIters, MaxR: *maxIters, Eta: *eta})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("spec %v, deadline %v, model %s\n\n", sha, *deadline, m.Name)
	fmt.Printf("%-14s %-28s %-10s %-10s\n", "policy", "plan (GPUs per stage)", "JCT (s)", "cost ($)")

	for _, policy := range []core.Policy{core.PolicyStatic, core.PolicyNaiveElastic, core.PolicyRubberBand} {
		exp := &core.Experiment{
			Model:     m,
			Space:     searchspace.DefaultVisionSpace(),
			Spec:      sha,
			Deadline:  *deadline,
			Policy:    policy,
			Seed:      *seed,
			Samples:   *samples,
			Workers:   *workers,
			Estimator: mode,
		}
		res, _, err := exp.Plan()
		if err != nil {
			if err == planner.ErrInfeasible {
				fmt.Printf("%-14s %-28s\n", policy, "infeasible within resource cap")
				continue
			}
			fatal(err)
		}
		fmt.Printf("%-14s %-28s %-10.0f %-10.2f\n",
			policy, res.Plan.String(), res.Estimate.JCT, res.Estimate.Cost)

		if *breakdown && policy == core.PolicyRubberBand {
			printBreakdown(m, sha, *seed, *samples, *workers, mode, res.Plan)
		}
		if *replanOn && policy == core.PolicyRubberBand {
			printReplanDemo(m, sha, *seed, *samples, mode, res.Plan,
				(*deadline).Seconds(), *drift, *threshold)
		}
	}
}

// printReplanDemo drives the online replanning controller through one
// drift episode: it feeds observations *factor* slower than the profile
// predicts for the plan's first-stage allocation, then asks for a replan
// of the remaining stages a quarter of the way into the deadline.
func printReplanDemo(m *model.Model, sha *spec.ExperimentSpec, seed uint64, samples int, mode sim.EstimatorMode, plan sim.Plan, deadline, factor, threshold float64) {
	cp := sim.DefaultCloudProfile()
	cp.DatasetGB = m.Dataset.SizeGB
	prof := sim.ModelTrainProfile{Model: m, Batch: m.BaseBatch, GPUsPerNode: cp.Instance.GPUs}
	maxGPUs := 4 * sha.TotalTrials()
	if maxGPUs < 64 {
		maxGPUs = 64
	}
	ctl, err := replan.NewController(replan.Config{
		Spec:      sha,
		Profile:   prof,
		Cloud:     cp,
		Deadline:  deadline,
		MaxGPUs:   maxGPUs,
		Samples:   samples,
		Workers:   1,
		Estimator: mode,
		RNG:       stats.NewRNG(seed + 2),
		Threshold: threshold,
	})
	if err != nil {
		fatal(err)
	}
	gpus := sim.GPUsPerTrial(plan.Alloc[0], sha.Stage(0).Trials)
	pred := prof.IterDist(gpus).Mean()
	now := 0.25 * deadline
	fired := false
	for i := 0; i < 16 && !fired; i++ {
		fired = ctl.ObserveIteration(gpus, factor*pred, vclock.Time(now)+vclock.Time(i))
	}
	fmt.Printf("\nreplan demo: %gx drift on stage 0 (%d GPUs/trial, predicted %.2fs/iter)\n",
		factor, gpus, pred)
	if !fired {
		fmt.Printf("drift below threshold %.2f — controller stays quiet, plan unchanged\n", threshold)
		return
	}
	d, err := ctl.Replan(replan.State{
		Stage:          0,
		Now:            vclock.Time(now),
		RemainingIters: sha.Stage(0).Iters,
		Plan:           plan,
	}, replan.ReasonDrift)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("decision: %s\n", d.Note())
	fmt.Printf("%-10s %-28s %-10s %-10s\n", "", "plan (GPUs per stage)", "JCT (s)", "cost ($)")
	fmt.Printf("%-10s %-28s %-10.0f %-10.2f\n", "stale", d.OldPlan.String(), d.StaleEstimate.JCT, d.StaleEstimate.Cost)
	fmt.Printf("%-10s %-28s %-10.0f %-10.2f\n", "replanned", d.NewPlan.String(), d.NewEstimate.JCT, d.NewEstimate.Cost)
	fmt.Printf("remaining deadline %.0fs, adopted=%v, infeasible=%v\n",
		d.RemainingDeadline, d.Adopted, d.Infeasible)
}

// printBreakdown re-simulates the chosen plan and prints its per-stage
// decomposition.
func printBreakdown(m *model.Model, sha *spec.ExperimentSpec, seed uint64, samples, workers int, mode sim.EstimatorMode, plan sim.Plan) {
	cp := sim.DefaultCloudProfile()
	cp.DatasetGB = m.Dataset.SizeGB
	prof := sim.ModelTrainProfile{Model: m, Batch: m.BaseBatch, GPUsPerNode: cp.Instance.GPUs}
	sm, err := sim.New(sha, prof, cp, samples, stats.NewRNG(seed+1), sim.WithWorkers(workers), sim.WithEstimator(mode))
	if err != nil {
		fatal(err)
	}
	rows, err := sm.Breakdown(plan)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%-7s %-7s %-11s %-10s %-12s %-10s\n",
		"stage", "trials", "GPUs/trial", "machines", "duration (s)", "cost ($)")
	for _, r := range rows {
		fmt.Printf("%-7d %-7d %-11d %-10d %-12.0f %-10.2f\n",
			r.Stage, r.Trials, r.GPUsPerTrial, r.Instances, r.Duration, r.Cost)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rbplan:", err)
	os.Exit(1)
}
