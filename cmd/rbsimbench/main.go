// Command rbsimbench measures the discrete-event simulation kernel at
// fleet scale and emits machine-readable results, so the 10^6-trial
// claim of ROADMAP item 3 is measured in CI rather than asserted.
//
// It drives three workloads:
//
//   - A fleet of concurrent trials (internal/fleet) on the timer-wheel
//     kernel at full scale — 10^6 trials by default — reporting events
//     per second, trials held, peak pending events, and steady-state
//     allocations per event (the dispatch path must report 0; the
//     binary exits nonzero otherwise).
//   - The same fleet on the binary-heap reference kernel at 1/10th
//     scale, for an apples-to-apples throughput comparison.
//   - The schedule+cancel cycle against a large standing backlog on
//     both kernels — the watchdog-timer pattern whose O(n) cost on the
//     old kernel motivated the wheel.
//
// It also replays one harness corpus scenario on both kernels and
// requires bit-identical digests, so the artifact records kernel
// equivalence alongside kernel speed.
//
// Usage:
//
//	rbsimbench -out BENCH_sim.json             # full run (10^6 trials)
//	rbsimbench -trials 100000 -out /dev/stdout # CI smoke scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/vclock"
)

// FleetResult is one fleet-scale kernel measurement.
type FleetResult struct {
	// Kernel is "wheel" or "heap".
	Kernel string `json:"kernel"`
	// Trials is the concurrent trial population; every trial holds
	// pending events for the entire run.
	Trials int `json:"trials"`
	// Events is the number of dispatched opcode events; Cancels the
	// number of O(1) watchdog cancellations.
	Events  uint64 `json:"events"`
	Cancels uint64 `json:"cancels"`
	// PeakPending is the maximum number of events held concurrently.
	PeakPending int `json:"peak_pending"`
	// EventsPerSec is dispatched events per wall-clock second.
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocsPerEvent is steady-state heap allocations per event,
	// measured over the post-warmup window with GC disabled. The
	// dispatch path claim is exactly 0.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// VirtualSeconds and WallSeconds situate the run.
	VirtualSeconds float64 `json:"virtual_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
}

// CancelResult measures the schedule+cancel cycle against a standing
// backlog.
type CancelResult struct {
	Kernel  string  `json:"kernel"`
	Backlog int     `json:"backlog"`
	NsPerOp float64 `json:"ns_per_op"`
}

// ScenarioResult measures one harness corpus scenario end-to-end.
type ScenarioResult struct {
	Kernel      string  `json:"kernel"`
	Steps       int     `json:"steps"`
	StepsPerSec float64 `json:"steps_per_sec"`
	Digest      string  `json:"digest"`
}

// Output is the emitted artifact.
type Output struct {
	// Fleet holds the fleet-scale runs (wheel at full scale, heap at
	// comparison scale).
	Fleet []FleetResult `json:"fleet"`
	// Cancel holds the schedule+cancel microbenchmarks.
	Cancel []CancelResult `json:"cancel"`
	// Scenario holds the end-to-end harness replays per kernel.
	Scenario []ScenarioResult `json:"scenario"`
	// DigestMatch records whether the two kernels produced bit-identical
	// scenario digests.
	DigestMatch bool `json:"digest_match"`
}

// runFleet drives one fleet to completion, measuring throughput and
// steady-state allocations.
func runFleet(kernel string, mk func() *vclock.Clock, trials, iters int) (FleetResult, error) {
	clock := mk()
	f, err := fleet.New(clock, fleet.Config{
		Trials:          trials,
		Iters:           iters,
		MeanIterSeconds: 30,
		WatchdogSeconds: 120,
		Seed:            42,
	})
	if err != nil {
		return FleetResult{}, err
	}

	// Warmup: one full round of iteration events grows the slab, the
	// ready heap, and the fleet arrays to their steady-state sizes.
	warm := uint64(trials)
	for f.Stats().Events < warm {
		if !f.Step() {
			return FleetResult{}, fmt.Errorf("%s fleet drained during warmup", kernel)
		}
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	startEvents := f.Stats().Events
	startWall := time.Now()
	for !f.Done() {
		if !f.Step() {
			return FleetResult{}, fmt.Errorf("%s fleet drained before completion", kernel)
		}
	}
	wall := time.Since(startWall).Seconds()
	runtime.ReadMemStats(&after)

	s := f.Stats()
	if s.Stalls != 0 {
		return FleetResult{}, fmt.Errorf("%s kernel lost %d iteration events (watchdogs fired)", kernel, s.Stalls)
	}
	measured := s.Events - startEvents
	return FleetResult{
		Kernel:         kernel,
		Trials:         s.Trials,
		Events:         s.Events,
		Cancels:        s.Cancels,
		PeakPending:    s.PeakPending,
		EventsPerSec:   float64(measured) / wall,
		AllocsPerEvent: float64(after.Mallocs-before.Mallocs) / float64(measured),
		VirtualSeconds: s.VirtualSeconds,
		WallSeconds:    wall,
	}, nil
}

// runCancel measures the schedule+cancel cycle against a standing
// backlog of pending events.
func runCancel(kernel string, mk func() *vclock.Clock, backlog, ops int) CancelResult {
	clock := mk()
	id := clock.RegisterDispatcher(func(op uint8, a, b int64) {})
	for i := 0; i < backlog; i++ {
		clock.AtOp(clock.Now()+vclock.Time(1+(i*7919)%backlog)*0.001, id, 0, 0, 0)
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		h := clock.AtOp(clock.Now()+vclock.Time(1+i%1000)*0.0005, id, 0, 0, 0)
		clock.Cancel(h)
	}
	return CancelResult{
		Kernel:  kernel,
		Backlog: backlog,
		NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(ops),
	}
}

// runScenario replays one harness corpus scenario on the given kernel.
func runScenario(kernel string, mk func() *vclock.Clock) (ScenarioResult, error) {
	sc := harness.Generate(2, 52) // scatter regression scenario: busiest corpus member
	start := time.Now()
	a, err := harness.RunScenarioOnKernel(sc, mk)
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("%s scenario: %w", kernel, err)
	}
	wall := time.Since(start).Seconds()
	return ScenarioResult{
		Kernel:      kernel,
		Steps:       a.Steps,
		StepsPerSec: float64(a.Steps) / wall,
		Digest:      fmt.Sprintf("%016x", uint64(harness.ComputeDigest(a))),
	}, nil
}

func main() {
	trials := flag.Int("trials", 1_000_000, "concurrent trials for the wheel-kernel fleet run")
	iters := flag.Int("iters", 4, "iterations per trial")
	out := flag.String("out", "BENCH_sim.json", "output path for the JSON artifact")
	flag.Parse()

	var o Output
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "rbsimbench:", err)
		os.Exit(1)
	}

	// Fleet scale: wheel at full population, heap at 1/10th for the
	// throughput comparison (its log-factor and cancel cost make full
	// scale needlessly slow to measure).
	wf, err := runFleet("wheel", vclock.New, *trials, *iters)
	if err != nil {
		fail(err)
	}
	o.Fleet = append(o.Fleet, wf)
	heapTrials := *trials / 10
	if heapTrials < 1 {
		heapTrials = 1
	}
	hf, err := runFleet("heap", vclock.NewHeap, heapTrials, *iters)
	if err != nil {
		fail(err)
	}
	o.Fleet = append(o.Fleet, hf)

	// Schedule+cancel against a backlog.
	const backlog, ops = 128 << 10, 2_000_000
	o.Cancel = append(o.Cancel, runCancel("wheel", vclock.New, backlog, ops))
	o.Cancel = append(o.Cancel, runCancel("heap", vclock.NewHeap, backlog, ops))

	// End-to-end corpus scenario on both kernels; digests must match.
	ws, err := runScenario("wheel", vclock.New)
	if err != nil {
		fail(err)
	}
	hs, err := runScenario("heap", vclock.NewHeap)
	if err != nil {
		fail(err)
	}
	o.Scenario = append(o.Scenario, ws, hs)
	o.DigestMatch = ws.Digest == hs.Digest

	// Enforce the artifact's headline claims: zero-alloc dispatch and
	// kernel equivalence. A nonzero exit turns a regression into a CI
	// failure, not a quietly drifting number.
	if wf.AllocsPerEvent != 0 {
		fail(fmt.Errorf("wheel dispatch path allocated %.4f objects/event, want 0", wf.AllocsPerEvent))
	}
	if !o.DigestMatch {
		fail(fmt.Errorf("kernel digest divergence: wheel %s, heap %s", ws.Digest, hs.Digest))
	}

	data, err := json.MarshalIndent(&o, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wheel: %d trials, %.0f events/sec, %.4f allocs/event, peak %d pending\n",
		wf.Trials, wf.EventsPerSec, wf.AllocsPerEvent, wf.PeakPending)
	fmt.Printf("heap:  %d trials, %.0f events/sec (comparison scale)\n", hf.Trials, hf.EventsPerSec)
	fmt.Printf("cancel vs %d backlog: wheel %.0f ns/op, heap %.0f ns/op\n",
		backlog, o.Cancel[0].NsPerOp, o.Cancel[1].NsPerOp)
	fmt.Printf("scenario digests match: %v\n", o.DigestMatch)
}
