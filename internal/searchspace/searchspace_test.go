package searchspace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestUniformBounds(t *testing.T) {
	s := MustNew(Uniform{Key: "x", Lo: 2, Hi: 5})
	r := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := s.Sample(r).Float("x")
		if v < 2 || v >= 5 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestLogUniformBounds(t *testing.T) {
	s := MustNew(LogUniform{Key: "lr", Lo: 1e-4, Hi: 1})
	r := stats.NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := s.Sample(r).Float("lr")
		if v < 1e-4 || v > 1 {
			t.Fatalf("loguniform out of range: %v", v)
		}
	}
}

func TestLogUniformIsLogScale(t *testing.T) {
	// Roughly half the mass should land below the geometric midpoint.
	s := MustNew(LogUniform{Key: "lr", Lo: 1e-4, Hi: 1})
	r := stats.NewRNG(3)
	mid := math.Sqrt(1e-4 * 1) // 1e-2
	below := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Sample(r).Float("lr") < mid {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction below geometric midpoint = %v, want ~0.5", frac)
	}
}

func TestIntRange(t *testing.T) {
	s := MustNew(IntRange{Key: "layers", Lo: 2, Hi: 4})
	r := stats.NewRNG(4)
	seen := make(map[float64]bool)
	for i := 0; i < 1000; i++ {
		v := s.Sample(r).Float("layers")
		if v != math.Trunc(v) || v < 2 || v > 4 {
			t.Fatalf("IntRange sampled %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("expected all of {2,3,4}, saw %v", seen)
	}
}

func TestChoice(t *testing.T) {
	s := MustNew(Choice{Key: "opt", Options: []string{"sgd", "adam"}})
	r := stats.NewRNG(5)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		seen[s.Sample(r).Str("opt")] = true
	}
	if !seen["sgd"] || !seen["adam"] {
		t.Errorf("choice did not cover options: %v", seen)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		dims []Dimension
	}{
		{"empty name", []Dimension{Uniform{Key: ""}}},
		{"duplicate", []Dimension{Uniform{Key: "a", Hi: 1}, Choice{Key: "a", Options: []string{"x"}}}},
		{"uniform hi<lo", []Dimension{Uniform{Key: "a", Lo: 2, Hi: 1}}},
		{"loguniform lo<=0", []Dimension{LogUniform{Key: "a", Lo: 0, Hi: 1}}},
		{"intrange hi<lo", []Dimension{IntRange{Key: "a", Lo: 3, Hi: 1}}},
		{"choice empty", []Dimension{Choice{Key: "a"}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.dims...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	s := DefaultVisionSpace()
	a := s.SampleN(stats.NewRNG(7), 5)
	b := s.SampleN(stats.NewRNG(7), 5)
	for i := range a {
		for _, k := range s.Dimensions() {
			if a[i].Float(k) != b[i].Float(k) {
				t.Fatalf("sample %d key %s differs", i, k)
			}
		}
	}
}

func TestDimensionsSorted(t *testing.T) {
	s := DefaultVisionSpace()
	dims := s.Dimensions()
	want := []string{"lr", "momentum", "weight_decay"}
	if len(dims) != len(want) {
		t.Fatalf("dims = %v", dims)
	}
	for i := range want {
		if dims[i] != want[i] {
			t.Fatalf("dims = %v, want %v", dims, want)
		}
	}
}

func TestConfigPanics(t *testing.T) {
	c := Config{"x": 1.0, "s": "v"}
	for name, fn := range map[string]func(){
		"missing float":  func() { c.Float("nope") },
		"wrong type":     func() { c.Float("s") },
		"missing string": func() { c.Str("nope") },
		"not string":     func() { c.Str("x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	if c.Float("x") != 1.0 || c.Str("s") != "v" {
		t.Error("valid accessors failed")
	}
}

func TestDefaultNLPSpace(t *testing.T) {
	s := DefaultNLPSpace()
	cfg := s.Sample(stats.NewRNG(9))
	if lr := cfg.Float("lr"); lr < 1e-6 || lr > 1e-3 {
		t.Errorf("nlp lr %v out of range", lr)
	}
}

// Property: every sampled config contains exactly the space's dimensions
// with in-range values.
func TestQuickSampleComplete(t *testing.T) {
	f := func(seed uint64) bool {
		s := DefaultVisionSpace()
		cfg := s.Sample(stats.NewRNG(seed))
		if len(cfg) != 3 {
			return false
		}
		lr := cfg.Float("lr")
		mom := cfg.Float("momentum")
		wd := cfg.Float("weight_decay")
		return lr >= 1e-4 && lr <= 1 && mom >= 0.8 && mom < 0.99 && wd >= 1e-6 && wd <= 1e-2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
