// Package searchspace defines hyperparameter search spaces and sampling.
//
// RubberBand is agnostic to how configurations are chosen (§2): the user
// supplies a search space and a sampling method. This package provides the
// standard dimension types (uniform, log-uniform, integer, categorical)
// and deterministic seeded random sampling, which is all the evaluation
// workloads require.
package searchspace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Config is one sampled hyperparameter configuration: a mapping from
// dimension name to value. Values are float64 for numeric dimensions and
// string for categorical ones.
type Config map[string]any

// Float returns the named numeric value. It panics if the key is missing
// or not numeric — configs are produced by Space.Sample, so a miss is a
// programming error.
func (c Config) Float(name string) float64 {
	v, ok := c[name]
	if !ok {
		panic(fmt.Sprintf("searchspace: config missing %q", name))
	}
	f, ok := v.(float64)
	if !ok {
		panic(fmt.Sprintf("searchspace: config key %q is %T, not float64", name, v))
	}
	return f
}

// Str returns the named categorical value, panicking on a miss.
func (c Config) Str(name string) string {
	v, ok := c[name]
	if !ok {
		panic(fmt.Sprintf("searchspace: config missing %q", name))
	}
	s, ok := v.(string)
	if !ok {
		panic(fmt.Sprintf("searchspace: config key %q is %T, not string", name, v))
	}
	return s
}

// Dimension is one axis of the search space.
type Dimension interface {
	// Name identifies the hyperparameter.
	Name() string
	// Sample draws a value using r.
	Sample(r *stats.RNG) any
}

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Key    string
	Lo, Hi float64
}

// Name returns the dimension name.
func (u Uniform) Name() string { return u.Key }

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(r *stats.RNG) any { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// LogUniform samples log-uniformly from [Lo, Hi); both bounds must be
// positive. It is the conventional prior for learning rates and weight
// decay.
type LogUniform struct {
	Key    string
	Lo, Hi float64
}

// Name returns the dimension name.
func (l LogUniform) Name() string { return l.Key }

// Sample draws exp(U(log Lo, log Hi)).
func (l LogUniform) Sample(r *stats.RNG) any {
	lo, hi := math.Log(l.Lo), math.Log(l.Hi)
	return math.Exp(lo + (hi-lo)*r.Float64())
}

// IntRange samples an integer uniformly from [Lo, Hi] and returns it as a
// float64 so Config.Float works uniformly.
type IntRange struct {
	Key    string
	Lo, Hi int
}

// Name returns the dimension name.
func (i IntRange) Name() string { return i.Key }

// Sample draws an integer uniformly from [Lo, Hi].
func (i IntRange) Sample(r *stats.RNG) any {
	return float64(i.Lo + r.Intn(i.Hi-i.Lo+1))
}

// Choice samples uniformly from a fixed set of string options.
type Choice struct {
	Key     string
	Options []string
}

// Name returns the dimension name.
func (c Choice) Name() string { return c.Key }

// Sample draws one option uniformly.
func (c Choice) Sample(r *stats.RNG) any { return c.Options[r.Intn(len(c.Options))] }

// Space is a multi-dimensional search space.
type Space struct {
	dims []Dimension
}

// New builds a space from dimensions, rejecting duplicates and invalid
// bounds.
func New(dims ...Dimension) (*Space, error) {
	seen := make(map[string]bool, len(dims))
	for _, d := range dims {
		if d.Name() == "" {
			return nil, fmt.Errorf("searchspace: dimension with empty name")
		}
		if seen[d.Name()] {
			return nil, fmt.Errorf("searchspace: duplicate dimension %q", d.Name())
		}
		seen[d.Name()] = true
		switch v := d.(type) {
		case Uniform:
			if v.Hi < v.Lo {
				return nil, fmt.Errorf("searchspace: %q has Hi < Lo", v.Key)
			}
		case LogUniform:
			if v.Lo <= 0 || v.Hi < v.Lo {
				return nil, fmt.Errorf("searchspace: %q needs 0 < Lo <= Hi", v.Key)
			}
		case IntRange:
			if v.Hi < v.Lo {
				return nil, fmt.Errorf("searchspace: %q has Hi < Lo", v.Key)
			}
		case Choice:
			if len(v.Options) == 0 {
				return nil, fmt.Errorf("searchspace: %q has no options", v.Key)
			}
		}
	}
	return &Space{dims: append([]Dimension(nil), dims...)}, nil
}

// MustNew is New for static spaces; it panics on error.
func MustNew(dims ...Dimension) *Space {
	s, err := New(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dimensions returns the dimension names in sorted order.
func (s *Space) Dimensions() []string {
	names := make([]string, len(s.dims))
	for i, d := range s.dims {
		names[i] = d.Name()
	}
	sort.Strings(names)
	return names
}

// Sample draws one configuration.
func (s *Space) Sample(r *stats.RNG) Config {
	c := make(Config, len(s.dims))
	for _, d := range s.dims {
		c[d.Name()] = d.Sample(r)
	}
	return c
}

// SampleN draws n configurations.
func (s *Space) SampleN(r *stats.RNG, n int) []Config {
	out := make([]Config, n)
	for i := range out {
		out[i] = s.Sample(r)
	}
	return out
}

// DefaultVisionSpace returns the learning-rate / momentum / weight-decay
// space used by the image-classification tuning workloads.
func DefaultVisionSpace() *Space {
	return MustNew(
		LogUniform{Key: "lr", Lo: 1e-4, Hi: 1},
		Uniform{Key: "momentum", Lo: 0.8, Hi: 0.99},
		LogUniform{Key: "weight_decay", Lo: 1e-6, Hi: 1e-2},
	)
}

// DefaultNLPSpace returns a fine-tuning space typical of BERT on GLUE
// tasks.
func DefaultNLPSpace() *Space {
	return MustNew(
		LogUniform{Key: "lr", Lo: 1e-6, Hi: 1e-3},
		Uniform{Key: "dropout", Lo: 0.0, Hi: 0.3},
		LogUniform{Key: "weight_decay", Lo: 1e-6, Hi: 1e-1},
	)
}
