package searchspace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridCartesianSize(t *testing.T) {
	s := MustNew(
		Uniform{Key: "a", Lo: 0, Hi: 1},
		LogUniform{Key: "b", Lo: 0.001, Hi: 1},
		Choice{Key: "c", Options: []string{"x", "y"}},
	)
	grid, err := s.Grid(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3*3*2 {
		t.Fatalf("grid size %d, want 18", len(grid))
	}
	// Every config has all keys and in-range values.
	for _, c := range grid {
		a, b := c.Float("a"), c.Float("b")
		if a < 0 || a > 1 || b < 0.001-1e-12 || b > 1+1e-12 {
			t.Fatalf("out-of-range config %v", c)
		}
		if v := c.Str("c"); v != "x" && v != "y" {
			t.Fatalf("bad choice %q", v)
		}
	}
}

func TestGridLogSpacing(t *testing.T) {
	s := MustNew(LogUniform{Key: "lr", Lo: 1e-4, Hi: 1})
	grid, err := s.Grid(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Log-spaced: consecutive ratios are equal.
	ratio := grid[1].Float("lr") / grid[0].Float("lr")
	for i := 2; i < len(grid); i++ {
		r := grid[i].Float("lr") / grid[i-1].Float("lr")
		if math.Abs(r-ratio)/ratio > 1e-9 {
			t.Fatalf("not log-spaced: ratios %v vs %v", r, ratio)
		}
	}
	// Endpoints hit the bounds up to exp/log round-trip error.
	if math.Abs(grid[0].Float("lr")-1e-4) > 1e-12 || math.Abs(grid[4].Float("lr")-1) > 1e-12 {
		t.Fatalf("endpoints wrong: %v .. %v", grid[0].Float("lr"), grid[4].Float("lr"))
	}
}

func TestGridIntRange(t *testing.T) {
	s := MustNew(IntRange{Key: "layers", Lo: 2, Hi: 4})
	// More points than integers: exact enumeration, no duplicates.
	grid, err := s.Grid(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3 {
		t.Fatalf("grid = %v", grid)
	}
	for i, want := range []float64{2, 3, 4} {
		if grid[i].Float("layers") != want {
			t.Fatalf("grid[%d] = %v", i, grid[i])
		}
	}
}

func TestGridSinglePoint(t *testing.T) {
	s := MustNew(Uniform{Key: "a", Lo: 2, Hi: 4})
	grid, err := s.Grid(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 1 || grid[0].Float("a") != 3 {
		t.Fatalf("grid = %v", grid)
	}
}

func TestGridCap(t *testing.T) {
	s := MustNew(
		Uniform{Key: "a", Lo: 0, Hi: 1},
		Uniform{Key: "b", Lo: 0, Hi: 1},
		Uniform{Key: "c", Lo: 0, Hi: 1},
	)
	if _, err := s.Grid(100, 1000); err == nil {
		t.Fatal("cap not enforced")
	}
	if _, err := s.Grid(0, 0); err == nil {
		t.Fatal("zero pointsPerDim accepted")
	}
}

func TestGridDeterministicOrder(t *testing.T) {
	s := DefaultVisionSpace()
	a, err := s.Grid(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Grid(3, 0)
	for i := range a {
		for _, k := range s.Dimensions() {
			if a[i].Float(k) != b[i].Float(k) {
				t.Fatal("grid order not deterministic")
			}
		}
	}
}

// Property: grid size is exactly the product of per-dimension point
// counts (for continuous dimensions, pointsPerDim each).
func TestQuickGridSize(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%5) + 1
		s := MustNew(
			Uniform{Key: "a", Lo: 0, Hi: 1},
			LogUniform{Key: "b", Lo: 0.1, Hi: 1},
		)
		grid, err := s.Grid(n, 0)
		return err == nil && len(grid) == n*n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
