package searchspace

import (
	"fmt"
	"math"
	"sort"
)

// Grid enumerates a Cartesian grid over the space (Figure 2's "basic
// hyperparameter grid search"): numeric dimensions contribute
// pointsPerDim values — log-spaced for LogUniform, linearly spaced for
// Uniform and IntRange — and Choice dimensions contribute every option.
// Configurations are returned in deterministic lexicographic order of
// the sorted dimension names. It returns an error if the grid would
// exceed maxConfigs (0 means a default cap of 100000).
func (s *Space) Grid(pointsPerDim, maxConfigs int) ([]Config, error) {
	if pointsPerDim < 1 {
		return nil, fmt.Errorf("searchspace: pointsPerDim %d", pointsPerDim)
	}
	if maxConfigs <= 0 {
		maxConfigs = 100000
	}
	// Stable dimension order.
	dims := append([]Dimension(nil), s.dims...)
	sort.Slice(dims, func(i, j int) bool { return dims[i].Name() < dims[j].Name() })

	values := make([][]any, len(dims))
	total := 1
	for i, d := range dims {
		vs, err := gridValues(d, pointsPerDim)
		if err != nil {
			return nil, err
		}
		values[i] = vs
		if total > maxConfigs/len(vs)+1 {
			return nil, fmt.Errorf("searchspace: grid exceeds %d configurations", maxConfigs)
		}
		total *= len(vs)
		if total > maxConfigs {
			return nil, fmt.Errorf("searchspace: grid of %d configurations exceeds cap %d", total, maxConfigs)
		}
	}

	out := make([]Config, 0, total)
	idx := make([]int, len(dims))
	for {
		c := make(Config, len(dims))
		for i, d := range dims {
			c[d.Name()] = values[i][idx[i]]
		}
		out = append(out, c)
		// Odometer increment.
		k := len(dims) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(values[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return out, nil
}

// gridValues returns the grid points of one dimension.
func gridValues(d Dimension, n int) ([]any, error) {
	switch v := d.(type) {
	case Uniform:
		return linspace(v.Lo, v.Hi, n), nil
	case LogUniform:
		lo, hi := math.Log(v.Lo), math.Log(v.Hi)
		pts := linspace(lo, hi, n)
		for i := range pts {
			pts[i] = math.Exp(pts[i].(float64))
		}
		return pts, nil
	case IntRange:
		span := v.Hi - v.Lo
		if span+1 <= n {
			out := make([]any, 0, span+1)
			for x := v.Lo; x <= v.Hi; x++ {
				out = append(out, float64(x))
			}
			return out, nil
		}
		pts := linspace(float64(v.Lo), float64(v.Hi), n)
		for i := range pts {
			pts[i] = math.Round(pts[i].(float64))
		}
		return dedupe(pts), nil
	case Choice:
		out := make([]any, len(v.Options))
		for i, o := range v.Options {
			out[i] = o
		}
		return out, nil
	default:
		return nil, fmt.Errorf("searchspace: no grid for dimension type %T", d)
	}
}

// linspace returns n evenly spaced points from lo to hi inclusive (the
// midpoint for n == 1).
func linspace(lo, hi float64, n int) []any {
	if n == 1 {
		return []any{(lo + hi) / 2}
	}
	out := make([]any, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// dedupe removes consecutive duplicates (from integer rounding).
func dedupe(xs []any) []any {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
