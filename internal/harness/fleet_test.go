package harness

import (
	"strings"
	"testing"
)

// fe abbreviates fleet-event construction; Seq is assigned by seq().
func seq(events []FleetEvent) []FleetEvent {
	for i := range events {
		events[i].Seq = i
	}
	return events
}

// TestCheckFleetInvariantsCleanLog: a well-formed two-tenant log passes.
func TestCheckFleetInvariantsCleanLog(t *testing.T) {
	log := seq([]FleetEvent{
		{Kind: "submit", Exp: "a", Tenant: "t1"},
		{Kind: "submit", Exp: "b", Tenant: "t2"},
		{Kind: "admit", Exp: "a", Tenant: "t1", Held: 1},
		{Kind: "admit", Exp: "b", Tenant: "t2", Held: 1},
		{Kind: "grant", Exp: "a", Stage: 0, Want: 3, Granted: 3, Held: 3},
		{Kind: "grant", Exp: "b", Stage: 0, Want: 2, Granted: 1, Held: 1},
		{Kind: "done", Exp: "a", Tenant: "t1"},
		{Kind: "grant", Exp: "b", Stage: 1, Want: 2, Granted: 2, Held: 2},
		{Kind: "done", Exp: "b", Tenant: "t2"},
	})
	if vs := CheckFleetInvariants(log, 4, 1); len(vs) != 0 {
		t.Fatalf("clean log flagged: %v", vs)
	}
}

// TestCheckFleetInvariantsCatchesViolations: each corrupted log trips
// the oracle with the right complaint — the oracle itself is under test
// here, so the serve suites' clean results are meaningful.
func TestCheckFleetInvariantsCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		log  []FleetEvent
		cap  int
		want string
	}{
		{
			name: "oversubscription",
			log: seq([]FleetEvent{
				{Kind: "submit", Exp: "a", Tenant: "t"},
				{Kind: "submit", Exp: "b", Tenant: "t"},
				{Kind: "admit", Exp: "a", Tenant: "t", Held: 1},
				{Kind: "admit", Exp: "b", Tenant: "t", Held: 1},
				{Kind: "grant", Exp: "a", Want: 3, Granted: 3, Held: 3},
				{Kind: "grant", Exp: "b", Want: 2, Granted: 2, Held: 2},
				{Kind: "done", Exp: "a", Tenant: "t"},
				{Kind: "done", Exp: "b", Tenant: "t"},
			}),
			cap:  4,
			want: "GPUs held",
		},
		{
			name: "lost experiment",
			log: seq([]FleetEvent{
				{Kind: "submit", Exp: "a", Tenant: "t"},
				{Kind: "admit", Exp: "a", Tenant: "t", Held: 1},
			}),
			cap:  4,
			want: "lost",
		},
		{
			name: "double run",
			log: seq([]FleetEvent{
				{Kind: "submit", Exp: "a", Tenant: "t"},
				{Kind: "admit", Exp: "a", Tenant: "t", Held: 1},
				{Kind: "admit", Exp: "a", Tenant: "t", Held: 1},
				{Kind: "done", Exp: "a", Tenant: "t"},
			}),
			cap:  4,
			want: "admitted twice",
		},
		{
			name: "admission without submission",
			log: seq([]FleetEvent{
				{Kind: "admit", Exp: "ghost", Tenant: "t", Held: 1},
				{Kind: "done", Exp: "ghost", Tenant: "t"},
			}),
			cap:  4,
			want: "without submission",
		},
		{
			name: "fifo violation",
			log: seq([]FleetEvent{
				{Kind: "submit", Exp: "a", Tenant: "t"},
				{Kind: "submit", Exp: "b", Tenant: "t"},
				{Kind: "admit", Exp: "b", Tenant: "t", Held: 1},
				{Kind: "admit", Exp: "a", Tenant: "t", Held: 1},
				{Kind: "done", Exp: "a", Tenant: "t"},
				{Kind: "done", Exp: "b", Tenant: "t"},
			}),
			cap:  4,
			want: "not FIFO",
		},
		{
			name: "zero-gpu grant",
			log: seq([]FleetEvent{
				{Kind: "submit", Exp: "a", Tenant: "t"},
				{Kind: "admit", Exp: "a", Tenant: "t", Held: 1},
				{Kind: "grant", Exp: "a", Want: 2, Granted: 0, Held: 0},
				{Kind: "done", Exp: "a", Tenant: "t"},
			}),
			cap:  4,
			want: "granted 0",
		},
		{
			name: "grant after completion",
			log: seq([]FleetEvent{
				{Kind: "submit", Exp: "a", Tenant: "t"},
				{Kind: "admit", Exp: "a", Tenant: "t", Held: 1},
				{Kind: "done", Exp: "a", Tenant: "t"},
				{Kind: "grant", Exp: "a", Want: 2, Granted: 2, Held: 2},
			}),
			cap:  4,
			want: "non-live",
		},
		{
			name: "double completion",
			log: seq([]FleetEvent{
				{Kind: "submit", Exp: "a", Tenant: "t"},
				{Kind: "admit", Exp: "a", Tenant: "t", Held: 1},
				{Kind: "done", Exp: "a", Tenant: "t"},
				{Kind: "done", Exp: "a", Tenant: "t"},
			}),
			cap:  4,
			want: "completed twice",
		},
		{
			name: "out-of-order seq",
			log: []FleetEvent{
				{Seq: 5, Kind: "submit", Exp: "a", Tenant: "t"},
			},
			cap:  4,
			want: "global order",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := CheckFleetInvariants(tc.log, tc.cap, 8)
			found := false
			for _, v := range vs {
				if strings.Contains(v.Detail, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no violation matching %q, got %v", tc.want, vs)
			}
		})
	}
}

// TestCheckFleetInvariantsBoundedWait: an experiment overtaken by more
// than admitBound later admissions is starvation.
func TestCheckFleetInvariantsBoundedWait(t *testing.T) {
	log := seq([]FleetEvent{
		{Kind: "submit", Exp: "slow", Tenant: "t1"},
		{Kind: "submit", Exp: "q1", Tenant: "t2"},
		{Kind: "submit", Exp: "q2", Tenant: "t3"},
		{Kind: "submit", Exp: "q3", Tenant: "t4"},
		{Kind: "admit", Exp: "q1", Tenant: "t2", Held: 1},
		{Kind: "done", Exp: "q1", Tenant: "t2"},
		{Kind: "admit", Exp: "q2", Tenant: "t3", Held: 1},
		{Kind: "done", Exp: "q2", Tenant: "t3"},
		{Kind: "admit", Exp: "q3", Tenant: "t4", Held: 1},
		{Kind: "done", Exp: "q3", Tenant: "t4"},
		{Kind: "admit", Exp: "slow", Tenant: "t1", Held: 1},
		{Kind: "done", Exp: "slow", Tenant: "t1"},
	})
	if vs := CheckFleetInvariants(log, 4, 3); len(vs) != 0 {
		t.Fatalf("wait of 3 within bound 3 flagged: %v", vs)
	}
	vs := CheckFleetInvariants(log, 4, 2)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Detail, "waited behind") {
			found = true
		}
	}
	if !found {
		t.Fatalf("starvation beyond bound 2 not flagged: %v", vs)
	}
}
