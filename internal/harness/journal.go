package harness

import (
	"errors"
	"fmt"

	"repro/internal/cloud"
	"repro/internal/executor"
	"repro/internal/journal"
	"repro/internal/replan"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// RunScenarioJournaled runs sc end-to-end with every executor state
// transition and replan decision streamed through w, snapshots captured
// at w's interval, and an End record on completion. With a fresh writer
// this journals an uninterrupted run; with a writer from journal.Resume
// it performs verified recovery: the re-executed prefix is byte-compared
// against the journal, then the run continues by appending.
//
// Journaling is digest-invisible: the returned artifacts are
// bit-identical to RunScenario's for the same scenario.
func RunScenarioJournaled(sc Scenario, w *journal.Writer) (*Artifacts, error) {
	return runScenario(sc, w)
}

// allocI64 widens a plan allocation for its fixed-width journal encoding.
func allocI64(alloc []int) []int64 {
	if len(alloc) == 0 {
		return nil
	}
	out := make([]int64, len(alloc))
	for i, g := range alloc {
		out[i] = int64(g)
	}
	return out
}

// decisionRecord converts a replan decision into its journal record,
// which carries the full payload a trace event's note only renders.
func decisionRecord(d replan.Decision) *journal.Decision {
	return &journal.Decision{
		Seq:               int64(d.Seq),
		At:                float64(d.At),
		Reason:            string(d.Reason),
		Stage:             int64(d.Stage),
		Ratio:             d.Ratio,
		RemainingDeadline: d.RemainingDeadline,
		OldAlloc:          allocI64(d.OldPlan.Alloc),
		NewAlloc:          allocI64(d.NewPlan.Alloc),
		StaleJCT:          d.StaleEstimate.JCT,
		StaleCost:         d.StaleEstimate.Cost,
		NewJCT:            d.NewEstimate.JCT,
		NewCost:           d.NewEstimate.Cost,
		Adopted:           d.Adopted,
		Infeasible:        d.Infeasible,
	}
}

// captureSnapshot reads the full control-plane state for a journal
// snapshot: clock cursor, live plan and trial states, accrued billing,
// replan EWMAs, and RNG stream cursors. It is a pure read — no RNG
// draws, no mutation — so snapshotting never perturbs the run. job is
// nil for snapshots taken during executor.Start's first records, in
// every run alike, so recovery still verifies byte-identically.
func captureSnapshot(clock *vclock.Clock, job *executor.Job, provider *cloud.Provider,
	rec *trace.Recorder, ctl *replan.Controller, execRNG, provRNG *stats.RNG) *journal.Snapshot {
	now := clock.Now()
	s := &journal.Snapshot{
		VNow:           float64(now),
		ClockSeq:       clock.Seq(),
		Stage:          -1,
		TotalCost:      provider.TotalCost(now),
		DataCost:       provider.DataCost(),
		Instances:      int64(len(provider.Instances())),
		BusyGPUSeconds: rec.BusyGPUSeconds(),
		ExecRNG:        execRNG.State(),
		ProviderRNG:    provRNG.State(),
	}
	if job != nil {
		s.Stage = int64(job.Stage())
		s.Alloc = allocI64(job.CurrentPlan().Alloc)
		s.ExecFold = job.StateFold()
		for _, t := range job.Trials() {
			acc, ok := t.LatestAccuracy()
			s.Trials = append(s.Trials, journal.TrialSnap{
				ID:       int64(t.ID()),
				State:    int64(t.State()),
				CumIters: int64(t.CumIters()),
				HasAcc:   ok,
				Acc:      acc,
			})
		}
	}
	if ctl != nil {
		ds := ctl.DetectorState()
		s.HasReplan = true
		s.TotalObs = int64(ds.TotalObs)
		for _, a := range ds.Allocs {
			s.Allocs = append(s.Allocs, journal.AllocEWMA{
				GPUs: int64(a.GPUs), EWMA: a.EWMA, Count: int64(a.Count),
			})
		}
		s.OverheadEWMA = ds.OverheadEWMA
		s.OverheadCount = int64(ds.OverheadCount)
		s.Armed = ds.Armed
		s.LastReplan = float64(ds.LastReplan)
		s.Decisions = int64(ds.Decisions)
	}
	return s
}

// CrashPoint describes one injected control-plane kill: the run dies
// when it is about to journal record Seq (0-based), leaving the journal
// with exactly Seq records plus Torn bytes of the fatal record's frame —
// a mid-write crash when Torn > 0, a clean kill at a record boundary
// otherwise.
type CrashPoint struct {
	Seq  uint64
	Torn int
}

// RecoveryOutcome reports one crash/recover experiment.
type RecoveryOutcome struct {
	// Baseline is the uninterrupted journaled run's digest; Recovered is
	// the digest of the run killed at Crash and resumed from its journal.
	Baseline  Digest
	Recovered Digest
	// Records is the total journal length of the completed run.
	Records uint64
	// Crash is the injected kill.
	Crash CrashPoint
	// Damage is what Resume reported on the crashed journal (non-empty
	// exactly when the kill tore a frame).
	Damage string
}

// CrashRecover exercises the crash/restart fault model for one scenario:
//
//  1. an uninterrupted journaled reference run on its own backend,
//  2. a run killed at a crash point chosen by pick (given the reference
//     journal's total record count),
//  3. verified recovery resumed from the crashed journal.
//
// mk builds a fresh backend per role ("baseline", "crashed"); tests pass
// in-memory or file-backed constructors. The returned problem strings
// are the recovery-equivalence oracle's findings: empty means the
// recovered run's digest is bit-identical to the uninterrupted one's and
// both journals hold byte-identical records and snapshots.
func CrashRecover(sc Scenario, interval uint64, pick func(totalRecords uint64) CrashPoint,
	mk func(role string) (journal.Backend, error)) (RecoveryOutcome, []string, error) {
	var out RecoveryOutcome

	// Uninterrupted reference.
	base, err := mk("baseline")
	if err != nil {
		return out, nil, err
	}
	defer base.Close()
	wb := journal.NewWriter(base, interval)
	ab, err := RunScenarioJournaled(sc, wb)
	if err != nil {
		return out, nil, fmt.Errorf("baseline journaled run: %w", err)
	}
	out.Baseline = ComputeDigest(ab)
	out.Records = wb.Seq()
	out.Crash = pick(out.Records)

	// Killed run. The crash surfaces as journal.ErrCrash; everything in
	// memory is dropped and only the backend survives.
	crashed, err := mk("crashed")
	if err != nil {
		return out, nil, err
	}
	defer crashed.Close()
	wc := journal.NewWriter(crashed, interval)
	wc.SetCrashPoint(out.Crash.Seq, out.Crash.Torn)
	if _, err := RunScenarioJournaled(sc, wc); !errors.Is(err, journal.ErrCrash) {
		return out, nil, fmt.Errorf("crash at record %d did not kill the run (err=%v)", out.Crash.Seq, err)
	}

	// Verified recovery: resume from the journal tail and re-drive the
	// run; the writer byte-checks the prefix and appends the rest.
	w2, hdr, damage, err := journal.Resume(crashed, interval)
	if err != nil {
		return out, nil, fmt.Errorf("resume after crash at %d: %w", out.Crash.Seq, err)
	}
	out.Damage = damage
	var problems []string
	if hdr != nil && (hdr.BatchSeed != sc.BatchSeed || hdr.Index != int64(sc.Index)) {
		problems = append(problems, fmt.Sprintf(
			"journal header identifies run (seed=%d index=%d), want (seed=%d index=%d)",
			hdr.BatchSeed, hdr.Index, sc.BatchSeed, sc.Index))
		return out, problems, nil
	}
	ar, err := RunScenarioJournaled(sc, w2)
	if err != nil {
		return out, nil, fmt.Errorf("recovery from crash at record %d (torn %d, damage %q): %w",
			out.Crash.Seq, out.Crash.Torn, damage, err)
	}
	out.Recovered = ComputeDigest(ar)

	if out.Recovered != out.Baseline {
		problems = append(problems, fmt.Sprintf(
			"recovered digest %016x != uninterrupted digest %016x (crash at record %d/%d, torn %d)",
			uint64(out.Recovered), uint64(out.Baseline), out.Crash.Seq, out.Records, out.Crash.Torn))
	}
	if w2.Seq() != out.Records {
		problems = append(problems, fmt.Sprintf(
			"recovered journal has %d records, uninterrupted has %d", w2.Seq(), out.Records))
	}
	diff, err := journal.Diff(base, crashed)
	if err != nil {
		return out, nil, err
	}
	if diff != "" {
		problems = append(problems, fmt.Sprintf(
			"recovered journal differs from uninterrupted journal: %s (crash at record %d, torn %d)",
			diff, out.Crash.Seq, out.Crash.Torn))
	}
	return out, problems, nil
}

// Snapshot intervals the seeded crash fault model draws from: dense,
// sparse, and disabled, so recovery is exercised both near and far from
// snapshot points.
var crashIntervals = []uint64{1, 7, 32, 0}

// checkRecovery is the recovery-equivalence oracle: it derives a seeded
// crash point for the scenario (a virtual instant, expressed as the
// journal sequence reached at that point in the run), kills and recovers
// the control plane there on an in-memory backend, and requires the
// recovered run to be bit-identical to the uninterrupted one — digest
// and journal both. want is the scenario's plain (unjournaled) digest;
// the oracle also requires journaling itself to be digest-invisible.
func checkRecovery(sc Scenario, want Digest) []Violation {
	r := scenarioRoot(sc.BatchSeed, sc.Index).Stream(streamCrash)
	interval := crashIntervals[r.Intn(len(crashIntervals))]
	frac := r.Float64()
	torn := 0
	if r.Intn(2) == 1 {
		torn = 1 + r.Intn(40)
	}
	pick := func(total uint64) CrashPoint {
		// total ≥ 2 (header + End); crash anywhere in [1, total-1] so the
		// kill always loses real state but the header survives. Seq 0
		// (nothing durable) is covered by the sweep tests.
		seq := 1 + uint64(frac*float64(total-1))
		if seq >= total {
			seq = total - 1
		}
		return CrashPoint{Seq: seq, Torn: torn}
	}
	outcome, problems, err := CrashRecover(sc, interval, pick, func(string) (journal.Backend, error) {
		return journal.NewMemBackend(), nil
	})
	const oracle = "recovery-equivalence"
	if err != nil {
		return []Violation{{Oracle: oracle, Detail: err.Error()}}
	}
	var out []Violation
	if outcome.Baseline != want {
		out = append(out, Violation{Oracle: oracle, Detail: fmt.Sprintf(
			"journaling perturbed the run: journaled digest %016x != plain digest %016x",
			uint64(outcome.Baseline), uint64(want))})
	}
	for _, p := range problems {
		out = append(out, Violation{Oracle: oracle, Detail: p})
	}
	return out
}
