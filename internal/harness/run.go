package harness

import (
	"errors"
	"fmt"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/journal"
	"repro/internal/planner"
	"repro/internal/replan"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// DriftClass labels a scenario's relationship between injected drift and
// the sampled deadline, computed at plan time from analytic bounds (no
// Monte-Carlo). Oracles use it to tell a legitimate
// infeasible-after-drift outcome from a planner bug.
type DriftClass int

const (
	// DriftNone means no drift was injected.
	DriftNone DriftClass = iota
	// DriftFeasible means drift was injected but the deadline may still
	// be reachable under the drifted latency regime.
	DriftFeasible
	// DriftInfeasible means even a full static cluster at MaxGPUs running
	// the whole job under the drifted regime would miss the deadline —
	// no replan can save the run.
	DriftInfeasible
)

// String renders the class for reports.
func (d DriftClass) String() string {
	switch d {
	case DriftNone:
		return "none"
	case DriftFeasible:
		return "feasible"
	case DriftInfeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("DriftClass(%d)", int(d))
	}
}

// maxSteps bounds the number of virtual-clock events one scenario may
// execute. The largest generated scenarios finish in well under 100k
// events; hitting the bound means the pipeline livelocked (for example, a
// recovery loop that no longer makes progress), which is itself a
// reportable bug rather than a reason to hang the harness.
const maxSteps = 2_000_000

// errLivelock is returned when a scenario exhausts maxSteps.
var errLivelock = errors.New("harness: event budget exhausted before job completion (livelock?)")

// GrantRequest is one stage-boundary resource request presented to an
// arbiter gate: the executor is about to start Stage and the live plan
// calls for Want GPUs. Now is the virtual clock, Deadline the job
// deadline, and PredictedRemaining the planner-predicted virtual seconds
// of work left from this stage onward — Deadline − Now −
// PredictedRemaining is the request's deadline slack, the quantity
// HyperSched-style arbitration ranks by.
type GrantRequest struct {
	Stage              int
	Want               int
	Now                float64
	Deadline           float64
	PredictedRemaining float64
}

// GrantFn arbitrates one GrantRequest, returning the granted GPU count.
// Grants are clamped to [1, Want]: one GPU still makes progress through
// queued trial waves, so a gate can squeeze but never stall a stage.
// The gate is called synchronously inside the executor's stage
// transition, so it must not block on the run's own progress.
type GrantFn func(GrantRequest) int

// GrantDecision is one recorded arbitration outcome.
type GrantDecision struct {
	Stage   int
	Want    int
	Granted int
	At      float64
}

// RunConfig bundles the optional knobs of a scenario run.
type RunConfig struct {
	// Journal, if non-nil, streams every state transition through the
	// writer (write-ahead) exactly as RunScenarioJournaled does.
	Journal *journal.Writer
	// Gate, if non-nil, arbitrates every stage-boundary allocation. The
	// decisions are recorded in Artifacts.Grants, journaled as Grant
	// records, and folded into the digest, so a gated run is a pure
	// function of (scenario, grant sequence). Gated scenarios must not
	// enable the replan controller: both rewrite the live plan.
	Gate GrantFn
	// NewClock supplies the simulation kernel (default vclock.New).
	NewClock func() *vclock.Clock
}

// Artifacts bundles everything a run produced that oracles inspect: the
// plan and its prediction, the realized result, the full event trace, and
// the provider-side billing state.
type Artifacts struct {
	Scenario Scenario
	// Plan is the executed allocation plan. Planned reports whether it
	// came from the elastic planner (true) or the 1-GPU-per-trial
	// fallback used when the sampled deadline was infeasible.
	Plan    sim.Plan
	Planned bool
	// Estimate is the planner's prediction (valid only when Planned).
	Estimate sim.Estimate
	// Deadline is the sampled job deadline in seconds.
	Deadline float64
	// Result is the realized execution outcome.
	Result *executor.Result
	// Recorder holds the full event trace and busy-GPU accounting.
	Recorder *trace.Recorder
	// Instances is the provider's complete instance ledger.
	Instances []*cloud.Instance
	// DataCost is the provider's accumulated ingress charge.
	DataCost float64
	// Retries counts provisioning requests reissued after failures.
	Retries int
	// GPN is the worker instance's GPU count.
	GPN int
	// Steps is the number of virtual-clock events executed.
	Steps int
	// DriftClass labels the scenario's drift-vs-deadline relationship.
	DriftClass DriftClass
	// Grants is the stage-boundary arbitration record of a gated run
	// (empty for ungated runs). Replaying the same scenario under a gate
	// that re-issues this sequence reproduces the digest bit for bit.
	Grants []GrantDecision
}

// finishedAt returns the virtual completion instant of the run.
func (a *Artifacts) finishedAt() vclock.Time { return vclock.Time(a.Result.JCT) }

// RunScenario executes one scenario end-to-end: it builds the simulator,
// plans under the sampled deadline (falling back to a minimal elastic
// plan when the deadline is infeasible), wires a faulty provider and
// cluster manager on a fresh virtual clock, and drives the executor to
// completion. Every random stream is derived from (BatchSeed, Index), so
// repeated calls produce bit-identical artifacts.
func RunScenario(sc Scenario) (*Artifacts, error) { return runScenario(sc, nil) }

// RunScenarioOnKernel is RunScenario on a caller-chosen simulation
// kernel: newClock supplies the virtual clock (vclock.New for the
// production timer wheel, vclock.NewHeap for the reference binary
// heap). The differential kernel suite runs every corpus scenario under
// both and requires bit-identical artifacts; everything downstream of
// the clock is kernel-agnostic.
func RunScenarioOnKernel(sc Scenario, newClock func() *vclock.Clock) (*Artifacts, error) {
	return runWith(sc, RunConfig{NewClock: newClock})
}

// RunScenarioArbitrated runs sc with every stage-boundary allocation
// arbitrated by gate — the offline replay path for multi-tenant runs: a
// scripted gate re-issuing a recorded grant sequence reproduces the
// server-side digest bit for bit.
func RunScenarioArbitrated(sc Scenario, gate GrantFn) (*Artifacts, error) {
	return runWith(sc, RunConfig{Gate: gate})
}

// runScenario is RunScenario with an optional journal writer: when jw is
// non-nil, every executor state transition and replan decision streams
// through it (write-ahead), snapshots are captured at its interval, and
// a crash or divergence latched by the writer aborts the run between
// clock steps. Journaling draws no randomness and mutates no run state,
// so a journaled run's artifacts are bit-identical to a plain run's.
func runScenario(sc Scenario, jw *journal.Writer) (*Artifacts, error) {
	return runWith(sc, RunConfig{Journal: jw})
}

// runScenarioOn is the journaled kernel-parameterized entry the
// differential suites use.
func runScenarioOn(sc Scenario, jw *journal.Writer, newClock func() *vclock.Clock) (*Artifacts, error) {
	return runWith(sc, RunConfig{Journal: jw, NewClock: newClock})
}

// runWith starts the scenario and drives it to completion.
func runWith(sc Scenario, rc RunConfig) (*Artifacts, error) {
	r, err := StartScenario(sc, rc)
	if err != nil {
		return nil, err
	}
	for !r.Done() {
		if err := r.Step(); err != nil {
			return nil, err
		}
	}
	return r.Finish()
}

// Running is an in-flight scenario run driven by its caller: the serve
// control plane steps many Runnings against one arbiter, and tests step
// them in lockstep. Step/Done/Finish must be called from one goroutine;
// the read accessors may race only with that goroutine's steps, so
// concurrent callers (an HTTP status endpoint) must synchronize
// externally.
type Running struct {
	sc       Scenario
	a        *Artifacts
	jw       *journal.Writer
	clock    *vclock.Clock
	job      *executor.Job
	provider *cloud.Provider
	mgr      *cluster.Manager
	rec      *trace.Recorder
	finished bool
}

// StartScenario builds the full pipeline for sc — simulator, plan,
// substrate, executor — and returns it un-driven: the first Step
// executes the first virtual-clock event. See RunConfig for the knobs.
func StartScenario(sc Scenario, rc RunConfig) (*Running, error) {
	jw, gate, newClock := rc.Journal, rc.Gate, rc.NewClock
	if newClock == nil {
		newClock = vclock.New
	}
	if gate == nil && len(sc.ArbiterCaps) > 0 {
		gate = capGate(sc.ArbiterCaps)
	}
	if gate != nil && sc.ReplanEnabled {
		return nil, fmt.Errorf("harness: arbitrated runs require ReplanEnabled=false (both rewrite the live plan)")
	}
	root := scenarioRoot(sc.BatchSeed, sc.Index)

	// Plan. The simulator gets its own stream; planning runs serially so
	// scenario-level parallelism composes without nested pools.
	profile := sim.ModelTrainProfile{
		Model:       sc.Model,
		Batch:       sc.Model.BaseBatch,
		GPUsPerNode: sc.Profile.Instance.GPUs,
	}
	sm, err := sim.New(sc.Spec, profile, sc.Profile, sc.Samples, root.Stream(streamSim), sim.WithWorkers(1), sim.WithEstimator(sc.Estimator))
	if err != nil {
		return nil, fmt.Errorf("harness: simulator: %w", err)
	}
	deadline := sm.StaticClusterJCT(sc.MaxGPUs) * sc.DeadlineFactor
	p := &planner.Planner{Sim: sm, Deadline: deadline, MaxGPUs: sc.MaxGPUs, Workers: 1}
	a := &Artifacts{Scenario: sc, Deadline: deadline, GPN: sc.Profile.Instance.GPUs}
	if pres, perr := p.PlanElastic(); perr == nil {
		a.Plan, a.Estimate, a.Planned = pres.Plan, pres.Estimate, true
	} else {
		// Infeasible deadline (or an equally deliberate planner refusal):
		// execute the minimal elastic plan so the executor path is still
		// exercised. The deadline oracle skips unplanned runs.
		alloc := make([]int, sc.Spec.NumStages())
		for i := range alloc {
			alloc[i] = sc.Spec.Stage(i).Trials
		}
		a.Plan = sim.Plan{Alloc: alloc}
	}

	// Classify the injected drift against the deadline: if even the full
	// static cluster running the whole job at the drifted latency misses
	// the deadline, no replan can save the run and oracles must not treat
	// an infeasible-after-drift outcome as a bug. StaticClusterJCT is
	// analytic (means only, no Monte-Carlo), so this draws nothing.
	if sc.Drift.Active() {
		a.DriftClass = DriftFeasible
		if sc.Drift.Factor > 1 {
			dsm, derr := sim.New(sc.Spec, sim.ScaledTrainProfile{Base: profile, Factor: sc.Drift.Factor},
				sc.Profile, sc.Samples, root.Stream(streamSim), sim.WithWorkers(1), sim.WithEstimator(sc.Estimator))
			if derr != nil {
				return nil, fmt.Errorf("harness: drifted simulator: %w", derr)
			}
			if deadline < dsm.StaticClusterJCT(sc.MaxGPUs) {
				a.DriftClass = DriftInfeasible
			}
		}
	}

	// Drift injection: a step function of virtual time only, so enabling
	// it never perturbs any RNG stream.
	var latencyScale func(vclock.Time) float64
	if sc.Drift.Active() {
		onset := vclock.Time(deadline * sc.Drift.StartFraction)
		factor := sc.Drift.Factor
		latencyScale = func(now vclock.Time) float64 {
			if now >= onset {
				return factor
			}
			return 1
		}
	}

	// Journal the run header before any state transition: the journal's
	// first record pins the run's identity and the executed plan, so
	// recovery can refuse a foreign journal before re-executing anything.
	if jw != nil {
		if err := jw.Record(&journal.Header{
			BatchSeed: sc.BatchSeed,
			Index:     int64(sc.Index),
			Interval:  jw.Interval(),
			Deadline:  deadline,
			Planned:   a.Planned,
			Alloc:     allocI64(a.Plan.Alloc),
		}); err != nil {
			return nil, err
		}
	}

	// The replan controller only runs for planner-produced plans: the
	// fallback plan is already the planner's declaration of infeasibility
	// and there is no deadline budget to re-divide.
	var ctl *replan.Controller
	if sc.ReplanEnabled && a.Planned {
		ctl, err = replan.NewController(replan.Config{
			Spec:            sc.Spec,
			Profile:         profile,
			Cloud:           sc.Profile,
			Deadline:        deadline,
			MaxGPUs:         sc.MaxGPUs,
			Samples:         sc.Samples,
			Workers:         1,
			Estimator:       sc.Estimator,
			RNG:             root.Stream(streamReplan),
			Threshold:       sc.DriftThreshold,
			CooldownSeconds: sc.ReplanCooldown,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: replan controller: %w", err)
		}
	}

	// Execute on a fresh substrate. The executor and provider RNG streams
	// are held by name so control-plane snapshots can capture their
	// cursors (Stream is pure: these are the same streams the run uses).
	clock := newClock()
	execRNG := root.Stream(streamExecutor)
	provRNG := root.Stream(streamProvider)
	provider, err := cloud.NewProvider(clock, provRNG,
		sc.Profile.Pricing, sc.Profile.Overheads, sc.Profile.DatasetGB)
	if err != nil {
		return nil, fmt.Errorf("harness: provider: %w", err)
	}
	if err := provider.SetFaults(sc.Faults); err != nil {
		return nil, fmt.Errorf("harness: faults: %w", err)
	}
	mgr, err := cluster.NewManager(provider, sc.Profile.Instance, clock)
	if err != nil {
		return nil, fmt.Errorf("harness: cluster: %w", err)
	}
	rec := trace.New()

	// Journal wiring. Observers latch errors inside the writer; the step
	// loop below polls jw.Err so a crash or divergence inside an event
	// callback stops the run at the next step boundary (the moral
	// equivalent of the process dying between scheduler events). The
	// snapshot closure must be registered before executor.Start because
	// Start already records events; it reads through the job pointer,
	// which is nil for those first records in every run alike.
	var job *executor.Job
	if jw != nil {
		if ctl != nil {
			ctl.SetObserver(func(d replan.Decision) { jw.Observe(decisionRecord(d)) })
		}
		rec.SetObserver(func(e trace.Event) { jw.Observe(journal.FromTrace(e)) })
		jw.SetSnapshotFunc(func() *journal.Snapshot {
			return captureSnapshot(clock, job, provider, rec, ctl, execRNG, provRNG)
		})
	}

	// Gate wiring: the executor's stage-boundary hook computes deadline
	// slack from planned work fractions, consults the gate, and records
	// the decision (artifacts + journal) before applying it. Predicted
	// remaining time scales the planned JCT by the fraction of
	// trial-iterations not yet started — analytic, so arbitration draws
	// no randomness.
	var stageGate func(stage, planned int) int
	if gate != nil {
		total := 0.0
		cum := make([]float64, sc.Spec.NumStages()+1)
		for i := 0; i < sc.Spec.NumStages(); i++ {
			st := sc.Spec.Stage(i)
			total += float64(st.Trials * st.Iters)
			cum[i+1] = total
		}
		predictedJCT := deadline
		if a.Planned {
			predictedJCT = a.Estimate.JCT
		}
		stageGate = func(stage, planned int) int {
			now := float64(clock.Now())
			remaining := predictedJCT
			if total > 0 {
				remaining = predictedJCT * (total - cum[stage]) / total
			}
			g := gate(GrantRequest{
				Stage: stage, Want: planned, Now: now,
				Deadline: deadline, PredictedRemaining: remaining,
			})
			if g < 1 {
				g = 1
			}
			if g > planned {
				g = planned
			}
			a.Grants = append(a.Grants, GrantDecision{Stage: stage, Want: planned, Granted: g, At: now})
			if jw != nil {
				jw.Observe(&journal.Grant{
					Stage: int64(stage), Want: int64(planned), Granted: int64(g), At: now,
				})
			}
			return g
		}
	}

	job, err = executor.Start(executor.Config{
		Spec:             sc.Spec,
		Plan:             a.Plan,
		Model:            sc.Model,
		Batch:            sc.Model.BaseBatch,
		Configs:          sc.Space.SampleN(root.Stream(streamConfigs), sc.Spec.TotalTrials()),
		Provider:         provider,
		Cluster:          mgr,
		Clock:            clock,
		RNG:              execRNG,
		DisablePlacement: sc.DisablePlacement,
		RestoreSeconds:   sc.RestoreSeconds,
		Trace:            rec,
		LatencyScale:     latencyScale,
		Replan:           ctl,
		StageGate:        stageGate,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: start: %w", err)
	}
	return &Running{
		sc: sc, a: a, jw: jw, clock: clock, job: job,
		provider: provider, mgr: mgr, rec: rec,
	}, nil
}

// capGate is the scripted gate of cap-carrying scenarios: stage i is
// granted at most caps[i] GPUs — a pure function of the scenario, so
// chaos-generated gated runs stay replayable from (seed, index) alone.
func capGate(caps []int) GrantFn {
	return func(req GrantRequest) int {
		if req.Stage < len(caps) && caps[req.Stage] < req.Want {
			return caps[req.Stage]
		}
		return req.Want
	}
}

// Done reports whether the job has completed (successfully or not).
func (r *Running) Done() bool { return r.job.Done() }

// Step executes one virtual-clock event, enforcing the journal-error and
// livelock checks between events.
func (r *Running) Step() error {
	if r.jw != nil {
		if err := r.jw.Err(); err != nil {
			return err
		}
	}
	if r.a.Steps >= maxSteps {
		return errLivelock
	}
	if !r.clock.Step() {
		return fmt.Errorf("harness: event queue drained before completion")
	}
	r.a.Steps++
	return nil
}

// Stage returns the index of the stage currently executing.
func (r *Running) Stage() int { return r.job.Stage() }

// Steps returns the number of virtual-clock events executed so far.
func (r *Running) Steps() int { return r.a.Steps }

// Now returns the current virtual time in seconds.
func (r *Running) Now() float64 { return float64(r.clock.Now()) }

// CostSoFar returns the provider's accrued cost at the current instant.
func (r *Running) CostSoFar() float64 { return r.provider.TotalCost(r.clock.Now()) }

// Deadline returns the sampled job deadline in seconds.
func (r *Running) Deadline() float64 { return r.a.Deadline }

// Planned reports whether the elastic planner produced the plan.
func (r *Running) Planned() bool { return r.a.Planned }

// Plan returns the allocation plan the run started with.
func (r *Running) Plan() sim.Plan { return r.a.Plan.Clone() }

// Estimate returns the planner's prediction (valid only when Planned).
func (r *Running) Estimate() sim.Estimate { return r.a.Estimate }

// Grants returns the arbitration decisions recorded so far. The slice is
// a copy: stage transitions append concurrently with status reads.
func (r *Running) Grants() []GrantDecision {
	return append([]GrantDecision(nil), r.a.Grants...)
}

// Finish completes the run's bookkeeping once Done: result extraction,
// the journal End record, and artifact assembly.
func (r *Running) Finish() (*Artifacts, error) {
	if r.finished {
		return r.a, nil
	}
	res, err := r.job.Result()
	if err != nil {
		return nil, fmt.Errorf("harness: run: %w", err)
	}
	if r.jw != nil {
		// Close the journal: an End record marks a completed (rather than
		// crashed) run.
		if err := r.jw.Record(&journal.End{
			JCT:       res.JCT,
			Cost:      res.Cost,
			BestTrial: int64(res.BestTrial),
		}); err != nil {
			return nil, err
		}
	}
	r.a.Result = res
	r.a.Recorder = r.rec
	r.a.Instances = r.provider.Instances()
	r.a.DataCost = r.provider.DataCost()
	r.a.Retries = r.mgr.Retries()
	r.finished = true
	return r.a, nil
}
