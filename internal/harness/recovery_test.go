package harness

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/journal"
)

// sweepScenarios pins the crash-point sweep's inputs: a plain scenario
// and the drift-triggered replan scenario from the FuzzEndToEnd corpus
// whose adopted tail means recovery must rebuild controller state, not
// just executor state.
func sweepScenarios() []Scenario {
	return []Scenario{
		Generate(1, 0),
		Generate(4, 2), // drift-triggered replan, tail adopted
	}
}

// sweepPoints enumerates the crash points for a journal of total
// records: the extremes (0 = nothing durable, 1 = header only,
// total-1 = one record short of completion), every k-th record, and
// every snapshot boundary ±1 — the seams where a recovery
// implementation that is even one record off will diverge. Torn frames
// alternate with clean kills across the sweep.
func sweepPoints(total, interval uint64) []CrashPoint {
	set := map[uint64]bool{0: true, 1: true, total - 1: true}
	k := total / 24
	if k == 0 {
		k = 1
	}
	for s := uint64(0); s < total; s += k {
		set[s] = true
	}
	if interval > 0 {
		for b := interval; b < total; b += interval {
			set[b-1] = true
			set[b] = true
			if b+1 < total {
				set[b+1] = true
			}
		}
	}
	seqs := make([]uint64, 0, len(set))
	for s := range set {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]CrashPoint, len(seqs))
	for i, s := range seqs {
		torn := 0
		if i%2 == 1 {
			torn = 1 + int(s%37)
		}
		out[i] = CrashPoint{Seq: s, Torn: torn}
	}
	return out
}

// crashAndRecover kills a journaled run of sc at cp on a fresh backend
// from mk, recovers it, and fails the test unless the recovered run is
// bit-identical to the uninterrupted reference — digest and journal
// both. ref is the reference journal's backend, wantDigest its digest,
// wantRecords its record count.
func crashAndRecover(t *testing.T, sc Scenario, interval uint64, cp CrashPoint,
	ref journal.Backend, wantDigest Digest, wantRecords uint64,
	mk func() journal.Backend) {
	t.Helper()
	crashed := mk()
	defer crashed.Close()
	wc := journal.NewWriter(crashed, interval)
	wc.SetCrashPoint(cp.Seq, cp.Torn)
	if _, err := RunScenarioJournaled(sc, wc); !errors.Is(err, journal.ErrCrash) {
		t.Fatalf("crash at %d/%d: run did not die (err=%v)", cp.Seq, wantRecords, err)
	}

	w2, hdr, damage, err := journal.Resume(crashed, interval)
	if err != nil {
		t.Fatalf("crash at %d torn %d: resume: %v", cp.Seq, cp.Torn, err)
	}
	if cp.Seq > 0 && hdr == nil {
		t.Fatalf("crash at %d: journal lost its header", cp.Seq)
	}
	if cp.Torn > 0 && damage == "" {
		t.Fatalf("crash at %d torn %d: torn frame left no damage report", cp.Seq, cp.Torn)
	}
	if cp.Torn == 0 && damage != "" {
		t.Fatalf("clean crash at %d reported damage %q", cp.Seq, damage)
	}
	a, err := RunScenarioJournaled(sc, w2)
	if err != nil {
		t.Fatalf("crash at %d torn %d: recovery run: %v", cp.Seq, cp.Torn, err)
	}
	if got := ComputeDigest(a); got != wantDigest {
		t.Errorf("crash at %d/%d torn %d: recovered digest %016x != uninterrupted %016x",
			cp.Seq, wantRecords, cp.Torn, uint64(got), uint64(wantDigest))
	}
	if w2.Seq() != wantRecords {
		t.Errorf("crash at %d: recovered journal has %d records, want %d", cp.Seq, w2.Seq(), wantRecords)
	}
	diff, err := journal.Diff(ref, crashed)
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Errorf("crash at %d torn %d: recovered journal differs from reference: %s", cp.Seq, cp.Torn, diff)
	}
}

// TestCrashPointSweepMem is the exhaustive crash-point sweep on the
// in-memory backend: for both pinned scenarios, kill and recover at
// every sweep point and require bit-identical recovery at each.
func TestCrashPointSweepMem(t *testing.T) {
	const interval = 7
	for _, sc := range sweepScenarios() {
		ref := journal.NewMemBackend()
		w := journal.NewWriter(ref, interval)
		a, err := RunScenarioJournaled(sc, w)
		if err != nil {
			t.Fatalf("reference run: %v", err)
		}
		want, total := ComputeDigest(a), w.Seq()
		points := sweepPoints(total, interval)
		t.Logf("seed=%d index=%d: %d records, %d crash points", sc.BatchSeed, sc.Index, total, len(points))
		for _, cp := range points {
			crashAndRecover(t, sc, interval, cp, ref, want, total,
				func() journal.Backend { return journal.NewMemBackend() })
		}
	}
}

// TestCrashPointSweepFile runs the sweep's seam points on the
// file-backed journal with segments small enough that every run rolls
// many times, so crashes land mid-segment, at segment boundaries, and in
// snapshot files alike. The full point set stays on the in-memory
// backend; disk covers the representative seams.
func TestCrashPointSweepFile(t *testing.T) {
	const interval = 7
	sc := Generate(4, 2) // replan-adopting scenario: hardest recovery
	ref := journal.NewMemBackend()
	w := journal.NewWriter(ref, interval)
	a, err := RunScenarioJournaled(sc, w)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want, total := ComputeDigest(a), w.Seq()
	points := []CrashPoint{
		{Seq: 0}, {Seq: 1, Torn: 5},
		{Seq: interval - 1}, {Seq: interval, Torn: 3}, {Seq: interval + 1},
		{Seq: total / 2}, {Seq: total / 2, Torn: 17},
		{Seq: total - 1, Torn: 7},
	}
	for _, cp := range points {
		crashAndRecover(t, sc, interval, cp, ref, want, total, func() journal.Backend {
			fb, err := journal.NewFileBackend(t.TempDir(), journal.WithSegmentBytes(256))
			if err != nil {
				t.Fatal(err)
			}
			return fb
		})
	}
}

// TestReplanScenarioJournalsAdoptedDecision guards the sweep's pinned
// replan scenario against corpus drift: (4, 2) must actually journal an
// adopted replan decision, or the "recovery rebuilds controller state"
// coverage silently evaporates.
func TestReplanScenarioJournalsAdoptedDecision(t *testing.T) {
	b := journal.NewMemBackend()
	w := journal.NewWriter(b, 7)
	if _, err := RunScenarioJournaled(Generate(4, 2), w); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	adopted := false
	for _, p := range raw.Records {
		rec, err := journal.DecodeRecord(p)
		if err != nil {
			t.Fatalf("journaled record undecodable: %v", err)
		}
		if d, ok := rec.(*journal.Decision); ok && d.Adopted {
			adopted = true
		}
	}
	if !adopted {
		t.Fatal("scenario (4, 2) journaled no adopted replan decision; pick a new replan-adopting pin")
	}
}

// TestSnapshotIntervalInvisible is the journaling-purity property test:
// the snapshot interval — every record, every 7th, or never — must not
// change the run digest, and none of them may differ from the
// unjournaled run. Run under -race by `make test-recovery`, this also
// catches snapshot capture racing the executor.
func TestSnapshotIntervalInvisible(t *testing.T) {
	for _, sc := range []Scenario{Generate(1, 0), Generate(1, 1), Generate(4, 2)} {
		plain, err := RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		want := ComputeDigest(plain)
		for _, interval := range []uint64{1, 7, 0} {
			w := journal.NewWriter(journal.NewMemBackend(), interval)
			a, err := RunScenarioJournaled(sc, w)
			if err != nil {
				t.Fatalf("interval %d: %v", interval, err)
			}
			if got := ComputeDigest(a); got != want {
				t.Errorf("seed=%d index=%d: interval %d digest %016x != plain %016x — journaling is not invisible",
					sc.BatchSeed, sc.Index, interval, uint64(got), uint64(want))
			}
		}
	}
}

// TestCrashRecoverEmptyJournal covers the degenerate kill before
// anything was durable: recovery from an empty journal is a fresh run.
func TestCrashRecoverEmptyJournal(t *testing.T) {
	sc := Generate(1, 0)
	_, problems, err := CrashRecover(sc, 7,
		func(uint64) CrashPoint { return CrashPoint{Seq: 0, Torn: 3} },
		func(string) (journal.Backend, error) { return journal.NewMemBackend(), nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestResumeRefusesForeignJournal pins the identity check: a journal
// written by one scenario must not silently recover as another.
func TestResumeRefusesForeignJournal(t *testing.T) {
	b := journal.NewMemBackend()
	w := journal.NewWriter(b, 0)
	w.SetCrashPoint(40, 0)
	if _, err := RunScenarioJournaled(Generate(1, 0), w); !errors.Is(err, journal.ErrCrash) {
		t.Fatalf("crash injection failed: %v", err)
	}
	w2, hdr, _, err := journal.Resume(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hdr == nil || hdr.BatchSeed != 1 || hdr.Index != 0 {
		t.Fatalf("header = %+v", hdr)
	}
	// Re-driving a different scenario against the foreign prefix must fail
	// loudly at the header record, before any state is trusted.
	if _, err := RunScenarioJournaled(Generate(2, 5), w2); !errors.Is(err, journal.ErrDiverged) {
		t.Fatalf("foreign scenario replayed against journal: err=%v, want ErrDiverged", err)
	}
}

// FuzzRecover lets the fuzzer pick the scenario, crash offset, torn
// length and snapshot interval: every reachable crash point must either
// recover bit-identically or fail loudly — never complete with a
// different digest or journal. The checked-in corpus seeds the pinned
// sweep scenarios at their seam offsets.
func FuzzRecover(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(0), uint64(3), uint64(1))
	f.Add(uint64(1), uint64(0), uint64(1), uint64(0), uint64(2))
	f.Add(uint64(4), uint64(2), uint64(48), uint64(17), uint64(2)) // replan mid-journal
	f.Add(uint64(4), uint64(2), uint64(96), uint64(0), uint64(0))  // one record short of End
	f.Add(uint64(42), uint64(13), uint64(7), uint64(39), uint64(3))
	f.Fuzz(func(t *testing.T, seed, rawIndex, rawSeq, rawTorn, rawInterval uint64) {
		sc := Generate(seed, int(rawIndex%64))
		interval := []uint64{0, 1, 7, 32}[rawInterval%4]
		cp := CrashPoint{Torn: int(rawTorn % 64)}
		outcome, problems, err := CrashRecover(sc, interval,
			func(total uint64) CrashPoint {
				cp.Seq = rawSeq % total
				return cp
			},
			func(string) (journal.Backend, error) { return journal.NewMemBackend(), nil })
		if err != nil {
			t.Fatalf("crash experiment aborted: %v\n  %s", err, sc)
		}
		for _, p := range problems {
			t.Errorf("%s (interval %d, crash %+v)\n  %s", p, interval, outcome.Crash, sc)
		}
	})
}
