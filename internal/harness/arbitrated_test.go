package harness

import (
	"errors"
	"testing"

	"repro/internal/journal"
)

// findCapScenario returns a generated scenario carrying arbiter caps.
func findCapScenario(t *testing.T, seed uint64) Scenario {
	t.Helper()
	for i := 0; i < 64; i++ {
		if sc := Generate(seed, i); len(sc.ArbiterCaps) > 0 {
			return sc
		}
	}
	t.Fatal("no cap-carrying scenario in 64 draws")
	return Scenario{}
}

// TestArbitratedReplayBitIdentical: replaying a gated run's recorded
// grant sequence through a scripted gate reproduces the digest bit for
// bit — the offline half of the serve replay tuple contract.
func TestArbitratedReplayBitIdentical(t *testing.T) {
	sc := findCapScenario(t, 101)
	a, err := RunScenario(sc) // caps applied implicitly
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Grants) != sc.Spec.NumStages() {
		t.Fatalf("%d grants for %d stages", len(a.Grants), sc.Spec.NumStages())
	}
	want := ComputeDigest(a)

	// Re-run with the recorded sequence scripted through an explicit
	// gate (the caps must not be consulted: Gate overrides them).
	grants := a.Grants
	i := 0
	replayed, err := RunScenarioArbitrated(sc, func(req GrantRequest) int {
		g := grants[i].Granted
		i++
		return g
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ComputeDigest(replayed); got != want {
		t.Fatalf("replay digest %016x != original %016x", uint64(got), uint64(want))
	}
	if i != len(grants) {
		t.Fatalf("replay consumed %d grants, recorded %d", i, len(grants))
	}
}

// TestArbitratedDigestDiffersFromUngated: the grant sequence is part of
// the run's identity — squeezing a stage must change the digest.
func TestArbitratedDigestDiffersFromUngated(t *testing.T) {
	sc := findCapScenario(t, 102)
	sc.ArbiterCaps = nil // ungated baseline
	base, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	squeezed, err := RunScenarioArbitrated(sc, func(req GrantRequest) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if ComputeDigest(base) == ComputeDigest(squeezed) {
		t.Fatal("squeezing every stage to 1 GPU left the digest unchanged")
	}
	// And the gated run must still finish every stage.
	if squeezed.Result == nil || squeezed.Result.JCT <= 0 {
		t.Fatal("gated run did not complete")
	}
}

// TestArbitratedRejectsReplan: a gate plus the replan controller is a
// configuration error (both rewrite the live plan).
func TestArbitratedRejectsReplan(t *testing.T) {
	sc := Generate(103, 0)
	sc.ReplanEnabled = true
	sc.ArbiterCaps = nil
	if _, err := RunScenarioArbitrated(sc, func(req GrantRequest) int { return req.Want }); err == nil {
		t.Fatal("gate + replan accepted")
	}
}

// TestRunningStepwiseMatchesRunScenario: driving a Running by hand is
// the same run as RunScenario — same digest, same artifacts.
func TestRunningStepwiseMatchesRunScenario(t *testing.T) {
	sc := Generate(104, 3)
	want, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := StartScenario(sc, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadline() != want.Deadline {
		t.Fatalf("Deadline %v != %v", r.Deadline(), want.Deadline)
	}
	steps := 0
	for !r.Done() {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
		if now := r.Now(); now < 0 {
			t.Fatalf("Now = %v", now)
		}
	}
	got, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if steps != got.Steps || steps != want.Steps {
		t.Fatalf("steps %d / artifacts %d / want %d", steps, got.Steps, want.Steps)
	}
	if ComputeDigest(got) != ComputeDigest(want) {
		t.Fatal("stepwise digest differs from RunScenario")
	}
	// Finish is idempotent.
	again, err := r.Finish()
	if err != nil || again != got {
		t.Fatalf("second Finish: %v, %p vs %p", err, again, got)
	}
}

// TestGatedJournalRecordsGrants: a journaled gated run writes one Grant
// record per stage, and they decode back to the artifact's sequence.
func TestGatedJournalRecordsGrants(t *testing.T) {
	sc := findCapScenario(t, 105)
	b := journal.NewMemBackend()
	w := journal.NewWriter(b, 16)
	r, err := StartScenario(sc, RunConfig{Journal: w})
	if err != nil {
		t.Fatal(err)
	}
	for !r.Done() {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	a, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	var got []GrantDecision
	for _, payload := range raw.Records {
		rec, err := journal.DecodeRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if g, ok := rec.(*journal.Grant); ok {
			got = append(got, GrantDecision{
				Stage: int(g.Stage), Want: int(g.Want), Granted: int(g.Granted), At: g.At,
			})
		}
	}
	if len(got) != len(a.Grants) {
		t.Fatalf("journal holds %d grants, artifacts %d", len(got), len(a.Grants))
	}
	for i := range got {
		if got[i] != a.Grants[i] {
			t.Fatalf("grant %d: journal %+v != artifacts %+v", i, got[i], a.Grants[i])
		}
	}
}

// TestGatedCrashRecovery: kill a journaled gated run mid-flight, resume
// with the journaled grant prefix scripted and a live gate beyond it —
// the recovered digest must equal the uninterrupted run's. This is the
// per-tenant recovery path the serve control plane uses across process
// generations.
func TestGatedCrashRecovery(t *testing.T) {
	sc := findCapScenario(t, 106)
	gateFor := func(caps []int) GrantFn {
		return func(req GrantRequest) int {
			if req.Stage < len(caps) && caps[req.Stage] < req.Want {
				return caps[req.Stage]
			}
			return req.Want
		}
	}

	// Uninterrupted journaled reference.
	base := journal.NewMemBackend()
	wb := journal.NewWriter(base, 8)
	ref, err := runWith(sc, RunConfig{Journal: wb, Gate: gateFor(sc.ArbiterCaps)})
	if err != nil {
		t.Fatal(err)
	}
	want := ComputeDigest(ref)
	total := wb.Seq()

	for _, frac := range []float64{0.25, 0.6, 0.95} {
		seq := 1 + uint64(frac*float64(total-1))
		if seq >= total {
			seq = total - 1
		}
		crashed := journal.NewMemBackend()
		wc := journal.NewWriter(crashed, 8)
		wc.SetCrashPoint(seq, 0)
		if _, err := runWith(sc, RunConfig{Journal: wc, Gate: gateFor(sc.ArbiterCaps)}); !errors.Is(err, journal.ErrCrash) {
			t.Fatalf("crash at %d: err = %v", seq, err)
		}

		// Prescan the crashed journal's grant prefix, then resume: the
		// scripted prefix replays, later stages consult the "live" gate.
		raw, err := crashed.Load()
		if err != nil {
			t.Fatal(err)
		}
		var prefix []GrantDecision
		for _, payload := range raw.Records {
			rec, err := journal.DecodeRecord(payload)
			if err != nil {
				t.Fatal(err)
			}
			if g, ok := rec.(*journal.Grant); ok {
				prefix = append(prefix, GrantDecision{
					Stage: int(g.Stage), Want: int(g.Want), Granted: int(g.Granted), At: g.At,
				})
			}
		}
		w2, hdr, damage, err := journal.Resume(crashed, 8)
		if err != nil {
			t.Fatal(err)
		}
		if damage != "" {
			t.Fatalf("clean kill reported damage %q", damage)
		}
		if hdr == nil || hdr.BatchSeed != sc.BatchSeed {
			t.Fatalf("resumed header %+v", hdr)
		}
		i := 0
		live := gateFor(sc.ArbiterCaps)
		rec, err := runWith(sc, RunConfig{Journal: w2, Gate: func(req GrantRequest) int {
			if i < len(prefix) {
				g := prefix[i].Granted
				i++
				return g
			}
			return live(req)
		}})
		if err != nil {
			t.Fatalf("recovery after crash at %d: %v", seq, err)
		}
		if got := ComputeDigest(rec); got != want {
			t.Fatalf("crash at %d: recovered digest %016x != %016x", seq, uint64(got), uint64(want))
		}
		if diff, err := journal.Diff(base, crashed); err != nil || diff != "" {
			t.Fatalf("crash at %d: journal diff %q, err %v", seq, diff, err)
		}
	}
}
