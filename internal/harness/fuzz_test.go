package harness

import "testing"

// FuzzEndToEnd lets the native fuzzer drive the chaos harness's scenario
// space directly: any (seed, index) pair generates a scenario, runs the
// full pipeline on the virtual clock, and must satisfy every invariant
// oracle plus bit-identical replay. The checked-in corpus under
// testdata/fuzz pins the scenarios that previously exposed bugs (the
// scatter double-booking regression among them).
func FuzzEndToEnd(f *testing.F) {
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(1), uint64(21))  // scatter + provisioning failures
	f.Add(uint64(2), uint64(52))  // scatter double-booking regression
	f.Add(uint64(3), uint64(195)) // scatter + spot preemptions
	f.Add(uint64(42), uint64(13))
	f.Add(uint64(4), uint64(2))   // drift-triggered replan, tail adopted
	f.Add(uint64(4), uint64(17))  // drift classified infeasible, replan declines
	f.Add(uint64(4), uint64(143)) // preemption-triggered replan
	f.Fuzz(func(t *testing.T, seed, rawIndex uint64) {
		index := int(rawIndex % 1024)
		sc := Generate(seed, index)
		a, err := RunScenario(sc)
		if err != nil {
			t.Fatalf("pipeline aborted: %v\n  %s", err, sc)
		}
		for _, v := range CheckAll(a, DefaultOracles()) {
			t.Errorf("%s\n  %s", v, sc)
		}
		b, err := RunScenario(sc)
		if err != nil {
			t.Fatalf("replay aborted: %v\n  %s", err, sc)
		}
		if da, db := ComputeDigest(a), ComputeDigest(b); da != db {
			t.Fatalf("replay digest mismatch: %016x vs %016x\n  %s", uint64(da), uint64(db), sc)
		}
	})
}
