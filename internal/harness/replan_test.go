package harness

import (
	"reflect"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// driftScenario is the pinned replanning demo workload: four successive-
// halving stages of resnet152 on p3.8xlarge workers with deterministic
// latencies and overheads, a 32-GPU cap, and a 2x latency slowdown
// injected 15% of the way into the deadline. The planner's cost-minimal
// plan leaves enough slack headroom that replanning the tail up to the
// GPU cap recovers the deadline the stale plan misses.
func driftScenario(t *testing.T) Scenario {
	t.Helper()
	s, err := spec.New(
		spec.Stage{Trials: 4, Iters: 4},
		spec.Stage{Trials: 4, Iters: 4},
		spec.Stage{Trials: 2, Iters: 4},
		spec.Stage{Trials: 1, Iters: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	var m model.Model
	for _, z := range model.Zoo() {
		if z.Name == "resnet152" {
			m = *z
		}
	}
	if m.Name == "" {
		t.Fatal("resnet152 missing from the model zoo")
	}
	m.IterNoiseStd = 0
	it, err := cloud.DefaultCatalog().Lookup("p3.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{
		BatchSeed: 1,
		Index:     0,
		Spec:      s,
		Model:     &m,
		Space:     searchspace.DefaultVisionSpace(),
		Profile: sim.CloudProfile{
			Instance: it,
			Pricing:  cloud.DefaultPricing(),
			Overheads: cloud.Overheads{
				QueueDelay:  stats.Deterministic{Value: 0},
				InitLatency: stats.Deterministic{Value: 10},
			},
		},
		MaxGPUs:        32,
		Samples:        4,
		DeadlineFactor: 2.2,
		Estimator:      sim.EstimatorSegment,
		Drift:          DriftModel{Factor: 2.0, StartFraction: 0.15},
		ReplanEnabled:  true,
		DriftThreshold: 0.15,
		ReplanCooldown: 10,
	}
}

// TestReplanBeatsStalePlanUnderSlowdown is the acceptance demo: under an
// injected 2x mid-run slowdown, the replanned run meets a deadline the
// stale plan misses, with at least one adopted decision, and both runs
// pass every oracle.
func TestReplanBeatsStalePlanUnderSlowdown(t *testing.T) {
	sc := driftScenario(t)
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Planned {
		t.Fatal("planner rejected the pinned deadline")
	}
	if a.DriftClass != DriftFeasible {
		t.Fatalf("drift class %v, want feasible (the demo needs a recoverable deadline)", a.DriftClass)
	}
	adopted := 0
	for _, d := range a.Result.Replans {
		if d.Adopted {
			adopted++
			// Differential claim: the adopted tail was planned under the
			// remaining deadline and, when it rescued an infeasible stale
			// tail, predicts a JCT no worse than the stale one's.
			if d.NewEstimate.JCT > d.RemainingDeadline+1e-9 {
				t.Errorf("decision %d adopted JCT %v over remaining deadline %v", d.Seq, d.NewEstimate.JCT, d.RemainingDeadline)
			}
			if d.StaleEstimate.JCT > d.RemainingDeadline && d.NewEstimate.JCT > d.StaleEstimate.JCT {
				t.Errorf("decision %d adopted JCT %v worse than the infeasible stale tail's %v", d.Seq, d.NewEstimate.JCT, d.StaleEstimate.JCT)
			}
		}
	}
	if adopted == 0 {
		t.Fatalf("no replan adopted; decisions: %+v", a.Result.Replans)
	}
	if a.Result.JCT > a.Deadline {
		t.Fatalf("replanned run missed the deadline: JCT %v > %v", a.Result.JCT, a.Deadline)
	}
	if vs := CheckAll(a, DefaultOracles()); len(vs) != 0 {
		t.Fatalf("replanned run violations: %v", vs)
	}

	stale := sc
	stale.ReplanEnabled = false
	b, err := RunScenario(stale)
	if err != nil {
		t.Fatal(err)
	}
	if b.Result.JCT <= b.Deadline {
		t.Fatalf("stale plan met the deadline (JCT %v <= %v); the demo is vacuous", b.Result.JCT, b.Deadline)
	}
	if vs := CheckAll(b, DefaultOracles()); len(vs) != 0 {
		t.Fatalf("stale run violations: %v", vs)
	}
	if a.Result.FinalPlan.Equal(a.Plan) {
		t.Fatal("adopted replans left the plan unchanged")
	}
	if !b.Result.FinalPlan.Equal(b.Plan) {
		t.Fatal("stale run's final plan drifted without a controller")
	}
}

// TestReplanDecisionsReplayable: the same scenario replays to the same
// digest and bit-identical decision records — the replayability half of
// the acceptance criteria.
func TestReplanDecisionsReplayable(t *testing.T) {
	sc := driftScenario(t)
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if da, db := ComputeDigest(a), ComputeDigest(b); da != db {
		t.Fatalf("replay digest diverged: %016x vs %016x", uint64(da), uint64(db))
	}
	if !reflect.DeepEqual(a.Result.Replans, b.Result.Replans) {
		t.Fatalf("replan decisions diverged across replays:\n%+v\n%+v", a.Result.Replans, b.Result.Replans)
	}
	if len(a.Result.Replans) == 0 {
		t.Fatal("pinned scenario no longer replans")
	}
}

// TestReplanInfeasibleAfterDrift pins the other acceptance branch: a 3x
// slowdown against a tight deadline is classified DriftInfeasible at plan
// time, every decision reports infeasibility rather than adopting a
// false-hope tail, and the oracles accept the (correctly labeled) missed
// deadline.
func TestReplanInfeasibleAfterDrift(t *testing.T) {
	sc := driftScenario(t)
	sc.Drift = DriftModel{Factor: 3.0, StartFraction: 0.2}
	sc.DeadlineFactor = 1.4
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Planned {
		t.Fatal("planner rejected the pinned deadline")
	}
	if a.DriftClass != DriftInfeasible {
		t.Fatalf("drift class %v, want infeasible", a.DriftClass)
	}
	if len(a.Result.Replans) == 0 {
		t.Fatal("no replan decisions under 3x drift")
	}
	for _, d := range a.Result.Replans {
		if d.Adopted {
			t.Errorf("decision %d adopted a tail in an unrecoverable run", d.Seq)
		}
		if !d.Infeasible {
			t.Errorf("decision %d not labeled infeasible", d.Seq)
		}
	}
	if a.Result.JCT <= a.Deadline {
		t.Fatal("run met a deadline classified infeasible; classification is too pessimistic")
	}
	if vs := CheckAll(a, DefaultOracles()); len(vs) != 0 {
		t.Fatalf("violations on a correctly classified infeasible run: %v", vs)
	}
}

// TestZeroDriftReplanIsNoOp is the zero-drift differential: on
// deterministic, fault-free, on-profile scenarios the detector never
// fires, so enabling the controller changes nothing — run digests are
// bit-identical with and without it and no decision is recorded. Indices
// are pinned (Generate is pure) to deterministic-clean draws of seed 13.
func TestZeroDriftReplanIsNoOp(t *testing.T) {
	for _, idx := range []int{37, 48, 61, 68} {
		sc := Generate(13, idx)
		if sc.Drift.Active() || sc.Faults != (cloud.FaultModel{}) || sc.DisablePlacement || sc.Model.IterNoiseStd > 0 {
			t.Fatalf("generator drifted: scenario 13/%d no longer deterministic-clean\n  %s", idx, sc)
		}
		on, off := sc, sc
		// Hand-forcing the controller on is incompatible with a generated
		// arbiter cap (both rewrite the live plan); this differential is
		// about replanning only.
		on.ArbiterCaps, off.ArbiterCaps = nil, nil
		on.ReplanEnabled, off.ReplanEnabled = true, false
		a, err := RunScenario(on)
		if err != nil {
			t.Fatalf("13/%d enabled: %v", idx, err)
		}
		b, err := RunScenario(off)
		if err != nil {
			t.Fatalf("13/%d disabled: %v", idx, err)
		}
		if len(a.Result.Replans) != 0 {
			t.Errorf("13/%d: %d replan decisions under zero drift", idx, len(a.Result.Replans))
		}
		if !a.Result.FinalPlan.Equal(a.Plan) {
			t.Errorf("13/%d: final plan %v differs from planned %v under zero drift", idx, a.Result.FinalPlan, a.Plan)
		}
		if da, db := ComputeDigest(a), ComputeDigest(b); da != db {
			t.Errorf("13/%d: zero-drift digests differ with/without controller: %016x vs %016x", idx, uint64(da), uint64(db))
		}
	}
}
