package harness

import (
	"fmt"
	"sort"

	"repro/internal/par"
)

// Options configures a batch run of generated scenarios.
type Options struct {
	// Seed is the batch seed; scenario i is Generate(Seed, i).
	Seed uint64
	// Scenarios is the number of scenarios to run.
	Scenarios int
	// Workers is the fan-out width (<=1 means serial). Scenario results
	// are reduced in index order, so the report and batch digest are
	// identical at any worker count.
	Workers int
	// Replay, when set, runs every scenario a second time and reports a
	// digest mismatch as a determinism violation.
	Replay bool
	// CrashCheck, when set, runs the recovery-equivalence oracle on every
	// scenario: a journaled run is killed at a seeded crash point, resumed
	// from the surviving journal, and required to finish bit-identical to
	// the uninterrupted run (digest and journal both).
	CrashCheck bool
	// Oracles overrides the oracle set (nil means DefaultOracles).
	Oracles []Oracle
	// Mutate, when non-nil, adjusts each generated scenario before it
	// runs (CLI overrides such as forcing the replan controller on or
	// off). It is applied to the replay too, so determinism checks hold
	// for the mutated scenario, and it must itself be deterministic.
	Mutate func(*Scenario)
}

// ScenarioReport is the outcome of one scenario within a batch.
type ScenarioReport struct {
	Scenario   Scenario
	Digest     Digest
	Violations []Violation
	// Err records a pipeline-level failure (the run aborted before
	// producing artifacts). Err and Violations are mutually exclusive.
	Err error
	// Steps is the number of virtual-clock events the run executed.
	Steps int
}

// Failed reports whether the scenario produced any violation or error.
func (r *ScenarioReport) Failed() bool { return r.Err != nil || len(r.Violations) > 0 }

// Report is the outcome of a whole batch.
type Report struct {
	Seed      uint64
	Scenarios []ScenarioReport
	// BatchDigest folds all scenario digests in index order.
	BatchDigest Digest
}

// Failures returns the indices of failed scenarios, ascending.
func (r *Report) Failures() []int {
	var out []int
	for i := range r.Scenarios {
		if r.Scenarios[i].Failed() {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// RunBatch generates and executes opts.Scenarios scenarios from opts.Seed,
// checking every oracle on each. Scenarios run independently across
// opts.Workers goroutines; results are collected index-addressed, so the
// returned report is bit-identical at any worker count.
func RunBatch(opts Options) *Report {
	if opts.Scenarios < 0 {
		opts.Scenarios = 0
	}
	oracles := opts.Oracles
	if oracles == nil {
		oracles = DefaultOracles()
	}
	reports := make([]ScenarioReport, opts.Scenarios)
	par.ForEach(opts.Scenarios, opts.Workers, func(i int) {
		reports[i] = runOne(opts, oracles, i)
	})
	rep := &Report{Seed: opts.Seed, Scenarios: reports}
	digests := make([]Digest, len(reports))
	for i := range reports {
		digests[i] = reports[i].Digest
	}
	rep.BatchDigest = CombineDigests(digests)
	return rep
}

// RunIndex generates and executes the single scenario i of the batch
// seeded by opts.Seed, for drilling into one failure without re-running
// the whole batch. The report is identical to entry i of RunBatch's.
func RunIndex(opts Options, i int) ScenarioReport {
	oracles := opts.Oracles
	if oracles == nil {
		oracles = DefaultOracles()
	}
	return runOne(opts, oracles, i)
}

// runOne executes scenario i of the batch, applies the oracles, and —
// when requested — replays it to check bit-identical determinism.
func runOne(opts Options, oracles []Oracle, i int) ScenarioReport {
	sc := Generate(opts.Seed, i)
	if opts.Mutate != nil {
		opts.Mutate(&sc)
	}
	out := ScenarioReport{Scenario: sc}
	a, err := RunScenario(sc)
	if err != nil {
		out.Err = err
		return out
	}
	out.Steps = a.Steps
	out.Digest = ComputeDigest(a)
	out.Violations = CheckAll(a, oracles)
	if opts.Replay {
		b, err := RunScenario(sc)
		if err != nil {
			out.Violations = append(out.Violations, Violation{
				Oracle: "replay",
				Detail: fmt.Sprintf("replay aborted: %v (first run succeeded)", err),
			})
		} else if d := ComputeDigest(b); d != out.Digest {
			out.Violations = append(out.Violations, Violation{
				Oracle: "replay",
				Detail: fmt.Sprintf("digest mismatch: first run %016x, replay %016x", uint64(out.Digest), uint64(d)),
			})
		}
	}
	if opts.CrashCheck {
		out.Violations = append(out.Violations, checkRecovery(sc, out.Digest)...)
	}
	return out
}
