package harness

import (
	"testing"

	"repro/internal/journal"
	"repro/internal/vclock"
)

// The differential kernel suite: every scenario in the harness corpus
// runs under both simulation kernels — the production timer wheel
// (vclock.New) and the reference binary heap (vclock.NewHeap) — and
// must produce bit-identical artifacts. This is what makes the kernel
// rewrite safe to do aggressively: any ordering divergence the wheel's
// bucketing, cascading, or overflow handling could introduce flips a
// digest here.

// kernelCorpus returns the full checked-in harness corpus: every
// (seed, index) pinned by the end-to-end fuzz corpus, including the
// scatter double-booking and replan-recovery regressions.
func kernelCorpus() []Scenario {
	pairs := [][2]uint64{
		{1, 0},
		{1, 21},  // scatter + provisioning failures
		{2, 52},  // scatter double-booking regression
		{3, 195}, // scatter + spot preemptions
		{42, 13},
		{4, 2},   // drift-triggered replan, tail adopted
		{4, 17},  // drift classified infeasible, replan declines
		{4, 143}, // preemption-triggered replan
	}
	out := make([]Scenario, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, Generate(p[0], int(p[1])))
	}
	return out
}

// TestKernelEquivalenceOnCorpus runs the full corpus under both kernels
// and requires bit-identical replay digests — the complete observable
// behaviour of each run: event trace, result, billing ledger, replan
// decisions.
func TestKernelEquivalenceOnCorpus(t *testing.T) {
	for _, sc := range kernelCorpus() {
		wheel, err := RunScenarioOnKernel(sc, vclock.New)
		if err != nil {
			t.Fatalf("wheel kernel: %v\n  %s", err, sc)
		}
		heap, err := RunScenarioOnKernel(sc, vclock.NewHeap)
		if err != nil {
			t.Fatalf("heap kernel: %v\n  %s", err, sc)
		}
		dw, dh := ComputeDigest(wheel), ComputeDigest(heap)
		if dw != dh {
			t.Errorf("kernel digest divergence on seed=%d index=%d: wheel %016x, heap %016x",
				sc.BatchSeed, sc.Index, uint64(dw), uint64(dh))
		}
		if wheel.Steps != heap.Steps {
			t.Errorf("kernel step-count divergence on seed=%d index=%d: wheel %d, heap %d",
				sc.BatchSeed, sc.Index, wheel.Steps, heap.Steps)
		}
	}
}

// TestKernelEquivalenceSweep samples beyond the pinned corpus: a
// contiguous block of generated scenarios per seed, both kernels,
// digests equal. Catches divergences the regression corpus does not
// pin.
func TestKernelEquivalenceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep beyond the pinned corpus")
	}
	for _, seed := range []uint64{7, 11} {
		for idx := 0; idx < 8; idx++ {
			sc := Generate(seed, idx)
			wheel, err := RunScenarioOnKernel(sc, vclock.New)
			if err != nil {
				t.Fatalf("wheel kernel: %v\n  %s", err, sc)
			}
			heap, err := RunScenarioOnKernel(sc, vclock.NewHeap)
			if err != nil {
				t.Fatalf("heap kernel: %v\n  %s", err, sc)
			}
			if dw, dh := ComputeDigest(wheel), ComputeDigest(heap); dw != dh {
				t.Errorf("kernel digest divergence on seed=%d index=%d: wheel %016x, heap %016x",
					seed, idx, uint64(dw), uint64(dh))
			}
		}
	}
}

// TestKernelJournalByteEquivalence journals the same scenario under
// each kernel and requires the two journals to hold byte-identical
// records and snapshots: the kernels agree not just on final artifacts
// but on every write-ahead state transition and every control-plane
// snapshot (clock cursor and scheduler state fold included).
func TestKernelJournalByteEquivalence(t *testing.T) {
	const interval = 7
	for _, sc := range kernelCorpus() {
		bw := journal.NewMemBackend()
		if _, err := runScenarioOn(sc, journal.NewWriter(bw, interval), vclock.New); err != nil {
			t.Fatalf("wheel journaled run: %v\n  %s", err, sc)
		}
		bh := journal.NewMemBackend()
		if _, err := runScenarioOn(sc, journal.NewWriter(bh, interval), vclock.NewHeap); err != nil {
			t.Fatalf("heap journaled run: %v\n  %s", err, sc)
		}
		diff, err := journal.Diff(bw, bh)
		if err != nil {
			t.Fatal(err)
		}
		if diff != "" {
			t.Errorf("journals diverge between kernels on seed=%d index=%d: %s",
				sc.BatchSeed, sc.Index, diff)
		}
	}
}

// TestKernelCrossRecovery crashes a journaled wheel-kernel run and
// recovers it on the heap kernel (and vice versa): recovery re-executes
// the pipeline, so a byte-verified resume across kernels proves the
// write-ahead log is kernel-independent.
func TestKernelCrossRecovery(t *testing.T) {
	const interval = 7
	sc := Generate(4, 2) // replan-adopting scenario: hardest recovery
	for _, dir := range []struct {
		name           string
		first, resumed func() *vclock.Clock
	}{
		{"wheel-then-heap", vclock.New, vclock.NewHeap},
		{"heap-then-wheel", vclock.NewHeap, vclock.New},
	} {
		t.Run(dir.name, func(t *testing.T) {
			// Reference run to learn the journal length.
			ref := journal.NewMemBackend()
			w := journal.NewWriter(ref, interval)
			a, err := runScenarioOn(sc, w, dir.first)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			want, total := ComputeDigest(a), w.Seq()

			// Crashed run on the first kernel.
			crashed := journal.NewMemBackend()
			wc := journal.NewWriter(crashed, interval)
			wc.SetCrashPoint(total/2, 0)
			if _, err := runScenarioOn(sc, wc, dir.first); err == nil {
				t.Fatal("crash point did not kill the run")
			}

			// Recovery on the other kernel must byte-verify the prefix and
			// converge to the same digest.
			w2, _, damage, err := journal.Resume(crashed, interval)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if damage != "" {
				t.Fatalf("unexpected damage on clean crash: %q", damage)
			}
			ar, err := runScenarioOn(sc, w2, dir.resumed)
			if err != nil {
				t.Fatalf("cross-kernel recovery: %v", err)
			}
			if got := ComputeDigest(ar); got != want {
				t.Errorf("cross-kernel recovery digest %016x, want %016x", uint64(got), uint64(want))
			}
			if diff, err := journal.Diff(ref, crashed); err != nil || diff != "" {
				t.Errorf("recovered journal differs from reference: %s (err=%v)", diff, err)
			}
		})
	}
}
