package harness

import (
	"fmt"
	"sort"
)

// FleetEvent is one action in a cross-experiment arbiter's event log:
// submissions, admissions, stage-boundary grants, and completions across
// every tenant sharing one cluster. The serve control plane emits these
// as plain data so this package can check fleet-wide invariants without
// importing it.
type FleetEvent struct {
	// Seq is the event's position in the global arbiter order.
	Seq int
	// Kind is one of "submit", "reject", "admit", "grant", "done".
	Kind string
	// Exp and Tenant identify the experiment the event concerns.
	Exp    string
	Tenant string
	// Stage, Want and Granted describe a "grant" event.
	Stage   int
	Want    int
	Granted int
	// Held is the experiment's GPU hold after the event.
	Held int
}

// CheckFleetInvariants is the cross-experiment fairness oracle: it
// replays an arbiter event log and verifies, at every point in time,
//
//   - capacity conservation: the sum of live holds never exceeds the
//     cluster capacity, and every live experiment holds at least 1 GPU;
//   - exactly-once lifecycle: every experiment is admitted at most once,
//     only after a submit, is granted only while live, and completes
//     exactly once — no admitted experiment is lost or double-run;
//   - per-tenant FIFO: a tenant's experiments are admitted in submission
//     order;
//   - bounded admission wait: between an experiment's submission and its
//     admission, at most admitBound other admissions occur — no tenant
//     with pending work starves behind an unbounded stream of later
//     arrivals.
//
// Rejected submissions ("reject") leave the queue and owe nothing.
func CheckFleetInvariants(log []FleetEvent, capacity, admitBound int) []Violation {
	const oracle = "fleet-fairness"
	var out []Violation
	fail := func(format string, args ...any) {
		out = append(out, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}

	type expState struct {
		tenant     string
		submitSeq  int
		submitPos  int // admissions seen at submit time
		admitted   bool
		done       bool
		held       int
		everLive   bool
		rejectSeen bool
	}
	exps := make(map[string]*expState)
	lastAdmitSeq := make(map[string]int) // tenant -> submit seq of last admitted exp
	totalHeld, admissions := 0, 0

	for i, e := range log {
		if e.Seq != i {
			fail("event %d carries seq %d: log not in global order", i, e.Seq)
		}
		st := exps[e.Exp]
		switch e.Kind {
		case "submit":
			if st != nil {
				fail("experiment %s submitted twice (event %d)", e.Exp, i)
				continue
			}
			exps[e.Exp] = &expState{tenant: e.Tenant, submitSeq: i, submitPos: admissions}
		case "reject":
			if st == nil {
				// A rejected submission may never have entered the log as a
				// submit (queue-full refusals happen before enqueue); that
				// is fine, record it for lifecycle checks.
				exps[e.Exp] = &expState{tenant: e.Tenant, rejectSeen: true}
				continue
			}
			if st.admitted {
				fail("experiment %s rejected after admission (event %d)", e.Exp, i)
			}
			st.rejectSeen = true
		case "admit":
			if st == nil {
				fail("experiment %s admitted without submission (event %d)", e.Exp, i)
				continue
			}
			if st.admitted || st.rejectSeen {
				fail("experiment %s admitted twice or after rejection (event %d)", e.Exp, i)
				continue
			}
			if e.Held < 1 {
				fail("experiment %s admitted holding %d GPUs, want >= 1", e.Exp, e.Held)
			}
			// Per-tenant FIFO: this tenant's previous admission must have
			// been submitted earlier.
			if prev, ok := lastAdmitSeq[st.tenant]; ok && prev > st.submitSeq {
				fail("tenant %s admitted %s (submitted at %d) after a later submission (%d): not FIFO",
					st.tenant, e.Exp, st.submitSeq, prev)
			}
			lastAdmitSeq[st.tenant] = st.submitSeq
			// Bounded wait: admissions that jumped this experiment.
			if waited := admissions - st.submitPos; waited > admitBound {
				fail("experiment %s (tenant %s) waited behind %d admissions, bound is %d",
					e.Exp, st.tenant, waited, admitBound)
			}
			st.admitted, st.everLive = true, true
			st.held = e.Held
			totalHeld += e.Held
			admissions++
		case "grant":
			if st == nil || !st.admitted || st.done {
				fail("grant to non-live experiment %s (event %d)", e.Exp, i)
				continue
			}
			if e.Granted < 1 || (e.Want >= 1 && e.Granted > e.Want) {
				fail("experiment %s stage %d granted %d GPUs for a request of %d", e.Exp, e.Stage, e.Granted, e.Want)
			}
			if e.Held != e.Granted {
				fail("experiment %s stage %d holds %d after a grant of %d", e.Exp, e.Stage, e.Held, e.Granted)
			}
			totalHeld += e.Held - st.held
			st.held = e.Held
		case "done":
			if st == nil || !st.admitted {
				fail("completion of never-admitted experiment %s (event %d)", e.Exp, i)
				continue
			}
			if st.done {
				fail("experiment %s completed twice (event %d)", e.Exp, i)
				continue
			}
			totalHeld -= st.held
			st.held = 0
			st.done = true
		default:
			fail("unknown event kind %q (event %d)", e.Kind, i)
		}
		if totalHeld > capacity {
			fail("after event %d (%s %s): %d GPUs held on a %d-GPU cluster", i, e.Kind, e.Exp, totalHeld, capacity)
		}
		if totalHeld < 0 {
			fail("after event %d: negative total hold %d", i, totalHeld)
		}
	}

	// Every admitted experiment must complete: the log is inspected after
	// the fleet drains, so a live leftover is a lost experiment. Sorted
	// so violation order is deterministic.
	ids := make([]string, 0, len(exps))
	for id := range exps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if st := exps[id]; st.admitted && !st.done {
			fail("experiment %s (tenant %s) admitted but never completed: lost", id, st.tenant)
		}
	}
	return out
}
