package harness

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/replan"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestGenerateIsPure(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b := Generate(11, i), Generate(11, i)
		if a.String() != b.String() {
			t.Fatalf("scenario %d differs across generations:\n%s\n%s", i, a, b)
		}
	}
	if Generate(11, 0).String() == Generate(12, 0).String() {
		t.Fatal("different seeds produced identical scenarios")
	}
}

func TestBatchOraclesPass(t *testing.T) {
	rep := RunBatch(Options{Seed: 42, Scenarios: 60, Workers: 4, Replay: true})
	for _, i := range rep.Failures() {
		r := rep.Scenarios[i]
		if r.Err != nil {
			t.Errorf("scenario %d aborted: %v\n  %s", i, r.Err, r.Scenario)
			continue
		}
		for _, v := range r.Violations {
			t.Errorf("scenario %d: %s\n  %s", i, v, r.Scenario)
		}
	}
}

// TestBatchDigestWorkerInvariance is the determinism regression test: the
// batch digest — a bit-level fingerprint of every event trace, result and
// billing ledger — must be identical when the batch is run twice in the
// same process and when the fan-out width changes.
func TestBatchDigestWorkerInvariance(t *testing.T) {
	first := RunBatch(Options{Seed: 9, Scenarios: 40, Workers: 1})
	again := RunBatch(Options{Seed: 9, Scenarios: 40, Workers: 1})
	wide := RunBatch(Options{Seed: 9, Scenarios: 40, Workers: 8})
	if first.BatchDigest != again.BatchDigest {
		t.Fatalf("same-process replay diverged: %016x vs %016x",
			uint64(first.BatchDigest), uint64(again.BatchDigest))
	}
	if first.BatchDigest != wide.BatchDigest {
		t.Fatalf("workers=1 and workers=8 diverged: %016x vs %016x",
			uint64(first.BatchDigest), uint64(wide.BatchDigest))
	}
	for i := range first.Scenarios {
		if first.Scenarios[i].Digest != wide.Scenarios[i].Digest {
			t.Fatalf("scenario %d digest differs across worker counts", i)
		}
	}
}

// cleanArtifacts returns a fault-free, planner-planned scenario run that
// passes every oracle, for the mutation tests to tamper with. Each call
// re-runs the scenario so mutations never leak between subtests.
func cleanArtifacts(t *testing.T) *Artifacts {
	t.Helper()
	for i := 0; i < 100; i++ {
		sc := Generate(7, i)
		if sc.Faults != (cloud.FaultModel{}) {
			continue
		}
		a, err := RunScenario(sc)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if !a.Planned {
			continue
		}
		if vs := CheckAll(a, DefaultOracles()); len(vs) != 0 {
			t.Fatalf("scenario %d not clean: %v", i, vs)
		}
		return a
	}
	t.Fatal("no clean planned fault-free scenario in the first 100 indices")
	return nil
}

// TestOraclesCatchMutations tampers with one artifact at a time and
// asserts the corresponding oracle fires — guarding the oracles
// themselves against silently passing everything.
func TestOraclesCatchMutations(t *testing.T) {
	cases := []struct {
		name   string
		oracle string
		mutate func(*Artifacts)
	}{
		{"inflated total cost", "cost-conservation", func(a *Artifacts) {
			a.Result.Cost += 1
		}},
		{"out-of-range utilization", "cost-conservation", func(a *Artifacts) {
			a.Result.Utilization = 1.5
		}},
		{"phantom busy time", "usage-metering", func(a *Artifacts) {
			a.Recorder.AddBusy(50)
		}},
		{"gang shape mismatch", "gang-integrity", func(a *Artifacts) {
			per := a.Result.Schedule[0].GPUsPerTrial
			a.Recorder.RecordGang(0, trace.KindTrialStart, 0, 0, per+1, 1, "tampered")
		}},
		{"winner also killed", "no-lost-trials", func(a *Artifacts) {
			a.Recorder.Record(a.finishedAt(), trace.KindTrialKill, a.Scenario.Spec.NumStages()-1,
				int(a.Result.BestTrial), "tampered")
		}},
		{"estimate past deadline", "deadline", func(a *Artifacts) {
			a.Estimate.JCT = a.Deadline + 1
		}},
		{"stage trial count drift", "schedule-sanity", func(a *Artifacts) {
			a.Result.Schedule[0].Trials++
		}},
		{"phantom replan decision", "replan-consistency", func(a *Artifacts) {
			a.Result.Replans = append(a.Result.Replans, replan.Decision{
				Seq:     len(a.Result.Replans),
				Reason:  replan.ReasonDrift,
				OldPlan: a.Plan.Clone(),
				NewPlan: a.Plan.Clone(),
			})
		}},
		{"adopted tail past remaining deadline", "deadline", func(a *Artifacts) {
			a.Result.Replans = append(a.Result.Replans, replan.Decision{
				Seq:               len(a.Result.Replans),
				Reason:            replan.ReasonDrift,
				RemainingDeadline: 50,
				OldPlan:           a.Plan.Clone(),
				NewPlan:           a.Plan.Clone(),
				Adopted:           true,
				NewEstimate:       sim.Estimate{JCT: 100},
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := cleanArtifacts(t)
			tc.mutate(a)
			for _, v := range CheckAll(a, DefaultOracles()) {
				if v.Oracle == tc.oracle {
					return
				}
			}
			t.Fatalf("mutation not caught by the %s oracle", tc.oracle)
		})
	}
}

// TestHarnessCatchesScatterRegression pins the chaos scenario that
// exposed the scatter double-booking bug (seed=2 index=52: scatter mode,
// queue hand-offs, no faults) as an end-to-end regression.
func TestHarnessCatchesScatterRegression(t *testing.T) {
	sc := Generate(2, 52)
	if !sc.DisablePlacement {
		t.Fatalf("generator drifted: scenario no longer scatter-mode\n  %s", sc)
	}
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckAll(a, DefaultOracles()); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestPipelineErrorReported(t *testing.T) {
	// A scenario whose run aborts must surface an error, not pass.
	sc := Generate(1, 0)
	sc.Faults.ProvisionFailureProb = 2
	if _, err := RunScenario(sc); err == nil {
		t.Fatal("invalid fault model did not abort the run")
	}
}
