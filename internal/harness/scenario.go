// Package harness is the deterministic end-to-end chaos harness: a seeded
// scenario generator that samples random-but-reproducible experiment
// specs, scaling workloads, pricing tables, deadlines and fault models,
// runs the full pipeline (spec → simulation → planner → placement →
// elastic executor) on the virtual clock, and checks system-wide
// invariant oracles over the resulting trace, billing and result.
//
// The style follows FoundationDB-like simulation testing: all randomness
// derives from one seed through pure stats.RNG streams, so any failing
// scenario replays bit-identically from `go run ./cmd/rbfuzz -seed N
// -index I`, at any batch worker count.
package harness

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// Scenario is one generated end-to-end chaos experiment. It is a pure
// function of (BatchSeed, Index): Generate reconstructs it exactly, and
// RunScenario derives every runtime random stream from the same pair, so
// a Scenario value is fully described by those two numbers.
type Scenario struct {
	// BatchSeed and Index identify the scenario within its batch.
	BatchSeed uint64
	Index     int

	// Spec is the sampled experiment structure (stages × trials × iters).
	Spec *spec.ExperimentSpec
	// Model is the workload (zoo architecture with rescaled noise).
	Model *model.Model
	// Space is the hyperparameter space configurations are drawn from.
	Space *searchspace.Space
	// Profile bundles instance type, pricing table and provisioning
	// overheads.
	Profile sim.CloudProfile
	// Faults is the injected provider fault model.
	Faults cloud.FaultModel
	// RestoreSeconds is the checkpoint-restore latency at migrations.
	RestoreSeconds float64
	// DisablePlacement scatters workers (the locality ablation path).
	DisablePlacement bool
	// MaxGPUs caps the planner's peak cluster size.
	MaxGPUs int
	// Samples is the simulator's Monte-Carlo sample count.
	Samples int
	// DeadlineFactor scales the analytic static-cluster JCT bound into
	// the job deadline. Factors near or below 1 are often infeasible,
	// deliberately exercising the planner-failure fallback path.
	DeadlineFactor float64
	// Estimator selects the simulator's Monte-Carlo estimator mode, so
	// the chaos sweep exercises both the incremental segment estimator
	// and the full-DAG reference.
	Estimator sim.EstimatorMode
	// Drift injects a mid-run latency regime change the planner did not
	// see: every iteration starting after the drift onset runs Factor×
	// slower (or faster) than profiled.
	Drift DriftModel
	// ReplanEnabled wires the online replanning controller into the
	// executor; disabled runs exercise the stale-plan baseline.
	ReplanEnabled bool
	// DriftThreshold is the replan controller's EWMA trigger threshold.
	DriftThreshold float64
	// ReplanCooldown is the minimum virtual time between replans.
	ReplanCooldown float64
	// ArbiterCaps, when non-nil, runs the scenario behind a scripted
	// stage-boundary arbiter: stage i's allocation is capped at
	// ArbiterCaps[i] GPUs, exercising the multi-tenant grant gate inside
	// the chaos sweep. Caps are part of the scenario (a pure function of
	// seed and index), so capped runs replay like any other. Capped
	// scenarios never enable replanning: the gate and the replan
	// controller both rewrite the live plan.
	ArbiterCaps []int
}

// DriftModel describes an injected latency regime change: from virtual
// time deadline×StartFraction onward, iteration latencies are multiplied
// by Factor. The zero value (or Factor 1) means no drift.
type DriftModel struct {
	Factor        float64
	StartFraction float64
}

// Active reports whether the model changes anything.
func (d DriftModel) Active() bool { return d.Factor > 0 && d.Factor != 1 }

// Stream indices for the per-scenario RNG tree. Generate and RunScenario
// never share a stream, so adding draws to one phase cannot shift another.
const (
	streamGenerate = iota
	streamSim
	streamProvider
	streamExecutor
	streamConfigs
	streamReplan
	streamCrash
)

// scenarioRoot returns the root RNG of scenario (seed, index). Stream is
// pure, so repeated calls yield identical children.
func scenarioRoot(seed uint64, index int) *stats.RNG {
	return stats.NewRNG(seed).Stream(uint64(index))
}

// pick returns a uniformly chosen element of xs.
func pick[T any](r *stats.RNG, xs ...T) T { return xs[r.Intn(len(xs))] }

// uniform returns a uniform draw from [lo, hi).
func uniform(r *stats.RNG, lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Generate deterministically samples scenario index of the batch seeded by
// seed. Every field is drawn from the scenario's private generation
// stream; the same (seed, index) always yields the same Scenario.
func Generate(seed uint64, index int) Scenario {
	r := scenarioRoot(seed, index).Stream(streamGenerate)

	// Experiment structure: 1–4 stages, 2–10 initial trials, trial counts
	// non-increasing (early stopping only terminates trials).
	nStages := 1 + r.Intn(4)
	stages := make([]spec.Stage, 0, nStages)
	trials := 2 + r.Intn(9)
	for i := 0; i < nStages; i++ {
		if i > 0 {
			trials = 1 + r.Intn(trials)
		}
		stages = append(stages, spec.Stage{Trials: trials, Iters: 1 + r.Intn(5)})
	}
	s, err := spec.New(stages...)
	if err != nil {
		// Unreachable by construction: counts are positive and
		// non-increasing.
		panic(fmt.Sprintf("harness: generated invalid spec: %v", err))
	}

	// Workload: a zoo model with its latency noise kept, halved or
	// silenced, so both noisy and analytically tight runs occur.
	m := pick(r, model.Zoo()...)
	m.IterNoiseStd *= pick(r, 0.0, 0.5, 1.0)
	space := searchspace.DefaultVisionSpace()
	if m.Name == "bert" {
		space = searchspace.DefaultNLPSpace()
	}

	// Cloud substrate: worker shape, billing model, market, minimum
	// charge, data pricing and provisioning overheads.
	instName := pick(r, "p3.2xlarge", "p3.8xlarge", "p3.16xlarge")
	it, err := cloud.DefaultCatalog().Lookup(instName)
	if err != nil {
		panic(fmt.Sprintf("harness: catalog lookup: %v", err))
	}
	pricing := cloud.Pricing{
		Billing:          pick(r, cloud.PerInstance, cloud.PerInstance, cloud.PerFunction),
		Market:           pick(r, cloud.OnDemand, cloud.Spot),
		MinChargeSeconds: pick(r, 0.0, 60.0),
		DataPricePerGB:   pick(r, 0.0, 0.02),
	}
	var queue stats.Dist = stats.Deterministic{Value: 0}
	if qm := uniform(r, 0, 20); qm > 1 {
		queue = stats.Exponential{MeanValue: qm}
	}
	profile := sim.CloudProfile{
		Instance: it,
		Pricing:  pricing,
		Overheads: cloud.Overheads{
			QueueDelay:  queue,
			InitLatency: stats.Deterministic{Value: uniform(r, 0, 30)},
		},
		DatasetGB: uniform(r, 0, 40),
	}

	// Fault model: roughly half the scenarios run clean; the rest inject
	// provisioning failures, preemptions, or both. The preemption mean is
	// kept well above typical iteration latencies so recovery always makes
	// expected forward progress (the runner's event bound catches
	// livelock regardless).
	var faults cloud.FaultModel
	switch r.Intn(4) {
	case 1:
		faults.ProvisionFailureProb = uniform(r, 0.05, 0.4)
	case 2:
		faults.PreemptionMeanSeconds = uniform(r, 300, 5000)
	case 3:
		faults.ProvisionFailureProb = uniform(r, 0.05, 0.4)
		faults.PreemptionMeanSeconds = uniform(r, 300, 5000)
	}

	maxGPUs := s.TotalTrials() * pick(r, 1, 2, 4)
	if maxGPUs > 32 {
		maxGPUs = 32
	}

	sc := Scenario{
		BatchSeed:        seed,
		Index:            index,
		Spec:             s,
		Model:            m,
		Space:            space,
		Profile:          profile,
		Faults:           faults,
		RestoreSeconds:   uniform(r, 0, 10),
		DisablePlacement: r.Intn(5) == 0,
		MaxGPUs:          maxGPUs,
		Samples:          4,
		DeadlineFactor:   uniform(r, 0.8, 2.5),
		// Drawn after the fields above so pre-existing scenario corpora
		// keep every other field for a given (seed, index).
		Estimator: pick(r, sim.EstimatorSegment, sim.EstimatorFull),
	}

	// Drift and replanning draws come last, after every pre-existing
	// field, for the same corpus-stability reason. A third of scenarios
	// slow down mid-run, a third speed up, a third stay on-profile; half
	// run with the replan controller wired in.
	switch r.Intn(3) {
	case 1:
		sc.Drift = DriftModel{Factor: pick(r, 1.5, 2.0, 3.0), StartFraction: uniform(r, 0.05, 0.6)}
	case 2:
		sc.Drift = DriftModel{Factor: pick(r, 0.4, 0.7), StartFraction: uniform(r, 0.05, 0.6)}
	}
	sc.ReplanEnabled = r.Intn(2) == 0
	sc.DriftThreshold = pick(r, 0.15, 0.25, 0.4)
	sc.ReplanCooldown = uniform(r, 5, 120)

	// Appended after every pre-existing draw (same corpus-stability rule):
	// a third of scenarios re-roll onto the analytic moment-propagation
	// estimator, so the chaos sweep plans without Monte-Carlo sampling end
	// to end and the oracles vet its estimates against real executions.
	if r.Intn(3) == 0 {
		sc.Estimator = sim.EstimatorAnalytic
	}

	// Appended after every pre-existing draw (same corpus-stability rule):
	// a fifth of scenarios run behind a scripted stage-boundary arbiter
	// cap, so the chaos sweep covers multi-tenant grant gating — squeezed
	// allocations, queued trial waves, grant journaling — under every
	// fault model. Gating excludes the replan controller by design.
	if r.Intn(5) == 0 {
		caps := make([]int, s.NumStages())
		for i := range caps {
			caps[i] = 1 + r.Intn(maxGPUs)
		}
		sc.ArbiterCaps = caps
		sc.ReplanEnabled = false
	}
	return sc
}

// String renders the scenario compactly for failure reports.
func (sc Scenario) String() string {
	return fmt.Sprintf(
		"seed=%d index=%d spec=%v model=%s inst=%s billing=%v market=%v minCharge=%gs dataGB=%.1f "+
			"faults={pfail=%.3f preemptMean=%.0fs} restore=%.1fs scatter=%v maxGPUs=%d deadlineFactor=%.2f estimator=%v "+
			"drift={x%.1f@%.2f} replan=%v threshold=%.2f cooldown=%.0fs caps=%v",
		sc.BatchSeed, sc.Index, sc.Spec, sc.Model.Name, sc.Profile.Instance.Name,
		sc.Profile.Pricing.Billing, sc.Profile.Pricing.Market, sc.Profile.Pricing.MinChargeSeconds,
		sc.Profile.DatasetGB, sc.Faults.ProvisionFailureProb, sc.Faults.PreemptionMeanSeconds,
		sc.RestoreSeconds, sc.DisablePlacement, sc.MaxGPUs, sc.DeadlineFactor, sc.Estimator,
		sc.Drift.Factor, sc.Drift.StartFraction, sc.ReplanEnabled, sc.DriftThreshold, sc.ReplanCooldown,
		sc.ArbiterCaps)
}
