package harness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/replan"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/trial"
)

// Violation is one invariant breach found by an oracle.
type Violation struct {
	// Oracle names the invariant family that fired.
	Oracle string
	// Detail describes the breach concretely.
	Detail string
}

// String renders the violation for reports.
func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// Oracle is one system-wide invariant checked after every scenario run.
type Oracle struct {
	// Name identifies the oracle in reports.
	Name string
	// Check inspects the run's artifacts and returns breach details
	// (empty when the invariant holds).
	Check func(a *Artifacts) []string
}

// DefaultOracles returns the full oracle library, in the order violations
// are reported.
func DefaultOracles() []Oracle {
	return []Oracle{
		{Name: "cost-conservation", Check: checkCostConservation},
		{Name: "usage-metering", Check: checkUsageMetering},
		{Name: "gang-integrity", Check: checkGangIntegrity},
		{Name: "no-lost-trials", Check: checkNoLostTrials},
		{Name: "deadline", Check: checkDeadline},
		{Name: "replan-consistency", Check: checkReplanConsistency},
		{Name: "schedule-sanity", Check: checkScheduleSanity},
		{Name: "grant-consistency", Check: checkGrantConsistency},
	}
}

// CheckAll runs every oracle over the artifacts and collects violations.
func CheckAll(a *Artifacts, oracles []Oracle) []Violation {
	var out []Violation
	for _, o := range oracles {
		for _, d := range o.Check(a) {
			out = append(out, Violation{Oracle: o.Name, Detail: d})
		}
	}
	return out
}

// close reports near-equality with an absolute floor (billing sums are
// dollars; traces accumulate thousands of float adds).
func closeTo(a, b float64) bool {
	tol := 1e-6 + 1e-9*math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol
}

// checkCostConservation reprices the provider's instance ledger from
// first principles and requires the realized bill to match it exactly:
// metered cost = Σ pricing(instance lifetime, usage) + data ingress, the
// per-stage cost attribution sums to the total, and billed GPU-seconds
// dominate busy GPU-seconds (you cannot consume more capacity than you
// paid for).
func checkCostConservation(a *Artifacts) []string {
	var out []string
	now := a.finishedAt()
	pricing := a.Scenario.Profile.Pricing

	var compute, billedGPUSec float64
	billed := 0
	for _, in := range a.Instances {
		if !in.Billing() {
			continue
		}
		billed++
		compute += pricing.InstanceCost(in.Type, in.BilledLifetime(now), in.GPUSecondsUsed)
		billedGPUSec += in.BilledLifetime(now) * float64(in.Type.GPUs)
	}
	if total := compute + a.DataCost; !closeTo(total, a.Result.Cost) {
		out = append(out, fmt.Sprintf("repriced ledger %v != billed cost %v", total, a.Result.Cost))
	}
	if wantData := float64(billed) * pricing.DataIngressCost(a.Scenario.Profile.DatasetGB); !closeTo(wantData, a.DataCost) {
		out = append(out, fmt.Sprintf("data ingress %v != %d instances x unit price (%v)", a.DataCost, billed, wantData))
	}

	busy := a.Recorder.BusyGPUSeconds()
	if busy > billedGPUSec+1e-6 {
		out = append(out, fmt.Sprintf("busy GPU-seconds %v exceed billed GPU-seconds %v", busy, billedGPUSec))
	}
	if u := a.Result.Utilization; u < 0 || u > 1+1e-9 {
		out = append(out, fmt.Sprintf("utilization %v outside [0,1]", u))
	}
	if billedGPUSec > 0 && !closeTo(a.Result.Utilization, busy/billedGPUSec) {
		out = append(out, fmt.Sprintf("utilization %v != busy/billed %v", a.Result.Utilization, busy/billedGPUSec))
	}

	var stageSum float64
	for _, row := range a.Result.Schedule {
		stageSum += row.Cost
	}
	if !closeTo(stageSum, a.Result.Cost) {
		out = append(out, fmt.Sprintf("stage costs sum to %v, total bill is %v", stageSum, a.Result.Cost))
	}
	return out
}

// checkUsageMetering cross-checks the two independent usage meters: the
// trace's busy accounting and the provider's per-instance GPU-second
// meter must agree, no instance may meter more usage than its capacity ×
// lifetime allows, and never-billed instances must meter nothing.
func checkUsageMetering(a *Artifacts) []string {
	var out []string
	now := a.finishedAt()
	var used float64
	for _, in := range a.Instances {
		used += in.GPUSecondsUsed
		if !in.Billing() && in.GPUSecondsUsed != 0 {
			out = append(out, fmt.Sprintf("instance %d metered %v GPU-seconds without ever billing", in.ID, in.GPUSecondsUsed))
		}
		if capacity := in.BilledLifetime(now) * float64(in.Type.GPUs); in.GPUSecondsUsed > capacity+1e-6 {
			out = append(out, fmt.Sprintf("instance %d metered %v GPU-seconds, capacity x lifetime is %v", in.ID, in.GPUSecondsUsed, capacity))
		}
	}
	if busy := a.Recorder.BusyGPUSeconds(); !closeTo(used, busy) {
		out = append(out, fmt.Sprintf("provider usage meter %v != trace busy meter %v", used, busy))
	}
	return out
}

// checkGangIntegrity verifies every placement the executor realized
// against the allocation plan: each trial start carries exactly the
// stage's per-trial GPU allocation, and — when the placement controller
// is active — the gang spans the minimal node set (workers are never
// split wider than the plan requires).
func checkGangIntegrity(a *Artifacts) []string {
	var out []string
	rows := a.Result.Schedule
	for _, e := range a.Recorder.Filter(trace.KindTrialStart) {
		if e.Stage < 0 || e.Stage >= len(rows) {
			out = append(out, fmt.Sprintf("trial %d start in unknown stage %d", e.Trial, e.Stage))
			continue
		}
		if want := rows[e.Stage].GPUsPerTrial; e.GPUs != want {
			out = append(out, fmt.Sprintf("trial %d started with %d GPUs in stage %d, plan allocates %d", e.Trial, e.GPUs, e.Stage, want))
		}
		if e.Nodes < 1 || e.Nodes > e.GPUs {
			out = append(out, fmt.Sprintf("trial %d gang spans %d nodes for %d GPUs", e.Trial, e.Nodes, e.GPUs))
			continue
		}
		minSpread := model.MinNodes(e.GPUs, a.GPN)
		if a.Scenario.DisablePlacement {
			if e.Nodes < minSpread {
				out = append(out, fmt.Sprintf("trial %d gang packs %d GPUs on %d nodes below physical minimum %d", e.Trial, e.GPUs, e.Nodes, minSpread))
			}
		} else if e.Nodes != minSpread {
			out = append(out, fmt.Sprintf("trial %d gang split across %d nodes in stage %d, co-location needs %d", e.Trial, e.Nodes, e.Stage, minSpread))
		}
	}
	return out
}

// checkNoLostTrials verifies tournament integrity end to end: every trial
// ends Completed or Terminated, exactly one wins, the winner trained
// exactly the full budget, and every terminated trial trained exactly its
// cumulative per-stage iteration budget through the stage its recorded
// kill happened in — even across preemption recovery. Per stage, every
// participant starts, iterates at least the stage budget, and finishes
// exactly once.
func checkNoLostTrials(a *Artifacts) []string {
	var out []string
	sp := a.Scenario.Spec

	cum := make([]int, sp.NumStages())
	total := 0
	for i := 0; i < sp.NumStages(); i++ {
		total += sp.Stage(i).Iters
		cum[i] = total
	}

	killStage := make(map[int]int)
	for _, e := range a.Recorder.Filter(trace.KindTrialKill) {
		if _, dup := killStage[e.Trial]; dup {
			out = append(out, fmt.Sprintf("trial %d killed twice", e.Trial))
		}
		killStage[e.Trial] = e.Stage
	}

	if got, want := len(a.Result.Trials), sp.TotalTrials(); got != want {
		out = append(out, fmt.Sprintf("%d trials in result, spec has %d", got, want))
	}
	completed := 0
	for _, t := range a.Result.Trials {
		switch t.State() {
		case trial.Completed:
			completed++
			if t.CumIters() != sp.MaxIters() {
				out = append(out, fmt.Sprintf("winner %d trained %d iters, budget is %d", t.ID(), t.CumIters(), sp.MaxIters()))
			}
			if _, killed := killStage[int(t.ID())]; killed {
				out = append(out, fmt.Sprintf("winner %d has a recorded kill", t.ID()))
			}
		case trial.Terminated:
			s, ok := killStage[int(t.ID())]
			if !ok {
				out = append(out, fmt.Sprintf("trial %d terminated without a recorded kill (lost)", t.ID()))
				continue
			}
			if t.CumIters() != cum[s] {
				out = append(out, fmt.Sprintf("trial %d killed at stage %d with %d iters, stage budget is %d", t.ID(), s, t.CumIters(), cum[s]))
			}
		default:
			out = append(out, fmt.Sprintf("trial %d left in state %v", t.ID(), t.State()))
		}
	}
	if completed != 1 {
		out = append(out, fmt.Sprintf("%d completed trials, want exactly 1", completed))
	}
	if want := sp.TotalTrials() - 1; len(killStage) != want {
		out = append(out, fmt.Sprintf("%d kill events, want %d", len(killStage), want))
	}

	// Per-stage participation from the event log.
	type key struct{ trial, stage int }
	starts := make(map[key]int)
	iters := make(map[key]int)
	dones := make(map[key]int)
	for tid, evs := range a.Recorder.ByTrial() {
		for _, e := range evs {
			k := key{tid, e.Stage}
			switch e.Kind {
			case trace.KindTrialStart:
				starts[k]++
			case trace.KindTrialIter:
				iters[k]++
			case trace.KindTrialDone:
				dones[k]++
			}
		}
	}
	doneKeys := make([]key, 0, len(dones))
	for k := range dones {
		doneKeys = append(doneKeys, k)
	}
	sort.Slice(doneKeys, func(i, j int) bool {
		if doneKeys[i].stage != doneKeys[j].stage {
			return doneKeys[i].stage < doneKeys[j].stage
		}
		return doneKeys[i].trial < doneKeys[j].trial
	})
	for i := 0; i < sp.NumStages(); i++ {
		st := sp.Stage(i)
		participants := 0
		for _, k := range doneKeys {
			if k.stage != i {
				continue
			}
			n := dones[k]
			participants++
			if n != 1 {
				out = append(out, fmt.Sprintf("trial %d finished stage %d %d times", k.trial, i, n))
			}
			if starts[k] < 1 {
				out = append(out, fmt.Sprintf("trial %d finished stage %d without starting", k.trial, i))
			}
			if got := iters[k]; got < st.Iters || got > starts[k]*st.Iters {
				out = append(out, fmt.Sprintf("trial %d ran %d iterations in stage %d (budget %d, %d starts)", k.trial, got, i, st.Iters, starts[k]))
			}
		}
		if participants != st.Trials {
			out = append(out, fmt.Sprintf("stage %d finished %d trials, spec wants %d", i, participants, st.Trials))
		}
	}
	return out
}

// checkDeadline verifies the planner's contract: whenever it returned a
// plan, the plan is structurally valid, respects the peak-GPU cap, and
// its predicted JCT meets the sampled deadline.
func checkDeadline(a *Artifacts) []string {
	if !a.Planned {
		return nil
	}
	var out []string
	if err := a.Plan.Validate(a.Scenario.Spec.NumStages()); err != nil {
		out = append(out, fmt.Sprintf("planner produced invalid plan: %v", err))
	}
	if a.Plan.Max() > a.Scenario.MaxGPUs {
		out = append(out, fmt.Sprintf("plan peak %d GPUs exceeds cap %d", a.Plan.Max(), a.Scenario.MaxGPUs))
	}
	if a.Estimate.JCT > a.Deadline+1e-9 {
		out = append(out, fmt.Sprintf("planner accepted JCT %v over deadline %v", a.Estimate.JCT, a.Deadline))
	}
	// Replanning contract: an adopted tail must meet the remaining
	// deadline it was planned under, and an infeasible-after-drift label
	// needs an identifiable cause — under a deterministic on-profile run
	// the detector never triggers, so a declared infeasibility with no
	// drift, preemption, scatter or latency noise is a planner-side bug.
	for _, d := range a.Result.Replans {
		if d.Adopted && d.NewEstimate.JCT > d.RemainingDeadline+1e-9 {
			out = append(out, fmt.Sprintf("replan %d adopted tail JCT %v over remaining deadline %v", d.Seq, d.NewEstimate.JCT, d.RemainingDeadline))
		}
		if d.Infeasible && !driftExcused(a) {
			out = append(out, fmt.Sprintf("replan %d declared infeasible without drift, preemption, scatter or noise", d.Seq))
		}
	}
	return out
}

// driftExcused reports whether an infeasible-after-drift replan outcome
// has an identifiable cause in this run: injected drift, a preemption,
// the scatter ablation (slower than the profiled co-located latency), or
// stochastic iteration latency.
func driftExcused(a *Artifacts) bool {
	return a.DriftClass != DriftNone || a.Result.Preemptions > 0 ||
		a.Scenario.DisablePlacement || a.Scenario.Model.IterNoiseStd > 0
}

// checkReplanConsistency verifies the replan loop's bookkeeping end to
// end: decisions and trace events correspond one-to-one, every decision
// has its trigger evidence (a drift_trigger event or a preemption),
// decisions respect the cooldown, each rewrites only future stages within
// the GPU cap, the decision chain links the initial plan to the final
// plan, and the executed schedule reflects the final plan. Runs without a
// controller must show no replan activity at all.
func checkReplanConsistency(a *Artifacts) []string {
	var out []string
	reps := a.Result.Replans
	events := a.Recorder.Filter(trace.KindReplan)
	triggers := a.Recorder.Filter(trace.KindDriftTrigger)

	if !a.Scenario.ReplanEnabled || !a.Planned {
		if len(reps) > 0 || len(events) > 0 || len(triggers) > 0 {
			out = append(out, fmt.Sprintf("%d replan decisions, %d replan events, %d drift triggers without a controller",
				len(reps), len(events), len(triggers)))
		}
		return out
	}

	nStages := a.Scenario.Spec.NumStages()
	final := a.Result.FinalPlan
	if err := final.Validate(nStages); err != nil {
		out = append(out, fmt.Sprintf("final plan invalid: %v", err))
		return out
	}
	// The executed schedule must reflect the final plan: replans never
	// rewrite a stage that has started, so every realized row matches it.
	for _, row := range a.Result.Schedule {
		if row.Stage < 0 || row.Stage >= nStages {
			continue // schedule-sanity reports malformed rows
		}
		if want := sim.GPUsPerTrial(final.Alloc[row.Stage], row.Trials); row.GPUsPerTrial != want {
			out = append(out, fmt.Sprintf("stage %d executed %d GPUs/trial, final plan implies %d", row.Stage, row.GPUsPerTrial, want))
		}
	}

	if len(events) != len(reps) {
		out = append(out, fmt.Sprintf("%d replan trace events for %d decisions", len(events), len(reps)))
	}

	prev := a.Plan
	for i, d := range reps {
		if d.Seq != i {
			out = append(out, fmt.Sprintf("decision %d carries seq %d", i, d.Seq))
		}
		if i < len(events) {
			if e := events[i]; float64(e.At) != float64(d.At) || e.Stage != d.Stage {
				out = append(out, fmt.Sprintf("decision %d at (%v, stage %d) but trace event at (%v, stage %d)", i, d.At, d.Stage, e.At, e.Stage))
			}
		}
		if i > 0 {
			if dt := float64(d.At - reps[i-1].At); dt < a.Scenario.ReplanCooldown-1e-9 {
				out = append(out, fmt.Sprintf("decisions %d and %d only %vs apart, cooldown is %vs", i-1, i, dt, a.Scenario.ReplanCooldown))
			}
		}
		switch d.Reason {
		case replan.ReasonDrift:
			found := false
			for _, t := range triggers {
				if t.At == d.At && t.Stage == d.Stage {
					found = true
					break
				}
			}
			if !found {
				out = append(out, fmt.Sprintf("drift decision %d has no drift_trigger event at (%v, stage %d)", i, d.At, d.Stage))
			}
		case replan.ReasonPreemption:
			if a.Result.Preemptions == 0 {
				out = append(out, fmt.Sprintf("preemption decision %d in a run with zero preemptions", i))
			}
		default:
			out = append(out, fmt.Sprintf("decision %d has unknown reason %q", i, d.Reason))
		}
		if d.Stage < 0 || d.Stage >= nStages-1 {
			out = append(out, fmt.Sprintf("decision %d replans from stage %d of %d (no tail)", i, d.Stage, nStages))
			continue
		}
		if err := d.NewPlan.Validate(nStages); err != nil {
			out = append(out, fmt.Sprintf("decision %d produced invalid plan: %v", i, err))
			continue
		}
		if !d.OldPlan.Equal(prev) {
			out = append(out, fmt.Sprintf("decision %d starts from %v, chain expects %v", i, d.OldPlan, prev))
		}
		for j := 0; j <= d.Stage; j++ {
			if d.NewPlan.Alloc[j] != d.OldPlan.Alloc[j] {
				out = append(out, fmt.Sprintf("decision %d rewrote executed stage %d (%d -> %d GPUs)", i, j, d.OldPlan.Alloc[j], d.NewPlan.Alloc[j]))
				break
			}
		}
		if d.NewPlan.Max() > a.Scenario.MaxGPUs {
			out = append(out, fmt.Sprintf("decision %d plan peak %d GPUs exceeds cap %d", i, d.NewPlan.Max(), a.Scenario.MaxGPUs))
		}
		if !d.Adopted && !d.NewPlan.Equal(d.OldPlan) {
			out = append(out, fmt.Sprintf("decision %d not adopted but plan changed %v -> %v", i, d.OldPlan, d.NewPlan))
		}
		if d.Adopted && d.Infeasible {
			out = append(out, fmt.Sprintf("decision %d both adopted and infeasible", i))
		}
		prev = d.NewPlan
	}
	if !final.Equal(prev) {
		out = append(out, fmt.Sprintf("final plan %v does not close the decision chain (expected %v)", final, prev))
	}
	return out
}

// checkGrantConsistency verifies a gated run's arbitration bookkeeping:
// exactly one grant per stage in stage order, each within [1, want] with
// want matching the pre-gate plan, scripted caps honored exactly, and
// the executed final plan equal to the granted allocations. Runs that
// recorded no grants are checked only for not owing any (a cap-carrying
// scenario must gate every stage).
func checkGrantConsistency(a *Artifacts) []string {
	var out []string
	n := a.Scenario.Spec.NumStages()
	caps := a.Scenario.ArbiterCaps
	if len(a.Grants) == 0 {
		if len(caps) > 0 {
			out = append(out, fmt.Sprintf("cap-carrying scenario recorded no grants (%d stages)", n))
		}
		return out
	}
	if len(a.Grants) != n {
		out = append(out, fmt.Sprintf("%d grants recorded for %d stages", len(a.Grants), n))
		return out
	}
	final := a.Result.FinalPlan
	for i, g := range a.Grants {
		if g.Stage != i {
			out = append(out, fmt.Sprintf("grant %d is for stage %d, want stage order", i, g.Stage))
			continue
		}
		if g.Want != a.Plan.Alloc[i] {
			out = append(out, fmt.Sprintf("stage %d requested %d GPUs, plan allocates %d", i, g.Want, a.Plan.Alloc[i]))
		}
		if g.Granted < 1 || g.Granted > g.Want {
			out = append(out, fmt.Sprintf("stage %d granted %d GPUs outside [1, %d]", i, g.Granted, g.Want))
		}
		if len(caps) == n {
			want := g.Want
			if caps[i] < want {
				want = caps[i]
			}
			if want < 1 {
				want = 1
			}
			if g.Granted != want {
				out = append(out, fmt.Sprintf("stage %d granted %d GPUs, cap %d and request %d imply %d", i, g.Granted, caps[i], g.Want, want))
			}
		}
		if i < len(final.Alloc) && final.Alloc[i] != g.Granted {
			out = append(out, fmt.Sprintf("stage %d executed %d GPUs, grant was %d", i, final.Alloc[i], g.Granted))
		}
	}
	return out
}

// checkScheduleSanity verifies the realized schedule's structure: one row
// per stage in order, consistent iteration windows, non-overlapping stage
// time spans ending exactly at job completion, and trace barriers that
// agree with the schedule.
func checkScheduleSanity(a *Artifacts) []string {
	var out []string
	sp := a.Scenario.Spec
	rows := a.Result.Schedule
	if len(rows) != sp.NumStages() {
		return []string{fmt.Sprintf("%d schedule rows, spec has %d stages", len(rows), sp.NumStages())}
	}
	cum := 0
	for i, row := range rows {
		st := sp.Stage(i)
		if row.Stage != i {
			out = append(out, fmt.Sprintf("row %d labeled stage %d", i, row.Stage))
		}
		if row.Trials != st.Trials {
			out = append(out, fmt.Sprintf("stage %d row has %d trials, spec wants %d", i, row.Trials, st.Trials))
		}
		if row.IterStart != cum || row.IterEnd != cum+st.Iters {
			out = append(out, fmt.Sprintf("stage %d iteration window [%d,%d], spec wants [%d,%d]", i, row.IterStart, row.IterEnd, cum, cum+st.Iters))
		}
		cum += st.Iters
		if row.End < row.Start {
			out = append(out, fmt.Sprintf("stage %d ends (%v) before it starts (%v)", i, row.End, row.Start))
		}
		if i > 0 && row.Start < rows[i-1].End {
			out = append(out, fmt.Sprintf("stage %d starts (%v) before stage %d ends (%v)", i, row.Start, i-1, rows[i-1].End))
		}
		if row.Cost < -1e-9 {
			out = append(out, fmt.Sprintf("stage %d has negative cost %v", i, row.Cost))
		}
	}
	if last := rows[len(rows)-1].End; !closeTo(float64(last), a.Result.JCT) {
		out = append(out, fmt.Sprintf("last barrier at %v, JCT %v", last, a.Result.JCT))
	}
	if ns, ne := a.Recorder.Count(trace.KindStageStart), a.Recorder.Count(trace.KindStageEnd); ns != sp.NumStages() || ne != sp.NumStages() {
		out = append(out, fmt.Sprintf("trace has %d stage starts / %d stage ends, spec has %d stages", ns, ne, sp.NumStages()))
	}
	return out
}
