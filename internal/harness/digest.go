package harness

import (
	"math"

	"repro/internal/trace"
)

// Digest is a 64-bit fingerprint of a run's observable behaviour: the full
// event trace (times, kinds, stages, trials, gang shapes), the realized
// result (JCT, cost, best trial, schedule rows) and the final trial
// states. Two runs of the same scenario must produce equal digests; the
// replay oracle and the determinism regression tests compare them.
type Digest uint64

// FNV-1a parameters (64-bit).
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// hasher is an incremental FNV-1a accumulator. Floats are folded by their
// IEEE-754 bit patterns, so the digest is sensitive to the last ulp — the
// standard the determinism suite holds the pipeline to.
type hasher uint64

func newHasher() hasher { return fnvOffset }

func (h *hasher) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= (v >> (8 * i)) & 0xff
		x *= fnvPrime
	}
	*h = hasher(x)
}

func (h *hasher) i64(v int64)   { h.u64(uint64(v)) }
func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.u64(uint64(s[i]))
	}
}

func (h *hasher) kind(k trace.Kind) { h.str(string(k)) }

// ComputeDigest fingerprints the artifacts of one run.
func ComputeDigest(a *Artifacts) Digest {
	h := newHasher()

	// Plan and prediction.
	for _, g := range a.Plan.Alloc {
		h.i64(int64(g))
	}
	if a.Planned {
		h.f64(a.Estimate.JCT)
		h.f64(a.Estimate.Cost)
	}
	h.f64(a.Deadline)

	// Event trace, in recorded order. Indexed access into the columnar
	// recorder: digesting is the hottest full-trace scan, and copying the
	// log out first would double its footprint at fleet scale.
	h.i64(int64(a.Recorder.Len()))
	for i := 0; i < a.Recorder.Len(); i++ {
		e := a.Recorder.EventAt(i)
		h.f64(float64(e.At))
		h.kind(e.Kind)
		h.i64(int64(e.Stage))
		h.i64(int64(e.Trial))
		h.i64(int64(e.GPUs))
		h.i64(int64(e.Nodes))
	}
	h.f64(a.Recorder.BusyGPUSeconds())

	// Result.
	h.f64(a.Result.JCT)
	h.f64(a.Result.Cost)
	h.i64(int64(a.Result.BestTrial))
	h.f64(a.Result.BestAccuracy)
	h.f64(a.Result.Utilization)
	h.i64(int64(a.Result.Preemptions))
	for _, row := range a.Result.Schedule {
		h.i64(int64(row.Stage))
		h.i64(int64(row.IterStart))
		h.i64(int64(row.IterEnd))
		h.i64(int64(row.Trials))
		h.i64(int64(row.GPUsPerTrial))
		h.i64(int64(row.ClusterNodes))
		h.f64(float64(row.Start))
		h.f64(float64(row.End))
		h.f64(row.Cost)
	}

	// Final trial states.
	for _, t := range a.Result.Trials {
		h.i64(int64(t.ID()))
		h.i64(int64(t.State()))
		h.i64(int64(t.CumIters()))
		if acc, ok := t.LatestAccuracy(); ok {
			h.f64(acc)
		}
	}

	// Replan decisions and the plan actually executed. Booleans fold as
	// 0/1 so any flip in adoption or feasibility flips the digest.
	for _, g := range a.Result.FinalPlan.Alloc {
		h.i64(int64(g))
	}
	h.i64(int64(len(a.Result.Replans)))
	for _, d := range a.Result.Replans {
		h.i64(int64(d.Seq))
		h.f64(float64(d.At))
		h.str(string(d.Reason))
		h.i64(int64(d.Stage))
		h.f64(d.Ratio)
		h.f64(d.RemainingDeadline)
		for _, g := range d.OldPlan.Alloc {
			h.i64(int64(g))
		}
		for _, g := range d.NewPlan.Alloc {
			h.i64(int64(g))
		}
		h.f64(d.StaleEstimate.JCT)
		h.f64(d.StaleEstimate.Cost)
		h.f64(d.NewEstimate.JCT)
		h.f64(d.NewEstimate.Cost)
		h.i64(b2i(d.Adopted))
		h.i64(b2i(d.Infeasible))
	}

	// Arbiter grants (stage-boundary reallocation of gated runs). Folded
	// only when present so ungated runs keep their historical digests.
	if len(a.Grants) > 0 {
		h.str("grants")
		h.i64(int64(len(a.Grants)))
		for _, g := range a.Grants {
			h.i64(int64(g.Stage))
			h.i64(int64(g.Want))
			h.i64(int64(g.Granted))
			h.f64(g.At)
		}
	}

	// Billing ledger.
	now := a.finishedAt()
	h.i64(int64(len(a.Instances)))
	for _, in := range a.Instances {
		h.i64(int64(in.ID))
		h.i64(int64(in.State))
		h.f64(in.BilledLifetime(now))
		h.f64(in.GPUSecondsUsed)
	}
	h.f64(a.DataCost)
	h.i64(int64(a.Retries))

	return Digest(h)
}

// b2i folds a bool into the hash domain.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// CombineDigests folds per-scenario digests (in scenario-index order) into
// one batch digest.
func CombineDigests(ds []Digest) Digest {
	h := newHasher()
	for _, d := range ds {
		h.u64(uint64(d))
	}
	return Digest(h)
}
