// Package trial models the lifecycle of one hyperparameter-configuration
// evaluation: a gang of data parallel workers that trains a model in
// iterations, reports intermediate metrics, and can be checkpointed,
// paused, migrated and restored between iterations (§3, §5).
package trial

import (
	"fmt"

	"repro/internal/searchspace"
	"repro/internal/vclock"
)

// ID identifies a trial within one experiment.
type ID int

// State is a trial's lifecycle state.
type State int

const (
	// Pending means the trial has not yet been scheduled.
	Pending State = iota
	// Running means the trial's workers are actively training.
	Running
	// Paused means the trial is checkpointed awaiting resources or the
	// next stage.
	Paused
	// Terminated means the trial was pruned by the tuning algorithm.
	Terminated
	// Completed means the trial survived every stage of the experiment.
	Completed
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Paused:
		return "paused"
	case Terminated:
		return "terminated"
	case Completed:
		return "completed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Metric is one intermediate training observation.
type Metric struct {
	// CumIters is the cumulative iteration count at observation time.
	CumIters int
	// Accuracy is the observed validation accuracy.
	Accuracy float64
	// At is the virtual time of the observation.
	At vclock.Time
}

// Trial is one candidate configuration's training run. Mutations go
// through methods so state transitions stay legal.
type Trial struct {
	id     ID
	config searchspace.Config

	state    State
	cumIters int
	metrics  []Metric

	// gpus and nodes describe the current worker gang: total workers and
	// the node spread the placement gave them.
	gpus  int
	nodes int
}

// New returns a pending trial for the given configuration.
func New(id ID, config searchspace.Config) *Trial {
	return &Trial{id: id, config: config, state: Pending}
}

// ID returns the trial identifier.
func (t *Trial) ID() ID { return t.id }

// Config returns the trial's hyperparameter configuration.
func (t *Trial) Config() searchspace.Config { return t.config }

// State returns the current lifecycle state.
func (t *Trial) State() State { return t.state }

// CumIters returns the trial's cumulative completed iterations.
func (t *Trial) CumIters() int { return t.cumIters }

// GPUs returns the size of the current worker gang (0 unless Running).
func (t *Trial) GPUs() int { return t.gpus }

// Nodes returns the node spread of the current gang (0 unless Running).
func (t *Trial) Nodes() int { return t.nodes }

// Start transitions the trial to Running with a gang of gpus workers
// spanning nodes machines. Valid from Pending or Paused.
func (t *Trial) Start(gpus, nodes int) error {
	if t.state != Pending && t.state != Paused {
		return fmt.Errorf("trial %d: Start from %v", t.id, t.state)
	}
	if gpus < 1 || nodes < 1 || nodes > gpus {
		return fmt.Errorf("trial %d: invalid gang %d GPUs / %d nodes", t.id, gpus, nodes)
	}
	t.state = Running
	t.gpus, t.nodes = gpus, nodes
	return nil
}

// RecordIteration advances the trial by one iteration and records the
// observed accuracy. Valid only while Running.
func (t *Trial) RecordIteration(accuracy float64, at vclock.Time) error {
	if t.state != Running {
		return fmt.Errorf("trial %d: RecordIteration while %v", t.id, t.state)
	}
	t.cumIters++
	t.metrics = append(t.metrics, Metric{CumIters: t.cumIters, Accuracy: accuracy, At: at})
	return nil
}

// Pause checkpoints the trial at a stage boundary, destroying its workers.
// Valid only while Running.
func (t *Trial) Pause() error {
	if t.state != Running {
		return fmt.Errorf("trial %d: Pause while %v", t.id, t.state)
	}
	t.state = Paused
	t.gpus, t.nodes = 0, 0
	return nil
}

// Terminate prunes the trial. Valid from any live state; terminating a
// Completed trial is an error.
func (t *Trial) Terminate() error {
	if t.state == Completed {
		return fmt.Errorf("trial %d: Terminate after completion", t.id)
	}
	t.state = Terminated
	t.gpus, t.nodes = 0, 0
	return nil
}

// Complete marks the trial as having survived the full experiment. Valid
// from Running or Paused.
func (t *Trial) Complete() error {
	if t.state != Running && t.state != Paused {
		return fmt.Errorf("trial %d: Complete from %v", t.id, t.state)
	}
	t.state = Completed
	t.gpus, t.nodes = 0, 0
	return nil
}

// Preempt handles the loss of the trial's workers to an instance
// reclamation: the gang is gone and the trial is Paused awaiting a
// restore. Valid only while Running.
func (t *Trial) Preempt() error {
	if t.state != Running {
		return fmt.Errorf("trial %d: Preempt while %v", t.id, t.state)
	}
	t.state = Paused
	t.gpus, t.nodes = 0, 0
	return nil
}

// Restore rewinds the trial to a checkpoint: progress made after the
// checkpoint (lost to a preemption) is discarded, including any metrics
// observed past the checkpointed iteration. Valid only while Paused, and
// only to a checkpoint at or before the current progress.
func (t *Trial) Restore(ck Checkpoint) error {
	if t.state != Paused {
		return fmt.Errorf("trial %d: Restore while %v", t.id, t.state)
	}
	if ck.Trial != t.id {
		return fmt.Errorf("trial %d: Restore from checkpoint of trial %d", t.id, ck.Trial)
	}
	if ck.CumIters > t.cumIters {
		return fmt.Errorf("trial %d: Restore forward to %d from %d", t.id, ck.CumIters, t.cumIters)
	}
	t.cumIters = ck.CumIters
	kept := t.metrics[:0]
	for _, m := range t.metrics {
		if m.CumIters <= ck.CumIters {
			kept = append(kept, m)
		}
	}
	t.metrics = kept
	return nil
}

// LatestAccuracy returns the most recent observed accuracy, or 0 and false
// if no metric has been recorded.
func (t *Trial) LatestAccuracy() (float64, bool) {
	if len(t.metrics) == 0 {
		return 0, false
	}
	return t.metrics[len(t.metrics)-1].Accuracy, true
}

// Metrics returns a copy of the metric history.
func (t *Trial) Metrics() []Metric {
	return append([]Metric(nil), t.metrics...)
}

// Checkpoint is a serialized trial state persisted in the shared object
// store between stages.
type Checkpoint struct {
	Trial    ID
	CumIters int
	// Accuracy is the last observed metric, carried so restored workers
	// can resume reporting without re-evaluating.
	Accuracy float64
}

// Checkpoint captures the trial's restorable state. Valid while Running or
// Paused (the symmetric DDP property means any single worker's state
// suffices; here that is the trial itself).
func (t *Trial) Checkpoint() (Checkpoint, error) {
	if t.state != Running && t.state != Paused {
		return Checkpoint{}, fmt.Errorf("trial %d: Checkpoint while %v", t.id, t.state)
	}
	acc, _ := t.LatestAccuracy()
	return Checkpoint{Trial: t.id, CumIters: t.cumIters, Accuracy: acc}, nil
}

// Store is the driver-side checkpoint store, standing in for Ray's
// shared-memory object store: checkpoints are persisted by reference and
// fetched by newly placed workers during migration.
type Store struct {
	ckpts map[ID]Checkpoint
}

// NewStore returns an empty checkpoint store.
func NewStore() *Store { return &Store{ckpts: make(map[ID]Checkpoint)} }

// Put persists a checkpoint, replacing any previous one for the trial.
func (s *Store) Put(c Checkpoint) { s.ckpts[c.Trial] = c }

// Get fetches the latest checkpoint for a trial.
func (s *Store) Get(id ID) (Checkpoint, bool) {
	c, ok := s.ckpts[id]
	return c, ok
}

// Delete drops a trial's checkpoint (after termination).
func (s *Store) Delete(id ID) { delete(s.ckpts, id) }

// Len returns the number of stored checkpoints.
func (s *Store) Len() int { return len(s.ckpts) }
