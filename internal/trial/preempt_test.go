package trial

import "testing"

func TestPreemptLifecycle(t *testing.T) {
	tr := New(1, cfg())
	// Preempt is only legal while running.
	if err := tr.Preempt(); err == nil {
		t.Error("Preempt while pending succeeded")
	}
	if err := tr.Start(4, 2); err != nil {
		t.Fatal(err)
	}
	_ = tr.RecordIteration(0.5, 1)
	if err := tr.Preempt(); err != nil {
		t.Fatal(err)
	}
	if tr.State() != Paused || tr.GPUs() != 0 || tr.Nodes() != 0 {
		t.Fatalf("after preempt: state=%v gang=%d/%d", tr.State(), tr.GPUs(), tr.Nodes())
	}
	if err := tr.Preempt(); err == nil {
		t.Error("double Preempt succeeded")
	}
}

func TestRestoreTruncatesMetrics(t *testing.T) {
	tr := New(2, cfg())
	_ = tr.Start(1, 1)
	_ = tr.RecordIteration(0.3, 1)
	_ = tr.RecordIteration(0.4, 2)
	ck, err := tr.Checkpoint() // at iteration 2
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.RecordIteration(0.5, 3)
	_ = tr.RecordIteration(0.6, 4)
	if err := tr.Preempt(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if tr.CumIters() != 2 {
		t.Fatalf("CumIters = %d, want 2", tr.CumIters())
	}
	ms := tr.Metrics()
	if len(ms) != 2 || ms[1].Accuracy != 0.4 {
		t.Fatalf("metrics = %v", ms)
	}
	if acc, ok := tr.LatestAccuracy(); !ok || acc != 0.4 {
		t.Fatalf("latest = %v/%v", acc, ok)
	}
}

func TestRestoreAtZero(t *testing.T) {
	// Restore to a zero-iteration checkpoint (stage-0 preemption) wipes
	// everything.
	tr := New(3, cfg())
	_ = tr.Start(1, 1)
	ck, _ := tr.Checkpoint()
	_ = tr.RecordIteration(0.2, 1)
	_ = tr.Preempt()
	if err := tr.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if tr.CumIters() != 0 || len(tr.Metrics()) != 0 {
		t.Fatal("restore to zero left state behind")
	}
	if _, ok := tr.LatestAccuracy(); ok {
		t.Fatal("latest accuracy survives a zero restore")
	}
}

func TestCheckpointWhilePaused(t *testing.T) {
	tr := New(4, cfg())
	_ = tr.Start(1, 1)
	_ = tr.RecordIteration(0.7, 1)
	_ = tr.Pause()
	ck, err := tr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.CumIters != 1 || ck.Accuracy != 0.7 {
		t.Fatalf("checkpoint = %+v", ck)
	}
}

func TestResumeAfterRestoreRetrains(t *testing.T) {
	tr := New(5, cfg())
	_ = tr.Start(2, 1)
	ck, _ := tr.Checkpoint()
	for i := 0; i < 3; i++ {
		_ = tr.RecordIteration(0.1*float64(i+1), 0)
	}
	_ = tr.Preempt()
	_ = tr.Restore(ck)
	if err := tr.Start(4, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tr.RecordIteration(0.2*float64(i+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	if tr.CumIters() != 3 {
		t.Fatalf("retrained iters = %d, want 3", tr.CumIters())
	}
	if err := tr.Complete(); err != nil {
		t.Fatal(err)
	}
}
