package trial

import (
	"testing"

	"repro/internal/searchspace"
)

func cfg() searchspace.Config { return searchspace.Config{"lr": 0.1} }

func TestLifecycleHappyPath(t *testing.T) {
	tr := New(3, cfg())
	if tr.ID() != 3 || tr.State() != Pending {
		t.Fatalf("new trial: id=%d state=%v", tr.ID(), tr.State())
	}
	if err := tr.Start(4, 1); err != nil {
		t.Fatal(err)
	}
	if tr.GPUs() != 4 || tr.Nodes() != 1 {
		t.Fatalf("gang = %d/%d", tr.GPUs(), tr.Nodes())
	}
	for i := 0; i < 3; i++ {
		if err := tr.RecordIteration(0.5+float64(i)*0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if tr.CumIters() != 3 {
		t.Fatalf("CumIters = %d", tr.CumIters())
	}
	acc, ok := tr.LatestAccuracy()
	if !ok || acc != 0.7 {
		t.Fatalf("latest = %v/%v", acc, ok)
	}
	if err := tr.Pause(); err != nil {
		t.Fatal(err)
	}
	if tr.GPUs() != 0 {
		t.Fatal("paused trial retains workers")
	}
	if err := tr.Start(8, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Complete(); err != nil {
		t.Fatal(err)
	}
	if tr.State() != Completed {
		t.Fatalf("state = %v", tr.State())
	}
}

func TestIllegalTransitions(t *testing.T) {
	tr := New(0, cfg())
	if err := tr.RecordIteration(0.1, 0); err == nil {
		t.Error("RecordIteration while pending succeeded")
	}
	if err := tr.Pause(); err == nil {
		t.Error("Pause while pending succeeded")
	}
	if err := tr.Complete(); err == nil {
		t.Error("Complete while pending succeeded")
	}
	if err := tr.Start(0, 1); err == nil {
		t.Error("zero-GPU gang accepted")
	}
	if err := tr.Start(2, 3); err == nil {
		t.Error("nodes > gpus accepted")
	}
	if err := tr.Start(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(2, 1); err == nil {
		t.Error("double Start succeeded")
	}
	if err := tr.Complete(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Terminate(); err == nil {
		t.Error("Terminate after Complete succeeded")
	}
}

func TestTerminateFromAnyLiveState(t *testing.T) {
	for _, setup := range []func(*Trial){
		func(*Trial) {},
		func(tr *Trial) { _ = tr.Start(1, 1) },
		func(tr *Trial) { _ = tr.Start(1, 1); _ = tr.Pause() },
	} {
		tr := New(0, cfg())
		setup(tr)
		if err := tr.Terminate(); err != nil {
			t.Fatalf("Terminate from %v: %v", tr.State(), err)
		}
		if tr.State() != Terminated {
			t.Fatalf("state = %v", tr.State())
		}
	}
}

func TestMetricsCopied(t *testing.T) {
	tr := New(0, cfg())
	_ = tr.Start(1, 1)
	_ = tr.RecordIteration(0.5, 1)
	m := tr.Metrics()
	m[0].Accuracy = 99
	if tr.Metrics()[0].Accuracy != 0.5 {
		t.Fatal("Metrics exposed internal slice")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	tr := New(7, cfg())
	_ = tr.Start(2, 1)
	_ = tr.RecordIteration(0.6, 5)
	ck, err := tr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Trial != 7 || ck.CumIters != 1 || ck.Accuracy != 0.6 {
		t.Fatalf("checkpoint %+v", ck)
	}
	// Checkpointing a pending trial fails.
	if _, err := New(8, cfg()).Checkpoint(); err == nil {
		t.Error("Checkpoint while pending succeeded")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	s.Put(Checkpoint{Trial: 1, CumIters: 5})
	s.Put(Checkpoint{Trial: 1, CumIters: 9}) // replaces
	s.Put(Checkpoint{Trial: 2, CumIters: 3})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	ck, ok := s.Get(1)
	if !ok || ck.CumIters != 9 {
		t.Fatalf("Get(1) = %+v/%v", ck, ok)
	}
	s.Delete(1)
	if _, ok := s.Get(1); ok {
		t.Fatal("deleted checkpoint still present")
	}
	if _, ok := s.Get(42); ok {
		t.Fatal("missing checkpoint found")
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Pending: "pending", Running: "running", Paused: "paused",
		Terminated: "terminated", Completed: "completed",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
