package replan

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// flatProfile predicts a constant iteration latency at every allocation.
type flatProfile struct{ mean float64 }

func (p flatProfile) IterDist(gpus int) stats.Dist {
	return stats.Deterministic{Value: p.mean / float64(gpus)}
}

func testSpec(t *testing.T) *spec.ExperimentSpec {
	t.Helper()
	s, err := spec.New(
		spec.Stage{Trials: 4, Iters: 4},
		spec.Stage{Trials: 2, Iters: 4},
		spec.Stage{Trials: 1, Iters: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testConfig(t *testing.T, workers int) Config {
	t.Helper()
	return Config{
		Spec:     testSpec(t),
		Profile:  flatProfile{mean: 40},
		Cloud:    sim.DefaultCloudProfile(),
		Deadline: 2000,
		MaxGPUs:  16,
		Samples:  4,
		Workers:  workers,
		RNG:      stats.NewRNG(7),
	}
}

func newTestController(t *testing.T, workers int) *Controller {
	t.Helper()
	c, err := NewController(testConfig(t, workers))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil spec", func(c *Config) { c.Spec = nil }},
		{"nil profile", func(c *Config) { c.Profile = nil }},
		{"nil rng", func(c *Config) { c.RNG = nil }},
		{"zero deadline", func(c *Config) { c.Deadline = 0 }},
		{"nan deadline", func(c *Config) { c.Deadline = math.NaN() }},
		{"inf deadline", func(c *Config) { c.Deadline = math.Inf(1) }},
		{"zero max gpus", func(c *Config) { c.MaxGPUs = 0 }},
		{"alpha over 1", func(c *Config) { c.Alpha = 1.5 }},
		{"bad cloud", func(c *Config) { c.Cloud.Instance.GPUs = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(t, 1)
			tc.mutate(&cfg)
			if _, err := NewController(cfg); err == nil {
				t.Fatalf("NewController accepted %s", tc.name)
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	base := testConfig(t, 1)
	base.Samples = 0
	c, err := NewController(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	if cfg.Threshold != 0.25 || cfg.Alpha != 0.3 || cfg.MinObservations != 3 ||
		cfg.CooldownSeconds != 60 || cfg.Delta != 0.01 || cfg.Samples != sim.DefaultSamples {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// TestOnProfileNeverTriggers is the detector half of the zero-drift no-op
// guarantee: observations exactly matching the prediction keep the EWMA at
// exactly 1, so the detector never fires no matter how many arrive.
func TestOnProfileNeverTriggers(t *testing.T) {
	c := newTestController(t, 1)
	for i := 0; i < 100; i++ {
		pred := c.Config().Profile.IterDist(4).Mean()
		if c.ObserveIteration(4, pred, vclock.Time(i)) {
			t.Fatalf("detector fired on observation %d with zero drift", i)
		}
	}
}

func TestDriftTriggersAfterMinObservations(t *testing.T) {
	c := newTestController(t, 1)
	pred := c.Config().Profile.IterDist(4).Mean()
	for i := 0; i < 2; i++ {
		if c.ObserveIteration(4, 2*pred, vclock.Time(i)) {
			t.Fatalf("detector fired at observation %d, MinObservations is 3", i+1)
		}
	}
	if !c.ObserveIteration(4, 2*pred, 2) {
		t.Fatal("detector did not fire at 2x drift after MinObservations")
	}
}

func TestSpeedupAlsoTriggers(t *testing.T) {
	c := newTestController(t, 1)
	pred := c.Config().Profile.IterDist(2).Mean()
	fired := false
	for i := 0; i < 10 && !fired; i++ {
		fired = c.ObserveIteration(2, 0.4*pred, vclock.Time(i))
	}
	if !fired {
		t.Fatal("detector never fired at 0.4x (speedup) drift")
	}
}

func TestCooldownGatesTriggers(t *testing.T) {
	c := newTestController(t, 1)
	pred := c.Config().Profile.IterDist(4).Mean()
	for i := 0; i < 5; i++ {
		c.ObserveIteration(4, 2*pred, vclock.Time(i))
	}
	if _, err := c.Replan(State{Stage: 0, Now: 10, RemainingIters: 2, Plan: sim.NewPlan(4, 4, 4)}, ReasonDrift); err != nil {
		t.Fatal(err)
	}
	if c.ObserveIteration(4, 2*pred, 30) {
		t.Fatal("detector fired 20s after a replan; cooldown is 60s")
	}
	if c.PreemptionTrigger(30) {
		t.Fatal("preemption trigger allowed during cooldown")
	}
	if !c.ObserveIteration(4, 2*pred, 80) {
		t.Fatal("detector stayed quiet after the cooldown elapsed")
	}
	if !c.PreemptionTrigger(80) {
		t.Fatal("preemption trigger blocked after the cooldown elapsed")
	}
}

func TestReplanRejectsLastStage(t *testing.T) {
	c := newTestController(t, 1)
	if _, err := c.Replan(State{Stage: 2, Now: 0, Plan: sim.NewPlan(4, 4, 4)}, ReasonDrift); err == nil {
		t.Fatal("Replan accepted the last stage")
	}
	if _, err := c.Replan(State{Stage: 0, Now: 0, Plan: sim.NewPlan(4, 4)}, ReasonDrift); err == nil {
		t.Fatal("Replan accepted a plan not covering the spec")
	}
}

// TestReplanPreservesPrefix checks splice semantics: a decision never
// rewrites the executing stage or any stage before it.
func TestReplanPreservesPrefix(t *testing.T) {
	c := newTestController(t, 1)
	pred := c.Config().Profile.IterDist(1).Mean()
	for i := 0; i < 5; i++ {
		c.ObserveIteration(1, 2*pred, vclock.Time(i))
	}
	d, err := c.Replan(State{Stage: 1, Now: 100, RemainingIters: 2, Plan: sim.NewPlan(8, 2, 2)}, ReasonDrift)
	if err != nil {
		t.Fatal(err)
	}
	if d.NewPlan.Alloc[0] != 8 || d.NewPlan.Alloc[1] != 2 {
		t.Fatalf("replan rewrote executed stages: %v", d.NewPlan)
	}
	if d.NewPlan.Max() > c.Config().MaxGPUs {
		t.Fatalf("replanned peak %d exceeds cap %d", d.NewPlan.Max(), c.Config().MaxGPUs)
	}
	if !d.Adopted && !d.NewPlan.Equal(d.OldPlan) {
		t.Fatalf("not adopted but plan changed: %v -> %v", d.OldPlan, d.NewPlan)
	}
}

// TestReplanLostDeadlineInfeasible: when the remaining deadline is already
// negative before the tail starts, the decision is infeasible and keeps
// the stale plan without running the planner.
func TestReplanLostDeadlineInfeasible(t *testing.T) {
	c := newTestController(t, 1)
	d, err := c.Replan(State{Stage: 0, Now: 1990, RemainingIters: 4, Plan: sim.NewPlan(4, 4, 4)}, ReasonPreemption)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Infeasible || d.Adopted {
		t.Fatalf("lost deadline not classified infeasible: %+v", d)
	}
	if !d.NewPlan.Equal(d.OldPlan) {
		t.Fatalf("infeasible decision changed the plan: %v -> %v", d.OldPlan, d.NewPlan)
	}
	if d.RemainingDeadline > 0 {
		t.Fatalf("remaining deadline %v, want <= 0", d.RemainingDeadline)
	}
}

// driveController feeds a fixed observation sequence and takes two replan
// decisions; used to compare controllers across worker counts and replays.
func driveController(t *testing.T, c *Controller) []Decision {
	t.Helper()
	pred1 := c.Config().Profile.IterDist(1).Mean()
	pred4 := c.Config().Profile.IterDist(4).Mean()
	for i := 0; i < 4; i++ {
		c.ObserveIteration(4, 1.9*pred4, vclock.Time(10+i))
	}
	c.ObserveProvision(25)
	if _, err := c.Replan(State{Stage: 0, Now: 30, RemainingIters: 3, Plan: sim.NewPlan(4, 4, 4)}, ReasonDrift); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.ObserveIteration(1, 2.2*pred1, vclock.Time(200+i))
	}
	if _, err := c.Replan(State{Stage: 1, Now: 300, RemainingIters: 2, Plan: c.Decisions()[0].NewPlan}, ReasonPreemption); err != nil {
		t.Fatal(err)
	}
	return c.Decisions()
}

// TestDecisionsWorkerInvariant: the same observation sequence produces
// bit-identical decisions at any replanning worker count.
func TestDecisionsWorkerInvariant(t *testing.T) {
	d1 := driveController(t, newTestController(t, 1))
	d4 := driveController(t, newTestController(t, 4))
	if !reflect.DeepEqual(d1, d4) {
		t.Fatalf("decisions differ across worker counts:\n 1: %+v\n 4: %+v", d1, d4)
	}
}

// TestDecisionsReplayable: re-driving a fresh controller reproduces the
// exact decision sequence (same RNG seed, same observations).
func TestDecisionsReplayable(t *testing.T) {
	a := driveController(t, newTestController(t, 1))
	b := driveController(t, newTestController(t, 1))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n first: %+v\n second: %+v", a, b)
	}
	if len(a) != 2 || a[0].Seq != 0 || a[1].Seq != 1 {
		t.Fatalf("unexpected decision sequence: %+v", a)
	}
}
