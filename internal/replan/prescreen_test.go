package replan

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// screenTestController builds a controller with the analytic pre-screen
// either enabled or disabled, over the shared test config.
func screenTestController(t *testing.T, disable bool) *Controller {
	t.Helper()
	cfg := testConfig(t, 1)
	cfg.DisablePreScreen = disable
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// observeOnProfile feeds n observations that exactly match the profile's
// prediction, so the re-fit reproduces the planning-time regime.
func observeOnProfile(c *Controller, n int) {
	pred := c.Config().Profile.IterDist(4).Mean()
	for i := 0; i < n; i++ {
		c.ObserveIteration(4, pred, vclock.Time(i))
	}
}

// optimalState returns an executor state whose stale tail is the full
// replan's own choice for it — the fixed point a second replan under an
// unchanged regime cannot improve on.
func optimalState(t *testing.T) State {
	t.Helper()
	probe := screenTestController(t, true)
	observeOnProfile(probe, 4)
	st := State{Stage: 0, Now: 30, RemainingIters: 3, Plan: sim.NewPlan(4, 4, 4)}
	d, err := probe.Replan(st, ReasonDrift)
	if err != nil {
		t.Fatal(err)
	}
	return State{Stage: 0, Now: 30, RemainingIters: 3, Plan: d.NewPlan}
}

// TestPreScreenSkipsImmaterialTrigger: a drift trigger with on-profile
// observations and an already-optimal stale tail is judged immaterial —
// the decision is committed as Screened without Monte-Carlo, and it keeps
// exactly the plan the full replan would have kept.
func TestPreScreenSkipsImmaterialTrigger(t *testing.T) {
	st := optimalState(t)

	fast := screenTestController(t, false)
	observeOnProfile(fast, 4)
	fd, err := fast.Replan(st, ReasonDrift)
	if err != nil {
		t.Fatal(err)
	}
	if !fd.Screened {
		t.Fatalf("immaterial trigger was not screened: %+v", fd)
	}
	if fd.Adopted || fd.Infeasible || !fd.NewPlan.Equal(st.Plan) {
		t.Fatalf("screened decision changed the plan: %+v", fd)
	}

	full := screenTestController(t, true)
	observeOnProfile(full, 4)
	rd, err := full.Replan(st, ReasonDrift)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Screened {
		t.Fatal("DisablePreScreen did not disable the screen")
	}
	if rd.Adopted || !rd.NewPlan.Equal(fd.NewPlan) {
		t.Fatalf("screen diverged from the full replan: screened %+v, full %+v", fd, rd)
	}
}

// TestPreScreenPassesMaterialSlowdown: a genuine 2x slowdown moves the
// re-fitted tail far past tolerance, so the screen lets the Monte-Carlo
// replan run and the decision is bit-identical to the screen-disabled
// controller's.
func TestPreScreenPassesMaterialSlowdown(t *testing.T) {
	run := func(disable bool) Decision {
		c := screenTestController(t, disable)
		pred := c.Config().Profile.IterDist(4).Mean()
		for i := 0; i < 5; i++ {
			c.ObserveIteration(4, 2*pred, vclock.Time(i))
		}
		d, err := c.Replan(State{Stage: 0, Now: 30, RemainingIters: 3, Plan: sim.NewPlan(4, 4, 4)}, ReasonDrift)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	fd, rd := run(false), run(true)
	if fd.Screened {
		t.Fatalf("2x slowdown was screened out: %+v", fd)
	}
	if !reflect.DeepEqual(fd, rd) {
		t.Fatalf("material decision diverged from screen-disabled controller:\n screened-path %+v\n full %+v", fd, rd)
	}
}

// TestPreScreenPassesSpeedupSlack: when iterations run faster than
// profiled, the stale tail barely moves but the slack may admit a
// cheaper tail — the mini-plan condition must classify that as material
// and hand the call to the Monte-Carlo replan, whose decision stays
// bit-identical to the screen-disabled controller's. (The harness pin
// (4, 2) covers the end-to-end case where such a replan adopts.)
func TestPreScreenPassesSpeedupSlack(t *testing.T) {
	run := func(disable bool) Decision {
		c := screenTestController(t, disable)
		pred := c.Config().Profile.IterDist(4).Mean()
		for i := 0; i < 5; i++ {
			c.ObserveIteration(4, 0.4*pred, vclock.Time(i))
		}
		d, err := c.Replan(State{Stage: 0, Now: 30, RemainingIters: 3, Plan: sim.NewPlan(4, 4, 4)}, ReasonDrift)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	fd, rd := run(false), run(true)
	if fd.Screened {
		t.Fatalf("speed-up slack was screened out: %+v", fd)
	}
	if !reflect.DeepEqual(fd, rd) {
		t.Fatalf("slack decision diverged from screen-disabled controller:\n screened-path %+v\n full %+v", fd, rd)
	}
}

// TestPreemptionBypassesScreen: preemptions change capacity itself, so
// even a regime the screen would call immaterial goes to the full replan.
func TestPreemptionBypassesScreen(t *testing.T) {
	st := optimalState(t)
	c := screenTestController(t, false)
	observeOnProfile(c, 4)
	d, err := c.Replan(st, ReasonPreemption)
	if err != nil {
		t.Fatal(err)
	}
	if d.Screened {
		t.Fatalf("preemption decision was screened: %+v", d)
	}
}

// TestPreScreenReadOnly: the public PreScreen entry point commits no
// decision, arms no cooldown, and agrees with the screening the next
// drift Replan applies.
func TestPreScreenReadOnly(t *testing.T) {
	for _, material := range []bool{false, true} {
		c := screenTestController(t, false)
		var st State
		if material {
			pred := c.Config().Profile.IterDist(4).Mean()
			for i := 0; i < 5; i++ {
				c.ObserveIteration(4, 2*pred, vclock.Time(i))
			}
			st = State{Stage: 0, Now: 30, RemainingIters: 3, Plan: sim.NewPlan(4, 4, 4)}
		} else {
			observeOnProfile(c, 4)
			st = optimalState(t)
		}
		ps, err := c.PreScreen(st)
		if err != nil {
			t.Fatal(err)
		}
		if !ps.Supported {
			t.Fatalf("material=%v: screen unsupported on finite-moment profile", material)
		}
		if ps.Material != material {
			t.Fatalf("PreScreen material=%v, want %v", ps.Material, material)
		}
		if len(c.Decisions()) != 0 {
			t.Fatal("PreScreen committed a decision")
		}
		again, err := c.PreScreen(st)
		if err != nil {
			t.Fatal(err)
		}
		if again != ps {
			t.Fatalf("PreScreen not deterministic: %+v then %+v", ps, again)
		}
		d, err := c.Replan(st, ReasonDrift)
		if err != nil {
			t.Fatal(err)
		}
		if d.Screened == ps.Material {
			t.Fatalf("PreScreen (material=%v) disagrees with Replan (screened=%v)", ps.Material, d.Screened)
		}
	}
}

// TestPreScreenRejectsBadState mirrors Replan's state validation.
func TestPreScreenRejectsBadState(t *testing.T) {
	c := screenTestController(t, false)
	if _, err := c.PreScreen(State{Stage: 2, Plan: sim.NewPlan(4, 4, 4)}); err == nil {
		t.Fatal("PreScreen accepted the last stage")
	}
	if _, err := c.PreScreen(State{Stage: 0, Plan: sim.NewPlan(4, 4)}); err == nil {
		t.Fatal("PreScreen accepted a plan not covering the spec")
	}
}

// TestPreScreenLostDeadlineMaterial: a remaining deadline at or below
// zero is always material — the full replan must run to record the
// infeasibility.
func TestPreScreenLostDeadlineMaterial(t *testing.T) {
	c := screenTestController(t, false)
	ps, err := c.PreScreen(State{Stage: 0, Now: 1990, RemainingIters: 4, Plan: sim.NewPlan(4, 4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Supported || !ps.Material || ps.RemainingDeadline > 0 {
		t.Fatalf("lost deadline not material: %+v", ps)
	}
	d, err := c.Replan(State{Stage: 0, Now: 1990, RemainingIters: 4, Plan: sim.NewPlan(4, 4, 4)}, ReasonDrift)
	if err != nil {
		t.Fatal(err)
	}
	if d.Screened || !d.Infeasible {
		t.Fatalf("lost-deadline decision: %+v", d)
	}
}
