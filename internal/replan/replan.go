// Package replan closes the loop between the executor and the planner:
// an online replanning controller that watches execution drift away from
// the profiled prediction and recompiles the remainder of the allocation
// plan under the remainder of the deadline.
//
// The executor feeds observed per-iteration training latencies (and
// provisioning INIT/queue makespans) into a streaming drift detector — an
// exponentially weighted moving average of the observed-vs-predicted
// latency ratio, kept per allocation, with a configurable trigger
// threshold and a cooldown measured on the virtual clock. When the EWMA
// deviates past the threshold, or when the provider preempts capacity,
// the controller:
//
//  1. re-fits the profiled scaling function from the accumulated
//     observations (profiler.Refit),
//  2. re-invokes planner.PlanElastic for the remaining stages under the
//     remaining deadline via the (cheap, segment-estimator) simulator, and
//  3. hands back a spliced plan — executed and executing stages keep
//     their allocations, only future stages are rewritten — which the
//     executor's placement controller transitions to at the next stage
//     boundary with minimal migration.
//
// Purity and determinism contract: every Decision is a pure function of
// (the observation sequence so far, the decision's ordinal, the virtual
// clock's now). The controller draws no wall-clock time and no global
// randomness; the replanning simulator for decision i seeds from
// Config.RNG.Stream(i), a pure derivation, so decisions are bit-identical
// across worker counts and across replays.
package replan

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/planner"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// Reason classifies what initiated a replan decision.
type Reason string

const (
	// ReasonDrift is a drift-detector trigger: the EWMA of the
	// observed-vs-predicted iteration-latency ratio left the threshold
	// band around 1.
	ReasonDrift Reason = "drift"
	// ReasonPreemption is a provider preemption event.
	ReasonPreemption Reason = "preemption"
)

// Config parameterizes a Controller. Spec, Profile, Cloud, Deadline,
// MaxGPUs, Samples and Estimator mirror the planning-time configuration
// the original plan was compiled under.
type Config struct {
	// Spec is the full experiment structure being executed.
	Spec *spec.ExperimentSpec
	// Profile is the planning-time training profile (pre-drift
	// predictions; the denominator of every drift ratio).
	Profile sim.TrainProfile
	// Cloud is the provider profile plans are priced against.
	Cloud sim.CloudProfile
	// Deadline is the job's absolute time constraint in virtual seconds.
	Deadline float64
	// MaxGPUs caps the replanned peak cluster size (same cap as the
	// original planning run).
	MaxGPUs int
	// Samples is the replanning simulator's Monte-Carlo sample count.
	// Zero selects sim.DefaultSamples.
	Samples int
	// Workers bounds replanning concurrency (simulator fan-out and
	// candidate evaluation). Zero selects GOMAXPROCS; output is
	// bit-identical at any setting.
	Workers int
	// Estimator selects the replanning simulator's estimator mode (the
	// zero value is the segment estimator, whose warm-path cost is what
	// makes mid-run replanning affordable).
	Estimator sim.EstimatorMode
	// RNG is the controller's root random stream. Decision i seeds its
	// simulator from RNG.Stream(i) — a pure derivation, so the parent
	// stream never advances and replays are bit-identical.
	RNG *stats.RNG
	// Threshold is the relative EWMA deviation |ewma−1| that triggers a
	// replan. Zero selects 0.25.
	Threshold float64
	// Alpha is the EWMA smoothing factor in (0, 1]. Zero selects 0.3.
	Alpha float64
	// MinObservations is the number of iteration observations required
	// before the detector may trigger. Zero selects 3.
	MinObservations int
	// CooldownSeconds is the minimum virtual time between replan
	// decisions. Zero selects 60.
	CooldownSeconds float64
	// Delta is the planner's minimum cost improvement in dollars, also
	// used as the stale-vs-new adoption margin. Zero selects the
	// planner's default (0.01).
	Delta float64
	// PreScreenTolerance is the relative movement in the stale tail's
	// analytic JCT or cost (re-fitted vs planning-time profile) below
	// which a drift trigger is judged immaterial and the Monte-Carlo
	// replan is skipped. Zero selects 0.05.
	PreScreenTolerance float64
	// DisablePreScreen turns the analytic drift pre-screen off: every
	// drift trigger runs the full Monte-Carlo replan, as before the
	// two-phase fast path. Exposed for ablation and benchmarks.
	DisablePreScreen bool
}

func (c Config) withDefaults() Config {
	if c.Samples <= 0 {
		c.Samples = sim.DefaultSamples
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.25
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.3
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 3
	}
	if c.CooldownSeconds <= 0 {
		c.CooldownSeconds = 60
	}
	if c.Delta <= 0 {
		c.Delta = 0.01
	}
	if c.PreScreenTolerance <= 0 {
		c.PreScreenTolerance = 0.05
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Spec == nil:
		return fmt.Errorf("replan: nil spec")
	case c.Profile == nil:
		return fmt.Errorf("replan: nil profile")
	case c.RNG == nil:
		return fmt.Errorf("replan: nil rng")
	case c.Deadline <= 0 || math.IsInf(c.Deadline, 0) || math.IsNaN(c.Deadline):
		return fmt.Errorf("replan: deadline %v", c.Deadline)
	case c.MaxGPUs < 1:
		return fmt.Errorf("replan: max GPUs %d", c.MaxGPUs)
	case c.Alpha > 1:
		return fmt.Errorf("replan: EWMA alpha %v > 1", c.Alpha)
	}
	return c.Cloud.Validate()
}

// allocStat is the detector state for one per-trial allocation.
type allocStat struct {
	ewma  float64 // EWMA of observed/predicted latency ratio
	count int     // observations folded in
}

// State is the executor-side snapshot a replan decision is computed from.
type State struct {
	// Stage is the stage executing when the decision is made; only
	// stages after it are replanned.
	Stage int
	// Now is the virtual time of the decision.
	Now vclock.Time
	// RemainingIters is the predicted number of serialized iterations
	// left in the current stage (the straggler's remaining budget,
	// including queued trials waiting for slots).
	RemainingIters int
	// Plan is the live full plan (executed prefix + stale tail).
	Plan sim.Plan
}

// Decision is one replan outcome — the replayable record folded into the
// trace and the harness digest.
type Decision struct {
	// Seq is the decision's ordinal within the run (0-based).
	Seq int
	// At is the virtual decision time.
	At vclock.Time
	// Reason is what initiated the decision.
	Reason Reason
	// Stage is the stage that was executing; stages > Stage were
	// replanned.
	Stage int
	// Ratio is the observation-weighted global drift ratio at decision
	// time (1 when no iteration observation had arrived).
	Ratio float64
	// RemainingDeadline is the budget handed to the planner: the
	// absolute deadline minus now minus the predicted remainder of the
	// current stage. May be ≤ 0 when the deadline is already lost.
	RemainingDeadline float64
	// OldPlan is the full plan before the decision; NewPlan after it
	// (equal to OldPlan unless Adopted).
	OldPlan, NewPlan sim.Plan
	// StaleEstimate prices OldPlan's remaining tail under the re-fitted
	// profile (zero Estimate when the remaining deadline was already
	// negative and no simulation ran).
	StaleEstimate sim.Estimate
	// NewEstimate prices the adopted tail (valid only when Adopted).
	NewEstimate sim.Estimate
	// Adopted reports whether the spliced plan replaced the stale tail.
	Adopted bool
	// Infeasible reports that no tail within MaxGPUs — the stale one
	// included — meets the remaining deadline; the stale plan is kept
	// and the job is infeasible-after-drift.
	Infeasible bool
	// Screened reports that the analytic drift pre-screen judged the
	// trigger immaterial and kept the stale plan without running the
	// Monte-Carlo replan; StaleEstimate is then the analytic estimate of
	// the stale tail under the re-fitted profile.
	Screened bool
}

// Note renders the decision compactly for trace events.
func (d Decision) Note() string {
	switch {
	case d.Screened:
		return fmt.Sprintf("%s: pre-screen immaterial, kept %v (analytic tail JCT %.0fs ≤ %.0fs)",
			d.Reason, d.OldPlan, d.StaleEstimate.JCT, d.RemainingDeadline)
	case d.Infeasible:
		return fmt.Sprintf("%s: infeasible under remaining deadline %.0fs, kept %v", d.Reason, d.RemainingDeadline, d.OldPlan)
	case d.Adopted:
		return fmt.Sprintf("%s: adopted %v (stale %v), tail JCT %.0fs ≤ %.0fs", d.Reason, d.NewPlan, d.OldPlan, d.NewEstimate.JCT, d.RemainingDeadline)
	default:
		return fmt.Sprintf("%s: kept %v", d.Reason, d.OldPlan)
	}
}

// Controller is the online replanning state machine. It is driven
// single-threaded from the executor's virtual-clock callbacks and must
// not be shared across clocks.
type Controller struct {
	cfg Config

	// stats holds per-allocation detector state; keys mirrors its key
	// set in ascending order so no decision ever iterates a map.
	stats map[int]*allocStat
	keys  []int
	// totalObs counts iteration observations across allocations.
	totalObs int

	// overheadEWMA tracks observed/predicted provisioning makespans
	// (queue + init). It refines the re-fitted cloud profile but never
	// triggers by itself: provisioning realizes once per scale-up with
	// heavy-tailed draws, too few samples for a stable trigger.
	overheadEWMA  float64
	overheadCount int

	armed      bool // a replan happened; cooldown applies
	lastReplan vclock.Time
	decisions  []Decision

	// observer, when non-nil, receives every committed decision — the
	// write-ahead journaling hook.
	observer func(Decision)
}

// NewController validates the configuration and returns a fresh
// controller with no observations.
func NewController(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg, stats: make(map[int]*allocStat)}, nil
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Decisions returns the replan decisions taken so far, in order.
func (c *Controller) Decisions() []Decision {
	return append([]Decision(nil), c.decisions...)
}

// SetObserver registers fn to receive every subsequently committed
// decision, synchronously and in decision order. The journal writer
// subscribes here so replan decisions hit the write-ahead log with their
// full payload (trace events only carry the rendered note).
func (c *Controller) SetObserver(fn func(Decision)) { c.observer = fn }

// AllocState is the drift detector's state for one per-trial allocation.
type AllocState struct {
	GPUs  int
	EWMA  float64
	Count int
}

// DetectorState is the controller's observable mutable state, captured
// by control-plane snapshots: per-allocation EWMAs in ascending GPU
// order, observation counters, the provisioning-overhead tracker, and
// the cooldown cursor. Two controllers that processed the same
// observation sequence report identical DetectorStates.
type DetectorState struct {
	Allocs        []AllocState
	TotalObs      int
	OverheadEWMA  float64
	OverheadCount int
	Armed         bool
	LastReplan    vclock.Time
	Decisions     int
}

// DetectorState snapshots the controller's mutable state.
func (c *Controller) DetectorState() DetectorState {
	ds := DetectorState{
		TotalObs:      c.totalObs,
		OverheadEWMA:  c.overheadEWMA,
		OverheadCount: c.overheadCount,
		Armed:         c.armed,
		LastReplan:    c.lastReplan,
		Decisions:     len(c.decisions),
	}
	for _, g := range c.keys {
		st := c.stats[g]
		ds.Allocs = append(ds.Allocs, AllocState{GPUs: g, EWMA: st.ewma, Count: st.count})
	}
	return ds
}

// cooldownOver reports whether a new decision is permitted at now.
func (c *Controller) cooldownOver(now vclock.Time) bool {
	return !c.armed || float64(now-c.lastReplan) >= c.cfg.CooldownSeconds
}

// ObserveIteration folds one observed iteration latency at the given
// per-trial allocation into the drift detector and reports whether the
// detector triggers: enough observations, EWMA deviation past the
// threshold, cooldown elapsed. The caller decides whether a trigger
// becomes a Replan (there is nothing to replan in the last stage).
func (c *Controller) ObserveIteration(gpus int, observed float64, now vclock.Time) bool {
	pred := c.cfg.Profile.IterDist(gpus).Mean()
	if pred <= 0 || observed < 0 {
		return false
	}
	ratio := observed / pred
	st := c.stats[gpus]
	if st == nil {
		st = &allocStat{ewma: ratio}
		c.stats[gpus] = st
		c.keys = append(c.keys, gpus)
		sort.Ints(c.keys)
	} else {
		st.ewma = c.cfg.Alpha*ratio + (1-c.cfg.Alpha)*st.ewma
	}
	st.count++
	c.totalObs++
	return c.totalObs >= c.cfg.MinObservations &&
		math.Abs(st.ewma-1) >= c.cfg.Threshold &&
		c.cooldownOver(now)
}

// ObserveProvision folds one observed provisioning makespan (request to
// capacity-ready, i.e. queue delay + INIT latency) into the overhead
// tracker. Provisioning observations refine re-fits but never trigger a
// replan by themselves: they realize once per scale-up from heavy-tailed
// draws — too few samples for a stable trigger.
func (c *Controller) ObserveProvision(observed float64) {
	pred := c.cfg.Cloud.Overheads.QueueDelay.Mean() + c.cfg.Cloud.Overheads.InitLatency.Mean()
	if pred <= 0 || observed < 0 {
		return
	}
	ratio := observed / pred
	if c.overheadCount == 0 {
		c.overheadEWMA = ratio
	} else {
		c.overheadEWMA = c.cfg.Alpha*ratio + (1-c.cfg.Alpha)*c.overheadEWMA
	}
	c.overheadCount++
}

// PreemptionTrigger reports whether a preemption at now should initiate a
// replan (cooldown elapsed).
func (c *Controller) PreemptionTrigger(now vclock.Time) bool {
	return c.cooldownOver(now)
}

// ratio returns the observation-weighted global drift ratio.
func (c *Controller) ratio() float64 {
	if c.totalObs == 0 {
		return 1
	}
	var sum, weight float64
	for _, g := range c.keys {
		st := c.stats[g]
		sum += float64(st.count) * st.ewma
		weight += float64(st.count)
	}
	return sum / weight
}

// observations snapshots the detector state as profiler observations, in
// ascending allocation order. The per-allocation mean handed to the
// re-fit is the EWMA ratio × the profiled mean, so the fit reflects the
// current latency regime rather than the whole history.
func (c *Controller) observations() []profiler.Observation {
	out := make([]profiler.Observation, 0, len(c.keys))
	for _, g := range c.keys {
		st := c.stats[g]
		out = append(out, profiler.Observation{
			GPUs:  g,
			Mean:  st.ewma * c.cfg.Profile.IterDist(g).Mean(),
			Count: st.count,
		})
	}
	return out
}

// refitProfiles re-fits the training profile and cloud overheads from the
// observations accumulated so far. With no iteration observations (a
// preemption before any iteration completed) the planning-time profile is
// reused unchanged.
func (c *Controller) refitProfiles() (sim.TrainProfile, sim.CloudProfile, error) {
	prof := c.cfg.Profile
	if c.totalObs > 0 {
		fitted, err := profiler.Refit(c.cfg.Profile, c.cfg.MaxGPUs, c.observations())
		if err != nil {
			return nil, sim.CloudProfile{}, err
		}
		prof = fitted
	}
	cp := c.cfg.Cloud
	if c.overheadCount > 0 && c.overheadEWMA > 0 && c.overheadEWMA != 1 {
		cp.Overheads.QueueDelay = stats.Scaled{D: cp.Overheads.QueueDelay, Factor: c.overheadEWMA}
		cp.Overheads.InitLatency = stats.Scaled{D: cp.Overheads.InitLatency, Factor: c.overheadEWMA}
	}
	return prof, cp, nil
}

// Replan computes and commits one replan decision for the given executor
// state: re-fit from observations, re-plan the remaining stages under the
// remaining deadline, splice. The stale tail is kept unless it misses the
// remaining deadline or the replanned tail is cheaper by at least Delta —
// so a spurious trigger under zero drift is a no-op on the executed plan.
// The caller must guarantee state.Stage is not the last stage.
func (c *Controller) Replan(state State, reason Reason) (Decision, error) {
	if state.Stage < 0 || state.Stage >= c.cfg.Spec.NumStages()-1 {
		return Decision{}, fmt.Errorf("replan: stage %d of %d has no tail to replan", state.Stage, c.cfg.Spec.NumStages())
	}
	if err := state.Plan.Validate(c.cfg.Spec.NumStages()); err != nil {
		return Decision{}, err
	}

	seq := len(c.decisions)
	d := Decision{
		Seq:     seq,
		At:      state.Now,
		Reason:  reason,
		Stage:   state.Stage,
		Ratio:   c.ratio(),
		OldPlan: state.Plan.Clone(),
		NewPlan: state.Plan.Clone(),
	}

	prof, cp, err := c.refitProfiles()
	if err != nil {
		return Decision{}, err
	}

	// Predict the remainder of the executing stage under the re-fitted
	// profile; the tail's budget is what's left of the deadline after it.
	st := c.cfg.Spec.Stage(state.Stage)
	per := sim.GPUsPerTrial(state.Plan.Alloc[state.Stage], st.Trials)
	curRemaining := float64(state.RemainingIters) * prof.IterDist(per).Mean()
	d.RemainingDeadline = c.cfg.Deadline - float64(state.Now) - curRemaining

	if d.RemainingDeadline <= 0 {
		// The deadline is already lost before the tail even starts; no
		// plan can fix that.
		d.Infeasible = true
		c.commit(d, state.Now)
		return d, nil
	}

	suffix := c.cfg.Spec.Suffix(state.Stage + 1)
	staleTail := state.Plan.Suffix(state.Stage + 1)

	// Analytic drift pre-screen (drift triggers only — a preemption
	// changed the capacity itself and must always replan): rescore the
	// stale tail in microseconds under the re-fitted and planning-time
	// profiles; when neither its feasibility nor its economics moved
	// materially, a full replan would re-derive the same tail the original
	// planner chose, so the decision is committed without Monte-Carlo.
	if reason == ReasonDrift && !c.cfg.DisablePreScreen {
		if est, material, ok := c.screenTail(prof, cp, suffix, staleTail, d.RemainingDeadline); ok && !material {
			d.StaleEstimate = est
			d.Screened = true
			c.commit(d, state.Now)
			return d, nil
		}
	}

	sm, err := sim.New(suffix, prof, cp, c.cfg.Samples, c.cfg.RNG.Stream(uint64(seq)),
		sim.WithWorkers(c.cfg.Workers), sim.WithEstimator(c.cfg.Estimator))
	if err != nil {
		return Decision{}, err
	}
	staleEst, err := sm.Estimate(staleTail)
	if err != nil {
		return Decision{}, err
	}
	d.StaleEstimate = staleEst
	staleFeasible := staleEst.JCT <= d.RemainingDeadline

	p := &planner.Planner{
		Sim:      sm,
		Deadline: d.RemainingDeadline,
		MaxGPUs:  c.cfg.MaxGPUs,
		Workers:  c.cfg.Workers,
		Delta:    c.cfg.Delta,
	}
	res, perr := p.PlanElastic()
	switch {
	case perr == planner.ErrInfeasible:
		// No planner tail fits; the job is infeasible-after-drift unless
		// the stale tail itself still makes the deadline.
		d.Infeasible = !staleFeasible
	case perr != nil:
		return Decision{}, perr
	default:
		if !staleFeasible || res.Estimate.Cost < staleEst.Cost-c.cfg.Delta {
			d.Adopted = true
			d.NewEstimate = res.Estimate
			d.NewPlan = state.Plan.Splice(state.Stage+1, res.Plan)
		}
	}
	c.commit(d, state.Now)
	return d, nil
}

// analyticTail analytically estimates a tail plan under the given
// profiles. The evaluation consults no RNG (the seed below is never
// drawn from), so it is a pure function of its arguments. ok=false means
// the profile's latencies lack finite moments.
func (c *Controller) analyticTail(suffix *spec.ExperimentSpec, prof sim.TrainProfile, cp sim.CloudProfile, tail sim.Plan) (sim.Estimate, bool) {
	sm, err := sim.New(suffix, prof, cp, c.cfg.Samples, stats.NewRNG(1), sim.WithWorkers(1))
	if err != nil {
		return sim.Estimate{}, false
	}
	est, ok, eerr := sm.NewAnalyticEval().Estimate(tail)
	return est, eerr == nil && ok
}

// screenTail is the analytic drift pre-screen. material is true when a
// full Monte-Carlo replan could plausibly change the executed plan:
//
//  1. the stale tail's re-fitted analytic JCT approaches the remaining
//     deadline (feasibility is at risk, a faster tail may be needed);
//  2. the tail's analytic JCT or cost moved by more than
//     PreScreenTolerance between the planning-time and re-fitted
//     profiles (the latency regime the plan was optimized for is gone);
//  3. an analytic-only replan of the suffix finds a tail whose cost is
//     within tolerance of beating the stale tail by the adoption margin
//     Delta — this catches slack accumulated by a speed-up drift, where
//     the profiles barely move but a cheaper tail now fits the remaining
//     deadline.
//
// ok=false means the screen could not score the tail (no finite moments)
// and the caller must run the full replan.
func (c *Controller) screenTail(prof sim.TrainProfile, cp sim.CloudProfile, suffix *spec.ExperimentSpec, staleTail sim.Plan, remaining float64) (stale sim.Estimate, material, ok bool) {
	refit, ok1 := c.analyticTail(suffix, prof, cp, staleTail)
	base, ok2 := c.analyticTail(suffix, c.cfg.Profile, c.cfg.Cloud, staleTail)
	if !ok1 || !ok2 {
		return sim.Estimate{}, false, false
	}
	tol := c.cfg.PreScreenTolerance
	if refit.JCT*(1+tol) >= remaining ||
		math.Abs(refit.JCT-base.JCT) > tol*base.JCT ||
		math.Abs(refit.Cost-base.Cost) > tol*base.Cost {
		return refit, true, true
	}
	// Conditions 1–2 are quiet; check 3 with an analytic-only replan. The
	// fixed seed is never drawn from (every estimate stays on the moment
	// path — the stale tail just scored analytically above), so the
	// mini-plan is deterministic and costs microseconds per candidate.
	sm, err := sim.New(suffix, prof, cp, c.cfg.Samples, stats.NewRNG(1),
		sim.WithWorkers(1), sim.WithEstimator(sim.EstimatorAnalytic))
	if err != nil {
		return refit, true, true
	}
	p := &planner.Planner{
		Sim:      sm,
		Deadline: remaining,
		MaxGPUs:  c.cfg.MaxGPUs,
		Workers:  1,
		Delta:    c.cfg.Delta,
	}
	res, perr := p.PlanElastic()
	switch {
	case perr == planner.ErrInfeasible:
		// No planner tail fits analytically while the stale one does; the
		// full replan would keep the stale tail. Immaterial.
	case perr != nil:
		material = true
	default:
		// An analytic optimum that IS the stale tail can never be adopted:
		// the full replan estimates both through the same memoized
		// simulator, and a plan is never cheaper than itself by Delta. A
		// different optimum is material when its cost is within tolerance
		// of beating the stale tail by the adoption margin.
		material = !res.Plan.Equal(staleTail) &&
			res.Estimate.Cost < refit.Cost-c.cfg.Delta+tol*refit.Cost
	}
	return refit, material, true
}

// PreScreenResult is the outcome of the read-only analytic drift
// pre-screen (see Controller.PreScreen).
type PreScreenResult struct {
	// Supported reports whether the analytic screen could score the tail;
	// when false a full replan is required and the other fields are zero.
	Supported bool
	// Material reports whether the screen would let a drift trigger
	// proceed to the Monte-Carlo replan.
	Material bool
	// RemainingDeadline is the tail's budget, as in Decision.
	RemainingDeadline float64
	// Stale is the analytic estimate of the stale tail under the
	// re-fitted profile.
	Stale sim.Estimate
}

// PreScreen runs the analytic drift pre-screen for state without
// committing anything: no decision is recorded, no cooldown armed, no
// random stream consumed. Replan applies the same screen internally to
// drift-reason decisions; this entry point exists for callers that want
// the microsecond-scale feasibility read on its own (dashboards, the
// planning benchmarks).
func (c *Controller) PreScreen(state State) (PreScreenResult, error) {
	if state.Stage < 0 || state.Stage >= c.cfg.Spec.NumStages()-1 {
		return PreScreenResult{}, fmt.Errorf("replan: stage %d of %d has no tail to screen", state.Stage, c.cfg.Spec.NumStages())
	}
	if err := state.Plan.Validate(c.cfg.Spec.NumStages()); err != nil {
		return PreScreenResult{}, err
	}
	prof, cp, err := c.refitProfiles()
	if err != nil {
		return PreScreenResult{}, err
	}
	st := c.cfg.Spec.Stage(state.Stage)
	per := sim.GPUsPerTrial(state.Plan.Alloc[state.Stage], st.Trials)
	remaining := c.cfg.Deadline - float64(state.Now) - float64(state.RemainingIters)*prof.IterDist(per).Mean()
	if remaining <= 0 {
		return PreScreenResult{Supported: true, Material: true, RemainingDeadline: remaining}, nil
	}
	suffix := c.cfg.Spec.Suffix(state.Stage + 1)
	stale, material, ok := c.screenTail(prof, cp, suffix, state.Plan.Suffix(state.Stage+1), remaining)
	return PreScreenResult{Supported: ok, Material: material, RemainingDeadline: remaining, Stale: stale}, nil
}

// commit records the decision and arms the cooldown.
func (c *Controller) commit(d Decision, now vclock.Time) {
	c.decisions = append(c.decisions, d)
	c.armed = true
	c.lastReplan = now
	if c.observer != nil {
		c.observer(d)
	}
}
