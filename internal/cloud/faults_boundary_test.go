package cloud

import (
	"math"
	"testing"
)

// TestFaultModelValidateBoundaries pins the exact edges of the accepted
// parameter space. The NaN and Inf rows are regressions: NaN compares
// false against everything, so before Validate checked for it explicitly
// a NaN probability or preemption mean sailed through the range tests —
// and a NaN (or +Inf) preemption delay panics the virtual clock.
func TestFaultModelValidateBoundaries(t *testing.T) {
	cases := []struct {
		name string
		f    FaultModel
		ok   bool
	}{
		{"zero model", FaultModel{}, true},
		{"prob exactly 0", FaultModel{ProvisionFailureProb: 0}, true},
		{"prob just under 1", FaultModel{ProvisionFailureProb: math.Nextafter(1, 0)}, true},
		{"prob exactly 1", FaultModel{ProvisionFailureProb: 1}, false},
		{"prob just over 1", FaultModel{ProvisionFailureProb: math.Nextafter(1, 2)}, false},
		{"prob negative zero", FaultModel{ProvisionFailureProb: math.Copysign(0, -1)}, true},
		{"prob tiny negative", FaultModel{ProvisionFailureProb: -math.SmallestNonzeroFloat64}, false},
		{"prob NaN", FaultModel{ProvisionFailureProb: math.NaN()}, false},
		{"prob +Inf", FaultModel{ProvisionFailureProb: math.Inf(1)}, false},
		{"mean exactly 0 disables preemption", FaultModel{PreemptionMeanSeconds: 0}, true},
		{"mean tiny positive", FaultModel{PreemptionMeanSeconds: math.SmallestNonzeroFloat64}, true},
		{"mean negative", FaultModel{PreemptionMeanSeconds: -1}, false},
		{"mean tiny negative", FaultModel{PreemptionMeanSeconds: -math.SmallestNonzeroFloat64}, false},
		{"mean NaN", FaultModel{PreemptionMeanSeconds: math.NaN()}, false},
		{"mean +Inf", FaultModel{PreemptionMeanSeconds: math.Inf(1)}, false},
		{"mean -Inf", FaultModel{PreemptionMeanSeconds: math.Inf(-1)}, false},
		{"both at valid extremes", FaultModel{
			ProvisionFailureProb:  math.Nextafter(1, 0),
			PreemptionMeanSeconds: math.SmallestNonzeroFloat64,
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate(%+v) = %v, want accept", tc.f, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Validate(%+v) accepted, want reject", tc.f)
			}
		})
	}
}
