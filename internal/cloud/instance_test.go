package cloud

import (
	"math"
	"testing"
)

func TestDefaultCatalog(t *testing.T) {
	c := DefaultCatalog()
	names := c.Names()
	want := []string{"p3.16xlarge", "p3.2xlarge", "p3.8xlarge", "r5.4xlarge"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestCatalogLookup(t *testing.T) {
	c := DefaultCatalog()
	it, err := c.Lookup("p3.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if it.GPUs != 4 {
		t.Errorf("p3.8xlarge GPUs = %d, want 4", it.GPUs)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("Lookup of unknown type succeeded")
	}
}

func TestCatalogRejectsDuplicates(t *testing.T) {
	_, err := NewCatalog(
		InstanceType{Name: "a", OnDemandPerHour: 1},
		InstanceType{Name: "a", OnDemandPerHour: 2},
	)
	if err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestCatalogRejectsInvalid(t *testing.T) {
	if _, err := NewCatalog(InstanceType{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewCatalog(InstanceType{Name: "x", OnDemandPerHour: -1}); err == nil {
		t.Error("negative price accepted")
	}
}

func TestPricePerHourMarkets(t *testing.T) {
	it := InstanceType{Name: "x", GPUs: 8, OnDemandPerHour: 24, SpotPerHour: 7.5}
	if p := it.PricePerHour(OnDemand); p != 24 {
		t.Errorf("on-demand price %v", p)
	}
	if p := it.PricePerHour(Spot); p != 7.5 {
		t.Errorf("spot price %v", p)
	}
	// Missing spot market falls back to on-demand.
	it.SpotPerHour = 0
	if p := it.PricePerHour(Spot); p != 24 {
		t.Errorf("spot fallback price %v", p)
	}
}

func TestPricePerGPUSecond(t *testing.T) {
	it := InstanceType{Name: "x", GPUs: 4, OnDemandPerHour: 14.4}
	want := 14.4 / 4 / 3600
	if p := it.PricePerGPUSecond(OnDemand); math.Abs(p-want) > 1e-12 {
		t.Errorf("per-GPU-second %v, want %v", p, want)
	}
	cpu := InstanceType{Name: "c", GPUs: 0, OnDemandPerHour: 1}
	if p := cpu.PricePerGPUSecond(OnDemand); p != 0 {
		t.Errorf("0-GPU instance per-GPU price %v, want 0", p)
	}
}

func TestMarketString(t *testing.T) {
	if OnDemand.String() != "on-demand" || Spot.String() != "spot" {
		t.Error("market names wrong")
	}
}
