package cloud

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/vclock"
)

func testProvider(t *testing.T, pricing Pricing, ov Overheads, datasetGB float64) (*Provider, *vclock.Clock) {
	t.Helper()
	clock := vclock.New()
	p, err := NewProvider(clock, stats.NewRNG(1), pricing, ov, datasetGB)
	if err != nil {
		t.Fatal(err)
	}
	return p, clock
}

func detOverheads(queue, init float64) Overheads {
	return Overheads{
		QueueDelay:  stats.Deterministic{Value: queue},
		InitLatency: stats.Deterministic{Value: init},
	}
}

func TestProviderLifecycle(t *testing.T) {
	p, clock := testProvider(t, DefaultPricing(), detOverheads(5, 10), 0)
	it, _ := DefaultCatalog().Lookup("p3.8xlarge")

	var ready *Instance
	in := p.Request(it, func(i *Instance) { ready = i })
	if in.State != Requested {
		t.Fatalf("initial state %v", in.State)
	}
	clock.Run(0)
	if ready != in {
		t.Fatal("onReady not invoked with the instance")
	}
	if in.State != Ready {
		t.Fatalf("state %v, want ready", in.State)
	}
	if got := float64(in.ReadyAt); got != 15 {
		t.Fatalf("ReadyAt %v, want 15 (5 queue + 10 init)", got)
	}
}

func TestProviderTerminateStopsBilling(t *testing.T) {
	p, clock := testProvider(t, Pricing{Billing: PerInstance, MinChargeSeconds: 0}, detOverheads(0, 0), 0)
	it, _ := DefaultCatalog().Lookup("p3.8xlarge")
	in := p.Request(it, nil)
	clock.Run(0)

	clock.At(3600, func() { p.Terminate(in) })
	clock.Run(0)
	// Billing should cover exactly one hour regardless of how far we look.
	cost := p.ComputeCost(vclock.Time(7200))
	if math.Abs(cost-it.OnDemandPerHour) > 1e-9 {
		t.Fatalf("cost %v, want %v", cost, it.OnDemandPerHour)
	}
	// Double terminate is a no-op.
	p.Terminate(in)
	if got := p.ComputeCost(vclock.Time(7200)); math.Abs(got-cost) > 1e-12 {
		t.Fatal("double terminate changed cost")
	}
}

func TestProviderCancelWhileQueued(t *testing.T) {
	p, clock := testProvider(t, DefaultPricing(), detOverheads(100, 0), 0)
	it, _ := DefaultCatalog().Lookup("p3.2xlarge")
	readied := false
	in := p.Request(it, func(*Instance) { readied = true })
	clock.At(10, func() { p.Terminate(in) })
	clock.Run(0)
	if readied {
		t.Fatal("cancelled instance became ready")
	}
	// Never left Requested before termination, so zero billing.
	if c := p.ComputeCost(clock.Now()); c != 0 {
		t.Fatalf("cancelled instance billed %v", c)
	}
}

func TestProviderMinimumCharge(t *testing.T) {
	p, clock := testProvider(t, Pricing{Billing: PerInstance, MinChargeSeconds: 60}, detOverheads(0, 0), 0)
	it, _ := DefaultCatalog().Lookup("p3.2xlarge")
	in := p.Request(it, nil)
	clock.Run(0)
	clock.At(10, func() { p.Terminate(in) })
	clock.Run(0)
	want := 60.0 / 3600 * it.OnDemandPerHour
	if c := p.ComputeCost(clock.Now()); math.Abs(c-want) > 1e-9 {
		t.Fatalf("cost %v, want minimum charge %v", c, want)
	}
}

func TestProviderPerFunctionBilling(t *testing.T) {
	p, clock := testProvider(t, Pricing{Billing: PerFunction}, detOverheads(0, 0), 0)
	it, _ := DefaultCatalog().Lookup("p3.8xlarge")
	in := p.Request(it, nil)
	clock.Run(0)
	p.RecordUsage(in, 2*3600) // 2 GPU-hours
	want := 2 * it.OnDemandPerHour / float64(it.GPUs)
	if c := p.ComputeCost(clock.Now()); math.Abs(c-want) > 1e-9 {
		t.Fatalf("per-function cost %v, want %v", c, want)
	}
}

func TestProviderDataIngress(t *testing.T) {
	pricing := DefaultPricing()
	pricing.DataPricePerGB = 0.01
	p, clock := testProvider(t, pricing, detOverheads(0, 0), 150)
	it, _ := DefaultCatalog().Lookup("p3.8xlarge")
	for i := 0; i < 3; i++ {
		p.Request(it, nil)
	}
	clock.Run(0)
	if c := p.DataCost(); math.Abs(c-3*1.5) > 1e-9 {
		t.Fatalf("data cost %v, want 4.50 (3 instances x $1.50)", c)
	}
	total := p.TotalCost(clock.Now())
	if total < p.DataCost() {
		t.Fatalf("total %v < data cost", total)
	}
}

func TestProviderInstancesOrdered(t *testing.T) {
	p, clock := testProvider(t, DefaultPricing(), detOverheads(0, 0), 0)
	it, _ := DefaultCatalog().Lookup("p3.2xlarge")
	for i := 0; i < 5; i++ {
		p.Request(it, nil)
	}
	clock.Run(0)
	ins := p.Instances()
	if len(ins) != 5 {
		t.Fatalf("len = %d", len(ins))
	}
	for i, in := range ins {
		if in.ID != i {
			t.Fatalf("instances out of order: %v", ins)
		}
	}
}

func TestProviderRejectsBadConfig(t *testing.T) {
	clock := vclock.New()
	if _, err := NewProvider(clock, stats.NewRNG(1), Pricing{MinChargeSeconds: -1}, Overheads{}, 0); err == nil {
		t.Error("invalid pricing accepted")
	}
	if _, err := NewProvider(clock, stats.NewRNG(1), DefaultPricing(), Overheads{}, -5); err == nil {
		t.Error("negative dataset size accepted")
	}
}

func TestRecordUsagePanicsOnNegative(t *testing.T) {
	p, clock := testProvider(t, DefaultPricing(), detOverheads(0, 0), 0)
	it, _ := DefaultCatalog().Lookup("p3.2xlarge")
	in := p.Request(it, nil)
	clock.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.RecordUsage(in, -1)
}

func TestInstanceStateString(t *testing.T) {
	states := map[InstanceState]string{
		Requested: "requested", Initializing: "initializing",
		Ready: "ready", Terminated: "terminated",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
