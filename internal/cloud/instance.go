// Package cloud models the cloud provider that RubberBand provisions
// compute from: an instance-type catalog with prices, billing models
// (per-instance with a minimum charge, and per-function), data-ingress
// pricing, and stochastic provisioning behaviour (queue delay and instance
// initialization latency).
//
// The paper treats all of these as parameters of the execution model
// (§4.1); this package reproduces the published constants for the AWS EC2
// instance types used in the evaluation and exposes everything needed by
// the simulator, planner and executor.
package cloud

import (
	"fmt"
	"sort"
)

// InstanceType describes one compute offering from the provider's catalog.
type InstanceType struct {
	// Name is the provider's identifier, e.g. "p3.8xlarge".
	Name string
	// GPUs is the number of accelerators on one instance.
	GPUs int
	// VCPUs is the number of virtual CPUs (informational).
	VCPUs int
	// MemoryGB is the instance memory in gigabytes (informational).
	MemoryGB float64
	// OnDemandPerHour is the uninterruptible hourly price in dollars.
	OnDemandPerHour float64
	// SpotPerHour is the preemptible hourly price in dollars. Zero means
	// the type has no spot market in this catalog.
	SpotPerHour float64
	// NetworkGbps is the instance network bandwidth (informational; the
	// scaling profiles already fold communication cost in).
	NetworkGbps float64
}

// PricePerHour returns the hourly price under the given market.
func (it InstanceType) PricePerHour(m Market) float64 {
	if m == Spot && it.SpotPerHour > 0 {
		return it.SpotPerHour
	}
	return it.OnDemandPerHour
}

// PricePerGPUSecond returns the price of one GPU for one second, assuming
// the whole instance price is attributed evenly to its GPUs. This is the
// unit the per-function billing model charges in.
func (it InstanceType) PricePerGPUSecond(m Market) float64 {
	if it.GPUs == 0 {
		return 0
	}
	return it.PricePerHour(m) / float64(it.GPUs) / 3600
}

// Market selects between on-demand and spot pricing.
type Market int

const (
	// OnDemand is uninterruptible, full-price capacity.
	OnDemand Market = iota
	// Spot is preemptible discounted capacity.
	Spot
)

// String returns the market name.
func (m Market) String() string {
	switch m {
	case OnDemand:
		return "on-demand"
	case Spot:
		return "spot"
	default:
		return fmt.Sprintf("Market(%d)", int(m))
	}
}

// Catalog is a set of instance types indexed by name.
type Catalog struct {
	types map[string]InstanceType
}

// NewCatalog builds a catalog from the given types. Duplicate names return
// an error.
func NewCatalog(types ...InstanceType) (*Catalog, error) {
	c := &Catalog{types: make(map[string]InstanceType, len(types))}
	for _, it := range types {
		if it.Name == "" {
			return nil, fmt.Errorf("cloud: instance type with empty name")
		}
		if it.GPUs < 0 || it.OnDemandPerHour < 0 || it.SpotPerHour < 0 {
			return nil, fmt.Errorf("cloud: instance type %q has negative fields", it.Name)
		}
		if _, dup := c.types[it.Name]; dup {
			return nil, fmt.Errorf("cloud: duplicate instance type %q", it.Name)
		}
		c.types[it.Name] = it
	}
	return c, nil
}

// Lookup returns the instance type with the given name.
func (c *Catalog) Lookup(name string) (InstanceType, error) {
	it, ok := c.types[name]
	if !ok {
		return InstanceType{}, fmt.Errorf("cloud: unknown instance type %q", name)
	}
	return it, nil
}

// Names returns all type names in sorted order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.types))
	for n := range c.types {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultCatalog returns the EC2 GPU instance types used in the paper's
// evaluation, at the prices it reports (p3.2xlarge ~$3/hr with 1 V100,
// p3.16xlarge ~$24/hr with 8 V100s; the ablation in §6.2 quotes $7.50/hr
// spot-like pricing for p3.16xlarge which we expose as the spot tier).
func DefaultCatalog() *Catalog {
	c, err := NewCatalog(
		InstanceType{
			Name: "p3.2xlarge", GPUs: 1, VCPUs: 8, MemoryGB: 61,
			OnDemandPerHour: 3.06, SpotPerHour: 0.94, NetworkGbps: 10,
		},
		InstanceType{
			Name: "p3.8xlarge", GPUs: 4, VCPUs: 32, MemoryGB: 244,
			OnDemandPerHour: 12.24, SpotPerHour: 3.75, NetworkGbps: 10,
		},
		InstanceType{
			Name: "p3.16xlarge", GPUs: 8, VCPUs: 64, MemoryGB: 488,
			OnDemandPerHour: 24.48, SpotPerHour: 7.50, NetworkGbps: 25,
		},
		InstanceType{
			Name: "r5.4xlarge", GPUs: 0, VCPUs: 16, MemoryGB: 128,
			OnDemandPerHour: 1.008, SpotPerHour: 0.35, NetworkGbps: 10,
		},
	)
	if err != nil {
		panic(err) // static data; unreachable
	}
	return c
}
