package cloud

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/vclock"
)

func TestFaultModelValidate(t *testing.T) {
	good := []FaultModel{
		{},
		{ProvisionFailureProb: 0.5},
		{PreemptionMeanSeconds: 100},
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", f, err)
		}
	}
	bad := []FaultModel{
		{ProvisionFailureProb: -0.1},
		{ProvisionFailureProb: 1},
		{PreemptionMeanSeconds: -1},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("%+v accepted", f)
		}
	}
}

func TestProvisionFailureCallback(t *testing.T) {
	p, clock := testProvider(t, DefaultPricing(), detOverheads(1, 0), 0)
	if err := p.SetFaults(FaultModel{ProvisionFailureProb: 0.999999}); err != nil {
		t.Fatal(err)
	}
	it, _ := DefaultCatalog().Lookup("p3.2xlarge")
	var failed *Instance
	p.OnProvisionFailure(func(in *Instance) { failed = in })
	readied := false
	p.Request(it, func(*Instance) { readied = true })
	clock.Run(0)
	if readied {
		t.Fatal("request succeeded despite ~certain failure")
	}
	if failed == nil || failed.State != Failed {
		t.Fatalf("failure callback: %+v", failed)
	}
	if p.ProvisionFailures() != 1 {
		t.Fatalf("failures = %d", p.ProvisionFailures())
	}
	// Failed instances never bill.
	if c := p.ComputeCost(clock.Now()); c != 0 {
		t.Fatalf("failed instance billed %v", c)
	}
}

func TestPreemptionStopsBilling(t *testing.T) {
	pricing := Pricing{Billing: PerInstance, MinChargeSeconds: 0}
	p, clock := testProvider(t, pricing, detOverheads(0, 0), 0)
	if err := p.SetFaults(FaultModel{PreemptionMeanSeconds: 100}); err != nil {
		t.Fatal(err)
	}
	it, _ := DefaultCatalog().Lookup("p3.2xlarge")
	var preempted *Instance
	p.OnPreemption(func(in *Instance) { preempted = in })
	in := p.Request(it, nil)
	clock.Run(0) // drains ready + the scheduled preemption
	if preempted != in || in.State != Preempted {
		t.Fatalf("preemption not delivered: state=%v", in.State)
	}
	if p.Preemptions() != 1 {
		t.Fatalf("preemptions = %d", p.Preemptions())
	}
	// Billing stopped at the preemption time; later reads don't grow.
	at := float64(in.TerminatedAt)
	cost := p.ComputeCost(vclock.Time(at + 10000))
	want := at / 3600 * it.OnDemandPerHour
	if diff := cost - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cost %v, want %v", cost, want)
	}
	// Terminating a preempted instance is a no-op.
	p.Terminate(in)
	if in.State != Preempted {
		t.Fatal("Terminate changed a preempted instance's state")
	}
}

func TestPreemptionSkipsReleasedInstances(t *testing.T) {
	p, clock := testProvider(t, DefaultPricing(), detOverheads(0, 0), 0)
	if err := p.SetFaults(FaultModel{PreemptionMeanSeconds: 1000}); err != nil {
		t.Fatal(err)
	}
	it, _ := DefaultCatalog().Lookup("p3.2xlarge")
	fired := false
	p.OnPreemption(func(*Instance) { fired = true })
	in := p.Request(it, nil)
	clock.At(1, func() { p.Terminate(in) })
	clock.Run(0)
	if fired {
		t.Fatal("preemption fired for a released instance")
	}
	if in.State != Terminated {
		t.Fatalf("state = %v", in.State)
	}
}

func TestNewStatesString(t *testing.T) {
	if Failed.String() != "failed" || Preempted.String() != "preempted" {
		t.Error("new state names wrong")
	}
	if InstanceState(99).String() == "" {
		t.Error("unknown state empty")
	}
}

func TestSetFaultsRejectsInvalid(t *testing.T) {
	p, _ := testProvider(t, DefaultPricing(), detOverheads(0, 0), 0)
	if err := p.SetFaults(FaultModel{ProvisionFailureProb: 2}); err == nil {
		t.Fatal("invalid fault model accepted")
	}
}

func TestDefaultOverheads(t *testing.T) {
	ov := DefaultOverheads()
	if ov.QueueDelay == nil || ov.InitLatency == nil {
		t.Fatal("nil default overheads")
	}
	r := stats.NewRNG(1)
	if ov.QueueDelay.Sample(r) < 0 || ov.InitLatency.Sample(r) < 0 {
		t.Fatal("negative overhead sample")
	}
}
