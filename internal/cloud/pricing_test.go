package cloud

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultPricingValid(t *testing.T) {
	if err := DefaultPricing().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPricingValidateRejects(t *testing.T) {
	cases := []Pricing{
		{MinChargeSeconds: -1},
		{DataPricePerGB: -0.5},
		{Billing: BillingModel(9)},
		{Market: Market(9)},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid pricing accepted: %+v", i, p)
		}
	}
}

func TestInstanceCostPerInstance(t *testing.T) {
	it := InstanceType{Name: "x", GPUs: 4, OnDemandPerHour: 36}
	p := Pricing{Billing: PerInstance, MinChargeSeconds: 60}
	// 1 hour lifetime => $36 regardless of usage.
	if c := p.InstanceCost(it, 3600, 0); math.Abs(c-36) > 1e-9 {
		t.Errorf("1h cost %v, want 36", c)
	}
	// 30 seconds lifetime is billed as the 60-second minimum.
	if c := p.InstanceCost(it, 30, 0); math.Abs(c-36.0/60) > 1e-9 {
		t.Errorf("30s cost %v, want %v", c, 36.0/60)
	}
}

func TestInstanceCostPerFunction(t *testing.T) {
	it := InstanceType{Name: "x", GPUs: 4, OnDemandPerHour: 36}
	p := Pricing{Billing: PerFunction}
	// 4 GPU-hours of usage = full instance for an hour = $36.
	if c := p.InstanceCost(it, 999999, 4*3600); math.Abs(c-36) > 1e-9 {
		t.Errorf("cost %v, want 36", c)
	}
	// Idle lifetime is free.
	if c := p.InstanceCost(it, 3600, 0); c != 0 {
		t.Errorf("idle cost %v, want 0", c)
	}
}

func TestDataIngressCost(t *testing.T) {
	p := Pricing{DataPricePerGB: 0.01}
	if c := p.DataIngressCost(150); math.Abs(c-1.5) > 1e-12 {
		t.Errorf("ImageNet ingress %v, want 1.50", c)
	}
}

func TestBillingModelString(t *testing.T) {
	if PerInstance.String() != "per-instance" || PerFunction.String() != "per-function" {
		t.Error("billing model names wrong")
	}
}

// Property: per-function cost never exceeds per-instance cost when usage
// cannot exceed capacity (usage <= GPUs * lifetime) and lifetime is above
// the minimum charge. This is the structural reason Figure 9 shows
// per-instance >= per-function.
func TestQuickPerFunctionBounded(t *testing.T) {
	it := InstanceType{Name: "x", GPUs: 4, OnDemandPerHour: 12}
	f := func(lifeRaw, usedFracRaw uint16) bool {
		lifetime := 60 + float64(lifeRaw) // >= minimum charge
		frac := float64(usedFracRaw) / math.MaxUint16
		used := frac * float64(it.GPUs) * lifetime
		perInst := Pricing{Billing: PerInstance, MinChargeSeconds: 60}.InstanceCost(it, lifetime, used)
		perFn := Pricing{Billing: PerFunction}.InstanceCost(it, lifetime, used)
		return perFn <= perInst+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: instance cost is monotone in lifetime under per-instance
// billing.
func TestQuickPerInstanceMonotone(t *testing.T) {
	it := InstanceType{Name: "x", GPUs: 8, OnDemandPerHour: 24}
	p := Pricing{Billing: PerInstance, MinChargeSeconds: 60}
	f := func(aRaw, bRaw uint16) bool {
		a, b := float64(aRaw), float64(bRaw)
		if a > b {
			a, b = b, a
		}
		return p.InstanceCost(it, a, 0) <= p.InstanceCost(it, b, 0)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
