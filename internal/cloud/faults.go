package cloud

import (
	"fmt"
	"math"
)

// FaultModel injects provider-side failures, extending the paper's
// idealized assumptions (§3: "provisioning requests are always served",
// on-demand-only pricing). Spot preemption is the paper's explicitly
// deferred future work; provisioning failure exercises the cluster
// manager's retry path.
type FaultModel struct {
	// ProvisionFailureProb is the probability that a provisioning
	// request fails after its queueing delay (the instance never
	// materializes and must be re-requested).
	ProvisionFailureProb float64
	// PreemptionMeanSeconds, when positive, gives each Ready instance an
	// exponentially distributed time-to-preemption with this mean. The
	// instance stops billing at preemption and its workload must recover
	// from checkpoints.
	PreemptionMeanSeconds float64
}

// Validate checks the fault parameters. NaN values are rejected
// explicitly: every comparison against NaN is false, so without these
// checks a NaN probability or mean would slip through the range tests and
// poison the provider's arithmetic (a NaN preemption delay panics the
// virtual clock).
func (f FaultModel) Validate() error {
	if math.IsNaN(f.ProvisionFailureProb) || f.ProvisionFailureProb < 0 || f.ProvisionFailureProb >= 1 {
		return fmt.Errorf("cloud: provision failure probability %v outside [0,1)", f.ProvisionFailureProb)
	}
	if math.IsNaN(f.PreemptionMeanSeconds) || math.IsInf(f.PreemptionMeanSeconds, 0) || f.PreemptionMeanSeconds < 0 {
		return fmt.Errorf("cloud: invalid preemption mean %v", f.PreemptionMeanSeconds)
	}
	return nil
}

// SetFaults installs a fault model. It affects only instances requested
// after the call.
func (p *Provider) SetFaults(f FaultModel) error {
	if err := f.Validate(); err != nil {
		return err
	}
	p.faults = f
	return nil
}

// OnProvisionFailure registers fn to be invoked whenever a provisioning
// request fails. The instance passed is in state Failed.
func (p *Provider) OnProvisionFailure(fn func(*Instance)) { p.onFail = fn }

// OnPreemption registers fn to be invoked whenever a Ready instance is
// preempted. The instance passed is in state Preempted; billing has
// already stopped.
func (p *Provider) OnPreemption(fn func(*Instance)) { p.onPreempt = fn }

// Preemptions returns the number of instances preempted so far.
func (p *Provider) Preemptions() int { return p.preemptions }

// ProvisionFailures returns the number of failed provisioning requests so
// far.
func (p *Provider) ProvisionFailures() int { return p.failures }
