package cloud

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/vclock"
)

// Overheads holds the provisioning-latency parameters of §4.1: scaling
// latency (provider queueing delay between a request and the instance being
// provisioned) and instance initialization latency (dependency install and
// cluster join after provisioning).
type Overheads struct {
	// QueueDelay is sampled once per provisioning request.
	QueueDelay stats.Dist
	// InitLatency is sampled once per instance after provisioning.
	InitLatency stats.Dist
}

// DefaultOverheads returns modest cloud overheads: an exponential queueing
// delay with a 10-second mean and a 15-second deterministic initialization,
// matching the warm-pool setup of the end-to-end experiments (§6.3).
func DefaultOverheads() Overheads {
	return Overheads{
		QueueDelay:  stats.Exponential{MeanValue: 10},
		InitLatency: stats.Deterministic{Value: 15},
	}
}

// InstanceState tracks an instance through its lifecycle.
type InstanceState int

const (
	// Requested means the provisioning request is queued at the provider.
	Requested InstanceState = iota
	// Initializing means hardware is allocated and setup scripts run.
	Initializing
	// Ready means the instance has joined the cluster and can host work.
	Ready
	// Terminated means the instance was released; billing has stopped.
	Terminated
	// Failed means the provisioning request could not be served; the
	// instance never existed and was never billed.
	Failed
	// Preempted means the provider reclaimed a running (spot) instance;
	// billing stopped at the preemption.
	Preempted
)

// String returns the state name.
func (s InstanceState) String() string {
	switch s {
	case Requested:
		return "requested"
	case Initializing:
		return "initializing"
	case Ready:
		return "ready"
	case Terminated:
		return "terminated"
	case Failed:
		return "failed"
	case Preempted:
		return "preempted"
	default:
		return fmt.Sprintf("InstanceState(%d)", int(s))
	}
}

// Instance is one provisioned machine. Fields are managed by Provider; the
// executor reads them but must mutate only through Provider methods.
type Instance struct {
	// ID is unique within one Provider, assigned in request order.
	ID int
	// Type is the instance's catalog entry.
	Type InstanceType
	// State is the current lifecycle state.
	State InstanceState
	// RequestedAt, ReadyAt, TerminatedAt are lifecycle timestamps in
	// virtual time. ReadyAt/TerminatedAt are meaningful only once the
	// corresponding state has been reached.
	RequestedAt  vclock.Time
	ReadyAt      vclock.Time
	TerminatedAt vclock.Time
	// GPUSecondsUsed accumulates task-occupied GPU time for per-function
	// billing; the executor adds to it via Provider.RecordUsage.
	GPUSecondsUsed float64

	// billStart is the moment hardware was allocated (start of billing),
	// set by Provider when the instance leaves the Requested state.
	// billing reports whether that ever happened: a request cancelled
	// while still queued incurs no charge at all.
	billStart vclock.Time
	billing   bool
}

// BilledLifetime returns the instance's billable wall-clock lifetime at
// time now. Billing starts when the machine is provisioned (hardware
// allocated, i.e. Initializing) and ends at termination.
func (in *Instance) BilledLifetime(now vclock.Time) float64 {
	if !in.billing {
		return 0
	}
	start := in.startOfBilling()
	end := now
	if in.State == Terminated || in.State == Preempted {
		end = in.TerminatedAt
	}
	if end < start {
		return 0
	}
	return float64(end - start)
}

// startOfBilling is the moment hardware was allocated and billing began.
func (in *Instance) startOfBilling() vclock.Time { return in.billStart }

// Billing reports whether the instance ever started billing (hardware was
// allocated). A request that failed or was cancelled while still queued
// never bills; cost oracles use this to reprice the ledger externally.
func (in *Instance) Billing() bool { return in.billing }

// Provider simulates the cloud control plane: it services provisioning
// requests after a sampled queueing delay, runs initialization, and meters
// cost. All methods must be called from the vclock event loop goroutine.
type Provider struct {
	clock     *vclock.Clock
	rng       *stats.RNG
	pricing   Pricing
	overheads Overheads
	datasetGB float64

	nextID    int
	instances map[int]*Instance
	// dataCost accumulates ingress charges as instances provision.
	dataCost float64

	// Fault injection (see faults.go).
	faults      FaultModel
	onFail      func(*Instance)
	onPreempt   func(*Instance)
	failures    int
	preemptions int
}

// NewProvider returns a provider bound to the given virtual clock.
// datasetGB is the training dataset size each instance must ingress once.
func NewProvider(clock *vclock.Clock, rng *stats.RNG, pricing Pricing, overheads Overheads, datasetGB float64) (*Provider, error) {
	if err := pricing.Validate(); err != nil {
		return nil, err
	}
	if datasetGB < 0 {
		return nil, fmt.Errorf("cloud: negative dataset size %v", datasetGB)
	}
	if overheads.QueueDelay == nil {
		overheads.QueueDelay = stats.Deterministic{Value: 0}
	}
	if overheads.InitLatency == nil {
		overheads.InitLatency = stats.Deterministic{Value: 0}
	}
	return &Provider{
		clock:     clock,
		rng:       rng,
		pricing:   pricing,
		overheads: overheads,
		datasetGB: datasetGB,
		instances: make(map[int]*Instance),
	}, nil
}

// Pricing returns the provider's pricing parameters.
func (p *Provider) Pricing() Pricing { return p.pricing }

// Overheads returns the provider's latency parameters.
func (p *Provider) Overheads() Overheads { return p.overheads }

// Request asks for one instance of type it. onReady is invoked (on the
// vclock loop) when the instance reaches Ready. The returned Instance is in
// state Requested.
func (p *Provider) Request(it InstanceType, onReady func(*Instance)) *Instance {
	in := &Instance{
		ID:          p.nextID,
		Type:        it,
		State:       Requested,
		RequestedAt: p.clock.Now(),
	}
	p.nextID++
	p.instances[in.ID] = in

	queue := p.overheads.QueueDelay.Sample(p.rng)
	p.clock.After(queue, func() {
		if in.State == Terminated {
			return // cancelled while queued
		}
		if p.faults.ProvisionFailureProb > 0 && p.rng.Float64() < p.faults.ProvisionFailureProb {
			in.State = Failed
			p.failures++
			if p.onFail != nil {
				p.onFail(in)
			}
			return
		}
		in.State = Initializing
		in.billStart = p.clock.Now()
		in.billing = true
		p.dataCost += p.pricing.DataIngressCost(p.datasetGB)
		initDelay := p.overheads.InitLatency.Sample(p.rng)
		p.clock.After(initDelay, func() {
			if in.State == Terminated {
				return // cancelled during init
			}
			in.State = Ready
			in.ReadyAt = p.clock.Now()
			p.armPreemption(in)
			if onReady != nil {
				onReady(in)
			}
		})
	})
	return in
}

// armPreemption schedules a spot-style reclamation for a Ready instance
// when the fault model enables it.
func (p *Provider) armPreemption(in *Instance) {
	if p.faults.PreemptionMeanSeconds <= 0 {
		return
	}
	delay := stats.Exponential{MeanValue: p.faults.PreemptionMeanSeconds}.Sample(p.rng)
	p.clock.After(delay, func() { p.Preempt(in) })
}

// Preempt forcibly reclaims a Ready instance, as the stochastic fault
// model would: billing stops, the preemption is counted, and the
// registered preemption callback fires. It reports whether the instance
// was actually preempted (false if it had already left the Ready state).
// Besides serving the fault model's timers, it lets tests and the chaos
// harness land a preemption at an exact virtual instant.
func (p *Provider) Preempt(in *Instance) bool {
	if in.State != Ready {
		return false
	}
	in.State = Preempted
	in.TerminatedAt = p.clock.Now()
	p.preemptions++
	if p.onPreempt != nil {
		p.onPreempt(in)
	}
	return true
}

// Terminate releases the instance, stopping its billing clock. Terminating
// an already-dead instance is a no-op.
func (p *Provider) Terminate(in *Instance) {
	if in.State == Terminated || in.State == Preempted || in.State == Failed {
		return
	}
	in.State = Terminated
	in.TerminatedAt = p.clock.Now()
}

// RecordUsage adds gpuSeconds of task-occupied GPU time to the instance,
// feeding the per-function billing meter.
func (p *Provider) RecordUsage(in *Instance, gpuSeconds float64) {
	if gpuSeconds < 0 {
		panic("cloud: negative usage")
	}
	in.GPUSecondsUsed += gpuSeconds
}

// Instances returns all instances ever requested, in ID order.
func (p *Provider) Instances() []*Instance {
	out := make([]*Instance, 0, len(p.instances))
	for id := 0; id < p.nextID; id++ {
		if in, ok := p.instances[id]; ok {
			out = append(out, in)
		}
	}
	return out
}

// ComputeCost returns the total compute charge across all instances as of
// virtual time now, under the provider's billing model.
func (p *Provider) ComputeCost(now vclock.Time) float64 {
	var total float64
	for _, in := range p.Instances() {
		if !in.billing {
			continue // cancelled while queued: hardware never allocated
		}
		total += p.pricing.InstanceCost(in.Type, in.BilledLifetime(now), in.GPUSecondsUsed)
	}
	return total
}

// DataCost returns the accumulated data-ingress charge.
func (p *Provider) DataCost() float64 { return p.dataCost }

// TotalCost returns compute plus data cost as of now.
func (p *Provider) TotalCost(now vclock.Time) float64 {
	return p.ComputeCost(now) + p.dataCost
}
