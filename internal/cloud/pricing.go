package cloud

import "fmt"

// BillingModel selects how compute time is charged.
type BillingModel int

const (
	// PerInstance charges for the full wall-clock lifetime of every
	// provisioned instance, with per-second granularity above a minimum
	// charge (60 s on the major providers). Idle GPUs still cost money —
	// this is the model under which stragglers are expensive.
	PerInstance BillingModel = iota
	// PerFunction charges only for GPU-seconds actually consumed by
	// running tasks, approximating serverless/finer-grained offerings.
	PerFunction
)

// String returns the billing model name.
func (b BillingModel) String() string {
	switch b {
	case PerInstance:
		return "per-instance"
	case PerFunction:
		return "per-function"
	default:
		return fmt.Sprintf("BillingModel(%d)", int(b))
	}
}

// Pricing holds the cost-model parameters from §4.1: compute price comes
// from the instance type and market; billing granularity, minimum charge
// and data-ingress price are explicit knobs.
type Pricing struct {
	// Billing selects per-instance or per-function charging.
	Billing BillingModel
	// Market selects on-demand or spot compute prices.
	Market Market
	// MinChargeSeconds is the minimum billed duration per instance under
	// PerInstance billing (60 s at major providers; 0 disables).
	MinChargeSeconds float64
	// DataPricePerGB is the ingress price in dollars per gigabyte for
	// reading the training dataset from external storage, charged once
	// per provisioned instance. Often 0 within a region.
	DataPricePerGB float64
}

// DefaultPricing matches the paper's baseline assumptions: per-instance
// on-demand billing, per-second granularity with a 60-second minimum, and
// free data movement.
func DefaultPricing() Pricing {
	return Pricing{
		Billing:          PerInstance,
		Market:           OnDemand,
		MinChargeSeconds: 60,
		DataPricePerGB:   0,
	}
}

// InstanceCost returns the charge for one instance of type it that was held
// for busySeconds of lifetime under per-instance billing, or that consumed
// gpuSecondsUsed under per-function billing.
func (p Pricing) InstanceCost(it InstanceType, lifetimeSeconds, gpuSecondsUsed float64) float64 {
	switch p.Billing {
	case PerFunction:
		return gpuSecondsUsed * it.PricePerGPUSecond(p.Market)
	default:
		billed := lifetimeSeconds
		if billed < p.MinChargeSeconds {
			billed = p.MinChargeSeconds
		}
		return billed / 3600 * it.PricePerHour(p.Market)
	}
}

// DataIngressCost returns the one-time data movement charge for one
// instance downloading a dataset of the given size.
func (p Pricing) DataIngressCost(datasetGB float64) float64 {
	return p.DataPricePerGB * datasetGB
}

// Validate checks that the pricing parameters are sane.
func (p Pricing) Validate() error {
	if p.MinChargeSeconds < 0 {
		return fmt.Errorf("cloud: negative minimum charge %v", p.MinChargeSeconds)
	}
	if p.DataPricePerGB < 0 {
		return fmt.Errorf("cloud: negative data price %v", p.DataPricePerGB)
	}
	if p.Billing != PerInstance && p.Billing != PerFunction {
		return fmt.Errorf("cloud: unknown billing model %d", p.Billing)
	}
	if p.Market != OnDemand && p.Market != Spot {
		return fmt.Errorf("cloud: unknown market %d", p.Market)
	}
	return nil
}
