// Metamorphic tests for the planning stack: instead of pinning absolute
// outputs, each test transforms a planner input in a way with a known
// effect on the output (scaling prices, permuting trial identities,
// tightening the deadline) and checks the relation on generated harness
// scenarios. The tests live in an external test package so they can reuse
// the chaos harness's scenario generator without an import cycle.
package planner_test

import (
	"reflect"
	"testing"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/harness"
	"repro/internal/planner"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// scalePrices returns a copy of cp with every dollar-denominated rate
// multiplied by k. Time-denominated knobs (billing minimum, overheads)
// are deliberately untouched: they are not prices.
func scalePrices(cp sim.CloudProfile, k float64) sim.CloudProfile {
	cp.Instance.OnDemandPerHour *= k
	cp.Instance.SpotPerHour *= k
	cp.Pricing.DataPricePerGB *= k
	return cp
}

// newPlanner mirrors the harness's planner construction for scenario sc
// over the given cloud profile. Both sides of a metamorphic pair must pass
// the same rngSeed so their Monte-Carlo draws align sample-for-sample.
func newPlanner(t *testing.T, sc harness.Scenario, cp sim.CloudProfile, rngSeed uint64, delta float64) (*planner.Planner, float64) {
	t.Helper()
	profile := sim.ModelTrainProfile{
		Model:       sc.Model,
		Batch:       sc.Model.BaseBatch,
		GPUsPerNode: cp.Instance.GPUs,
	}
	sm, err := sim.New(sc.Spec, profile, cp, sc.Samples, stats.NewRNG(rngSeed),
		sim.WithWorkers(1), sim.WithEstimator(sc.Estimator))
	if err != nil {
		t.Fatalf("simulator: %v", err)
	}
	deadline := sm.StaticClusterJCT(sc.MaxGPUs) * sc.DeadlineFactor
	return &planner.Planner{Sim: sm, Deadline: deadline, MaxGPUs: sc.MaxGPUs, Delta: delta, Workers: 1}, deadline
}

// metamorphicScenarios yields up to n generated scenarios whose sampled
// deadline the elastic planner accepts (the metamorphic relations are
// about plans, so infeasible draws carry no information).
func metamorphicScenarios(t *testing.T, seed uint64, n int) []harness.Scenario {
	t.Helper()
	var out []harness.Scenario
	for i := 0; i < 200 && len(out) < n; i++ {
		sc := harness.Generate(seed, i)
		p, _ := newPlanner(t, sc, sc.Profile, seed, 0.01)
		if _, err := p.PlanElastic(); err == nil {
			out = append(out, sc)
		}
	}
	if len(out) < n {
		t.Fatalf("only %d of %d feasible scenarios found under seed %d", len(out), n, seed)
	}
	return out
}

// TestPriceScalingElastic: multiplying every price by k changes no
// latency, so PlanElastic must return the identical allocation with cost
// scaled by exactly k. Delta is a dollar threshold, so it scales with the
// prices; k is a power of two, so the cost relation is bit-exact.
func TestPriceScalingElastic(t *testing.T) {
	const k = 2.0
	for _, sc := range metamorphicScenarios(t, 31, 5) {
		base, _ := newPlanner(t, sc, sc.Profile, 31, 0.01)
		scaled, _ := newPlanner(t, sc, scalePrices(sc.Profile, k), 31, 0.01*k)
		r1, err1 := base.PlanElastic()
		r2, err2 := scaled.PlanElastic()
		if err1 != nil || err2 != nil {
			t.Fatalf("%d/%d: base err %v, scaled err %v", sc.BatchSeed, sc.Index, err1, err2)
		}
		if !r1.Plan.Equal(r2.Plan) {
			t.Errorf("%d/%d: price scaling changed the plan: %v -> %v", sc.BatchSeed, sc.Index, r1.Plan, r2.Plan)
		}
		if r2.Estimate.Cost != k*r1.Estimate.Cost {
			t.Errorf("%d/%d: cost %v at %vx prices, want exactly %v", sc.BatchSeed, sc.Index, r2.Estimate.Cost, k, k*r1.Estimate.Cost)
		}
		if r2.Estimate.JCT != r1.Estimate.JCT {
			t.Errorf("%d/%d: price scaling changed predicted JCT: %v -> %v", sc.BatchSeed, sc.Index, r1.Estimate.JCT, r2.Estimate.JCT)
		}
	}
}

// TestPriceScalingMinJCT: the dual planner under budget B at prices P must
// equal the planner under budget kB at prices kP — the feasible set is
// identical and the stop rule is JCT-denominated.
func TestPriceScalingMinJCT(t *testing.T) {
	const k = 2.0
	for _, sc := range metamorphicScenarios(t, 33, 5) {
		base, _ := newPlanner(t, sc, sc.Profile, 33, 0)
		scaled, _ := newPlanner(t, sc, scalePrices(sc.Profile, k), 33, 0)
		el, err := base.PlanElastic()
		if err != nil {
			t.Fatalf("%d/%d: %v", sc.BatchSeed, sc.Index, err)
		}
		budget := 1.5 * el.Estimate.Cost
		r1, err1 := base.PlanMinJCT(budget)
		r2, err2 := scaled.PlanMinJCT(k * budget)
		if err1 != nil || err2 != nil {
			t.Fatalf("%d/%d: base err %v, scaled err %v", sc.BatchSeed, sc.Index, err1, err2)
		}
		if !r1.Plan.Equal(r2.Plan) {
			t.Errorf("%d/%d: scaled-budget dual changed the plan: %v -> %v", sc.BatchSeed, sc.Index, r1.Plan, r2.Plan)
		}
		if r2.Estimate.JCT != r1.Estimate.JCT {
			t.Errorf("%d/%d: scaled-budget dual changed JCT: %v -> %v", sc.BatchSeed, sc.Index, r1.Estimate.JCT, r2.Estimate.JCT)
		}
		if r2.Estimate.Cost != k*r1.Estimate.Cost {
			t.Errorf("%d/%d: dual cost %v at %vx prices, want exactly %v", sc.BatchSeed, sc.Index, r2.Estimate.Cost, k, k*r1.Estimate.Cost)
		}
	}
}

// TestDeadlineTighteningNeverLowersCost: shrinking the deadline shrinks
// the feasible set, so the optimal cost is non-decreasing as the deadline
// tightens (an infeasible tight deadline satisfies the relation vacuously).
func TestDeadlineTighteningNeverLowersCost(t *testing.T) {
	for _, sc := range metamorphicScenarios(t, 35, 6) {
		loose, deadline := newPlanner(t, sc, sc.Profile, 35, 0.01)
		rl, err := loose.PlanElastic()
		if err != nil {
			t.Fatalf("%d/%d: %v", sc.BatchSeed, sc.Index, err)
		}
		for _, shrink := range []float64{0.9, 0.75, 0.5} {
			tight, _ := newPlanner(t, sc, sc.Profile, 35, 0.01)
			tight.Deadline = deadline * shrink
			rt, err := tight.PlanElastic()
			if err == planner.ErrInfeasible {
				continue
			}
			if err != nil {
				t.Fatalf("%d/%d at %vx deadline: %v", sc.BatchSeed, sc.Index, shrink, err)
			}
			if rt.Estimate.Cost < rl.Estimate.Cost-1e-9 {
				t.Errorf("%d/%d: tightening deadline to %vx LOWERED cost: %v -> %v",
					sc.BatchSeed, sc.Index, shrink, rl.Estimate.Cost, rt.Estimate.Cost)
			}
		}
	}
}

// TestPlanInvariantUnderTrialPermutation: trial IDs are interchangeable
// labels — iteration latency depends on allocation, not on which
// hyperparameter config a trial carries — so permuting the config-to-trial
// assignment must leave the plan, the realized schedule, the JCT and the
// cost unchanged (only the identity of the winning trial may move).
func TestPlanInvariantUnderTrialPermutation(t *testing.T) {
	tested := 0
	for i := 0; i < 200 && tested < 4; i++ {
		sc := harness.Generate(17, i)
		if sc.Faults != (cloud.FaultModel{}) || sc.Spec.TotalTrials() < 2 {
			continue
		}
		p, _ := newPlanner(t, sc, sc.Profile, 17, 0.01)
		res, err := p.PlanElastic()
		if err != nil {
			continue
		}
		tested++

		cfgs := sc.Space.SampleN(stats.NewRNG(99), sc.Spec.TotalTrials())
		rotated := append(append([]searchspace.Config(nil), cfgs[1:]...), cfgs[0])

		run := func(assign []searchspace.Config) *executor.Result {
			clock := vclock.New()
			provider, err := cloud.NewProvider(clock, stats.NewRNG(7),
				sc.Profile.Pricing, sc.Profile.Overheads, sc.Profile.DatasetGB)
			if err != nil {
				t.Fatalf("%d/%d: provider: %v", sc.BatchSeed, sc.Index, err)
			}
			mgr, err := cluster.NewManager(provider, sc.Profile.Instance, clock)
			if err != nil {
				t.Fatalf("%d/%d: cluster: %v", sc.BatchSeed, sc.Index, err)
			}
			out, err := executor.Run(executor.Config{
				Spec:             sc.Spec,
				Plan:             res.Plan,
				Model:            sc.Model,
				Batch:            sc.Model.BaseBatch,
				Configs:          assign,
				Provider:         provider,
				Cluster:          mgr,
				Clock:            clock,
				RNG:              stats.NewRNG(8),
				DisablePlacement: sc.DisablePlacement,
				RestoreSeconds:   sc.RestoreSeconds,
				Trace:            trace.New(),
			})
			if err != nil {
				t.Fatalf("%d/%d: run: %v", sc.BatchSeed, sc.Index, err)
			}
			return out
		}

		a, b := run(cfgs), run(rotated)
		if a.JCT != b.JCT {
			t.Errorf("%d/%d: permuting trial configs changed JCT: %v -> %v", sc.BatchSeed, sc.Index, a.JCT, b.JCT)
		}
		if a.Cost != b.Cost {
			t.Errorf("%d/%d: permuting trial configs changed cost: %v -> %v", sc.BatchSeed, sc.Index, a.Cost, b.Cost)
		}
		if !reflect.DeepEqual(a.Schedule, b.Schedule) {
			t.Errorf("%d/%d: permuting trial configs changed the schedule:\n%v\n%v", sc.BatchSeed, sc.Index, a.Schedule, b.Schedule)
		}
		if !a.FinalPlan.Equal(b.FinalPlan) {
			t.Errorf("%d/%d: permuting trial configs changed the executed plan: %v -> %v", sc.BatchSeed, sc.Index, a.FinalPlan, b.FinalPlan)
		}
	}
	if tested < 4 {
		t.Fatalf("only %d fault-free feasible scenarios found under seed 17", tested)
	}
}
