package planner

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// stochasticPlanSim builds a simulator with genuinely random latencies so
// planner determinism reflects the RNG stream plumbing, not constants.
func stochasticPlanSim(t testing.TB, workers int) *sim.Simulator {
	t.Helper()
	s := spec.MustSHA(16, 2, 16, 2)
	prof := sim.ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	cp := sim.DefaultCloudProfile()
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Exponential{MeanValue: 5},
		InitLatency: stats.Normal{Mu: 15, Sigma: 3},
	}
	sm, err := sim.New(s, prof, cp, 10, stats.NewRNG(11), sim.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func detPlanner(t testing.TB, workers int) *Planner {
	return &Planner{
		Sim:      stochasticPlanSim(t, workers),
		Deadline: 1200,
		MaxGPUs:  32,
		Workers:  workers,
	}
}

// TestPlanDeterministicAcrossWorkers: each policy's Result — plan and
// bitwise estimate — is identical for workers 1, 2 and 8, and across two
// consecutive runs on fresh planners.
func TestPlanDeterministicAcrossWorkers(t *testing.T) {
	policies := []struct {
		name string
		run  func(p *Planner) (Result, error)
	}{
		{"static", (*Planner).PlanStatic},
		{"naive-elastic", (*Planner).PlanNaiveElastic},
		{"elastic", (*Planner).PlanElastic},
	}
	for _, pol := range policies {
		want, err := pol.run(detPlanner(t, 1))
		if err != nil {
			t.Fatalf("%s: %v", pol.name, err)
		}
		for _, workers := range []int{1, 2, 8} {
			for run := 0; run < 2; run++ {
				got, err := pol.run(detPlanner(t, workers))
				if err != nil {
					t.Fatalf("%s workers=%d: %v", pol.name, workers, err)
				}
				if !got.Plan.Equal(want.Plan) {
					t.Fatalf("%s workers=%d run=%d: plan %v != serial %v", pol.name, workers, run, got.Plan, want.Plan)
				}
				if got.Estimate != want.Estimate {
					t.Fatalf("%s workers=%d run=%d: estimate %+v != serial %+v", pol.name, workers, run, got.Estimate, want.Estimate)
				}
			}
		}
	}
}

// TestPlanElasticDeterministicPerEstimator re-runs the elastic policy's
// determinism check under each estimator mode explicitly: within a mode
// the chosen plan and bitwise estimate must not vary with worker count or
// repetition. (The default-mode test above covers EstimatorSegment; this
// pins EstimatorFull and guards the default against silent drift.)
func TestPlanElasticDeterministicPerEstimator(t *testing.T) {
	build := func(workers int, mode sim.EstimatorMode) *Planner {
		s := spec.MustSHA(16, 2, 16, 2)
		prof := sim.ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
		cp := sim.DefaultCloudProfile()
		cp.Overheads = cloud.Overheads{
			QueueDelay:  stats.Exponential{MeanValue: 5},
			InitLatency: stats.Normal{Mu: 15, Sigma: 3},
		}
		sm, err := sim.New(s, prof, cp, 10, stats.NewRNG(11), sim.WithWorkers(workers), sim.WithEstimator(mode))
		if err != nil {
			t.Fatal(err)
		}
		return &Planner{Sim: sm, Deadline: 1200, MaxGPUs: 32, Workers: workers}
	}
	for _, mode := range []sim.EstimatorMode{sim.EstimatorSegment, sim.EstimatorFull} {
		want, err := build(1, mode).PlanElastic()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for _, workers := range []int{2, 8} {
			for run := 0; run < 2; run++ {
				got, err := build(workers, mode).PlanElastic()
				if err != nil {
					t.Fatalf("%v workers=%d: %v", mode, workers, err)
				}
				if !got.Plan.Equal(want.Plan) || got.Estimate != want.Estimate {
					t.Fatalf("%v workers=%d run=%d: %+v != serial %+v", mode, workers, run, got, want)
				}
			}
		}
	}
}

// TestPlanMinJCTDeterministicAcrossWorkers covers the dual planner's
// parallel paths the same way.
func TestPlanMinJCTDeterministicAcrossWorkers(t *testing.T) {
	want, err := detPlanner(t, 1).PlanMinJCT(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := detPlanner(t, workers).PlanMinJCT(20)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Plan.Equal(want.Plan) || got.Estimate != want.Estimate {
			t.Fatalf("workers=%d: %+v != serial %+v", workers, got, want)
		}
	}
}

// TestConcurrentPlannersShareSimulator runs several planners against one
// shared simulator and cloud profile at once (run under -race); every
// result must match the serial reference.
func TestConcurrentPlannersShareSimulator(t *testing.T) {
	shared := stochasticPlanSim(t, 2)
	want, err := (&Planner{Sim: shared, Deadline: 1200, MaxGPUs: 32, Workers: 1}).PlanElastic()
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			p := &Planner{Sim: shared, Deadline: 1200, MaxGPUs: 32, Workers: 1 + g%3}
			got, err := p.PlanElastic()
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			if !got.Plan.Equal(want.Plan) || got.Estimate != want.Estimate {
				t.Errorf("goroutine %d: %+v != %+v", g, got, want)
			}
		}(g)
	}
	wg.Wait()
}

// countingProfile counts IterDist calls; the simulator consults the
// profile on every (non-memoized) Estimate, so a flat count across
// repeated evaluations proves the memo cache short-circuits simulation.
type countingProfile struct {
	inner sim.TrainProfile
	calls int64
}

func (c *countingProfile) IterDist(g int) stats.Dist {
	atomic.AddInt64(&c.calls, 1)
	return c.inner.IterDist(g)
}

func TestMemoCacheAvoidsResimulation(t *testing.T) {
	prof := &countingProfile{inner: sim.ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}}
	s := spec.MustSHA(16, 2, 16, 2)
	sm, err := sim.New(s, prof, sim.DefaultCloudProfile(), 10, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	p := &Planner{Sim: sm, Deadline: 1200, MaxGPUs: 32}
	plan := sim.Uniform(16, s.NumStages())

	first, err := p.estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	after := atomic.LoadInt64(&prof.calls)
	if after == 0 {
		t.Fatal("estimate did not consult the profile; counting is broken")
	}
	second, err := p.estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&prof.calls); got != after {
		t.Fatalf("second estimate re-simulated: %d profile calls, want %d", got, after)
	}
	if first != second {
		t.Fatalf("memoized estimate %+v != original %+v", second, first)
	}
}

// TestMemoConcurrentAccess hammers the memo from many goroutines over a
// small plan set (race-detector target for the cache's locking).
func TestMemoConcurrentAccess(t *testing.T) {
	p := detPlanner(t, 2)
	stages := p.Sim.Spec().NumStages()
	plans := []sim.Plan{sim.Uniform(4, stages), sim.Uniform(8, stages), sim.Uniform(16, stages)}
	want := make([]sim.Estimate, len(plans))
	for i, pl := range plans {
		est, err := p.estimate(pl)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = est
	}
	var wg sync.WaitGroup
	const goroutines = 8
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				i := (g + r) % len(plans)
				got, err := p.estimate(plans[i])
				if err != nil {
					t.Error(err)
					return
				}
				if got != want[i] {
					t.Errorf("plan %v: %+v != %+v", plans[i], got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
