package planner

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// resnetSim builds a deterministic-overhead simulator over a ResNet-50
// style job for planner tests.
func resnetSim(t *testing.T, s *spec.ExperimentSpec, samples int, seed uint64) *sim.Simulator {
	t.Helper()
	m := model.ResNet50()
	m.IterNoiseStd = 0.1
	prof := sim.ModelTrainProfile{Model: m, Batch: 512, GPUsPerNode: 4}
	cp := sim.DefaultCloudProfile()
	cp.Pricing.MinChargeSeconds = 0
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	sm, err := sim.New(s, prof, cp, samples, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func TestFairStepDown(t *testing.T) {
	cases := []struct {
		alloc, trials int
		want          int
		ok            bool
	}{
		{20, 10, 10, true}, // next multiple below
		{10, 10, 5, true},  // largest factor below
		{5, 10, 2, true},
		{2, 10, 1, true},
		{1, 10, 0, false}, // nothing below 1
		{16, 4, 12, true}, // multiples of 4: 12
		{4, 4, 2, true},
		{3, 4, 2, true},
		{7, 3, 6, true},
		{2, 1, 1, true}, // everything divides 1
	}
	for _, c := range cases {
		got, ok := fairStepDown(c.alloc, c.trials)
		if got != c.want || ok != c.ok {
			t.Errorf("fairStepDown(%d,%d) = (%d,%v), want (%d,%v)",
				c.alloc, c.trials, got, ok, c.want, c.ok)
		}
	}
}

func TestGenerateCandidates(t *testing.T) {
	s := spec.Empty().AddStage(4, 10).AddStage(2, 20)
	cur := sim.NewPlan(8, 4)
	cands := generateCandidates(cur, s, 4)
	if len(cands) != 2 {
		t.Fatalf("got %d candidates", len(cands))
	}
	// Stage 0 (4 trials): 8 -> 4. Stage 1 (2 trials): 4 -> 2.
	if !cands[0].Equal(sim.NewPlan(4, 4)) {
		t.Errorf("candidate 0 = %v", cands[0])
	}
	if !cands[1].Equal(sim.NewPlan(8, 2)) {
		t.Errorf("candidate 1 = %v", cands[1])
	}
	// Floor plan yields no candidates.
	if got := generateCandidates(sim.NewPlan(1, 1), s, 4); len(got) != 0 {
		t.Errorf("floor plan produced candidates: %v", got)
	}
}

func TestMarginalBenefit(t *testing.T) {
	cur := sim.Estimate{JCT: 100, Cost: 50}
	// Cheaper and slower: finite positive benefit.
	b := marginalBenefit(cur, sim.Estimate{JCT: 120, Cost: 40})
	if math.Abs(b-0.5) > 1e-12 {
		t.Errorf("benefit = %v, want 0.5", b)
	}
	// Cheaper and faster: infinitely good.
	if b := marginalBenefit(cur, sim.Estimate{JCT: 90, Cost: 40}); !math.IsInf(b, 1) {
		t.Errorf("benefit = %v, want +inf", b)
	}
	// More expensive: infinitely bad.
	if b := marginalBenefit(cur, sim.Estimate{JCT: 120, Cost: 60}); !math.IsInf(b, -1) {
		t.Errorf("benefit = %v, want -inf", b)
	}
}

func TestPlannerValidate(t *testing.T) {
	p := &Planner{}
	if _, err := p.PlanStatic(); err == nil {
		t.Error("nil simulator accepted")
	}
	p.Sim = resnetSim(t, spec.MustSHA(8, 2, 8, 2), 3, 1)
	if _, err := p.PlanStatic(); err == nil {
		t.Error("zero deadline accepted")
	}
}

func TestPlanStaticFeasible(t *testing.T) {
	s := spec.MustSHA(16, 4, 32, 2)
	sm := resnetSim(t, s, 5, 2)
	p := &Planner{Sim: sm, Deadline: 3600}
	res, err := p.PlanStatic()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsStatic() {
		t.Fatalf("static planner returned elastic plan %v", res.Plan)
	}
	if res.Estimate.JCT > 3600 {
		t.Fatalf("plan violates deadline: %v", res.Estimate.JCT)
	}
}

func TestPlanStaticTighterDeadlineCostsMore(t *testing.T) {
	s := spec.MustSHA(16, 4, 32, 2)
	loose := &Planner{Sim: resnetSim(t, s, 5, 3), Deadline: 7200}
	tight := &Planner{Sim: resnetSim(t, s, 5, 3), Deadline: 150}
	rl, err := loose.PlanStatic()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tight.PlanStatic()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Plan.Max() <= rl.Plan.Max() {
		t.Errorf("tight deadline cluster %v not larger than loose %v", rt.Plan, rl.Plan)
	}
	if rt.Estimate.Cost < rl.Estimate.Cost {
		t.Errorf("tight deadline cheaper (%v) than loose (%v)", rt.Estimate.Cost, rl.Estimate.Cost)
	}
}

func TestPlanStaticInfeasible(t *testing.T) {
	s := spec.MustSHA(16, 4, 32, 2)
	p := &Planner{Sim: resnetSim(t, s, 3, 4), Deadline: 1, MaxGPUs: 32}
	if _, err := p.PlanStatic(); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanElasticNeverWorseThanStatic(t *testing.T) {
	// The structural guarantee of §4.3: the optimizer is warm-started
	// with the optimal static allocation, so its output can only match
	// or beat it in predicted cost.
	s := spec.MustSHA(32, 2, 32, 2)
	for _, deadline := range []float64{1200, 2400, 4800} {
		sm := resnetSim(t, s, 5, 5)
		p := &Planner{Sim: sm, Deadline: deadline}
		st, err := p.PlanStatic()
		if err != nil {
			t.Fatalf("deadline %v: %v", deadline, err)
		}
		el, err := p.PlanElastic()
		if err != nil {
			t.Fatalf("deadline %v: %v", deadline, err)
		}
		if el.Estimate.Cost > st.Estimate.Cost+1e-9 {
			t.Errorf("deadline %v: elastic %v worse than static %v",
				deadline, el.Estimate.Cost, st.Estimate.Cost)
		}
		if el.Estimate.JCT > deadline {
			t.Errorf("deadline %v: elastic plan violates constraint (%v)", deadline, el.Estimate.JCT)
		}
	}
}

func TestPlanElasticShrinksLaterStages(t *testing.T) {
	// For a sub-linearly scaling model with a long survivor tail, the
	// elastic plan should allocate no more to late stages than to early
	// ones.
	s := spec.MustSHA(64, 4, 508, 2)
	sm := resnetSim(t, s, 5, 6)
	p := &Planner{Sim: sm, Deadline: 900}
	res, err := p.PlanElastic()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.IsStatic() {
		t.Fatalf("elastic plan degenerated to static %v under a tight deadline", res.Plan)
	}
	first, last := res.Plan.Alloc[0], res.Plan.Alloc[len(res.Plan.Alloc)-1]
	if last > first {
		t.Errorf("late stage allocated more than early: %v", res.Plan)
	}
}

func TestPlanElasticBeatsStaticMeaningfully(t *testing.T) {
	// Under a tight deadline the paper reports ~2x savings on jobs whose
	// late stages dominate; require at least 10% here to confirm the
	// optimizer is actually moving.
	s := spec.MustSHA(64, 4, 508, 2)
	sm := resnetSim(t, s, 5, 7)
	p := &Planner{Sim: sm, Deadline: 900, MaxGPUs: 256}
	st, err := p.PlanStatic()
	if err != nil {
		t.Fatal(err)
	}
	el, err := p.PlanElastic()
	if err != nil {
		t.Fatal(err)
	}
	if el.Estimate.Cost > 0.9*st.Estimate.Cost {
		t.Errorf("elastic %v saved <10%% over static %v (plans %v vs %v)",
			el.Estimate.Cost, st.Estimate.Cost, el.Plan, st.Plan)
	}
}

func TestPlanNaiveElastic(t *testing.T) {
	s := spec.MustSHA(16, 4, 32, 2)
	sm := resnetSim(t, s, 5, 8)
	p := &Planner{Sim: sm, Deadline: 3600, MaxGPUs: 128}
	res, err := p.PlanNaiveElastic()
	if err != nil {
		t.Fatal(err)
	}
	// Fixed per-trial allocation: alloc[i] / trials[i] constant.
	k := res.Plan.Alloc[0] / s.Stage(0).Trials
	for i := range res.Plan.Alloc {
		if res.Plan.Alloc[i] != s.Stage(i).Trials*k {
			t.Fatalf("plan %v not fixed-per-trial", res.Plan)
		}
	}
	if res.Estimate.JCT > 3600 {
		t.Fatalf("naive plan violates deadline")
	}
}

func TestPlanNaiveElasticInfeasible(t *testing.T) {
	s := spec.MustSHA(16, 4, 32, 2)
	p := &Planner{Sim: resnetSim(t, s, 3, 9), Deadline: 1, MaxGPUs: 64}
	if _, err := p.PlanNaiveElastic(); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// Property: every candidate differs from the current plan in exactly one
// stage, by a fair decrement.
func TestQuickCandidatesWellFormed(t *testing.T) {
	s := spec.MustSHA(32, 2, 16, 2)
	f := func(raw []uint8) bool {
		if len(raw) < s.NumStages() {
			return true
		}
		alloc := make([]int, s.NumStages())
		for i := range alloc {
			alloc[i] = int(raw[i]%64) + 1
		}
		cur := sim.Plan{Alloc: alloc}
		for _, cand := range generateCandidates(cur, s, 4) {
			diff := 0
			for i := range cand.Alloc {
				if cand.Alloc[i] != cur.Alloc[i] {
					diff++
					if cand.Alloc[i] >= cur.Alloc[i] || cand.Alloc[i] < 1 {
						return false
					}
				}
			}
			if diff != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
