package planner

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// InstanceChoice is one instance type's best plan under a deadline.
type InstanceChoice struct {
	Instance cloud.InstanceType
	Result   Result
	// Feasible is false when no plan on this type meets the deadline
	// within the resource cap; Result is then zero.
	Feasible bool
}

// InstanceSelection is the outcome of SelectInstanceType.
type InstanceSelection struct {
	// Best is the cheapest feasible choice.
	Best InstanceChoice
	// Choices holds every evaluated type, in catalog-name order.
	Choices []InstanceChoice
}

// ProfileBuilder constructs the training profile for a candidate worker
// type (iteration latencies depend on GPUs-per-node through the placement
// spread). sim.ModelTrainProfile curried over a model and batch is the
// usual implementation.
type ProfileBuilder func(it cloud.InstanceType) sim.TrainProfile

// SelectInstanceType extends the planner across the provider's catalog:
// the paper assumes the user picks the worker instance type (§3), but
// notes the rich price/performance trade-off space (§2.2, citing Ernest
// and CherryPick). This routine compiles the elastic plan for every
// GPU-bearing type in the catalog and returns the cheapest feasible
// combination of type and plan.
//
// The trade-off it navigates: bigger nodes co-locate larger gangs (less
// cross-node all-reduce) but provision in coarser, more expensive units;
// small nodes are fine-grained but fragment multi-GPU trials.
func SelectInstanceType(
	catalog *cloud.Catalog,
	s *spec.ExperimentSpec,
	profiles ProfileBuilder,
	base sim.CloudProfile,
	deadline float64,
	samples int,
	seed uint64,
	maxGPUs int,
) (*InstanceSelection, error) {
	if catalog == nil || profiles == nil {
		return nil, fmt.Errorf("planner: nil catalog or profile builder")
	}
	sel := &InstanceSelection{}
	found := false
	for _, name := range catalog.Names() {
		it, err := catalog.Lookup(name)
		if err != nil {
			return nil, err
		}
		if it.GPUs < 1 {
			continue // CPU-only coordination tier
		}
		cp := base
		cp.Instance = it
		sm, err := sim.New(s, profiles(it), cp, samples, stats.NewRNG(seed))
		if err != nil {
			return nil, err
		}
		p := &Planner{Sim: sm, Deadline: deadline, MaxGPUs: maxGPUs}
		res, err := p.PlanElastic()
		choice := InstanceChoice{Instance: it}
		switch err {
		case nil:
			choice.Result = res
			choice.Feasible = true
		case ErrInfeasible:
			// Recorded as infeasible; other types may still work.
		default:
			return nil, fmt.Errorf("planner: instance %s: %w", name, err)
		}
		sel.Choices = append(sel.Choices, choice)
		if choice.Feasible && (!found || choice.Result.Estimate.Cost < sel.Best.Result.Estimate.Cost) {
			sel.Best = choice
			found = true
		}
	}
	if !found {
		return nil, ErrInfeasible
	}
	return sel, nil
}
