package planner

// This file implements the two-phase frontier search: every candidate set
// is first batch-scored by the simulator's analytic moment-propagation
// evaluator (microseconds per plan, no sampling), pruned down to a
// shortlist with a conservative safety margin, and only the shortlist is
// handed to the Monte-Carlo estimator. The margin combines the
// Monte-Carlo standard error the sampling estimate would carry
// (κ·σ/√samples) with a relative allowance for the analytic pass's
// moment-matching bias, so on the planner corpus the pruned search
// selects exactly the plan the exhaustive search would (asserted by the
// shortlist-safety tests). Profiles whose latencies lack finite second
// moments simply score as unprunable and flow to Monte-Carlo unchanged.

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/sim"
)

const (
	// pruneKappa is the prune margin in Monte-Carlo standard errors: a
	// candidate is dropped only when the analytic estimate puts it this
	// many standard errors past a bound.
	pruneKappa = 6.0
	// pruneBias is the relative allowance for the analytic estimator's
	// moment-matching bias (the dag-level validation bounds the per-stage
	// mean error near 1%; 2% is conservative for whole plans).
	pruneBias = 0.02
	// defaultShortlistK is the minimum number of candidates kept for the
	// Monte-Carlo phase when pruning would cut deeper.
	defaultShortlistK = 8
)

// frontierScreen wraps one analytic evaluator for a single search. A nil
// screen disables pruning (every candidate goes to Monte-Carlo). It is
// not safe for concurrent use; scoring is so cheap it runs serially
// before the concurrent Monte-Carlo fan-out.
type frontierScreen struct {
	eval  *sim.AnalyticEval
	sqrtN float64
}

// newScreen returns the search's analytic screen, or nil when pruning is
// disabled. Under the analytic estimator the screen is also nil: phase
// two already evaluates candidates analytically (memoized), so a scoring
// pre-pass would compute every moment twice to save nothing. The
// evaluator comes from the simulator's pool, so repeated searches over
// one simulator score warm frontiers at map-probe cost; callers must
// release the screen when the search returns.
func (p *Planner) newScreen() *frontierScreen {
	if p.DisableAnalyticPrune || p.Sim.Estimator() == sim.EstimatorAnalytic {
		return nil
	}
	return &frontierScreen{
		eval:  p.Sim.AcquireAnalyticEval(),
		sqrtN: math.Sqrt(float64(p.Sim.Samples())),
	}
}

// release returns the screen's evaluator to the simulator's pool. Safe
// on a nil screen.
func (s *frontierScreen) release(p *Planner) {
	if s != nil {
		p.Sim.ReleaseAnalyticEval(s.eval)
		s.eval = nil
	}
}

// score analytically evaluates plan. ok=false means the candidate cannot
// be pruned — unsupported moments, or an invalid plan whose error the
// Monte-Carlo path will surface — and must be estimated by sampling.
func (s *frontierScreen) score(plan sim.Plan) (sim.Estimate, bool) {
	if s == nil {
		return sim.Estimate{}, false
	}
	est, ok, err := s.eval.Estimate(plan)
	return est, err == nil && ok
}

// jctMargin is the safety slack around an analytic JCT: the sampling
// estimator's standard error at the simulator's budget plus the bias
// allowance.
func (s *frontierScreen) jctMargin(e sim.Estimate) float64 {
	return pruneKappa*e.JCTStd/s.sqrtN + pruneBias*e.JCT
}

// costMargin is the safety slack around an analytic cost.
func (s *frontierScreen) costMargin(e sim.Estimate) float64 {
	return pruneKappa*e.CostStd/s.sqrtN + pruneBias*e.Cost
}

// shortlistK returns the configured Monte-Carlo shortlist floor.
func (p *Planner) shortlistK() int {
	if p.ShortlistK > 0 {
		return p.ShortlistK
	}
	return defaultShortlistK
}

// pruneEnumeration analytically prunes a one-dimensional enumeration
// frontier in place, clearing keep[i] for candidates that provably cannot
// win: minimize cost subject to JCT ≤ bound when objJCT is false (the
// static warm-start enumeration), minimize JCT subject to cost ≤ bound
// when true (the budgeted dual). A candidate is dropped when it is surely
// infeasible (constraint minus margin past the bound) or surely dominated
// (objective minus margin above the best surely-feasible candidate's
// objective plus margin). At least shortlistK survivors are kept — the
// cheapest dropped candidates by analytic objective are restored — so the
// Monte-Carlo phase always sees a frontier even under aggressive margins.
func (p *Planner) pruneEnumeration(scr *frontierScreen, cands []sim.Plan, keep []bool, bound float64, objJCT bool) {
	if scr == nil || !p.worthScreening(keep) {
		return
	}
	n := len(cands)
	aests := make([]sim.Estimate, n)
	aok := make([]bool, n)
	for i := range cands {
		if keep[i] {
			aests[i], aok[i] = scr.score(cands[i])
		}
	}
	split := func(e sim.Estimate) (obj, objM, con, conM float64) {
		if objJCT {
			return e.JCT, scr.jctMargin(e), e.Cost, scr.costMargin(e)
		}
		return e.Cost, scr.costMargin(e), e.JCT, scr.jctMargin(e)
	}
	// Upper bound on the optimum: the best surely-feasible candidate's
	// objective, overestimated by its own margin.
	bestUp := math.Inf(1)
	for i := range cands {
		if !keep[i] || !aok[i] {
			continue
		}
		obj, objM, con, conM := split(aests[i])
		if con+conM <= bound && obj+objM < bestUp {
			bestUp = obj + objM
		}
	}
	var dropped []int
	for i := range cands {
		if !keep[i] || !aok[i] {
			continue
		}
		obj, objM, con, conM := split(aests[i])
		if con-conM > bound || obj-objM > bestUp {
			keep[i] = false
			dropped = append(dropped, i)
		}
	}
	p.restoreShortlist(keep, dropped, func(i int) float64 { obj, _, _, _ := split(aests[i]); return obj })
}

// pruneDescentStep analytically prunes one greedy candidate set in place:
// a candidate whose JCT surely violates the deadline, or whose cost is
// surely no better than the current plan's, can never be the selected
// step (its benefit is −Inf, unselectable, and a sub-Delta improvement
// terminates the descent identically). minimize=true mirrors the dual
// ascent, where the roles of cost and JCT swap: the constraint is the
// budget and a candidate surely not faster than the current plan is
// unselectable.
//
// Unlike the enumeration prune, no shortlist is restored: the descent
// needs no minimum frontier (an empty survivor set simply terminates the
// step, exactly as the exhaustive search would after estimating and
// rejecting every candidate), so every margin-certified drop converts
// directly into a skipped Monte-Carlo evaluation.
func (p *Planner) pruneDescentStep(scr *frontierScreen, cands []sim.Plan, keep []bool, cur Result, bound float64, minimizeJCT bool) {
	if scr == nil {
		return
	}
	for i := range cands {
		est, ok := scr.score(cands[i])
		if !ok {
			continue
		}
		var drop bool
		if minimizeJCT {
			drop = est.Cost-scr.costMargin(est) > bound ||
				est.JCT-scr.jctMargin(est) >= cur.Estimate.JCT
		} else {
			drop = est.JCT-scr.jctMargin(est) > bound ||
				est.Cost-scr.costMargin(est) >= cur.Estimate.Cost
		}
		if drop {
			keep[i] = false
			atomic.AddInt64(&p.prunedCands, 1)
		}
	}
}

// worthScreening reports whether a shortlist-restoring prune can
// possibly shrink the Monte-Carlo set: with at most shortlistK live
// candidates the restore step would re-admit every drop, so scoring the
// frontier is a provable no-op and is skipped outright.
func (p *Planner) worthScreening(keep []bool) bool {
	live := 0
	want := p.shortlistK()
	for _, k := range keep {
		if k {
			live++
			if live > want {
				return true
			}
		}
	}
	return false
}

// restoreShortlist re-adds the best dropped candidates (by analytic
// objective, ties broken by frontier order) until at least shortlistK
// candidates survive. Restoring can only widen the Monte-Carlo phase, so
// it preserves the safety of every individual prune.
func (p *Planner) restoreShortlist(keep []bool, dropped []int, obj func(int) float64) {
	if len(dropped) == 0 {
		return
	}
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	want := p.shortlistK()
	if kept >= want {
		atomic.AddInt64(&p.prunedCands, int64(len(dropped)))
		return
	}
	sort.SliceStable(dropped, func(a, b int) bool { return obj(dropped[a]) < obj(dropped[b]) })
	for _, i := range dropped {
		if kept >= want {
			break
		}
		keep[i] = true
		kept++
	}
	remaining := 0
	for _, i := range dropped {
		if !keep[i] {
			remaining++
		}
	}
	atomic.AddInt64(&p.prunedCands, int64(remaining))
}

// PrunedCandidates reports how many frontier candidates the analytic
// screen excluded from Monte-Carlo estimation across the search so far.
func (p *Planner) PrunedCandidates() int64 { return atomic.LoadInt64(&p.prunedCands) }
