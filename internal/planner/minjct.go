package planner

import (
	"math"

	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
)

// PlanMinJCT solves the dual problem the paper notes its techniques
// extend to (§2, footnote 1): minimize job completion time subject to a
// cost budget in dollars.
//
// The search mirrors Algorithm 2 with the roles of the objectives
// swapped: the warm start is the JCT-optimal static allocation whose
// predicted cost fits the budget, and the greedy loop *increments*
// per-stage allocations — choosing, each step, the candidate with the
// largest JCT reduction per added dollar — until the budget is exhausted
// or no candidate improves JCT meaningfully.
func (p *Planner) PlanMinJCT(budget float64) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if budget <= 0 {
		return Result{}, ErrInfeasible
	}
	stages := p.Sim.Spec().NumStages()
	scr := p.newScreen()
	defer scr.release(p)

	// Warm start: the fastest static allocation within budget. The
	// frontier is analytically screened first (minimize JCT subject to
	// the budget), then sizes are evaluated concurrently and reduced in
	// ascending order, matching the serial enumeration exactly.
	n := p.maxGPUs()
	cands := make([]sim.Plan, n)
	keep := make([]bool, n)
	for i := range cands {
		cands[i] = sim.Uniform(i+1, stages)
		keep[i] = true
	}
	p.pruneEnumeration(scr, cands, keep, budget, true)
	ests := make([]sim.Estimate, n)
	errs := make([]error, n)
	par.ForEach(n, par.Workers(p.Workers), func(i int) {
		if keep[i] {
			ests[i], errs[i] = p.estimate(cands[i])
		}
	})
	best := Result{}
	found := false
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return Result{}, errs[i]
		}
		if !keep[i] || ests[i].Cost > budget {
			continue
		}
		if !found || ests[i].JCT < best.Estimate.JCT {
			best = Result{Plan: cands[i], Estimate: ests[i]}
			found = true
		}
	}
	if !found {
		return Result{}, ErrInfeasible
	}

	cur := best
	sp := p.Sim.Spec()
	gpn := p.Sim.Cloud().Instance.GPUs
	maxGPUs := p.maxGPUs()
	for {
		cands := generateUpCandidates(cur.Plan, sp, gpn, maxGPUs)
		if len(cands) == 0 {
			break
		}
		ckeep := make([]bool, len(cands))
		for i := range ckeep {
			ckeep[i] = true
		}
		p.pruneDescentStep(scr, cands, ckeep, cur, budget, true)
		candEsts := make([]sim.Estimate, len(cands))
		candErrs := make([]error, len(cands))
		par.ForEach(len(cands), par.Workers(p.Workers), func(i int) {
			if ckeep[i] {
				candEsts[i], candErrs[i] = p.estimate(cands[i])
			}
		})
		bestIdx := -1
		bestBenefit := math.Inf(-1)
		var bestEst sim.Estimate
		for i := range cands {
			if candErrs[i] != nil {
				return Result{}, candErrs[i]
			}
			if !ckeep[i] {
				continue
			}
			est := candEsts[i]
			if est.Cost > budget {
				continue
			}
			benefit := jctBenefit(cur.Estimate, est)
			if benefit > bestBenefit {
				bestIdx, bestBenefit, bestEst = i, benefit, est
			}
		}
		if bestIdx < 0 {
			break // every candidate blows the budget
		}
		if cur.Estimate.JCT-bestEst.JCT < 1 { // < 1 s of improvement
			break
		}
		cur = Result{Plan: cands[bestIdx], Estimate: bestEst}
	}
	if cur.Estimate.JCT < best.Estimate.JCT {
		best = cur
	}
	return best, nil
}

// jctBenefit mirrors Equation 1 for the dual: JCT reduction per dollar of
// added cost. Candidates that also reduce cost are unboundedly good;
// candidates that slow the job are unboundedly bad.
func jctBenefit(cur, cand sim.Estimate) float64 {
	dJCT := cur.JCT - cand.JCT
	dCost := cand.Cost - cur.Cost
	if dJCT <= 0 {
		return math.Inf(-1)
	}
	if dCost <= 0 {
		return math.Inf(1)
	}
	return dJCT / dCost
}

// generateUpCandidates produces per-stage increments of the current plan:
// the next higher fair value, and the smallest fair value that adds a
// whole instance (the ascent mirror of generateCandidates). The
// loop-invariant spec, instance size and cap are passed in so the greedy
// loop resolves them once rather than per iteration.
func generateUpCandidates(cur sim.Plan, sp *spec.ExperimentSpec, gpn, maxGPUs int) []sim.Plan {
	var out []sim.Plan
	add := func(i, v int) {
		for _, existing := range out {
			if existing.Equal(withAlloc(cur, i, v)) {
				return
			}
		}
		out = append(out, withAlloc(cur, i, v))
	}
	for i := range cur.Alloc {
		trials := sp.Stage(i).Trials
		if v, ok := fairStepUp(cur.Alloc[i], trials, maxGPUs); ok {
			add(i, v)
		}
		if gpn > 0 {
			curInstances := (cur.Alloc[i] + gpn - 1) / gpn
			target := curInstances*gpn + 1 // first allocation on a new instance
			if v, ok := fairCeil(target, trials, maxGPUs); ok && v > cur.Alloc[i] {
				add(i, v)
			}
		}
	}
	return out
}

// fairStepUp returns the smallest allocation strictly above alloc (and at
// most max) that divides trials evenly, and whether one exists.
func fairStepUp(alloc, trials, max int) (int, bool) {
	return fairCeil(alloc+1, trials, max)
}

// fairCeil returns the smallest allocation v in [min, max] that is a
// factor or multiple of trials, and whether one exists.
func fairCeil(min, trials, max int) (int, bool) {
	for v := min; v <= max; v++ {
		if v%trials == 0 || trials%v == 0 {
			return v, true
		}
	}
	return 0, false
}
