package planner

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/spec"
)

// fair reports whether allocation v divides evenly among trials: either a
// multiple (each trial gets v/trials GPUs) or a factor (trials queue in
// equal waves).
func fair(v, trials int) bool {
	return v%trials == 0 || trials%v == 0
}

// TestQuickFairFloor: fairFloor(max, trials) always succeeds for max >= 1
// (1 is fair for every trial count) and returns the LARGEST fair value not
// exceeding max.
func TestQuickFairFloor(t *testing.T) {
	f := func(maxRaw uint16, trialsRaw uint8) bool {
		max := int(maxRaw%512) + 1
		trials := int(trialsRaw%64) + 1
		v, ok := fairFloor(max, trials)
		if !ok {
			return false // must exist: v=1 is always fair
		}
		if v < 1 || v > max || !fair(v, trials) {
			return false
		}
		for w := v + 1; w <= max; w++ {
			if fair(w, trials) {
				return false // v was not maximal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickFairStepDown: the step-down is strictly below the current
// allocation, fair, maximal, and never drops below 1 GPU; alloc = 1 has no
// step-down.
func TestQuickFairStepDown(t *testing.T) {
	if _, ok := fairStepDown(1, 5); ok {
		t.Error("fairStepDown(1, _) produced a value below 1 GPU")
	}
	f := func(allocRaw uint16, trialsRaw uint8) bool {
		alloc := int(allocRaw%511) + 2 // >= 2 so a step-down exists
		trials := int(trialsRaw%64) + 1
		v, ok := fairStepDown(alloc, trials)
		if !ok {
			return false
		}
		if v < 1 || v >= alloc || !fair(v, trials) {
			return false
		}
		for w := v + 1; w < alloc; w++ {
			if fair(w, trials) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// quickSpec builds a small SHA spec from fuzz bytes.
func quickSpec(t *testing.T, nRaw uint8) *spec.ExperimentSpec {
	t.Helper()
	n := int(nRaw%31) + 2
	s, err := spec.SHA(spec.SHAParams{N: n, R: 2, MaxR: 16, Eta: 2})
	if err != nil {
		t.Fatalf("spec.SHA(%d): %v", n, err)
	}
	return s
}

// TestQuickGenerateCandidatesInvariants: every candidate (a) keeps the
// plan's stage count, (b) changes exactly one stage, (c) strictly
// decreases that stage — so candidates can never exceed the search cap the
// current plan respects — (d) stays >= 1 GPU, and (e) lands on a fair
// allocation for the stage's trial count.
func TestQuickGenerateCandidatesInvariants(t *testing.T) {
	const maxGPUs = 64
	f := func(nRaw uint8, allocRaw [8]uint16, gpnRaw uint8) bool {
		sp := quickSpec(t, nRaw)
		gpn := int(gpnRaw % 9) // 0 disables the instance step
		cur := sim.Plan{Alloc: make([]int, sp.NumStages())}
		for i := range cur.Alloc {
			cur.Alloc[i] = int(allocRaw[i%len(allocRaw)]%maxGPUs) + 1
		}
		for _, cand := range generateCandidates(cur, sp, gpn) {
			if len(cand.Alloc) != len(cur.Alloc) {
				return false
			}
			changed := 0
			for i := range cand.Alloc {
				if cand.Alloc[i] == cur.Alloc[i] {
					continue
				}
				changed++
				v := cand.Alloc[i]
				if v >= cur.Alloc[i] || v < 1 || v > maxGPUs {
					return false
				}
				if !fair(v, sp.Stage(i).Trials) {
					return false
				}
			}
			if changed != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickGenerateCandidatesInstanceStep: whenever a stage occupies more
// than one instance and a fair allocation exists at or below the next
// instance boundary, some candidate releases at least one whole instance —
// the property that keeps the greedy search from stalling on sub-instance
// decrements under per-instance billing.
func TestQuickGenerateCandidatesInstanceStep(t *testing.T) {
	f := func(nRaw uint8, allocRaw [8]uint16, gpnRaw uint8) bool {
		sp := quickSpec(t, nRaw)
		gpn := int(gpnRaw%8) + 1
		cur := sim.Plan{Alloc: make([]int, sp.NumStages())}
		for i := range cur.Alloc {
			cur.Alloc[i] = int(allocRaw[i%len(allocRaw)]%64) + 1
		}
		cands := generateCandidates(cur, sp, gpn)
		for i := range cur.Alloc {
			curInstances := (cur.Alloc[i] + gpn - 1) / gpn
			if curInstances <= 1 {
				continue
			}
			target := (curInstances - 1) * gpn
			v, ok := fairFloor(target, sp.Stage(i).Trials)
			if !ok || v >= cur.Alloc[i] {
				continue
			}
			released := false
			for _, cand := range cands {
				ci := (cand.Alloc[i] + gpn - 1) / gpn
				if cand.Alloc[i] < cur.Alloc[i] && ci < curInstances {
					released = true
					break
				}
			}
			if !released {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNaiveElasticNonIncreasing: the naive-elastic plan family keeps
// per-stage allocations proportional to the (non-increasing) SHA trial
// counts, so allocations must be non-increasing across stages — the shape
// invariant the spec requires of that policy.
func TestQuickNaiveElasticNonIncreasing(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8) bool {
		sp := quickSpec(t, nRaw)
		k := int(kRaw%4) + 1
		prev := -1
		for i := 0; i < sp.NumStages(); i++ {
			alloc := sp.Stage(i).Trials * k
			if prev >= 0 && alloc > prev {
				return false
			}
			prev = alloc
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
