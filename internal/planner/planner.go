// Package planner generates resource allocation plans for hyperparameter
// tuning jobs under a time constraint (§4.3).
//
// Three policies are provided:
//
//   - Static: the baseline from §3.2 — enumerate static cluster sizes and
//     return the cost-optimal one whose predicted JCT meets the deadline.
//   - NaiveElastic: the prior-work baseline from §6.3.1 — the cluster is
//     resized per stage but every trial keeps a fixed GPU allocation
//     across stages.
//   - Elastic: RubberBand's greedy optimizer (Algorithm 2) — warm-started
//     from the cost-optimal static allocation (and configurable multiples
//     of it), it iteratively decrements per-stage allocations, selecting
//     the candidate with the highest cost-marginal benefit (Equation 1)
//     until no candidate improves cost or all violate the deadline.
//
// All policies evaluate candidates exclusively through the simulator
// (package sim), treating it as a black box.
package planner

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/spec"
)

// Result is a planning outcome: the chosen plan and its predicted
// performance.
type Result struct {
	Plan     sim.Plan
	Estimate sim.Estimate
}

// Planner searches the allocation-plan space for one job.
type Planner struct {
	// Sim predicts JCT and cost for candidate plans.
	Sim *sim.Simulator
	// Deadline is the job's time constraint in seconds.
	Deadline float64
	// MaxGPUs caps the static enumeration and therefore the peak cluster
	// size any plan may request. Zero selects a default of
	// max(64, 4 × first-stage trials).
	MaxGPUs int
	// Delta is the minimum predicted cost improvement (in dollars) for
	// the greedy loop to continue. Zero selects a small default.
	Delta float64
	// WarmStartMultipliers scales the static-optimal warm start to widen
	// the search (§4.3): the optimizer never increases allocations, so
	// each multiplier bounds a different region. Nil selects {1, 2, 3}.
	WarmStartMultipliers []int
	// DisableInstanceStep removes the instance-boundary candidates from
	// greedy generation, leaving only the paper's plain fair decrement.
	// Under per-instance billing this stalls the search on sub-instance
	// steps; exposed for the design-choice ablation.
	DisableInstanceStep bool
	// RawCostSelection selects greedy candidates by raw predicted cost
	// reduction instead of Equation 1's JCT-normalized marginal benefit;
	// exposed for the design-choice ablation.
	RawCostSelection bool
}

// ErrInfeasible is returned when no plan within MaxGPUs meets the deadline.
var ErrInfeasible = fmt.Errorf("planner: no feasible plan within resource cap")

func (p *Planner) maxGPUs() int {
	if p.MaxGPUs > 0 {
		return p.MaxGPUs
	}
	n := 4 * p.Sim.Spec().TotalTrials()
	if n < 64 {
		n = 64
	}
	return n
}

func (p *Planner) delta() float64 {
	if p.Delta > 0 {
		return p.Delta
	}
	return 0.01
}

func (p *Planner) warmStarts() []int {
	if len(p.WarmStartMultipliers) > 0 {
		return p.WarmStartMultipliers
	}
	return []int{1, 2, 3}
}

func (p *Planner) validate() error {
	if p.Sim == nil {
		return fmt.Errorf("planner: nil simulator")
	}
	if p.Deadline <= 0 {
		return fmt.Errorf("planner: non-positive deadline %v", p.Deadline)
	}
	return nil
}

// PlanStatic finds the cost-optimal static allocation meeting the
// deadline by one-dimensional enumeration (the warm-start procedure of
// §4.3 and the paper's fixed-cluster baseline).
func (p *Planner) PlanStatic() (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	stages := p.Sim.Spec().NumStages()
	best := Result{}
	found := false
	for g := 1; g <= p.maxGPUs(); g++ {
		// The analytic mean JCT ignores provisioning overheads and
		// straggler inflation, so it lower-bounds the estimate: anything
		// already over the deadline cannot become feasible.
		if p.Sim.StaticClusterJCT(g) > p.Deadline {
			continue
		}
		est, err := p.Sim.Estimate(sim.Uniform(g, stages))
		if err != nil {
			return Result{}, err
		}
		if est.JCT > p.Deadline {
			continue
		}
		if !found || est.Cost < best.Estimate.Cost {
			best = Result{Plan: sim.Uniform(g, stages), Estimate: est}
			found = true
		}
	}
	if !found {
		return Result{}, ErrInfeasible
	}
	return best, nil
}

// PlanNaiveElastic finds the cost-optimal plan within the constrained
// space of fixed per-trial allocations: each trial holds k GPUs in every
// stage, so the cluster shrinks with the trial count but trials are never
// re-scaled. This reproduces the prior-work baseline the paper compares
// against (§6.3.1).
func (p *Planner) PlanNaiveElastic() (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	sp := p.Sim.Spec()
	best := Result{}
	found := false
	for k := 1; ; k++ {
		if sp.TotalTrials()*k > p.maxGPUs() && k > 1 {
			break
		}
		alloc := make([]int, sp.NumStages())
		for i := range alloc {
			alloc[i] = sp.Stage(i).Trials * k
		}
		plan := sim.Plan{Alloc: alloc}
		est, err := p.Sim.Estimate(plan)
		if err != nil {
			return Result{}, err
		}
		if est.JCT <= p.Deadline && (!found || est.Cost < best.Estimate.Cost) {
			best = Result{Plan: plan, Estimate: est}
			found = true
		}
	}
	if !found {
		return Result{}, ErrInfeasible
	}
	return best, nil
}

// PlanElastic runs RubberBand's greedy optimizer (Algorithm 2) from each
// warm start and returns the cheapest feasible plan found. The result is
// guaranteed to predict no worse than the cost-optimal static allocation,
// since that allocation is itself a warm start.
func (p *Planner) PlanElastic() (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	staticBest, err := p.PlanStatic()
	if err != nil {
		return Result{}, err
	}
	best := staticBest
	for _, mult := range p.warmStarts() {
		warm := staticBest.Plan.Clone()
		for i := range warm.Alloc {
			warm.Alloc[i] *= mult
			if warm.Alloc[i] > p.maxGPUs() {
				warm.Alloc[i] = p.maxGPUs()
			}
		}
		warmEst, err := p.Sim.Estimate(warm)
		if err != nil {
			return Result{}, err
		}
		if warmEst.JCT > p.Deadline {
			// An inflated warm start can blow the deadline through
			// added provisioning overhead; skip it.
			if mult != 1 {
				continue
			}
		}
		res, err := p.optimize(Result{Plan: warm, Estimate: warmEst})
		if err != nil {
			return Result{}, err
		}
		if res.Estimate.JCT <= p.Deadline && res.Estimate.Cost < best.Estimate.Cost {
			best = res
		}
	}
	return best, nil
}

// optimize is the greedy descent of Algorithm 2.
func (p *Planner) optimize(start Result) (Result, error) {
	cur := start
	for {
		gpn := p.Sim.Cloud().Instance.GPUs
		if p.DisableInstanceStep {
			gpn = 0
		}
		cands := generateCandidates(cur.Plan, p.Sim.Spec(), gpn)
		if len(cands) == 0 {
			return cur, nil
		}
		bestIdx := -1
		bestBenefit := math.Inf(-1)
		var bestEst sim.Estimate
		for i, cand := range cands {
			est, err := p.Sim.Estimate(cand)
			if err != nil {
				return Result{}, err
			}
			if est.JCT > p.Deadline {
				continue
			}
			var benefit float64
			if p.RawCostSelection {
				benefit = cur.Estimate.Cost - est.Cost
			} else {
				benefit = marginalBenefit(cur.Estimate, est)
			}
			if benefit > bestBenefit {
				bestIdx, bestBenefit, bestEst = i, benefit, est
			}
		}
		if bestIdx < 0 {
			return cur, nil // every candidate violates the constraint
		}
		if cur.Estimate.Cost-bestEst.Cost < p.delta() {
			return cur, nil // no candidate improves cost enough
		}
		cur = Result{Plan: cands[bestIdx], Estimate: bestEst}
	}
}

// marginalBenefit implements Equation 1: cost reduction normalized by the
// JCT increase it buys. When a candidate improves (or preserves) JCT as
// well as cost, the benefit is unboundedly good; when it worsens cost, it
// is unboundedly bad.
func marginalBenefit(cur, cand sim.Estimate) float64 {
	dCost := cur.Cost - cand.Cost
	dJCT := cand.JCT - cur.JCT
	if dCost <= 0 {
		return math.Inf(-1)
	}
	if dJCT <= 0 {
		return math.Inf(1)
	}
	return dCost / dJCT
}

// generateCandidates produces per-stage decrements of the current plan
// (§4.3). For each stage it proposes (a) the next lower fair value — the
// smallest decrement keeping the stage allocation a factor or multiple of
// the trial count, so resources always divide evenly — and (b) the largest
// fair value that releases at least one whole instance of gpusPerNode
// GPUs. Candidate (b) matters under per-instance billing, where cost only
// falls at instance boundaries: without it the greedy search stalls on
// sub-instance decrements that lengthen the stage without releasing any
// billed machine.
func generateCandidates(cur sim.Plan, sp *spec.ExperimentSpec, gpusPerNode int) []sim.Plan {
	var out []sim.Plan
	add := func(i, v int) {
		for _, existing := range out {
			if existing.Alloc[i] == v && existing.Equal(withAlloc(cur, i, v)) {
				return
			}
		}
		out = append(out, withAlloc(cur, i, v))
	}
	for i := range cur.Alloc {
		trials := sp.Stage(i).Trials
		if v, ok := fairStepDown(cur.Alloc[i], trials); ok {
			add(i, v)
		}
		if gpusPerNode > 0 {
			curInstances := (cur.Alloc[i] + gpusPerNode - 1) / gpusPerNode
			if curInstances > 1 {
				target := (curInstances - 1) * gpusPerNode
				if v, ok := fairFloor(target, trials); ok && v < cur.Alloc[i] {
					add(i, v)
				}
			}
		}
	}
	return out
}

func withAlloc(p sim.Plan, i, v int) sim.Plan {
	q := p.Clone()
	q.Alloc[i] = v
	return q
}

// fairStepDown returns the largest allocation strictly below alloc that is
// a factor or a multiple of trials (so trials always share it evenly), and
// whether one exists. Allocations below 1 GPU do not exist.
func fairStepDown(alloc, trials int) (int, bool) {
	return fairFloor(alloc-1, trials)
}

// fairFloor returns the largest allocation v <= max that divides trials
// evenly (factor or multiple), and whether one exists.
func fairFloor(max, trials int) (int, bool) {
	for v := max; v >= 1; v-- {
		if v%trials == 0 || trials%v == 0 {
			return v, true
		}
	}
	return 0, false
}
