// Package planner generates resource allocation plans for hyperparameter
// tuning jobs under a time constraint (§4.3).
//
// Three policies are provided:
//
//   - Static: the baseline from §3.2 — enumerate static cluster sizes and
//     return the cost-optimal one whose predicted JCT meets the deadline.
//   - NaiveElastic: the prior-work baseline from §6.3.1 — the cluster is
//     resized per stage but every trial keeps a fixed GPU allocation
//     across stages.
//   - Elastic: RubberBand's greedy optimizer (Algorithm 2) — warm-started
//     from the cost-optimal static allocation (and configurable multiples
//     of it), it iteratively decrements per-stage allocations, selecting
//     the candidate with the highest cost-marginal benefit (Equation 1)
//     until no candidate improves cost or all violate the deadline.
//
// All policies evaluate candidates exclusively through the simulator
// (package sim), treating it as a black box.
package planner

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Result is a planning outcome: the chosen plan and its predicted
// performance.
type Result struct {
	Plan     sim.Plan
	Estimate sim.Estimate
}

// Planner searches the allocation-plan space for one job.
type Planner struct {
	// Sim predicts JCT and cost for candidate plans.
	Sim *sim.Simulator
	// Deadline is the job's time constraint in seconds.
	Deadline float64
	// MaxGPUs caps the static enumeration and therefore the peak cluster
	// size any plan may request. Zero selects a default of
	// max(64, 4 × first-stage trials).
	MaxGPUs int
	// Delta is the minimum predicted cost improvement (in dollars) for
	// the greedy loop to continue. Zero selects a small default.
	Delta float64
	// WarmStartMultipliers scales the static-optimal warm start to widen
	// the search (§4.3): the optimizer never increases allocations, so
	// each multiplier bounds a different region. Nil selects {1, 2, 3}.
	WarmStartMultipliers []int
	// DisableInstanceStep removes the instance-boundary candidates from
	// greedy generation, leaving only the paper's plain fair decrement.
	// Under per-instance billing this stalls the search on sub-instance
	// steps; exposed for the design-choice ablation.
	DisableInstanceStep bool
	// RawCostSelection selects greedy candidates by raw predicted cost
	// reduction instead of Equation 1's JCT-normalized marginal benefit;
	// exposed for the design-choice ablation.
	RawCostSelection bool
	// ShortlistK is the minimum number of frontier candidates the
	// analytic pre-screen keeps for Monte-Carlo estimation (phase two of
	// the search). Zero selects a small default. Larger values trade
	// planning latency for extra safety margin against analytic bias.
	ShortlistK int
	// DisableAnalyticPrune turns off the analytic batch-scoring phase
	// entirely: every candidate is Monte-Carlo estimated, as in the
	// single-phase search. Exposed as the reference mode for the
	// shortlist-safety tests and the planning benchmarks.
	DisableAnalyticPrune bool
	// DisableFrontierDedupe turns off canonical-allocation memo sharing:
	// behaviorally identical candidates (allocations rounded to the same
	// fair per-trial share) are re-estimated instead of reusing each
	// other's estimates. Exposed for the grid-equivalence ablation.
	DisableFrontierDedupe bool
	// Workers bounds the goroutines that evaluate candidate plans
	// concurrently (independent of the simulator's own Monte-Carlo worker
	// pool). Zero selects GOMAXPROCS; 1 forces serial evaluation. Because
	// sim.Estimate is a pure function of the plan and every selection
	// reduces in fixed candidate order, results are bit-identical at any
	// worker count.
	Workers int

	// memo caches plan evaluations across the whole search, keyed by the
	// plan's compact byte encoding (sim.Plan.Key — collision-free and
	// cheaper than formatting), so the greedy loop never re-simulates an
	// allocation it has already scored (successive iterations share most
	// of their candidate sets, as do overlapping warm-start descents).
	memoMu sync.Mutex
	memo   map[string]sim.Estimate
	// estCalls counts estimate() invocations (hits + misses), for the
	// search-efficiency diagnostics exposed by EstimateCalls/MemoLen.
	estCalls int64
	// prunedCands counts frontier candidates the analytic screen excluded
	// from Monte-Carlo estimation (see PrunedCandidates).
	prunedCands int64
}

// memoKey returns the memo key for a plan: its canonical-allocation key
// when frontier deduplication applies, so behaviorally identical
// candidates share one evaluation. Deduplication is sound exactly when
// estimates are a function of the canonical allocation — true for the
// segment and analytic estimators, whose RNG streams are keyed by
// canonical segment tuples, and false for the full-DAG estimator, whose
// streams are keyed by the raw plan.
func (p *Planner) memoKey(plan sim.Plan) string {
	if p.DisableFrontierDedupe || p.Sim.Estimator() == sim.EstimatorFull {
		return plan.Key()
	}
	return p.Sim.CanonicalPlanKey(plan)
}

// estimate evaluates a plan through the memo cache. Concurrent callers may
// race to fill the same entry; that is benign because Estimate is pure —
// both compute the identical value.
func (p *Planner) estimate(plan sim.Plan) (sim.Estimate, error) {
	atomic.AddInt64(&p.estCalls, 1)
	key := p.memoKey(plan)
	p.memoMu.Lock()
	est, ok := p.memo[key]
	p.memoMu.Unlock()
	if ok {
		return est, nil
	}
	est, err := p.Sim.Estimate(plan)
	if err != nil {
		return sim.Estimate{}, err
	}
	p.memoMu.Lock()
	if p.memo == nil {
		p.memo = make(map[string]sim.Estimate)
	}
	p.memo[key] = est
	p.memoMu.Unlock()
	return est, nil
}

// ErrInfeasible is returned when no plan within MaxGPUs meets the deadline.
var ErrInfeasible = fmt.Errorf("planner: no feasible plan within resource cap")

func (p *Planner) maxGPUs() int {
	if p.MaxGPUs > 0 {
		return p.MaxGPUs
	}
	n := 4 * p.Sim.Spec().TotalTrials()
	if n < 64 {
		n = 64
	}
	return n
}

func (p *Planner) delta() float64 {
	if p.Delta > 0 {
		return p.Delta
	}
	return 0.01
}

func (p *Planner) warmStarts() []int {
	if len(p.WarmStartMultipliers) > 0 {
		return p.WarmStartMultipliers
	}
	return []int{1, 2, 3}
}

func (p *Planner) validate() error {
	if p.Sim == nil {
		return fmt.Errorf("planner: nil simulator")
	}
	if p.Deadline <= 0 {
		return fmt.Errorf("planner: non-positive deadline %v", p.Deadline)
	}
	return nil
}

// PlanStatic finds the cost-optimal static allocation meeting the
// deadline by one-dimensional enumeration (the warm-start procedure of
// §4.3 and the paper's fixed-cluster baseline). Cluster sizes are
// evaluated concurrently and reduced in ascending order, so the result
// matches the serial enumeration exactly (ties go to the smallest
// cluster).
func (p *Planner) PlanStatic() (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	scr := p.newScreen()
	defer scr.release(p)
	return p.planStatic(scr)
}

// planStatic is PlanStatic's body with the search's analytic screen
// threaded in, so PlanElastic shares one screen (and its warm caches)
// across the warm-start enumeration and every greedy descent.
func (p *Planner) planStatic(scr *frontierScreen) (Result, error) {
	stages := p.Sim.Spec().NumStages()
	n := p.maxGPUs()
	cands := make([]sim.Plan, n)
	keep := make([]bool, n)
	for i := range cands {
		cands[i] = sim.Uniform(i+1, stages)
		// The closed-form mean JCT ignores provisioning overheads and
		// straggler inflation, so it lower-bounds the estimate: anything
		// already over the deadline cannot become feasible.
		keep[i] = p.Sim.StaticClusterJCT(i+1) <= p.Deadline
	}
	p.pruneEnumeration(scr, cands, keep, p.Deadline, false)
	ests := make([]sim.Estimate, n)
	oks := make([]bool, n)
	errs := make([]error, n)
	par.ForEach(n, par.Workers(p.Workers), func(i int) {
		if !keep[i] {
			return
		}
		ests[i], errs[i] = p.estimate(cands[i])
		oks[i] = errs[i] == nil
	})
	best := Result{}
	found := false
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return Result{}, errs[i]
		}
		if !oks[i] || ests[i].JCT > p.Deadline {
			continue
		}
		if !found || ests[i].Cost < best.Estimate.Cost {
			best = Result{Plan: sim.Uniform(i+1, stages), Estimate: ests[i]}
			found = true
		}
	}
	if !found {
		return Result{}, ErrInfeasible
	}
	return best, nil
}

// PlanNaiveElastic finds the cost-optimal plan within the constrained
// space of fixed per-trial allocations: each trial holds k GPUs in every
// stage, so the cluster shrinks with the trial count but trials are never
// re-scaled. This reproduces the prior-work baseline the paper compares
// against (§6.3.1).
func (p *Planner) PlanNaiveElastic() (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	sp := p.Sim.Spec()
	// k ranges over per-trial multipliers that keep the peak cluster within
	// the cap; k = 1 is always considered, mirroring the serial loop.
	kMax := p.maxGPUs() / sp.TotalTrials()
	if kMax < 1 {
		kMax = 1
	}
	plans := make([]sim.Plan, kMax)
	ests := make([]sim.Estimate, kMax)
	errs := make([]error, kMax)
	par.ForEach(kMax, par.Workers(p.Workers), func(i int) {
		k := i + 1
		alloc := make([]int, sp.NumStages())
		for j := range alloc {
			alloc[j] = sp.Stage(j).Trials * k
		}
		plans[i] = sim.Plan{Alloc: alloc}
		ests[i], errs[i] = p.estimate(plans[i])
	})
	best := Result{}
	found := false
	for i := 0; i < kMax; i++ {
		if errs[i] != nil {
			return Result{}, errs[i]
		}
		if ests[i].JCT <= p.Deadline && (!found || ests[i].Cost < best.Estimate.Cost) {
			best = Result{Plan: plans[i], Estimate: ests[i]}
			found = true
		}
	}
	if !found {
		return Result{}, ErrInfeasible
	}
	return best, nil
}

// PlanElastic runs RubberBand's greedy optimizer (Algorithm 2) from each
// warm start and returns the cheapest feasible plan found. The result is
// guaranteed to predict no worse than the cost-optimal static allocation,
// since that allocation is itself a warm start.
func (p *Planner) PlanElastic() (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	scr := p.newScreen()
	defer scr.release(p)
	staticBest, err := p.planStatic(scr)
	if err != nil {
		return Result{}, err
	}
	best := staticBest
	maxGPUs := p.maxGPUs()
	for _, mult := range p.warmStarts() {
		warm := staticBest.Plan.Clone()
		for i := range warm.Alloc {
			warm.Alloc[i] *= mult
			if warm.Alloc[i] > maxGPUs {
				warm.Alloc[i] = maxGPUs
			}
		}
		warmEst, err := p.estimate(warm)
		if err != nil {
			return Result{}, err
		}
		if warmEst.JCT > p.Deadline {
			// An inflated warm start can blow the deadline through
			// added provisioning overhead; skip it.
			if mult != 1 {
				continue
			}
		}
		res, err := p.optimize(scr, Result{Plan: warm, Estimate: warmEst})
		if err != nil {
			return Result{}, err
		}
		if res.Estimate.JCT <= p.Deadline && res.Estimate.Cost < best.Estimate.Cost {
			best = res
		}
	}
	return best, nil
}

// optimize is the greedy descent of Algorithm 2, two-phased: each
// iteration analytically screens the candidate set (dropping steps that
// surely violate the deadline or surely cannot reduce cost), evaluates
// the shortlist concurrently (memoized, so candidates shared with earlier
// iterations cost nothing), and selects the winner serially in candidate
// order, keeping the descent deterministic at any worker count.
func (p *Planner) optimize(scr *frontierScreen, start Result) (Result, error) {
	cur := start
	gpn := p.Sim.Cloud().Instance.GPUs
	if p.DisableInstanceStep {
		gpn = 0
	}
	sp := p.Sim.Spec()
	for {
		cands := generateCandidates(cur.Plan, sp, gpn)
		if len(cands) == 0 {
			return cur, nil
		}
		keep := make([]bool, len(cands))
		for i := range keep {
			keep[i] = true
		}
		p.pruneDescentStep(scr, cands, keep, cur, p.Deadline, false)
		ests := make([]sim.Estimate, len(cands))
		errs := make([]error, len(cands))
		par.ForEach(len(cands), par.Workers(p.Workers), func(i int) {
			if keep[i] {
				ests[i], errs[i] = p.estimate(cands[i])
			}
		})
		bestIdx := -1
		bestBenefit := math.Inf(-1)
		var bestEst sim.Estimate
		for i := range cands {
			if errs[i] != nil {
				return Result{}, errs[i]
			}
			if !keep[i] {
				continue
			}
			est := ests[i]
			if est.JCT > p.Deadline {
				continue
			}
			var benefit float64
			if p.RawCostSelection {
				benefit = cur.Estimate.Cost - est.Cost
			} else {
				benefit = marginalBenefit(cur.Estimate, est)
			}
			if benefit > bestBenefit {
				bestIdx, bestBenefit, bestEst = i, benefit, est
			}
		}
		if bestIdx < 0 {
			return cur, nil // every candidate violates the constraint
		}
		if cur.Estimate.Cost-bestEst.Cost < p.delta() {
			return cur, nil // no candidate improves cost enough
		}
		cur = Result{Plan: cands[bestIdx], Estimate: bestEst}
	}
}

// marginalBenefit implements Equation 1: cost reduction normalized by the
// JCT increase it buys. When a candidate improves (or preserves) JCT as
// well as cost, the benefit is unboundedly good; when it worsens cost, it
// is unboundedly bad.
func marginalBenefit(cur, cand sim.Estimate) float64 {
	dCost := cur.Cost - cand.Cost
	dJCT := cand.JCT - cur.JCT
	if dCost <= 0 {
		return math.Inf(-1)
	}
	if dJCT <= 0 {
		return math.Inf(1)
	}
	return dCost / dJCT
}

// generateCandidates produces per-stage decrements of the current plan
// (§4.3). For each stage it proposes (a) the next lower fair value — the
// smallest decrement keeping the stage allocation a factor or multiple of
// the trial count, so resources always divide evenly — and (b) the largest
// fair value that releases at least one whole instance of gpusPerNode
// GPUs. Candidate (b) matters under per-instance billing, where cost only
// falls at instance boundaries: without it the greedy search stalls on
// sub-instance decrements that lengthen the stage without releasing any
// billed machine.
func generateCandidates(cur sim.Plan, sp *spec.ExperimentSpec, gpusPerNode int) []sim.Plan {
	var out []sim.Plan
	add := func(i, v int) {
		for _, existing := range out {
			if existing.Alloc[i] == v && existing.Equal(withAlloc(cur, i, v)) {
				return
			}
		}
		out = append(out, withAlloc(cur, i, v))
	}
	for i := range cur.Alloc {
		trials := sp.Stage(i).Trials
		if v, ok := fairStepDown(cur.Alloc[i], trials); ok {
			add(i, v)
		}
		if gpusPerNode > 0 {
			curInstances := (cur.Alloc[i] + gpusPerNode - 1) / gpusPerNode
			if curInstances > 1 {
				target := (curInstances - 1) * gpusPerNode
				if v, ok := fairFloor(target, trials); ok && v < cur.Alloc[i] {
					add(i, v)
				}
			}
		}
	}
	return out
}

func withAlloc(p sim.Plan, i, v int) sim.Plan {
	q := p.Clone()
	q.Alloc[i] = v
	return q
}

// fairStepDown returns the largest allocation strictly below alloc that is
// a factor or a multiple of trials (so trials always share it evenly), and
// whether one exists. Allocations below 1 GPU do not exist.
func fairStepDown(alloc, trials int) (int, bool) {
	return fairFloor(alloc-1, trials)
}

// fairFloor returns the largest allocation v <= max that divides trials
// evenly (factor or multiple), and whether one exists. When max >= trials
// the answer is the largest multiple of trials not exceeding max (every
// divisor of trials is no larger); below that only divisors of trials
// qualify, and the largest one <= max is found by walking divisor pairs
// up to √trials — O(√trials) instead of the O(max) downward scan this
// replaces.
func fairFloor(max, trials int) (int, bool) {
	if max < 1 {
		return 0, false
	}
	if max >= trials {
		return max - max%trials, true
	}
	best := 1 // 1 divides every trial count and 1 <= max
	for d := 1; d*d <= trials; d++ {
		if trials%d != 0 {
			continue
		}
		if d <= max && d > best {
			best = d
		}
		if q := trials / d; q <= max && q > best {
			best = q
		}
	}
	return best, true
}

// MemoLen reports the number of distinct plans the search has simulated so
// far; together with EstimateCalls it quantifies how much work the memo
// cache saved.
func (p *Planner) MemoLen() int {
	p.memoMu.Lock()
	defer p.memoMu.Unlock()
	return len(p.memo)
}

// EstimateCalls reports the total number of plan evaluations requested by
// the search, counting memo hits. EstimateCalls - MemoLen evaluations were
// answered from cache without re-simulation.
func (p *Planner) EstimateCalls() int64 { return atomic.LoadInt64(&p.estCalls) }
