package planner

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

func selectionInputs(t *testing.T) (*cloud.Catalog, *spec.ExperimentSpec, ProfileBuilder, sim.CloudProfile) {
	t.Helper()
	m := model.ResNet50()
	m.IterNoiseStd = 0.1
	profiles := func(it cloud.InstanceType) sim.TrainProfile {
		return sim.ModelTrainProfile{Model: m, Batch: 512, GPUsPerNode: it.GPUs}
	}
	base := sim.DefaultCloudProfile()
	base.Pricing.MinChargeSeconds = 0
	base.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	return cloud.DefaultCatalog(), spec.MustSHA(32, 2, 64, 2), profiles, base
}

func TestSelectInstanceType(t *testing.T) {
	catalog, s, profiles, base := selectionInputs(t)
	sel, err := SelectInstanceType(catalog, s, profiles, base, 600, 5, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Only GPU types are evaluated: p3.2xlarge/8xlarge/16xlarge, not
	// r5.4xlarge.
	if len(sel.Choices) != 3 {
		t.Fatalf("choices = %d", len(sel.Choices))
	}
	for _, c := range sel.Choices {
		if c.Instance.GPUs < 1 {
			t.Fatalf("CPU type %s evaluated", c.Instance.Name)
		}
		if c.Feasible && c.Result.Estimate.JCT > 600 {
			t.Fatalf("%s plan violates deadline", c.Instance.Name)
		}
	}
	if !sel.Best.Feasible {
		t.Fatal("best choice infeasible")
	}
	// The best is the min-cost feasible choice.
	for _, c := range sel.Choices {
		if c.Feasible && c.Result.Estimate.Cost < sel.Best.Result.Estimate.Cost-1e-9 {
			t.Fatalf("%s ($%.2f) beats chosen %s ($%.2f)",
				c.Instance.Name, c.Result.Estimate.Cost,
				sel.Best.Instance.Name, sel.Best.Result.Estimate.Cost)
		}
	}
}

func TestSelectInstanceTypeInfeasible(t *testing.T) {
	catalog, s, profiles, base := selectionInputs(t)
	if _, err := SelectInstanceType(catalog, s, profiles, base, 1, 3, 1, 32); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSelectInstanceTypeValidation(t *testing.T) {
	catalog, s, profiles, base := selectionInputs(t)
	if _, err := SelectInstanceType(nil, s, profiles, base, 600, 3, 1, 32); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := SelectInstanceType(catalog, s, nil, base, 600, 3, 1, 32); err == nil {
		t.Error("nil profile builder accepted")
	}
}

func TestSelectInstanceTypeTradeoffDirection(t *testing.T) {
	// With heavy cross-node penalties and multi-GPU late stages, bigger
	// nodes should not lose to 1-GPU nodes when the deadline forces
	// multi-GPU gangs: sanity-check the selection is driven by the
	// modeled trade-off, not catalog order.
	catalog, _, profiles, base := selectionInputs(t)
	s := spec.MustSHA(64, 4, 508, 2) // long multi-GPU survivor tail
	sel, err := SelectInstanceType(catalog, s, profiles, base, 900, 5, 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	var single, multi *InstanceChoice
	for i := range sel.Choices {
		switch sel.Choices[i].Instance.Name {
		case "p3.2xlarge":
			single = &sel.Choices[i]
		case "p3.16xlarge":
			multi = &sel.Choices[i]
		}
	}
	if single == nil || multi == nil {
		t.Fatal("catalog entries missing")
	}
	if single.Feasible && multi.Feasible {
		// 1-GPU nodes force every multi-GPU gang across node boundaries
		// (αinter on every worker pair), so their plans should be slower
		// or costlier at this deadline.
		if single.Result.Estimate.Cost < multi.Result.Estimate.Cost*0.8 {
			t.Errorf("single-GPU nodes implausibly cheap: $%.2f vs $%.2f",
				single.Result.Estimate.Cost, multi.Result.Estimate.Cost)
		}
	}
}
