package planner

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// FuzzPlanElastic fuzzes the elastic planner over sanitized experiment
// shapes, deadlines and estimator modes and checks its contract: any
// returned plan is valid for the spec, fits under MaxGPUs, meets the
// deadline by its own estimate, replanning from an identical simulator is
// bit-identical, and the default two-phase search (analytic pruning +
// frontier deduplication) selects exactly the plan the exhaustive
// single-phase search selects. ErrInfeasible is the only acceptable
// refusal.
func FuzzPlanElastic(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(8), uint64(4), uint64(12), uint64(16), uint64(0))
	f.Add(uint64(7), uint64(4), uint64(10), uint64(2), uint64(8), uint64(32), uint64(1))
	f.Add(uint64(42), uint64(1), uint64(3), uint64(5), uint64(25), uint64(4), uint64(2))
	f.Add(uint64(99), uint64(3), uint64(6), uint64(1), uint64(10), uint64(6), uint64(2))
	f.Fuzz(func(t *testing.T, seed, rawStages, rawTrials, rawIters, rawFactor, rawMax, rawEst uint64) {
		nStages := int(rawStages%4) + 1
		trials := int(rawTrials%10) + 2
		iters := int(rawIters%6) + 1
		// Deadline factor in [0.5, 3.0): both infeasible and slack.
		factor := 0.5 + float64(rawFactor%25)/10
		maxGPUs := int(rawMax%32) + 1
		estimator := []sim.EstimatorMode{sim.EstimatorSegment, sim.EstimatorFull, sim.EstimatorAnalytic}[rawEst%3]

		s := spec.Empty()
		for i := 0; i < nStages; i++ {
			s = s.AddStage(trials, iters)
			// Next stage keeps at most as many trials (early stopping).
			trials = 1 + int((seed>>uint(4*i))%uint64(trials))
		}

		m := model.ResNet50()
		m.IterNoiseStd = 0.1
		prof := sim.ModelTrainProfile{Model: m, Batch: 512, GPUsPerNode: 4}
		cp := sim.DefaultCloudProfile()
		cp.Pricing.MinChargeSeconds = 0
		cp.Overheads = cloud.Overheads{
			QueueDelay:  stats.Deterministic{Value: 5},
			InitLatency: stats.Deterministic{Value: 15},
		}
		newSim := func() *sim.Simulator {
			sm, err := sim.New(s, prof, cp, 3, stats.NewRNG(seed), sim.WithWorkers(1), sim.WithEstimator(estimator))
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			return sm
		}
		sm := newSim()
		deadline := sm.StaticClusterJCT(maxGPUs) * factor
		p := &Planner{Sim: sm, Deadline: deadline, MaxGPUs: maxGPUs, Workers: 1}
		res, err := p.PlanElastic()
		if err != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("unexpected planner error: %v", err)
			}
			return
		}
		if verr := res.Plan.Validate(s.NumStages()); verr != nil {
			t.Fatalf("invalid plan %v: %v", res.Plan, verr)
		}
		if res.Plan.Max() > maxGPUs {
			t.Fatalf("plan %v exceeds cap %d", res.Plan, maxGPUs)
		}
		if res.Estimate.JCT > deadline+1e-9 {
			t.Fatalf("estimate %v misses deadline %v", res.Estimate.JCT, deadline)
		}
		if math.IsNaN(res.Estimate.Cost) || res.Estimate.Cost < 0 {
			t.Fatalf("estimate cost %v", res.Estimate.Cost)
		}

		// Replanning from a fresh but identically seeded simulator must be
		// bit-identical.
		p2 := &Planner{Sim: newSim(), Deadline: deadline, MaxGPUs: maxGPUs, Workers: 1}
		res2, err2 := p2.PlanElastic()
		if err2 != nil {
			t.Fatalf("replan failed: %v", err2)
		}
		if !res.Plan.Equal(res2.Plan) {
			t.Fatalf("replan diverged: %v vs %v", res.Plan, res2.Plan)
		}
		if math.Float64bits(res.Estimate.JCT) != math.Float64bits(res2.Estimate.JCT) ||
			math.Float64bits(res.Estimate.Cost) != math.Float64bits(res2.Estimate.Cost) {
			t.Fatalf("replan estimate diverged: %+v vs %+v", res.Estimate, res2.Estimate)
		}

		// Shortlist safety: the exhaustive single-phase search (no
		// analytic pruning, no frontier deduplication) must select the
		// same plan with a bit-identical estimate.
		ref := &Planner{
			Sim: newSim(), Deadline: deadline, MaxGPUs: maxGPUs, Workers: 1,
			DisableAnalyticPrune: true, DisableFrontierDedupe: true,
		}
		rres, rerr := ref.PlanElastic()
		if rerr != nil {
			t.Fatalf("reference search failed where two-phase succeeded: %v", rerr)
		}
		if !res.Plan.Equal(rres.Plan) {
			t.Fatalf("pruned search chose %v, exhaustive chose %v", res.Plan, rres.Plan)
		}
		if math.Float64bits(res.Estimate.JCT) != math.Float64bits(rres.Estimate.JCT) ||
			math.Float64bits(res.Estimate.Cost) != math.Float64bits(rres.Estimate.Cost) {
			t.Fatalf("pruned estimate %+v != exhaustive %+v", res.Estimate, rres.Estimate)
		}
	})
}
