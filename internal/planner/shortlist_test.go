// Shortlist-safety and frontier-deduplication corpus tests: the
// two-phase search (analytic batch scoring + margin pruning + canonical
// dedupe) must select exactly the plan the exhaustive single-phase
// Monte-Carlo search selects, across generated harness scenarios. Like
// the metamorphic suite, these live in an external package so they can
// reuse the chaos harness's scenario generator.
package planner_test

import (
	"math"
	"testing"

	"repro/internal/harness"
	"repro/internal/planner"
	"repro/internal/sim"
)

// referencePlanner mirrors newPlanner with the two-phase machinery
// disabled — the exhaustive search the pruned one is checked against.
func referencePlanner(t *testing.T, sc harness.Scenario, seed uint64) (*planner.Planner, float64) {
	t.Helper()
	p, deadline := newPlanner(t, sc, sc.Profile, seed, 0.01)
	p.DisableAnalyticPrune = true
	p.DisableFrontierDedupe = true
	return p, deadline
}

// TestShortlistSafetyOnCorpus: over the scenario corpus (all estimator
// modes, billing models and spec shapes the generator draws), the default
// two-phase PlanElastic returns the same plan with a bit-identical
// estimate as the exhaustive search, and the analytic screen actually
// prunes work somewhere (the corpus is not vacuous).
func TestShortlistSafetyOnCorpus(t *testing.T) {
	const seed, n = 137, 10
	var pruned, saved int64
	for _, sc := range metamorphicScenarios(t, seed, n) {
		fast, _ := newPlanner(t, sc, sc.Profile, seed, 0.01)
		ref, _ := referencePlanner(t, sc, seed)
		fres, ferr := fast.PlanElastic()
		rres, rerr := ref.PlanElastic()
		if (ferr == nil) != (rerr == nil) {
			t.Fatalf("%v: feasibility diverged: two-phase %v, exhaustive %v", sc, ferr, rerr)
		}
		if ferr != nil {
			continue
		}
		if !fres.Plan.Equal(rres.Plan) {
			t.Fatalf("%v: two-phase chose %v, exhaustive chose %v", sc, fres.Plan, rres.Plan)
		}
		if math.Float64bits(fres.Estimate.JCT) != math.Float64bits(rres.Estimate.JCT) ||
			math.Float64bits(fres.Estimate.Cost) != math.Float64bits(rres.Estimate.Cost) {
			t.Fatalf("%v: two-phase estimate %+v != exhaustive %+v", sc, fres.Estimate, rres.Estimate)
		}
		pruned += fast.PrunedCandidates()
		saved += ref.EstimateCalls() - fast.EstimateCalls()
	}
	if pruned == 0 {
		t.Error("analytic screen pruned nothing across the corpus")
	}
	if saved <= 0 {
		t.Errorf("two-phase search did not reduce estimate calls (saved %d)", saved)
	}
}

// TestFrontierDedupeGridEquivalence: canonical-allocation deduplication
// alone (pruning disabled on both sides) must not change any planning
// outcome in the stream-sharing estimator modes, while memoizing strictly
// fewer distinct evaluations somewhere on the corpus.
func TestFrontierDedupeGridEquivalence(t *testing.T) {
	const seed, n = 61, 8
	sharedFewer := false
	for _, sc := range metamorphicScenarios(t, seed, n) {
		if sc.Estimator == sim.EstimatorFull {
			continue // dedupe is (correctly) inert for plan-keyed streams
		}
		dedup, _ := newPlanner(t, sc, sc.Profile, seed, 0.01)
		dedup.DisableAnalyticPrune = true
		plain, _ := referencePlanner(t, sc, seed)
		dres, derr := dedup.PlanElastic()
		pres, perr := plain.PlanElastic()
		if (derr == nil) != (perr == nil) {
			t.Fatalf("%v: feasibility diverged: dedupe %v, plain %v", sc, derr, perr)
		}
		if derr != nil {
			continue
		}
		if !dres.Plan.Equal(pres.Plan) || dres.Estimate != pres.Estimate {
			t.Fatalf("%v: dedupe changed the plan: %v %+v vs %v %+v",
				sc, dres.Plan, dres.Estimate, pres.Plan, pres.Estimate)
		}
		if dedup.MemoLen() > plain.MemoLen() {
			t.Fatalf("%v: dedupe memoized more plans (%d) than plain (%d)", sc, dedup.MemoLen(), plain.MemoLen())
		}
		if dedup.MemoLen() < plain.MemoLen() {
			sharedFewer = true
		}
	}
	if !sharedFewer {
		t.Error("dedupe never merged a duplicate candidate across the corpus")
	}
}

// TestMinJCTPruneSafetyOnCorpus: the dual planner's two-phase search is
// held to the same standard — identical plan and bit-identical estimate
// versus the exhaustive search, with the budget set around each
// scenario's elastic cost so the ascent has room to move.
func TestMinJCTPruneSafetyOnCorpus(t *testing.T) {
	const seed, n = 29, 6
	for _, sc := range metamorphicScenarios(t, seed, n) {
		probe, _ := referencePlanner(t, sc, seed)
		base, err := probe.PlanElastic()
		if err != nil {
			continue
		}
		budget := 1.5 * base.Estimate.Cost
		fast, _ := newPlanner(t, sc, sc.Profile, seed, 0.01)
		ref, _ := referencePlanner(t, sc, seed)
		fres, ferr := fast.PlanMinJCT(budget)
		rres, rerr := ref.PlanMinJCT(budget)
		if (ferr == nil) != (rerr == nil) {
			t.Fatalf("%v: feasibility diverged: two-phase %v, exhaustive %v", sc, ferr, rerr)
		}
		if ferr != nil {
			continue
		}
		if !fres.Plan.Equal(rres.Plan) {
			t.Fatalf("%v: two-phase chose %v, exhaustive chose %v", sc, fres.Plan, rres.Plan)
		}
		if math.Float64bits(fres.Estimate.JCT) != math.Float64bits(rres.Estimate.JCT) ||
			math.Float64bits(fres.Estimate.Cost) != math.Float64bits(rres.Estimate.Cost) {
			t.Fatalf("%v: two-phase estimate %+v != exhaustive %+v", sc, fres.Estimate, rres.Estimate)
		}
	}
}
