package planner

import "testing"

// fairFloorScan is the original O(max) downward scan, kept as the
// reference semantics for the divisor-based fairFloor.
func fairFloorScan(max, trials int) (int, bool) {
	for v := max; v >= 1; v-- {
		if v%trials == 0 || trials%v == 0 {
			return v, true
		}
	}
	return 0, false
}

// TestFairFloorMatchesScan checks the divisor-based fairFloor against the
// scan over a wide grid, including primes, perfect squares, max below /
// at / above trials, and the degenerate max < 1 cases.
func TestFairFloorMatchesScan(t *testing.T) {
	trialCounts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 17, 24, 25, 36, 49, 60, 64, 97, 100, 128}
	for _, trials := range trialCounts {
		for max := -2; max <= 3*trials+5; max++ {
			wantV, wantOK := fairFloorScan(max, trials)
			gotV, gotOK := fairFloor(max, trials)
			if gotV != wantV || gotOK != wantOK {
				t.Fatalf("fairFloor(%d, %d) = (%d, %v), scan gives (%d, %v)",
					max, trials, gotV, gotOK, wantV, wantOK)
			}
		}
	}
	// A few large points where the scan is still affordable but the gap
	// between O(max) and O(√trials) is real.
	for _, c := range [][2]int{{100000, 1024}, {99991, 720}, {65536, 97}} {
		wantV, wantOK := fairFloorScan(c[0], c[1])
		gotV, gotOK := fairFloor(c[0], c[1])
		if gotV != wantV || gotOK != wantOK {
			t.Fatalf("fairFloor(%d, %d) = (%d, %v), scan gives (%d, %v)", c[0], c[1], gotV, gotOK, wantV, wantOK)
		}
	}
}

// TestFairCeilStillAgrees pins the ascent helper's semantics with spot
// checks so the pair of helpers stays symmetric.
func TestFairCeilStillAgrees(t *testing.T) {
	cases := []struct {
		min, trials, max int
		want             int
		ok               bool
	}{
		{5, 4, 64, 8, true},
		{3, 4, 64, 4, true},
		{1, 4, 64, 1, true},
		{65, 4, 64, 0, false},
		{5, 16, 64, 8, true},
	}
	for _, c := range cases {
		got, ok := fairCeil(c.min, c.trials, c.max)
		if got != c.want || ok != c.ok {
			t.Fatalf("fairCeil(%d, %d, %d) = (%d, %v), want (%d, %v)", c.min, c.trials, c.max, got, ok, c.want, c.ok)
		}
	}
}
