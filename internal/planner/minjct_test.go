package planner

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/spec"
)

func TestFairStepUp(t *testing.T) {
	cases := []struct {
		alloc, trials, max int
		want               int
		ok                 bool
	}{
		{10, 10, 64, 20, true}, // next multiple
		{5, 10, 64, 10, true},  // factor below trials jumps to trials? 6..9 don't divide; 10 is multiple
		{1, 10, 64, 2, true},
		{20, 10, 64, 30, true},
		{60, 10, 64, 0, false}, // next multiple 70 exceeds max
		{3, 4, 64, 4, true},
		{2, 1, 4, 3, true}, // everything divides 1
	}
	for _, c := range cases {
		got, ok := fairStepUp(c.alloc, c.trials, c.max)
		if got != c.want || ok != c.ok {
			t.Errorf("fairStepUp(%d,%d,%d) = (%d,%v), want (%d,%v)",
				c.alloc, c.trials, c.max, got, ok, c.want, c.ok)
		}
	}
}

func TestJCTBenefit(t *testing.T) {
	cur := sim.Estimate{JCT: 100, Cost: 10}
	if b := jctBenefit(cur, sim.Estimate{JCT: 80, Cost: 14}); math.Abs(b-5) > 1e-12 {
		t.Errorf("benefit = %v, want 5", b)
	}
	if b := jctBenefit(cur, sim.Estimate{JCT: 80, Cost: 9}); !math.IsInf(b, 1) {
		t.Errorf("benefit = %v, want +inf", b)
	}
	if b := jctBenefit(cur, sim.Estimate{JCT: 120, Cost: 14}); !math.IsInf(b, -1) {
		t.Errorf("benefit = %v, want -inf", b)
	}
}

func TestPlanMinJCTRespectsBudget(t *testing.T) {
	s := spec.MustSHA(32, 2, 64, 2)
	sm := resnetSim(t, s, 5, 31)
	p := &Planner{Sim: sm, Deadline: 1e9, MaxGPUs: 128}
	for _, budget := range []float64{3, 6, 12} {
		res, err := p.PlanMinJCT(budget)
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		if res.Estimate.Cost > budget {
			t.Errorf("budget %v: plan costs %v", budget, res.Estimate.Cost)
		}
	}
}

func TestPlanMinJCTMonotoneInBudget(t *testing.T) {
	// More money can only buy speed: JCT is non-increasing in budget.
	s := spec.MustSHA(32, 2, 64, 2)
	sm := resnetSim(t, s, 5, 32)
	p := &Planner{Sim: sm, Deadline: 1e9, MaxGPUs: 128}
	prev := math.Inf(1)
	for _, budget := range []float64{3, 5, 8, 15} {
		res, err := p.PlanMinJCT(budget)
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		// 3% tolerance for Monte-Carlo noise between separate searches.
		if res.Estimate.JCT > prev*1.03 {
			t.Errorf("budget %v: JCT %v above smaller-budget JCT %v", budget, res.Estimate.JCT, prev)
		}
		if res.Estimate.JCT < prev {
			prev = res.Estimate.JCT
		}
	}
}

func TestPlanMinJCTBeatsStaticWarmStart(t *testing.T) {
	// The ascent must never return something slower than the best static
	// allocation within budget — that allocation is its warm start.
	s := spec.MustSHA(64, 4, 508, 2)
	sm := resnetSim(t, s, 5, 33)
	p := &Planner{Sim: sm, Deadline: 1e9, MaxGPUs: 128}
	budget := 8.0
	res, err := p.PlanMinJCT(budget)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the static warm start independently.
	bestStatic := math.Inf(1)
	for g := 1; g <= 128; g++ {
		est, err := sm.Estimate(sim.Uniform(g, s.NumStages()))
		if err != nil {
			t.Fatal(err)
		}
		if est.Cost <= budget && est.JCT < bestStatic {
			bestStatic = est.JCT
		}
	}
	if res.Estimate.JCT > bestStatic*1.03 {
		t.Errorf("min-JCT plan %v (JCT %v) slower than best static %v",
			res.Plan, res.Estimate.JCT, bestStatic)
	}
}

func TestPlanMinJCTInfeasible(t *testing.T) {
	s := spec.MustSHA(16, 4, 32, 2)
	p := &Planner{Sim: resnetSim(t, s, 3, 34), Deadline: 1e9, MaxGPUs: 32}
	if _, err := p.PlanMinJCT(0.0001); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := p.PlanMinJCT(-1); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// Property: fairStepUp output is fair, strictly larger, and within the
// cap when it exists.
func TestQuickFairStepUp(t *testing.T) {
	f := func(allocRaw, trialsRaw uint8) bool {
		alloc := int(allocRaw%100) + 1
		trials := int(trialsRaw%32) + 1
		max := 128
		v, ok := fairStepUp(alloc, trials, max)
		if !ok {
			// No fair value in (alloc, max]: verify by scan.
			for x := alloc + 1; x <= max; x++ {
				if x%trials == 0 || trials%x == 0 {
					return false
				}
			}
			return true
		}
		return v > alloc && v <= max && (v%trials == 0 || trials%v == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
