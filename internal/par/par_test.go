package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Errorf("Workers(3) = %d", Workers(3))
	}
	want := runtime.GOMAXPROCS(0)
	if Workers(0) != want || Workers(-1) != want {
		t.Errorf("Workers(0)/Workers(-1) = %d/%d, want %d", Workers(0), Workers(-1), want)
	}
}

// TestForEachVisitsEachIndexOnce checks the exactly-once contract across a
// range of worker counts, including workers > n and the serial path.
func TestForEachVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			visits := make([]int64, n)
			ForEach(n, workers, func(i int) {
				atomic.AddInt64(&visits[i], 1)
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestForEachIndexAddressedWrites is a race-detector target: concurrent
// writes into index-addressed storage must be safe and complete before
// ForEach returns.
func TestForEachIndexAddressedWrites(t *testing.T) {
	const n = 500
	out := make([]int, n)
	ForEach(n, 8, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestForEachConcurrentCalls exercises several ForEach pools running at
// once, as happens when the planner fans out candidates whose Estimates
// each fan out samples.
func TestForEachConcurrentCalls(t *testing.T) {
	var total int64
	ForEach(10, 4, func(int) {
		ForEach(20, 4, func(int) {
			atomic.AddInt64(&total, 1)
		})
	})
	if total != 200 {
		t.Fatalf("nested ForEach ran %d inner calls, want 200", total)
	}
}
