// Package par provides the bounded fork-join helper shared by the
// simulator's Monte-Carlo sampling loop and the planner's candidate
// evaluation fan-out.
//
// The helpers here deliberately expose an index-addressed contract: work is
// identified by a dense integer range, each index is visited exactly once,
// and callers write results into index-addressed storage. Combined with
// per-index deterministic RNG streams (stats.RNG.Stream) this makes
// parallel output bit-identical to serial output at any worker count — the
// scheduling order can vary freely because no result depends on it, and
// every reduction happens afterwards in fixed index order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n > 0 is used as given, anything
// else selects runtime.GOMAXPROCS(0).
//
//rbvet:impure(GOMAXPROCS only picks the worker count; the index-addressed contract makes results bit-identical at any count)
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n), fanning the calls across at
// most workers goroutines, and returns once all calls have completed.
// workers (after clamping to n) <= 1 runs serially on the calling
// goroutine. ForEach guarantees each index is visited exactly once but
// promises nothing about order or goroutine assignment; callers that need
// a deterministic result must write into index-addressed storage and
// reduce in fixed index order after ForEach returns.
//
//rbvet:impure(goroutine fan-out; each index runs exactly once and results are index-addressed, so scheduling order cannot leak)
func ForEach(n, workers int, fn func(int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the executing worker's pool slot passed to
// fn as its first argument. The slot is a dense index in
// [0, min(workers, n)) that identifies the goroutine, not the work item:
// two calls running concurrently always see different slots, so callers
// can give each slot a private scratch buffer and reuse it across the
// indices that slot happens to process. Slot assignment is
// scheduling-dependent; nothing deterministic may be derived from it.
//
//rbvet:impure(goroutine fan-out; slots only address scratch storage and every reduction happens in fixed index order afterwards)
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
