package cluster

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/stats"
	"repro/internal/vclock"
)

func testManager(t *testing.T, queue, initLat float64) (*Manager, *vclock.Clock, *cloud.Provider) {
	t.Helper()
	clock := vclock.New()
	ov := cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: queue},
		InitLatency: stats.Deterministic{Value: initLat},
	}
	pricing := cloud.DefaultPricing()
	pricing.MinChargeSeconds = 0
	provider, err := cloud.NewProvider(clock, stats.NewRNG(1), pricing, ov, 0)
	if err != nil {
		t.Fatal(err)
	}
	it, err := cloud.DefaultCatalog().Lookup("p3.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(provider, it, clock)
	if err != nil {
		t.Fatal(err)
	}
	return m, clock, provider
}

func TestNewManagerValidation(t *testing.T) {
	clock := vclock.New()
	provider, _ := cloud.NewProvider(clock, stats.NewRNG(1), cloud.DefaultPricing(), cloud.Overheads{}, 0)
	if _, err := NewManager(nil, cloud.InstanceType{GPUs: 4}, clock); err == nil {
		t.Error("nil provider accepted")
	}
	if _, err := NewManager(provider, cloud.InstanceType{Name: "cpu", GPUs: 0}, clock); err == nil {
		t.Error("GPU-less worker type accepted")
	}
}

func TestScaleUpTo(t *testing.T) {
	m, clock, _ := testManager(t, 5, 10)
	if n := m.ScaleUpTo(3); n != 3 {
		t.Fatalf("requested %d, want 3", n)
	}
	if m.Pending() != 3 || m.Size() != 0 {
		t.Fatalf("pending=%d size=%d", m.Pending(), m.Size())
	}
	// Re-requesting the same target adds nothing.
	if n := m.ScaleUpTo(3); n != 0 {
		t.Fatalf("duplicate request added %d", n)
	}
	clock.Run(0)
	if m.Size() != 3 || m.Pending() != 0 {
		t.Fatalf("after provisioning: size=%d pending=%d", m.Size(), m.Pending())
	}
	if clock.Now() != 15 {
		t.Fatalf("provisioning completed at %v, want 15", clock.Now())
	}
}

func TestNodesSortedAndCapable(t *testing.T) {
	m, clock, _ := testManager(t, 0, 0)
	m.ScaleUpTo(4)
	clock.Run(0)
	nodes := m.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	for i, n := range nodes {
		if int(n.ID) != i {
			t.Fatalf("nodes out of order: %v", nodes)
		}
		if n.GPUs != 4 {
			t.Fatalf("node %d GPUs = %d, want 4", n.ID, n.GPUs)
		}
	}
	if m.GPUsPerNode() != 4 {
		t.Fatalf("GPUsPerNode = %d", m.GPUsPerNode())
	}
}

func TestRelease(t *testing.T) {
	m, clock, provider := testManager(t, 0, 0)
	m.ScaleUpTo(2)
	clock.Run(0)
	nodes := m.Nodes()
	if err := m.Release(nodes[0].ID); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 {
		t.Fatalf("size = %d after release", m.Size())
	}
	if nodes[0].Instance.State != cloud.Terminated {
		t.Fatal("released node's instance not terminated")
	}
	if err := m.Release(nodes[0].ID); err == nil {
		t.Fatal("double release succeeded")
	}
	// The surviving node keeps billing.
	alive := 0
	for _, in := range provider.Instances() {
		if in.State == cloud.Ready {
			alive++
		}
	}
	if alive != 1 {
		t.Fatalf("alive instances = %d, want 1", alive)
	}
}

func TestReleaseAll(t *testing.T) {
	m, clock, provider := testManager(t, 0, 0)
	m.ScaleUpTo(3)
	clock.Run(0)
	m.ReleaseAll()
	if m.Size() != 0 {
		t.Fatalf("size = %d after ReleaseAll", m.Size())
	}
	for _, in := range provider.Instances() {
		if in.State != cloud.Terminated {
			t.Fatalf("instance %d still %v", in.ID, in.State)
		}
	}
}

func TestWhenSizeFiresOnThreshold(t *testing.T) {
	m, clock, _ := testManager(t, 1, 1)
	fired := -1.0
	m.WhenSize(2, func() { fired = float64(clock.Now()) })
	m.ScaleUpTo(2)
	clock.Run(0)
	if fired != 2 {
		t.Fatalf("waiter fired at %v, want 2 (1s queue + 1s init)", fired)
	}
}

func TestWhenSizeImmediate(t *testing.T) {
	m, clock, _ := testManager(t, 0, 0)
	m.ScaleUpTo(1)
	clock.Run(0)
	fired := false
	m.WhenSize(1, func() { fired = true })
	if fired {
		t.Fatal("waiter fired synchronously")
	}
	clock.Run(0)
	if !fired {
		t.Fatal("immediate waiter never fired")
	}
}

func TestWhenSizeMultipleWaiters(t *testing.T) {
	m, clock, _ := testManager(t, 0, 0)
	var order []int
	m.WhenSize(3, func() { order = append(order, 3) })
	m.WhenSize(1, func() { order = append(order, 1) })
	m.WhenSize(2, func() { order = append(order, 2) })
	m.ScaleUpTo(3)
	clock.Run(0)
	if len(order) != 3 {
		t.Fatalf("fired %v", order)
	}
	// Waiters with lower thresholds fire no later than higher ones.
	seen := map[int]bool{}
	for _, v := range order {
		seen[v] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("missing waiters: %v", order)
	}
}

func TestScaleUpWhileScaling(t *testing.T) {
	m, clock, _ := testManager(t, 10, 0)
	m.ScaleUpTo(2)
	clock.Advance(5)
	// Mid-provisioning, raise the target: only the difference is added.
	if n := m.ScaleUpTo(5); n != 3 {
		t.Fatalf("incremental request = %d, want 3", n)
	}
	clock.Run(0)
	if m.Size() != 5 {
		t.Fatalf("size = %d, want 5", m.Size())
	}
}

func TestPreemptionAutoReplaced(t *testing.T) {
	m, clock, provider := testManager(t, 0, 0)
	if err := provider.SetFaults(cloud.FaultModel{PreemptionMeanSeconds: 50}); err != nil {
		t.Fatal(err)
	}
	var preempted []*Node
	m.SetPreemptionHandler(func(n *Node) { preempted = append(preempted, n) })
	m.ScaleUpTo(2)
	// Bounded advance only: with preemption armed, the replace/preempt
	// cycle keeps the event queue alive forever, so an unbounded Run
	// would never return.
	clock.Advance(0)
	if m.Size() != 2 {
		t.Fatalf("size = %d", m.Size())
	}
	// Run far enough that preemptions certainly fire; every loss must be
	// replaced so the pool converges back to the target. (No unbounded
	// Run here: with preemption enabled the replace/preempt cycle keeps
	// the event queue alive forever.)
	clock.Advance(500)
	if len(preempted) == 0 {
		t.Fatal("no preemption observed")
	}
	if m.Size()+m.Pending() < 2 {
		t.Fatalf("pool not healed: size=%d pending=%d", m.Size(), m.Pending())
	}
	// Preempted nodes are no longer in the pool.
	for _, n := range preempted {
		for _, cur := range m.Nodes() {
			if cur.ID == n.ID {
				t.Fatalf("preempted node %d still in pool", n.ID)
			}
		}
	}
}

func TestProvisionFailureRetried(t *testing.T) {
	m, clock, provider := testManager(t, 1, 0)
	if err := provider.SetFaults(cloud.FaultModel{ProvisionFailureProb: 0.5}); err != nil {
		t.Fatal(err)
	}
	m.ScaleUpTo(4)
	clock.Run(0)
	if m.Size() != 4 {
		t.Fatalf("size = %d after retries", m.Size())
	}
	if m.Retries() == 0 {
		t.Fatal("no retries recorded despite 50% failure rate")
	}
	if m.Retries() != provider.ProvisionFailures() {
		t.Fatalf("retries %d != failures %d", m.Retries(), provider.ProvisionFailures())
	}
}
