// Package cluster implements RubberBand's cluster manager (§5): it sits
// between the executor and the cloud provider, servicing ad-hoc requests to
// scale the worker pool up or down, tracking node lifecycle, and exposing
// the node inventory that the placement controller packs trials onto.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/cloud"
	"repro/internal/vclock"
)

// NodeID identifies a worker node within one Manager.
type NodeID int

// Node is one ready worker instance in the cluster.
type Node struct {
	// ID is the manager-scoped node identifier.
	ID NodeID
	// Instance is the underlying provider instance.
	Instance *cloud.Instance
	// GPUs is the node's accelerator count.
	GPUs int
}

// Manager elastically manages a homogeneous pool of worker nodes. All
// methods must be called from the vclock event-loop goroutine.
type Manager struct {
	provider *cloud.Provider
	instType cloud.InstanceType
	clock    *vclock.Clock

	nextID  NodeID
	ready   map[NodeID]*Node
	pending int
	target  int // desired ready-node count; reconcile provisions up to it
	// waiters are WhenSize callbacks fired as nodes become ready.
	waiters []waiter
	// byInstance maps provider instance IDs to ready nodes, for
	// preemption routing.
	byInstance map[int]*Node
	// onPreempt is the executor's preemption handler (may be nil).
	onPreempt func(*Node)
	// retries counts provisioning requests reissued after failures.
	retries int
}

type waiter struct {
	target int
	fn     func()
}

// NewManager returns a manager provisioning workers of type it from the
// provider.
func NewManager(provider *cloud.Provider, it cloud.InstanceType, clock *vclock.Clock) (*Manager, error) {
	if provider == nil || clock == nil {
		return nil, fmt.Errorf("cluster: nil provider or clock")
	}
	if it.GPUs < 1 {
		return nil, fmt.Errorf("cluster: worker type %q has no GPUs", it.Name)
	}
	m := &Manager{
		provider:   provider,
		instType:   it,
		clock:      clock,
		ready:      make(map[NodeID]*Node),
		byInstance: make(map[int]*Node),
	}
	// Heal capacity automatically: failed requests are reissued so that
	// the ready count still converges on the target, and preemptions are
	// both replaced and surfaced to the scheduler for trial recovery.
	provider.OnProvisionFailure(func(*cloud.Instance) {
		m.pending--
		m.retries++
		m.reconcile()
	})
	provider.OnPreemption(func(in *cloud.Instance) {
		node, ok := m.byInstance[in.ID]
		if !ok {
			return // not one of ours, or already released
		}
		delete(m.ready, node.ID)
		delete(m.byInstance, in.ID)
		m.reconcile()
		if m.onPreempt != nil {
			m.onPreempt(node)
		}
	})
	return m, nil
}

// SetPreemptionHandler registers fn to be invoked when a ready node is
// preempted (after the node has been removed from the pool and a
// replacement requested).
func (m *Manager) SetPreemptionHandler(fn func(*Node)) { m.onPreempt = fn }

// Retries returns the number of provisioning requests reissued after
// failures.
func (m *Manager) Retries() int { return m.retries }

// GPUsPerNode returns the accelerator count of the worker instance type.
func (m *Manager) GPUsPerNode() int { return m.instType.GPUs }

// InstanceType returns the worker instance type the manager provisions,
// so cost oracles can reprice node lifetimes independently.
func (m *Manager) InstanceType() cloud.InstanceType { return m.instType }

// Size returns the number of ready nodes.
func (m *Manager) Size() int { return len(m.ready) }

// Pending returns the number of nodes requested but not yet ready.
func (m *Manager) Pending() int { return m.pending }

// Nodes returns the ready nodes sorted by ID.
func (m *Manager) Nodes() []*Node {
	out := make([]*Node, 0, len(m.ready))
	for _, n := range m.ready {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ScaleUpTo raises the desired ready-node count to target (it never
// lowers it) and requests instances to cover the gap. It returns the
// number of new instances requested. Scale-down is explicit via Release
// so that the placement controller chooses which nodes to drain (§4.4).
func (m *Manager) ScaleUpTo(target int) int {
	if target > m.target {
		m.target = target
	}
	return m.reconcile()
}

// reconcile issues provisioning requests until ready+pending covers the
// target.
func (m *Manager) reconcile() int {
	requested := 0
	for len(m.ready)+m.pending < m.target {
		m.pending++
		requested++
		m.provider.Request(m.instType, func(in *cloud.Instance) {
			m.pending--
			node := &Node{ID: m.nextID, Instance: in, GPUs: in.Type.GPUs}
			m.nextID++
			m.ready[node.ID] = node
			m.byInstance[in.ID] = node
			m.notify()
		})
	}
	return requested
}

// Release deprovisions a ready node, stopping its billing and lowering
// the desired capacity accordingly. Releasing an unknown node is an
// error.
func (m *Manager) Release(id NodeID) error {
	node, ok := m.ready[id]
	if !ok {
		return fmt.Errorf("cluster: release of unknown node %d", id)
	}
	delete(m.ready, id)
	delete(m.byInstance, node.Instance.ID)
	m.provider.Terminate(node.Instance)
	if m.target > len(m.ready)+m.pending {
		m.target = len(m.ready) + m.pending
	}
	return nil
}

// ReleaseAll deprovisions every ready node (end of experiment).
func (m *Manager) ReleaseAll() {
	for id := range m.ready {
		//rbvet:ignore droppederr — id comes from the ready map itself, so Release cannot fail
		_ = m.Release(id)
	}
}

// WhenSize schedules fn to run as soon as the ready-node count reaches at
// least target (as a deferred event if it already has, keeping callback
// ordering uniform).
func (m *Manager) WhenSize(target int, fn func()) {
	if len(m.ready) >= target {
		m.clock.After(0, fn)
		return
	}
	m.waiters = append(m.waiters, waiter{target: target, fn: fn})
}

// notify fires waiters whose size condition is now satisfied.
func (m *Manager) notify() {
	var kept []waiter
	fired := m.waiters
	m.waiters = nil
	for _, w := range fired {
		if len(m.ready) >= w.target {
			w.fn()
		} else {
			kept = append(kept, w)
		}
	}
	m.waiters = append(kept, m.waiters...)
}
