// Package profiler implements RubberBand's pre-execution instrumentation
// step (§5): before planning, a trial's resource allocation is scaled up
// by powers of two and per-iteration training latencies are measured at
// each point. The aggregated data yields an interpolated scaling function
// and fitted latency distribution that parameterize the simulator.
//
// Because DL training is extremely repetitive with predictable
// performance, a handful of iterations per allocation suffices, and the
// whole step completes in simulated minutes — negligible next to the job
// itself.
package profiler

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configure a profiling run.
type Options struct {
	// MaxGPUs is the largest allocation probed (rounded down to a power
	// of two). Zero selects 16.
	MaxGPUs int
	// ItersPerPoint is the number of iterations measured per allocation.
	// Zero selects 20.
	ItersPerPoint int
	// GPUsPerNode is the worker instance's accelerator count, used to
	// derive the minimal node spread at each probed allocation. Zero
	// selects 4 (p3.8xlarge).
	GPUsPerNode int
}

func (o Options) withDefaults() Options {
	if o.MaxGPUs <= 0 {
		o.MaxGPUs = 16
	}
	if o.ItersPerPoint <= 0 {
		o.ItersPerPoint = 20
	}
	if o.GPUsPerNode <= 0 {
		o.GPUsPerNode = 4
	}
	return o
}

// Point is one measured allocation.
type Point struct {
	GPUs    int
	Mean    float64 // mean iteration latency (s)
	Std     float64 // sample std of iteration latency
	Speedup float64 // mean(1 GPU) / mean(this)
}

// Report is the profiling outcome.
type Report struct {
	// Profile is the fitted training profile for the simulator.
	Profile sim.MeasuredTrainProfile
	// Points are the raw measurements.
	Points []Point
	// Duration is the simulated wall time the profiling step consumed
	// (measurements are serial).
	Duration float64
}

// Profile measures the model's scaling behaviour at powers-of-two
// allocations up to opt.MaxGPUs and fits a training profile.
func Profile(m *model.Model, batch int, opt Options, rng *stats.RNG) (*Report, error) {
	if m == nil {
		return nil, fmt.Errorf("profiler: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if batch <= 0 {
		return nil, fmt.Errorf("profiler: batch %d", batch)
	}
	if rng == nil {
		return nil, fmt.Errorf("profiler: nil rng")
	}
	opt = opt.withDefaults()

	var (
		points   []Point
		gpus     []int
		speedups []float64
		duration float64
	)
	for g := 1; g <= opt.MaxGPUs; g *= 2 {
		nodes := model.MinNodes(g, opt.GPUsPerNode)
		dist := m.IterLatencyDist(batch, g, nodes)
		samples := make([]float64, opt.ItersPerPoint)
		for i := range samples {
			samples[i] = dist.Sample(rng)
			duration += samples[i]
		}
		s := stats.Summarize(samples)
		points = append(points, Point{GPUs: g, Mean: s.Mean, Std: s.Std})
		gpus = append(gpus, g)
		speedups = append(speedups, 0) // filled below once mean(1) is known
	}
	base := points[0].Mean
	if base <= 0 {
		return nil, fmt.Errorf("profiler: non-positive base latency %v", base)
	}
	for i := range points {
		sp := base / points[i].Mean
		if i == 0 {
			sp = 1 // anchor exactly; measurement noise must not break monotonicity at 1
		}
		if sp < 1 {
			sp = 1 // more GPUs are never treated as a slowdown by the planner
		}
		points[i].Speedup = sp
		speedups[i] = sp
	}
	scaling, err := model.NewInterpolatedScaling(gpus, speedups)
	if err != nil {
		return nil, fmt.Errorf("profiler: fitting scaling function: %w", err)
	}
	return &Report{
		Profile: sim.MeasuredTrainProfile{
			BaseMean: points[0].Mean,
			BaseStd:  points[0].Std,
			Scaling:  scaling,
		},
		Points:   points,
		Duration: duration,
	}, nil
}
