package profiler

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Observation is one aggregated online measurement of iteration latency at
// a per-trial GPU allocation, fed back from the executor by the replan
// controller.
type Observation struct {
	// GPUs is the per-trial allocation the latencies were observed at.
	GPUs int
	// Mean is the observed mean iteration latency in seconds.
	Mean float64
	// Count is the number of iterations aggregated into Mean; it weights
	// the global drift ratio.
	Count int
}

// Refit re-fits a training profile from online observations without
// re-running the instrumentation step (§5): the incremental counterpart of
// Profile, used by the replan controller when execution drifts from the
// profiled prediction.
//
// Allocations that were observed keep their measured means exactly; the
// rest of the powers-of-two grid (up to maxGPUs) carries the base
// profile's prediction scaled by the global observation-weighted
// drift ratio — a uniform-slowdown prior for the unobserved region.
// Speedups are re-anchored at the fitted 1-GPU mean and clamped at 1,
// matching Profile's policy that more GPUs are never treated as a
// slowdown. The result is a pure function of (base, maxGPUs, obs): no
// randomness, no clock.
func Refit(base sim.TrainProfile, maxGPUs int, obs []Observation) (sim.MeasuredTrainProfile, error) {
	if base == nil {
		return sim.MeasuredTrainProfile{}, fmt.Errorf("profiler: refit of nil profile")
	}
	if maxGPUs < 1 {
		return sim.MeasuredTrainProfile{}, fmt.Errorf("profiler: refit max GPUs %d", maxGPUs)
	}
	if len(obs) == 0 {
		return sim.MeasuredTrainProfile{}, fmt.Errorf("profiler: refit without observations")
	}

	observed := make(map[int]float64, len(obs))
	var ratioSum, weight float64
	for _, o := range obs {
		if o.GPUs < 1 || o.Count < 1 || o.Mean <= 0 {
			return sim.MeasuredTrainProfile{}, fmt.Errorf("profiler: invalid observation %+v", o)
		}
		if _, dup := observed[o.GPUs]; dup {
			return sim.MeasuredTrainProfile{}, fmt.Errorf("profiler: duplicate observation at %d GPUs", o.GPUs)
		}
		pred := base.IterDist(o.GPUs).Mean()
		if pred <= 0 {
			return sim.MeasuredTrainProfile{}, fmt.Errorf("profiler: base profile predicts %v at %d GPUs", pred, o.GPUs)
		}
		observed[o.GPUs] = o.Mean
		ratioSum += float64(o.Count) * (o.Mean / pred)
		weight += float64(o.Count)
	}
	ratio := ratioSum / weight

	// Fit grid: the profiler's powers-of-two ladder up to maxGPUs, plus
	// every observed allocation and the 1-GPU anchor.
	gridSet := map[int]bool{1: true}
	for g := 1; g <= maxGPUs; g *= 2 {
		gridSet[g] = true
	}
	for g := range observed {
		gridSet[g] = true
	}
	grid := make([]int, 0, len(gridSet))
	for g := range gridSet {
		grid = append(grid, g)
	}
	sort.Ints(grid)

	means := make([]float64, len(grid))
	for i, g := range grid {
		if m, ok := observed[g]; ok {
			means[i] = m
			continue
		}
		means[i] = base.IterDist(g).Mean() * ratio
	}
	baseMean := means[0]

	speedups := make([]float64, len(grid))
	for i := range grid {
		sp := baseMean / means[i]
		if i == 0 || sp < 1 {
			sp = 1
		}
		speedups[i] = sp
	}
	scaling, err := model.NewInterpolatedScaling(grid, speedups)
	if err != nil {
		return sim.MeasuredTrainProfile{}, fmt.Errorf("profiler: refitting scaling function: %w", err)
	}
	return sim.MeasuredTrainProfile{
		BaseMean: baseMean,
		BaseStd:  baseStd(base, ratio),
		Scaling:  scaling,
	}, nil
}

// baseStd carries the base profile's 1-GPU latency spread through a refit,
// scaled by the drift ratio so relative noise is preserved (the same σ∝μ
// relationship MeasuredTrainProfile applies across allocations).
func baseStd(base sim.TrainProfile, ratio float64) float64 {
	if n, ok := base.IterDist(1).(stats.Normal); ok {
		return n.Sigma * ratio
	}
	return 0
}
