package profiler

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

func TestProfileValidation(t *testing.T) {
	m := model.ResNet50()
	rng := stats.NewRNG(1)
	if _, err := Profile(nil, 512, Options{}, rng); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Profile(m, 0, Options{}, rng); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := Profile(m, 512, Options{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
	bad := *m
	bad.BaseIterSeconds = 0
	if _, err := Profile(&bad, 512, Options{}, rng); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestProfilePowersOfTwo(t *testing.T) {
	m := model.ResNet50()
	rep, err := Profile(m, 512, Options{MaxGPUs: 16, ItersPerPoint: 50, GPUsPerNode: 4}, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	wantGPUs := []int{1, 2, 4, 8, 16}
	if len(rep.Points) != len(wantGPUs) {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for i, p := range rep.Points {
		if p.GPUs != wantGPUs[i] {
			t.Fatalf("point %d at %d GPUs, want %d", i, p.GPUs, wantGPUs[i])
		}
		if p.Mean <= 0 {
			t.Fatalf("point %d mean %v", i, p.Mean)
		}
	}
	if rep.Duration <= 0 {
		t.Fatal("zero profiling duration")
	}
}

func TestProfileRecoversScaling(t *testing.T) {
	// The fitted profile's iteration latency should closely track the
	// ground-truth model at the probed allocations.
	m := model.ResNet50()
	m.IterNoiseStd = 0.05 // tight measurements
	rep, err := Profile(m, 512, Options{MaxGPUs: 16, ItersPerPoint: 200, GPUsPerNode: 4}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{1, 2, 4, 8, 16} {
		nodes := model.MinNodes(g, 4)
		truth := m.IterLatencyMean(512, g, nodes)
		got := rep.Profile.IterDist(g).Mean()
		if math.Abs(got-truth)/truth > 0.05 {
			t.Errorf("at %d GPUs: fitted %v vs truth %v", g, got, truth)
		}
	}
}

func TestProfileSpeedupMonotoneAndAnchored(t *testing.T) {
	m := model.ResNet101()
	rep, err := Profile(m, 1024, Options{MaxGPUs: 32, ItersPerPoint: 30, GPUsPerNode: 4}, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points[0].Speedup != 1 {
		t.Fatalf("speedup at 1 GPU = %v", rep.Points[0].Speedup)
	}
	for _, p := range rep.Points {
		if p.Speedup < 1 {
			t.Fatalf("speedup < 1 at %d GPUs", p.GPUs)
		}
		if p.Speedup > float64(p.GPUs) {
			t.Fatalf("super-linear fitted speedup %v at %d GPUs", p.Speedup, p.GPUs)
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	m := model.BERT()
	a, err := Profile(m, 32, Options{}, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile(m, 32, Options{}, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Profile.BaseMean != b.Profile.BaseMean {
		t.Fatal("profiling not deterministic for fixed seed")
	}
}

func TestProfileDefaults(t *testing.T) {
	opt := Options{}.withDefaults()
	if opt.MaxGPUs != 16 || opt.ItersPerPoint != 20 || opt.GPUsPerNode != 4 {
		t.Fatalf("defaults = %+v", opt)
	}
}
