package profiler

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// linearProfile predicts mean/gpus with optional 1-GPU noise.
type linearProfile struct {
	mean  float64
	sigma float64
}

func (p linearProfile) IterDist(gpus int) stats.Dist {
	m := p.mean / float64(gpus)
	if p.sigma == 0 {
		return stats.Deterministic{Value: m}
	}
	return stats.Normal{Mu: m, Sigma: p.sigma / float64(gpus)}
}

func TestRefitExactPassthrough(t *testing.T) {
	base := linearProfile{mean: 100}
	obs := []Observation{
		{GPUs: 1, Mean: 100, Count: 5},
		{GPUs: 4, Mean: 25, Count: 5},
	}
	fitted, err := Refit(base, 16, obs)
	if err != nil {
		t.Fatal(err)
	}
	// On-profile observations (ratio exactly 1) must reproduce the base
	// predictions exactly at every grid point.
	for _, g := range []int{1, 2, 4, 8, 16} {
		got := fitted.IterDist(g).Mean()
		want := base.IterDist(g).Mean()
		if got != want {
			t.Fatalf("refit mean at %d GPUs = %v, base predicts %v", g, got, want)
		}
	}
}

func TestRefitUniformSlowdown(t *testing.T) {
	base := linearProfile{mean: 100}
	obs := []Observation{
		{GPUs: 2, Mean: 100, Count: 3}, // base predicts 50: ratio 2
	}
	fitted, err := Refit(base, 8, obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{1, 2, 4, 8} {
		got := fitted.IterDist(g).Mean()
		want := 2 * base.IterDist(g).Mean()
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("refit mean at %d GPUs = %v, want 2x base = %v", g, got, want)
		}
	}
}

// TestRefitObservedOverridesPrior: a measured allocation keeps its exact
// measurement even when it disagrees with the global ratio.
func TestRefitObservedOverridesPrior(t *testing.T) {
	base := linearProfile{mean: 100}
	obs := []Observation{
		{GPUs: 1, Mean: 200, Count: 10}, // ratio 2
		{GPUs: 4, Mean: 80, Count: 10},  // ratio 3.2
	}
	fitted, err := Refit(base, 4, obs)
	if err != nil {
		t.Fatal(err)
	}
	if got := fitted.IterDist(1).Mean(); got != 200 {
		t.Fatalf("1-GPU mean %v, observed 200", got)
	}
	if got := fitted.IterDist(4).Mean(); math.Abs(got-80) > 1e-9 {
		t.Fatalf("4-GPU mean %v, observed 80", got)
	}
}

// TestRefitClampsSpeedup: more GPUs are never treated as a slowdown, even
// if an observation claims so (Profile's clamping policy).
func TestRefitClampsSpeedup(t *testing.T) {
	base := linearProfile{mean: 100}
	obs := []Observation{
		{GPUs: 1, Mean: 100, Count: 3},
		{GPUs: 2, Mean: 150, Count: 3}, // "slower" at 2 GPUs
	}
	fitted, err := Refit(base, 2, obs)
	if err != nil {
		t.Fatal(err)
	}
	if got := fitted.IterDist(2).Mean(); got > fitted.IterDist(1).Mean() {
		t.Fatalf("2-GPU mean %v exceeds 1-GPU mean %v after clamp", got, fitted.IterDist(1).Mean())
	}
}

func TestRefitCarriesNoise(t *testing.T) {
	base := linearProfile{mean: 100, sigma: 10}
	fitted, err := Refit(base, 4, []Observation{{GPUs: 1, Mean: 200, Count: 3}})
	if err != nil {
		t.Fatal(err)
	}
	n, ok := fitted.IterDist(1).(stats.Normal)
	if !ok {
		t.Fatalf("refit of noisy base produced %T, want Normal", fitted.IterDist(1))
	}
	if math.Abs(n.Sigma-20) > 1e-9 {
		t.Fatalf("refit sigma %v, want base sigma x ratio = 20", n.Sigma)
	}
}

func TestRefitErrors(t *testing.T) {
	base := linearProfile{mean: 100}
	cases := []struct {
		name    string
		profile sim.TrainProfile
		maxGPUs int
		obs     []Observation
	}{
		{"nil profile", nil, 4, []Observation{{GPUs: 1, Mean: 1, Count: 1}}},
		{"zero max gpus", base, 0, []Observation{{GPUs: 1, Mean: 1, Count: 1}}},
		{"no observations", base, 4, nil},
		{"zero gpus", base, 4, []Observation{{GPUs: 0, Mean: 1, Count: 1}}},
		{"zero count", base, 4, []Observation{{GPUs: 1, Mean: 1, Count: 0}}},
		{"zero mean", base, 4, []Observation{{GPUs: 1, Mean: 0, Count: 1}}},
		{"duplicate", base, 4, []Observation{{GPUs: 2, Mean: 1, Count: 1}, {GPUs: 2, Mean: 2, Count: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Refit(tc.profile, tc.maxGPUs, tc.obs); err == nil {
				t.Fatalf("Refit accepted %s", tc.name)
			}
		})
	}
}

// TestRefitFeedsScalingModel closes the loop with the model package: the
// fitted scaling function is a valid InterpolatedScaling usable by the
// simulator (anchor at 1 GPU, non-decreasing grid).
func TestRefitFeedsScalingModel(t *testing.T) {
	base := linearProfile{mean: 64}
	fitted, err := Refit(base, 16, []Observation{
		{GPUs: 4, Mean: 24, Count: 8},
		{GPUs: 16, Mean: 8, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var _ *model.InterpolatedScaling = fitted.Scaling
	if sp := fitted.Scaling.Speedup(1); sp != 1 {
		t.Fatalf("speedup at 1 GPU is %v, want 1", sp)
	}
	if fitted.Scaling.Speedup(16) < fitted.Scaling.Speedup(4) {
		t.Fatal("speedup decreased with more GPUs")
	}
}
