// Package placement implements RubberBand's placement controller (§4.4,
// Algorithm 3): it converts per-trial GPU allocations into physical
// assignments of trial workers to nodes, maximizing spatial locality.
//
// Invariants the controller maintains:
//
//   - A trial whose allocation fits on one node is placed entirely on one
//     node (co-location); larger trials are packed onto a minimal set of
//     nodes, taking whole nodes where possible.
//   - Assignments of trials whose allocation did not change are preserved
//     across scheduling epochs on a best-effort basis.
//   - Trials whose reassignment has been issued but not yet confirmed by
//     their workers are locked: their resources cannot be perturbed.
//   - When a trial cannot be placed on free capacity, already-placed
//     smaller, unlocked trials are displaced to make room; displaced
//     trials re-enter the queue for their own placement attempt.
package placement

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
)

// TrialID identifies a trial within one experiment.
type TrialID int

// Assignment is one trial's physical placement: GPUs held per node.
type Assignment map[cluster.NodeID]int

// GPUs returns the total GPUs in the assignment.
func (a Assignment) GPUs() int {
	total := 0
	for _, g := range a {
		total += g
	}
	return total
}

// Nodes returns the number of distinct nodes the assignment spans.
func (a Assignment) Nodes() int { return len(a) }

// clone returns a deep copy.
func (a Assignment) clone() Assignment {
	c := make(Assignment, len(a))
	for n, g := range a {
		c[n] = g
	}
	return c
}

// Plan maps trials to their assignments.
type Plan map[TrialID]Assignment

// clone returns a deep copy.
func (p Plan) clone() Plan {
	c := make(Plan, len(p))
	for t, a := range p {
		c[t] = a.clone()
	}
	return c
}

// equal reports whether two assignments hold the same GPUs on the same
// nodes.
func (a Assignment) equal(b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for n, g := range a {
		if b[n] != g {
			return false
		}
	}
	return true
}

// Moves counts the trials in next whose gang differs from their gang in
// prev (absent, or placed on different nodes/GPU counts) — the migration
// cost of transitioning between two placement plans. The executor reports
// it when a replanned allocation lands at a stage boundary.
func Moves(prev, next Plan) int {
	moved := 0
	for t, asg := range next {
		if !asg.equal(prev[t]) {
			moved++
		}
	}
	return moved
}

// Controller computes placement plans over scheduling epochs.
type Controller struct {
	nodeGPUs int
	current  Plan
	locked   map[TrialID]bool
}

// NewController returns a controller for nodes with nodeGPUs accelerators
// each. It panics if nodeGPUs < 1.
func NewController(nodeGPUs int) *Controller {
	if nodeGPUs < 1 {
		panic(fmt.Sprintf("placement: nodeGPUs = %d", nodeGPUs))
	}
	return &Controller{
		nodeGPUs: nodeGPUs,
		current:  make(Plan),
		locked:   make(map[TrialID]bool),
	}
}

// Current returns a deep copy of the current placement plan.
func (c *Controller) Current() Plan { return c.current.clone() }

// Lock marks a trial's placement as in-flight: it cannot be displaced
// until Unlock (§4.4.1 "reserved" list).
func (c *Controller) Lock(t TrialID) { c.locked[t] = true }

// Unlock clears a trial's in-flight mark.
func (c *Controller) Unlock(t TrialID) { delete(c.locked, t) }

// Remove drops a trial (terminated or finished) from the plan, freeing its
// resources for the next Update.
func (c *Controller) Remove(t TrialID) {
	delete(c.current, t)
	delete(c.locked, t)
}

// node tracks capacity during one Update pass.
type node struct {
	id   cluster.NodeID
	free int
}

// Update computes a placement plan satisfying allocs (trial -> GPUs) over
// the given nodes, implementing Algorithm 3. Trials already placed with an
// unchanged allocation keep their assignment; others are (re)placed
// best-fit in descending allocation order, displacing smaller unlocked
// trials when necessary. It returns the new plan, which also becomes the
// controller's current plan. An error is returned if total demand exceeds
// capacity or a locked trial's allocation changed.
func (c *Controller) Update(allocs map[TrialID]int, nodes []*cluster.Node) (Plan, error) {
	demand := 0
	for t, g := range allocs {
		if g < 1 {
			return nil, fmt.Errorf("placement: trial %d allocated %d GPUs", t, g)
		}
		demand += g
	}
	capacity := 0
	for _, n := range nodes {
		capacity += n.GPUs
	}
	if demand > capacity {
		return nil, fmt.Errorf("placement: demand %d GPUs exceeds capacity %d", demand, capacity)
	}

	// Start from assignments that can be preserved: trials present in the
	// current plan with an unchanged allocation and whose nodes all still
	// exist (remove_discrepancies).
	nodeSet := make(map[cluster.NodeID]int, len(nodes)) // id -> capacity
	for _, n := range nodes {
		nodeSet[n.ID] = n.GPUs
	}
	plan := make(Plan, len(allocs))
	for t, a := range c.current {
		want, live := allocs[t]
		if !live {
			if c.locked[t] {
				return nil, fmt.Errorf("placement: locked trial %d removed from allocation", t)
			}
			continue
		}
		ok := a.GPUs() == want
		for nid := range a {
			if _, exists := nodeSet[nid]; !exists {
				ok = false
			}
		}
		if ok {
			plan[t] = a.clone()
		} else if c.locked[t] {
			return nil, fmt.Errorf("placement: locked trial %d needs reallocation", t)
		}
	}

	// Fast path: everything preserved.
	if len(plan) == len(allocs) {
		c.current = plan
		return plan.clone(), nil
	}

	// Compute free capacity under the preserved assignments.
	free := make(map[cluster.NodeID]int, len(nodes))
	for id, cap := range nodeSet {
		free[id] = cap
	}
	for _, a := range plan {
		for nid, g := range a {
			free[nid] -= g
			if free[nid] < 0 {
				return nil, fmt.Errorf("placement: preserved plan oversubscribes node %d", nid)
			}
		}
	}

	// Queue of trials to place, largest first (Algorithm 3's
	// sort_by_alloc descending). Trials placed during this epoch cannot
	// themselves be displaced — each queued trial gets exactly one
	// placement opportunity, which guarantees termination.
	var queue []TrialID
	for t := range allocs {
		if _, done := plan[t]; !done {
			queue = append(queue, t)
		}
	}
	sortTrials(queue, allocs)

	placedNow := make(map[TrialID]bool)
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		want := allocs[t]
		asg, displaced, err := c.place(t, want, plan, free, placedNow)
		if err != nil {
			return nil, err
		}
		plan[t] = asg
		placedNow[t] = true
		if len(displaced) > 0 {
			queue = append(queue, displaced...)
			sortTrials(queue, allocs)
		}
	}
	c.current = plan
	return plan.clone(), nil
}

// place assigns want GPUs to trial t, mutating plan and free. It may
// displace smaller trials — excluding locked trials and trials already
// placed this epoch — which are removed from plan (their capacity returned
// to free) and returned for re-queueing.
func (c *Controller) place(t TrialID, want int, plan Plan, free map[cluster.NodeID]int, placedNow map[TrialID]bool) (Assignment, []TrialID, error) {
	asg := make(Assignment)
	remaining := want
	var displaced []TrialID

	for remaining > 0 {
		// The unit is a full node for whole-node chunks, or the entire
		// remainder (which must then be co-located on a single node).
		unit := remaining
		if unit > c.nodeGPUs {
			unit = c.nodeGPUs
		}
		nid, ok := bestFit(free, unit)
		if !ok {
			// Displace: free the smallest displaceable trial whose
			// removal opens a node with enough room.
			victim, vok := c.pickVictim(plan, free, unit, t, placedNow)
			if !vok {
				return nil, nil, fmt.Errorf("placement: cannot fit %d GPUs for trial %d", unit, t)
			}
			for nid, g := range plan[victim] {
				free[nid] += g
			}
			delete(plan, victim)
			displaced = append(displaced, victim)
			continue
		}
		free[nid] -= unit
		asg[nid] += unit
		remaining -= unit
	}
	return asg, displaced, nil
}

// bestFit returns the node with the least free capacity that still fits
// unit GPUs.
func bestFit(free map[cluster.NodeID]int, unit int) (cluster.NodeID, bool) {
	best := cluster.NodeID(-1)
	bestFree := int(^uint(0) >> 1)
	for nid, f := range free {
		if f >= unit && (f < bestFree || (f == bestFree && nid < best)) {
			//rbvet:ignore maporder — ties on free capacity resolve to the smallest NodeID, a strict total order independent of iteration order
			best, bestFree = nid, f
		}
	}
	return best, best >= 0
}

// pickVictim chooses the smallest displaceable trial (other than t) whose
// removal would let some node fit unit GPUs, breaking equal-GPU ties by
// the smallest TrialID (mirroring bestFit and sortTrials) so the victim
// is independent of map iteration order. Locked trials and trials placed
// this epoch are not displaceable.
func (c *Controller) pickVictim(plan Plan, free map[cluster.NodeID]int, unit int, t TrialID, placedNow map[TrialID]bool) (TrialID, bool) {
	victim := TrialID(-1)
	victimGPUs := int(^uint(0) >> 1)
	for cand, asg := range plan {
		if cand == t || c.locked[cand] || placedNow[cand] {
			continue
		}
		g := asg.GPUs()
		// Keep the minimum under the (GPUs, TrialID) total order; a
		// strict order admits exactly one minimum, so any iteration
		// order converges on the same victim.
		if g > victimGPUs || (g == victimGPUs && cand > victim) {
			continue
		}
		// Would removing cand open enough room somewhere?
		for nid, held := range asg {
			if free[nid]+held >= unit {
				//rbvet:ignore maporder — selection follows the strict (GPUs, TrialID) total order established by the guard above
				victim, victimGPUs = cand, g
				break
			}
		}
	}
	return victim, victim >= 0
}

// sortTrials orders trials by allocation descending, breaking ties by ID
// for determinism.
func sortTrials(ts []TrialID, allocs map[TrialID]int) {
	sort.Slice(ts, func(i, j int) bool {
		if allocs[ts[i]] != allocs[ts[j]] {
			return allocs[ts[i]] > allocs[ts[j]]
		}
		return ts[i] < ts[j]
	})
}

// NodesNeeded returns the minimum node count that lets trials trials of
// gpusPerTrial GPUs each be placed with full co-location: sub-node trials
// never split across nodes, super-node trials take whole nodes plus a
// shared node for any remainder. This is the cluster size the executor
// provisions for a stage, and the instance count the simulator prices.
func NodesNeeded(trials, gpusPerTrial, nodeGPUs int) int {
	if trials < 1 || gpusPerTrial < 1 || nodeGPUs < 1 {
		panic(fmt.Sprintf("placement: NodesNeeded(%d, %d, %d)", trials, gpusPerTrial, nodeGPUs))
	}
	if gpusPerTrial <= nodeGPUs {
		perNode := nodeGPUs / gpusPerTrial
		return (trials + perNode - 1) / perNode
	}
	whole := gpusPerTrial / nodeGPUs
	rem := gpusPerTrial % nodeGPUs
	n := trials * whole
	if rem > 0 {
		remPerNode := nodeGPUs / rem
		n += (trials + remPerNode - 1) / remPerNode
	}
	return n
}

// DrainOrder returns the ready nodes ordered so that draining them in
// sequence frees whole machines fastest: emptiest first. Used before
// cluster scale-down to bin-pack trials away from the nodes about to be
// released.
func (c *Controller) DrainOrder(nodes []*cluster.Node) []cluster.NodeID {
	used := make(map[cluster.NodeID]int)
	for _, a := range c.current {
		for nid, g := range a {
			used[nid] += g
		}
	}
	ids := make([]cluster.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	sort.Slice(ids, func(i, j int) bool {
		if used[ids[i]] != used[ids[j]] {
			return used[ids[i]] < used[ids[j]]
		}
		return ids[i] > ids[j] // prefer releasing newest nodes on ties
	})
	return ids
}
