package placement

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

// mkNodes builds n nodes with gpus GPUs each.
func mkNodes(n, gpus int) []*cluster.Node {
	out := make([]*cluster.Node, n)
	for i := range out {
		out[i] = &cluster.Node{ID: cluster.NodeID(i), GPUs: gpus}
	}
	return out
}

// checkPlan verifies structural invariants: exact allocations, no node
// oversubscription, and co-location of sub-node trials.
func checkPlan(t *testing.T, plan Plan, allocs map[TrialID]int, nodes []*cluster.Node, nodeGPUs int) {
	t.Helper()
	if len(plan) != len(allocs) {
		t.Fatalf("plan covers %d trials, want %d", len(plan), len(allocs))
	}
	used := make(map[cluster.NodeID]int)
	capacity := make(map[cluster.NodeID]int)
	for _, n := range nodes {
		capacity[n.ID] = n.GPUs
	}
	for tr, want := range allocs {
		asg, ok := plan[tr]
		if !ok {
			t.Fatalf("trial %d unplaced", tr)
		}
		if asg.GPUs() != want {
			t.Fatalf("trial %d got %d GPUs, want %d", tr, asg.GPUs(), want)
		}
		if want <= nodeGPUs && asg.Nodes() != 1 {
			t.Fatalf("trial %d (%d GPUs) spans %d nodes, want 1", tr, want, asg.Nodes())
		}
		for nid, g := range asg {
			if _, exists := capacity[nid]; !exists {
				t.Fatalf("trial %d placed on unknown node %d", tr, nid)
			}
			used[nid] += g
		}
	}
	for nid, u := range used {
		if u > capacity[nid] {
			t.Fatalf("node %d oversubscribed: %d > %d", nid, u, capacity[nid])
		}
	}
}

func TestNewControllerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewController(0)
}

func TestSimplePlacement(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(2, 4)
	allocs := map[TrialID]int{0: 2, 1: 2, 2: 4}
	plan, err := c.Update(allocs, nodes)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, plan, allocs, nodes, 4)
	// Trials 0 and 1 must share a node so trial 2 gets a whole one.
	if plan[2].Nodes() != 1 {
		t.Fatalf("trial 2 fragmented: %v", plan[2])
	}
}

func TestWholeNodeTrials(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(3, 4)
	allocs := map[TrialID]int{0: 8, 1: 4}
	plan, err := c.Update(allocs, nodes)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, plan, allocs, nodes, 4)
	if plan[0].Nodes() != 2 {
		t.Fatalf("8-GPU trial spans %d nodes, want exactly 2", plan[0].Nodes())
	}
}

func TestDemandExceedsCapacity(t *testing.T) {
	c := NewController(4)
	if _, err := c.Update(map[TrialID]int{0: 9}, mkNodes(2, 4)); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestZeroAllocationRejected(t *testing.T) {
	c := NewController(4)
	if _, err := c.Update(map[TrialID]int{0: 0}, mkNodes(1, 4)); err == nil {
		t.Fatal("zero allocation accepted")
	}
}

func TestPreservationAcrossEpochs(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(4, 4)
	allocs := map[TrialID]int{0: 4, 1: 4, 2: 4, 3: 4}
	plan1, err := c.Update(allocs, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Trial 3 finishes; the rest keep their allocation. Their placements
	// must be untouched.
	delete(allocs, 3)
	plan2, err := c.Update(allocs, nodes)
	if err != nil {
		t.Fatal(err)
	}
	for tr := TrialID(0); tr < 3; tr++ {
		for nid, g := range plan1[tr] {
			if plan2[tr][nid] != g {
				t.Fatalf("trial %d moved: %v -> %v", tr, plan1[tr], plan2[tr])
			}
		}
	}
}

func TestReallocationTriggersMove(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(4, 4)
	plan1, err := c.Update(map[TrialID]int{0: 2, 1: 2, 2: 2, 3: 2}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	_ = plan1
	// Stage transition: two survivors double their allocation.
	allocs := map[TrialID]int{0: 4, 1: 4}
	plan2, err := c.Update(allocs, nodes)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, plan2, allocs, nodes, 4)
	// Each survivor is co-located on a single node (Table 1's property).
	for tr, asg := range plan2 {
		if asg.Nodes() != 1 {
			t.Fatalf("trial %d not co-located: %v", tr, asg)
		}
	}
}

func TestDisplacementMakesRoom(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(2, 4)
	// Two small trials land anywhere.
	if _, err := c.Update(map[TrialID]int{10: 1, 11: 1}, nodes); err != nil {
		t.Fatal(err)
	}
	// Now a 4-GPU trial arrives; if the small trials sit on different
	// nodes, one must be displaced so the big trial gets a full node.
	allocs := map[TrialID]int{10: 1, 11: 1, 12: 4}
	plan, err := c.Update(allocs, nodes)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, plan, allocs, nodes, 4)
	if plan[12].Nodes() != 1 {
		t.Fatalf("big trial fragmented: %v", plan[12])
	}
}

func TestLockedTrialNotDisplaced(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(2, 4)
	if _, err := c.Update(map[TrialID]int{0: 3, 1: 3}, nodes); err != nil {
		t.Fatal(err)
	}
	c.Lock(0)
	c.Lock(1)
	// A 4-GPU trial cannot be placed without displacing a locked trial.
	if _, err := c.Update(map[TrialID]int{0: 3, 1: 3, 2: 4}, nodes); err == nil {
		t.Fatal("placement succeeded despite locked trials blocking")
	}
	// After unlocking, displacement succeeds... but capacity (3+3+4=10)
	// exceeds 8, so shrink trial 1 away first.
	c.Unlock(0)
	c.Unlock(1)
	allocs := map[TrialID]int{0: 3, 2: 4}
	plan, err := c.Update(allocs, nodes)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, plan, allocs, nodes, 4)
}

func TestLockedTrialReallocationErrors(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(1, 4)
	if _, err := c.Update(map[TrialID]int{0: 2}, nodes); err != nil {
		t.Fatal(err)
	}
	c.Lock(0)
	if _, err := c.Update(map[TrialID]int{0: 4}, nodes); err == nil {
		t.Fatal("locked reallocation accepted")
	}
	if _, err := c.Update(map[TrialID]int{}, nodes); err == nil {
		t.Fatal("locked removal accepted")
	}
}

func TestRemove(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(1, 4)
	if _, err := c.Update(map[TrialID]int{0: 4}, nodes); err != nil {
		t.Fatal(err)
	}
	c.Remove(0)
	if len(c.Current()) != 0 {
		t.Fatal("Remove left placement behind")
	}
	// Freed capacity is immediately reusable.
	plan, err := c.Update(map[TrialID]int{1: 4}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if plan[1].GPUs() != 4 {
		t.Fatalf("plan %v", plan)
	}
}

func TestNodeRemovalForcesReplacement(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(2, 4)
	if _, err := c.Update(map[TrialID]int{0: 4, 1: 4}, nodes); err != nil {
		t.Fatal(err)
	}
	// Node 1 is drained away; trial on it must be replaced onto node 0.
	allocs := map[TrialID]int{0: 4}
	plan, err := c.Update(allocs, nodes[:1])
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, plan, allocs, nodes[:1], 4)
}

func TestDrainOrderPrefersEmptyNodes(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(3, 4)
	if _, err := c.Update(map[TrialID]int{0: 4, 1: 2}, nodes); err != nil {
		t.Fatal(err)
	}
	order := c.DrainOrder(nodes)
	if len(order) != 3 {
		t.Fatalf("order %v", order)
	}
	// First node to drain must be the one with no placement.
	used := map[cluster.NodeID]int{}
	for _, a := range c.Current() {
		for nid, g := range a {
			used[nid] += g
		}
	}
	if used[order[0]] != 0 {
		t.Fatalf("drain order %v starts with used node (%d GPUs)", order, used[order[0]])
	}
	if used[order[2]] < used[order[1]] {
		t.Fatalf("drain order %v not emptiest-first", order)
	}
}

func TestCurrentIsCopy(t *testing.T) {
	c := NewController(4)
	nodes := mkNodes(1, 4)
	if _, err := c.Update(map[TrialID]int{0: 2}, nodes); err != nil {
		t.Fatal(err)
	}
	snap := c.Current()
	snap[0][cluster.NodeID(0)] = 99
	if c.Current()[0][cluster.NodeID(0)] != 2 {
		t.Fatal("Current exposed internal state")
	}
}

// Property: for random workloads Update either errors (genuine bin-packing
// infeasibility) or yields a valid plan — exact totals, no
// oversubscription, sub-node trials co-located.
func TestQuickPlacementInvariants(t *testing.T) {
	f := func(rawAllocs []uint8, nodesRaw uint8) bool {
		nodeGPUs := 8
		nNodes := int(nodesRaw%6) + 1
		nodes := mkNodes(nNodes, nodeGPUs)
		capacity := nNodes * nodeGPUs

		c := NewController(nodeGPUs)
		allocs := make(map[TrialID]int)
		total := 0
		for i, raw := range rawAllocs {
			if i >= 12 {
				break
			}
			g := int(raw%uint8(nodeGPUs)) + 1
			if total+g > capacity {
				continue
			}
			allocs[TrialID(i)] = g
			total += g
		}
		if len(allocs) == 0 {
			return true
		}
		plan, err := c.Update(allocs, nodes)
		if err != nil {
			return true // fragmentation can make co-location impossible
		}
		used := make(map[cluster.NodeID]int)
		for tr, want := range allocs {
			asg := plan[tr]
			if asg.GPUs() != want {
				return false
			}
			if want <= nodeGPUs && asg.Nodes() != 1 {
				return false
			}
			for nid, g := range asg {
				used[nid] += g
			}
		}
		for _, u := range used {
			if u > nodeGPUs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: fair workloads — equal per-trial allocations over NodesNeeded
// nodes, the shape the executor always produces — must always place.
func TestQuickFairWorkloadsAlwaysPlace(t *testing.T) {
	f := func(trialsRaw, perRaw, gpnRaw uint8) bool {
		trials := int(trialsRaw%16) + 1
		gpn := []int{1, 2, 4, 8}[gpnRaw%4]
		per := int(perRaw%16) + 1
		nodes := mkNodes(NodesNeeded(trials, per, gpn), gpn)
		c := NewController(gpn)
		allocs := make(map[TrialID]int, trials)
		for i := 0; i < trials; i++ {
			allocs[TrialID(i)] = per
		}
		plan, err := c.Update(allocs, nodes)
		if err != nil {
			return false
		}
		for _, want := range allocs {
			if want <= gpn {
				// Co-location invariant for sub-node trials.
				for tr := range allocs {
					if plan[tr].Nodes() != 1 && allocs[tr] <= gpn {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNodesNeeded(t *testing.T) {
	cases := []struct{ trials, per, gpn, want int }{
		{32, 1, 4, 8}, // Table 3 stage 0: 32 trials x 1 GPU on 4-GPU nodes
		{10, 2, 4, 5}, // Table 3 stage 1
		{3, 4, 4, 3},  // Table 3 stage 2 (one node per trial)
		{1, 8, 4, 2},  // Table 3 stage 3 (survivor spans 2 nodes)
		{4, 3, 4, 4},  // non-dividing: one 3-GPU trial per 4-GPU node
		{2, 6, 4, 3},  // 6 = 4+2: whole node each, remainders share a node
		{1, 1, 8, 1},  //
		{5, 8, 8, 5},  // whole-node trials
		{3, 12, 8, 6}, // 12 = 8+4: 3 whole + remainder 4 -> 2 per node? 8/4=2 -> ceil(3/2)=2 -> 5? see below
	}
	for _, c := range cases {
		got := NodesNeeded(c.trials, c.per, c.gpn)
		if c.trials == 3 && c.per == 12 {
			// 3 whole nodes + remainders of 4 GPUs each, two of which
			// share one node: 3 + 2 = 5.
			if got != 5 {
				t.Errorf("NodesNeeded(3,12,8) = %d, want 5", got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("NodesNeeded(%d,%d,%d) = %d, want %d", c.trials, c.per, c.gpn, got, c.want)
		}
	}
}

func TestNodesNeededPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NodesNeeded(0, 1, 1)
}

// Property: two consecutive Updates with identical allocations yield the
// identical plan (stability).
func TestQuickPlacementStable(t *testing.T) {
	f := func(rawAllocs []uint8) bool {
		nodeGPUs := 4
		nodes := mkNodes(8, nodeGPUs)
		c := NewController(nodeGPUs)
		allocs := make(map[TrialID]int)
		total := 0
		for i, raw := range rawAllocs {
			if i >= 8 {
				break
			}
			g := int(raw%4) + 1
			if total+g > 32 {
				continue
			}
			allocs[TrialID(i)] = g
			total += g
		}
		if len(allocs) == 0 {
			return true
		}
		p1, err := c.Update(allocs, nodes)
		if err != nil {
			return false
		}
		p2, err := c.Update(allocs, nodes)
		if err != nil {
			return false
		}
		for tr, a1 := range p1 {
			a2 := p2[tr]
			if len(a1) != len(a2) {
				return false
			}
			for nid, g := range a1 {
				if a2[nid] != g {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPickVictimTieDeterministic forces a displacement whose two victim
// candidates hold the same GPU count and checks that the controller
// breaks the tie by TrialID — the same victim on every run, regardless
// of map iteration order. (Before the (GPUs, TrialID) total order,
// first-seen-in-map-order won and identical inputs produced different
// plans across runs.)
func TestPickVictimTieDeterministic(t *testing.T) {
	var ref Plan
	for run := 0; run < 50; run++ {
		c := NewController(2)
		nodes := mkNodes(2, 2)

		// Epoch 1 fills both nodes so that trial 10 lands on node 0 and
		// trial 98 on node 1.
		first := map[TrialID]int{10: 1, 20: 1, 98: 1, 99: 1}
		if _, err := c.Update(first, nodes); err != nil {
			t.Fatal(err)
		}
		c.Remove(20)
		c.Remove(99)

		// Epoch 2: trial 30 needs a whole node; displacing either trial
		// 10 or trial 98 (1 GPU each — a tie) would free one. The victim
		// must always be trial 10, the smaller ID.
		second := map[TrialID]int{10: 1, 98: 1, 30: 2}
		plan, err := c.Update(second, nodes)
		if err != nil {
			t.Fatal(err)
		}
		checkPlan(t, plan, second, nodes, 2)
		var tenNode, ninetyEightNode cluster.NodeID = -1, -1
		for nid := range plan[10] {
			tenNode = nid
		}
		for nid := range plan[98] {
			ninetyEightNode = nid
		}
		if ninetyEightNode != 1 {
			t.Fatalf("run %d: trial 98 moved to node %d; only trial 10 (smaller ID) should be displaced", run, ninetyEightNode)
		}
		if tenNode != 1 {
			t.Fatalf("run %d: trial 10 on node %d, want displaced to node 1", run, tenNode)
		}
		if ref == nil {
			ref = plan
		} else if !plansEqual(ref, plan) {
			t.Fatalf("run %d: plan differs from run 0:\n  got  %v\n  want %v", run, plan, ref)
		}
	}
}

// plansEqual compares two plans structurally.
func plansEqual(a, b Plan) bool {
	if len(a) != len(b) {
		return false
	}
	for tr, asg := range a {
		other, ok := b[tr]
		if !ok || len(asg) != len(other) {
			return false
		}
		for nid, g := range asg {
			if other[nid] != g {
				return false
			}
		}
	}
	return true
}

func TestMoves(t *testing.T) {
	prev := Plan{
		0: {0: 4},
		1: {1: 2},
		2: {1: 2},
	}
	next := Plan{
		0: {0: 4},       // unchanged
		1: {2: 2},       // moved node
		2: {1: 2, 2: 2}, // grew
		3: {3: 4},       // new trial
	}
	if got := Moves(prev, next); got != 3 {
		t.Fatalf("Moves = %d, want 3", got)
	}
	if got := Moves(prev, prev); got != 0 {
		t.Fatalf("Moves(p, p) = %d, want 0", got)
	}
	if got := Moves(Plan{}, prev); got != len(prev) {
		t.Fatalf("Moves from empty = %d, want %d", got, len(prev))
	}
	// Trials dropped from next don't count: only next's gangs migrate.
	if got := Moves(prev, Plan{0: {0: 4}}); got != 0 {
		t.Fatalf("Moves after termination = %d, want 0", got)
	}
}
