// Package model is the deep-learning training substrate that RubberBand
// tunes. Real GPUs and PyTorch are unavailable in this reproduction, so the
// package simulates exactly the two observables the system consumes:
//
//  1. per-iteration training latency as a function of the number of data
//     parallel workers and their physical placement (sub-linear scaling,
//     Figure 4; placement penalty, Table 1), and
//  2. intermediate training metrics — a parametric learning curve
//     acc(config, iterations) with diminishing returns and observation
//     noise, so Successive Halving has a real signal to select on.
//
// Hyperparameters are assumed not to affect throughput (§3, training
// assumptions), so the scaling profile is shared by all trials of a job.
package model

import (
	"fmt"
	"math"
)

// ScalingProfile captures how data parallel training throughput scales
// with allocated GPUs, following an Amdahl-style communication model:
//
//	speedup(g, nodes) = g / (1 + αintra·(g−1) + αinter·(nodes−1))
//
// αintra is the per-additional-worker overhead of in-node (NVLink)
// all-reduce; αinter is the much larger penalty per crossed node boundary,
// which reproduces the Table 1 gap between placement-aware (~3.8x at 4
// GPUs) and placement-unaware (~1.8x) execution.
type ScalingProfile struct {
	// AlphaIntra is the in-node communication overhead coefficient.
	AlphaIntra float64
	// AlphaInter is the cross-node communication overhead coefficient.
	AlphaInter float64
}

// Speedup returns the throughput multiplier relative to a single GPU for a
// trial whose g workers span the given number of nodes. It panics if g < 1
// or nodes < 1, and treats nodes > g as g (one worker cannot span nodes).
func (p ScalingProfile) Speedup(g, nodes int) float64 {
	if g < 1 {
		panic(fmt.Sprintf("model: speedup of %d GPUs", g))
	}
	if nodes < 1 {
		panic(fmt.Sprintf("model: speedup across %d nodes", nodes))
	}
	if nodes > g {
		nodes = g
	}
	denom := 1 + p.AlphaIntra*float64(g-1) + p.AlphaInter*float64(nodes-1)
	return float64(g) / denom
}

// Efficiency returns Speedup(g, nodes)/g — the fraction of linear scaling
// achieved. It is the quantity whose decline makes late-stage scale-up
// cost-inefficient.
func (p ScalingProfile) Efficiency(g, nodes int) float64 {
	return p.Speedup(g, nodes) / float64(g)
}

// MinNodes returns the smallest number of nodes that g workers can span on
// instances with gpusPerNode accelerators — the placement controller's
// co-location target.
func MinNodes(g, gpusPerNode int) int {
	if g <= 0 || gpusPerNode <= 0 {
		panic("model: MinNodes with non-positive arguments")
	}
	return (g + gpusPerNode - 1) / gpusPerNode
}

// InterpolatedScaling is a measured scaling function: speedup samples at
// specific GPU counts (typically powers of two collected by the profiler)
// with log-linear interpolation between them and flat extrapolation past
// the final sample. It implements the same Speedup contract as
// ScalingProfile for co-located workers; cross-node penalties are layered
// by the caller.
type InterpolatedScaling struct {
	gpus    []int
	speedup []float64
}

// NewInterpolatedScaling builds an interpolated scaling function from
// (gpus, speedup) samples. Samples must be in strictly increasing GPU
// order, start at 1 GPU with speedup 1, and have positive speedups.
func NewInterpolatedScaling(gpus []int, speedups []float64) (*InterpolatedScaling, error) {
	if len(gpus) == 0 || len(gpus) != len(speedups) {
		return nil, fmt.Errorf("model: need matching non-empty samples, got %d/%d", len(gpus), len(speedups))
	}
	if gpus[0] != 1 {
		return nil, fmt.Errorf("model: scaling samples must start at 1 GPU, got %d", gpus[0])
	}
	for i := range gpus {
		if speedups[i] <= 0 {
			return nil, fmt.Errorf("model: non-positive speedup %v at %d GPUs", speedups[i], gpus[i])
		}
		if i > 0 && gpus[i] <= gpus[i-1] {
			return nil, fmt.Errorf("model: GPU samples not increasing at index %d", i)
		}
	}
	return &InterpolatedScaling{
		gpus:    append([]int(nil), gpus...),
		speedup: append([]float64(nil), speedups...),
	}, nil
}

// Speedup returns the interpolated speedup at g GPUs (co-located).
// Between samples it interpolates linearly in (log g, log speedup) space;
// beyond the last sample it extrapolates with the final segment's slope,
// capped at linear scaling.
func (s *InterpolatedScaling) Speedup(g int) float64 {
	if g < 1 {
		panic(fmt.Sprintf("model: speedup of %d GPUs", g))
	}
	n := len(s.gpus)
	if g <= s.gpus[0] {
		return s.speedup[0]
	}
	for i := 1; i < n; i++ {
		if g == s.gpus[i] {
			return s.speedup[i]
		}
		if g < s.gpus[i] {
			return s.interp(i-1, i, g)
		}
	}
	if n == 1 {
		return s.speedup[0]
	}
	// Extrapolate using the last segment, never exceeding linear.
	v := s.interp(n-2, n-1, g)
	if v > float64(g) {
		v = float64(g)
	}
	if v < s.speedup[n-1] {
		v = s.speedup[n-1] // speedup is assumed non-decreasing
	}
	return v
}

func (s *InterpolatedScaling) interp(i, j, g int) float64 {
	x0, x1 := math.Log(float64(s.gpus[i])), math.Log(float64(s.gpus[j]))
	y0, y1 := math.Log(s.speedup[i]), math.Log(s.speedup[j])
	x := math.Log(float64(g))
	t := (x - x0) / (x1 - x0)
	return math.Exp(y0 + t*(y1-y0))
}

// Samples returns copies of the sample points.
func (s *InterpolatedScaling) Samples() (gpus []int, speedups []float64) {
	return append([]int(nil), s.gpus...), append([]float64(nil), s.speedup...)
}
