package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedupOneGPU(t *testing.T) {
	p := ScalingProfile{AlphaIntra: 0.05, AlphaInter: 0.3}
	if s := p.Speedup(1, 1); s != 1 {
		t.Fatalf("speedup(1,1) = %v, want 1", s)
	}
}

func TestSpeedupSublinear(t *testing.T) {
	p := ResNet50().Scaling
	for g := 2; g <= 64; g *= 2 {
		s := p.Speedup(g, 1)
		if s >= float64(g) {
			t.Errorf("speedup(%d) = %v not sub-linear", g, s)
		}
		if s <= p.Speedup(g/2, 1) {
			t.Errorf("speedup not increasing at %d GPUs", g)
		}
	}
}

func TestSpeedupMatchesTable1(t *testing.T) {
	// Table 1: placement-aware ResNet-50 reaches ~3.7x at 4 GPUs
	// (2773/749.6); placement-unaware only ~1.8x (1209/673.8).
	p := ResNet50().Scaling
	colocated := p.Speedup(4, 1)
	if colocated < 3.4 || colocated > 4.0 {
		t.Errorf("co-located speedup at 4 GPUs = %v, want ~3.7", colocated)
	}
	scattered := p.Speedup(4, 4)
	if scattered < 1.4 || scattered > 2.3 {
		t.Errorf("scattered speedup at 4 GPUs = %v, want ~1.8", scattered)
	}
	if scattered >= colocated {
		t.Error("scattering did not hurt")
	}
}

func TestSpeedupNodesClamped(t *testing.T) {
	p := ScalingProfile{AlphaIntra: 0.05, AlphaInter: 0.3}
	if a, b := p.Speedup(2, 8), p.Speedup(2, 2); a != b {
		t.Errorf("nodes > gpus not clamped: %v vs %v", a, b)
	}
}

func TestSpeedupPanics(t *testing.T) {
	p := ScalingProfile{}
	for name, fn := range map[string]func(){
		"g=0":     func() { p.Speedup(0, 1) },
		"nodes=0": func() { p.Speedup(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEfficiencyDecreasing(t *testing.T) {
	p := ResNet50().Scaling
	prev := p.Efficiency(1, 1)
	for g := 2; g <= 32; g *= 2 {
		e := p.Efficiency(g, 1)
		if e >= prev {
			t.Errorf("efficiency not decreasing at %d GPUs: %v >= %v", g, e, prev)
		}
		prev = e
	}
}

func TestMinNodes(t *testing.T) {
	cases := []struct{ g, per, want int }{
		{1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3}, {3, 8, 1},
	}
	for _, c := range cases {
		if got := MinNodes(c.g, c.per); got != c.want {
			t.Errorf("MinNodes(%d,%d) = %d, want %d", c.g, c.per, got, c.want)
		}
	}
}

func TestMinNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MinNodes(0, 4)
}

func TestInterpolatedScalingExact(t *testing.T) {
	s, err := NewInterpolatedScaling([]int{1, 2, 4, 8}, []float64{1, 1.9, 3.6, 6.5})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range []int{1, 2, 4, 8} {
		want := []float64{1, 1.9, 3.6, 6.5}[i]
		if got := s.Speedup(g); math.Abs(got-want) > 1e-12 {
			t.Errorf("Speedup(%d) = %v, want %v", g, got, want)
		}
	}
}

func TestInterpolatedScalingBetween(t *testing.T) {
	s, _ := NewInterpolatedScaling([]int{1, 4}, []float64{1, 3.6})
	// Log-linear interpolation at 2 GPUs: exp(0.5*ln 3.6) = sqrt(3.6).
	want := math.Sqrt(3.6)
	if got := s.Speedup(2); math.Abs(got-want) > 1e-9 {
		t.Errorf("Speedup(2) = %v, want %v", got, want)
	}
}

func TestInterpolatedScalingExtrapolation(t *testing.T) {
	s, _ := NewInterpolatedScaling([]int{1, 2, 4}, []float64{1, 1.9, 3.6})
	v := s.Speedup(16)
	if v < 3.6 {
		t.Errorf("extrapolated speedup %v below last sample", v)
	}
	if v > 16 {
		t.Errorf("extrapolated speedup %v super-linear", v)
	}
	// Single-sample profile extrapolates flat.
	one, _ := NewInterpolatedScaling([]int{1}, []float64{1})
	if got := one.Speedup(8); got != 1 {
		t.Errorf("single-sample extrapolation = %v, want 1", got)
	}
}

func TestInterpolatedScalingValidation(t *testing.T) {
	cases := []struct {
		name     string
		gpus     []int
		speedups []float64
	}{
		{"empty", nil, nil},
		{"mismatch", []int{1, 2}, []float64{1}},
		{"not starting at 1", []int{2, 4}, []float64{1, 2}},
		{"not increasing", []int{1, 4, 2}, []float64{1, 2, 3}},
		{"non-positive speedup", []int{1, 2}, []float64{1, 0}},
	}
	for _, c := range cases {
		if _, err := NewInterpolatedScaling(c.gpus, c.speedups); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestInterpolatedSamplesCopied(t *testing.T) {
	s, _ := NewInterpolatedScaling([]int{1, 2}, []float64{1, 1.8})
	g, sp := s.Samples()
	g[0], sp[0] = 99, 99
	g2, sp2 := s.Samples()
	if g2[0] != 1 || sp2[0] != 1 {
		t.Fatal("Samples exposed internal slices")
	}
}

// Property: speedup is monotone non-decreasing in g and non-increasing in
// node spread for every zoo model.
func TestQuickSpeedupMonotone(t *testing.T) {
	models := Zoo()
	f := func(mi, gRaw, nRaw uint8) bool {
		m := models[int(mi)%len(models)]
		g := int(gRaw%63) + 1
		n := int(nRaw%8) + 1
		s := m.Scaling
		if s.Speedup(g+1, n) < s.Speedup(g, n)-1e-9 {
			return false
		}
		if s.Speedup(g, n+1) > s.Speedup(g, n)+1e-9 {
			return false
		}
		return s.Speedup(g, n) <= float64(g)+1e-9 && s.Speedup(g, n) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
