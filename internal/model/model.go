package model

import (
	"fmt"
	"math"

	"repro/internal/searchspace"
	"repro/internal/stats"
)

// Dataset describes the training data only in the terms the system cares
// about: its size (for data-ingress pricing, Figure 10) and sample count
// (for converting batch sizes to epochs when reporting schedules).
type Dataset struct {
	Name    string
	SizeGB  float64
	Samples int
}

// Standard datasets from the evaluation.
var (
	CIFAR10  = Dataset{Name: "cifar10", SizeGB: 0.15, Samples: 50000}
	CIFAR100 = Dataset{Name: "cifar100", SizeGB: 0.15, Samples: 50000}
	ImageNet = Dataset{Name: "imagenet", SizeGB: 150, Samples: 1281167}
	RTE      = Dataset{Name: "rte", SizeGB: 0.01, Samples: 2490}
)

// CurveParams parameterize the simulated learning curve of a model/dataset
// pair. Final accuracy for a configuration is
//
//	asymptote(cfg) = AccFloor + (AccCeil−AccFloor)·quality(cfg)
//
// where quality ∈ (0,1] peaks when the log learning rate hits OptLogLR and
// decays as a Gaussian with width LRWidth (plus smaller momentum and
// weight-decay terms). Training progress follows a saturating exponential
// acc(t) = asymptote·(1 − exp(−t/Tau)), the canonical diminishing-returns
// shape (§2), with per-observation Gaussian noise of NoiseStd — making
// intermediate metrics imperfect predictors, exactly the property that
// forces SHA to keep multiple candidates alive.
type CurveParams struct {
	AccFloor float64 // accuracy of a hopeless configuration at convergence
	AccCeil  float64 // accuracy of the ideal configuration at convergence
	OptLogLR float64 // natural log of the best learning rate
	LRWidth  float64 // Gaussian width in log-lr space
	Tau      float64 // iterations to reach ~63% of the asymptote
	NoiseStd float64 // std of per-observation metric noise
}

// Model describes one tunable DL model: its compute profile and its
// learning behaviour.
type Model struct {
	// Name identifies the architecture, e.g. "resnet101".
	Name string
	// Dataset is the training set.
	Dataset Dataset
	// BaseBatch is the reference per-step effective batch size at which
	// BaseIterSeconds was measured.
	BaseBatch int
	// BaseIterSeconds is the mean single-GPU latency of one training
	// iteration at BaseBatch.
	BaseIterSeconds float64
	// IterNoiseStd is the std of per-iteration latency noise (stragglers
	// are produced by raising this).
	IterNoiseStd float64
	// Scaling is the model's communication profile.
	Scaling ScalingProfile
	// Curve parameterizes the simulated learning curve.
	Curve CurveParams
}

// Validate checks the model parameters.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("model: empty name")
	}
	if m.BaseBatch <= 0 {
		return fmt.Errorf("model %s: BaseBatch = %d", m.Name, m.BaseBatch)
	}
	if m.BaseIterSeconds <= 0 {
		return fmt.Errorf("model %s: BaseIterSeconds = %v", m.Name, m.BaseIterSeconds)
	}
	if m.IterNoiseStd < 0 {
		return fmt.Errorf("model %s: negative IterNoiseStd", m.Name)
	}
	if m.Curve.AccCeil <= m.Curve.AccFloor {
		return fmt.Errorf("model %s: AccCeil <= AccFloor", m.Name)
	}
	if m.Curve.Tau <= 0 || m.Curve.LRWidth <= 0 {
		return fmt.Errorf("model %s: non-positive Tau or LRWidth", m.Name)
	}
	return nil
}

// IterLatencyMean returns the expected seconds per training iteration at
// the given effective batch size, for a trial with gpus workers spanning
// nodes machines. Batch size is held constant across allocations (strong
// scaling, §3): a larger allocation splits the same batch, while a small
// allocation processes it via gradient accumulation — so single-GPU work
// grows linearly with batch and shrinks by the communication-discounted
// speedup.
func (m *Model) IterLatencyMean(batch, gpus, nodes int) float64 {
	if batch <= 0 {
		panic(fmt.Sprintf("model: batch %d", batch))
	}
	work := m.BaseIterSeconds * float64(batch) / float64(m.BaseBatch)
	return work / m.Scaling.Speedup(gpus, nodes)
}

// IterLatencyDist returns the latency distribution for one iteration under
// the same parameters. IterNoiseStd is the straggler σ at the reference
// point (BaseBatch, one co-located GPU); at other allocations it scales
// proportionally with the mean, so relative straggler severity is
// allocation independent.
func (m *Model) IterLatencyDist(batch, gpus, nodes int) stats.Dist {
	mean := m.IterLatencyMean(batch, gpus, nodes)
	if m.IterNoiseStd == 0 {
		return stats.Deterministic{Value: mean}
	}
	sigma := m.IterNoiseStd * mean / m.BaseIterSeconds
	return stats.Normal{Mu: mean, Sigma: sigma}
}

// quality maps a hyperparameter configuration to (0, 1]: 1 at the ideal
// configuration, decaying with log-lr distance and mild momentum /
// weight-decay effects. Configurations without the corresponding keys
// contribute neutral values.
func (c CurveParams) quality(cfg searchspace.Config) float64 {
	q := 1.0
	if v, ok := cfg["lr"]; ok {
		lr, _ := v.(float64)
		if lr <= 0 {
			return 0.01
		}
		d := (math.Log(lr) - c.OptLogLR) / c.LRWidth
		q *= math.Exp(-d * d / 2)
	}
	if v, ok := cfg["momentum"]; ok {
		mom, _ := v.(float64)
		d := (mom - 0.9) / 0.3
		q *= 1 - 0.1*d*d
	}
	if v, ok := cfg["weight_decay"]; ok {
		wd, _ := v.(float64)
		if wd > 0 {
			d := (math.Log(wd) - math.Log(5e-4)) / 6
			q *= 1 - 0.1*d*d
		}
	}
	if v, ok := cfg["dropout"]; ok {
		dr, _ := v.(float64)
		d := (dr - 0.1) / 0.5
		q *= 1 - 0.1*d*d
	}
	if q < 0.01 {
		q = 0.01
	}
	return q
}

// Asymptote returns the converged validation accuracy for cfg.
func (m *Model) Asymptote(cfg searchspace.Config) float64 {
	return m.Curve.AccFloor + (m.Curve.AccCeil-m.Curve.AccFloor)*m.Curve.quality(cfg)
}

// AccuracyAt returns the noiseless validation accuracy after cumIters
// training iterations for cfg.
func (m *Model) AccuracyAt(cfg searchspace.Config, cumIters int) float64 {
	if cumIters < 0 {
		panic("model: negative iterations")
	}
	asym := m.Asymptote(cfg)
	return asym * (1 - math.Exp(-float64(cumIters)/m.Curve.Tau))
}

// ObserveAccuracy returns AccuracyAt plus observation noise drawn from r,
// clamped to [0, 1].
func (m *Model) ObserveAccuracy(cfg searchspace.Config, cumIters int, r *stats.RNG) float64 {
	acc := m.AccuracyAt(cfg, cumIters) + m.Curve.NoiseStd*r.NormFloat64()
	if acc < 0 {
		return 0
	}
	if acc > 1 {
		return 1
	}
	return acc
}
