package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/searchspace"
	"repro/internal/stats"
)

func TestZooValidates(t *testing.T) {
	for _, m := range Zoo() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"resnet50", "resnet101", "resnet152", "bert"} {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if m.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, m.Name)
		}
	}
	if _, err := ByName("vgg"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	base := ResNet50()
	mutations := []func(*Model){
		func(m *Model) { m.Name = "" },
		func(m *Model) { m.BaseBatch = 0 },
		func(m *Model) { m.BaseIterSeconds = 0 },
		func(m *Model) { m.IterNoiseStd = -1 },
		func(m *Model) { m.Curve.AccCeil = m.Curve.AccFloor },
		func(m *Model) { m.Curve.Tau = 0 },
		func(m *Model) { m.Curve.LRWidth = 0 },
	}
	for i, mutate := range mutations {
		m := *base
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestIterLatencyBatchScaling(t *testing.T) {
	m := ResNet50()
	// Strong scaling: double the batch, double the single-GPU latency.
	l1 := m.IterLatencyMean(512, 1, 1)
	l2 := m.IterLatencyMean(1024, 1, 1)
	if math.Abs(l2-2*l1) > 1e-9 {
		t.Errorf("batch scaling: %v vs 2*%v", l2, l1)
	}
	if l1 != m.BaseIterSeconds {
		t.Errorf("base latency %v != %v", l1, m.BaseIterSeconds)
	}
}

func TestIterLatencyGPUScaling(t *testing.T) {
	m := ResNet50()
	l1 := m.IterLatencyMean(512, 1, 1)
	l4 := m.IterLatencyMean(512, 4, 1)
	if l4 >= l1 {
		t.Error("more GPUs did not reduce latency")
	}
	// Sub-linear: 4 GPUs less than 4x faster.
	if l4 <= l1/4 {
		t.Errorf("super-linear scaling: %v vs %v/4", l4, l1)
	}
	// Scattering across nodes is slower than co-located.
	if s := m.IterLatencyMean(512, 4, 4); s <= l4 {
		t.Errorf("scattered latency %v not worse than co-located %v", s, l4)
	}
}

func TestIterLatencyPanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ResNet50().IterLatencyMean(0, 1, 1)
}

func TestIterLatencyDist(t *testing.T) {
	m := ResNet50()
	d := m.IterLatencyDist(512, 1, 1)
	if math.Abs(d.Mean()-4.0) > 1e-9 {
		t.Errorf("dist mean %v, want 4", d.Mean())
	}
	// Zero noise yields a deterministic distribution.
	m2 := *m
	m2.IterNoiseStd = 0
	if _, ok := m2.IterLatencyDist(512, 2, 1).(stats.Deterministic); !ok {
		t.Error("zero-noise model not deterministic")
	}
}

func TestLearningCurveShape(t *testing.T) {
	m := ResNet101()
	cfg := searchspace.Config{"lr": math.Exp(m.Curve.OptLogLR)}
	// Monotone increasing with diminishing returns over equal-width
	// iteration windows.
	prev := m.AccuracyAt(cfg, 0)
	prevGain := math.Inf(1)
	for it := 10; it <= 80; it += 10 {
		acc := m.AccuracyAt(cfg, it)
		if acc <= prev {
			t.Errorf("accuracy not increasing at %d iters: %v <= %v", it, acc, prev)
		}
		gain := acc - prev
		if gain >= prevGain {
			t.Errorf("returns not diminishing at %d iters", it)
		}
		prev, prevGain = acc, gain
	}
	// Converges to the asymptote.
	if got, want := m.AccuracyAt(cfg, 100000), m.Asymptote(cfg); math.Abs(got-want) > 1e-6 {
		t.Errorf("converged accuracy %v, want asymptote %v", got, want)
	}
	// The ideal config reaches the ceiling.
	if math.Abs(m.Asymptote(cfg)-m.Curve.AccCeil) > 0.02 {
		t.Errorf("ideal asymptote %v far from ceiling %v", m.Asymptote(cfg), m.Curve.AccCeil)
	}
}

func TestBadLRHurtsAccuracy(t *testing.T) {
	m := ResNet101()
	good := searchspace.Config{"lr": math.Exp(m.Curve.OptLogLR)}
	bad := searchspace.Config{"lr": math.Exp(m.Curve.OptLogLR + 6)}
	if m.Asymptote(bad) >= m.Asymptote(good) {
		t.Error("bad lr not penalized")
	}
	terrible := searchspace.Config{"lr": -1.0}
	if a := m.Asymptote(terrible); a > m.Curve.AccFloor+0.05 {
		t.Errorf("non-positive lr asymptote %v too high", a)
	}
}

func TestAccuracyAtZeroIters(t *testing.T) {
	m := ResNet101()
	cfg := searchspace.Config{"lr": 0.1}
	if acc := m.AccuracyAt(cfg, 0); acc != 0 {
		t.Errorf("accuracy at 0 iters = %v, want 0", acc)
	}
}

func TestAccuracyPanicsOnNegativeIters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ResNet101().AccuracyAt(searchspace.Config{}, -1)
}

func TestObserveAccuracyNoisyButClose(t *testing.T) {
	m := ResNet101()
	cfg := searchspace.Config{"lr": 0.1}
	r := stats.NewRNG(1)
	truth := m.AccuracyAt(cfg, 20)
	var sum float64
	const n = 2000
	differs := false
	for i := 0; i < n; i++ {
		obs := m.ObserveAccuracy(cfg, 20, r)
		if obs < 0 || obs > 1 {
			t.Fatalf("observation %v out of [0,1]", obs)
		}
		if obs != truth {
			differs = true
		}
		sum += obs
	}
	if !differs {
		t.Error("observations carry no noise")
	}
	if math.Abs(sum/n-truth) > 0.002 {
		t.Errorf("observation mean %v far from truth %v", sum/n, truth)
	}
}

func TestSHASelectsGoodConfigs(t *testing.T) {
	// End-to-end sanity on the learning-curve design: ranking trials by
	// observed accuracy after a few iterations must correlate with final
	// quality, or early stopping would be useless.
	m := ResNet101()
	space := searchspace.DefaultVisionSpace()
	r := stats.NewRNG(42)
	configs := space.SampleN(r, 32)

	bestEarly, bestEarlyIdx := -1.0, 0
	bestFinal := -1.0
	for i, cfg := range configs {
		if early := m.ObserveAccuracy(cfg, 4, r); early > bestEarly {
			bestEarly, bestEarlyIdx = early, i
		}
		if final := m.Asymptote(cfg); final > bestFinal {
			bestFinal = final
		}
	}
	// The early winner should be within a few points of the true best.
	if got := m.Asymptote(configs[bestEarlyIdx]); got < bestFinal-0.05 {
		t.Errorf("early selection picked asymptote %v, best %v", got, bestFinal)
	}
}

// Property: accuracy is always within [0, asymptote] ⊂ [0, 1] and monotone
// in iterations for any config in the vision space.
func TestQuickAccuracyBounds(t *testing.T) {
	m := ResNet101()
	space := searchspace.DefaultVisionSpace()
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		cfg := space.Sample(stats.NewRNG(seed))
		a, b := int(aRaw), int(bRaw)
		if a > b {
			a, b = b, a
		}
		accA, accB := m.AccuracyAt(cfg, a), m.AccuracyAt(cfg, b)
		asym := m.Asymptote(cfg)
		return accA >= 0 && accB <= asym && asym <= 1 && accA <= accB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
