package model

import "fmt"

// The zoo below reproduces the models the paper evaluates. Scaling
// coefficients are calibrated against the published measurements:
//
//   - Table 1 (ResNet-50, bs=1024, p3.16xlarge): placement-aware
//     throughput 749.6 → 1480 → 2773 samples/s at 1/2/4 GPUs (≈3.7x at 4
//     GPUs, so αintra ≈ 0.027), while placement-unaware execution reaches
//     only ≈1.8x at 4 GPUs (αinter ≈ 0.25).
//   - Figure 4 shows the same sub-linear shape for the larger models, with
//     heavier models scaling slightly better per-GPU (compute dominates
//     communication) but BERT scaling worse (large all-reduce volume).
//
// Learning-curve constants give each model/dataset pair a plausible
// accuracy ceiling (ResNet101/CIFAR10 ≈ 92% under the paper's simple
// training recipe — Table 2's best static accuracy is 91.9%) and a time
// constant Tau sized to its SHA budget so that the final stage shows
// diminishing but non-zero returns.

// ResNet50 returns the ResNet-50/ImageNet model used in the simulated
// experiments (§6.1). Base iteration latency is 4 s at batch 512 on one
// GPU, matching the Figure 9 workload's μ = 4 s.
func ResNet50() *Model {
	return &Model{
		Name:            "resnet50",
		Dataset:         ImageNet,
		BaseBatch:       512,
		BaseIterSeconds: 4.0,
		IterNoiseStd:    0.4,
		Scaling:         ScalingProfile{AlphaIntra: 0.027, AlphaInter: 0.40},
		Curve: CurveParams{
			AccFloor: 0.10, AccCeil: 0.76,
			OptLogLR: -2.4, LRWidth: 1.6,
			Tau: 160, NoiseStd: 0.006,
		},
	}
}

// ResNet101 returns the ResNet-101/CIFAR-10 model from the end-to-end
// experiments (§6.3.1, Table 2): batch 1024, SHA(32, 1, 50, η=3), where an
// iteration is one epoch.
func ResNet101() *Model {
	return &Model{
		Name:            "resnet101",
		Dataset:         CIFAR10,
		BaseBatch:       1024,
		BaseIterSeconds: 36,
		IterNoiseStd:    2.0,
		Scaling:         ScalingProfile{AlphaIntra: 0.035, AlphaInter: 0.40},
		Curve: CurveParams{
			AccFloor: 0.10, AccCeil: 0.92,
			OptLogLR: -1.9, LRWidth: 1.5,
			Tau: 14, NoiseStd: 0.008,
		},
	}
}

// ResNet152 returns the ResNet-152/CIFAR-100 model (Table 4, 60-minute
// deadline).
func ResNet152() *Model {
	return &Model{
		Name:            "resnet152",
		Dataset:         CIFAR100,
		BaseBatch:       1024,
		BaseIterSeconds: 52,
		IterNoiseStd:    2.5,
		Scaling:         ScalingProfile{AlphaIntra: 0.030, AlphaInter: 0.35},
		Curve: CurveParams{
			AccFloor: 0.01, AccCeil: 0.72,
			OptLogLR: -1.9, LRWidth: 1.4,
			Tau: 16, NoiseStd: 0.008,
		},
	}
}

// BERT returns the BERT-base/RTE fine-tuning model (Table 4, 20-minute
// deadline). Fine-tuning iterations are fast but the model's large
// parameter count makes all-reduce expensive, so it scales worst of the
// zoo (Figure 4).
func BERT() *Model {
	return &Model{
		Name:            "bert",
		Dataset:         RTE,
		BaseBatch:       32,
		BaseIterSeconds: 18,
		IterNoiseStd:    1.2,
		Scaling:         ScalingProfile{AlphaIntra: 0.08, AlphaInter: 0.55},
		Curve: CurveParams{
			AccFloor: 0.50, AccCeil: 0.72,
			OptLogLR: -10.4, LRWidth: 1.2,
			Tau: 10, NoiseStd: 0.010,
		},
	}
}

// ByName returns the zoo model with the given name.
func ByName(name string) (*Model, error) {
	switch name {
	case "resnet50":
		return ResNet50(), nil
	case "resnet101":
		return ResNet101(), nil
	case "resnet152":
		return ResNet152(), nil
	case "bert":
		return BERT(), nil
	default:
		return nil, fmt.Errorf("model: unknown model %q (have resnet50, resnet101, resnet152, bert)", name)
	}
}

// Zoo returns all models in the zoo.
func Zoo() []*Model {
	return []*Model{ResNet50(), ResNet101(), ResNet152(), BERT()}
}
