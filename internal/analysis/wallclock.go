package analysis

import (
	"go/ast"
	"go/types"
)

// Wallclock forbids wall-clock reads in the deterministic core.
// sim.Estimate and the planners must be pure functions of (seed, plan):
// all time in the core flows through the virtual clock
// (internal/vclock), so a time.Now/Since/Sleep there couples estimates
// and plans to the machine's clock and breaks bit-identical replay.
var Wallclock = &Analyzer{
	Name:      "wallclock",
	Doc:       "forbid time.Now/time.Since/time.Sleep in the deterministic core (use the virtual clock)",
	AppliesTo: inDeterministicCore,
	Run:       runWallclock,
}

// wallclockFuncs are the forbidden time package functions: clock reads
// and real sleeps. Duration arithmetic and formatting remain allowed.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Sleep": true,
}

func runWallclock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if wallclockFuncs[fn.Name()] {
				p.Reportf(id.Pos(), "time.%s read from the deterministic core; all time must flow through the virtual clock (internal/vclock)", fn.Name())
			}
			return true
		})
	}
}
