package analysis

import (
	"testing"
)

// TestLoadModulePackages checks the loader against the real module: a
// package with in-package tests type-checks with those files included,
// and a package with an external test file yields a second "_test"
// package.
func TestLoadModulePackages(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks module packages")
	}
	pkgs, err := Load("../..", []string{"./internal/placement", "./internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, want := range []string{
		"repro/internal/placement",
		"repro/internal/core",
		"repro/internal/core_test", // example_test.go is an external test package
	} {
		if byPath[want] == nil {
			t.Fatalf("missing package %s (got %v)", want, paths(pkgs))
		}
	}
	pl := byPath["repro/internal/placement"]
	if len(pl.Files) < 2 {
		t.Fatalf("placement loaded %d files, want source + test files", len(pl.Files))
	}
	if pl.Types == nil || pl.Info == nil || pl.Types.Scope().Lookup("Controller") == nil {
		t.Fatal("placement type information incomplete")
	}
	for name := range pl.Sources {
		if len(pl.Sources[name]) == 0 {
			t.Fatalf("empty source recorded for %s", name)
		}
	}
}

func paths(pkgs []*Package) []string {
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = p.Path
	}
	return out
}

// TestRunOnCleanTree runs the full suite on the deterministic core and
// expects zero diagnostics — the tree must stay rbvet-clean.
func TestRunOnCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks module packages")
	}
	pkgs, err := Load("../..", []string{"./internal/placement", "./internal/cluster"})
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkgs, All); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}
