// Call graph: a CHA-style (class-hierarchy analysis) static call graph
// over the loaded packages, built on go/types only. It is the substrate
// the interprocedural analyzers (dettaint, purity) run on.
//
// Resolution rules, conservative in the CHA tradition:
//
//   - Direct calls and method calls on concrete receivers resolve to the
//     single callee.
//   - Interface method calls resolve to the matching method of EVERY
//     loaded concrete type that implements the interface — an
//     over-approximation that never misses a real callee among the
//     loaded packages.
//   - Calls through function values resolve to every address-taken
//     function or function literal with an identical signature.
//   - A function literal's effects always belong to its enclosing
//     function (the literal may run later, on another goroutine, but it
//     was created — and its captures wired — here), so the graph gives
//     the encloser an edge to each of its literals.
//
// Functions whose bodies are outside the loaded packages (standard
// library, export-data-only imports) become external nodes: they have no
// out-edges, and the analyzers decide what to assume about them from
// intrinsic tables (taint sources, effect whitelists).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// edgeKind records how a call edge was resolved, for diagnostics.
type edgeKind uint8

const (
	edgeStatic edgeKind = iota
	edgeInterface
	edgeFuncValue
	edgeEncloses
)

func (k edgeKind) String() string {
	switch k {
	case edgeInterface:
		return "via interface"
	case edgeFuncValue:
		return "via func value"
	case edgeEncloses:
		return "func literal"
	}
	return ""
}

// cgEdge is one resolved call site.
type cgEdge struct {
	callee *cgNode
	pos    token.Position
	kind   edgeKind
}

// cgNode is one function in the call graph: a declared function or
// method, a function literal, or an external (body-less) function.
type cgNode struct {
	fn  *types.Func   // nil for function literals
	lit *ast.FuncLit  // nil for declared/external functions
	pkg *Package      // package holding the body; nil for external nodes
	doc *ast.FuncDecl // declaration, when the body is loaded

	name string
	pos  token.Position

	// matchSig is the node's callable signature with any receiver
	// stripped, rendered with package-path qualifiers, for matching
	// against calls through function values. A string key rather than a
	// *types.Signature because signatures from different type-check
	// universes (source vs export data) never compare types.Identical.
	matchSig string

	enclosing *cgNode // for literals: the function that created them

	edges   []cgEdge
	edgeIdx map[*cgNode]bool
	walked  bool
	// unresolved records call sites whose callees could not be bounded:
	// interface calls with no loaded implementation, or func-value calls
	// matching no address-taken function.
	unresolved []token.Position
}

// body returns the node's function body, or nil for external nodes.
func (n *cgNode) body() *ast.BlockStmt {
	switch {
	case n.lit != nil:
		return n.lit.Body
	case n.doc != nil:
		return n.doc.Body
	}
	return nil
}

func (n *cgNode) addEdge(callee *cgNode, pos token.Position, kind edgeKind) {
	if callee == nil || callee == n {
		return
	}
	if n.edgeIdx == nil {
		n.edgeIdx = make(map[*cgNode]bool)
	}
	if n.edgeIdx[callee] {
		return
	}
	n.edgeIdx[callee] = true
	n.edges = append(n.edges, cgEdge{callee: callee, pos: pos, kind: kind})
}

// CallGraph indexes the nodes of the loaded packages.
type CallGraph struct {
	// decls is keyed by types.Func.FullName, not object identity: each
	// source-checked package resolves its imports from export data, so
	// one declared function is seen through SEVERAL *types.Func objects —
	// its own source object plus one per importing universe. FullName is
	// the canonical cross-universe identity.
	decls map[string]*cgNode
	lits  map[*ast.FuncLit]*cgNode
	// all lists the nodes with loaded bodies in deterministic
	// (package, position) order; external nodes are reachable only
	// through edges.
	all []*cgNode

	// anns holds the function annotations of every loaded package.
	anns map[*types.Func]*FuncAnn
}

// ann returns the node's function annotation, if any. Literals inherit
// their enclosing declaration's annotation: the encloser's claim or
// escape covers the helpers it creates.
func (g *CallGraph) ann(n *cgNode) *FuncAnn {
	for ; n != nil; n = n.enclosing {
		if n.fn != nil {
			return g.anns[n.fn]
		}
	}
	return nil
}

// nodeFor returns (creating on demand) the node of a declared function.
// Functions without loaded bodies become external nodes. Pass 1 creates
// every source-declared node before any body is walked, so an
// export-data view of a module function folds into its source node.
func (g *CallGraph) nodeFor(fn *types.Func) *cgNode {
	fn = fn.Origin()
	key := fn.FullName()
	if n := g.decls[key]; n != nil {
		return n
	}
	n := &cgNode{fn: fn, name: shortFuncName(fn), matchSig: sigKey(fn.Type().(*types.Signature))}
	g.decls[key] = n
	return n
}

// sigKey renders a signature — receiver dropped, parameter names
// elided — with package-path qualifiers, so signatures compare equal
// exactly when types.Identical would hold, even across type-check
// universes (where types.Identical itself fails on named types).
func sigKey(sig *types.Signature) string {
	if sig == nil {
		return ""
	}
	q := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteString("func(")
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		if sig.Variadic() && i == sig.Params().Len()-1 {
			b.WriteString("...")
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), q))
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), q))
	}
	b.WriteString(")")
	return b.String()
}

// shortFuncName renders a function for chain diagnostics:
// "time.Now", "sim.(*Simulator).buildSegment", "sim.Plan.Key".
func shortFuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() })
		if rest, ok := strings.CutPrefix(t, "*"); ok {
			if i := strings.LastIndexByte(rest, '.'); i >= 0 {
				return rest[:i] + ".(*" + rest[i+1:] + ")." + fn.Name()
			}
			return "(*" + rest + ")." + fn.Name()
		}
		return t + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// buildCallGraph constructs the call graph of the loaded packages.
func buildCallGraph(pkgs []*Package, anns map[*types.Func]*FuncAnn) *CallGraph {
	g := &CallGraph{
		decls: make(map[string]*cgNode),
		lits:  make(map[*ast.FuncLit]*cgNode),
		anns:  anns,
	}

	// Pass 1: nodes for every declared function with a loaded body, and
	// the concrete-type universe for interface resolution.
	var concrete []types.Type
	seenType := make(map[types.Type]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := g.nodeFor(fn)
				n.pkg, n.doc = pkg, fd
				n.pos = pkg.Fset.Position(fd.Pos())
				g.all = append(g.all, n)
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) || seenType[t] {
				continue
			}
			seenType[t] = true
			concrete = append(concrete, t)
		}
	}
	sort.Slice(concrete, func(i, j int) bool {
		return types.TypeString(concrete[i], nil) < types.TypeString(concrete[j], nil)
	})

	// Pass 2: walk every body, creating literal nodes, static/interface
	// edges, and the address-taken set feeding func-value resolution.
	b := &cgBuilder{g: g, concrete: concrete}
	for _, n := range append([]*cgNode(nil), g.all...) { // literals append to g.all
		b.walkBody(n)
	}

	// Pass 3: bound every func-value call by the address-taken set.
	for _, site := range b.dynSites {
		matched := false
		for _, cand := range b.taken {
			if site.sig == cand.matchSig {
				site.caller.addEdge(cand, site.pos, edgeFuncValue)
				matched = true
			}
		}
		if !matched {
			site.caller.unresolved = append(site.caller.unresolved, site.pos)
		}
	}
	return g
}

// dynSite is a call through a function value, resolved in pass 3.
type dynSite struct {
	caller *cgNode
	sig    string
	pos    token.Position
}

type cgBuilder struct {
	g        *CallGraph
	concrete []types.Type
	dynSites []dynSite
	taken    []*cgNode
	takenSet map[*cgNode]bool
}

func (b *cgBuilder) markTaken(n *cgNode) {
	if n == nil {
		return
	}
	if b.takenSet == nil {
		b.takenSet = make(map[*cgNode]bool)
	}
	if !b.takenSet[n] {
		b.takenSet[n] = true
		b.taken = append(b.taken, n)
	}
}

// walkBody resolves the calls of one node's body. Function literals
// create child nodes walked recursively (they are appended to g.all by
// newLit, but the explicit recursion keeps ownership clear).
func (b *cgBuilder) walkBody(n *cgNode) {
	body := n.body()
	if body == nil || n.walked {
		return
	}
	n.walked = true
	info := n.pkg.Info

	// callFun marks the terminal identifier of each call's Fun, so pass
	// 2 can tell a call from an address-taken reference.
	callFun := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callFun[fun] = true
		case *ast.SelectorExpr:
			callFun[fun.Sel] = true
		}
		return true
	})

	var walk func(x ast.Node) bool
	walk = func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			lit := b.newLit(n, x)
			n.addEdge(lit, n.pkg.Fset.Position(x.Pos()), edgeEncloses)
			b.markTaken(lit) // a literal not immediately invoked can flow anywhere
			b.walkBody(lit)
			return false
		case *ast.CallExpr:
			b.resolveCall(n, x, callFun)
			// Children (args, and Fun when it is itself an expression)
			// still need walking for literals and references.
			for _, arg := range x.Args {
				ast.Inspect(arg, walk)
			}
			if fl, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				// Immediately-invoked literal: resolveCall added the
				// edge; walk its body without marking it taken.
				b.walkBody(b.newLit(n, fl))
			} else {
				ast.Inspect(x.Fun, walk)
			}
			return false
		case *ast.Ident:
			if fn, ok := info.Uses[x].(*types.Func); ok && !callFun[x] {
				b.markTakenFunc(fn)
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok && !callFun[x.Sel] {
				b.markTakenFunc(fn)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func (b *cgBuilder) markTakenFunc(fn *types.Func) {
	b.markTaken(b.g.nodeFor(fn))
}

func (b *cgBuilder) newLit(parent *cgNode, x *ast.FuncLit) *cgNode {
	if n := b.g.lits[x]; n != nil {
		return n
	}
	pos := parent.pkg.Fset.Position(x.Pos())
	sig, _ := parent.pkg.Info.TypeOf(x).(*types.Signature)
	n := &cgNode{
		lit: x, pkg: parent.pkg, enclosing: parent,
		name:     fmt.Sprintf("%s.func@%d", parent.name, pos.Line),
		pos:      pos,
		matchSig: sigKey(sig),
	}
	b.g.lits[x] = n
	b.g.all = append(b.g.all, n)
	return n
}

// resolveCall classifies one call expression and adds its edges.
func (b *cgBuilder) resolveCall(caller *cgNode, call *ast.CallExpr, callFun map[*ast.Ident]bool) {
	info := caller.pkg.Info
	fset := caller.pkg.Fset
	pos := fset.Position(call.Lparen)
	fun := ast.Unparen(call.Fun)

	// Type conversions and builtin calls are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			caller.addEdge(b.g.nodeFor(obj), pos, edgeStatic)
			return
		case *types.Builtin, *types.TypeName:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m := sel.Obj().(*types.Func)
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				b.resolveInterfaceCall(caller, iface, m, pos)
				return
			}
			caller.addEdge(b.g.nodeFor(m), pos, edgeStatic)
			return
		}
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			caller.addEdge(b.g.nodeFor(obj), pos, edgeStatic)
			return
		case *types.Builtin, *types.TypeName:
			return
		}
	case *ast.FuncLit:
		lit := b.newLit(caller, fun)
		caller.addEdge(lit, pos, edgeStatic)
		return
	}

	// Anything else callable is a call through a function value.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
		b.dynSites = append(b.dynSites, dynSite{caller: caller, sig: sigKey(sig), pos: pos})
	}
}

// resolveInterfaceCall adds a CHA edge to method m of every loaded
// concrete type implementing iface.
func (b *cgBuilder) resolveInterfaceCall(caller *cgNode, iface *types.Interface, m *types.Func, pos token.Position) {
	found := false
	for _, t := range b.concrete {
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			caller.addEdge(b.g.nodeFor(fn), pos, edgeInterface)
			found = true
		}
	}
	if !found {
		caller.unresolved = append(caller.unresolved, pos)
	}
}

// pathFrom reconstructs one shortest call chain from n to a node
// satisfying goal, as "a → b → c". Edges through impure-annotated
// callees are not followed (propagation stopped there).
func (g *CallGraph) pathFrom(n *cgNode, goal func(*cgNode) bool) []*cgNode {
	type hop struct {
		node *cgNode
		prev *hop
	}
	visited := map[*cgNode]bool{n: true}
	queue := []*hop{{node: n}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if goal(h.node) {
			var path []*cgNode
			for ; h != nil; h = h.prev {
				path = append([]*cgNode{h.node}, path...)
			}
			return path
		}
		for _, e := range h.node.edges {
			if visited[e.callee] {
				continue
			}
			if a := g.ann(e.callee); a != nil && a.Impure {
				continue
			}
			visited[e.callee] = true
			queue = append(queue, &hop{node: e.callee, prev: h})
		}
	}
	return nil
}

// chainString renders a call path for a diagnostic message.
func chainString(path []*cgNode) string {
	parts := make([]string, len(path))
	for i, n := range path {
		parts[i] = n.name
	}
	return strings.Join(parts, " → ")
}
