// Function-level rbvet annotations. Where //rbvet:ignore suppresses one
// analyzer on one line, these directives make claims about (or grant
// escapes to) a whole function, and attach to its declaration's doc
// comment:
//
//	//rbvet:pure            — claim: the function is pure modulo its
//	                          arguments. The purity analyzer PROVES the
//	                          claim; an unprovable claim is a diagnostic.
//	//rbvet:impure(reason)  — escape: the function is impure by design,
//	                          and the reason explains why that is safe.
//	                          Taint and effect propagation stop here; the
//	                          human judgment in the reason is trusted.
//	//rbvet:noalloc         — claim: the function's body performs no heap
//	                          allocation. The noalloc analyzer verifies it
//	                          against the compiler's escape analysis.
//
// A function may be both pure and noalloc; pure and impure together are
// contradictory and flagged. Any other //rbvet: directive word is a
// diagnostic, so typos cannot silently grant an escape.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncAnn is the parsed annotation set of one function declaration.
type FuncAnn struct {
	Pure         bool
	Impure       bool
	ImpureReason string
	Noalloc      bool
	// Pos is the function declaration's position, for diagnostics about
	// the annotated function.
	Pos token.Position
}

// funcDirectives are the rbvet directives that attach to function
// declarations; every other directive word seen in source must be one of
// otherDirectives.
var funcDirectives = map[string]bool{"pure": true, "impure": true, "noalloc": true}

// otherDirectives are the non-function rbvet directives handled
// elsewhere: per-line ignores (ignore.go) and the fixture package-path
// pin (load.go).
var otherDirectives = map[string]bool{"ignore": true, "pkgpath": true}

const rbvetPrefix = "//rbvet:"

// parseFuncAnns extracts function annotations from one package.
// Malformed directives — unknown words, a reasonless impure, arguments
// on pure/noalloc, contradictory pure+impure, or a function directive
// not attached to a function declaration — are returned as diagnostics
// under the "rbvet" name.
func parseFuncAnns(pkg *Package) (map[*types.Func]*FuncAnn, []Diagnostic) {
	anns := make(map[*types.Func]*FuncAnn)
	var problems []Diagnostic
	report := func(pos token.Position, msg string) {
		problems = append(problems, Diagnostic{Pos: pos, Analyzer: "rbvet", Message: msg})
	}

	// docComments maps a comment group to the function it documents.
	docOf := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				docOf[fd.Doc] = fd
			}
		}
	}

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, rbvetPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				word, arg, argErr := splitFuncDirective(rest)
				switch {
				case otherDirectives[word]:
					continue
				case !funcDirectives[word]:
					report(pos, "unknown rbvet directive "+quoteName(word)+" (want pure, impure(reason), noalloc, or ignore)")
					continue
				case argErr != "":
					report(pos, argErr)
					continue
				}
				fd := docOf[cg]
				if fd == nil {
					report(pos, "//rbvet:"+word+" must be in the doc comment of a function declaration")
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				ann := anns[obj]
				if ann == nil {
					ann = &FuncAnn{Pos: pkg.Fset.Position(fd.Pos())}
					anns[obj] = ann
				}
				switch word {
				case "pure":
					ann.Pure = true
				case "impure":
					ann.Impure = true
					ann.ImpureReason = arg
				case "noalloc":
					ann.Noalloc = true
				}
				if ann.Pure && ann.Impure {
					report(pos, "function "+quoteName(funcName(obj))+" is annotated both //rbvet:pure and //rbvet:impure — pick one")
				}
			}
		}
	}
	return anns, problems
}

// splitFuncDirective splits the text after "//rbvet:" into the directive
// word and its parenthesized argument. It validates arity: impure
// requires a non-empty (reason); pure and noalloc take none.
func splitFuncDirective(rest string) (word, arg, errMsg string) {
	word = rest
	if i := strings.IndexAny(rest, " \t("); i >= 0 {
		word = rest[:i]
		if rest[i] == '(' {
			tail := rest[i+1:]
			j := strings.LastIndexByte(tail, ')')
			if j < 0 {
				return word, "", "//rbvet:" + word + " has an unclosed argument (want //rbvet:" + word + "(reason))"
			}
			arg = strings.TrimSpace(tail[:j])
		} else if funcDirectives[word] && strings.TrimSpace(rest[i:]) != "" {
			// Trailing prose after the bare word is tolerated only for
			// ignore-style directives; function directives are exact.
			return word, "", "//rbvet:" + word + " takes no trailing text" + impureHint(word)
		}
	}
	if !funcDirectives[word] {
		return word, arg, ""
	}
	switch word {
	case "impure":
		if arg == "" {
			return word, arg, "//rbvet:impure needs a reason: //rbvet:impure(<why this impurity is contained>)"
		}
	default:
		if arg != "" {
			return word, arg, "//rbvet:" + word + " takes no argument"
		}
	}
	return word, arg, ""
}

func impureHint(word string) string {
	if word == "impure" {
		return " (want //rbvet:impure(reason))"
	}
	return ""
}

// funcName renders a function object for diagnostics: methods as
// (recv).Name, package functions as pkg.Name.
func funcName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() })
		return "(" + t + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
