package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Droppederr flags discarded errors: expression-statement calls whose
// error result vanishes, and `_ =` error discards outside test files.
// The executor's control loop turns errors into run failure via
// run.fail; an error silently dropped between the planner and the
// cluster manager is an invariant violation that surfaces as a wrong
// plan rather than a reported fault.
//
// Conventional never-fails writers are exempt: fmt.Print*/fmt.Fprint*
// to os.Stdout/os.Stderr, and methods of strings.Builder and
// bytes.Buffer (documented to never return an error).
var Droppederr = &Analyzer{
	Name: "droppederr",
	Doc:  "flag calls whose error result is discarded, and _ = error discards outside tests",
	Run:  runDroppederr,
}

func runDroppederr(p *Pass) {
	for _, f := range p.Files {
		inTest := strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(p.Info, call) || exemptCall(p.Info, call) {
					return true
				}
				p.Reportf(call.Pos(), "%s returns an error that is discarded; handle it or assign it", calleeName(p.Info, call))
			case *ast.AssignStmt:
				if inTest {
					return true
				}
				reportBlankErrDiscards(p, n)
			}
			return true
		})
	}
}

// reportBlankErrDiscards flags `_ = <error>` positions in an assignment,
// including blank positions of a multi-value call.
func reportBlankErrDiscards(p *Pass, n *ast.AssignStmt) {
	blankErr := func(lhs ast.Expr, typ types.Type) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || typ == nil || !isErrorType(typ) {
			return
		}
		p.Reportf(id.Pos(), "error discarded with _; handle it (discards are tolerated only in _test.go files)")
	}
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		tuple, ok := p.Info.TypeOf(n.Rhs[0]).(*types.Tuple)
		if !ok || tuple.Len() != len(n.Lhs) {
			return
		}
		if call, ok := astCall(n.Rhs[0]); ok && exemptCall(p.Info, call) {
			return
		}
		for i, lhs := range n.Lhs {
			blankErr(lhs, tuple.At(i).Type())
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i < len(n.Rhs) {
			blankErr(lhs, p.Info.TypeOf(n.Rhs[i]))
		}
	}
}

// astCall unwraps parentheses and returns the call expression, if any.
func astCall(e ast.Expr) (*ast.CallExpr, bool) {
	c, ok := ast.Unparen(e).(*ast.CallExpr)
	return c, ok
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// returnsError reports whether the call yields an error, alone or in a
// tuple.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	switch t := info.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeName renders the callee for a diagnostic, qualified by package
// name.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := types.TypeString(recv.Type(), func(p *types.Package) string { return p.Name() })
			return "(" + t + ")." + fn.Name()
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}

// recvNamed resolves the receiver's named type, dereferencing one
// pointer, and reports its package path and type name.
func recvNamed(fn *types.Func) (pkgPath, typeName string) {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// exemptCall reports whether the call is a conventional never-fails
// writer whose dropped (n, err) results are idiomatic to ignore.
func exemptCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		pkg, name := recvNamed(fn)
		return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	name := fn.Name()
	switch {
	case name == "Print" || name == "Printf" || name == "Println":
		return true
	case strings.HasPrefix(name, "Fprint"):
		// Exempt only writes to the process's standard streams.
		return len(call.Args) > 0 && isStdStream(info, call.Args[0])
	}
	return false
}

// isStdStream reports whether e is exactly os.Stdout or os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
