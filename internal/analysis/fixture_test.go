package analysis

// Golden-file harness: each fixture directory under testdata/src is one
// package. Lines with expected diagnostics carry
//
//	// want "regexp" ["regexp" ...]
//
// comments matched against the rendered "[analyzer] message". A fixture
// may pin its package import path (the analyzers' AppliesTo input) with
// a leading //rbvet:pkgpath comment; negative fixtures simply contain no
// want comments.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtureExports lazily builds export data for the stdlib packages the
// fixtures import.
var fixtureExports = struct {
	sync.Mutex
	m map[string]string
}{}

func exportsFor(t *testing.T, imports map[string]bool) map[string]string {
	t.Helper()
	fixtureExports.Lock()
	defer fixtureExports.Unlock()
	missing := make([]string, 0, len(imports))
	for imp := range imports {
		if _, ok := fixtureExports.m[imp]; !ok {
			missing = append(missing, imp)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		wd, err := os.Getwd()
		if err != nil {
			t.Fatal(err)
		}
		m, err := exportMap(wd, missing)
		if err != nil {
			t.Fatalf("building export data for fixtures: %v", err)
		}
		if fixtureExports.m == nil {
			fixtureExports.m = make(map[string]string)
		}
		for k, v := range m {
			fixtureExports.m[k] = v
		}
	}
	out := make(map[string]string, len(fixtureExports.m))
	for k, v := range fixtureExports.m {
		out[k] = v
	}
	return out
}

// rawFixture is one parsed-but-unchecked fixture package.
type rawFixture struct {
	dir     string
	path    string // pinned via //rbvet:pkgpath, else "fixture/<rel>"
	files   []*ast.File
	sources map[string][]byte
	imports []string
}

// fixtureImporter resolves imports from already-checked fixture packages
// first — so fixture packages can import EACH OTHER and share one type
// universe — falling back to compiler export data for the rest.
type fixtureImporter struct {
	checked map[string]*types.Package
	base    types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p := fi.checked[path]; p != nil {
		return p, nil
	}
	return fi.base.Import(path)
}

// loadFixtureTree parses and type-checks a fixture directory TREE: the
// root directory and every subdirectory holding Go files is one package.
// Each package may pin its import path with //rbvet:pkgpath (how a
// fixture lands inside — or deliberately outside — the deterministic
// core); packages may import each other by pinned path, and are checked
// in dependency order.
func loadFixtureTree(t *testing.T, dir string) []*Package {
	t.Helper()
	var raws []*rawFixture
	fset := token.NewFileSet()
	stdlib := make(map[string]bool)

	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		if len(names) == 0 {
			return nil
		}
		files, sources, err := parseDir(fset, p, names)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(filepath.Dir(dir), p)
		raw := &rawFixture{dir: p, path: "fixture/" + filepath.ToSlash(rel), files: files, sources: sources}
		for _, f := range files {
			for _, imp := range f.Imports {
				if ip, err := strconv.Unquote(imp.Path.Value); err == nil {
					raw.imports = append(raw.imports, ip)
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if rest, ok := strings.CutPrefix(c.Text, "//rbvet:pkgpath "); ok {
						raw.path = strings.TrimSpace(rest)
					}
				}
			}
		}
		raws = append(raws, raw)
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixture %s: %v", dir, err)
	}
	if len(raws) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}

	fixturePaths := make(map[string]bool, len(raws))
	for _, r := range raws {
		if fixturePaths[r.path] {
			t.Fatalf("fixture %s: duplicate package path %s", dir, r.path)
		}
		fixturePaths[r.path] = true
	}
	for _, r := range raws {
		for _, imp := range r.imports {
			if !fixturePaths[imp] {
				stdlib[imp] = true
			}
		}
	}

	// Check in dependency order: a package is ready when its
	// fixture-internal imports are all checked.
	fi := &fixtureImporter{checked: make(map[string]*types.Package)}
	fi.base = newExportImporter(fset, exportsFor(t, stdlib))
	var pkgs []*Package
	pending := append([]*rawFixture(nil), raws...)
	for len(pending) > 0 {
		progressed := false
		var next []*rawFixture
		for _, r := range pending {
			ready := true
			for _, imp := range r.imports {
				if fixturePaths[imp] && fi.checked[imp] == nil {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, r)
				continue
			}
			tpkg, info, err := checkFiles(fset, r.path, r.files, fi)
			if err != nil {
				t.Fatalf("type-checking fixture %s: %v", r.dir, err)
			}
			fi.checked[r.path] = tpkg
			pkgs = append(pkgs, &Package{
				Path: r.path, Dir: r.dir, Fset: fset,
				Files: r.files, Types: tpkg, Info: info, Sources: r.sources,
			})
			progressed = true
		}
		if !progressed {
			t.Fatalf("fixture %s: import cycle among fixture packages", dir)
		}
		pending = next
	}
	return pkgs
}

// Want patterns may be double-quoted (escaped) or backtick-quoted (raw,
// friendlier for regexps full of metacharacters).
var (
	wantRE    = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
	wantTokRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")
)

// expectations extracts want comments: file:line -> expected regexps.
func expectations(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for name, src := range pkg.Sources {
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", name, i+1)
			for _, q := range wantTokRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
				}
				wants[key] = append(wants[key], regexp.MustCompile(pat))
			}
		}
	}
	return wants
}

// runFixture checks the analyzers' diagnostics on one fixture tree
// against its want comments, gathered from every package of the tree.
func runFixture(t *testing.T, analyzers []*Analyzer, dir string, opts ...RunOption) {
	t.Helper()
	pkgs := loadFixtureTree(t, dir)
	diags := Run(pkgs, analyzers, opts...)
	wants := make(map[string][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for key, res := range expectations(t, pkg) {
			wants[key] = append(wants[key], res...)
		}
	}

	matched := make(map[string][]bool)
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		rendered := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		ok := false
		for i, re := range wants[key] {
			if !matched[key][i] && re.MatchString(rendered) {
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", key, rendered)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !matched[key][i] {
				t.Errorf("%s: no diagnostic matched %q", key, re)
			}
		}
	}
}

// fixtures lists the sub-fixtures of testdata/src/<group>.
func fixtures(t *testing.T, group string) []string {
	t.Helper()
	root := filepath.Join("testdata", "src", group)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(root, e.Name()))
		}
	}
	if len(dirs) == 0 {
		t.Fatalf("no fixtures under %s", root)
	}
	return dirs
}

func testAnalyzerFixtures(t *testing.T, analyzers []*Analyzer, group string) {
	for _, dir := range fixtures(t, group) {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) { runFixture(t, analyzers, dir) })
	}
}

// TestDettaintFixtures pins interprocedural taint flow: transitive
// cross-package chains, //rbvet:impure barriers, and the source tables.
func TestDettaintFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Dettaint}, "dettaint")
}

// TestCallgraphFixtures pins the resolution rules taint depends on:
// interface CHA, function values in struct fields, and recursion.
func TestCallgraphFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Dettaint}, "callgraph")
}

// TestPurityFixtures pins the effect lattice: refuted claims (global
// writes, channels, goroutines), pure-modulo-arguments acceptance, and
// the memoization registry.
func TestPurityFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Purity}, "purity")
}

// TestNoallocFixtures runs the REAL escape-analysis pipeline on the hot
// fixture — its pinned path is its true import path, so `go build
// -gcflags=-m` diagnostics line up with the fixture's positions.
func TestNoallocFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go build")
	}
	escapes, err := LoadEscapes(".", []string{"./testdata/src/noalloc/hot"})
	if err != nil {
		t.Fatal(err)
	}
	runFixture(t, []*Analyzer{Noalloc}, filepath.Join("testdata", "src", "noalloc", "hot"), WithEscapes(escapes))
}

// TestNoallocUnverified checks the fail-loud paths: no escape data
// (rbvet -fast) and test-file hot paths are diagnostics, not silence.
func TestNoallocUnverified(t *testing.T) {
	runFixture(t, []*Analyzer{Noalloc}, filepath.Join("testdata", "src", "noalloc", "unverified"))
}

func TestMaporderFixtures(t *testing.T) { testAnalyzerFixtures(t, []*Analyzer{Maporder}, "maporder") }
func TestWallclockFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Wallclock}, "wallclock")
}
func TestGlobalrandFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Globalrand}, "globalrand")
}
func TestDroppederrFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Droppederr}, "droppederr")
}

// TestIgnoreFixtures exercises the suppression mechanism end-to-end:
// reasons silence exactly one analyzer on exactly one line, bare ignores
// are themselves diagnostics, and unrelated analyzers keep reporting.
func TestIgnoreFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Maporder, Wallclock, Globalrand, Droppederr}, "ignore")
}
