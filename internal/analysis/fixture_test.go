package analysis

// Golden-file harness: each fixture directory under testdata/src is one
// package. Lines with expected diagnostics carry
//
//	// want "regexp" ["regexp" ...]
//
// comments matched against the rendered "[analyzer] message". A fixture
// may pin its package import path (the analyzers' AppliesTo input) with
// a leading //rbvet:pkgpath comment; negative fixtures simply contain no
// want comments.

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtureExports lazily builds export data for the stdlib packages the
// fixtures import.
var fixtureExports = struct {
	sync.Mutex
	m map[string]string
}{}

func exportsFor(t *testing.T, imports map[string]bool) map[string]string {
	t.Helper()
	fixtureExports.Lock()
	defer fixtureExports.Unlock()
	missing := make([]string, 0, len(imports))
	for imp := range imports {
		if _, ok := fixtureExports.m[imp]; !ok {
			missing = append(missing, imp)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		wd, err := os.Getwd()
		if err != nil {
			t.Fatal(err)
		}
		m, err := exportMap(wd, missing)
		if err != nil {
			t.Fatalf("building export data for fixtures: %v", err)
		}
		if fixtureExports.m == nil {
			fixtureExports.m = make(map[string]string)
		}
		for k, v := range m {
			fixtureExports.m[k] = v
		}
	}
	out := make(map[string]string, len(fixtureExports.m))
	for k, v := range fixtureExports.m {
		out[k] = v
	}
	return out
}

// loadFixture parses and type-checks one fixture directory.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	fset := token.NewFileSet()
	files, sources, err := parseDir(fset, dir, names)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", dir, err)
	}

	pkgPath := "fixture/" + filepath.Base(dir)
	imports := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//rbvet:pkgpath "); ok {
					pkgPath = strings.TrimSpace(rest)
				}
			}
		}
	}

	imp := newExportImporter(fset, exportsFor(t, imports))
	tpkg, info, err := checkFiles(fset, pkgPath, files, imp)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{
		Path: pkgPath, Dir: dir, Fset: fset,
		Files: files, Types: tpkg, Info: info, Sources: sources,
	}
}

// Want patterns may be double-quoted (escaped) or backtick-quoted (raw,
// friendlier for regexps full of metacharacters).
var (
	wantRE    = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
	wantTokRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")
)

// expectations extracts want comments: file:line -> expected regexps.
func expectations(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for name, src := range pkg.Sources {
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", name, i+1)
			for _, q := range wantTokRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
				}
				wants[key] = append(wants[key], regexp.MustCompile(pat))
			}
		}
	}
	return wants
}

// runFixture checks the analyzers' diagnostics on one fixture against
// its want comments.
func runFixture(t *testing.T, analyzers []*Analyzer, dir string) {
	t.Helper()
	pkg := loadFixture(t, dir)
	diags := Run([]*Package{pkg}, analyzers)
	wants := expectations(t, pkg)

	matched := make(map[string][]bool)
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		rendered := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		ok := false
		for i, re := range wants[key] {
			if !matched[key][i] && re.MatchString(rendered) {
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", key, rendered)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !matched[key][i] {
				t.Errorf("%s: no diagnostic matched %q", key, re)
			}
		}
	}
}

// fixtures lists the sub-fixtures of testdata/src/<group>.
func fixtures(t *testing.T, group string) []string {
	t.Helper()
	root := filepath.Join("testdata", "src", group)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(root, e.Name()))
		}
	}
	if len(dirs) == 0 {
		t.Fatalf("no fixtures under %s", root)
	}
	return dirs
}

func testAnalyzerFixtures(t *testing.T, analyzers []*Analyzer, group string) {
	for _, dir := range fixtures(t, group) {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) { runFixture(t, analyzers, dir) })
	}
}

func TestMaporderFixtures(t *testing.T) { testAnalyzerFixtures(t, []*Analyzer{Maporder}, "maporder") }
func TestWallclockFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Wallclock}, "wallclock")
}
func TestGlobalrandFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Globalrand}, "globalrand")
}
func TestDroppederrFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Droppederr}, "droppederr")
}

// TestIgnoreFixtures exercises the suppression mechanism end-to-end:
// reasons silence exactly one analyzer on exactly one line, bare ignores
// are themselves diagnostics, and unrelated analyzers keep reporting.
func TestIgnoreFixtures(t *testing.T) {
	testAnalyzerFixtures(t, []*Analyzer{Maporder, Wallclock, Globalrand, Droppederr}, "ignore")
}
