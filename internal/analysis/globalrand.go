package analysis

import (
	"strconv"
)

// Globalrand forbids math/rand outside internal/stats. All randomness in
// the planning stack must flow through stats.RNG, whose SplitMix64-keyed
// streams make sampling a pure function of (seed, stream key) — the
// property that keeps Monte-Carlo estimates bit-identical at any worker
// count. math/rand's global generator (and per-rand.Rand state seeded
// ad hoc) would reintroduce hidden shared state.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand imports outside internal/stats (randomness flows through stats.RNG)",
	AppliesTo: func(path string) bool {
		return !pathWithin(path, ModulePath+"/internal/stats")
	},
	Run: runGlobalrand,
}

func runGlobalrand(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s outside internal/stats; derive randomness from stats.RNG streams instead", path)
			}
		}
	}
}
