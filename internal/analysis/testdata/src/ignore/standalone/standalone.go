//rbvet:pkgpath repro/internal/sim
package fixture

import "time"

// stamps shows a standalone directive covering exactly the next line:
// the first clock read is suppressed, the second still fires.
func stamps() (int64, int64) {
	//rbvet:ignore wallclock — fixture: a standalone directive covers only the following line
	a := time.Now().UnixNano()
	b := time.Now().UnixNano() // want `\[wallclock\] time.Now read from the deterministic core`
	return a, b
}
