//rbvet:pkgpath repro/internal/sim
package fixture

import "time"

func record(int64) error { return nil }

// tick has two violations on one line; the directive silences exactly
// one analyzer (wallclock), so droppederr still fires.
func tick() {
	//rbvet:ignore wallclock — fixture: the directive names one analyzer and leaves the other reporting
	_ = record(time.Now().Unix()) // want `\[droppederr\] error discarded with _`
}
