//rbvet:pkgpath repro/internal/planner
package fixture

// A bare directive (no reason) is itself a diagnostic and suppresses
// nothing; an unknown analyzer name is also a diagnostic.

//rbvet:ignore globalrand // want `\[rbvet\] ignore directive for "globalrand" has no reason`
import "math/rand" // want `\[globalrand\] import of math/rand outside internal/stats`

var _ = rand.Int

//rbvet:ignore nosuchcheck — fixture: this analyzer does not exist // want `\[rbvet\] ignore directive names unknown analyzer "nosuchcheck"`
