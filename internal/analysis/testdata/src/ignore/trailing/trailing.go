//rbvet:pkgpath repro/internal/planner
package fixture

import (
	"math/rand" //rbvet:ignore globalrand — fixture: a reasoned trailing directive silences this line

	randv2 "math/rand/v2" // want `\[globalrand\] import of math/rand/v2 outside internal/stats`
)

// Both generators are referenced so the imports are used; only the
// second import is reported — the first carries a reasoned directive.
var (
	_ = rand.Int
	_ = randv2.Int
)
