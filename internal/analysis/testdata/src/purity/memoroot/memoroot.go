//rbvet:pkgpath repro/internal/sim

// A function in the memoization registry (sim's segment LRU) must carry
// //rbvet:pure; the registry is keyed by FullName, so the pinned package
// path makes this fixture's buildSegment the registered root.
package memoroot

type Simulator struct {
	segs map[string]int
}

func (s *Simulator) buildSegment(key string) int { // want `\[purity\] memoroot\.\(\*Simulator\)\.buildSegment is memoized by the segment LRU \(sim\.segs\) but not annotated //rbvet:pure`
	return len(key)
}
