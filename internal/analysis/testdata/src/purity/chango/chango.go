//rbvet:pkgpath repro/internal/planner

// Channel use and goroutine spawning each refute a purity claim; one
// function collecting both gets one diagnostic per effect.
package chango

//rbvet:pure
func FanOut(xs []int) int { // want `\[purity\] chango\.FanOut is annotated //rbvet:pure but uses channels/select` `\[purity\] chango\.FanOut is annotated //rbvet:pure but spawns goroutines`
	ch := make(chan int)
	go func() {
		t := 0
		for _, x := range xs {
			t += x
		}
		ch <- t
	}()
	return <-ch
}

// Serial does the same reduction without concurrency; provably pure.
//
//rbvet:pure
func Serial(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
