//rbvet:pkgpath repro/internal/sim

// Pure modulo arguments: receiver and argument mutation are compatible
// with //rbvet:pure (the memoization contract), while an aliased global
// write is not.
package recvmutate

import "sort"

type Cache struct {
	vals []float64
	n    int
}

// Fill mutates its receiver and its argument slice: the result is still
// a function of the arguments, so the claim holds.
//
//rbvet:pure
func (c *Cache) Fill(buf []float64) []float64 {
	c.n++
	for i := range buf {
		buf[i] = float64(i) * 0.5
	}
	c.vals = buf
	return buf
}

// Sorted uses a whitelisted external package (sort); still pure.
//
//rbvet:pure
func Sorted(xs []float64) []float64 {
	sort.Float64s(xs)
	return xs
}

var shared = &Cache{}

//rbvet:pure
func Leak() { // want `\[purity\] recvmutate\.Leak is annotated //rbvet:pure but writes package-level state: writes recvmutate\.shared`
	shared = &Cache{n: 1}
}
