//rbvet:pkgpath repro/internal/sim

// The registered root with its claim in place and a provably pure body:
// no diagnostic.
package memorootok

type Simulator struct {
	segs map[string]int
}

//rbvet:pure
func (s *Simulator) buildSegment(key string) int {
	return len(key) * 2
}
