//rbvet:pkgpath repro/internal/sim

// A //rbvet:pure claim refuted by a package-level write — directly, and
// through a helper two frames down (the chain names the origin).
package globalwrite

var hits int

//rbvet:pure
func Bump() int { // want `\[purity\] globalwrite\.Bump is annotated //rbvet:pure but writes package-level state: writes globalwrite\.hits`
	hits++
	return hits
}

func record() { hits = hits + 1 }

func helper() { record() }

//rbvet:pure
func Indirect() int { // want `\[purity\] globalwrite\.Indirect is annotated //rbvet:pure but writes package-level state \(globalwrite\.Indirect → globalwrite\.helper → globalwrite\.record: writes globalwrite\.hits\)`
	helper()
	return hits
}

// Reader only reads the global; reads are pure.
//
//rbvet:pure
func Reader() int { return hits }
