package unverified

// Test files are never compiled by `go build`, so a noalloc claim in one
// is unverifiable by construction.

//rbvet:noalloc
func fastHelper(x int) int { // want "\\[noalloc\\] //rbvet:noalloc on unverified\\.fastHelper cannot be verified: `go build` does not compile test files"
	return x + 1
}
