// The gate fails loudly, not vacuously: with no escape-analysis data
// (rbvet -fast) an annotated function is reported unverified.
package unverified

//rbvet:noalloc
func Fast(x int) int { // want `\[noalloc\] //rbvet:noalloc on unverified\.Fast not verified: no escape-analysis data \(run rbvet without -fast\)`
	return x * x
}
