//rbvet:pkgpath repro/internal/analysis/testdata/src/noalloc/hot

// Checked against REAL compiler escape analysis (the fixture's pinned
// path is its true import path, so `go build -gcflags=-m` output lines
// match): a clean hot loop passes, an escaping make is a diagnostic at
// the allocation site, and a deliberate cold-path allocation is excused
// per line.
package hot

// Sum allocates nothing; the claim verifies.
//
//rbvet:noalloc
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Grow returns fresh heap memory; the claim fails at the make.
//
//rbvet:noalloc
func Grow(n int) []int {
	buf := make([]int, n) // want `\[noalloc\] heap allocation in //rbvet:noalloc hot\.Grow: make\(\[\]int, n\) escapes to heap`
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// FillInto reuses the caller's buffer on the hot path; the first-call
// growth is excused with a reasoned per-line ignore.
//
//rbvet:noalloc
func FillInto(buf []int, n int) []int {
	if cap(buf) < n {
		//rbvet:ignore noalloc — cold path: runs once per buffer size; steady state reuses buf
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = i * i
	}
	return buf
}
