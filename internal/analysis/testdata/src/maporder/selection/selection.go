//rbvet:pkgpath repro/internal/planner
package fixture

// argmin keeps the first-seen key on value ties, so its result depends
// on map iteration order.
func argmin(m map[int]float64) int {
	best := -1
	bestV := 1e18
	for k, v := range m {
		if v < bestV {
			best, bestV = k, v // want `\[maporder\] min/max selection over map iteration order`
		}
	}
	return best
}

// argmaxGuarded uses the continue-guard form of the same bug.
func argmaxGuarded(m map[string]int) string {
	best := ""
	bestV := -1
	for k, v := range m {
		if v < bestV {
			continue
		}
		if len(k) > 0 {
			best, bestV = k, v // want `\[maporder\] min/max selection over map iteration order`
		}
	}
	return best
}
