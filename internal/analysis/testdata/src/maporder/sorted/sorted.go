//rbvet:pkgpath repro/internal/sim
package fixture

import "sort"

// sortedKeys is the canonical collect-then-sort idiom; the later sort
// makes the append order irrelevant.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedByHelper sorts through a project-local helper.
func sortedByHelper(m map[int]int) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

func sortIDs(ids []int) { sort.Ints(ids) }

// argminSlice selects over a slice, whose order is deterministic.
func argminSlice(xs []float64) int {
	best := -1
	bestV := 1e18
	for i, v := range xs {
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// count accumulates integers, which is exactly commutative.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert writes through keys derived from the iteration, which is
// order-independent.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// anyNegative sets an order-independent flag; the assigned value does
// not derive from the iteration.
func anyNegative(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v < 0 {
			found = true
		}
	}
	return found
}
