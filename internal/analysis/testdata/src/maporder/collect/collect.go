//rbvet:pkgpath repro/internal/sim
package fixture

import "fmt"

// keys collects map keys without sorting them afterwards.
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `\[maporder\] append to out in map iteration order`
	}
	return out
}

// total sums floats in map order; the rounding depends on the order.
func total(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `\[maporder\] floating-point accumulation in map iteration order`
	}
	return sum
}

// dump prints rows in map order.
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `\[maporder\] output written in map iteration order`
	}
}
