//rbvet:pkgpath repro/internal/replan

// Mutual recursion: the taint fixed point must terminate on cycles, and
// taint entering a cycle anywhere must reach every member.
package recursion

import "os"

func ping(n int) int {
	if n <= 0 {
		return len(os.Getenv("RB_BASE")) // want `\[dettaint\] call to os\.Getenv is a determinism taint source \(environment read\)`
	}
	return pong(n - 1) // want `\[dettaint\] call to recursion\.pong reaches a determinism taint source \(environment read\)`
}

func pong(n int) int {
	return ping(n - 1) // want `\[dettaint\] call to recursion\.ping reaches a determinism taint source \(environment read\)`
}

// even/odd form a clean cycle: termination without taint.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func Run(n int) int {
	if even(n) {
		return ping(n) // want `\[dettaint\] call to recursion\.ping reaches a determinism taint source \(environment read\)`
	}
	return 0
}
