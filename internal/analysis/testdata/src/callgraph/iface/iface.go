//rbvet:pkgpath repro/internal/planner

// Interface calls resolve CHA-style to every loaded implementation: the
// call through Estimator reaches envEstimator.Est's os.Getenv even
// though the concrete type is unknowable statically.
package iface

import "os"

type Estimator interface {
	Est() int
}

type fixedEstimator struct{ v int }

func (f fixedEstimator) Est() int { return f.v }

type envEstimator struct{}

func (envEstimator) Est() int {
	return len(os.Getenv("RB_EST")) // want `\[dettaint\] call to os\.Getenv is a determinism taint source \(environment read\)`
}

func Evaluate(e Estimator) int {
	return e.Est() // want `\[dettaint\] call to iface\.envEstimator\.Est reaches a determinism taint source \(environment read\)`
}

// onlyClean calls the clean implementation directly; no diagnostic.
func onlyClean() int {
	return fixedEstimator{v: 3}.Est()
}
