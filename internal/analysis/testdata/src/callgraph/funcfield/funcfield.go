//rbvet:pkgpath repro/internal/sim

// Calls through function values stored in struct fields (the
// sim.WithEstimator pattern) resolve to every address-taken function
// with an identical signature.
package funcfield

import "os"

type Simulator struct {
	estimate func(int) int
}

func WithEstimator(fn func(int) int) *Simulator {
	return &Simulator{estimate: fn}
}

func envCost(x int) int {
	return x + len(os.Getenv("RB_COST")) // want `\[dettaint\] call to os\.Getenv is a determinism taint source \(environment read\)`
}

func doubleCost(x int) int { return 2 * x }

func Build() *Simulator {
	return WithEstimator(envCost)
}

// BuildClean takes doubleCost's address too: a clean candidate in the
// address-taken set adds no diagnostic of its own.
func BuildClean() *Simulator {
	return WithEstimator(doubleCost)
}

func (s *Simulator) Run(x int) int {
	return s.estimate(x) // want `\[dettaint\] call to funcfield\.envCost reaches a determinism taint source \(environment read\)`
}
