//rbvet:pkgpath repro/internal/executor
package fixture

import "os"

type store struct{}

func (s *store) flush() error { return nil }

func persist() error { return nil }

// run drops errors on the floor in expression statements.
func run(s *store) {
	persist()            // want `\[droppederr\] fixture.persist returns an error that is discarded`
	s.flush()            // want `\[droppederr\] \(\*fixture.store\).flush returns an error that is discarded`
	os.Remove("scratch") // want `\[droppederr\] os.Remove returns an error that is discarded`
}
