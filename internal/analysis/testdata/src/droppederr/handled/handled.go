//rbvet:pkgpath repro/internal/executor
package fixture

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func persist() error { return nil }

// handled demonstrates the allowed forms: handled errors and the
// conventional never-fails writers.
func handled(v any) (string, error) {
	if err := persist(); err != nil {
		return "", err
	}
	fmt.Println("progress")
	fmt.Fprintln(os.Stderr, "progress")
	var b strings.Builder
	b.WriteString("a")
	var buf bytes.Buffer
	buf.WriteString("b")
	n, ok := v.(int) // comma-ok is not an error discard
	if !ok {
		n = 0
	}
	return fmt.Sprintf("%s%s%d", b.String(), buf.String(), n), nil
}
