//rbvet:pkgpath repro/internal/executor
package fixture

// inTestFile may discard errors with the blank identifier: test files
// are exempt from the `_ =` rule.
func inTestFile() {
	_ = persist()
}
