//rbvet:pkgpath repro/internal/executor
package fixture

import (
	"fmt"
	"io"
)

func persist() error { return nil }

// discard throws errors away with the blank identifier outside a test
// file.
func discard(w io.Writer) int {
	_ = persist()                   // want `\[droppederr\] error discarded with _`
	n, _ := fmt.Fprintf(w, "row\n") // want `\[droppederr\] error discarded with _`
	return n
}
