//rbvet:pkgpath repro/internal/stats
package fixture

import "math/rand"

// seedCheck lives in internal/stats, the one package allowed to touch
// math/rand (to validate its own streams against the reference
// generator).
func seedCheck(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
