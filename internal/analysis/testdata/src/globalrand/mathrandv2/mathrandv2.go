//rbvet:pkgpath repro/cmd/rbsweep
package fixture

import rand "math/rand/v2" // want `\[globalrand\] import of math/rand/v2 outside internal/stats`

// pick uses v2's global generator; still hidden state.
func pick(n int) int {
	return rand.IntN(n)
}
