//rbvet:pkgpath repro/internal/planner
package fixture

import "math/rand" // want `\[globalrand\] import of math/rand outside internal/stats`

// jitter uses the global generator, whose hidden state breaks
// reproducibility.
func jitter() float64 {
	return rand.Float64()
}
