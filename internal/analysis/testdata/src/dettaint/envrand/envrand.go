//rbvet:pkgpath repro/internal/executor

// Direct source calls in the core: environment and RNG reads are
// dettaint's to report; time.Now/Since/Sleep stay with the per-line
// wallclock analyzer (no double diagnostics).
package envrand

import (
	"math/rand"
	"os"
	"time"
)

func Configure() string {
	return os.Getenv("RB_MODE") // want `\[dettaint\] call to os\.Getenv is a determinism taint source \(environment read\)`
}

func Shuffle() int {
	return rand.Int() // want `\[dettaint\] call to rand\.Int is a determinism taint source \(global/ad-hoc RNG`
}

func Wall() time.Time {
	return time.Now() // the wallclock analyzer owns direct calls; no dettaint diagnostic
}
