//rbvet:pkgpath repro/internal/planner

// //rbvet:impure(reason) is a per-function barrier: the annotated
// function is excused and its taint does not reach callers. The
// unannotated twin next to it keeps reporting.
package barrier

import "os"

// jitter is impure by design; the reviewed reason is trusted.
//
//rbvet:impure(host name only labels log output; it never reaches a plan)
func jitter() string {
	h, _ := os.Hostname()
	return h
}

func leak() string {
	h, _ := os.Hostname() // want `\[dettaint\] call to os\.Hostname is a determinism taint source \(host identity\)`
	return h
}

func Plan() string {
	a := jitter()
	b := leak() // want `\[dettaint\] call to barrier\.leak reaches a determinism taint source \(host identity\)`
	return a + b
}
