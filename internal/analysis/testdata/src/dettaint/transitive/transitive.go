//rbvet:pkgpath repro/internal/sim

// A core package calling a helper that transitively — across a package
// boundary, two frames deep — reaches time.Now. The per-line wallclock
// analyzer cannot see this; dettaint must.
package transitive

import "repro/internal/util"

func Seed() int64 {
	return util.Stamp() // want `\[dettaint\] call to util\.Stamp reaches a determinism taint source \(wall clock\): util\.Stamp → util\.now → time\.Now`
}

func Clean(x int) int {
	return util.Pure(x)
}

// inPackage taints through a same-package helper chain: every core call
// site of a tainted function reports, not just the first hop.
func inPackage() int64 {
	return Seed() // want `\[dettaint\] call to transitive\.Seed reaches a determinism taint source \(wall clock\): transitive\.Seed → util\.Stamp → util\.now → time\.Now`
}
