//rbvet:pkgpath repro/internal/util

// Package util lives OUTSIDE the deterministic core: its own wall-clock
// read is not a diagnostic here, but the taint must follow it into any
// core caller.
package util

import "time"

func now() time.Time { return time.Now() }

// Stamp is two hops from time.Now.
func Stamp() int64 { return now().UnixNano() }

// Pure has no taint; a core caller of Pure stays clean.
func Pure(x int) int { return x * 2 }
