//rbvet:pkgpath repro/internal/stats
package fixture

import "time"

// budget does pure duration arithmetic: no clock reads, nothing to flag.
func budget(per time.Duration, n int) time.Duration {
	total := per * time.Duration(n)
	if total > time.Hour {
		total = time.Hour
	}
	return total
}
