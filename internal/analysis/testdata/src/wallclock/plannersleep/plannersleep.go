//rbvet:pkgpath repro/internal/planner
package fixture

import "time"

// throttle sleeps on the real clock inside the planner.
func throttle(d time.Duration) {
	time.Sleep(d) // want `\[wallclock\] time.Sleep read from the deterministic core`
}

// clockFunc passes the wall clock around as a value, which is still a
// reference to it.
func clockFunc() func() time.Time {
	return time.Now // want `\[wallclock\] time.Now read from the deterministic core`
}
