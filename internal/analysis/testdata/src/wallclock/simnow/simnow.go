//rbvet:pkgpath repro/internal/sim
package fixture

import "time"

// stamp reads the wall clock from the simulator package.
func stamp() (int64, float64) {
	t0 := time.Now()                    // want `\[wallclock\] time.Now read from the deterministic core`
	elapsed := time.Since(t0).Seconds() // want `\[wallclock\] time.Since read from the deterministic core`
	return t0.UnixNano(), elapsed
}
