//rbvet:pkgpath repro/internal/trace
package fixture

import "time"

// stamp reads the wall clock outside the deterministic core, where it
// is allowed (trace timestamps never feed plans).
func stamp() time.Time {
	return time.Now()
}
