// Determinism taint: interprocedural propagation of impurity sources
// through the call graph.
//
// The per-line wallclock/globalrand analyzers catch a time.Now written
// INSIDE the deterministic core, but a refactor that moves the read
// into a helper three calls away — or into another package — escapes
// them. Dettaint closes that hole: wall-clock reads, global/ad-hoc RNG,
// and environment reads are taint SOURCES wherever they live; a
// function that (transitively) calls one is TAINTED; and every call to
// a tainted function from inside the deterministic core is a
// diagnostic, carrying the full call chain down to the source.
//
// Escapes are per-function, not per-line: annotating a function
//
//	//rbvet:impure(reason)
//
// declares it impure by design — its body is excused and its taint does
// not propagate to callers. The reason is the reviewed argument for why
// the impurity cannot reach plan-affecting state (e.g. par.Workers
// reads GOMAXPROCS, but results are index-addressed and bit-identical
// at any worker count).
package analysis

import (
	"go/types"
)

// Dettaint is the interprocedural determinism-taint analyzer.
var Dettaint = &Analyzer{
	Name:   "dettaint",
	Doc:    "flag calls in the deterministic core that transitively reach wall-clock, RNG, or environment reads",
	RunAll: runDettaint,
}

// taintSourceFuncs maps "pkgpath.Func" of known nondeterminism sources
// to the reason shown in diagnostics. Functions of math/rand and
// math/rand/v2 (including their methods) are sources wholesale.
var taintSourceFuncs = map[string]string{
	"time.Now":       "wall clock",
	"time.Since":     "wall clock",
	"time.Until":     "wall clock",
	"time.Sleep":     "real sleep",
	"time.After":     "wall-clock timer",
	"time.Tick":      "wall-clock timer",
	"time.NewTimer":  "wall-clock timer",
	"time.NewTicker": "wall-clock timer",

	"os.Getenv":    "environment read",
	"os.LookupEnv": "environment read",
	"os.Environ":   "environment read",
	"os.Hostname":  "host identity",
	"os.Getpid":    "process identity",
	"os.Getwd":     "environment read",

	"runtime.GOMAXPROCS":   "scheduler state",
	"runtime.NumCPU":       "machine topology",
	"runtime.NumGoroutine": "scheduler state",

	"crypto/rand.Read": "hardware entropy",
}

// wallclockOwned is the subset of sources the per-line wallclock
// analyzer already reports when called directly from the core; dettaint
// skips direct calls to them to avoid double diagnostics.
var wallclockOwned = map[string]bool{
	"time.Now": true, "time.Since": true, "time.Sleep": true,
}

// sourceReason reports whether fn is a taint source, and why.
func sourceReason(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		return "global/ad-hoc RNG (use stats.RNG streams)", true
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	r, ok := taintSourceFuncs[fn.Pkg().Path()+"."+fn.Name()]
	return r, ok
}

// taintState is the per-node result of the fixed point.
type taintState struct {
	tainted bool
	// source is the reason string of one reachable source, for messages.
	source string
}

// computeTaint runs the taint fixed point over the call graph. A node
// is tainted when it is a source or calls a tainted node; nodes
// annotated //rbvet:impure are barriers — excused themselves, and
// contributing nothing to callers.
func computeTaint(g *CallGraph) map[*cgNode]taintState {
	state := make(map[*cgNode]taintState)
	barrier := func(n *cgNode) bool {
		a := g.ann(n)
		return a != nil && a.Impure
	}
	// Seed: external source nodes referenced anywhere in the graph.
	for _, n := range g.decls {
		if r, ok := sourceReason(n.fn); ok {
			state[n] = taintState{tainted: true, source: r}
		}
	}
	// Fixed point: effects are monotone, so iterate to quiescence. The
	// graph is small (one module) and chains are shallow; a simple
	// round-robin converges in a handful of passes.
	for changed := true; changed; {
		changed = false
		for _, n := range g.all {
			if state[n].tainted || barrier(n) {
				continue
			}
			for _, e := range n.edges {
				if cs := state[e.callee]; cs.tainted && !barrier(e.callee) {
					state[n] = taintState{tainted: true, source: cs.source}
					changed = true
					break
				}
			}
		}
	}
	return state
}

// isSourceNode reports whether n is itself an external taint source.
func isSourceNode(n *cgNode) bool {
	if n.fn == nil || n.body() != nil {
		return false
	}
	_, ok := sourceReason(n.fn)
	return ok
}

func runDettaint(p *AllPass) {
	taint := computeTaint(p.Graph)
	for _, n := range p.Graph.all {
		if n.pkg == nil || !inDeterministicCore(basePath(n.pkg.Path)) {
			continue
		}
		if a := p.Graph.ann(n); a != nil && a.Impure {
			continue // the whole function is an excused exception
		}
		for _, e := range n.edges {
			if e.kind == edgeEncloses {
				continue // the literal's own call sites report themselves
			}
			cs := taint[e.callee]
			if !cs.tainted {
				continue
			}
			if a := p.Graph.ann(e.callee); a != nil && a.Impure {
				continue
			}
			if isSourceNode(e.callee) {
				// Direct source call. Leave time.Now/Since/Sleep to the
				// per-line wallclock analyzer.
				full := e.callee.fn.Pkg().Path() + "." + e.callee.fn.Name()
				if wallclockOwned[full] {
					continue
				}
				p.Reportf(e.pos, "call to %s is a determinism taint source (%s) in the deterministic core; route through vclock/stats.RNG or annotate the caller //rbvet:impure(reason)",
					e.callee.name, cs.source)
				continue
			}
			path := p.Graph.pathFrom(e.callee, isSourceNode)
			chain := e.callee.name
			if len(path) > 0 {
				chain = chainString(path)
			}
			p.Reportf(e.pos, "call to %s reaches a determinism taint source (%s): %s; fix the callee or annotate it //rbvet:impure(reason)",
				e.callee.name, cs.source, chain)
		}
	}
}
