// Loader: type-checks the module's packages from source using only the
// standard library. Dependency type information comes from compiler export
// data located via `go list -export`, so the loader needs no
// golang.org/x/tools dependency — the module stays dependency-free.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/sim"); external test
	// packages carry their own "_test"-suffixed path.
	Path string
	// Dir is the directory holding the package's source files.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed source files (including in-package _test.go
	// files for module packages).
	Files []*ast.File
	// Types and Info hold the type-checking results.
	Types *types.Package
	Info  *types.Info
	// Sources maps file names to raw content, used to classify ignore
	// directives as standalone or trailing.
	Sources map[string][]byte
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	Dir          string
	ImportPath   string
	Export       string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	TestImports  []string
	XTestImports []string
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON stream.
func goList(dir string, args ...string) ([]*listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var entries []*listEntry
	dec := json.NewDecoder(&out)
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportMap locates compiler export data for the given import-path
// patterns and their dependency closure.
func exportMap(dir string, patterns []string) (map[string]string, error) {
	entries, err := goList(dir, append([]string{"-deps", "-export", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			m[e.ImportPath] = e.Export
		}
	}
	return m, nil
}

// exportImporter resolves every import from compiler export data. Using
// export data uniformly — even for intra-module imports of packages that
// are themselves being source-checked — keeps each package's type
// universe consistent; mixing source-checked and export-loaded versions
// of one package would make identical types compare unequal.
type exportImporter struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	base    types.Importer
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{fset: fset, exports: exports}
	ei.base = importer.ForCompiler(fset, "gc", ei.lookup)
	return ei
}

func (ei *exportImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := ei.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.base.Import(path)
}

// parseDir parses the named files of one directory, returning the ASTs
// and raw sources.
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, map[string][]byte, error) {
	var files []*ast.File
	sources := make(map[string][]byte, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		sources[path] = src
	}
	return files, sources, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// checkFiles type-checks one package's files.
func checkFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}

// Load parses and type-checks every package matching patterns (plus their
// in-package and external test files) in the module rooted at dir. The
// returned packages are sorted by import path, external test packages
// listed under "<path>_test".
func Load(dir string, patterns []string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// The export closure must cover the targets' own imports and the
	// extra imports of their test files.
	patternSet := append([]string(nil), patterns...)
	seen := make(map[string]bool)
	for _, t := range targets {
		for _, imp := range append(append([]string(nil), t.TestImports...), t.XTestImports...) {
			if imp != "C" && !seen[imp] {
				seen[imp] = true
				patternSet = append(patternSet, imp)
			}
		}
	}
	exports, err := exportMap(dir, patternSet)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ei := newExportImporter(fset, exports)

	// Export data covers intra-module imports, so targets can be
	// source-checked in any order; path order keeps results stable.
	ordered := append([]*listEntry(nil), targets...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ImportPath < ordered[j].ImportPath })

	var pkgs []*Package
	for _, t := range ordered {
		if t.Standard || t.DepOnly {
			continue
		}
		names := append(append([]string(nil), t.GoFiles...), t.TestGoFiles...)
		if len(names) > 0 {
			files, sources, err := parseDir(fset, t.Dir, names)
			if err != nil {
				return nil, err
			}
			tpkg, info, err := checkFiles(fset, t.ImportPath, files, ei)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, &Package{
				Path: t.ImportPath, Dir: t.Dir, Fset: fset,
				Files: files, Types: tpkg, Info: info, Sources: sources,
			})
		}
		if len(t.XTestGoFiles) > 0 {
			files, sources, err := parseDir(fset, t.Dir, t.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			xpath := t.ImportPath + "_test"
			tpkg, info, err := checkFiles(fset, xpath, files, ei)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, &Package{
				Path: xpath, Dir: t.Dir, Fset: fset,
				Files: files, Types: tpkg, Info: info, Sources: sources,
			})
		}
	}
	return pkgs, nil
}
