package analysis

import "testing"

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		in, name, reason string
	}{
		{"maporder — ties broken by ID", "maporder", "ties broken by ID"},
		{"maporder -- ties broken by ID", "maporder", "ties broken by ID"},
		{"maporder : ties broken by ID", "maporder", "ties broken by ID"},
		{"maporder: colon glued to the name is part of the name", "maporder:", ""},
		{"wallclock —", "wallclock", ""},
		{"wallclock", "wallclock", ""},
		{"", "", ""},
		{"droppederr bare words without a separator", "droppederr", ""},
	}
	for _, c := range cases {
		name, reason := splitDirective(c.in)
		if name != c.name || reason != c.reason {
			t.Errorf("splitDirective(%q) = (%q, %q), want (%q, %q)", c.in, name, reason, c.name, c.reason)
		}
	}
}

func TestSplitDirectiveColon(t *testing.T) {
	// A colon glued to the analyzer name is not a separator between the
	// name and reason; the supported form puts it after the name token.
	name, reason := splitDirective("maporder :ties broken by ID")
	if name != "maporder" || reason != "ties broken by ID" {
		t.Errorf("got (%q, %q)", name, reason)
	}
}

func TestApplySuppressionsExactness(t *testing.T) {
	diag := func(file string, line int, analyzer string) Diagnostic {
		d := Diagnostic{Analyzer: analyzer, Message: "m"}
		d.Pos.Filename = file
		d.Pos.Line = line
		return d
	}
	diags := []Diagnostic{
		diag("a.go", 10, "maporder"),
		diag("a.go", 10, "droppederr"), // other analyzer, same line
		diag("a.go", 11, "maporder"),   // same analyzer, other line
		diag("b.go", 10, "maporder"),   // same line number, other file
	}
	dirs := []directive{{file: "a.go", line: 10, analyzer: "maporder", reason: "r"}}
	got, stale := applySuppressionsChecked(append([]Diagnostic(nil), diags...), dirs, byName(All))
	if len(got) != 3 {
		t.Fatalf("suppressed %d diagnostics, want exactly 1 (got %v)", len(diags)-len(got), got)
	}
	for _, d := range got {
		if d.Pos.Filename == "a.go" && d.Pos.Line == 10 && d.Analyzer == "maporder" {
			t.Fatalf("targeted diagnostic survived: %v", d)
		}
	}
	if len(stale) != 0 {
		t.Fatalf("live directive reported stale: %v", stale)
	}
}

func TestStaleIgnoreReported(t *testing.T) {
	dirs := []directive{
		{file: "a.go", line: 10, analyzer: "maporder", reason: "dead"},
		{file: "a.go", line: 20, analyzer: "noalloc", reason: "not judged: noalloc did not run"},
	}
	ran := map[string]bool{"maporder": true, Staleignore.Name: true}
	got, stale := applySuppressionsChecked(nil, dirs, ran)
	if len(got) != 0 {
		t.Fatalf("unexpected diagnostics: %v", got)
	}
	if len(stale) != 1 || stale[0].Analyzer != Staleignore.Name {
		t.Fatalf("want exactly the maporder directive reported stale, got %v", stale)
	}
	// Without staleignore in the run set, nothing is judged.
	_, stale = applySuppressionsChecked(nil, dirs, map[string]bool{"maporder": true})
	if len(stale) != 0 {
		t.Fatalf("staleness judged without staleignore in the run set: %v", stale)
	}
}
