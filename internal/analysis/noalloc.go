// Zero-alloc enforcement: a build-time gate on annotated hot paths.
//
// PR 4 pinned the hot paths with testing.AllocsPerRun, which only
// triggers when the right benchmark runs, measures a whole call tree,
// and reports "1 alloc" without saying where. Noalloc moves the pin to
// analysis time: functions annotated
//
//	//rbvet:noalloc
//
// are checked against the compiler's own escape analysis
// (go build -gcflags=<module>/...=-m): any "escapes to heap" /
// "moved to heap" decision inside the annotated function's body is a
// diagnostic at the allocation site. A deliberate cold-path allocation
// (growing a scratch buffer on first use) carries a per-line
//
//	//rbvet:ignore noalloc — <why the hot path never takes this branch>
//
// The gate is only as good as its input, so it fails loudly rather
// than vacuously: an annotated function whose package produced no
// compiler output — or that lives in a _test.go file, which `go build`
// never compiles — is reported as unverifiable.
package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Noalloc verifies //rbvet:noalloc functions against escape analysis.
var Noalloc = &Analyzer{
	Name:   "noalloc",
	Doc:    "verify //rbvet:noalloc hot paths heap-allocation-free via the compiler's escape analysis (-gcflags=-m)",
	RunAll: runNoalloc,
}

// escFact is one compiler escape decision.
type escFact struct {
	line int
	msg  string
}

// EscapeFacts holds parsed `go build -gcflags=-m` output.
type EscapeFacts struct {
	// heap maps absolute filename → heap-allocation decisions in it.
	heap map[string][]escFact
	// covered records the import paths the compiler emitted ANY output
	// for — the difference between "no allocations" and "no data".
	covered map[string]bool
}

// Covered reports whether the compiler produced output for pkgPath.
func (e *EscapeFacts) Covered(pkgPath string) bool { return e.covered[pkgPath] }

// LoadEscapes builds the given packages (go-list patterns, resolved in
// dir) with -m escape diagnostics enabled for every module package, and
// parses the result. The build cache replays compiler diagnostics, so
// warm runs are fast.
func LoadEscapes(dir string, patterns []string) (*EscapeFacts, error) {
	args := append([]string{"build", "-gcflags", ModulePath + "/...=-m", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	return parseEscapes(dir, bytes.NewReader(out)), nil
}

// heapDecision reports whether one -m message is a heap allocation.
func heapDecision(msg string) bool {
	return strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "does not escape") ||
		strings.HasPrefix(msg, "moved to heap")
}

// parseEscapes decodes -m output: "# pkg" section headers followed by
// "file:line:col: message" lines with file paths relative to dir.
func parseEscapes(dir string, r io.Reader) *EscapeFacts {
	e := &EscapeFacts{heap: make(map[string][]escFact), covered: make(map[string]bool)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	current := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			current = strings.TrimSpace(rest)
			continue
		}
		file, ln, msg, ok := splitDiagLine(line)
		if !ok {
			continue
		}
		if current != "" {
			e.covered[current] = true
		}
		if !heapDecision(msg) {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		e.heap[file] = append(e.heap[file], escFact{line: ln, msg: msg})
	}
	return e
}

// splitDiagLine parses "file:line:col: message".
func splitDiagLine(s string) (file string, line int, msg string, ok bool) {
	i := strings.Index(s, ": ")
	if i < 0 {
		return "", 0, "", false
	}
	loc, msg := s[:i], s[i+2:]
	parts := strings.Split(loc, ":")
	if len(parts) < 2 {
		return "", 0, "", false
	}
	// file:line or file:line:col; the file part may itself contain no
	// colons (relative paths under a module).
	n := len(parts)
	if ln, err := strconv.Atoi(parts[n-2]); err == nil {
		if _, err := strconv.Atoi(parts[n-1]); err == nil {
			return strings.Join(parts[:n-2], ":"), ln, msg, true
		}
	}
	ln, err := strconv.Atoi(parts[n-1])
	if err != nil {
		return "", 0, "", false
	}
	return strings.Join(parts[:n-1], ":"), ln, msg, true
}

func runNoalloc(p *AllPass) {
	for _, n := range p.Graph.all {
		if n.fn == nil || n.doc == nil {
			continue
		}
		ann := p.Anns[n.fn]
		if ann == nil || !ann.Noalloc {
			continue
		}
		start := n.pkg.Fset.Position(n.doc.Pos())
		end := n.pkg.Fset.Position(n.doc.End())
		if strings.HasSuffix(start.Filename, "_test.go") || strings.HasSuffix(basePath(n.pkg.Path), "_test") {
			p.Reportf(start, "//rbvet:noalloc on %s cannot be verified: `go build` does not compile test files — move the hot path into the package proper", n.name)
			continue
		}
		if p.Escapes == nil {
			p.Reportf(start, "//rbvet:noalloc on %s not verified: no escape-analysis data (run rbvet without -fast)", n.name)
			continue
		}
		if !p.Escapes.Covered(basePath(n.pkg.Path)) {
			p.Reportf(start, "//rbvet:noalloc on %s not verified: escape analysis produced no output for %s", n.name, basePath(n.pkg.Path))
			continue
		}
		for _, f := range p.Escapes.heap[start.Filename] {
			if f.line < start.Line || f.line > end.Line {
				continue
			}
			pos := token.Position{Filename: start.Filename, Line: f.line, Column: 1}
			p.Reportf(pos, "heap allocation in //rbvet:noalloc %s: %s", n.name, f.msg)
		}
	}
}
