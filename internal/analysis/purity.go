// Purity proofs: effect inference over the call graph, verifying that
// "memoizing pure functions" is a checked claim rather than a comment.
//
// The effect lattice, smallest to largest:
//
//	pure ⊑ pure-modulo-arguments ⊑ impure
//
// A function is PURE-MODULO-ARGUMENTS when its only effect is mutating
// memory reachable from its own parameters and receiver (advancing a
// *stats.RNG, filling a caller-supplied scratch buffer). That is the
// level memoization needs: the result is a function of the arguments,
// and recomputing on a cache miss — or racing a double computation — is
// observationally identical. //rbvet:pure claims exactly this level.
//
// IMPURE effects, each fatal to the claim:
//
//	global-write   — assignment to package-level state
//	chan           — channel send/receive/close/select
//	go             — spawning goroutines
//	taint          — reaching a determinism taint source (see taint.go)
//	unresolved     — a call the graph cannot bound (interface with no
//	                 loaded implementation, func value nothing matches)
//	external       — calling a body-less function outside the effect
//	                 whitelists, whose effects are unknowable
//
// Effects propagate callee-to-caller to a fixed point; function
// literals fold into their enclosing function; //rbvet:impure(reason)
// functions are trusted barriers contributing nothing. Known
// limitation, documented in DESIGN.md: writes through pointers held in
// locals are classified as argument mutation, so laundering a global
// through a local pointer evades the proof — rbvet is a reviewer's
// assistant, not an adversarial sandbox.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Purity verifies //rbvet:pure claims and the memoization registry.
var Purity = &Analyzer{
	Name:   "purity",
	Doc:    "prove //rbvet:pure and LRU-memoized functions pure modulo arguments (effect inference over the call graph)",
	RunAll: runPurity,
}

// effects is a bitmask of inferred function effects.
type effects uint16

const (
	effGlobalWrite effects = 1 << iota
	effChan
	effGo
	effTaint
	effUnresolved
	effExternal
	// effParamMutate is compatible with //rbvet:pure: mutation of memory
	// reachable from the function's own arguments.
	effParamMutate

	effImpureMask = effGlobalWrite | effChan | effGo | effTaint | effUnresolved | effExternal
)

var effectNames = []struct {
	bit  effects
	name string
}{
	{effGlobalWrite, "writes package-level state"},
	{effChan, "uses channels/select"},
	{effGo, "spawns goroutines"},
	{effTaint, "reaches a determinism taint source"},
	{effUnresolved, "calls through an unresolvable function value or interface"},
	{effExternal, "calls an external function with unknown effects"},
}

// memoizedRoots are the functions the sim/planner LRU caches memoize
// (PR 4): their results are stored and replayed, so they MUST be pure
// modulo arguments, and must say so in source with //rbvet:pure. Keyed
// by types.Func.FullName.
var memoizedRoots = map[string]string{
	"(*repro/internal/sim.Simulator).buildSegment":   "segment LRU (sim.segs)",
	"(*repro/internal/sim.Simulator).segmentMoments": "segment-moment LRU (sim.segMoments)",
	"(*repro/internal/sim.segment).eval":             "segment-sample LRU (sim.segSamples)",
	"(*repro/internal/sim.Simulator).Estimate":       "planner memo cache (Planner.memo)",
	"(repro/internal/sim.Plan).Key":                  "plan LRU / memo keys",
	"(*repro/internal/dag.Program).SampleInto":       "compiled programs sampled under the segment caches",
	"(*repro/internal/dag.Program).MomentsInto":      "compiled programs moment-propagated under the segment-moment cache",
}

// pureExternalPkgs are standard-library packages whose functions are
// pure modulo arguments: computation, formatting-to-value, and
// collection shuffling with no ambient effects.
var pureExternalPkgs = map[string]bool{
	"cmp": true, "container/heap": true, "container/list": true,
	"encoding/binary": true, "errors": true, "hash": true,
	"hash/crc32": true, "hash/fnv": true, "hash/maphash": false,
	"math": true, "math/bits": true, "math/cmplx": true,
	"slices": true, "maps": true, "sort": true, "strconv": true,
	"strings": true, "bytes": true, "unicode": true, "unicode/utf8": true,
}

// argMutateExternalPkgs are packages whose functions mutate only
// argument-reachable state (locks, counters, wait groups) — compatible
// with pure-modulo-arguments.
var argMutateExternalPkgs = map[string]bool{
	"sync": true, "sync/atomic": true,
}

// pureExternalFuncs whitelists individual functions of mixed packages.
var pureExternalFuncs = map[string]bool{
	"fmt.Sprintf": true, "fmt.Errorf": true, "fmt.Sprint": true,
	"fmt.Sprintln": true, "fmt.Appendf": true,
	// Formatted printing is an I/O effect but not a purity concern the
	// droppederr/taint analyzers don't already own; panics terminate.
	"time.Duration.String": true,
}

// externalEffects classifies a body-less callee.
func externalEffects(fn *types.Func) effects {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0 // error.Error, unsafe builtins: treat as pure
	}
	if pureExternalPkgs[pkg.Path()] {
		return 0
	}
	if argMutateExternalPkgs[pkg.Path()] {
		return effParamMutate
	}
	name := pkg.Path() + "." + fn.Name()
	if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
		name = pkg.Path() + "." + recvTypeName(sig) + "." + fn.Name()
	}
	if pureExternalFuncs[name] {
		return 0
	}
	return effExternal
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// localEffect records where an effect originates inside one body.
type localEffect struct {
	bit    effects
	pos    token.Position
	detail string
}

// inferLocal computes one node's own effects (no propagation).
func inferLocal(n *cgNode) (effects, []localEffect) {
	body := n.body()
	if body == nil {
		return 0, nil
	}
	info := n.pkg.Info
	fset := n.pkg.Fset
	var eff effects
	var local []localEffect
	add := func(bit effects, pos token.Pos, detail string) {
		eff |= bit
		local = append(local, localEffect{bit: bit, pos: fset.Position(pos), detail: detail})
	}

	// The variables whose mutation is argument-reachable: parameters and
	// receiver of this function and (for literals) of every enclosing
	// function — a captured outer local is the ENCLOSER's frame, which
	// the fold into the encloser accounts for.
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // folded via the encloses edge
		case *ast.GoStmt:
			add(effGo, x.Pos(), "go statement")
		case *ast.SendStmt:
			add(effChan, x.Pos(), "channel send")
		case *ast.SelectStmt:
			add(effChan, x.Pos(), "select")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				add(effChan, x.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(x.X).Underlying().(*types.Chan); ok {
				add(effChan, x.Pos(), "range over channel")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					add(effChan, x.Pos(), "channel close")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				classifyWrite(info, n, lhs, add)
			}
		case *ast.IncDecStmt:
			classifyWrite(info, n, x.X, add)
		}
		return true
	})
	return eff, local
}

// classifyWrite classifies one assignment target.
func classifyWrite(info *types.Info, n *cgNode, lhs ast.Expr, add func(effects, token.Pos, string)) {
	root, indirect := writeRoot(lhs)
	if root == nil {
		if indirect {
			// Write through an anonymous pointer chain (*f() = x):
			// argument-reachable by assumption (see package doc).
			add(effParamMutate, lhs.Pos(), "write through pointer")
		}
		return
	}
	obj := info.ObjectOf(root)
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		add(effGlobalWrite, lhs.Pos(), "writes "+v.Pkg().Name()+"."+v.Name())
		return
	}
	if !indirect {
		return // rebinding a local (or even a parameter) is frame-local
	}
	if isParamOf(v, n) {
		add(effParamMutate, lhs.Pos(), "mutates argument "+v.Name())
		return
	}
	// A local or captured variable written through indirection: the
	// pointee may be argument-reachable; classify as argument mutation
	// (captured outer locals are charged to the encloser by the fold).
	add(effParamMutate, lhs.Pos(), "write through "+v.Name())
}

// writeRoot walks to the root identifier of an assignment target and
// reports whether the path went through a dereference, field, or index.
func writeRoot(e ast.Expr) (*ast.Ident, bool) {
	indirect := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, indirect
		case *ast.SelectorExpr:
			indirect = true
			e = x.X
		case *ast.IndexExpr:
			indirect = true
			e = x.X
		case *ast.StarExpr:
			indirect = true
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, indirect
		}
	}
}

// isParamOf reports whether v is a parameter, result, or receiver of n
// or of any function enclosing n.
func isParamOf(v *types.Var, n *cgNode) bool {
	for ; n != nil; n = n.enclosing {
		var sig *types.Signature
		switch {
		case n.fn != nil:
			sig = n.fn.Type().(*types.Signature)
		case n.lit != nil:
			sig, _ = n.pkg.Info.TypeOf(n.lit).(*types.Signature)
		}
		if sig == nil {
			continue
		}
		if recv := sig.Recv(); recv != nil && recv == v {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == v {
				return true
			}
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if sig.Results().At(i) == v {
				return true
			}
		}
	}
	return false
}

// computeEffects runs the effect fixed point over the call graph.
func computeEffects(g *CallGraph, taint map[*cgNode]taintState) (map[*cgNode]effects, map[*cgNode][]localEffect) {
	eff := make(map[*cgNode]effects, len(g.all))
	locals := make(map[*cgNode][]localEffect, len(g.all))
	barrier := func(n *cgNode) bool {
		a := g.ann(n)
		return a != nil && a.Impure
	}
	for _, n := range g.all {
		e, l := inferLocal(n)
		if taint[n].tainted {
			e |= effTaint
		}
		if len(n.unresolved) > 0 {
			e |= effUnresolved
			for _, pos := range n.unresolved {
				l = append(l, localEffect{bit: effUnresolved, pos: pos, detail: "unbounded dynamic call"})
			}
		}
		for _, edge := range n.edges {
			callee := edge.callee
			if callee.body() != nil || barrier(callee) {
				continue
			}
			if callee.fn != nil {
				if x := externalEffects(callee.fn); x != 0 {
					e |= x
					if x&effImpureMask != 0 {
						l = append(l, localEffect{bit: x & effImpureMask, pos: edge.pos, detail: "calls " + callee.name})
					}
				}
			}
		}
		eff[n] = e
		locals[n] = l
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.all {
			if barrier(n) {
				continue
			}
			e := eff[n]
			for _, edge := range n.edges {
				if barrier(edge.callee) {
					continue
				}
				e |= eff[edge.callee]
			}
			if e != eff[n] {
				eff[n] = e
				changed = true
			}
		}
	}
	return eff, locals
}

func runPurity(p *AllPass) {
	taint := computeTaint(p.Graph)
	eff, locals := computeEffects(p.Graph, taint)

	for _, n := range p.Graph.all {
		if n.fn == nil {
			continue
		}
		ann := p.Anns[n.fn]
		full := n.fn.FullName()
		cache, memoized := memoizedRoots[full]

		if memoized && (ann == nil || !ann.Pure) {
			p.Reportf(n.pos, "%s is memoized by the %s but not annotated //rbvet:pure — the cache's correctness depends on the proof", n.name, cache)
		}
		if ann == nil || !ann.Pure {
			continue
		}
		bad := eff[n] & effImpureMask
		if bad == 0 {
			continue
		}
		for _, en := range effectNames {
			if bad&en.bit == 0 {
				continue
			}
			p.Reportf(n.pos, "%s is annotated //rbvet:pure but %s%s", n.name, en.name, effectChain(p.Graph, n, en.bit, eff, locals))
		}
	}
}

// effectChain renders the shortest call chain from n to a function
// whose OWN body introduces the effect, plus that origin's detail.
func effectChain(g *CallGraph, n *cgNode, bit effects, eff map[*cgNode]effects, locals map[*cgNode][]localEffect) string {
	path := g.pathFrom(n, func(m *cgNode) bool {
		for _, l := range locals[m] {
			if l.bit&bit != 0 {
				return true
			}
		}
		return false
	})
	if len(path) == 0 {
		return ""
	}
	origin := path[len(path)-1]
	var details []string
	for _, l := range locals[origin] {
		if l.bit&bit != 0 {
			details = append(details, l.detail)
		}
	}
	sort.Strings(details)
	detail := ""
	if len(details) > 0 {
		detail = ": " + details[0]
	}
	if len(path) == 1 {
		return detail
	}
	return " (" + chainString(path) + detail + ")"
}
