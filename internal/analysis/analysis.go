// Package analysis is rbvet's static-analysis framework: it type-checks
// the module with the standard library's go/parser + go/types and runs
// project-specific analyzers that machine-check the determinism and
// purity invariants of the planning stack (see DESIGN.md, "Static
// analysis"). Intraprocedural analyzers inspect one package at a time;
// the interprocedural suite (dettaint, purity, noalloc) runs over a
// CHA-style call graph of every loaded package. Violations are reported
// as file:line diagnostics; deliberate exceptions are suppressed per
// line with
//
//	//rbvet:ignore <analyzer> — <reason>
//
// where the reason is mandatory (stale ignores are themselves
// diagnostics), or excused per function with //rbvet:impure(reason)
// (see funcann.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Intraprocedural analyzers set
// Run and see one package at a time; interprocedural analyzers set
// RunAll and see every loaded package at once, plus the call graph and
// the function annotations.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// AppliesTo restricts the analyzer to packages whose import path
	// satisfies the predicate; nil means every package. External test
	// packages are matched with their "_test" suffix stripped.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports violations on the pass.
	Run func(*Pass)
	// RunAll inspects the whole loaded package set at once. Analyzers
	// with RunAll decide per report site whether a package is in scope.
	RunAll func(*AllPass)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic as "file:line:col: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// AllPass carries an interprocedural analyzer's view of the whole
// loaded package set.
type AllPass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Graph    *CallGraph
	Anns     map[*types.Func]*FuncAnn
	// Escapes holds compiler escape-analysis facts for the noalloc
	// analyzer; nil when the escape pass was skipped (rbvet -fast).
	Escapes *EscapeFacts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at an already-resolved position.
func (p *AllPass) Reportf(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the rbvet analyzer suite. Fast is the subset that needs no
// compiler escape-analysis pass (rbvet -fast / make lint-fast).
var (
	All  = []*Analyzer{Maporder, Wallclock, Globalrand, Droppederr, Dettaint, Purity, Noalloc, Staleignore}
	Fast = []*Analyzer{Maporder, Wallclock, Globalrand, Droppederr, Dettaint, Purity, Staleignore}
)

// byName resolves analyzer names for directive validation.
func byName(analyzers []*Analyzer) map[string]bool {
	m := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = true
	}
	return m
}

// ModulePath is the import-path prefix of the module under analysis.
const ModulePath = "repro"

// DeterministicCore lists the packages whose outputs must be pure
// functions of their inputs: the Monte-Carlo simulator, the planners, the
// placement controller, the executor and replanning controller, the
// chaos harness and journal (whose replay digests ARE the recovery and
// determinism oracles), and everything they depend on for plan-affecting
// state. A wall-clock, environment, or ad-hoc-RNG read here silently
// breaks run-to-run reproducibility of estimates, plans, and digests.
var DeterministicCore = []string{
	ModulePath + "/internal/sim",
	ModulePath + "/internal/planner",
	ModulePath + "/internal/placement",
	ModulePath + "/internal/dag",
	ModulePath + "/internal/stats",
	ModulePath + "/internal/executor",
	ModulePath + "/internal/replan",
	ModulePath + "/internal/harness",
	ModulePath + "/internal/journal",
	ModulePath + "/internal/vclock",
	// The serve control plane sits ON the determinism boundary: its HTTP
	// surface lives in wall time, but everything below the grant gate
	// must stay taint-clean — the only sanctioned wall-clock read is the
	// annotated ops-timestamp helper in wall.go. Keeping the package in
	// the core makes any new wall-clock or environment read a lint
	// failure instead of a silent replay break.
	ModulePath + "/internal/serve",
}

// basePath strips the external-test suffix so AppliesTo predicates see
// the package under test's path.
func basePath(path string) string { return strings.TrimSuffix(path, "_test") }

// pathWithin reports whether path is pkg or a subpackage of pkg.
func pathWithin(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}

// inDeterministicCore reports whether the package is part of the
// deterministic core.
func inDeterministicCore(path string) bool {
	for _, core := range DeterministicCore {
		if pathWithin(basePath(path), core) {
			return true
		}
	}
	return false
}

// RunOption configures one Run invocation.
type RunOption func(*runConfig)

type runConfig struct {
	escapes *EscapeFacts
}

// WithEscapes supplies compiler escape-analysis facts to the noalloc
// analyzer (see LoadEscapes). Without them, noalloc reports annotated
// functions as unverifiable.
func WithEscapes(e *EscapeFacts) RunOption {
	return func(c *runConfig) { c.escapes = e }
}

// Run executes the analyzers over the packages, applies ignore
// directives, and returns the surviving diagnostics plus directive
// problems — including stale-ignore reports for directives that
// suppressed nothing — sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, opts ...RunOption) []Diagnostic {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	// Every analyzer name is directive-addressable, whether or not it is
	// in this run's set; staleness is only judged for analyzers that ran.
	known := byName(All)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ran := byName(analyzers)

	var diags []Diagnostic
	var suppressions []directive
	anns := make(map[*types.Func]*FuncAnn)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.AppliesTo != nil && !a.AppliesTo(basePath(pkg.Path)) {
				continue
			}
			pass := &Pass{
				Analyzer: a, Path: pkg.Path, Fset: pkg.Fset,
				Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info,
				diags: &diags,
			}
			a.Run(pass)
		}
		dirs, problems := parseDirectives(pkg, known)
		suppressions = append(suppressions, dirs...)
		diags = append(diags, problems...)
		pkgAnns, problems := parseFuncAnns(pkg)
		for fn, ann := range pkgAnns {
			anns[fn] = ann
		}
		diags = append(diags, problems...)
	}

	if hasGraphAnalyzer(analyzers) {
		graph := buildCallGraph(pkgs, anns)
		for _, a := range analyzers {
			if a.RunAll == nil {
				continue
			}
			a.RunAll(&AllPass{
				Analyzer: a, Pkgs: pkgs, Graph: graph, Anns: anns,
				Escapes: cfg.escapes, diags: &diags,
			})
		}
	}

	var stale []Diagnostic
	diags, stale = applySuppressionsChecked(diags, suppressions, ran)
	diags = append(diags, stale...)
	diags = dedupe(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// hasGraphAnalyzer reports whether any analyzer needs the call graph.
func hasGraphAnalyzer(analyzers []*Analyzer) bool {
	for _, a := range analyzers {
		if a.RunAll != nil {
			return true
		}
	}
	return false
}

// dedupe removes repeated diagnostics: nested map-range loops can flag
// one operation from both the inner and outer loop's perspective.
func dedupe(diags []Diagnostic) []Diagnostic {
	seen := make(map[Diagnostic]bool, len(diags))
	kept := diags[:0]
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			kept = append(kept, d)
		}
	}
	return kept
}
