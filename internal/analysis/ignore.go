// Ignore directives: per-line suppression of one analyzer's diagnostics.
//
//	//rbvet:ignore <analyzer> — <reason>
//
// A trailing directive (sharing its line with code) suppresses that
// line; a standalone directive (alone on its line) suppresses the next
// line. Each directive silences exactly one analyzer on exactly one
// line; a directive without a reason, or naming an unknown analyzer, is
// itself a diagnostic — the suppression record must explain itself.
package analysis

import (
	"go/token"
	"strings"
)

const ignorePrefix = "//rbvet:ignore"

// directive is one parsed, well-formed ignore comment.
type directive struct {
	file     string
	line     int // the source line the directive suppresses
	analyzer string
	reason   string
}

// parseDirectives extracts the ignore directives from a package's
// comments. Malformed directives (missing analyzer, unknown analyzer,
// missing reason) are returned as diagnostics under the "rbvet" name.
func parseDirectives(pkg *Package, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var problems []Diagnostic
	report := func(pos token.Position, msg string) {
		problems = append(problems, Diagnostic{Pos: pos, Analyzer: "rbvet", Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason := splitDirective(rest)
				switch {
				case name == "":
					report(pos, "ignore directive names no analyzer (want //rbvet:ignore <analyzer> — <reason>)")
					continue
				case !known[name]:
					report(pos, "ignore directive names unknown analyzer "+quoteName(name))
					continue
				case reason == "":
					report(pos, "ignore directive for "+quoteName(name)+" has no reason — every suppression must explain itself")
					continue
				}
				line := pos.Line
				if standalone(pkg.Sources[pos.Filename], pos) {
					line++
				}
				dirs = append(dirs, directive{file: pos.Filename, line: line, analyzer: name, reason: reason})
			}
		}
	}
	return dirs, problems
}

// splitDirective splits "analyzer — reason" into its parts. The
// separator may be an em dash, "--", or ":"; the reason is whatever
// non-empty text follows it.
func splitDirective(s string) (name, reason string) {
	name = s
	var rest string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		name, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	for _, sep := range []string{"—", "--", ":"} {
		if strings.HasPrefix(rest, sep) {
			return name, strings.TrimSpace(strings.TrimPrefix(rest, sep))
		}
	}
	// Text without a recognized separator is not a reason; treat it as
	// absent so the directive is flagged.
	return name, ""
}

// standalone reports whether the comment at pos has only whitespace
// before it on its line, making it a directive for the following line.
func standalone(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// applySuppressions drops diagnostics covered by a directive.
func applySuppressions(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	suppressed := make(map[key]bool, len(dirs))
	for _, d := range dirs {
		suppressed[key{d.file, d.line, d.analyzer}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}

// quoteName quotes a name for a diagnostic message.
func quoteName(s string) string { return "\"" + s + "\"" }
