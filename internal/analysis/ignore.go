// Ignore directives: per-line suppression of one analyzer's diagnostics.
//
//	//rbvet:ignore <analyzer> — <reason>
//
// A trailing directive (sharing its line with code) suppresses that
// line; a standalone directive (alone on its line) suppresses the next
// line. Each directive silences exactly one analyzer on exactly one
// line; a directive without a reason, or naming an unknown analyzer, is
// itself a diagnostic — the suppression record must explain itself.
package analysis

import (
	"go/token"
	"strings"
)

const ignorePrefix = "//rbvet:ignore"

// directive is one parsed, well-formed ignore comment.
type directive struct {
	file     string
	line     int // the source line the directive suppresses
	analyzer string
	reason   string
	pos      token.Position // the directive's own position, for staleness reports
}

// parseDirectives extracts the ignore directives from a package's
// comments. Malformed directives (missing analyzer, unknown analyzer,
// missing reason) are returned as diagnostics under the "rbvet" name.
func parseDirectives(pkg *Package, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var problems []Diagnostic
	report := func(pos token.Position, msg string) {
		problems = append(problems, Diagnostic{Pos: pos, Analyzer: "rbvet", Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason := splitDirective(rest)
				switch {
				case name == "":
					report(pos, "ignore directive names no analyzer (want //rbvet:ignore <analyzer> — <reason>)")
					continue
				case !known[name]:
					report(pos, "ignore directive names unknown analyzer "+quoteName(name))
					continue
				case reason == "":
					report(pos, "ignore directive for "+quoteName(name)+" has no reason — every suppression must explain itself")
					continue
				}
				line := pos.Line
				if standalone(pkg.Sources[pos.Filename], pos) {
					line++
				}
				dirs = append(dirs, directive{file: pos.Filename, line: line, analyzer: name, reason: reason, pos: pos})
			}
		}
	}
	return dirs, problems
}

// splitDirective splits "analyzer — reason" into its parts. The
// separator may be an em dash, "--", or ":"; the reason is whatever
// non-empty text follows it.
func splitDirective(s string) (name, reason string) {
	name = s
	var rest string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		name, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	for _, sep := range []string{"—", "--", ":"} {
		if strings.HasPrefix(rest, sep) {
			return name, strings.TrimSpace(strings.TrimPrefix(rest, sep))
		}
	}
	// Text without a recognized separator is not a reason; treat it as
	// absent so the directive is flagged.
	return name, ""
}

// standalone reports whether the comment at pos has only whitespace
// before it on its line, making it a directive for the following line.
func standalone(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// Staleignore reports ignore directives that suppress nothing. An
// ignore that outlives the diagnostic it excused is a false promise: it
// documents an exception that no longer exists and would silently
// excuse a future, unrelated violation on its line. It has no Run —
// staleness falls out of suppression accounting in Run — but
// registering it makes the check addressable and listable. A directive
// is judged only when its named analyzer was part of the run (rbvet
// -fast must not call noalloc ignores stale).
var Staleignore = &Analyzer{
	Name: "staleignore",
	Doc:  "report //rbvet:ignore directives that no longer suppress any diagnostic",
}

// applySuppressionsChecked drops diagnostics covered by a directive and
// reports directives that covered nothing. Stale-ignore reports are not
// themselves suppressible: a self-excusing suppression record would be
// no record at all.
func applySuppressionsChecked(diags []Diagnostic, dirs []directive, ran map[string]bool) (kept, stale []Diagnostic) {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	used := make(map[key]int, len(dirs))
	for _, d := range dirs {
		used[key{d.file, d.line, d.analyzer}] = 0
	}
	kept = diags[:0]
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line, d.Analyzer}
		if n, ok := used[k]; ok {
			used[k] = n + 1
			continue
		}
		kept = append(kept, d)
	}
	if !ran[Staleignore.Name] {
		return kept, nil
	}
	for _, d := range dirs {
		if !ran[d.analyzer] {
			continue
		}
		if used[key{d.file, d.line, d.analyzer}] == 0 {
			stale = append(stale, Diagnostic{
				Pos:      token.Position{Filename: d.file, Line: d.pos.Line, Column: d.pos.Column},
				Analyzer: Staleignore.Name,
				Message:  "//rbvet:ignore " + d.analyzer + " suppresses no diagnostic — delete it",
			})
		}
	}
	return kept, stale
}

// quoteName quotes a name for a diagnostic message.
func quoteName(s string) string { return "\"" + s + "\"" }
