package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags `range` loops over maps whose bodies are sensitive to
// iteration order — the bug class that let placement's pickVictim return
// different victims on identical inputs. Go randomizes map iteration
// order per run, so any of the following inside a map-range body makes
// plan output depend on the run:
//
//   - appending to a slice declared outside the loop, unless the slice
//     is sorted afterwards in the same function (the collect-then-sort
//     idiom);
//   - a selection (min/max/argmin): a plain assignment of loop-derived
//     values to variables declared outside the loop, guarded by a
//     relational comparison — first-seen wins ties in map order;
//   - accumulating floating-point values with += or -= into an outer
//     variable (float addition is not associative, so the result's
//     rounding depends on summation order);
//   - writing output through the fmt print family.
//
// Loops whose selection has a provably total order (explicit
// tie-breaks, like bestFit's smallest-NodeID rule) stay flagged — the
// analyzer cannot verify totality — and carry an
// //rbvet:ignore maporder directive stating the tie-break.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive bodies of range-over-map loops (append, min/max selection, float accumulation, printing)",
	Run:  runMaporder,
}

func runMaporder(p *Pass) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if rs, ok := n.(*ast.RangeStmt); ok && isMapRange(p.Info, rs) {
				checkMapRange(p, rs, append([]ast.Node(nil), stack...))
			}
			stack = append(stack, n)
			return true
		})
	}
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body for order-sensitive
// operations. stack holds the ancestors of rs, outermost first.
func checkMapRange(p *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	scanOrderSensitive(p, rs, rs.Body, false, stack)
}

// scanOrderSensitive walks n's subtree tracking whether execution is
// guarded by a relational comparison. Function literals run under their
// own control flow and nested map ranges get their own checkMapRange
// call, so both subtrees are skipped.
func scanOrderSensitive(p *Pass, rs *ast.RangeStmt, n ast.Node, underRel bool, stack []ast.Node) {
	if n == nil {
		return
	}
	switch t := n.(type) {
	case *ast.FuncLit:
		return
	case *ast.IfStmt:
		scanOrderSensitive(p, rs, t.Init, underRel, stack)
		under := underRel || hasRelational(t.Cond)
		scanOrderSensitive(p, rs, t.Body, under, stack)
		scanOrderSensitive(p, rs, t.Else, under, stack)
		return
	case *ast.AssignStmt:
		checkAssign(p, rs, t, underRel, stack)
	case *ast.ExprStmt:
		if call, ok := astCall(t.X); ok && isFmtPrint(p.Info, call) {
			p.Reportf(call.Pos(), "output written in map iteration order; collect and sort the keys first")
		}
	}
	scanChildren(p, rs, n, underRel, stack)
}

// scanChildren recurses into n's immediate children.
func scanChildren(p *Pass, rs *ast.RangeStmt, n ast.Node, underRel bool, stack []ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			scanOrderSensitive(p, rs, c, underRel, stack)
		}
		return false
	})
}

// checkAssign classifies one assignment inside the map-range body.
func checkAssign(p *Pass, rs *ast.RangeStmt, n *ast.AssignStmt, underRel bool, stack []ast.Node) {
	switch n.Tok {
	case token.ASSIGN:
		if v := appendTarget(p.Info, n); v != nil && !within(v.Pos(), rs) {
			if !sortedAfter(p.Info, rs, v, stack) {
				p.Reportf(n.Pos(), "append to %s in map iteration order without a later sort; sort the keys first or sort %s before use", v.Name(), v.Name())
			}
			return
		}
		if !underRel || !referencesLoopLocal(p.Info, rs, n.Rhs) {
			return
		}
		for _, lhs := range n.Lhs {
			if outerScalar(p.Info, rs, lhs) {
				p.Reportf(n.Pos(), "min/max selection over map iteration order: ties resolve to the first-seen key, which differs between runs; iterate sorted keys or break ties by a total order (and record it in an ignore directive)")
				return
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if !outerScalar(p.Info, rs, n.Lhs[0]) {
			return
		}
		if t := p.Info.TypeOf(n.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				p.Reportf(n.Pos(), "floating-point accumulation in map iteration order; addition order changes the rounding — iterate sorted keys")
			}
		}
	}
}

// appendTarget returns the variable v for assignments of the form
// `v = append(v, ...)`, else nil.
func appendTarget(info *types.Info, n *ast.AssignStmt) *types.Var {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return nil
	}
	call, ok := astCall(n.Rhs[0])
	if !ok {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	return v
}

// sortedAfter reports whether some statement after rs in an enclosing
// block passes v to a call whose name mentions sort (sort.Slice,
// slices.Sort, sortTrials, ...) — the collect-then-sort idiom.
func sortedAfter(info *types.Info, rs *ast.RangeStmt, v *types.Var, stack []ast.Node) bool {
	for _, anc := range stack {
		var stmts []ast.Stmt
		switch b := anc.(type) {
		case *ast.BlockStmt:
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		case *ast.CommClause:
			stmts = b.Body
		default:
			continue
		}
		for _, s := range stmts {
			if s.Pos() < rs.End() {
				continue
			}
			if callsSortOn(info, s, v) {
				return true
			}
		}
	}
	return false
}

// callsSortOn reports whether the statement contains a call to a
// sort-named function with v among its arguments.
func callsSortOn(info *types.Info, s ast.Stmt, v *types.Var) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			// Include the qualifier so sort.Slice and slices.Sort match.
			name = fun.Sel.Name
			if x, ok := fun.X.(*ast.Ident); ok {
				name = x.Name + "." + name
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return !found
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.ObjectOf(id) == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// referencesLoopLocal reports whether any of the expressions mentions a
// variable declared inside the range statement (the range variables or
// loop locals) — the signature of a value selected from the iteration.
func referencesLoopLocal(info *types.Info, rs *ast.RangeStmt, exprs []ast.Expr) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && obj.Pos().IsValid() && within(obj.Pos(), rs) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// outerScalar reports whether lhs is a plain identifier naming a
// variable declared outside the range statement. Indexed writes
// (m[k] = v) are keyed by the range variable and stay order-independent,
// so only bare identifiers count.
func outerScalar(info *types.Info, rs *ast.RangeStmt, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := info.ObjectOf(id)
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return !within(obj.Pos(), rs)
}

// within reports whether pos falls inside node n.
func within(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos < n.End()
}

// isFmtPrint reports whether the call is to fmt's print family.
func isFmtPrint(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint"))
}

// hasRelational reports whether the expression contains <, >, <= or >=.
func hasRelational(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}
