package spec

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestEmptyAddStage(t *testing.T) {
	s := Empty().AddStage(64, 4).AddStage(32, 8)
	if s.NumStages() != 2 {
		t.Fatalf("NumStages = %d", s.NumStages())
	}
	if st := s.Stage(0); st.Trials != 64 || st.Iters != 4 {
		t.Fatalf("stage 0 = %+v", st)
	}
	if s.TotalTrials() != 64 {
		t.Errorf("TotalTrials = %d", s.TotalTrials())
	}
	if s.TotalWork() != 64*4+32*8 {
		t.Errorf("TotalWork = %d", s.TotalWork())
	}
	if s.MaxIters() != 12 {
		t.Errorf("MaxIters = %d", s.MaxIters())
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Stage{Trials: 2, Iters: 3}); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := [][]Stage{
		{},                       // no stages
		{{Trials: 0, Iters: 1}},  // zero trials
		{{Trials: 1, Iters: 0}},  // zero iters
		{{Trials: -1, Iters: 1}}, // negative
		{{2, 1}, {4, 1}},         // growing trials
	}
	for i, stages := range bad {
		if _, err := New(stages...); err == nil {
			t.Errorf("case %d: invalid spec accepted: %v", i, stages)
		}
	}
}

func TestString(t *testing.T) {
	s := Empty().AddStage(64, 4).AddStage(32, 8)
	if got := s.String(); got != "[64x4 | 32x8]" {
		t.Errorf("String = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := Empty().AddStage(10, 5).AddStage(5, 10)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back ExperimentSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != s.String() {
		t.Fatalf("round trip %q != %q", back.String(), s.String())
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var s ExperimentSpec
	if err := json.Unmarshal([]byte(`[{"trials":0,"iters":1}]`), &s); err == nil {
		t.Fatal("invalid JSON spec accepted")
	}
}

func TestStagesReturnsCopy(t *testing.T) {
	s := Empty().AddStage(4, 2)
	st := s.Stages()
	st[0].Trials = 999
	if s.Stage(0).Trials != 4 {
		t.Fatal("Stages() exposed internal slice")
	}
}

func TestSHAPaperExample(t *testing.T) {
	// Figure 3: reduction factor 2, trials halve each stage.
	s := MustSHA(8, 1, 4, 2)
	stages := s.Stages()
	wantTrials := []int{8, 4, 2}
	if len(stages) != len(wantTrials) {
		t.Fatalf("stages = %v", stages)
	}
	for i, st := range stages {
		if st.Trials != wantTrials[i] {
			t.Errorf("stage %d trials = %d, want %d", i, st.Trials, wantTrials[i])
		}
	}
	// Cumulative work of the survivor equals R.
	if s.MaxIters() != 4 {
		t.Errorf("MaxIters = %d, want 4", s.MaxIters())
	}
}

func TestSHAEvaluationWorkload(t *testing.T) {
	// SHA(n=64, r=4, R=508) from §6.1 with eta=2.
	s := MustSHA(64, 4, 508, 2)
	if s.TotalTrials() != 64 {
		t.Fatalf("TotalTrials = %d", s.TotalTrials())
	}
	stages := s.Stages()
	// 64 -> 32 -> 16 -> 8 -> 4 -> 2 -> 1 plus the clamp stage to R=508.
	if stages[0].Trials != 64 || stages[0].Iters != 4 {
		t.Errorf("stage 0 = %+v", stages[0])
	}
	// The survivor's cumulative work is exactly R.
	if got := s.MaxIters(); got != 508 {
		t.Errorf("MaxIters = %d, want 508", got)
	}
	// Trial counts are non-increasing and halve (ceil) each step.
	for i := 1; i < len(stages); i++ {
		if stages[i].Trials > stages[i-1].Trials {
			t.Errorf("stage %d grew: %v", i, stages)
		}
	}
}

func TestSHAEta3(t *testing.T) {
	// Table 2 spec: SHA(n=32, r=1, R=50, eta=3); Table 3 reports the
	// schedule 32 -> 10 -> 3 -> 1 over epoch boundaries 1, 4, 13, 50.
	s := MustSHA(32, 1, 50, 3)
	stages := s.Stages()
	wantTrials := []int{32, 10, 3, 1}
	wantIters := []int{1, 3, 9, 37}
	for i, w := range wantIters {
		if i < len(stages) && stages[i].Iters != w {
			t.Errorf("stage %d iters = %d, want %d", i, stages[i].Iters, w)
		}
	}
	if len(stages) != len(wantTrials) {
		t.Fatalf("got %d stages: %v", len(stages), stages)
	}
	for i, w := range wantTrials {
		if stages[i].Trials != w {
			t.Errorf("stage %d trials = %d, want %d (stages %v)", i, stages[i].Trials, w, stages)
		}
	}
	if s.MaxIters() != 50 {
		t.Errorf("MaxIters = %d, want 50 (clamped at R)", s.MaxIters())
	}
}

func TestSHASingleStage(t *testing.T) {
	// R == r: a single stage, no halving.
	s := MustSHA(16, 8, 8, 2)
	if s.NumStages() != 1 {
		t.Fatalf("stages = %v", s.Stages())
	}
	if st := s.Stage(0); st.Trials != 16 || st.Iters != 8 {
		t.Fatalf("stage = %+v", st)
	}
}

func TestSHASingleTrial(t *testing.T) {
	// A single trial is trained for the full budget R.
	s := MustSHA(1, 4, 64, 2)
	if s.NumStages() != 1 {
		t.Fatalf("n=1 should yield one stage, got %v", s.Stages())
	}
	if s.Stage(0).Iters != 64 {
		t.Fatalf("n=1 stage iters = %d, want 64", s.Stage(0).Iters)
	}
}

func TestSHAValidation(t *testing.T) {
	bad := []SHAParams{
		{N: 0, R: 1, MaxR: 2, Eta: 2},
		{N: 4, R: 0, MaxR: 2, Eta: 2},
		{N: 4, R: 4, MaxR: 2, Eta: 2},
		{N: 4, R: 1, MaxR: 2, Eta: 1},
	}
	for i, p := range bad {
		if _, err := SHA(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestHyperbandBrackets(t *testing.T) {
	brackets, err := Hyperband(81, 3)
	if err != nil {
		t.Fatal(err)
	}
	// s_max = log_3(81) = 4, so 5 brackets.
	if len(brackets) != 5 {
		t.Fatalf("got %d brackets", len(brackets))
	}
	// First (most aggressive) bracket: n = ceil(5/5 * 81) = 81, r = 1.
	b0 := brackets[0]
	if b0.TotalTrials() != 81 {
		t.Errorf("bracket 0 trials = %d, want 81", b0.TotalTrials())
	}
	if b0.Stage(0).Iters != 1 {
		t.Errorf("bracket 0 r = %d, want 1", b0.Stage(0).Iters)
	}
	// Last bracket: n = ceil(5/1 * 1) = 5 trials with full budget.
	last := brackets[len(brackets)-1]
	if last.NumStages() != 1 {
		t.Errorf("last bracket has %d stages, want 1", last.NumStages())
	}
	if last.Stage(0).Iters != 81 {
		t.Errorf("last bracket iters = %d, want 81", last.Stage(0).Iters)
	}
	// All brackets' survivors reach the full budget R.
	for i, b := range brackets {
		if b.MaxIters() != 81 {
			t.Errorf("bracket %d MaxIters = %d, want 81", i, b.MaxIters())
		}
	}
}

func TestHyperbandValidation(t *testing.T) {
	if _, err := Hyperband(0, 3); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := Hyperband(81, 1); err == nil {
		t.Error("eta=1 accepted")
	}
}

// Property: every generated SHA spec is structurally valid, trial counts
// shrink by exactly ceil(n/eta) per stage, and the survivor's cumulative
// work never exceeds R.
func TestQuickSHAInvariants(t *testing.T) {
	f := func(nRaw, rRaw, mulRaw, etaRaw uint8) bool {
		n := int(nRaw%200) + 1
		r := int(rRaw%20) + 1
		maxR := r * (int(mulRaw%100) + 1)
		eta := int(etaRaw%4) + 2
		s, err := SHA(SHAParams{N: n, R: r, MaxR: maxR, Eta: eta})
		if err != nil {
			return false
		}
		if s.Validate() != nil {
			return false
		}
		if s.TotalTrials() != n {
			return false
		}
		// The survivor always trains to exactly the full budget R.
		if s.MaxIters() != maxR {
			return false
		}
		stages := s.Stages()
		etaK := 1
		for i := range stages {
			wantTrials := n / etaK
			if wantTrials < 1 {
				wantTrials = 1
			}
			if stages[i].Trials != wantTrials {
				return false
			}
			etaK *= eta
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Hyperband brackets are all valid and non-empty.
func TestQuickHyperbandInvariants(t *testing.T) {
	f := func(rRaw, etaRaw uint8) bool {
		maxR := int(rRaw%200) + 1
		eta := int(etaRaw%4) + 2
		brackets, err := Hyperband(maxR, eta)
		if err != nil || len(brackets) == 0 {
			return false
		}
		for _, b := range brackets {
			if b.Validate() != nil || b.MaxIters() > maxR {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSuffix(t *testing.T) {
	s, err := New(Stage{Trials: 8, Iters: 2}, Stage{Trials: 4, Iters: 3}, Stage{Trials: 1, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	tail := s.Suffix(1)
	if tail.NumStages() != 2 || tail.Stage(0) != (Stage{Trials: 4, Iters: 3}) || tail.Stage(1) != (Stage{Trials: 1, Iters: 5}) {
		t.Fatalf("Suffix(1) = %v", tail)
	}
	if full := s.Suffix(0); full.NumStages() != 3 {
		t.Fatalf("Suffix(0) = %v", full)
	}
	if err := s.Suffix(1).Validate(); err != nil {
		t.Fatalf("suffix spec invalid: %v", err)
	}
	if s.NumStages() != 3 {
		t.Fatal("Suffix mutated the receiver")
	}
	for _, from := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Suffix(%d) did not panic", from)
				}
			}()
			s.Suffix(from)
		}()
	}
}
