// Package spec defines the declarative experiment specification that sits
// between early-stopping algorithms and RubberBand (Figure 6 of the paper).
//
// A specification lists the job's sequential stages; each stage says how
// many trials run and how many training iterations each trial executes in
// that stage. Because algorithms such as Successive Halving are declarative
// — their structure is known before runtime — the whole specification is
// available to the planner offline. A Hyperband run is a collection of
// per-bracket specifications (a multi-job).
package spec

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Stage describes one synchronous stage of an early-stopping job.
type Stage struct {
	// Trials is the number of concurrent candidate configurations alive
	// in this stage. Must be positive and non-increasing across stages.
	Trials int `json:"trials"`
	// Iters is the number of training iterations each surviving trial
	// executes during this stage (incremental work, not cumulative).
	Iters int `json:"iters"`
}

// ExperimentSpec is an ordered list of stages. The zero value is an empty
// specification to which stages can be added.
type ExperimentSpec struct {
	stages []Stage
}

// Empty returns an empty specification, mirroring rb.EmptyExperimentSpec()
// from the paper's API sketch.
func Empty() *ExperimentSpec { return &ExperimentSpec{} }

// New builds a specification from stages and validates it.
func New(stages ...Stage) (*ExperimentSpec, error) {
	s := &ExperimentSpec{stages: append([]Stage(nil), stages...)}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// AddStage appends a stage with the given trial count and per-trial
// iteration assignment, returning the spec for chaining.
func (s *ExperimentSpec) AddStage(trials, iters int) *ExperimentSpec {
	s.stages = append(s.stages, Stage{Trials: trials, Iters: iters})
	return s
}

// NumStages returns the number of stages.
func (s *ExperimentSpec) NumStages() int { return len(s.stages) }

// Stage returns the i-th stage. It panics if i is out of range.
func (s *ExperimentSpec) Stage(i int) Stage { return s.stages[i] }

// Stages returns a copy of the stage list.
func (s *ExperimentSpec) Stages() []Stage {
	return append([]Stage(nil), s.stages...)
}

// TotalTrials returns the number of trials started in the first stage (the
// experiment's population size). Zero for an empty spec.
func (s *ExperimentSpec) TotalTrials() int {
	if len(s.stages) == 0 {
		return 0
	}
	return s.stages[0].Trials
}

// TotalWork returns the total number of trial-iterations across all stages
// (Σ trials_i × iters_i) — the resource-agnostic amount of training work
// the job performs.
func (s *ExperimentSpec) TotalWork() int {
	total := 0
	for _, st := range s.stages {
		total += st.Trials * st.Iters
	}
	return total
}

// MaxIters returns the cumulative iterations executed by a trial that
// survives every stage.
func (s *ExperimentSpec) MaxIters() int {
	total := 0
	for _, st := range s.stages {
		total += st.Iters
	}
	return total
}

// Suffix returns the specification consisting of stages from..NumStages-1
// — the remaining work an online replanner re-plans after the first `from`
// stages have executed. The suffix of a valid spec is itself valid (trial
// counts stay non-increasing). It panics if from is out of [0, NumStages).
func (s *ExperimentSpec) Suffix(from int) *ExperimentSpec {
	if from < 0 || from >= len(s.stages) {
		panic(fmt.Sprintf("spec: suffix from stage %d of %d", from, len(s.stages)))
	}
	return &ExperimentSpec{stages: append([]Stage(nil), s.stages[from:]...)}
}

// Validate checks structural invariants: at least one stage, positive
// trials and iterations, and a non-increasing trial count (early stopping
// only ever terminates trials).
func (s *ExperimentSpec) Validate() error {
	if len(s.stages) == 0 {
		return fmt.Errorf("spec: no stages")
	}
	prev := 0
	for i, st := range s.stages {
		if st.Trials <= 0 {
			return fmt.Errorf("spec: stage %d has %d trials", i, st.Trials)
		}
		if st.Iters <= 0 {
			return fmt.Errorf("spec: stage %d has %d iters", i, st.Iters)
		}
		if i > 0 && st.Trials > prev {
			return fmt.Errorf("spec: stage %d grows trials %d -> %d", i, prev, st.Trials)
		}
		prev = st.Trials
	}
	return nil
}

// String renders the spec compactly, e.g. "[64x4 | 32x8 | 16x16]".
func (s *ExperimentSpec) String() string {
	parts := make([]string, len(s.stages))
	for i, st := range s.stages {
		parts[i] = fmt.Sprintf("%dx%d", st.Trials, st.Iters)
	}
	return "[" + strings.Join(parts, " | ") + "]"
}

// MarshalJSON encodes the spec as its stage list.
func (s *ExperimentSpec) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.stages)
}

// UnmarshalJSON decodes a stage list and validates it.
func (s *ExperimentSpec) UnmarshalJSON(data []byte) error {
	var stages []Stage
	if err := json.Unmarshal(data, &stages); err != nil {
		return err
	}
	s.stages = stages
	return s.Validate()
}
