package spec

import "fmt"

// SHAParams are the Successive Halving parameters used throughout the
// paper's evaluation: SHA(n, r, R, η).
type SHAParams struct {
	// N is the number of initial trials.
	N int
	// R is the minimum per-trial work (iterations) assigned in the first
	// stage.
	R int
	// MaxR is the maximum cumulative work assigned to at least one trial.
	MaxR int
	// Eta is the termination rate: the top 1/Eta of trials survive each
	// stage while per-trial work grows by Eta. The paper fixes Eta = 2
	// unless stated otherwise.
	Eta int
}

// Validate checks the parameters.
func (p SHAParams) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("spec: SHA n = %d", p.N)
	}
	if p.R <= 0 {
		return fmt.Errorf("spec: SHA r = %d", p.R)
	}
	if p.MaxR < p.R {
		return fmt.Errorf("spec: SHA R = %d < r = %d", p.MaxR, p.R)
	}
	if p.Eta < 2 {
		return fmt.Errorf("spec: SHA eta = %d (need >= 2)", p.Eta)
	}
	return nil
}

// SHA generates a Successive Halving experiment specification.
//
// Stage k (0-based) runs max(1, ⌊n/η^k⌋) trials, and assigns each
// surviving trial r·η^k incremental iterations; the final stage — reached
// when one trial remains or the work budget runs out — is sized so the
// survivor's cumulative work is exactly R. This matches the schedule the
// paper reports in Table 3 for SHA(n=32, r=1, R=50, η=3): trial counts
// 32 → 10 → 3 → 1 over epoch boundaries 1, 4, 13, 50.
func SHA(p SHAParams) (*ExperimentSpec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := Empty()
	cum := 0
	etaK := 1 // η^k
	for cum < p.MaxR {
		trials := p.N / etaK
		if trials < 1 {
			trials = 1
		}
		var inc int
		if trials == 1 {
			inc = p.MaxR - cum // train the survivor to the full budget
		} else {
			inc = p.R * etaK
			if cum+inc > p.MaxR {
				inc = p.MaxR - cum
			}
		}
		if inc <= 0 {
			break
		}
		s.AddStage(trials, inc)
		cum += inc
		if trials == 1 {
			break
		}
		etaK *= p.Eta
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("spec: SHA generated invalid spec: %w", err)
	}
	return s, nil
}

// MustSHA is SHA for static parameters; it panics on error.
func MustSHA(n, r, maxR, eta int) *ExperimentSpec {
	s, err := SHA(SHAParams{N: n, R: r, MaxR: maxR, Eta: eta})
	if err != nil {
		panic(err)
	}
	return s
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Hyperband generates the bracket specifications of Hyperband(R, η): a
// multi-job of s_max+1 Successive Halving brackets that trade off the
// number of configurations against the per-configuration budget. Bracket s
// starts n = ceil((s_max+1)/(s+1) · η^s) trials at an initial budget of
// R/η^s iterations. The brackets are returned most-aggressive first
// (largest s), matching the usual presentation.
func Hyperband(maxR, eta int) ([]*ExperimentSpec, error) {
	if maxR <= 0 {
		return nil, fmt.Errorf("spec: Hyperband R = %d", maxR)
	}
	if eta < 2 {
		return nil, fmt.Errorf("spec: Hyperband eta = %d (need >= 2)", eta)
	}
	sMax := 0
	for pow := 1; pow*eta <= maxR; pow *= eta {
		sMax++
	}
	var brackets []*ExperimentSpec
	for s := sMax; s >= 0; s-- {
		etaS := 1
		for i := 0; i < s; i++ {
			etaS *= eta
		}
		n := ceilDiv((sMax+1)*etaS, s+1)
		r := maxR / etaS
		if r < 1 {
			r = 1
		}
		b, err := SHA(SHAParams{N: n, R: r, MaxR: maxR, Eta: eta})
		if err != nil {
			return nil, fmt.Errorf("spec: Hyperband bracket s=%d: %w", s, err)
		}
		brackets = append(brackets, b)
	}
	return brackets, nil
}
