package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Per-tenant journal layout. A multi-tenant control plane keeps one
// journal directory per admitted experiment, two levels under a root:
//
//	root/<tenant>/<run>/journal-NNNNNN.seg …
//
// Tenant and run names are restricted to a filesystem-safe alphabet so a
// submitted tenant string can never traverse outside the root or collide
// with another tenant's directory.

// maxNameLen bounds tenant and run directory names.
const maxNameLen = 64

// ValidName reports whether s is a legal tenant or run directory name:
// 1–64 characters of lowercase letters, digits and dashes, not starting
// or ending with a dash.
func ValidName(s string) bool {
	if len(s) == 0 || len(s) > maxNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
		case c == '-' && i > 0 && i < len(s)-1:
		default:
			return false
		}
	}
	return true
}

// RunDir creates (if needed) and returns the journal directory for one
// tenant's run under root. Both names are validated, never joined raw.
func RunDir(root, tenant, run string) (string, error) {
	if !ValidName(tenant) {
		return "", fmt.Errorf("journal: invalid tenant name %q", tenant)
	}
	if !ValidName(run) {
		return "", fmt.Errorf("journal: invalid run name %q", run)
	}
	dir := filepath.Join(root, tenant, run)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("journal: run dir: %w", err)
	}
	return dir, nil
}

// RunRef locates one per-tenant run directory found under a journal root.
type RunRef struct {
	Tenant string
	Run    string
	Dir    string
}

// ListRuns scans a journal root for per-tenant run directories, in
// sorted (tenant, run) order so restart recovery visits runs
// deterministically. Entries that do not parse as valid names are
// skipped: the root may hold unrelated operator files.
func ListRuns(root string) ([]RunRef, error) {
	tenants, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: list runs: %w", err)
	}
	var out []RunRef
	for _, td := range tenants {
		if !td.IsDir() || !ValidName(td.Name()) {
			continue
		}
		runs, err := os.ReadDir(filepath.Join(root, td.Name()))
		if err != nil {
			return nil, fmt.Errorf("journal: list runs for %s: %w", td.Name(), err)
		}
		for _, rd := range runs {
			if !rd.IsDir() || !ValidName(rd.Name()) {
				continue
			}
			out = append(out, RunRef{
				Tenant: td.Name(),
				Run:    rd.Name(),
				Dir:    filepath.Join(root, td.Name(), rd.Name()),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Run < out[j].Run
	})
	return out, nil
}
