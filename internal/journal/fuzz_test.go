package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalRoundTrip holds the codec to its two safety contracts under
// arbitrary input:
//
//   - Canonicality: any payload DecodeRecord accepts must re-encode to
//     the identical bytes. A payload with two representations would let
//     recovery's byte-verification pass on a journal the current encoder
//     could never have written.
//   - No panics: arbitrary bytes — framed or not — are decoded and
//     frame-scanned without crashing; damage is reported, never thrown.
//
// The checked-in corpus (testdata/fuzz/FuzzJournalRoundTrip) seeds one
// encoding of every record type plus framed streams with each damage
// class; `make fuzz-short` mutates from there.
func FuzzJournalRoundTrip(f *testing.F) {
	for _, r := range sampleRecords() {
		f.Add(r.Encode())
		f.Add(frame(r.Encode()))
	}
	for _, c := range corruptions() {
		f.Add(c.build(goldenStream()))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// As a record payload: accepted ⇒ byte-identical re-encoding.
		if rec, err := DecodeRecord(data); err == nil {
			re := rec.Encode()
			if !bytes.Equal(re, data) {
				t.Fatalf("non-canonical accept: %x decodes to %T which re-encodes to %x", data, rec, re)
			}
		}
		// As a framed stream: the scan stops cleanly; every trusted record
		// must itself round-trip when it decodes at all.
		raw, err := NewMemBackendFrom(data).Load()
		if err != nil {
			t.Fatalf("Load on arbitrary bytes errored (must report damage instead): %v", err)
		}
		for i, p := range raw.Records {
			if rec, err := DecodeRecord(p); err == nil {
				if !bytes.Equal(rec.Encode(), p) {
					t.Fatalf("framed record %d: non-canonical accept", i)
				}
			}
		}
	})
}
