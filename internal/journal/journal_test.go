package journal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/trace"
)

// sampleRecords covers every record type with edge-shaped payloads:
// empty and populated slices, both reason/kind encodings, negative
// numbers, and non-finite floats (encoded by IEEE-754 bits).
func sampleRecords() []Record {
	return []Record{
		&Header{BatchSeed: 4, Index: 2, Interval: 7, Deadline: 1234.5, Planned: true, Alloc: []int64{4, 2, 1}},
		&Header{BatchSeed: 0, Index: -1, Interval: 0, Deadline: 0, Planned: false, Alloc: nil},
		&TraceEvent{At: 10.25, Kind: trace.KindTrialIter, Stage: 1, Trial: 3, GPUs: 2, Nodes: 1},
		&TraceEvent{At: 0, Kind: trace.Kind("future-kind"), Stage: -1, Trial: -1, GPUs: 0, Nodes: 0},
		&Decision{Seq: 1, At: 99.5, Reason: "drift", Stage: 1, Ratio: 1.7, RemainingDeadline: 55,
			OldAlloc: []int64{8, 4}, NewAlloc: []int64{8, 8}, StaleJCT: 100, StaleCost: 12,
			NewJCT: 90, NewCost: 14, Adopted: true},
		&Decision{Seq: 2, At: 120, Reason: "preemption", Infeasible: true,
			StaleJCT: math.Inf(1), NewJCT: math.NaN()},
		&Decision{Seq: 3, At: 1, Reason: "operator-override", OldAlloc: []int64{1}, NewAlloc: []int64{2}},
		&End{JCT: 812.75, Cost: 19.5, BestTrial: 6},
		&End{JCT: 0, Cost: 0, BestTrial: -1},
		&Grant{Stage: 1, Want: 8, Granted: 3, At: 42.5},
		&Grant{Stage: 0, Want: 1, Granted: 1, At: 0},
		&Snapshot{Seq: 14, VNow: 310.5, ClockSeq: 800, Stage: 1, Alloc: []int64{4, 2},
			Trials: []TrialSnap{
				{ID: 0, State: 3, CumIters: 12, HasAcc: true, Acc: 0.91},
				{ID: 1, State: 1, CumIters: 4},
			},
			TotalCost: 4.5, DataCost: 0.25, Instances: 3, BusyGPUSeconds: 1200,
			ExecRNG: [4]uint64{1, 2, 3, 4}, ProviderRNG: [4]uint64{5, 6, 7, 8}},
		&Snapshot{Seq: 7, Stage: -1, HasReplan: true, TotalObs: 30,
			Allocs:       []AllocEWMA{{GPUs: 1, EWMA: 1.2, Count: 10}, {GPUs: 2, EWMA: 0.8, Count: 20}},
			OverheadEWMA: 3.5, OverheadCount: 4, Armed: true, LastReplan: 150, Decisions: 2},
	}
}

// TestRecordRoundTrip holds the codec to its canonicality contract:
// Decode(Encode(r)) yields an equal record that re-encodes to the
// identical bytes.
func TestRecordRoundTrip(t *testing.T) {
	for i, r := range sampleRecords() {
		payload := r.Encode()
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d (%T): decode: %v", i, r, err)
		}
		// NaN-bearing records compare by re-encoding only (NaN != NaN).
		re := got.Encode()
		if !bytes.Equal(re, payload) {
			t.Fatalf("record %d (%T): re-encode differs: %x vs %x", i, r, re, payload)
		}
		if !hasNaN(payload) && !reflect.DeepEqual(got, r) {
			t.Fatalf("record %d (%T): decoded %+v != original %+v", i, r, got, r)
		}
	}
}

// hasNaN reports whether the payload round-trips a NaN (DeepEqual would
// report a spurious mismatch).
func hasNaN(payload []byte) bool {
	rec, err := DecodeRecord(payload)
	if err != nil {
		return false
	}
	switch r := rec.(type) {
	case *Decision:
		for _, f := range []float64{r.Ratio, r.StaleJCT, r.StaleCost, r.NewJCT, r.NewCost} {
			if math.IsNaN(f) {
				return true
			}
		}
	}
	return false
}

// TestDecodeRejects drives DecodeRecord with malformed and non-canonical
// payloads: every one must fail loudly (no panic, no silent partial
// decode).
func TestDecodeRejects(t *testing.T) {
	// A canonical header to mutate: tag(1) version(2) seed(8) index(8)
	// interval(8) deadline(8) planned(1) alloc-len(4) = 40 bytes.
	hdr := (&Header{BatchSeed: 1, Index: 2, Interval: 7, Deadline: 10}).Encode()
	if len(hdr) != 40 {
		t.Fatalf("header encoding is %d bytes, offsets below assume 40", len(hdr))
	}
	mutate := func(b []byte, i int, v byte) []byte {
		out := append([]byte(nil), b...)
		out[i] = v
		return out
	}
	cases := []struct {
		name    string
		payload []byte
		wantSub string
	}{
		{"empty", nil, "truncated"},
		{"unknown tag", []byte{99}, "unknown record tag"},
		{"trailing bytes", append((&End{}).Encode(), 0), "trailing"},
		{"truncated header", hdr[:20], "truncated"},
		{"wrong version", mutate(hdr, 1, 9), "version"},
		{"non-boolean planned", mutate(hdr, 35, 2), "bool"},
		{"oversized alloc length", mutate(mutate(hdr, 38, 0xff), 39, 0xff), ""},
		{"non-canonical kind string", func() []byte {
			b := newEnc(tagTrace)
			b.u8(0)
			b.str(string(trace.KindTrialIter))
			b.f64(0)
			b.i64(0)
			b.i64(0)
			b.i64(0)
			b.i64(0)
			return b.bytes()
		}(), "non-canonical kind"},
		{"unknown kind code", func() []byte {
			b := newEnc(tagTrace)
			b.u8(200)
			b.f64(0)
			b.i64(0)
			b.i64(0)
			b.i64(0)
			b.i64(0)
			return b.bytes()
		}(), "unknown kind code"},
		{"non-canonical reason string", func() []byte {
			d := &Decision{Reason: "x"}
			p := d.Encode()
			// The reason byte is at offset 17 (tag+seq+at); 0 keeps the
			// string form, so swap the string in.
			b := newEnc(tagDecision)
			b.i64(0)
			b.f64(0)
			b.u8(reasonOther)
			b.str("drift")
			b.i64(0)
			b.f64(0)
			b.f64(0)
			b.i64s(nil)
			b.i64s(nil)
			b.f64(0)
			b.f64(0)
			b.f64(0)
			b.f64(0)
			b.u8(0)
			_ = p
			return b.bytes()
		}(), "non-canonical reason"},
		{"undefined decision flags", func() []byte {
			p := (&Decision{Reason: "drift"}).Encode()
			return mutate(p, len(p)-1, 0x80)
		}(), "undefined decision flags"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := DecodeRecord(tc.payload)
			if err == nil {
				t.Fatalf("decoded %+v, want error", rec)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// feed streams n trace records through w, snapshotting via whatever
// snapshot function is registered.
func feed(t *testing.T, w *Writer, recs []Record) {
	t.Helper()
	for i, r := range recs {
		if err := w.Record(r); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
}

// testRun builds a deterministic record sequence: one header, n trace
// events, one end.
func testRun(n int) []Record {
	recs := []Record{&Header{BatchSeed: 9, Index: 3, Interval: 3, Deadline: 500, Planned: true, Alloc: []int64{2, 1}}}
	for i := 0; i < n; i++ {
		recs = append(recs, &TraceEvent{At: float64(i), Kind: trace.KindTrialIter,
			Stage: 0, Trial: int64(i % 3), GPUs: 1, Nodes: 1})
	}
	return append(recs, &End{JCT: float64(n), Cost: 1.5, BestTrial: 0})
}

// snapFnCounting returns a snapshot function that fabricates a
// deterministic snapshot per sequence and counts invocations.
func snapFnCounting(count *int) func() *Snapshot {
	return func() *Snapshot {
		*count++
		return &Snapshot{Stage: -1, VNow: float64(*count)}
	}
}

func TestWriterSnapshotInterval(t *testing.T) {
	b := NewMemBackend()
	w := NewWriter(b, 3)
	var snaps int
	w.SetSnapshotFunc(snapFnCounting(&snaps))
	feed(t, w, testRun(8)) // 10 records: snapshots at 3, 6, 9
	if snaps != 3 {
		t.Fatalf("snapshot function invoked %d times, want 3", snaps)
	}
	raw, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []uint64{3, 6, 9} {
		if _, ok := raw.Snapshots[seq]; !ok {
			t.Errorf("no snapshot at seq %d (have %v)", seq, keys(raw.Snapshots))
		}
	}
	if len(raw.Snapshots) != 3 {
		t.Fatalf("%d snapshots stored, want 3", len(raw.Snapshots))
	}
	// The stored snapshot carries its sequence.
	rec, err := DecodeRecord(raw.Snapshots[6])
	if err != nil {
		t.Fatal(err)
	}
	if s := rec.(*Snapshot); s.Seq != 6 {
		t.Fatalf("snapshot at key 6 encodes Seq %d", s.Seq)
	}
}

func keys(m map[uint64][]byte) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestWriterCrashClean(t *testing.T) {
	b := NewMemBackend()
	w := NewWriter(b, 0)
	w.SetCrashPoint(4, 0)
	recs := testRun(8)
	var got error
	for _, r := range recs {
		if got = w.Record(r); got != nil {
			break
		}
	}
	if got != ErrCrash {
		t.Fatalf("crash surfaced as %v, want ErrCrash", got)
	}
	if w.Err() != ErrCrash {
		t.Fatalf("Err() = %v after crash", w.Err())
	}
	// Latched: further records keep failing, nothing more is written.
	if err := w.Record(recs[0]); err != ErrCrash {
		t.Fatalf("post-crash Record = %v", err)
	}
	raw, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Records) != 4 || raw.Damage != "" {
		t.Fatalf("crashed journal has %d records, damage %q; want 4 clean records", len(raw.Records), raw.Damage)
	}
}

func TestWriterCrashTorn(t *testing.T) {
	b := NewMemBackend()
	w := NewWriter(b, 0)
	w.SetCrashPoint(2, 1_000_000) // clamped below the full frame
	recs := testRun(8)
	for _, r := range recs {
		if w.Record(r) != nil {
			break
		}
	}
	raw, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Records) != 2 {
		t.Fatalf("%d trusted records, want 2", len(raw.Records))
	}
	if raw.Damage == "" {
		t.Fatal("torn crash left no damage — the torn frame must be visible")
	}
	// The torn frame is strictly shorter than the record's full frame, so
	// the fatal record itself never decodes.
	full := frameOverhead + len(recs[2].Encode())
	torn := len(b.Data()) - (frameOverhead*2 + len(recs[0].Encode()) + len(recs[1].Encode()))
	if torn <= 0 || torn >= full {
		t.Fatalf("torn bytes %d, want in (0, %d)", torn, full)
	}
}

func TestResumeVerifyThenAppend(t *testing.T) {
	recs := testRun(10)

	// Uninterrupted reference.
	ref := NewMemBackend()
	wr := NewWriter(ref, 3)
	var n1 int
	wr.SetSnapshotFunc(snapFnCounting(&n1))
	feed(t, wr, recs)

	// Crash at record 7 with a torn tail.
	crashed := NewMemBackend()
	wc := NewWriter(crashed, 3)
	var n2 int
	wc.SetSnapshotFunc(snapFnCounting(&n2))
	wc.SetCrashPoint(7, 3)
	for _, r := range recs {
		if wc.Record(r) != nil {
			break
		}
	}

	// Resume: damage reported and truncated, header returned, interval
	// adopted from the header record (not passed by the caller).
	w2, hdr, damage, err := Resume(crashed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hdr == nil || hdr.BatchSeed != 9 || hdr.Index != 3 {
		t.Fatalf("resumed header = %+v", hdr)
	}
	if w2.Interval() != 3 {
		t.Fatalf("resumed interval %d, want 3 from header", w2.Interval())
	}
	if damage == "" {
		t.Fatal("torn crash resumed without damage report")
	}
	if !w2.Verifying() {
		t.Fatal("resumed writer not in verify mode")
	}
	// The re-executed run streams the same records; snapshot counters must
	// rebuild the same fabricated snapshots for verification to pass.
	var n3 int
	w2.SetSnapshotFunc(snapFnCounting(&n3))
	feed(t, w2, recs)
	if w2.Verifying() {
		t.Fatal("writer still verifying after full replay")
	}
	if w2.Seq() != wr.Seq() {
		t.Fatalf("recovered journal has %d records, reference %d", w2.Seq(), wr.Seq())
	}
	diff, err := Diff(ref, crashed)
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Fatalf("recovered journal differs from reference: %s", diff)
	}
}

func TestResumeDivergenceDetected(t *testing.T) {
	recs := testRun(10)
	b := NewMemBackend()
	w := NewWriter(b, 0)
	w.SetCrashPoint(8, 0)
	for _, r := range recs {
		if w.Record(r) != nil {
			break
		}
	}
	w2, _, _, err := Resume(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Replay a mutated record inside the prefix: byte-verification must
	// refuse it.
	mutated := append([]Record{}, recs...)
	mutated[5] = &TraceEvent{At: 5, Kind: trace.KindTrialIter, Stage: 0, Trial: 2, GPUs: 9, Nodes: 9}
	var got error
	for _, r := range mutated {
		if got = w2.Record(r); got != nil {
			break
		}
	}
	if !strings.Contains(got.Error(), "diverged") {
		t.Fatalf("divergent replay error = %v, want ErrDiverged", got)
	}
}

func TestResumeSnapshotDivergenceDetected(t *testing.T) {
	recs := testRun(10)
	b := NewMemBackend()
	w := NewWriter(b, 3)
	var n1 int
	w.SetSnapshotFunc(snapFnCounting(&n1))
	w.SetCrashPoint(8, 0)
	for _, r := range recs {
		if w.Record(r) != nil {
			break
		}
	}
	w2, _, _, err := Resume(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt state disagrees with the stored snapshots (counter
	// starts at an offset), so recovery must stop at the first snapshot
	// point rather than silently resuming a different run.
	n2 := 100
	w2.SetSnapshotFunc(snapFnCounting(&n2))
	var got error
	for _, r := range recs {
		if got = w2.Record(r); got != nil {
			break
		}
	}
	if got == nil || !strings.Contains(got.Error(), "snapshot") || !strings.Contains(got.Error(), "diverged") {
		t.Fatalf("snapshot divergence error = %v", got)
	}
}

func TestResumeRejectsForeignFirstRecord(t *testing.T) {
	b := NewMemBackend()
	w := NewWriter(b, 0)
	if err := w.Record(&End{JCT: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Resume(b, 0); err == nil || !strings.Contains(err.Error(), "not a run header") {
		t.Fatalf("Resume on headerless journal = %v", err)
	}
}

func TestResumeEmptyJournal(t *testing.T) {
	w, hdr, damage, err := Resume(NewMemBackend(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if hdr != nil || damage != "" {
		t.Fatalf("empty journal resumed with hdr=%v damage=%q", hdr, damage)
	}
	if w.Verifying() {
		t.Fatal("empty journal writer claims a prefix to verify")
	}
	// Degenerates to a fresh appending run.
	feed(t, w, testRun(2))
}

// TestMemFileEquivalence drives the identical record/snapshot sequence
// through both backends — the file one with segments tiny enough to roll
// several times — and requires byte-identical Load results.
func TestMemFileEquivalence(t *testing.T) {
	mem := NewMemBackend()
	fb, err := NewFileBackend(t.TempDir(), WithSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	recs := testRun(40)
	for _, b := range []Backend{mem, fb} {
		w := NewWriter(b, 5)
		var n int
		w.SetSnapshotFunc(snapFnCounting(&n))
		feed(t, w, recs)
	}
	diff, err := Diff(mem, fb)
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Fatalf("backends diverge on identical input: %s", diff)
	}
}

func TestFileSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir, WithSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	recs := testRun(30)
	w := NewWriter(fb, 0)
	feed(t, w, recs)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("%d segments after 32 records at 128-byte roll threshold, want several", len(segs))
	}
	// No record spans segments: every segment parses cleanly on its own.
	total := 0
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		ps, _, damage := readFrames(data)
		if damage != "" {
			t.Fatalf("segment %s damaged: %s", filepath.Base(seg), damage)
		}
		total += len(ps)
	}
	if total != len(recs) {
		t.Fatalf("segments hold %d records, wrote %d", total, len(recs))
	}

	// Reopening the directory resumes the last segment and appending
	// continues without corrupting earlier records.
	fb2, err := NewFileBackend(dir, WithSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	if err := fb2.Append((&End{JCT: 99}).Encode()); err != nil {
		t.Fatal(err)
	}
	raw, err := fb2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Records) != len(recs)+1 || raw.Damage != "" {
		t.Fatalf("after reopen+append: %d records, damage %q", len(raw.Records), raw.Damage)
	}
}

// TestTruncate exercises Truncate on both backends: records past n and
// snapshots past seq n are discarded, and appends continue cleanly from
// the cut.
func TestTruncate(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(t *testing.T) Backend
	}{
		{"mem", func(t *testing.T) Backend { return NewMemBackend() }},
		{"file", func(t *testing.T) Backend {
			fb, err := NewFileBackend(t.TempDir(), WithSegmentBytes(128))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = fb.Close() })
			return fb
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mk(t)
			recs := testRun(20)
			w := NewWriter(b, 4)
			var n int
			w.SetSnapshotFunc(snapFnCounting(&n))
			feed(t, w, recs)

			if err := b.Truncate(9); err != nil {
				t.Fatal(err)
			}
			raw, err := b.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(raw.Records) != 9 || raw.Damage != "" {
				t.Fatalf("after truncate: %d records, damage %q", len(raw.Records), raw.Damage)
			}
			for seq := range raw.Snapshots {
				if seq > 9 {
					t.Errorf("snapshot %d survived truncation to 9 records", seq)
				}
			}
			if err := b.Append((&End{JCT: 1}).Encode()); err != nil {
				t.Fatal(err)
			}
			raw, err = b.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(raw.Records) != 10 || raw.Damage != "" {
				t.Fatalf("append after truncate: %d records, damage %q", len(raw.Records), raw.Damage)
			}

			// Truncating past the journal's length is refused.
			if err := b.Truncate(1000); err == nil {
				t.Fatal("truncate past end succeeded")
			}
		})
	}
}

// TestFileTornTailTruncatedOnResume runs the full crash shape on disk: a
// torn frame at the tail of the last segment, truncated by Resume so the
// next append continues from the last trusted record.
func TestFileTornTailTruncatedOnResume(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir, WithSegmentBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	recs := testRun(6)
	w := NewWriter(fb, 0)
	w.SetCrashPoint(5, 9)
	for _, r := range recs {
		if w.Record(r) != nil {
			break
		}
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	w2, hdr, damage, err := Resume(fb2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hdr == nil || damage == "" {
		t.Fatalf("resume: hdr=%v damage=%q, want header and damage", hdr, damage)
	}
	feed(t, w2, recs)
	raw, err := fb2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Records) != len(recs) || raw.Damage != "" {
		t.Fatalf("recovered file journal: %d records damage %q, want %d clean", len(raw.Records), raw.Damage, len(recs))
	}
}
