package journal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// enc builds a canonical little-endian record payload.
type enc struct {
	b []byte
}

func newEnc(tag byte) *enc { return &enc{b: []byte{tag}} }

func (e *enc) bytes() []byte { return e.b }

func (e *enc) u8(v byte) { e.b = append(e.b, v) }

func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }

func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

func (e *enc) i64(v int64) { e.u64(uint64(v)) }

func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) i64s(vs []int64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.i64(v)
	}
}

// dec consumes a canonical payload, latching the first error. The must*
// accessors take an *error so straight-line field lists stay readable;
// after the first failure every subsequent read is a no-op.
type dec struct {
	b   []byte
	off int
}

func newDec(b []byte) *dec { return &dec{b: b} }

func (d *dec) take(n int) ([]byte, error) {
	if n < 0 || len(d.b)-d.off < n {
		return nil, fmt.Errorf("journal: truncated payload (need %d bytes at offset %d of %d)", n, d.off, len(d.b))
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, nil
}

func (d *dec) u8() (byte, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *dec) u16() (uint16, error) {
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *dec) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *dec) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *dec) mustU64(err *error) uint64 {
	if *err != nil {
		return 0
	}
	v, e := d.u64()
	*err = e
	return v
}

func (d *dec) mustI64(err *error) int64 { return int64(d.mustU64(err)) }

func (d *dec) mustF64(err *error) float64 { return math.Float64frombits(d.mustU64(err)) }

func (d *dec) mustBool(err *error) bool {
	if *err != nil {
		return false
	}
	v, e := d.u8()
	if e != nil {
		*err = e
		return false
	}
	if v > 1 {
		*err = fmt.Errorf("journal: non-canonical bool byte %d", v)
		return false
	}
	return v == 1
}

func (d *dec) mustStr(err *error) string {
	if *err != nil {
		return ""
	}
	n, e := d.u32()
	if e != nil {
		*err = e
		return ""
	}
	if n > maxLen {
		*err = fmt.Errorf("journal: string length %d exceeds limit %d", n, maxLen)
		return ""
	}
	b, e := d.take(int(n))
	if e != nil {
		*err = e
		return ""
	}
	return string(b)
}

// mustLen reads a u32 element count, guarded by maxLen.
func (d *dec) mustLen(err *error) int {
	if *err != nil {
		return 0
	}
	n, e := d.u32()
	if e != nil {
		*err = e
		return 0
	}
	if n > maxLen {
		*err = fmt.Errorf("journal: element count %d exceeds limit %d", n, maxLen)
		return 0
	}
	return int(n)
}

func (d *dec) mustI64s(err *error) []int64 {
	if *err != nil {
		return nil
	}
	n, e := d.u32()
	if e != nil {
		*err = e
		return nil
	}
	if n > maxLen {
		*err = fmt.Errorf("journal: slice length %d exceeds limit %d", n, maxLen)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.mustI64(err)
		if *err != nil {
			return nil
		}
	}
	return out
}

func (d *dec) mustU64s(err *error, n int) []uint64 {
	if *err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.mustU64(err)
		if *err != nil {
			return nil
		}
	}
	return out
}

// done requires the payload to be fully consumed; trailing bytes make an
// encoding non-canonical.
func (d *dec) done() error {
	if d.off != len(d.b) {
		return fmt.Errorf("journal: %d trailing bytes after record", len(d.b)-d.off)
	}
	return nil
}
