package journal

import (
	"bytes"
	"fmt"
	"sort"
)

// Raw is a backend's validated contents: record payloads in append
// order, snapshot payloads by sequence number, and a description of any
// damage that ended the scan early.
type Raw struct {
	// Records holds the payload of every trusted record, in order.
	Records [][]byte
	// Snapshots maps record-sequence numbers to snapshot payloads. A
	// snapshot at seq was captured immediately after record seq was
	// appended.
	Snapshots map[uint64][]byte
	// Damage is empty for a clean journal; otherwise it describes the
	// first untrusted byte (torn tail, CRC mismatch, partial segment).
	// Records and Snapshots hold only what precedes the damage.
	Damage string
}

// Backend is a durable store for framed records and snapshots. Backends
// are not safe for concurrent use; the control plane is single-threaded
// by design.
type Backend interface {
	// Append durably appends one record payload (the backend frames it).
	Append(payload []byte) error
	// PutSnapshot stores the snapshot taken right after record seq,
	// replacing any previous snapshot at that sequence.
	PutSnapshot(seq uint64, payload []byte) error
	// Load scans the store and returns every trusted record and
	// snapshot, stopping cleanly at the first damaged byte.
	Load() (*Raw, error)
	// Truncate discards everything after the first n records — torn
	// bytes included — so subsequent Appends continue from record n.
	Truncate(n int) error
	// Close releases backend resources. The backend is unusable after.
	Close() error
}

// MemBackend is the in-memory Backend used by tests and the chaos
// harness's reference runs. It stores the framed byte stream exactly as
// FileBackend would, so both backends exercise the same decode path, and
// tests can corrupt the raw bytes directly.
type MemBackend struct {
	data  []byte
	snaps map[uint64][]byte
}

// NewMemBackend returns an empty in-memory journal.
func NewMemBackend() *MemBackend {
	return &MemBackend{snaps: make(map[uint64][]byte)}
}

// NewMemBackendFrom returns an in-memory journal over the given framed
// byte stream (corruption tests build damaged journals this way).
func NewMemBackendFrom(data []byte) *MemBackend {
	return &MemBackend{data: append([]byte(nil), data...), snaps: make(map[uint64][]byte)}
}

// Append implements Backend.
func (m *MemBackend) Append(payload []byte) error {
	m.data = append(m.data, frame(payload)...)
	return nil
}

// AppendRaw implements RawAppender: it persists b without framing, the
// torn-write fault-injection hook.
func (m *MemBackend) AppendRaw(b []byte) error {
	m.data = append(m.data, b...)
	return nil
}

// PutSnapshot implements Backend.
func (m *MemBackend) PutSnapshot(seq uint64, payload []byte) error {
	m.snaps[seq] = frame(payload)
	return nil
}

// Load implements Backend.
func (m *MemBackend) Load() (*Raw, error) {
	records, _, damage := readFrames(m.data)
	raw := &Raw{Records: records, Snapshots: make(map[uint64][]byte), Damage: damage}
	seqs := make([]uint64, 0, len(m.snaps))
	for seq := range m.snaps {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		ps, _, dmg := readFrames(m.snaps[seq])
		if dmg != "" || len(ps) != 1 {
			if raw.Damage == "" {
				raw.Damage = fmt.Sprintf("snapshot %d unreadable: %s", seq, dmg)
			}
			continue
		}
		raw.Snapshots[seq] = ps[0]
	}
	return raw, nil
}

// Truncate implements Backend.
func (m *MemBackend) Truncate(n int) error {
	_, consumed, _ := readFrames(m.data)
	records, _, _ := readFrames(m.data[:consumed])
	if n > len(records) {
		return fmt.Errorf("journal: truncate to %d records, only %d valid", n, len(records))
	}
	off := 0
	for i := 0; i < n; i++ {
		off += frameOverhead + len(records[i])
	}
	m.data = m.data[:off]
	for seq := range m.snaps {
		if seq > uint64(n) {
			delete(m.snaps, seq)
		}
	}
	return nil
}

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }

// Data exposes the framed byte stream for corruption tests.
func (m *MemBackend) Data() []byte { return append([]byte(nil), m.data...) }

// Diff compares the trusted contents of two backends and returns an
// empty string when they hold byte-identical records and snapshots —
// the recovery-equivalence oracle's journal check. A damaged backend
// diffs by its damage.
func Diff(a, b Backend) (string, error) {
	ra, err := a.Load()
	if err != nil {
		return "", err
	}
	rb, err := b.Load()
	if err != nil {
		return "", err
	}
	if ra.Damage != "" || rb.Damage != "" {
		return fmt.Sprintf("damage: %q vs %q", ra.Damage, rb.Damage), nil
	}
	if len(ra.Records) != len(rb.Records) {
		return fmt.Sprintf("%d records vs %d", len(ra.Records), len(rb.Records)), nil
	}
	for i := range ra.Records {
		if !bytes.Equal(ra.Records[i], rb.Records[i]) {
			return fmt.Sprintf("record %d differs (%d vs %d bytes)", i, len(ra.Records[i]), len(rb.Records[i])), nil
		}
	}
	if len(ra.Snapshots) != len(rb.Snapshots) {
		return fmt.Sprintf("%d snapshots vs %d", len(ra.Snapshots), len(rb.Snapshots)), nil
	}
	seqs := make([]uint64, 0, len(ra.Snapshots))
	for seq := range ra.Snapshots {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		pb, ok := rb.Snapshots[seq]
		if !ok {
			return fmt.Sprintf("snapshot %d missing from second journal", seq), nil
		}
		if !bytes.Equal(ra.Snapshots[seq], pb) {
			return fmt.Sprintf("snapshot %d differs", seq), nil
		}
	}
	return "", nil
}
