package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record framing: every payload is stored as
//
//	[4B little-endian length][4B CRC-32C of payload][payload]
//
// The frame is the durability unit. A reader walks frames in order and
// stops at the first one it cannot trust: a torn tail (fewer bytes than
// the header or length promise), an implausible length, or a CRC
// mismatch. Nothing after a damaged frame is ever returned — a bit flip
// mid-log costs the suffix, never a silent skip.

// frameOverhead is the fixed per-record framing cost in bytes.
const frameOverhead = 8

// crcTable is the Castagnoli polynomial table (CRC-32C, the checksum
// used by most storage formats for its error-detection properties).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frame wraps a payload in its length+CRC header.
func frame(payload []byte) []byte {
	out := make([]byte, 0, frameOverhead+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// readFrames parses consecutive frames out of data. It returns the valid
// payloads, the number of bytes they consumed (the safe truncation
// point), and a damage description — empty when data ends exactly at a
// frame boundary.
func readFrames(data []byte) (payloads [][]byte, consumed int, damage string) {
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < frameOverhead {
			return payloads, off, fmt.Sprintf("torn frame header: %d trailing bytes at offset %d", rest, off)
		}
		n := binary.LittleEndian.Uint32(data[off:])
		want := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxLen {
			return payloads, off, fmt.Sprintf("implausible record length %d at offset %d", n, off)
		}
		if rest < frameOverhead+int(n) {
			return payloads, off, fmt.Sprintf("torn record: length %d but only %d bytes remain at offset %d", n, rest-frameOverhead, off)
		}
		payload := data[off+frameOverhead : off+frameOverhead+int(n)]
		if got := crc32.Checksum(payload, crcTable); got != want {
			return payloads, off, fmt.Sprintf("CRC mismatch at offset %d: stored %08x, computed %08x", off, want, got)
		}
		payloads = append(payloads, payload)
		off += frameOverhead + int(n)
	}
	return payloads, off, ""
}
