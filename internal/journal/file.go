package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DefaultSegmentBytes is the roll threshold for segment files. At the
// fixed-width trace-record size (~50 framed bytes) one segment holds
// roughly 5,000 records; see DESIGN.md for the capacity math.
const DefaultSegmentBytes = 256 << 10

// FileBackend stores the journal in a directory: records in rolling
// segment files journal-NNNNNN.seg (a record never spans segments) and
// snapshots in snap-<seq>.snap files. Opening an existing directory
// resumes it; Load re-validates every frame from disk, so recovery
// trusts nothing but the bytes.
type FileBackend struct {
	dir      string
	segBytes int

	cur     *os.File
	curSize int
	segIdx  int
}

// FileOption configures a FileBackend.
type FileOption func(*FileBackend)

// WithSegmentBytes overrides the segment roll threshold (tests use tiny
// segments to exercise rolling).
func WithSegmentBytes(n int) FileOption {
	return func(f *FileBackend) {
		if n > 0 {
			f.segBytes = n
		}
	}
}

// NewFileBackend opens (or creates) the journal directory.
func NewFileBackend(dir string, opts ...FileOption) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	f := &FileBackend{dir: dir, segBytes: DefaultSegmentBytes}
	for _, o := range opts {
		o(f)
	}
	segs, err := f.segments()
	if err != nil {
		return nil, err
	}
	f.segIdx = len(segs)
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		info, err := os.Stat(last)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		f.curSize = int(info.Size())
		f.segIdx = len(segs) - 1
		f.cur, err = os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	return f, nil
}

// segName returns the path of segment i.
func (f *FileBackend) segName(i int) string {
	return filepath.Join(f.dir, fmt.Sprintf("journal-%06d.seg", i))
}

// segments lists the segment files in index order.
func (f *FileBackend) segments() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".seg") {
			out = append(out, filepath.Join(f.dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// roll closes the current segment and opens the next one.
func (f *FileBackend) roll() error {
	if f.cur != nil {
		if err := f.cur.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		f.segIdx++
	}
	file, err := os.OpenFile(f.segName(f.segIdx), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	f.cur = file
	f.curSize = 0
	return nil
}

// Append implements Backend.
func (f *FileBackend) Append(payload []byte) error {
	fr := frame(payload)
	if f.cur == nil || (f.curSize > 0 && f.curSize+len(fr) > f.segBytes) {
		if err := f.roll(); err != nil {
			return err
		}
	}
	if _, err := f.cur.Write(fr); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	f.curSize += len(fr)
	return nil
}

// AppendRaw implements RawAppender: it writes b to the current segment
// without framing, the torn-write fault-injection hook. Readers stop at
// the torn frame, so the bytes are inert damage, exactly like a real
// mid-write crash.
func (f *FileBackend) AppendRaw(b []byte) error {
	if f.cur == nil {
		if err := f.roll(); err != nil {
			return err
		}
	}
	if _, err := f.cur.Write(b); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	f.curSize += len(b)
	return nil
}

// PutSnapshot implements Backend. The snapshot is written to a temp file
// and renamed into place, so a crash mid-write never leaves a torn
// snapshot under the final name.
func (f *FileBackend) PutSnapshot(seq uint64, payload []byte) error {
	final := filepath.Join(f.dir, fmt.Sprintf("snap-%020d.snap", seq))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, frame(payload), 0o644); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// recLoc locates a record's end within the segment sequence.
type recLoc struct {
	seg int // index into the segments() slice
	end int // byte offset just past the record's frame
}

// scan walks every segment in order, validating frames. It returns the
// trusted payloads, each record's location (for Truncate), and damage.
// Damage in segment i discards all later segments: records are appended
// strictly in order, so nothing after the first untrusted byte can be
// trusted either.
func (f *FileBackend) scan() ([][]byte, []recLoc, string, error) {
	segs, err := f.segments()
	if err != nil {
		return nil, nil, "", err
	}
	var payloads [][]byte
	var locs []recLoc
	for i, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			return nil, nil, "", fmt.Errorf("journal: %w", err)
		}
		ps, _, damage := readFrames(data)
		off := 0
		for _, p := range ps {
			off += frameOverhead + len(p)
			payloads = append(payloads, p)
			locs = append(locs, recLoc{seg: i, end: off})
		}
		if damage != "" {
			if i < len(segs)-1 {
				damage += fmt.Sprintf(" (segment %s; %d later segment(s) discarded)", filepath.Base(seg), len(segs)-1-i)
			} else {
				damage += fmt.Sprintf(" (segment %s)", filepath.Base(seg))
			}
			return payloads, locs, damage, nil
		}
	}
	return payloads, locs, "", nil
}

// Load implements Backend.
func (f *FileBackend) Load() (*Raw, error) {
	payloads, _, damage, err := f.scan()
	if err != nil {
		return nil, err
	}
	raw := &Raw{Records: payloads, Snapshots: make(map[uint64][]byte), Damage: damage}

	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".snap") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue // foreign file; not ours to interpret
		}
		data, err := os.ReadFile(filepath.Join(f.dir, name))
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		ps, _, dmg := readFrames(data)
		if dmg != "" || len(ps) != 1 {
			if raw.Damage == "" {
				raw.Damage = fmt.Sprintf("snapshot %d unreadable: %s", seq, dmg)
			}
			continue
		}
		raw.Snapshots[seq] = ps[0]
	}
	return raw, nil
}

// Truncate implements Backend.
func (f *FileBackend) Truncate(n int) error {
	payloads, locs, _, err := f.scan()
	if err != nil {
		return err
	}
	if n > len(payloads) {
		return fmt.Errorf("journal: truncate to %d records, only %d valid", n, len(payloads))
	}
	segs, err := f.segments()
	if err != nil {
		return err
	}
	if f.cur != nil {
		if err := f.cur.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		f.cur = nil
	}

	keepSeg, keepEnd := -1, 0
	if n > 0 {
		keepSeg, keepEnd = locs[n-1].seg, locs[n-1].end
	}
	for i := len(segs) - 1; i > keepSeg; i-- {
		if err := os.Remove(segs[i]); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	if keepSeg >= 0 {
		if err := os.Truncate(segs[keepSeg], int64(keepEnd)); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		f.segIdx = keepSeg
		f.curSize = keepEnd
		f.cur, err = os.OpenFile(segs[keepSeg], os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	} else {
		f.segIdx = 0
		f.curSize = 0
	}

	// Drop snapshots past the new tail.
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		seq, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
		if perr != nil {
			continue
		}
		if seq > uint64(n) {
			if err := os.Remove(filepath.Join(f.dir, name)); err != nil {
				return fmt.Errorf("journal: %w", err)
			}
		}
	}
	return nil
}

// Close implements Backend.
func (f *FileBackend) Close() error {
	if f.cur == nil {
		return nil
	}
	err := f.cur.Close()
	f.cur = nil
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
