package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidName(t *testing.T) {
	good := []string{"a", "acme", "tenant-1", "0x", "a-b-c", strings.Repeat("x", 64)}
	for _, s := range good {
		if !ValidName(s) {
			t.Errorf("ValidName(%q) = false", s)
		}
	}
	bad := []string{"", "-a", "a-", "A", "a_b", "a.b", "a/b", "..", strings.Repeat("x", 65)}
	for _, s := range bad {
		if ValidName(s) {
			t.Errorf("ValidName(%q) = true", s)
		}
	}
}

func TestRunDirCreatesAndValidates(t *testing.T) {
	root := t.TempDir()
	dir, err := RunDir(root, "acme", "exp-0001")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(root, "acme", "exp-0001"); dir != want {
		t.Fatalf("dir = %q, want %q", dir, want)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("stat %s: %v", dir, err)
	}
	// Idempotent.
	if _, err := RunDir(root, "acme", "exp-0001"); err != nil {
		t.Fatal(err)
	}
	if _, err := RunDir(root, "../evil", "exp-0001"); err == nil {
		t.Error("traversal tenant accepted")
	}
	if _, err := RunDir(root, "acme", "Exp"); err == nil {
		t.Error("invalid run name accepted")
	}
}

func TestListRuns(t *testing.T) {
	root := t.TempDir()
	for _, p := range [][2]string{{"beta", "exp-0002"}, {"acme", "exp-0003"}, {"acme", "exp-0001"}} {
		if _, err := RunDir(root, p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Noise that must be skipped: invalid names, plain files.
	if err := os.MkdirAll(filepath.Join(root, "BAD", "exp-0009"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	refs, err := ListRuns(root)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"acme", "exp-0001"}, {"acme", "exp-0003"}, {"beta", "exp-0002"}}
	if len(refs) != len(want) {
		t.Fatalf("ListRuns = %d refs, want %d", len(refs), len(want))
	}
	for i, w := range want {
		if refs[i].Tenant != w[0] || refs[i].Run != w[1] {
			t.Errorf("refs[%d] = %s/%s, want %s/%s", i, refs[i].Tenant, refs[i].Run, w[0], w[1])
		}
		if refs[i].Dir != filepath.Join(root, w[0], w[1]) {
			t.Errorf("refs[%d].Dir = %q", i, refs[i].Dir)
		}
	}
	// Missing root is empty, not an error.
	refs, err = ListRuns(filepath.Join(root, "nope"))
	if err != nil || refs != nil {
		t.Fatalf("missing root: %v, %v", refs, err)
	}
}
