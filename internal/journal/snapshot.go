package journal

// TrialSnap is one trial's state inside a Snapshot: identity, lifecycle
// state, training progress, and the latest observed accuracy (HasAcc
// false when no iteration has reported yet).
type TrialSnap struct {
	ID       int64
	State    int64
	CumIters int64
	HasAcc   bool
	Acc      float64
}

// AllocEWMA is the replan controller's drift-detector state for one
// per-trial GPU allocation.
type AllocEWMA struct {
	GPUs  int64
	EWMA  float64
	Count int64
}

// Snapshot captures the full control-plane state at a journal sequence
// point: the virtual clock cursor (time and scheduling sequence), the
// live execution plan and per-trial state, accrued billing, the replan
// controller's EWMAs, and the RNG stream cursors of the two mutable
// generators (executor and provider).
//
// Snapshots are verified fingerprints, not restore images: recovery
// re-executes the pure pipeline and, at every snapshot sequence, the
// rebuilt state must encode to the stored snapshot byte for byte. Any
// mismatch means the rebuild diverged and recovery fails loudly.
type Snapshot struct {
	// Seq is the record sequence the snapshot follows: it was captured
	// immediately after record Seq-1 (0-based) was appended.
	Seq uint64
	// VNow and ClockSeq are the virtual clock's cursor: current time and
	// the number of events ever scheduled.
	VNow     float64
	ClockSeq uint64
	// Stage is the executing stage (-1 before the executor started).
	Stage int64
	// Alloc is the live execution plan (adopted replans spliced in).
	Alloc []int64
	// Trials is the per-trial state, in trial-ID order.
	Trials []TrialSnap
	// ExecFold is the executor's fingerprint of its dense per-trial
	// scheduler state (executor.Job.StateFold): allocations, iteration
	// budgets, barrier marks, restart generations. Zero before the
	// executor starts. It extends snapshot verification to scheduler
	// internals that trial-visible state alone cannot distinguish.
	ExecFold uint64
	// TotalCost, DataCost, Instances and BusyGPUSeconds are the accrued
	// billing and metering state.
	TotalCost      float64
	DataCost       float64
	Instances      int64
	BusyGPUSeconds float64
	// ExecRNG and ProviderRNG are the 256-bit cursors of the two RNG
	// streams the run mutates.
	ExecRNG     [4]uint64
	ProviderRNG [4]uint64
	// HasReplan gates the controller fields below (false when the run has
	// no replan controller; the fields are then not encoded at all).
	HasReplan bool
	// TotalObs, Allocs, OverheadEWMA, OverheadCount, Armed, LastReplan
	// and Decisions mirror replan.Controller's detector state. Allocs is
	// in ascending GPU order.
	TotalObs      int64
	Allocs        []AllocEWMA
	OverheadEWMA  float64
	OverheadCount int64
	Armed         bool
	LastReplan    float64
	Decisions     int64
}

// Encode implements Record.
func (s *Snapshot) Encode() []byte {
	b := newEnc(tagSnapshot)
	b.u64(s.Seq)
	b.f64(s.VNow)
	b.u64(s.ClockSeq)
	b.i64(s.Stage)
	b.i64s(s.Alloc)
	b.u32(uint32(len(s.Trials)))
	for _, t := range s.Trials {
		b.i64(t.ID)
		b.i64(t.State)
		b.i64(t.CumIters)
		b.bool(t.HasAcc)
		b.f64(t.Acc)
	}
	b.u64(s.ExecFold)
	b.f64(s.TotalCost)
	b.f64(s.DataCost)
	b.i64(s.Instances)
	b.f64(s.BusyGPUSeconds)
	for _, w := range s.ExecRNG {
		b.u64(w)
	}
	for _, w := range s.ProviderRNG {
		b.u64(w)
	}
	b.bool(s.HasReplan)
	if s.HasReplan {
		b.i64(s.TotalObs)
		b.u32(uint32(len(s.Allocs)))
		for _, a := range s.Allocs {
			b.i64(a.GPUs)
			b.f64(a.EWMA)
			b.i64(a.Count)
		}
		b.f64(s.OverheadEWMA)
		b.i64(s.OverheadCount)
		b.bool(s.Armed)
		b.f64(s.LastReplan)
		b.i64(s.Decisions)
	}
	return b.bytes()
}

// decodeSnapshot parses the payload after the tag byte.
func decodeSnapshot(d *dec) (*Snapshot, error) {
	var err error
	s := &Snapshot{}
	s.Seq = d.mustU64(&err)
	s.VNow = d.mustF64(&err)
	s.ClockSeq = d.mustU64(&err)
	s.Stage = d.mustI64(&err)
	s.Alloc = d.mustI64s(&err)
	if n := d.mustLen(&err); err == nil && n > 0 {
		s.Trials = make([]TrialSnap, n)
		for i := range s.Trials {
			t := &s.Trials[i]
			t.ID = d.mustI64(&err)
			t.State = d.mustI64(&err)
			t.CumIters = d.mustI64(&err)
			t.HasAcc = d.mustBool(&err)
			t.Acc = d.mustF64(&err)
			if err != nil {
				return nil, err
			}
		}
	}
	s.ExecFold = d.mustU64(&err)
	s.TotalCost = d.mustF64(&err)
	s.DataCost = d.mustF64(&err)
	s.Instances = d.mustI64(&err)
	s.BusyGPUSeconds = d.mustF64(&err)
	if ws := d.mustU64s(&err, 4); err == nil {
		copy(s.ExecRNG[:], ws)
	}
	if ws := d.mustU64s(&err, 4); err == nil {
		copy(s.ProviderRNG[:], ws)
	}
	s.HasReplan = d.mustBool(&err)
	if err == nil && s.HasReplan {
		s.TotalObs = d.mustI64(&err)
		if n := d.mustLen(&err); err == nil && n > 0 {
			s.Allocs = make([]AllocEWMA, n)
			for i := range s.Allocs {
				a := &s.Allocs[i]
				a.GPUs = d.mustI64(&err)
				a.EWMA = d.mustF64(&err)
				a.Count = d.mustI64(&err)
				if err != nil {
					return nil, err
				}
			}
		}
		s.OverheadEWMA = d.mustF64(&err)
		s.OverheadCount = d.mustI64(&err)
		s.Armed = d.mustBool(&err)
		s.LastReplan = d.mustF64(&err)
		s.Decisions = d.mustI64(&err)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}
