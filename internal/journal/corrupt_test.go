package journal

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden segment files under testdata/")

// goldenRecords is the fixed record sequence every golden segment is
// built from. Changing it (or any record encoding) invalidates the
// goldens; regenerate with `go test ./internal/journal -update` and
// review the diff — an unintended golden change means the on-disk format
// changed.
func goldenRecords() []Record {
	return []Record{
		&Header{BatchSeed: 7, Index: 1, Interval: 2, Deadline: 600, Planned: true, Alloc: []int64{3, 1}},
		&TraceEvent{At: 1.5, Kind: trace.KindStageStart, Stage: 0, Trial: -1, GPUs: 3, Nodes: 1},
		&TraceEvent{At: 2.5, Kind: trace.KindTrialStart, Stage: 0, Trial: 0, GPUs: 1, Nodes: 1},
		&TraceEvent{At: 9.25, Kind: trace.KindTrialIter, Stage: 0, Trial: 0, GPUs: 1, Nodes: 1},
		&Grant{Stage: 1, Want: 3, Granted: 2, At: 10.5},
		&End{JCT: 42.5, Cost: 3.25, BestTrial: 0},
	}
}

// goldenStream frames goldenRecords into one segment byte stream.
func goldenStream() []byte {
	var out []byte
	for _, r := range goldenRecords() {
		out = append(out, frame(r.Encode())...)
	}
	return out
}

// corruptions derives every damaged golden from the valid stream. Each
// entry records how many records must still decode and what the damage
// report must mention; wantRecords == len(goldenRecords()) with empty
// damage is the clean case.
type corruption struct {
	file        string
	build       func(valid []byte) []byte
	wantRecords int
	wantDamage  string
}

func corruptions() []corruption {
	n := len(goldenRecords())
	return []corruption{
		{"valid.seg", func(v []byte) []byte { return v }, n, ""},
		{"empty.seg", func([]byte) []byte { return nil }, 0, ""},
		{"torn-header.seg", func(v []byte) []byte {
			// 5 stray bytes after the last record: a frame header torn
			// mid-write.
			return append(v, 0xde, 0xad, 0xbe, 0xef, 0x01)
		}, n, "torn frame header"},
		{"torn-record.seg", func(v []byte) []byte {
			// The final record's frame cut mid-payload: length promises
			// more bytes than exist.
			last := frameOverhead + len(goldenRecords()[n-1].Encode())
			return v[:len(v)-last/2]
		}, n - 1, "torn record"},
		{"crc-flip.seg", func(v []byte) []byte {
			// One payload bit flipped inside record 2: records 0-1 stay
			// trusted, everything from the flip on is discarded.
			off := 0
			for i := 0; i < 2; i++ {
				off += frameOverhead + len(goldenRecords()[i].Encode())
			}
			out := append([]byte(nil), v...)
			out[off+frameOverhead+3] ^= 0x10
			return out
		}, 2, "CRC mismatch"},
		{"implausible-len.seg", func(v []byte) []byte {
			// A frame header whose length field exceeds maxLen: rejected
			// before any allocation, not trusted as a real record.
			return append(v, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
		}, n, "implausible record length"},
		{"partial-first.seg", func(v []byte) []byte {
			// Only half of the very first record: nothing is trusted.
			return v[:(frameOverhead+len(goldenRecords()[0].Encode()))/2]
		}, 0, "torn record"},
	}
}

// TestGoldenSegments pins the segment byte format: the checked-in golden
// files must equal what the current encoder produces. A failure here
// means the on-disk format changed — which breaks recovery of existing
// journals — and must be deliberate (bump Version, regenerate with
// -update).
func TestGoldenSegments(t *testing.T) {
	valid := goldenStream()
	for _, c := range corruptions() {
		path := filepath.Join("testdata", c.file)
		want := c.build(valid)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go test ./internal/journal -update` to generate)", c.file, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: checked-in golden differs from current encoder output — the journal format changed", c.file)
		}
	}
}

// TestCorruptSegmentDecode drives every golden (valid and damaged)
// through the Load path: decoding stops cleanly at the last trusted
// record, reports the damage, and never panics or silently skips a
// record.
func TestCorruptSegmentDecode(t *testing.T) {
	for _, c := range corruptions() {
		t.Run(c.file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/journal -update` to generate)", err)
			}
			raw, err := NewMemBackendFrom(data).Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(raw.Records) != c.wantRecords {
				t.Fatalf("%d trusted records, want %d (damage %q)", len(raw.Records), c.wantRecords, raw.Damage)
			}
			if c.wantDamage == "" {
				if raw.Damage != "" {
					t.Fatalf("unexpected damage %q", raw.Damage)
				}
			} else if !strings.Contains(raw.Damage, c.wantDamage) {
				t.Fatalf("damage %q does not mention %q", raw.Damage, c.wantDamage)
			}
			// Every trusted record decodes and matches the golden sequence
			// prefix exactly: damage never reorders or substitutes records.
			want := goldenRecords()
			for i, p := range raw.Records {
				rec, err := DecodeRecord(p)
				if err != nil {
					t.Fatalf("trusted record %d undecodable: %v", i, err)
				}
				if !bytes.Equal(rec.Encode(), want[i].Encode()) {
					t.Fatalf("trusted record %d differs from golden sequence", i)
				}
			}
		})
	}
}

// TestCorruptSegmentOnDisk runs the same damaged bytes through the file
// backend: a damaged segment costs the suffix (and all later segments),
// never a panic, and Truncate repairs the directory for appending.
func TestCorruptSegmentOnDisk(t *testing.T) {
	for _, c := range corruptions() {
		if c.file == "valid.seg" || c.file == "empty.seg" {
			continue
		}
		t.Run(c.file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "journal-000000.seg"), data, 0o644); err != nil {
				t.Fatal(err)
			}
			// A later segment that would be perfectly valid on its own: it
			// must be discarded, because order can't be trusted past damage.
			if err := os.WriteFile(filepath.Join(dir, "journal-000001.seg"),
				frame((&End{JCT: 1}).Encode()), 0o644); err != nil {
				t.Fatal(err)
			}
			fb, err := NewFileBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer fb.Close()
			raw, err := fb.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(raw.Records) != c.wantRecords {
				t.Fatalf("%d trusted records, want %d", len(raw.Records), c.wantRecords)
			}
			if raw.Damage == "" || !strings.Contains(raw.Damage, "discarded") {
				t.Fatalf("damage %q does not report the discarded later segment", raw.Damage)
			}
			if err := fb.Truncate(c.wantRecords); err != nil {
				t.Fatal(err)
			}
			if err := fb.Append((&End{JCT: 2}).Encode()); err != nil {
				t.Fatal(err)
			}
			raw, err = fb.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(raw.Records) != c.wantRecords+1 || raw.Damage != "" {
				t.Fatalf("after repair: %d records damage %q", len(raw.Records), raw.Damage)
			}
		})
	}
}
