package journal

import (
	"bytes"
	"errors"
	"fmt"
)

// ErrCrash is the injected control-plane kill: a Writer with an armed
// crash point returns it (wrapped in nothing) instead of appending the
// crash record, simulating the process dying mid-run with only the
// already-framed bytes durable. The chaos harness's crash/restart fault
// model checks for it with errors.Is.
var ErrCrash = errors.New("journal: injected crash")

// ErrDiverged means a recovery's re-executed run produced a record or
// snapshot that differs from the journaled one: the rebuild is not the
// run that wrote the journal (nondeterminism, a foreign journal, or
// corruption that slipped past the CRC). Recovery must stop rather than
// silently resume a different run.
var ErrDiverged = errors.New("journal: replay diverged from journal")

// RawAppender is implemented by backends that can persist raw bytes
// without framing — the torn-write fault-injection hook used to simulate
// a crash mid-append.
type RawAppender interface {
	AppendRaw(b []byte) error
}

// Writer is the journaling front end: records stream through Record,
// snapshots are captured every Interval records via the registered
// snapshot function, and crash points can be armed for fault injection.
//
// A Writer returned by Resume starts in verify mode: each regenerated
// record is byte-compared against the journaled prefix (and each rebuilt
// snapshot against the stored one) instead of being appended; after the
// prefix is exhausted the Writer switches to appending, so a recovered
// run leaves behind exactly the journal an uninterrupted run would have
// written. The first error — divergence, crash, backend failure — is
// latched: every subsequent Record returns it, so callbacks may ignore
// individual return values and the driver polls Err between clock steps.
type Writer struct {
	b        Backend
	interval uint64
	snapFn   func() *Snapshot

	prefix [][]byte
	snaps  map[uint64][]byte
	seq    uint64

	crashArmed bool
	crashSeq   uint64
	crashTorn  int

	err error
}

// NewWriter returns an appending Writer over an empty (or to-be-
// overwritten) backend. interval is the snapshot interval in records
// (0 disables snapshots).
func NewWriter(b Backend, interval uint64) *Writer {
	return &Writer{b: b, interval: interval, snaps: make(map[uint64][]byte)}
}

// Resume opens an existing journal for recovery. It loads and validates
// every frame, truncates any damage (torn tail, CRC-corrupt suffix) so
// appends continue cleanly from the last trusted record, and returns a
// Writer in verify mode over the trusted prefix, the decoded run header
// (nil when the journal holds no complete record), and a description of
// the damage that was truncated (empty for a clean journal).
//
// interval is the configured snapshot interval, used only when the
// journal holds no header yet (a crash before anything durable): a
// journaled header always overrides it, so recovery snapshots at exactly
// the original run's points.
//
// The caller must re-execute the run that wrote the journal and stream
// its records through Writer.Record; the Writer verifies the prefix and
// then appends the remainder.
func Resume(b Backend, interval uint64) (*Writer, *Header, string, error) {
	raw, err := b.Load()
	if err != nil {
		return nil, nil, "", err
	}
	damage := raw.Damage
	if damage != "" {
		if err := b.Truncate(len(raw.Records)); err != nil {
			return nil, nil, damage, err
		}
	}
	w := &Writer{b: b, interval: interval, prefix: raw.Records, snaps: raw.Snapshots}
	if w.snaps == nil {
		w.snaps = make(map[uint64][]byte)
	}
	if len(raw.Records) == 0 {
		return w, nil, damage, nil
	}
	rec, err := DecodeRecord(raw.Records[0])
	if err != nil {
		return nil, nil, damage, fmt.Errorf("journal: undecodable header record: %w", err)
	}
	hdr, ok := rec.(*Header)
	if !ok {
		return nil, nil, damage, fmt.Errorf("journal: first record is %T, not a run header", rec)
	}
	w.interval = hdr.Interval
	return w, hdr, damage, nil
}

// Interval returns the snapshot interval in records (0 = disabled).
func (w *Writer) Interval() uint64 { return w.interval }

// Seq returns the number of records recorded (verified or appended).
func (w *Writer) Seq() uint64 { return w.seq }

// Verifying reports whether the Writer is still inside a resumed
// journal's prefix (recovery has not yet reached the crash point).
func (w *Writer) Verifying() bool { return int(w.seq) < len(w.prefix) }

// Err returns the latched error, if any. The harness's clock-step loop
// polls it so a crash or divergence inside an event callback stops the
// run at the next step boundary.
func (w *Writer) Err() error { return w.err }

// SetSnapshotFunc registers the state-capture callback invoked at every
// snapshot interval. The callback must be a pure read of control-plane
// state (no RNG draws, no mutation) so that snapshotting is invisible to
// the run's digest. A nil return skips the snapshot.
func (w *Writer) SetSnapshotFunc(fn func() *Snapshot) { w.snapFn = fn }

// SetCrashPoint arms fault injection: the Writer returns ErrCrash when
// it is about to record the record whose sequence number is seq, leaving
// the journal with exactly seq records plus torn bytes of the fatal
// record's frame (clamped below a complete frame; 0 = clean kill at a
// record boundary).
func (w *Writer) SetCrashPoint(seq uint64, torn int) {
	w.crashArmed = true
	w.crashSeq = seq
	w.crashTorn = torn
}

// Record streams one record through the Writer: verified against the
// resumed prefix or durably appended, with snapshot capture/verification
// at interval boundaries. The first error is latched.
func (w *Writer) Record(r Record) error {
	if w.err != nil {
		return w.err
	}
	payload := r.Encode()
	if w.crashArmed && w.seq == w.crashSeq {
		// Simulated kill: the record is lost; at most a torn prefix of its
		// frame reaches the store (and only when actually appending — a
		// crash inside a verified prefix writes nothing new).
		if w.crashTorn > 0 && int(w.seq) >= len(w.prefix) {
			if ra, ok := w.b.(RawAppender); ok {
				fr := frame(payload)
				t := w.crashTorn
				if t >= len(fr) {
					t = len(fr) - 1
				}
				if err := ra.AppendRaw(fr[:t]); err != nil {
					w.err = err
					return err
				}
			}
		}
		w.err = ErrCrash
		return w.err
	}
	if int(w.seq) < len(w.prefix) {
		if !bytes.Equal(payload, w.prefix[w.seq]) {
			w.err = fmt.Errorf("record %d: regenerated %d bytes != journaled %d bytes: %w",
				w.seq, len(payload), len(w.prefix[w.seq]), ErrDiverged)
			return w.err
		}
	} else {
		if err := w.b.Append(payload); err != nil {
			w.err = err
			return err
		}
	}
	w.seq++
	if w.interval > 0 && w.seq%w.interval == 0 {
		if err := w.snapshot(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// Observe is Record for event-callback call sites that cannot propagate
// an error (trace and replan observers return nothing): the first
// failure is latched and re-surfaced by Err, which the run's step loop
// polls between clock events.
func (w *Writer) Observe(r Record) {
	if err := w.Record(r); err != nil {
		w.err = err
	}
}

// snapshot captures the control-plane state at the current sequence and
// either verifies it against the stored snapshot (recovery) or persists
// it. A snapshot missing from a resumed journal (dropped with a damaged
// tail) is re-persisted so the recovered journal matches the
// uninterrupted one's.
func (w *Writer) snapshot() error {
	if w.snapFn == nil {
		return nil
	}
	s := w.snapFn()
	if s == nil {
		return nil
	}
	s.Seq = w.seq
	payload := s.Encode()
	if stored, ok := w.snaps[w.seq]; ok {
		if !bytes.Equal(payload, stored) {
			return fmt.Errorf("snapshot at record %d: rebuilt state (%d bytes) != stored snapshot (%d bytes): %w",
				w.seq, len(payload), len(stored), ErrDiverged)
		}
		return nil
	}
	if err := w.b.PutSnapshot(w.seq, payload); err != nil {
		return err
	}
	w.snaps[w.seq] = payload
	return nil
}
