// Package journal is the durable write-ahead log and snapshot store of
// the control plane: every state transition the executor and the replan
// controller make is appended as a typed, CRC-framed record, and periodic
// snapshots capture the full control-plane state (virtual clock cursor,
// trial/gang state, accrued billing, replan EWMAs, RNG stream cursors).
//
// Recovery is deterministic re-execution validated against the log —
// state-machine replication with the chaos harness's purity guarantee as
// the replication substrate. Because the whole pipeline is a pure
// function of (seed, plan), re-running the scenario rebuilds the exact
// in-memory state; the journal's role is to make that rebuild
// *verifiable*: every regenerated record must match the journaled prefix
// byte for byte, and at every snapshot point the rebuilt state must
// encode to the stored snapshot exactly. Any divergence — nondeterminism,
// a corrupted record, a foreign journal — fails loudly instead of
// silently resuming a different run. Past the journaled tail the writer
// switches back to appending, so a recovered run leaves behind the same
// journal an uninterrupted run would have written.
//
// Two backends implement the same framed format: MemBackend for tests
// and FileBackend, which stores records in rolling segment files
// (journal-NNNNNN.seg) and snapshots in per-sequence files
// (snap-*.snap). Decoding stops cleanly at the first torn or
// CRC-corrupt record and reports the damage; nothing after a damaged
// record is ever trusted.
package journal

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Version is the journal format version, embedded in every run header.
// Decoders reject records from a different version rather than guessing.
const Version = 1

// Record type tags (the first payload byte of every record).
const (
	tagHeader   = 1
	tagTrace    = 2
	tagDecision = 3
	tagEnd      = 4
	tagSnapshot = 5
	tagGrant    = 6
)

// maxLen bounds every length-prefixed field (plans, strings, trial lists)
// so a corrupt or adversarial length prefix cannot drive allocation.
const maxLen = 1 << 20

// Record is one typed journal entry. Encodings are canonical: for every
// valid record, Decode(Encode(r)) re-encodes to the identical bytes
// (FuzzJournalRoundTrip holds the codec to this).
type Record interface {
	// Encode renders the record's canonical byte encoding, including the
	// leading type tag.
	Encode() []byte
}

// Header is the first record of every journal: the run's identity and
// the journaling parameters recovery must reproduce.
type Header struct {
	// BatchSeed and Index identify the scenario (a run is a pure function
	// of this pair); recovery refuses a journal written by a different
	// run.
	BatchSeed uint64
	Index     int64
	// Interval is the snapshot interval in records (0 = no snapshots).
	// Stored so a resumed writer snapshots at the same points.
	Interval uint64
	// Deadline is the sampled job deadline in seconds.
	Deadline float64
	// Planned reports whether the elastic planner produced the plan
	// (false = infeasible-deadline fallback).
	Planned bool
	// Alloc is the executed plan's per-stage GPU allocation.
	Alloc []int64
}

// Encode implements Record.
func (h *Header) Encode() []byte {
	b := newEnc(tagHeader)
	b.u16(Version)
	b.u64(h.BatchSeed)
	b.i64(h.Index)
	b.u64(h.Interval)
	b.f64(h.Deadline)
	b.bool(h.Planned)
	b.i64s(h.Alloc)
	return b.bytes()
}

// TraceEvent is one executor state transition, mirroring trace.Event with
// the digest-relevant fields only. Presentation notes are deliberately
// not journaled: they are excluded from run digests, and keeping records
// fixed-width makes segment capacity math exact.
type TraceEvent struct {
	At    float64
	Kind  trace.Kind
	Stage int64
	Trial int64
	GPUs  int64
	Nodes int64
}

// kindCodes fixes the wire code of every trace kind. Appending new kinds
// is forward-compatible; reordering is not.
var kindCodes = []trace.Kind{
	trace.KindStageStart, trace.KindStageEnd, trace.KindTrialStart,
	trace.KindTrialIter, trace.KindTrialPause, trace.KindTrialKill,
	trace.KindTrialDone, trace.KindScaleUp, trace.KindScaleDown,
	trace.KindNodeReady, trace.KindCheckpoint, trace.KindRestore,
	trace.KindProfilePoint, trace.KindDriftTrigger, trace.KindReplan,
}

func kindCode(k trace.Kind) (byte, bool) {
	for i, c := range kindCodes {
		if c == k {
			return byte(i + 1), true
		}
	}
	return 0, false
}

// FromTrace converts a trace event to its journal record, dropping the
// presentation note.
func FromTrace(e trace.Event) *TraceEvent {
	return &TraceEvent{
		At: float64(e.At), Kind: e.Kind,
		Stage: int64(e.Stage), Trial: int64(e.Trial),
		GPUs: int64(e.GPUs), Nodes: int64(e.Nodes),
	}
}

// Encode implements Record. Known kinds encode as one code byte; unknown
// kinds carry the string (code 0), so new event kinds journal before the
// code table learns them.
func (e *TraceEvent) Encode() []byte {
	b := newEnc(tagTrace)
	if c, ok := kindCode(e.Kind); ok {
		b.u8(c)
	} else {
		b.u8(0)
		b.str(string(e.Kind))
	}
	b.f64(e.At)
	b.i64(e.Stage)
	b.i64(e.Trial)
	b.i64(e.GPUs)
	b.i64(e.Nodes)
	return b.bytes()
}

// Reason wire codes for Decision records.
const (
	reasonOther      = 0 // carries the string
	reasonDrift      = 1
	reasonPreemption = 2
)

// Decision is a replan decision's full payload — the part of controller
// state a trace event's note only renders as text.
type Decision struct {
	Seq               int64
	At                float64
	Reason            string
	Stage             int64
	Ratio             float64
	RemainingDeadline float64
	OldAlloc          []int64
	NewAlloc          []int64
	StaleJCT          float64
	StaleCost         float64
	NewJCT            float64
	NewCost           float64
	Adopted           bool
	Infeasible        bool
}

// Encode implements Record.
func (d *Decision) Encode() []byte {
	b := newEnc(tagDecision)
	b.i64(d.Seq)
	b.f64(d.At)
	switch d.Reason {
	case "drift":
		b.u8(reasonDrift)
	case "preemption":
		b.u8(reasonPreemption)
	default:
		b.u8(reasonOther)
		b.str(d.Reason)
	}
	b.i64(d.Stage)
	b.f64(d.Ratio)
	b.f64(d.RemainingDeadline)
	b.i64s(d.OldAlloc)
	b.i64s(d.NewAlloc)
	b.f64(d.StaleJCT)
	b.f64(d.StaleCost)
	b.f64(d.NewJCT)
	b.f64(d.NewCost)
	var flags byte
	if d.Adopted {
		flags |= 1
	}
	if d.Infeasible {
		flags |= 2
	}
	b.u8(flags)
	return b.bytes()
}

// Grant records one stage-boundary arbitration: the cross-experiment
// arbiter received a request for Want GPUs at stage Stage (virtual time
// At) and granted Granted. Grants are part of the verified prefix, so
// recovery re-derives the identical allocation sequence — a recovered
// run replays the journaled grants instead of consulting a live arbiter
// whose other tenants are gone.
type Grant struct {
	Stage   int64
	Want    int64
	Granted int64
	At      float64
}

// Encode implements Record.
func (g *Grant) Encode() []byte {
	b := newEnc(tagGrant)
	b.i64(g.Stage)
	b.i64(g.Want)
	b.i64(g.Granted)
	b.f64(g.At)
	return b.bytes()
}

// End closes a journal: the run completed and produced a result. A
// journal without an End record is a crashed run.
type End struct {
	JCT       float64
	Cost      float64
	BestTrial int64
}

// Encode implements Record.
func (e *End) Encode() []byte {
	b := newEnc(tagEnd)
	b.f64(e.JCT)
	b.f64(e.Cost)
	b.i64(e.BestTrial)
	return b.bytes()
}

// DecodeRecord parses one canonical record payload. It rejects trailing
// bytes, unknown tags, non-canonical encodings (a known kind or reason
// spelled as a string, flag bits outside the defined set) and any
// length prefix past maxLen — Decode(Encode(r)) re-encoding byte-identically
// is the codec's contract.
func DecodeRecord(payload []byte) (Record, error) {
	d := newDec(payload)
	tag, err := d.u8()
	if err != nil {
		return nil, err
	}
	var rec Record
	switch tag {
	case tagHeader:
		h := &Header{}
		var v uint16
		if v, err = d.u16(); err == nil && v != Version {
			return nil, fmt.Errorf("journal: header version %d, want %d", v, Version)
		}
		h.BatchSeed = d.mustU64(&err)
		h.Index = d.mustI64(&err)
		h.Interval = d.mustU64(&err)
		h.Deadline = d.mustF64(&err)
		h.Planned = d.mustBool(&err)
		h.Alloc = d.mustI64s(&err)
		rec = h
	case tagTrace:
		e := &TraceEvent{}
		var c byte
		if c, err = d.u8(); err == nil {
			if c == 0 {
				s := d.mustStr(&err)
				if _, known := kindCode(trace.Kind(s)); known {
					return nil, fmt.Errorf("journal: non-canonical kind string %q", s)
				}
				e.Kind = trace.Kind(s)
			} else if int(c) <= len(kindCodes) {
				e.Kind = kindCodes[c-1]
			} else {
				return nil, fmt.Errorf("journal: unknown kind code %d", c)
			}
		}
		e.At = d.mustF64(&err)
		e.Stage = d.mustI64(&err)
		e.Trial = d.mustI64(&err)
		e.GPUs = d.mustI64(&err)
		e.Nodes = d.mustI64(&err)
		rec = e
	case tagDecision:
		dec := &Decision{}
		dec.Seq = d.mustI64(&err)
		dec.At = d.mustF64(&err)
		var c byte
		if err == nil {
			if c, err = d.u8(); err == nil {
				switch c {
				case reasonDrift:
					dec.Reason = "drift"
				case reasonPreemption:
					dec.Reason = "preemption"
				case reasonOther:
					s := d.mustStr(&err)
					if s == "drift" || s == "preemption" {
						return nil, fmt.Errorf("journal: non-canonical reason string %q", s)
					}
					dec.Reason = s
				default:
					return nil, fmt.Errorf("journal: unknown reason code %d", c)
				}
			}
		}
		dec.Stage = d.mustI64(&err)
		dec.Ratio = d.mustF64(&err)
		dec.RemainingDeadline = d.mustF64(&err)
		dec.OldAlloc = d.mustI64s(&err)
		dec.NewAlloc = d.mustI64s(&err)
		dec.StaleJCT = d.mustF64(&err)
		dec.StaleCost = d.mustF64(&err)
		dec.NewJCT = d.mustF64(&err)
		dec.NewCost = d.mustF64(&err)
		if err == nil {
			var flags byte
			if flags, err = d.u8(); err == nil {
				if flags&^byte(3) != 0 {
					return nil, fmt.Errorf("journal: undefined decision flags %#x", flags)
				}
				dec.Adopted = flags&1 != 0
				dec.Infeasible = flags&2 != 0
			}
		}
		rec = dec
	case tagEnd:
		e := &End{}
		e.JCT = d.mustF64(&err)
		e.Cost = d.mustF64(&err)
		e.BestTrial = d.mustI64(&err)
		rec = e
	case tagGrant:
		g := &Grant{}
		g.Stage = d.mustI64(&err)
		g.Want = d.mustI64(&err)
		g.Granted = d.mustI64(&err)
		g.At = d.mustF64(&err)
		rec = g
	case tagSnapshot:
		s, serr := decodeSnapshot(d)
		if serr != nil {
			return nil, serr
		}
		rec = s
	default:
		return nil, fmt.Errorf("journal: unknown record tag %d", tag)
	}
	if err != nil {
		return nil, err
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return rec, nil
}

// isNaNCanonical guards float round-trips: encoding folds floats by their
// IEEE-754 bit pattern, so every payload — NaNs included — survives
// encode→decode→encode bit-identically. Exported codecs rely on this;
// the helper exists to document the invariant where it matters.
func isNaNCanonical(bits uint64) bool {
	f := math.Float64frombits(bits)
	return !math.IsNaN(f) || math.Float64bits(f) == bits
}
