package vclock

import "testing"

// benchFill pre-loads a clock with n pending opcode events spread over
// the next ~n milliseconds, returning their handles. The load makes
// cancel cost under contention visible: the heap kernel pays O(log n)
// sift work per removal, the wheel unlinks in O(1).
func benchFill(c *Clock, id DispatchID, n int) []Handle {
	hs := make([]Handle, n)
	for i := 0; i < n; i++ {
		at := c.Now() + Time(1+(i*7919)%n)*0.001
		hs[i] = c.AtOp(at, id, 0, int64(i), 0)
	}
	return hs
}

func nopDispatcher(op uint8, a, b int64) {}

// BenchmarkCancel measures schedule+cancel of one event against a
// 128k-event backlog, per kernel. This is the watchdog-timer pattern:
// almost every timer scheduled by the executor (preemption restores,
// stage barriers) is cancelled before it fires.
func BenchmarkCancel(b *testing.B) {
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			c := k.mk()
			id := c.RegisterDispatcher(nopDispatcher)
			benchFill(c, id, 128<<10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := c.AtOp(c.Now()+Time(1+i%1000)*0.0005, id, 0, 0, 0)
				c.Cancel(h)
			}
		})
	}
}

// BenchmarkSchedule measures steady-state event scheduling into a
// standing backlog, per kernel.
func BenchmarkSchedule(b *testing.B) {
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			c := k.mk()
			id := c.RegisterDispatcher(nopDispatcher)
			hs := benchFill(c, id, 128<<10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Replace one standing event per iteration so the backlog
				// stays constant instead of growing with b.N.
				j := i & (128<<10 - 1)
				c.Cancel(hs[j])
				hs[j] = c.AtOp(c.Now()+Time(1+i%1000)*0.001, id, 0, 0, 0)
			}
		})
	}
}

// BenchmarkFire measures the schedule→fire round trip through the
// zero-alloc opcode dispatch path, per kernel.
func BenchmarkFire(b *testing.B) {
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			c := k.mk()
			id := c.RegisterDispatcher(nopDispatcher)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.AtOp(c.Now()+0.0005, id, 0, 0, 0)
				c.Step()
			}
		})
	}
}

// TestCancelAllocs pins the steady-state schedule+cancel cycle at zero
// allocations per operation on both kernels. This is the regression
// test for the wheel's O(1) eager cancel: a lazy-only cancel would leak
// slab slots, force slab growth, and show up here as nonzero allocs.
func TestCancelAllocs(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		id := c.RegisterDispatcher(nopDispatcher)
		// Warm the slab and kernel internals past any growth.
		for _, h := range benchFill(c, id, 4096) {
			c.Cancel(h)
		}
		allocs := testing.AllocsPerRun(2000, func() {
			h := c.AtOp(c.Now()+1, id, 0, 0, 0)
			c.Cancel(h)
		})
		if allocs != 0 {
			t.Fatalf("schedule+cancel allocates %.1f objects/op, want 0", allocs)
		}
	})
}

// TestDispatchAllocs pins the full schedule→fire→dispatch cycle through
// AtOp at zero allocations per event on both kernels — the property the
// executor hot loop depends on at fleet scale.
func TestDispatchAllocs(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		var fired int64
		id := c.RegisterDispatcher(func(op uint8, a, b int64) { fired += a })
		// Warm slab, ready heap, and wheel cursor.
		for i := 0; i < 64; i++ {
			c.AtOp(c.Now()+Time(i)*0.001, id, 0, 1, 0)
		}
		c.Run(0)
		allocs := testing.AllocsPerRun(2000, func() {
			c.AtOp(c.Now()+0.0005, id, 0, 1, 0)
			if !c.Step() {
				t.Fatal("no event to fire")
			}
		})
		if allocs != 0 {
			t.Fatalf("dispatch path allocates %.1f objects/event, want 0", allocs)
		}
		if fired == 0 {
			t.Fatal("dispatcher never ran")
		}
	})
}
