package vclock

// heapQueue is the binary-heap reference kernel: a classic d=2 heap of
// slab indices ordered by (at, seq). Schedule and pop are O(log n);
// cancel is an eager O(log n) removal through the event's tracked heap
// position. It is deliberately simple — the wheel kernel is held to it
// bit for bit by the differential suite.
type heapQueue struct {
	c *Clock
	h []int32
}

func newHeapQueue(c *Clock) *heapQueue { return &heapQueue{c: c} }

// less orders two slab events by (at, seq).
func (q *heapQueue) less(a, b int32) bool {
	ea, eb := &q.c.events[a], &q.c.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (q *heapQueue) swap(i, j int32) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.c.events[q.h[i]].pos = i
	q.c.events[q.h[j]].pos = j
}

func (q *heapQueue) up(i int32) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(q.h[i], q.h[p]) {
			break
		}
		q.swap(i, p)
		i = p
	}
}

func (q *heapQueue) down(i int32) {
	n := int32(len(q.h))
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.less(q.h[r], q.h[l]) {
			m = r
		}
		if !q.less(q.h[m], q.h[i]) {
			return
		}
		q.swap(i, m)
		i = m
	}
}

func (q *heapQueue) push(idx int32) {
	q.h = append(q.h, idx)
	i := int32(len(q.h) - 1)
	q.c.events[idx].pos = i
	q.up(i)
}

func (q *heapQueue) next() int32 {
	if len(q.h) == 0 {
		return -1
	}
	return q.h[0]
}

func (q *heapQueue) pop(idx int32) {
	q.removeAt(q.c.events[idx].pos)
}

func (q *heapQueue) cancel(idx int32) {
	q.removeAt(q.c.events[idx].pos)
	q.c.release(idx)
}

// removeAt deletes heap position i, restoring the heap property around
// the displaced tail element.
func (q *heapQueue) removeAt(i int32) {
	n := int32(len(q.h)) - 1
	last := q.h[n]
	q.h = q.h[:n]
	if i == n {
		return
	}
	q.h[i] = last
	q.c.events[last].pos = i
	q.down(i)
	q.up(i)
}
