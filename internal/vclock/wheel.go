package vclock

import "math/bits"

// wheelQueue is the production kernel: a hierarchical timer wheel sized
// for fleet-scale simulations (10^6+ concurrent events).
//
// Geometry. Virtual time quantizes to integer ticks of 2^-20 s (~1 µs);
// the wheel has 6 levels of 64 slots, level l covering 64^(l+1) ticks,
// so the levels together span 64^6 ticks ≈ 18 virtual hours ahead of
// the cursor. Events beyond that park on an overflow list and are
// pulled in when the wheel runs dry. Scheduling indexes the level by
// the highest bit in which the event's tick differs from the cursor
// (the radix-tree formulation), so an event never lands in the coarse
// slot the cursor currently occupies, and each cascade strictly refines
// it toward level 0.
//
// Determinism. Tick quantization is monotone, so tick order never
// contradicts time order; all events of the current tick (and any
// cascade residue at or before it) sit in a small binary heap ordered
// by exact (at, seq) — the same total order as the reference heap
// kernel, which is why the two kernels are bit-identical. Buckets
// themselves are unordered doubly-linked lists: order is only imposed
// when a bucket drains into the ready heap.
//
// Complexity. Schedule is O(1); cancel of a bucketed event unlinks in
// O(1) (events already in the ready heap or overflow die lazily);
// firing is O(log k) in the number of same-tick events, plus amortized
// O(levels) cascade work.
type wheelQueue struct {
	c   *Clock
	cur uint64 // tick cursor: every bucketed event has tick > cur
	// occ bitmaps mirror bucket occupancy for O(1) next-slot scans.
	occ    [wheelLevels]uint64
	bucket [wheelLevels][wheelSlots]int32
	// ready holds events with tick <= cur as a binary heap ordered by
	// exact (at, seq); its top is the globally earliest pending event.
	ready []int32
	// over parks events beyond the wheel span.
	over []int32
	// held counts slab slots this queue owns (pending + cancelled but
	// not yet reclaimed), for the empty fast path.
	held int
}

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelLevels = 6              // 64^6 ticks ≈ 18h of virtual time
	tickShift   = 20             // 2^20 ticks per virtual second
	tickHz      = float64(uint64(1) << tickShift)
)

// maxTick saturates far-future tick conversions; ordering within a tick
// still uses exact (at, seq), so saturation cannot reorder events.
const maxTick = uint64(1) << 62

// tickOf quantizes a virtual time to its wheel tick. Monotone: at1 <=
// at2 implies tickOf(at1) <= tickOf(at2).
func tickOf(at Time) uint64 {
	f := float64(at) * tickHz
	if f >= float64(maxTick) {
		return maxTick
	}
	return uint64(f)
}

func newWheelQueue(c *Clock) *wheelQueue {
	q := &wheelQueue{c: c}
	for l := range q.bucket {
		for s := range q.bucket[l] {
			q.bucket[l][s] = -1
		}
	}
	return q
}

// push inserts a freshly scheduled event. O(1).
//
//rbvet:noalloc
func (q *wheelQueue) push(idx int32) {
	if q.held == 0 {
		// Queue empty: snap the cursor forward to the present so a long
		// idle gap does not force the new event through every level.
		if t := tickOf(q.c.now); t > q.cur {
			q.cur = t
		}
	}
	q.held++
	q.place(idx)
}

// place routes a pending event relative to the cursor: ready heap for
// the current tick, a wheel bucket within the span, overflow beyond it.
// It performs no accounting — push and cascade both go through it.
//
//rbvet:noalloc
func (q *wheelQueue) place(idx int32) {
	e := &q.c.events[idx]
	t := tickOf(e.at)
	if t <= q.cur {
		q.readyPush(idx)
		return
	}
	lvl := (bits.Len64(t^q.cur) - 1) / wheelBits
	if lvl >= wheelLevels {
		q.pushOverflow(idx)
		return
	}
	slot := (t >> (uint(lvl) * wheelBits)) & (wheelSlots - 1)
	e.where = whereBucket
	e.slotRef = uint16(lvl*wheelSlots + int(slot))
	e.prev = -1
	e.next = q.bucket[lvl][slot]
	if e.next >= 0 {
		q.c.events[e.next].prev = idx
	}
	q.bucket[lvl][slot] = idx
	q.occ[lvl] |= 1 << slot
}

// pushOverflow parks an event beyond the wheel span. Rare; kept out of
// the noalloc-gated paths because append may grow the slice.
func (q *wheelQueue) pushOverflow(idx int32) {
	q.c.events[idx].where = whereOver
	q.over = append(q.over, idx)
}

// next returns the earliest pending event, reclaiming any cancelled
// slots it uncovers and advancing the cursor as needed.
//
//rbvet:noalloc
func (q *wheelQueue) next() int32 {
	for {
		for len(q.ready) > 0 {
			top := q.ready[0]
			if q.c.events[top].state == statePending {
				return top
			}
			// Cancelled while queued in the ready heap: reclaim lazily.
			q.readyPop()
			q.held--
			q.c.release(top)
		}
		if !q.refill() {
			return -1
		}
	}
}

// pop removes the event next just returned (it is about to fire).
//
//rbvet:noalloc
func (q *wheelQueue) pop(idx int32) {
	// Contract: Step pops exactly the event next returned, which sits at
	// the top of the ready heap.
	_ = idx
	q.readyPop()
	q.held--
}

// cancel removes a pending event. Bucketed events unlink eagerly in
// O(1) and release their slot; events already in the ready heap or the
// overflow list are marked dead and reclaimed when next encounters
// them.
//
//rbvet:noalloc
func (q *wheelQueue) cancel(idx int32) {
	e := &q.c.events[idx]
	if e.where == whereBucket {
		q.unlink(idx)
		q.held--
		q.c.release(idx)
		return
	}
	e.state = stateDead
}

// unlink removes a bucketed event from its doubly-linked bucket list,
// clearing the occupancy bit when the bucket empties.
//
//rbvet:noalloc
func (q *wheelQueue) unlink(idx int32) {
	e := &q.c.events[idx]
	lvl, slot := int(e.slotRef)/wheelSlots, int(e.slotRef)%wheelSlots
	if e.prev >= 0 {
		q.c.events[e.prev].next = e.next
	} else {
		q.bucket[lvl][slot] = e.next
		if e.next < 0 {
			q.occ[lvl] &^= 1 << uint(slot)
		}
	}
	if e.next >= 0 {
		q.c.events[e.next].prev = e.prev
	}
	e.next, e.prev, e.where = -1, -1, whereNone
}

// refill advances the cursor to the next occupied bucket, cascading
// coarse levels down until level 0 drains into the ready heap. It
// reports whether it made progress (the caller loops; false means the
// queue is truly empty).
//
//rbvet:noalloc
func (q *wheelQueue) refill() bool {
	for {
		if len(q.ready) > 0 {
			return true
		}
		advanced := false
		for lvl := 0; lvl < wheelLevels; lvl++ {
			shift := uint(lvl) * wheelBits
			pos := (q.cur >> shift) & (wheelSlots - 1)
			// Slots below pos at this level belong to the next wrap and
			// are reachable only through a higher-level cascade.
			m := q.occ[lvl] >> pos << pos
			if m == 0 {
				continue
			}
			slot := uint64(bits.TrailingZeros64(m))
			if lvl == 0 {
				// Level-0 slots hold exactly one tick: advance the cursor
				// to it and move the bucket into the ready heap.
				q.cur = (q.cur &^ (wheelSlots - 1)) | slot
				q.drain(0, int(slot))
			} else {
				// Coarse slot: jump the cursor to the slot's first tick and
				// cascade its events down (place refines each toward level
				// 0; events at exactly the new cursor tick land in ready).
				width := uint64(1)<<(shift+wheelBits) - 1
				q.cur = (q.cur &^ width) | (slot << shift)
				q.drain(lvl, int(slot))
			}
			advanced = true
			break
		}
		if advanced {
			continue
		}
		if len(q.over) == 0 {
			return false
		}
		if !q.pullOverflow() {
			return false
		}
	}
}

// drain empties bucket (lvl, slot): cancelled events are reclaimed,
// level-0 events enter the ready heap, and coarse-level events cascade
// back through place.
//
//rbvet:noalloc
func (q *wheelQueue) drain(lvl, slot int) {
	idx := q.bucket[lvl][slot]
	q.bucket[lvl][slot] = -1
	q.occ[lvl] &^= 1 << uint(slot)
	for idx >= 0 {
		e := &q.c.events[idx]
		nxt := e.next
		e.next, e.prev, e.where = -1, -1, whereNone
		switch {
		case e.state != statePending:
			q.held--
			q.c.release(idx)
		case lvl == 0:
			q.readyPush(idx)
		default:
			q.place(idx)
		}
		idx = nxt
	}
}

// pullOverflow jumps the cursor to the earliest overflowed event and
// re-places the whole overflow list (still-far events park again). It
// reports whether any pending event survived. Only reached when the
// wheel itself is empty, so the cursor jump is safe.
func (q *wheelQueue) pullOverflow() bool {
	old := q.over
	q.over = nil
	minT := ^uint64(0)
	n := 0
	for _, idx := range old {
		e := &q.c.events[idx]
		if e.state != statePending {
			q.held--
			q.c.release(idx)
			continue
		}
		old[n] = idx
		n++
		if t := tickOf(e.at); t < minT {
			minT = t
		}
	}
	if n == 0 {
		return false
	}
	if minT > q.cur {
		q.cur = minT
	}
	for _, idx := range old[:n] {
		q.place(idx)
	}
	return true
}

// readyLess orders ready-heap entries by exact (at, seq) — the kernel's
// total firing order.
//
//rbvet:noalloc
func (q *wheelQueue) readyLess(a, b int32) bool {
	ea, eb := &q.c.events[a], &q.c.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// readyPush inserts into the current-tick heap. O(log k).
//
//rbvet:noalloc
func (q *wheelQueue) readyPush(idx int32) {
	if len(q.ready) == cap(q.ready) {
		q.growReady()
	}
	q.ready = q.ready[:len(q.ready)+1]
	i := len(q.ready) - 1
	q.ready[i] = idx
	q.c.events[idx].where = whereReady
	for i > 0 {
		p := (i - 1) / 2
		if !q.readyLess(q.ready[i], q.ready[p]) {
			break
		}
		q.ready[i], q.ready[p] = q.ready[p], q.ready[i]
		i = p
	}
}

// growReady grows the ready heap's capacity; split out so the gated
// push path itself performs no allocation in steady state.
func (q *wheelQueue) growReady() {
	grown := append(q.ready, 0)
	q.ready = grown[:len(q.ready)]
}

// readyPop removes the heap top. O(log k).
//
//rbvet:noalloc
func (q *wheelQueue) readyPop() {
	q.c.events[q.ready[0]].where = whereNone
	n := len(q.ready) - 1
	q.ready[0] = q.ready[n]
	q.ready = q.ready[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.readyLess(q.ready[r], q.ready[l]) {
			m = r
		}
		if !q.readyLess(q.ready[m], q.ready[i]) {
			return
		}
		q.ready[i], q.ready[m] = q.ready[m], q.ready[i]
		i = m
	}
}
