package vclock

import (
	"sort"
	"testing"
	"testing/quick"
)

// kernels enumerates the interchangeable queue implementations; almost
// every test in this package runs once per kernel.
var kernels = []struct {
	name string
	mk   func() *Clock
}{
	{"wheel", New},
	{"heap", NewHeap},
}

// perKernel runs f as a subtest against each kernel constructor.
func perKernel(t *testing.T, f func(t *testing.T, mk func() *Clock)) {
	t.Helper()
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) { f(t, k.mk) })
	}
}

func TestZeroClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	if c.Step() {
		t.Fatal("Step on empty clock returned true")
	}
}

func TestEventOrdering(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		var order []int
		c.At(3, func() { order = append(order, 3) })
		c.At(1, func() { order = append(order, 1) })
		c.At(2, func() { order = append(order, 2) })
		c.Run(0)
		want := []int{1, 2, 3}
		for i, v := range want {
			if order[i] != v {
				t.Fatalf("order = %v, want %v", order, want)
			}
		}
		if c.Now() != 3 {
			t.Fatalf("final time %v, want 3", c.Now())
		}
	})
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			c.At(5, func() { order = append(order, i) })
		}
		c.Run(0)
		for i, v := range order {
			if v != i {
				t.Fatalf("simultaneous events out of FIFO order: %v", order)
			}
		}
	})
}

func TestAfter(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		c.At(10, func() {
			c.After(5, func() {
				if c.Now() != 15 {
					t.Errorf("nested After fired at %v, want 15", c.Now())
				}
			})
		})
		c.Run(0)
		if c.Now() != 15 {
			t.Fatalf("final time %v, want 15", c.Now())
		}
	})
}

func TestSchedulingInPastPanics(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		c.At(10, func() {})
		c.Run(0)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic scheduling in the past")
			}
		}()
		c.At(5, func() {})
	})
}

func TestNegativeAfterPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	c.After(-1, func() {})
}

func TestTimerStop(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		fired := false
		timer := c.At(5, func() { fired = true })
		if !timer.Stop() {
			t.Fatal("Stop returned false for pending timer")
		}
		if timer.Stop() {
			t.Fatal("second Stop returned true")
		}
		c.Run(0)
		if fired {
			t.Fatal("stopped timer fired")
		}
	})
}

func TestTimerStopAfterFire(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		timer := c.At(1, func() {})
		c.Run(0)
		if timer.Stop() {
			t.Fatal("Stop after fire returned true")
		}
	})
}

func TestStaleHandleAfterSlotReuse(t *testing.T) {
	// A handle to a fired event must stay dead even after its slab slot is
	// recycled for a new event: the generation counter, not the index,
	// carries identity.
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		old := c.At(1, func() {})
		c.Run(0)
		fired := false
		c.At(2, func() { fired = true }) // reuses the freed slot
		if old.Stop() {
			t.Fatal("stale handle cancelled a recycled slot")
		}
		c.Run(0)
		if !fired {
			t.Fatal("recycled event did not fire")
		}
	})
}

func TestRunHorizon(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		var fired []Time
		for _, at := range []Time{1, 2, 3, 4, 5} {
			at := at
			c.At(at, func() { fired = append(fired, at) })
		}
		n := c.Run(3)
		if n != 3 {
			t.Fatalf("Run(3) executed %d events, want 3", n)
		}
		if len(fired) != 3 || fired[2] != 3 {
			t.Fatalf("fired = %v", fired)
		}
		if c.Pending() != 2 {
			t.Fatalf("pending = %d, want 2", c.Pending())
		}
	})
}

func TestRunUntil(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		count := 0
		for i := 1; i <= 10; i++ {
			c.At(Time(i), func() { count++ })
		}
		ok := c.RunUntil(func() bool { return count >= 4 })
		if !ok {
			t.Fatal("RunUntil reported failure")
		}
		if count != 4 {
			t.Fatalf("count = %d, want 4", count)
		}
	})
}

func TestRunUntilExhausted(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		c.At(1, func() {})
		if c.RunUntil(func() bool { return false }) {
			t.Fatal("RunUntil true with unsatisfiable condition")
		}
	})
}

func TestAdvance(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		fired := false
		c.At(5, func() { fired = true })
		c.Advance(3)
		if fired || c.Now() != 3 {
			t.Fatalf("after Advance(3): fired=%v now=%v", fired, c.Now())
		}
		c.Advance(3)
		if !fired || c.Now() != 6 {
			t.Fatalf("after Advance(6): fired=%v now=%v", fired, c.Now())
		}
	})
}

func TestOpcodeDispatch(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		type call struct {
			op   uint8
			a, b int64
			at   Time
		}
		var got []call
		id := c.RegisterDispatcher(func(op uint8, a, b int64) {
			got = append(got, call{op, a, b, c.Now()})
		})
		c.AtOp(2, id, 7, 10, 20)
		c.AtOp(1, id, 3, 30, 40)
		c.Run(0)
		want := []call{{3, 30, 40, 1}, {7, 10, 20, 2}}
		if len(got) != len(want) {
			t.Fatalf("got %d calls, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("call %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}

func TestOpcodeCancel(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		fired := 0
		id := c.RegisterDispatcher(func(op uint8, a, b int64) { fired++ })
		h := c.AtOp(5, id, 1, 0, 0)
		c.AtOp(6, id, 2, 0, 0)
		if !c.Cancel(h) {
			t.Fatal("Cancel returned false for pending opcode event")
		}
		if c.Cancel(h) {
			t.Fatal("second Cancel returned true")
		}
		c.Run(0)
		if fired != 1 {
			t.Fatalf("fired = %d, want 1", fired)
		}
	})
}

func TestTimeString(t *testing.T) {
	if s := Time(65.5).String(); s != "01:05.500" {
		t.Errorf("Time(65.5) = %q", s)
	}
}

func TestTimeDuration(t *testing.T) {
	d := Time(1.5).Duration()
	if d.Seconds() != 1.5 {
		t.Errorf("duration %v != 1.5s", d)
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestQuickEventsFireInOrder(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		f := func(times []uint16) bool {
			c := mk()
			var fired []Time
			for _, raw := range times {
				at := Time(raw)
				c.At(at, func() { fired = append(fired, at) })
			}
			c.Run(0)
			if len(fired) != len(times) {
				return false
			}
			return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}

// Property: Now never decreases across any sequence of events.
func TestQuickMonotoneClock(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		f := func(times []uint16) bool {
			c := mk()
			last := Time(-1)
			ok := true
			for _, raw := range times {
				c.At(Time(raw), func() {
					if c.Now() < last {
						ok = false
					}
					last = c.Now()
				})
			}
			c.Run(0)
			return ok
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}

func TestAdvanceZeroIsBounded(t *testing.T) {
	// Regression: Advance(0) at time 0 must run events at exactly t=0 and
	// stop — it must not degenerate into an unbounded Run(0) when a
	// callback chain keeps scheduling future events (e.g. spot preemption
	// with automatic replacement).
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		var rearm func()
		fired := 0
		rearm = func() {
			fired++
			c.After(1, rearm) // self-renewing future event
		}
		c.At(0, rearm)
		c.At(0, func() { fired += 100 })
		c.Advance(0)
		if fired != 101 {
			t.Fatalf("fired = %d, want exactly the t=0 events", fired)
		}
		if c.Now() != 0 {
			t.Fatalf("now = %v", c.Now())
		}
		// The future chain is still pending, untouched.
		if c.Pending() == 0 {
			t.Fatal("future event dropped")
		}
	})
}
