package vclock

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// fireRec is one observed event firing: which event, and the exact
// virtual time it ran at.
type fireRec struct {
	tag int
	at  Time
}

// scriptResult captures everything observable about a script run:
// the full firing log plus the clock's final externally visible state.
type scriptResult struct {
	fires   []fireRec
	now     Time
	pending int
	seq     uint64
}

// digest folds a result into an FNV-1a hash over the exact float bits
// of every firing, so "bit-identical" is literal.
func (r scriptResult) digest() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	for _, f := range r.fires {
		mix(uint64(f.tag))
		mix(math.Float64bits(float64(f.at)))
	}
	mix(math.Float64bits(float64(r.now)))
	mix(uint64(r.pending))
	mix(r.seq)
	return h
}

// runScript interprets data as a deterministic kernel-exercise program
// against a fresh clock from mk. The byte stream decodes into triples
// (opcode byte, uint16 payload); the opcode space covers scheduling
// (near, same-tick, and far-future), opcode-dispatch scheduling,
// cancellation of both closure and opcode events, single steps, bounded
// Advance, horizon Run, and RunUntil — every public way to move the
// clock. Interpretation depends only on data, so running the same
// script on the wheel and heap kernels must produce bit-identical
// results; the differential and fuzz suites assert exactly that.
func runScript(mk func() *Clock, data []byte) scriptResult {
	c := mk()
	var fires []fireRec
	var timers []Timer
	var ophs []Handle
	nextTag := 0
	const maxFires = 1 << 15
	id := c.RegisterDispatcher(func(op uint8, a, b int64) {
		fires = append(fires, fireRec{tag: int(a), at: c.Now()})
	})
	schedule := func(delay float64, spawn bool) {
		tag := nextTag
		nextTag++
		at := c.Now() + Time(delay)
		timers = append(timers, c.At(at, func() {
			fires = append(fires, fireRec{tag, c.Now()})
			if spawn && len(fires) < maxFires {
				child := nextTag
				nextTag++
				// Child delay derives from the tag, so it is identical
				// across kernels; child%3==0 lands in the same tick.
				c.At(c.Now()+Time(child%3)*0.0004, func() {
					fires = append(fires, fireRec{child, c.Now()})
				})
			}
		}))
	}
	for len(data) >= 3 {
		op, arg := data[0], binary.LittleEndian.Uint16(data[1:3])
		data = data[3:]
		switch op % 8 {
		case 0: // schedule a closure event within ~2 minutes
			schedule(float64(arg)/512, false)
		case 1: // schedule a spawning closure event (fires schedule more)
			schedule(float64(arg)/512, true)
		case 2: // schedule an opcode event; also exercises far-future when arg is large
			tag := nextTag
			nextTag++
			ophs = append(ophs, c.AtOp(c.Now()+Time(arg)*0.03, id, 1, int64(tag), 0))
		case 3: // schedule far in the future: high wheel levels / overflow
			schedule(float64(arg)*97.0, false)
		case 4: // cancel a closure timer
			if len(timers) > 0 {
				timers[int(arg)%len(timers)].Stop()
			}
		case 5: // cancel an opcode event via its raw handle
			if len(ophs) > 0 {
				c.Cancel(ophs[int(arg)%len(ophs)])
			}
		case 6: // advance a bounded window
			c.Advance(float64(arg) / 256)
		case 7: // mixed drains: step, horizon run, or RunUntil a fire quota
			switch arg % 3 {
			case 0:
				c.Step()
			case 1:
				c.Run(c.Now() + Time(arg)/128)
			default:
				target := len(fires) + int(arg%5)
				c.RunUntil(func() bool { return len(fires) >= target })
			}
		}
		if len(fires) > maxFires {
			break
		}
	}
	c.Run(0) // drain everything still pending
	return scriptResult{fires: fires, now: c.Now(), pending: c.Pending(), seq: c.Seq()}
}

// diffScripts runs one script on both kernels and reports the first
// divergence, if any.
func diffScripts(t *testing.T, data []byte) {
	t.Helper()
	w := runScript(New, data)
	h := runScript(NewHeap, data)
	if w.digest() != h.digest() {
		if len(w.fires) != len(h.fires) {
			t.Fatalf("kernel divergence: wheel fired %d events, heap %d", len(w.fires), len(h.fires))
		}
		for i := range w.fires {
			if w.fires[i] != h.fires[i] {
				t.Fatalf("kernel divergence at firing %d: wheel %+v, heap %+v", i, w.fires[i], h.fires[i])
			}
		}
		t.Fatalf("kernel divergence in final state: wheel{now=%v pending=%d seq=%d} heap{now=%v pending=%d seq=%d}",
			w.now, w.pending, w.seq, h.now, h.pending, h.seq)
	}
}

// TestKernelDifferentialRandomScripts drives both kernels through
// randomized schedule/cancel/advance scripts and requires bit-identical
// firing logs, final time, and pending counts.
func TestKernelDifferentialRandomScripts(t *testing.T) {
	f := func(data []byte) bool {
		w := runScript(New, data)
		h := runScript(NewHeap, data)
		return w.digest() == h.digest()
	}
	cfg := &quick.Config{MaxCount: 300}
	if testing.Short() {
		cfg.MaxCount = 60
	}
	if err := quick.Check(f, cfg); err != nil {
		if ce, ok := err.(*quick.CheckError); ok && len(ce.In) == 1 {
			if data, ok := ce.In[0].([]byte); ok {
				diffScripts(t, data) // re-run for a precise divergence report
			}
		}
		t.Fatal(err)
	}
}

// TestSameTickFIFOAcrossCascade schedules interleaved batches at equal
// far-future times so the wheel must carry them through multiple
// cascade levels, and asserts both kernels fire every equal-time batch
// in exact schedule order.
func TestSameTickFIFOAcrossCascade(t *testing.T) {
	// 5000s → tick ≈ 5.2e9: level-5 insertion, cascading through every
	// level before firing. 5000+2^-21 s shares the quantized tick but has
	// a strictly larger float time, so it must fire after all 5000.0
	// events despite bucket interleaving.
	times := []Time{5000, 5000 + Time(math.Exp2(-21)), 71, 5000, 71, 5000 + Time(math.Exp2(-21))}
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		var got []int
		type key struct {
			at  Time
			seq int
		}
		var want []key
		for i, at := range times {
			i := i
			c.At(at, func() { got = append(got, i) })
			want = append(want, key{at, i})
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		c.Run(0)
		for i := range want {
			if got[i] != want[i].seq {
				t.Fatalf("fire order %v violates (time, schedule) order %v", got, want)
			}
		}
	})
}

// TestSameTickFIFOAcrossRunUntil stops mid-way through a batch of
// simultaneous events via RunUntil, schedules more events at that same
// instant, and requires the combined batch to still fire in global
// schedule order on both kernels.
func TestSameTickFIFOAcrossRunUntil(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		c := mk()
		var got []int
		for i := 0; i < 6; i++ {
			i := i
			c.At(9, func() { got = append(got, i) })
		}
		if !c.RunUntil(func() bool { return len(got) >= 3 }) {
			t.Fatal("RunUntil did not reach quota")
		}
		if c.Now() != 9 {
			t.Fatalf("paused at %v, want 9", c.Now())
		}
		// Late arrivals at the current instant must fire after the
		// original batch: larger sequence numbers, same time.
		for i := 6; i < 9; i++ {
			i := i
			c.At(9, func() { got = append(got, i) })
		}
		c.Run(0)
		for i, v := range got {
			if v != i {
				t.Fatalf("combined batch out of schedule order: %v", got)
			}
		}
	})
}

// TestQuickSameTickFIFO is the property form: events bucketed onto a
// handful of distinct times must fire time-sorted and FIFO within each
// time, on both kernels.
func TestQuickSameTickFIFO(t *testing.T) {
	perKernel(t, func(t *testing.T, mk func() *Clock) {
		f := func(raws []uint16) bool {
			c := mk()
			var got []int
			type key struct {
				at  Time
				idx int
			}
			var want []key
			for i, raw := range raws {
				i := i
				// Collapse onto 8 distinct times spread across wheel levels.
				at := Time(raw%8) * 613.7
				c.At(at, func() { got = append(got, i) })
				want = append(want, key{at, i})
			}
			sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
			c.Run(0)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i].idx {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}

// TestOverflowCascade parks events beyond the wheel span and checks the
// overflow pull preserves global order, including interleaved cancels.
func TestOverflowCascade(t *testing.T) {
	c := New()
	var got []Time
	record := func(at Time) func() { return func() { got = append(got, at) } }
	// Wheel span is 64^6 ticks = 2^36/2^20 s = 65536 s; these are beyond.
	far := []Time{2_000_000, 1_000_000, 3_000_000}
	var timers []Timer
	for _, at := range far {
		timers = append(timers, c.At(at, record(at)))
	}
	c.At(5, record(5))
	timers[2].Stop() // cancel the farthest while parked in overflow
	c.Run(0)
	want := []Time{5, 1_000_000, 2_000_000}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after drain", c.Pending())
	}
}
