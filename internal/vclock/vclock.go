// Package vclock implements a deterministic discrete-event simulation
// kernel with a virtual clock.
//
// RubberBand's end-to-end experiments execute the real control plane —
// scheduler, placement controller, cluster manager — against a simulated
// cloud. Package vclock supplies the time substrate: an event queue
// ordered by (time, sequence) so that ties break deterministically in
// scheduling order, and a Run loop that advances virtual time to each
// event.
//
// Two interchangeable kernels implement the queue. New returns the
// production kernel, a hierarchical timer wheel with O(1) schedule and
// cancel, sized for fleet-scale runs holding millions of concurrent
// events. NewHeap returns the original binary-heap kernel, kept as the
// executable reference implementation: the differential kernel suite
// runs every scenario on both and requires bit-identical behaviour.
// Both kernels fire events in exactly (time, sequence) order, so a
// program observes no difference beyond speed.
//
// Events are stored in a slab indexed by small integer handles; firing
// an event performs no heap allocation. Callbacks come in two forms:
// closures (At, After) for control-plane convenience, and pre-resolved
// opcode dispatch (RegisterDispatcher, AtOp) for hot loops that must
// not allocate per event — the dag.Program compilation pattern applied
// to event scheduling.
//
// Virtual time is expressed in float64 seconds. The kernel is
// single-threaded by design: callbacks run on the caller's goroutine,
// and all state they touch needs no locking.
package vclock

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration converts t to a time.Duration for presentation at package
// boundaries.
func (t Time) Duration() time.Duration {
	return time.Duration(float64(t) * float64(time.Second))
}

// String formats the time as mm:ss.mmm for logs.
func (t Time) String() string {
	total := float64(t)
	m := int(total) / 60
	s := total - float64(m*60)
	return fmt.Sprintf("%02d:%06.3f", m, s)
}

// Event lifecycle states within the slab.
const (
	stateFree    uint8 = iota // slot on the free list
	statePending              // scheduled, not yet fired or cancelled
	stateDead                 // cancelled, awaiting lazy reclaim (wheel)
)

// Queue-location tags (wheel kernel bookkeeping).
const (
	whereNone   uint8 = iota
	whereBucket       // linked into a wheel bucket
	whereReady        // in the current-tick ready heap
	whereOver         // parked on the overflow list
)

// event is one slab slot: a scheduled callback plus the intrusive
// linkage both kernels use to order it. Slots are reused through a free
// list; gen increments on every release so stale handles cannot cancel
// a recycled slot.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func() // closure payload (nil for opcode events)
	a,
	b int64 // opcode arguments
	next    int32  // bucket chain / free-list link (-1 end)
	prev    int32  // bucket back-link for O(1) unlink (-1 head)
	pos     int32  // heap position (heap kernel)
	disp    int32  // dispatcher id (-1 for closure events)
	gen     uint32 // handle generation, bumped on release
	slotRef uint16 // wheel bucket address: level*64+slot
	op      uint8  // opcode
	state   uint8
	where   uint8
}

// queue is the kernel contract: order pending slab events by (at, seq).
// next may mutate internal structure (cascade wheel levels, reclaim
// cancelled slots) but never observable ordering.
type queue interface {
	// push inserts a freshly scheduled pending event.
	push(idx int32)
	// next returns the earliest pending event, or -1 when none remain.
	next() int32
	// pop removes the event just returned by next (it is about to fire).
	pop(idx int32)
	// cancel removes a pending event; the slot may be reclaimed lazily.
	cancel(idx int32)
}

// Handle identifies a scheduled event without allocating. The zero
// Handle is invalid. Handles stay safe across slot reuse: cancelling a
// fired or already-cancelled event is a no-op returning false.
type Handle struct {
	ref int32 // slab index + 1; 0 = no event
	gen uint32
}

// Valid reports whether h refers to some scheduled event (it may have
// fired since).
func (h Handle) Valid() bool { return h.ref != 0 }

// Timer is a handle to a scheduled event; Stop cancels it.
type Timer struct {
	c *Clock
	h Handle
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was still pending.
func (t Timer) Stop() bool {
	if t.c == nil {
		return false
	}
	return t.c.Cancel(t.h)
}

// Dispatcher is a pre-resolved opcode handler. Hot loops register one
// dispatcher up front and schedule (opcode, args) events through AtOp;
// firing such an event allocates nothing — no closure, no boxing.
type Dispatcher func(op uint8, a, b int64)

// DispatchID names a registered dispatcher on one clock.
type DispatchID int32

// Clock is a virtual clock with an event queue. The zero value is ready
// to use at time 0 (it lazily initializes the default wheel kernel).
type Clock struct {
	now     Time
	seq     uint64
	pending int
	events  []event
	free    int32 // free-list head (-1 none)
	disp    []Dispatcher
	q       queue
}

// New returns a Clock at virtual time zero backed by the hierarchical
// timer-wheel kernel.
func New() *Clock {
	c := &Clock{}
	c.ensure()
	return c
}

// NewHeap returns a Clock backed by the binary-heap reference kernel.
// It is bit-identical in behaviour to New's wheel kernel and exists so
// differential tests can hold the wheel to the simpler implementation.
func NewHeap() *Clock {
	c := &Clock{free: -1}
	c.q = newHeapQueue(c)
	return c
}

// ensure lazily initializes the default kernel so the zero Clock works.
func (c *Clock) ensure() {
	if c.q == nil {
		c.free = -1
		c.q = newWheelQueue(c)
	}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Seq returns the number of events ever scheduled on the clock — its
// scheduling cursor. Two identical runs have equal Seq at equal points,
// so control-plane snapshots capture it as part of the clock state.
func (c *Clock) Seq() uint64 { return c.seq }

// Pending returns the number of events still queued.
func (c *Clock) Pending() int { return c.pending }

// RegisterDispatcher adds d to the clock's dispatch table and returns
// its id for use with AtOp. Several components (one per executor job,
// say) can register independently on a shared clock.
func (c *Clock) RegisterDispatcher(d Dispatcher) DispatchID {
	c.ensure()
	c.disp = append(c.disp, d)
	return DispatchID(len(c.disp) - 1)
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics — it would mean causality violation in the
// simulation.
func (c *Clock) At(at Time, fn func()) Timer {
	h := c.schedule(at, fn, -1, 0, 0, 0)
	return Timer{c: c, h: h}
}

// After schedules fn to run d seconds after the current time. Negative d
// panics.
func (c *Clock) After(d float64, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative delay %v", d))
	}
	return c.At(c.now+Time(d), fn)
}

// AtOp schedules an opcode event at absolute virtual time at: when it
// fires, the registered dispatcher id receives (op, a, b). Unlike At,
// AtOp allocates nothing — it is the scheduling half of the zero-alloc
// dispatch path.
//
//rbvet:noalloc
func (c *Clock) AtOp(at Time, id DispatchID, op uint8, a, b int64) Handle {
	return c.schedule(at, nil, int32(id), op, a, b)
}

// schedule validates, claims a slab slot, and enqueues.
func (c *Clock) schedule(at Time, fn func(), disp int32, op uint8, a, b int64) Handle {
	c.ensure()
	if at < c.now {
		panic(fmt.Sprintf("vclock: scheduling at %v before now %v", at, c.now))
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		panic(fmt.Sprintf("vclock: invalid time %v", at))
	}
	idx := c.alloc()
	e := &c.events[idx]
	e.at, e.seq = at, c.seq
	e.fn, e.disp, e.op, e.a, e.b = fn, disp, op, a, b
	e.next, e.prev, e.pos = -1, -1, -1
	e.state, e.where = statePending, whereNone
	c.seq++
	c.pending++
	c.q.push(idx)
	return Handle{ref: idx + 1, gen: e.gen}
}

// alloc claims a slab slot from the free list, growing the slab when it
// is exhausted.
func (c *Clock) alloc() int32 {
	if c.free >= 0 {
		idx := c.free
		c.free = c.events[idx].next
		return idx
	}
	return c.grow()
}

// grow appends a fresh slab slot. Kept out of alloc so the steady-state
// schedule path stays allocation-free once the slab has warmed up.
func (c *Clock) grow() int32 {
	c.events = append(c.events, event{})
	return int32(len(c.events) - 1)
}

// release returns a slot to the free list and invalidates handles to it.
func (c *Clock) release(idx int32) {
	e := &c.events[idx]
	e.fn = nil
	e.state = stateFree
	e.where = whereNone
	e.gen++
	e.next = c.free
	c.free = idx
}

// Cancel cancels the event h refers to if it is still pending. It
// reports whether the event was cancelled. O(1) on the wheel kernel.
//
//rbvet:noalloc
func (c *Clock) Cancel(h Handle) bool {
	idx := h.ref - 1
	if idx < 0 || int(idx) >= len(c.events) {
		return false
	}
	e := &c.events[idx]
	if e.state != statePending || e.gen != h.gen {
		return false
	}
	c.pending--
	c.q.cancel(idx)
	return true
}

// Step pops and executes the earliest event, advancing Now to its time.
// It reports whether an event was executed.
//
//rbvet:noalloc
func (c *Clock) Step() bool {
	if c.q == nil {
		return false
	}
	idx := c.q.next()
	if idx < 0 {
		return false
	}
	c.q.pop(idx)
	e := &c.events[idx]
	c.now = e.at
	fn, disp, op, a, b := e.fn, e.disp, e.op, e.a, e.b
	c.release(idx)
	c.pending--
	if disp >= 0 {
		c.disp[disp](op, a, b)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue drains or until virtual time would
// exceed horizon (events at exactly horizon still run). It returns the
// number of events executed. A non-positive horizon means no limit.
//
//rbvet:noalloc
func (c *Clock) Run(horizon Time) int {
	if c.q == nil {
		return 0
	}
	n := 0
	for {
		idx := c.q.next()
		if idx < 0 {
			break
		}
		if horizon > 0 && c.events[idx].at > horizon {
			break
		}
		c.Step()
		n++
	}
	return n
}

// RunUntil executes events while cond() remains false, stopping as soon
// as cond() turns true (checked after each event) or the queue drains.
// It reports whether cond was satisfied.
func (c *Clock) RunUntil(cond func() bool) bool {
	if cond() {
		return true
	}
	for c.Step() {
		if cond() {
			return true
		}
	}
	return cond()
}

// Advance moves the clock forward by d seconds, executing any events
// that fall within the window (including events at exactly the current
// time when d is 0). It panics on negative d. Unlike Run, Advance is
// always bounded — even at a target of 0 — so it is safe against
// self-renewing event chains such as spot preemption with automatic
// replacement.
func (c *Clock) Advance(d float64) {
	if d < 0 {
		panic("vclock: Advance with negative duration")
	}
	target := c.now + Time(d)
	if c.q != nil {
		for {
			idx := c.q.next()
			if idx < 0 || c.events[idx].at > target {
				break
			}
			c.Step()
		}
	}
	if c.now < target {
		c.now = target
	}
}
