// Package vclock implements a deterministic discrete-event simulation
// kernel with a virtual clock.
//
// RubberBand's end-to-end experiments execute the real control plane —
// scheduler, placement controller, cluster manager — against a simulated
// cloud. Package vclock supplies the time substrate: an event heap ordered
// by (time, sequence) so that ties break deterministically in scheduling
// order, and a Run loop that advances virtual time to each event.
//
// Virtual time is expressed in float64 seconds. The kernel is
// single-threaded by design: callbacks run on the caller's goroutine, and
// all state they touch needs no locking.
package vclock

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration converts t to a time.Duration for presentation at package
// boundaries.
func (t Time) Duration() time.Duration {
	return time.Duration(float64(t) * float64(time.Second))
}

// String formats the time as mm:ss.mmm for logs.
func (t Time) String() string {
	total := float64(t)
	m := int(total) / 60
	s := total - float64(m*60)
	return fmt.Sprintf("%02d:%06.3f", m, s)
}

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	fn   func()
	done bool // cancelled
	idx  int  // heap index
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event; Stop cancels it.
type Timer struct {
	c *Clock
	e *event
}

// Stop cancels the timer if it has not fired. It reports whether the timer
// was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.done || t.e.idx < 0 {
		return false
	}
	t.e.done = true
	heap.Remove(&t.c.events, t.e.idx)
	return true
}

// Clock is a virtual clock with an event queue. The zero value is ready to
// use at time 0.
type Clock struct {
	now    Time
	events eventHeap
	seq    uint64
}

// New returns a Clock at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Seq returns the number of events ever scheduled on the clock — its
// scheduling cursor. Two identical runs have equal Seq at equal points,
// so control-plane snapshots capture it as part of the clock state.
func (c *Clock) Seq() uint64 { return c.seq }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) panics — it would mean causality violation in the simulation.
func (c *Clock) At(at Time, fn func()) *Timer {
	if at < c.now {
		panic(fmt.Sprintf("vclock: scheduling at %v before now %v", at, c.now))
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		panic(fmt.Sprintf("vclock: invalid time %v", at))
	}
	e := &event{at: at, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, e)
	return &Timer{c: c, e: e}
}

// After schedules fn to run d seconds after the current time. Negative d
// panics.
func (c *Clock) After(d float64, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative delay %v", d))
	}
	return c.At(c.now+Time(d), fn)
}

// Pending returns the number of events still queued.
func (c *Clock) Pending() int { return len(c.events) }

// Step pops and executes the earliest event, advancing Now to its time. It
// reports whether an event was executed.
//
//rbvet:noalloc
func (c *Clock) Step() bool {
	for len(c.events) > 0 {
		e := heap.Pop(&c.events).(*event)
		if e.done {
			continue
		}
		c.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or until virtual time would
// exceed horizon (events at exactly horizon still run). It returns the
// number of events executed. A non-positive horizon means no limit.
//
//rbvet:noalloc
func (c *Clock) Run(horizon Time) int {
	n := 0
	for len(c.events) > 0 {
		next := c.events[0]
		if next.done {
			heap.Pop(&c.events)
			continue
		}
		if horizon > 0 && next.at > horizon {
			break
		}
		c.Step()
		n++
	}
	return n
}

// RunUntil executes events while cond() remains false, stopping as soon as
// cond() turns true (checked after each event) or the queue drains. It
// reports whether cond was satisfied.
func (c *Clock) RunUntil(cond func() bool) bool {
	if cond() {
		return true
	}
	for c.Step() {
		if cond() {
			return true
		}
	}
	return cond()
}

// Advance moves the clock forward by d seconds, executing any events that
// fall within the window (including events at exactly the current time
// when d is 0). It panics on negative d. Unlike Run, Advance is always
// bounded — even at a target of 0 — so it is safe against self-renewing
// event chains such as spot preemption with automatic replacement.
func (c *Clock) Advance(d float64) {
	if d < 0 {
		panic("vclock: Advance with negative duration")
	}
	target := c.now + Time(d)
	for len(c.events) > 0 {
		next := c.events[0]
		if next.done {
			heap.Pop(&c.events)
			continue
		}
		if next.at > target {
			break
		}
		c.Step()
	}
	if c.now < target {
		c.now = target
	}
}
