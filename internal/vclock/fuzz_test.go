package vclock

import "testing"

// FuzzKernelEquivalence feeds random kernel-exercise scripts (see
// runScript) to the wheel and heap kernels and fails on any observable
// divergence: firing order, exact firing times, final clock state. The
// heap kernel is the oracle — it is simple enough to trust by
// inspection, so every behaviour the fuzzer locks in transfers to the
// wheel.
func FuzzKernelEquivalence(f *testing.F) {
	// Seeds cover each opcode family: plain and spawning schedules,
	// opcode dispatch, far-future overflow, cancels of both event kinds,
	// advance windows, and the three drain modes.
	f.Add([]byte{0, 10, 0, 0, 20, 0, 7, 0, 0})
	f.Add([]byte{1, 1, 0, 1, 1, 0, 4, 0, 0, 7, 2, 0})
	f.Add([]byte{2, 0xff, 0xff, 2, 1, 0, 5, 0, 0, 6, 0xff, 0})
	f.Add([]byte{3, 0xff, 0xff, 3, 1, 0, 0, 5, 0, 4, 1, 0, 7, 1, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 7, 2, 0, 0, 0, 0})
	f.Add([]byte{6, 64, 0, 2, 3, 0, 1, 9, 0, 5, 1, 0, 6, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return // bound per-input work; long scripts add no new structure
		}
		diffScripts(t, data)
	})
}
