// Package asha implements Asynchronous Successive Halving (ASHA, Li et
// al. 2018) — the prior-work baseline the paper contrasts RubberBand
// against (§7). ASHA runs on a fixed-size cluster with no stage
// synchronization barriers: whenever a worker frees up, it either
// promotes a trial that sits in the top 1/η of its rung, or — and this is
// the behaviour the paper criticizes under a time constraint — samples a
// brand-new configuration. The cluster never shrinks, so late in the run
// most workers are evaluating fresh configurations that cannot finish
// before the deadline.
//
// The implementation drives the same simulated substrate as the
// RubberBand executor (virtual clock, provider billing, model learning
// curves), so costs and accuracies are directly comparable.
package asha

import (
	"fmt"
	"sort"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// Config parameterizes one ASHA run.
type Config struct {
	// Model and Batch define the training workload.
	Model *model.Model
	Batch int
	// Space samples new configurations on demand.
	Space *searchspace.Space
	// MinIters (r), MaxIters (R) and Eta (η) define the rung ladder:
	// rung k completes at r·η^k cumulative iterations, capped at R.
	MinIters, MaxIters, Eta int
	// Workers is the fixed number of single-GPU evaluation slots.
	Workers int
	// Deadline is the wall-clock budget in seconds; no new work starts
	// after it passes, and in-flight chunks are abandoned.
	Deadline float64
	// Substrate.
	Provider *cloud.Provider
	Cluster  *cluster.Manager
	Clock    *vclock.Clock
	RNG      *stats.RNG
}

func (c *Config) validate() error {
	switch {
	case c.Model == nil || c.Space == nil:
		return fmt.Errorf("asha: nil model or space")
	case c.Provider == nil || c.Cluster == nil || c.Clock == nil || c.RNG == nil:
		return fmt.Errorf("asha: nil substrate component")
	case c.Batch < 1:
		return fmt.Errorf("asha: batch %d", c.Batch)
	case c.MinIters < 1 || c.MaxIters < c.MinIters:
		return fmt.Errorf("asha: bad rung budgets r=%d R=%d", c.MinIters, c.MaxIters)
	case c.Eta < 2:
		return fmt.Errorf("asha: eta %d", c.Eta)
	case c.Workers < 1:
		return fmt.Errorf("asha: %d workers", c.Workers)
	case c.Deadline <= 0:
		return fmt.Errorf("asha: deadline %v", c.Deadline)
	}
	return nil
}

// Result summarizes an ASHA run.
type Result struct {
	// JCT is the realized wall-clock duration (== deadline unless the
	// ladder completed early).
	JCT float64
	// Cost is the total billed cost of the fixed cluster.
	Cost float64
	// BestAccuracy and BestConfig describe the highest-rung, highest-
	// accuracy configuration observed.
	BestAccuracy float64
	BestConfig   searchspace.Config
	// Sampled counts configurations drawn; Promotions counts rung
	// advancements; Finished counts trials that reached the top rung.
	Sampled    int
	Promotions int
	Finished   int
}

// rungTarget returns the cumulative iterations completing rung k.
func (c *Config) rungTarget(k int) int {
	t := c.MinIters
	for i := 0; i < k; i++ {
		t *= c.Eta
		if t >= c.MaxIters {
			return c.MaxIters
		}
	}
	return t
}

// topRung returns the highest rung index (whose target is MaxIters).
func (c *Config) topRung() int {
	k := 0
	for c.rungTarget(k) < c.MaxIters {
		k++
	}
	return k
}

// trialState tracks one sampled configuration.
type trialState struct {
	id       int
	config   searchspace.Config
	rung     int // highest completed rung, -1 if none
	cumIters int
	acc      float64 // last observed accuracy
	running  bool
}

// Run executes ASHA to the deadline on a fixed cluster and returns the
// outcome.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &runner{cfg: cfg, byRung: make(map[int][]*trialState)}

	gpn := cfg.Cluster.GPUsPerNode()
	nodes := (cfg.Workers + gpn - 1) / gpn
	cfg.Cluster.ScaleUpTo(nodes)
	cfg.Cluster.WhenSize(nodes, func() {
		for i := 0; i < cfg.Workers; i++ {
			r.slotNext()
		}
	})
	cfg.Clock.RunUntil(func() bool { return r.idle == cfg.Workers && r.started })
	cfg.Cluster.ReleaseAll()

	res := &Result{
		JCT:        float64(r.lastEvent),
		Cost:       cfg.Provider.TotalCost(cfg.Clock.Now()),
		Sampled:    len(r.trials),
		Promotions: r.promotions,
		Finished:   r.finished,
	}
	// Best = highest rung, then highest accuracy.
	bestRung := -1
	for _, t := range r.trials {
		if t.rung > bestRung || (t.rung == bestRung && t.acc > res.BestAccuracy) {
			bestRung = t.rung
			res.BestAccuracy = t.acc
			res.BestConfig = t.config
		}
	}
	return res, nil
}

// runner carries the run's mutable state.
type runner struct {
	cfg        Config
	trials     []*trialState
	byRung     map[int][]*trialState // completed trials per rung
	idle       int
	started    bool
	promotions int
	finished   int
	lastEvent  vclock.Time
}

// slotNext gives one free worker its next assignment, or parks it when
// the deadline has passed or the ladder is exhausted.
func (r *runner) slotNext() {
	r.started = true
	now := r.cfg.Clock.Now()
	if float64(now) >= r.cfg.Deadline {
		r.idle++
		return
	}
	t := r.nextJob()
	if t == nil {
		r.idle++
		return
	}
	r.runChunk(t)
}

// nextJob implements ASHA's scheduling rule: promote the best promotable
// trial from the highest possible rung; otherwise sample a new
// configuration (the fixed-cluster behaviour under critique).
func (r *runner) nextJob() *trialState {
	top := r.cfg.topRung()
	for k := top - 1; k >= 0; k-- {
		done := r.byRung[k]
		if len(done) < r.cfg.Eta {
			continue // too few completions to define a top 1/η
		}
		// Rank every completion of rung k (including trials that have
		// since advanced) by the accuracy observed there; a candidate is
		// promotable if it sits in the top 1/η and is still *at* rung k
		// (not running, not already advanced).
		sorted := append([]*trialState(nil), done...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].acc != sorted[j].acc {
				return sorted[i].acc > sorted[j].acc
			}
			return sorted[i].id < sorted[j].id
		})
		quota := len(done) / r.cfg.Eta
		for i := 0; i < quota; i++ {
			t := sorted[i]
			if t.rung == k && !t.running {
				r.promotions++
				return t
			}
		}
	}
	// Nothing promotable: sample a fresh configuration.
	t := &trialState{
		id:     len(r.trials),
		config: r.cfg.Space.Sample(r.cfg.RNG),
		rung:   -1,
	}
	r.trials = append(r.trials, t)
	return t
}

// runChunk trains t from its current progress to the next rung target on
// one GPU, then reports and frees the slot.
func (r *runner) runChunk(t *trialState) {
	t.running = true
	nextRung := t.rung + 1
	target := r.cfg.rungTarget(nextRung)
	iters := target - t.cumIters
	var dur float64
	dist := r.cfg.Model.IterLatencyDist(r.cfg.Batch, 1, 1)
	for i := 0; i < iters; i++ {
		dur += dist.Sample(r.cfg.RNG)
	}
	r.cfg.Clock.After(dur, func() {
		now := r.cfg.Clock.Now()
		if float64(now) > r.cfg.Deadline {
			// The deadline passed mid-chunk: the result is unusable and
			// the slot parks. (The cluster was billed regardless.)
			t.running = false
			r.lastEvent = now
			r.idle++
			return
		}
		t.running = false
		t.cumIters = target
		t.rung = nextRung
		t.acc = r.cfg.Model.ObserveAccuracy(t.config, t.cumIters, r.cfg.RNG)
		r.byRung[nextRung] = append(r.byRung[nextRung], t)
		if target >= r.cfg.MaxIters {
			r.finished++
		}
		r.lastEvent = now
		// Meter usage for per-function accounting parity.
		r.meterUsage(dur)
		r.slotNext()
	})
}

// meterUsage attributes one GPU-chunk of usage to the least-loaded node —
// ASHA's single-GPU trials make exact placement immaterial, but the
// provider's per-function meter should still see the work.
func (r *runner) meterUsage(gpuSeconds float64) {
	nodes := r.cfg.Cluster.Nodes()
	if len(nodes) == 0 {
		return
	}
	r.cfg.Provider.RecordUsage(nodes[0].Instance, gpuSeconds)
}
