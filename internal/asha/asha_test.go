package asha

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// harness builds the substrate for one ASHA run.
func harness(t *testing.T, seed uint64) (*cloud.Provider, *cluster.Manager, *vclock.Clock) {
	t.Helper()
	clock := vclock.New()
	pricing := cloud.DefaultPricing()
	pricing.MinChargeSeconds = 0
	ov := cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 2},
		InitLatency: stats.Deterministic{Value: 10},
	}
	provider, err := cloud.NewProvider(clock, stats.NewRNG(seed), pricing, ov, 0)
	if err != nil {
		t.Fatal(err)
	}
	it, err := cloud.DefaultCatalog().Lookup("p3.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := cluster.NewManager(provider, it, clock)
	if err != nil {
		t.Fatal(err)
	}
	return provider, mgr, clock
}

func baseConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	provider, mgr, clock := harness(t, seed)
	m := model.ResNet101()
	m.IterNoiseStd = 0.5
	return Config{
		Model:    m,
		Batch:    m.BaseBatch,
		Space:    searchspace.DefaultVisionSpace(),
		MinIters: 1,
		MaxIters: 9,
		Eta:      3,
		Workers:  8,
		Deadline: 1200,
		Provider: provider,
		Cluster:  mgr,
		Clock:    clock,
		RNG:      stats.NewRNG(seed),
	}
}

func TestValidation(t *testing.T) {
	good := baseConfig(t, 1)
	mutations := []func(*Config){
		func(c *Config) { c.Model = nil },
		func(c *Config) { c.Space = nil },
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.MinIters = 0 },
		func(c *Config) { c.MaxIters = 0 },
		func(c *Config) { c.Eta = 1 },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Deadline = 0 },
		func(c *Config) { c.Clock = nil },
	}
	for i, mutate := range mutations {
		bad := good
		mutate(&bad)
		if _, err := Run(bad); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRungLadder(t *testing.T) {
	c := Config{MinIters: 1, MaxIters: 9, Eta: 3}
	want := []int{1, 3, 9}
	for k, w := range want {
		if got := c.rungTarget(k); got != w {
			t.Errorf("rungTarget(%d) = %d, want %d", k, got, w)
		}
	}
	if c.topRung() != 2 {
		t.Errorf("topRung = %d, want 2", c.topRung())
	}
	// Targets clamp at R.
	c = Config{MinIters: 4, MaxIters: 10, Eta: 2}
	if got := c.rungTarget(2); got != 10 {
		t.Errorf("clamped rungTarget = %d, want 10", got)
	}
}

func TestRunCompletes(t *testing.T) {
	cfg := baseConfig(t, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 || res.JCT <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Sampled < cfg.Workers {
		t.Errorf("only %d configs sampled", res.Sampled)
	}
	if res.Promotions == 0 {
		t.Error("no promotions occurred")
	}
	if res.BestAccuracy <= 0 || res.BestConfig == nil {
		t.Error("no best configuration")
	}
	// The cluster is fully released afterwards.
	if cfg.Cluster.Size() != 0 {
		t.Errorf("%d nodes leaked", cfg.Cluster.Size())
	}
}

func TestKeepsSamplingNewConfigs(t *testing.T) {
	// The defining (and criticized) ASHA behaviour: the trial count
	// greatly exceeds what synchronous SHA would evaluate, because freed
	// workers keep drawing fresh configurations.
	cfg := baseConfig(t, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled < 3*cfg.Workers {
		t.Errorf("sampled %d configs; expected continuous sampling well beyond %d workers",
			res.Sampled, cfg.Workers)
	}
}

func TestDeadlineRespected(t *testing.T) {
	cfg := baseConfig(t, 4)
	cfg.Deadline = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Work stops shortly after the deadline: the overrun is bounded by
	// one chunk (here ≤ R iterations at ~36 s each).
	maxOverrun := float64(cfg.MaxIters) * 50
	if res.JCT > cfg.Deadline+maxOverrun {
		t.Errorf("JCT %v overran deadline %v by more than a chunk", res.JCT, cfg.Deadline)
	}
}

func TestLongerDeadlineImprovesBest(t *testing.T) {
	short := baseConfig(t, 5)
	short.Deadline = 250
	long := baseConfig(t, 5)
	long.Deadline = 2500
	a, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	if b.BestAccuracy < a.BestAccuracy {
		t.Errorf("longer deadline worsened best: %v -> %v", a.BestAccuracy, b.BestAccuracy)
	}
	if b.Cost <= a.Cost {
		t.Errorf("longer deadline not more expensive: %v vs %v", b.Cost, a.Cost)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(baseConfig(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Sampled != b.Sampled || a.BestAccuracy != b.BestAccuracy {
		t.Fatal("ASHA run not deterministic")
	}
}

func TestPromotionPrefersBetterTrials(t *testing.T) {
	// Any trial that reached the top rung must have been promotable at
	// every rung, i.e. its accuracy placed it in the top 1/η at the
	// time. Weak proxy check: finished trials' asymptotes are above the
	// median of all sampled configs.
	cfg := baseConfig(t, 7)
	cfg.Deadline = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished == 0 {
		t.Skip("no trial reached the top rung in budget")
	}
	// The top rung is only 9 cumulative epochs (τ = 14), so even an
	// ideal configuration observes ≈47% of its asymptote here.
	if res.BestAccuracy < 0.35 {
		t.Errorf("best accuracy %v suspiciously low for ResNet-101 ladder", res.BestAccuracy)
	}
}
