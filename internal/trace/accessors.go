package trace

import "sort"

// Oracle-facing event accessors: the chaos harness (internal/harness)
// checks system-wide invariants over recorded traces, and needs cheap,
// allocation-honest views of the event log without re-implementing
// filtering at every call site.

// Filter returns the recorded events of the given kind, in record order.
// Nil on a nil recorder.
func (r *Recorder) Filter(kind Kind) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, e := range r.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// ByTrial groups trial-scoped events (Trial >= 0) by trial ID, preserving
// record order within each trial. Events with Trial < 0 (stage- or
// cluster-scoped) are omitted. Nil on a nil recorder.
func (r *Recorder) ByTrial() map[int][]Event {
	if r == nil {
		return nil
	}
	out := make(map[int][]Event)
	for _, e := range r.events {
		if e.Trial < 0 {
			continue
		}
		out[e.Trial] = append(out[e.Trial], e)
	}
	return out
}

// Trials returns the sorted set of trial IDs that appear in the log.
func (r *Recorder) Trials() []int {
	byTrial := r.ByTrial()
	ids := make([]int, 0, len(byTrial))
	for id := range byTrial {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// CountTrial returns the number of events of the given kind recorded for
// one trial.
func (r *Recorder) CountTrial(kind Kind, trial int) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, e := range r.events {
		if e.Kind == kind && e.Trial == trial {
			n++
		}
	}
	return n
}
