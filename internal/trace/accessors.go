package trace

import "sort"

// Oracle-facing event accessors: the chaos harness (internal/harness)
// checks system-wide invariants over recorded traces, and needs cheap,
// allocation-honest views of the event log without re-implementing
// filtering at every call site. Filters scan single columns of the
// columnar log and materialize only the matching events.

// Filter returns the recorded events of the given kind, in record order.
// Nil on a nil recorder.
func (r *Recorder) Filter(kind Kind) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i, k := range r.kind {
		if k == kind {
			out = append(out, r.EventAt(i))
		}
	}
	return out
}

// ByTrial groups trial-scoped events (Trial >= 0) by trial ID, preserving
// record order within each trial. Events with Trial < 0 (stage- or
// cluster-scoped) are omitted. Nil on a nil recorder.
func (r *Recorder) ByTrial() map[int][]Event {
	if r == nil {
		return nil
	}
	out := make(map[int][]Event)
	for i, id := range r.trial {
		if id < 0 {
			continue
		}
		out[int(id)] = append(out[int(id)], r.EventAt(i))
	}
	return out
}

// Trials returns the sorted set of trial IDs that appear in the log.
func (r *Recorder) Trials() []int {
	byTrial := r.ByTrial()
	ids := make([]int, 0, len(byTrial))
	for id := range byTrial {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// CountTrial returns the number of events of the given kind recorded for
// one trial.
func (r *Recorder) CountTrial(kind Kind, trial int) int {
	if r == nil {
		return 0
	}
	n := 0
	for i, k := range r.kind {
		if k == kind && int(r.trial[i]) == trial {
			n++
		}
	}
	return n
}
