package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecordAndCount(t *testing.T) {
	r := New()
	r.Record(1, KindStageStart, 0, -1, "s0")
	r.Record(2, KindTrialIter, 0, 3, "")
	r.Record(3, KindTrialIter, 0, 4, "")
	if got := r.Count(KindTrialIter); got != 2 {
		t.Fatalf("Count = %d", got)
	}
	if got := r.Count(KindScaleUp); got != 0 {
		t.Fatalf("Count = %d", got)
	}
	ev := r.Events()
	if len(ev) != 3 || ev[0].Note != "s0" || ev[1].Trial != 3 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestEventsCopied(t *testing.T) {
	r := New()
	r.Record(1, KindStageStart, 0, -1, "")
	ev := r.Events()
	ev[0].Stage = 99
	if r.Events()[0].Stage != 0 {
		t.Fatal("Events exposed internal slice")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, KindStageStart, 0, 0, "")
	r.AddBusy(5)
	if r.BusyGPUSeconds() != 0 || r.Events() != nil || r.Count(KindStageStart) != 0 {
		t.Fatal("nil recorder not inert")
	}
}

func TestBusyAccounting(t *testing.T) {
	r := New()
	r.AddBusy(2.5)
	r.AddBusy(1.5)
	if r.BusyGPUSeconds() != 4 {
		t.Fatalf("busy = %v", r.BusyGPUSeconds())
	}
}

func TestWriteJSON(t *testing.T) {
	r := New()
	r.Record(1.5, KindCheckpoint, 2, 7, "ok")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Kind != KindCheckpoint || back[0].Trial != 7 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestWriteCSV(t *testing.T) {
	r := New()
	r.Record(1.25, KindTrialDone, 1, 2, "note,with,commas")
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv = %q", out)
	}
	if !strings.HasPrefix(lines[0], "at,kind") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.Contains(lines[1], `"note,with,commas"`) {
		t.Fatalf("note not quoted: %q", lines[1])
	}
}
