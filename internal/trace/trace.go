// Package trace records typed execution events and resource timelines
// during an experiment run, for post-hoc analysis (utilization, cost
// curves, Table 3-style schedules) and debugging.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/vclock"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the executor and cluster manager.
const (
	KindStageStart   Kind = "stage_start"
	KindStageEnd     Kind = "stage_end"
	KindTrialStart   Kind = "trial_start"
	KindTrialIter    Kind = "trial_iter"
	KindTrialPause   Kind = "trial_pause"
	KindTrialKill    Kind = "trial_kill"
	KindTrialDone    Kind = "trial_done"
	KindScaleUp      Kind = "scale_up"
	KindScaleDown    Kind = "scale_down"
	KindNodeReady    Kind = "node_ready"
	KindCheckpoint   Kind = "checkpoint"
	KindRestore      Kind = "restore"
	KindProfilePoint Kind = "profile_point"
	// KindDriftTrigger marks the replan controller's drift detector firing
	// (EWMA of observed-vs-predicted latency past its threshold, or a
	// preemption-initiated trigger). KindReplan marks the resulting replan
	// decision; its note carries the spliced plan and adoption outcome.
	KindDriftTrigger Kind = "drift_trigger"
	KindReplan       Kind = "replan"
)

// Event is one recorded occurrence.
type Event struct {
	At    vclock.Time `json:"at"`
	Kind  Kind        `json:"kind"`
	Stage int         `json:"stage"`
	Trial int         `json:"trial"`
	Note  string      `json:"note,omitempty"`
	// GPUs and Nodes carry the structured gang shape for events that
	// describe a placement (KindTrialStart): the trial's total GPU count
	// and the number of distinct nodes its workers span. Zero for events
	// recorded without placement information.
	GPUs  int `json:"gpus,omitempty"`
	Nodes int `json:"nodes,omitempty"`
}

// Recorder accumulates events and GPU-usage accounting. Events are
// stored column-wise (struct-of-arrays): fleet-scale runs record
// millions of events, and the digest and oracle passes that dominate
// read traffic scan one or two fields of every event — columnar layout
// keeps those scans inside a few contiguous arrays instead of striding
// over full structs. The zero value is ready to use; a nil *Recorder is
// also valid and discards everything, so callers need no nil checks.
type Recorder struct {
	at    []vclock.Time
	kind  []Kind
	stage []int32
	trial []int32
	note  []string
	gpus  []int32
	nodes []int32
	// busyGPUSeconds accumulates task-occupied GPU time, for utilization.
	busyGPUSeconds float64
	// observer, when non-nil, receives every event as it is recorded —
	// the write-ahead journaling hook.
	observer func(Event)
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// SetObserver registers fn to receive every subsequently recorded event,
// synchronously and in record order. The journal writer subscribes here
// so executor state transitions hit the write-ahead log as they happen.
// No-op on a nil recorder.
func (r *Recorder) SetObserver(fn func(Event)) {
	if r == nil {
		return
	}
	r.observer = fn
}

// add appends an event to every column and notifies the observer.
func (r *Recorder) add(e Event) {
	r.at = append(r.at, e.At)
	r.kind = append(r.kind, e.Kind)
	r.stage = append(r.stage, int32(e.Stage))
	r.trial = append(r.trial, int32(e.Trial))
	r.note = append(r.note, e.Note)
	r.gpus = append(r.gpus, int32(e.GPUs))
	r.nodes = append(r.nodes, int32(e.Nodes))
	if r.observer != nil {
		r.observer(e)
	}
}

// Record appends an event. No-op on a nil recorder.
func (r *Recorder) Record(at vclock.Time, kind Kind, stage, trial int, note string) {
	if r == nil {
		return
	}
	r.add(Event{At: at, Kind: kind, Stage: stage, Trial: trial, Note: note})
}

// RecordGang appends an event carrying a structured gang shape (total
// GPUs and distinct node count), for oracle-facing consumers that must
// not parse free-form notes. No-op on a nil recorder.
func (r *Recorder) RecordGang(at vclock.Time, kind Kind, stage, trial, gpus, nodes int, note string) {
	if r == nil {
		return
	}
	r.add(Event{
		At: at, Kind: kind, Stage: stage, Trial: trial,
		Note: note, GPUs: gpus, Nodes: nodes,
	})
}

// AddBusy accumulates gpuSeconds of productive GPU time.
func (r *Recorder) AddBusy(gpuSeconds float64) {
	if r == nil {
		return
	}
	r.busyGPUSeconds += gpuSeconds
}

// BusyGPUSeconds returns the accumulated productive GPU time. Zero on nil.
func (r *Recorder) BusyGPUSeconds() float64 {
	if r == nil {
		return 0
	}
	return r.busyGPUSeconds
}

// Len returns the number of recorded events. Zero on a nil recorder.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.at)
}

// EventAt materializes event i (in record order) from the columns.
func (r *Recorder) EventAt(i int) Event {
	return Event{
		At:    r.at[i],
		Kind:  r.kind[i],
		Stage: int(r.stage[i]),
		Trial: int(r.trial[i]),
		Note:  r.note[i],
		GPUs:  int(r.gpus[i]),
		Nodes: int(r.nodes[i]),
	}
}

// Events returns a copy of the recorded events in order. Nil on a nil
// recorder. Scans should prefer Len/EventAt (or the accessors), which
// avoid materializing the whole log.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, r.Len())
	for i := range out {
		out[i] = r.EventAt(i)
	}
	return out
}

// Count returns the number of events with the given kind.
func (r *Recorder) Count(kind Kind) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, k := range r.kind {
		if k == kind {
			n++
		}
	}
	return n
}

// WriteJSON streams the events as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Events())
}

// WriteCSV streams the events as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at,kind,stage,trial,note"); err != nil {
		return err
	}
	for i := 0; i < r.Len(); i++ {
		e := r.EventAt(i)
		if _, err := fmt.Fprintf(w, "%.3f,%s,%d,%d,%q\n",
			float64(e.At), e.Kind, e.Stage, e.Trial, e.Note); err != nil {
			return err
		}
	}
	return nil
}
