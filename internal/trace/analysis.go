package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/vclock"
)

// StageSummary aggregates the events of one stage.
type StageSummary struct {
	Stage      int
	Start, End vclock.Time
	// TrialStarts counts trial (re)starts, Restores checkpoint
	// restores, Kills terminations at the stage's barrier.
	TrialStarts int
	Restores    int
	Kills       int
	// Iterations counts recorded training iterations.
	Iterations int
}

// Duration returns the stage's wall-clock span.
func (s StageSummary) Duration() float64 { return float64(s.End - s.Start) }

// StageBreakdown reconstructs per-stage summaries from an event log. It
// returns stages in order; events outside any stage_start/stage_end pair
// are attributed to the stage index they carry.
func StageBreakdown(events []Event) []StageSummary {
	byStage := make(map[int]*StageSummary)
	get := func(stage int) *StageSummary {
		s, ok := byStage[stage]
		if !ok {
			s = &StageSummary{Stage: stage}
			byStage[stage] = s
		}
		return s
	}
	for _, e := range events {
		s := get(e.Stage)
		switch e.Kind {
		case KindStageStart:
			s.Start = e.At
		case KindStageEnd:
			s.End = e.At
		case KindTrialStart:
			s.TrialStarts++
		case KindRestore:
			s.Restores++
		case KindTrialKill:
			s.Kills++
		case KindTrialIter:
			s.Iterations++
		}
	}
	out := make([]StageSummary, 0, len(byStage))
	for _, s := range byStage {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// TrialSpan is one trial's activity window within a stage, for Gantt-style
// visualization.
type TrialSpan struct {
	Trial      int
	Stage      int
	Start, End vclock.Time
}

// TrialSpans extracts per-trial, per-stage activity windows: from the
// trial's (re)start to its stage completion (or kill). Trials restarted
// within a stage (preemption recovery) contribute multiple spans.
func TrialSpans(events []Event) []TrialSpan {
	var spans []TrialSpan
	open := make(map[[2]int]vclock.Time) // (trial, stage) -> start
	for _, e := range events {
		key := [2]int{e.Trial, e.Stage}
		switch e.Kind {
		case KindTrialStart:
			open[key] = e.At
		case KindTrialDone, KindTrialPause, KindTrialKill:
			if start, ok := open[key]; ok {
				spans = append(spans, TrialSpan{Trial: e.Trial, Stage: e.Stage, Start: start, End: e.At})
				delete(open, key)
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Trial < spans[j].Trial
	})
	return spans
}

// WriteGanttCSV emits trial spans as CSV (trial, stage, start, end) for
// external plotting.
func WriteGanttCSV(w io.Writer, spans []TrialSpan) error {
	if _, err := fmt.Fprintln(w, "trial,stage,start,end"); err != nil {
		return err
	}
	for _, s := range spans {
		if _, err := fmt.Fprintf(w, "%d,%d,%.3f,%.3f\n",
			s.Trial, s.Stage, float64(s.Start), float64(s.End)); err != nil {
			return err
		}
	}
	return nil
}
