package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{At: 0, Kind: KindStageStart, Stage: 0, Trial: -1},
		{At: 0, Kind: KindTrialStart, Stage: 0, Trial: 0},
		{At: 0, Kind: KindTrialStart, Stage: 0, Trial: 1},
		{At: 5, Kind: KindTrialIter, Stage: 0, Trial: 0},
		{At: 6, Kind: KindTrialIter, Stage: 0, Trial: 1},
		{At: 10, Kind: KindTrialDone, Stage: 0, Trial: 0},
		{At: 12, Kind: KindTrialDone, Stage: 0, Trial: 1},
		{At: 12, Kind: KindTrialKill, Stage: 0, Trial: 1},
		{At: 12, Kind: KindStageEnd, Stage: 0, Trial: -1},
		{At: 12, Kind: KindStageStart, Stage: 1, Trial: -1},
		{At: 13, Kind: KindRestore, Stage: 1, Trial: 0},
		{At: 13, Kind: KindTrialStart, Stage: 1, Trial: 0},
		{At: 30, Kind: KindTrialDone, Stage: 1, Trial: 0},
		{At: 30, Kind: KindStageEnd, Stage: 1, Trial: -1},
	}
}

func TestStageBreakdown(t *testing.T) {
	stages := StageBreakdown(sampleEvents())
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
	s0 := stages[0]
	if s0.Stage != 0 || s0.Duration() != 12 {
		t.Errorf("stage 0 = %+v", s0)
	}
	if s0.TrialStarts != 2 || s0.Kills != 1 || s0.Iterations != 2 {
		t.Errorf("stage 0 counts = %+v", s0)
	}
	s1 := stages[1]
	if s1.Duration() != 18 || s1.Restores != 1 || s1.TrialStarts != 1 {
		t.Errorf("stage 1 = %+v", s1)
	}
}

func TestStageBreakdownEmpty(t *testing.T) {
	if got := StageBreakdown(nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestTrialSpans(t *testing.T) {
	spans := TrialSpans(sampleEvents())
	if len(spans) != 3 {
		t.Fatalf("spans = %v", spans)
	}
	// First span: trial 0 in stage 0, 0..10.
	if spans[0].Trial != 0 || spans[0].Stage != 0 ||
		spans[0].Start != 0 || spans[0].End != 10 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	// Trial 0 contributes a second span in stage 1.
	last := spans[len(spans)-1]
	if last.Trial != 0 || last.Stage != 1 || last.End != 30 {
		t.Errorf("last span = %+v", last)
	}
}

func TestTrialSpansRestart(t *testing.T) {
	// A trial restarted mid-stage (preemption) yields two spans.
	events := []Event{
		{At: 0, Kind: KindTrialStart, Stage: 0, Trial: 3},
		{At: 4, Kind: KindTrialPause, Stage: 0, Trial: 3}, // preempted
		{At: 6, Kind: KindTrialStart, Stage: 0, Trial: 3},
		{At: 15, Kind: KindTrialDone, Stage: 0, Trial: 3},
	}
	spans := TrialSpans(events)
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].End != 4 || spans[1].Start != 6 || spans[1].End != 15 {
		t.Errorf("spans = %v", spans)
	}
}

func TestWriteGanttCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGanttCSV(&buf, TrialSpans(sampleEvents())); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 spans
		t.Fatalf("csv = %q", buf.String())
	}
	if lines[0] != "trial,stage,start,end" {
		t.Errorf("header = %q", lines[0])
	}
}
