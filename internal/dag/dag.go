// Package dag implements RubberBand's DAG-based execution model (§4.2).
//
// A job's execution over a given resource allocation plan is represented
// as a directed acyclic graph of tasks: SCALE (provision resources),
// INIT_INSTANCE (initialize a provisioned instance), TRAIN (train one
// trial for a stage's iterations at its allocated GPUs) and SYNC (the
// stage-end barrier where trials are compared and pruned). Each node
// carries a latency distribution; Monte-Carlo sampling of the critical
// path (Algorithm 1) predicts the job completion time, and per-node
// timings feed the cost models in package sim.
package dag

import (
	"fmt"

	"repro/internal/stats"
)

// Kind enumerates the task types of the execution model.
type Kind int

const (
	// Scale is a system task: a blocking cluster-provisioning request.
	Scale Kind = iota
	// InitInstance is a system task: per-instance initialization after
	// provisioning (dependency install, cluster join).
	InitInstance
	// Train is a trial task: train one trial for a stage's iteration
	// assignment at its allocated GPUs.
	Train
	// Sync is the stage-end synchronization barrier: evaluate trial
	// quality, promote the top fraction, terminate the rest.
	Sync
)

// String returns the node-type name used in the paper.
func (k Kind) String() string {
	switch k {
	case Scale:
		return "SCALE"
	case InitInstance:
		return "INIT_INSTANCE"
	case Train:
		return "TRAIN"
	case Sync:
		return "SYNC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one task in the execution model.
type Node struct {
	// ID is the node's index in its Graph, assigned by AddNode.
	ID int
	// Kind is the task type.
	Kind Kind
	// Stage is the 0-based stage this node belongs to.
	Stage int
	// Trial is the trial index within the experiment for Train nodes
	// (-1 otherwise).
	Trial int
	// GPUs is the compute allocated to a Train node (0 otherwise).
	GPUs int
	// Latency is the node's execution-latency distribution.
	Latency stats.Dist
	// deps are the IDs of nodes that must finish before this one starts.
	deps []int
}

// Deps returns a copy of the node's dependency IDs.
func (n *Node) Deps() []int { return append([]int(nil), n.deps...) }

// Graph is a DAG of tasks. Nodes are added in topological order by
// construction: a node may only depend on previously added nodes, which
// both guarantees acyclicity and makes sampling a single linear pass.
type Graph struct {
	nodes []*Node
	// block is the current chunk of the node arena. Nodes live in
	// fixed-capacity chunks that are never regrown, so *Node pointers
	// stay stable while amortizing one heap allocation over
	// graphBlockSize nodes — graph construction is the planner's
	// cold-path allocator hot spot.
	block []Node
	// depArena backs every node's dependency list. Growth may relocate
	// the arena, which is safe: already-issued deps slices keep their
	// values in the old array, and full-capacity slicing prevents any
	// aliased append.
	depArena []int
}

// graphBlockSize is the node-arena chunk size.
const graphBlockSize = 64

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// NewSized returns an empty graph presized for about nodes nodes and
// deps total dependency edges. Exact counts make construction
// allocation-flat (one block, one arena, no relocation); the graph
// still grows past either hint correctly.
func NewSized(nodes, deps int) *Graph {
	return &Graph{
		nodes:    make([]*Node, 0, nodes),
		block:    make([]Node, 0, nodes),
		depArena: make([]int, 0, deps),
	}
}

// AddNode appends a node with the given dependencies and returns it.
// It panics if a dependency refers to a node not yet added (which would
// create a cycle or a dangling edge).
func (g *Graph) AddNode(kind Kind, stage, trial, gpus int, latency stats.Dist, deps ...int) *Node {
	id := len(g.nodes)
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("dag: node %d depends on invalid node %d", id, d))
		}
	}
	if latency == nil {
		latency = stats.Deterministic{Value: 0}
	}
	lo := len(g.depArena)
	g.depArena = append(g.depArena, deps...)
	if len(g.block) == cap(g.block) {
		g.block = make([]Node, 0, graphBlockSize)
	}
	g.block = append(g.block, Node{
		ID:      id,
		Kind:    kind,
		Stage:   stage,
		Trial:   trial,
		GPUs:    gpus,
		Latency: latency,
		deps:    g.depArena[lo:len(g.depArena):len(g.depArena)],
	})
	n := &g.block[len(g.block)-1]
	g.nodes = append(g.nodes, n)
	return n
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// Nodes returns the node list in topological (insertion) order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Frontier returns the IDs of nodes with no dependents (out-degree zero) —
// the set new stage nodes extend from during construction.
func (g *Graph) Frontier() []int {
	hasDependent := make([]bool, len(g.nodes))
	for _, n := range g.nodes {
		for _, d := range n.deps {
			hasDependent[d] = true
		}
	}
	var out []int
	for id, dep := range hasDependent {
		if !dep {
			out = append(out, id)
		}
	}
	return out
}

// Timing records one sampled execution of a node.
type Timing struct {
	Start, Finish float64
}

// Sample draws one execution of the whole graph (the inner loop of
// Algorithm 1): node latencies are sampled independently and each node
// starts at the max finish time of its dependencies. It returns per-node
// timings and the makespan. An empty graph has zero makespan.
func (g *Graph) Sample(r *stats.RNG) ([]Timing, float64) {
	return g.SampleInto(r, nil)
}

// SampleInto is Sample with a caller-provided scratch buffer: buf is
// reused when it has sufficient capacity, otherwise a fresh slice is
// allocated. The returned slice aliases buf when reused, so callers must
// not retain timings from an earlier draw across calls. Monte-Carlo loops
// use this to sample allocation-free after the first draw.
func (g *Graph) SampleInto(r *stats.RNG, buf []Timing) ([]Timing, float64) {
	var timings []Timing
	if cap(buf) >= len(g.nodes) {
		timings = buf[:len(g.nodes)]
	} else {
		timings = make([]Timing, len(g.nodes))
	}
	var makespan float64
	for i, n := range g.nodes {
		start := 0.0
		for _, d := range n.deps {
			if f := timings[d].Finish; f > start {
				start = f
			}
		}
		lat := n.Latency.Sample(r)
		timings[i] = Timing{Start: start, Finish: start + lat}
		if timings[i].Finish > makespan {
			makespan = timings[i].Finish
		}
	}
	return timings, makespan
}

// MeanMakespan estimates the expected makespan by averaging samples draws
// (Algorithm 1's outer loop). It panics if samples < 1.
func (g *Graph) MeanMakespan(r *stats.RNG, samples int) float64 {
	if samples < 1 {
		panic("dag: MeanMakespan needs at least one sample")
	}
	var sum float64
	for i := 0; i < samples; i++ {
		_, m := g.Sample(r)
		sum += m
	}
	return sum / float64(samples)
}

// CriticalPath returns the node IDs on the critical path of one sampled
// schedule, from first to last, along with the makespan. Deterministic
// given the timings produced by Sample.
func (g *Graph) CriticalPath(timings []Timing) []int {
	if len(timings) != len(g.nodes) || len(g.nodes) == 0 {
		return nil
	}
	// Find the node with the latest finish, then walk back through the
	// dependency whose finish equals this node's start.
	last := 0
	for i := range timings {
		if timings[i].Finish > timings[last].Finish {
			last = i
		}
	}
	var rev []int
	cur := last
	for {
		rev = append(rev, cur)
		n := g.nodes[cur]
		if len(n.deps) == 0 {
			break
		}
		next := -1
		for _, d := range n.deps {
			if next == -1 || timings[d].Finish > timings[next].Finish {
				next = d
			}
		}
		if timings[next].Finish < timings[cur].Start-1e-12 {
			break // this node waited on nothing; path starts here
		}
		cur = next
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
