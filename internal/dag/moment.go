package dag

import (
	"math"

	"repro/internal/stats"
)

// This file is the analytic counterpart of SampleInto: one linear pass
// over a compiled Program that propagates (mean, variance) pairs instead
// of Monte-Carlo draws. The pass is exact for deterministic latencies and
// moment-matched (Clark maxima + quantile-sketch gang barriers)
// otherwise; internal/sim validates it against the sampling estimators to
// statistical tolerance.
//
// Correlation through shared history is the crux: two nodes that both
// descend from the same fork share that prefix of their finish times, and
// treating their finishes as independent in a later max double-counts the
// prefix variance. The pass therefore represents every finish time as
//
//	F(i) = B(barID(i)) + rel(i)
//
// where B is a *barrier* — a random variable shared by a whole sibling
// group — and rel is the part independent of the barrier and of the other
// siblings' rels. Barriers form a tree (each created as parent + an
// independent delta), which gives the two operations maxima need:
// lifting a finish to an ancestor barrier (subtracting the independent
// prefix) and dominance pruning (a dep whose finish became a barrier on
// another dep's path is ≤ that dep almost surely, given non-negative
// latencies, and drops out of the max).

// MomentScratch is the reusable state of one moment-propagation pass.
// The zero value is ready to use; buffers grow on first use and are
// reused afterwards, so steady-state passes allocate nothing. A scratch
// is owned by one goroutine at a time.
type MomentScratch struct {
	// Per-node: the barrier decomposition and each node's latency moment.
	barID    []int32
	promoted []int32 // barrier made from this node's finish, -1 if none
	rel      []stats.Moment
	lat      []stats.Moment
	// The barrier tree. barAbs is the absolute moment (sum of deltas from
	// the root), barStamp the path-marking generation used by dominance
	// pruning. Barrier 0 is time zero.
	barParent []int32
	barAbs    []stats.Moment
	barDepth  []int32
	barStamp  []int32
	nBar      int
	gen       int32
	// items is the max-over-deps grouping scratch; prev* memoize the last
	// fork barrier so consecutive siblings with identical dep ranges share
	// their start barrier (which is what keeps a later max over those
	// siblings from double-counting the fork variance).
	items          []stats.Moment
	prevLo, prevHi int32
	prevBar        int32
	makespanM      stats.Moment
	n              int
}

// reset sizes the scratch for an n-node program and clears the pass
// state. The barrier arrays hold at most 2n+1 entries: one root, at most
// one promotion per node, at most one fork barrier per node.
//
//rbvet:noalloc
func (sc *MomentScratch) reset(n int) {
	if cap(sc.barID) < n {
		//rbvet:ignore noalloc — cold path: runs once per program size; steady-state passes reuse the buffers
		sc.barID = make([]int32, n)
		//rbvet:ignore noalloc — cold path (see above)
		sc.promoted = make([]int32, n)
		//rbvet:ignore noalloc — cold path (see above)
		sc.rel = make([]stats.Moment, n)
		//rbvet:ignore noalloc — cold path (see above)
		sc.lat = make([]stats.Moment, n)
		//rbvet:ignore noalloc — cold path (see above)
		sc.barParent = make([]int32, 2*n+1)
		//rbvet:ignore noalloc — cold path (see above)
		sc.barAbs = make([]stats.Moment, 2*n+1)
		//rbvet:ignore noalloc — cold path (see above)
		sc.barDepth = make([]int32, 2*n+1)
		//rbvet:ignore noalloc — cold path (see above)
		sc.barStamp = make([]int32, 2*n+1)
		//rbvet:ignore noalloc — cold path (see above)
		sc.items = make([]stats.Moment, 0, n)
	}
	sc.barID = sc.barID[:n]
	sc.promoted = sc.promoted[:n]
	sc.rel = sc.rel[:n]
	sc.lat = sc.lat[:n]
	sc.n = n
	for i := range sc.promoted {
		sc.promoted[i] = -1
	}
	sc.barParent[0] = -1
	sc.barAbs[0] = stats.Moment{}
	sc.barDepth[0] = 0
	sc.barStamp[0] = 0
	sc.nBar = 1
	sc.prevBar = -1
	sc.makespanM = stats.Moment{}
}

// newBarrier appends a barrier with the given parent and independent
// delta and returns its id.
func (sc *MomentScratch) newBarrier(parent int32, delta stats.Moment) int32 {
	b := int32(sc.nBar)
	sc.barParent[b] = parent
	sc.barAbs[b] = sc.barAbs[parent].AddIndep(delta)
	sc.barDepth[b] = sc.barDepth[parent] + 1
	sc.barStamp[b] = 0
	sc.nBar++
	return b
}

// Finish returns node i's absolute finish-time moment after a successful
// MomentsInto pass.
func (sc *MomentScratch) Finish(i int) stats.Moment {
	return sc.barAbs[sc.barID[i]].AddIndep(sc.rel[i])
}

// Latency returns node i's latency moment after a successful pass.
func (sc *MomentScratch) Latency(i int) stats.Moment { return sc.lat[i] }

// Makespan returns the makespan moment of the last successful pass.
func (sc *MomentScratch) Makespan() stats.Moment { return sc.makespanM }

// latMoment returns node i's latency moment, whether the latency is
// provably non-negative (the precondition for dominance pruning), and
// whether analytic moments exist at all (Pareto needs alpha > 2, opaque
// dists must implement stats.Varer).
func (p *Program) latMoment(i int) (m stats.Moment, nonneg, ok bool) {
	switch p.op[i] {
	case opDet:
		return stats.Moment{Mean: p.p0[i]}, p.p0[i] >= 0, true
	case opNormal:
		// Sampling truncates at zero; like stats.Normal.Mean, the moment
		// ignores the truncation bias (negligible at the sigma/mu ratios
		// the profiles use, and covered by the tolerance property tests).
		return stats.Moment{Mean: p.p0[i], Var: p.p1[i] * p.p1[i]}, true, true
	case opLogNormal:
		s2 := p.p1[i] * p.p1[i]
		mean := math.Exp(p.p0[i] + s2/2)
		return stats.Moment{Mean: mean, Var: (math.Exp(s2) - 1) * mean * mean}, true, true
	case opUniform:
		w := p.p1[i] - p.p0[i]
		return stats.Moment{Mean: (p.p0[i] + p.p1[i]) / 2, Var: w * w / 12}, p.p0[i] >= 0, true
	case opExp:
		return stats.Moment{Mean: p.p0[i], Var: p.p0[i] * p.p0[i]}, p.p0[i] >= 0, true
	case opPareto:
		al := p.p1[i]
		if al <= 2 {
			return stats.Moment{}, false, false
		}
		am1 := al - 1
		return stats.Moment{
			Mean: p.p0[i] * al / am1,
			Var:  p.p0[i] * p.p0[i] * al / (am1 * am1 * (al - 2)),
		}, true, true
	case opRepeat:
		d := p.dists[p.aux[i]]
		base, ok := stats.DistMoment(d)
		if !ok {
			return stats.Moment{}, false, false
		}
		n := float64(p.cnt[i])
		return stats.Moment{Mean: base.Mean * n, Var: base.Var * n}, distNonNeg(d), true
	default:
		d := p.dists[p.aux[i]]
		m, ok := stats.DistMoment(d)
		return m, distNonNeg(d), ok
	}
}

// distNonNeg reports whether a distribution provably never samples below
// zero. Unknown types answer false, which only disables dominance
// pruning (forcing Monte-Carlo fallback when a pruning step would have
// been required), never a wrong moment.
func distNonNeg(d stats.Dist) bool {
	switch v := d.(type) {
	case stats.Deterministic:
		return v.Value >= 0
	case stats.Normal:
		return true // Sample truncates at zero
	case stats.LogNormal:
		return true
	case stats.Uniform:
		return v.Lo >= 0
	case stats.Exponential:
		return v.MeanValue >= 0
	case stats.Pareto:
		return true
	case stats.Repeat:
		return distNonNeg(v.D)
	case stats.Scaled:
		return v.Factor >= 0 && distNonNeg(v.D)
	case stats.Shifted:
		return v.Offset >= 0 && distNonNeg(v.D)
	}
	return false
}

// SupportsMoments reports whether every latency opcode in the program has
// finite analytic moments. It is a pure function of the program.
//
//rbvet:pure
func (p *Program) SupportsMoments() bool {
	for i := 0; i < p.n; i++ {
		if _, _, ok := p.latMoment(i); !ok {
			return false
		}
	}
	return true
}

// MomentsInto propagates finish-time moments through the compiled graph
// in one linear pass — the analytic counterpart of SampleInto, with no
// sampling and no RNG. It fills sc (per-node finish and latency moments,
// readable via the accessors) and returns the makespan moment, taken over
// the program's sinks.
//
// It reports ok=false — leaving the caller to fall back to Monte-Carlo —
// when a latency lacks finite moments (Pareto alpha <= 2, opaque dists
// without Var) or when pruning a dominated dependency would require a
// non-negativity proof the latencies don't provide.
//
// Deterministic programs propagate exactly. Stochastic maxima are
// moment-matched: equal-moment sibling groups via the iid quantile
// sketch (stats.MaxIIDMoment), distinct groups via Clark's pairwise rule
// (stats.MaxIndep), with equal-moment deps treated as iid — which they
// are for the fork-join stage DAGs the simulator builds, where siblings
// are literally iid draws.
//
//rbvet:pure
//rbvet:noalloc
func (p *Program) MomentsInto(sc *MomentScratch) (stats.Moment, bool) {
	sc.reset(p.n)
	allNonneg := true
	for i := 0; i < p.n; i++ {
		m, nn, ok := p.latMoment(i)
		if !ok {
			return stats.Moment{}, false
		}
		sc.lat[i] = m
		allNonneg = allNonneg && nn
	}

	for i := 0; i < p.n; i++ {
		lo, hi := p.depStart[i], p.depStart[i+1]
		switch hi - lo {
		case 0:
			// Source: starts at time zero.
			sc.barID[i] = 0
			sc.rel[i] = sc.lat[i]
		case 1:
			d := p.deps[lo]
			if p.outdeg[d] == 1 {
				// Sole consumer: extend the chain in place. Sums of
				// independent latencies propagate exactly.
				sc.barID[i] = sc.barID[d]
				sc.rel[i] = sc.rel[d].AddIndep(sc.lat[i])
			} else {
				// Shared dependency: its finish becomes a barrier so every
				// consumer builds on the same random variable.
				b := sc.promoted[d]
				if b < 0 {
					b = sc.newBarrier(sc.barID[d], sc.rel[d])
					sc.promoted[d] = b
				}
				sc.barID[i] = b
				sc.rel[i] = sc.lat[i]
			}
		default:
			// Fork join: start at the max over dep finishes. Consecutive
			// siblings with identical dep ranges share the fork barrier.
			var b int32
			if sc.prevBar >= 0 && hi-lo == sc.prevHi-sc.prevLo &&
				eqDeps(p.deps[lo:hi], p.deps[sc.prevLo:sc.prevHi]) {
				b = sc.prevBar
			} else {
				a, m, ok := sc.maxOverDeps(p, lo, hi, allNonneg)
				if !ok {
					return stats.Moment{}, false
				}
				b = sc.newBarrier(a, m)
				sc.prevLo, sc.prevHi, sc.prevBar = lo, hi, b
			}
			sc.barID[i] = b
			sc.rel[i] = sc.lat[i]
		}
	}

	// Makespan over sinks. Segment programs close on a single SYNC sink,
	// making this exact; multiple sinks combine via Clark.
	mk := stats.Moment{}
	first := true
	for i := 0; i < p.n; i++ {
		if p.outdeg[i] != 0 {
			continue
		}
		f := sc.Finish(i)
		if first {
			mk, first = f, false
		} else {
			mk = stats.MaxIndep(mk, f)
		}
	}
	sc.makespanM = mk
	return mk, true
}

// eqDeps reports whether two equal-length dep ranges list the same nodes.
func eqDeps(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maxOverDeps computes the moment of max over the finish times of the
// dep range [lo, hi), returned relative to the deps' lowest common
// ancestor barrier a (the maximal shared prefix, so no shared variance is
// double-counted). Deps whose finishes are barriers on another dep's
// path are dominated (F(descendant) >= F(ancestor) for non-negative
// latencies) and pruned; without a non-negativity proof a required prune
// reports ok=false instead of risking a wrong moment.
func (sc *MomentScratch) maxOverDeps(p *Program, lo, hi int32, allNonneg bool) (int32, stats.Moment, bool) {
	deps := p.deps[lo:hi]
	a := sc.barID[deps[0]]
	same := true
	for _, d := range deps[1:] {
		if sc.barID[d] != a {
			same = false
			break
		}
	}
	items := sc.items[:0]
	if same {
		// Same-barrier siblings: rels are mutually independent by
		// construction (shared history would have forced a promotion).
		for _, d := range deps {
			items = append(items, sc.rel[d])
		}
	} else {
		a = sc.lca(deps)
		// Mark every barrier strictly below a on any dep's path; a dep
		// promoted onto a marked barrier is an ancestor of another dep.
		sc.gen++
		for _, d := range deps {
			for b := sc.barID[d]; b != a; b = sc.barParent[b] {
				sc.barStamp[b] = sc.gen
			}
		}
		for _, d := range deps {
			if pb := sc.promoted[d]; pb >= 0 && sc.barStamp[pb] == sc.gen {
				if !allNonneg {
					return 0, stats.Moment{}, false
				}
				continue // dominated
			}
			lift := sc.barAbs[sc.barID[d]].SubIndepPrefix(sc.barAbs[a]).AddIndep(sc.rel[d])
			items = append(items, lift)
		}
	}
	sc.items = items

	// Group bit-identical moments as iid (identical sibling structure
	// yields identical arithmetic), then Clark across distinct groups.
	res := stats.Moment{}
	first := true
	for j := 0; j < len(items); j++ {
		m := items[j]
		if math.IsNaN(m.Mean) {
			continue // consumed by an earlier group
		}
		cnt := 1
		for k := j + 1; k < len(items); k++ {
			if items[k] == m {
				items[k].Mean = math.NaN()
				cnt++
			}
		}
		g := stats.MaxIIDMoment(m, cnt)
		if first {
			res, first = g, false
		} else {
			res = stats.MaxIndep(res, g)
		}
	}
	return a, res, true
}

// lca returns the lowest common ancestor of the deps' barriers in the
// barrier tree, folding pairwise by depth.
func (sc *MomentScratch) lca(deps []int32) int32 {
	a := sc.barID[deps[0]]
	for _, d := range deps[1:] {
		b := sc.barID[d]
		for a != b {
			if sc.barDepth[a] >= sc.barDepth[b] {
				a = sc.barParent[a]
			} else {
				b = sc.barParent[b]
			}
		}
	}
	return a
}
