package dag

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func det(v float64) stats.Dist { return stats.Deterministic{Value: v} }

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Scale: "SCALE", InitInstance: "INIT_INSTANCE", Train: "TRAIN", Sync: "SYNC",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	_, m := g.Sample(stats.NewRNG(1))
	if m != 0 {
		t.Fatalf("empty makespan %v", m)
	}
	if f := g.Frontier(); len(f) != 0 {
		t.Fatalf("empty frontier %v", f)
	}
}

func TestLinearChain(t *testing.T) {
	g := New()
	a := g.AddNode(Train, 0, 0, 1, det(2))
	b := g.AddNode(Train, 0, 1, 1, det(3), a.ID)
	c := g.AddNode(Sync, 0, -1, 0, det(1), b.ID)
	timings, m := g.Sample(stats.NewRNG(1))
	if m != 6 {
		t.Fatalf("makespan %v, want 6", m)
	}
	if timings[b.ID].Start != 2 || timings[c.ID].Start != 5 {
		t.Fatalf("timings %v", timings)
	}
}

func TestParallelNodes(t *testing.T) {
	g := New()
	a := g.AddNode(Train, 0, 0, 1, det(2))
	b := g.AddNode(Train, 0, 1, 1, det(7))
	sync := g.AddNode(Sync, 0, -1, 0, det(1), a.ID, b.ID)
	timings, m := g.Sample(stats.NewRNG(1))
	if m != 8 {
		t.Fatalf("makespan %v, want 8 (max(2,7)+1)", m)
	}
	if timings[sync.ID].Start != 7 {
		t.Fatalf("sync started at %v, want 7", timings[sync.ID].Start)
	}
}

func TestAddNodePanicsOnForwardDep(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddNode(Train, 0, 0, 1, det(1), 5)
}

func TestNilLatencyDefaultsToZero(t *testing.T) {
	g := New()
	g.AddNode(Sync, 0, -1, 0, nil)
	_, m := g.Sample(stats.NewRNG(1))
	if m != 0 {
		t.Fatalf("makespan %v, want 0", m)
	}
}

func TestFrontier(t *testing.T) {
	g := New()
	a := g.AddNode(Train, 0, 0, 1, det(1))
	b := g.AddNode(Train, 0, 1, 1, det(1))
	c := g.AddNode(Sync, 0, -1, 0, det(1), a.ID, b.ID)
	f := g.Frontier()
	if len(f) != 1 || f[0] != c.ID {
		t.Fatalf("frontier %v, want [%d]", f, c.ID)
	}
}

func TestMeanMakespanDeterministicGraph(t *testing.T) {
	g := New()
	a := g.AddNode(Scale, 0, -1, 0, det(4))
	g.AddNode(InitInstance, 0, -1, 0, det(6), a.ID)
	m := g.MeanMakespan(stats.NewRNG(1), 10)
	if math.Abs(m-10) > 1e-12 {
		t.Fatalf("mean makespan %v, want 10", m)
	}
}

func TestMeanMakespanStochasticConverges(t *testing.T) {
	g := New()
	g.AddNode(Train, 0, 0, 1, stats.Normal{Mu: 10, Sigma: 1})
	m := g.MeanMakespan(stats.NewRNG(7), 20000)
	if math.Abs(m-10) > 0.05 {
		t.Fatalf("mean makespan %v, want ~10", m)
	}
}

func TestMeanMakespanPanicsOnZeroSamples(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().MeanMakespan(stats.NewRNG(1), 0)
}

func TestStragglerRaisesExpectedMakespan(t *testing.T) {
	// Jensen's inequality in action: the expected max of n noisy trials
	// exceeds the max of expectations — this is why synchronization
	// barriers make stragglers expensive (§3.2).
	makespan := func(sigma float64) float64 {
		g := New()
		var deps []int
		for i := 0; i < 16; i++ {
			n := g.AddNode(Train, 0, i, 1, stats.Normal{Mu: 10, Sigma: sigma})
			deps = append(deps, n.ID)
		}
		g.AddNode(Sync, 0, -1, 0, det(0), deps...)
		return g.MeanMakespan(stats.NewRNG(3), 5000)
	}
	low, high := makespan(0.1), makespan(3)
	if high <= low {
		t.Fatalf("straggler variance did not raise makespan: %v vs %v", low, high)
	}
	if high < 12 {
		t.Fatalf("high-variance makespan %v suspiciously low", high)
	}
}

func TestCriticalPath(t *testing.T) {
	g := New()
	a := g.AddNode(Train, 0, 0, 1, det(2))
	b := g.AddNode(Train, 0, 1, 1, det(7))
	s := g.AddNode(Sync, 0, -1, 0, det(1), a.ID, b.ID)
	timings, _ := g.Sample(stats.NewRNG(1))
	path := g.CriticalPath(timings)
	if len(path) != 2 || path[0] != b.ID || path[1] != s.ID {
		t.Fatalf("critical path %v, want [%d %d]", path, b.ID, s.ID)
	}
}

func TestCriticalPathEmptyAndMismatched(t *testing.T) {
	g := New()
	if p := g.CriticalPath(nil); p != nil {
		t.Fatalf("empty graph path %v", p)
	}
	g.AddNode(Train, 0, 0, 1, det(1))
	if p := g.CriticalPath([]Timing{{}, {}}); p != nil {
		t.Fatalf("mismatched timings path %v", p)
	}
}

func TestDepsCopied(t *testing.T) {
	g := New()
	a := g.AddNode(Train, 0, 0, 1, det(1))
	b := g.AddNode(Sync, 0, -1, 0, det(1), a.ID)
	d := b.Deps()
	d[0] = 99
	if b.Deps()[0] != a.ID {
		t.Fatal("Deps exposed internal slice")
	}
}

// Property: makespan equals the max finish over all nodes, every node
// starts no earlier than all of its dependencies finish, and adding a node
// never decreases the makespan.
func TestQuickScheduleConsistency(t *testing.T) {
	f := func(seed uint64, latsRaw []uint8) bool {
		if len(latsRaw) == 0 || len(latsRaw) > 40 {
			return true
		}
		g := New()
		r := stats.NewRNG(seed)
		depRng := stats.NewRNG(seed + 1)
		for i, lat := range latsRaw {
			var deps []int
			// Random subset of earlier nodes as dependencies.
			for d := 0; d < i; d++ {
				if depRng.Float64() < 0.3 {
					deps = append(deps, d)
				}
			}
			g.AddNode(Train, 0, i, 1, det(float64(lat)), deps...)
		}
		timings, m := g.Sample(r)
		maxFinish := 0.0
		for i, n := range g.Nodes() {
			if timings[i].Finish > maxFinish {
				maxFinish = timings[i].Finish
			}
			for _, d := range n.Deps() {
				if timings[i].Start < timings[d].Finish-1e-12 {
					return false
				}
			}
		}
		return math.Abs(m-maxFinish) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
