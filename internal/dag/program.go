package dag

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// opcode tags one node's latency distribution in a compiled Program. The
// common distributions are inlined as opcodes with their parameters in
// flat float64 arrays, so sampling them is a branch-predictable switch
// with no interface dispatch; anything else falls back to the dist table.
type opcode uint8

const (
	opDet       opcode = iota // point mass: p0
	opNormal                  // max(0, N(p0, p1))
	opLogNormal               // exp(N(p0, p1))
	opUniform                 // uniform [p0, p1)
	opExp                     // exponential with mean p0
	opPareto                  // pareto(scale=p0, alpha=p1)
	opRepeat                  // sum of cnt draws from dists[aux]
	opDist                    // opaque: dists[aux].Sample
)

// Program is a Graph compiled into a flat structure-of-arrays form for
// repeated Monte-Carlo sampling: dependency edges in CSR layout and
// latency distributions as tagged-union opcodes with inline parameters.
// Sampling a Program visits nodes in one linear pass with no per-node
// pointer chasing and, for the built-in distribution types, no interface
// calls. A Program is immutable after Compile and safe for concurrent use
// by any number of goroutines (each with its own RNG and scratch buffer).
type Program struct {
	// depStart[i]..depStart[i+1] indexes deps, the CSR edge array of
	// node i's dependencies (local node indices).
	depStart []int32
	deps     []int32
	op       []opcode
	p0, p1   []float64
	// aux indexes dists for opRepeat/opDist nodes (-1 otherwise); cnt is
	// the draw count for opRepeat nodes.
	aux   []int32
	cnt   []int32
	dists []stats.Dist
	// outdeg[i] is node i's successor count within the compiled range —
	// the moment pass promotes multi-consumer finishes to shared barriers
	// and takes the makespan over the outdeg-zero sinks.
	outdeg []int32
	n      int
}

// Compile translates a whole graph into a Program. Sampling the Program
// is bit-identical to Graph.SampleInto given the same generator: opcodes
// reproduce each distribution's Sample arithmetic and RNG draw order
// exactly.
func Compile(g *Graph) *Program { return CompileRange(g, 0, g.Len()) }

// CompileRange compiles the node slice [lo, hi) of a graph into a
// standalone Program. Dependencies on nodes before lo are dropped: the
// compiled sub-program treats them as an implicit time-zero source, so a
// sub-DAG whose only external edges come from a single barrier node
// samples the same schedule as the full graph, shifted to start at zero.
// It panics if the range is out of bounds.
func CompileRange(g *Graph, lo, hi int) *Program {
	if lo < 0 || hi < lo || hi > g.Len() {
		panic(fmt.Sprintf("dag: CompileRange [%d, %d) out of bounds for %d nodes", lo, hi, g.Len()))
	}
	n := hi - lo
	edges := 0
	for i := 0; i < n; i++ {
		for _, d := range g.nodes[lo+i].deps {
			if d >= lo {
				edges++
			}
		}
	}
	// One backing array serves every int32 column (and the edge list):
	// programs are built in bulk on the planner's cold path, where a
	// single allocation per program beats six.
	back := make([]int32, 0, (n+1)+edges+3*n)
	take := func(k int) []int32 {
		s := len(back)
		back = back[:s+k]
		return back[s : s+k : s+k]
	}
	p := &Program{
		depStart: take(n + 1),
		op:       make([]opcode, n),
		p0:       make([]float64, 2*n),
		aux:      take(n),
		cnt:      take(n),
		n:        n,
	}
	p.p1 = p.p0[n : 2*n : 2*n]
	p.p0 = p.p0[:n:n]
	p.deps = take(edges)[:0]
	for i := 0; i < n; i++ {
		p.depStart[i] = int32(len(p.deps))
		for _, d := range g.nodes[lo+i].deps {
			if d >= lo {
				p.deps = append(p.deps, int32(d-lo))
			}
		}
		p.compileOp(i, g.nodes[lo+i].Latency)
	}
	p.depStart[n] = int32(len(p.deps))
	p.outdeg = take(n)
	for _, d := range p.deps {
		p.outdeg[d]++
	}
	return p
}

// compileOp encodes one latency distribution at node slot i.
func (p *Program) compileOp(i int, d stats.Dist) {
	p.aux[i] = -1
	switch v := d.(type) {
	case stats.Deterministic:
		p.op[i] = opDet
		p.p0[i] = v.Value
	case stats.Normal:
		p.op[i] = opNormal
		p.p0[i], p.p1[i] = v.Mu, v.Sigma
	case stats.LogNormal:
		p.op[i] = opLogNormal
		p.p0[i], p.p1[i] = v.Mu, v.Sigma
	case stats.Uniform:
		p.op[i] = opUniform
		p.p0[i], p.p1[i] = v.Lo, v.Hi
	case stats.Exponential:
		p.op[i] = opExp
		p.p0[i] = v.MeanValue
	case stats.Pareto:
		p.op[i] = opPareto
		p.p0[i], p.p1[i] = v.Scale, v.Alpha
	case stats.Repeat:
		p.op[i] = opRepeat
		p.aux[i] = int32(len(p.dists))
		p.cnt[i] = int32(v.N)
		p.dists = append(p.dists, v.D)
	default:
		p.op[i] = opDist
		p.aux[i] = int32(len(p.dists))
		p.dists = append(p.dists, d)
	}
}

// Len returns the compiled node count.
func (p *Program) Len() int { return p.n }

// Sample draws one execution of the compiled graph, allocating a fresh
// timings slice. See SampleInto.
func (p *Program) Sample(r *stats.RNG) ([]Timing, float64) {
	return p.SampleInto(r, nil)
}

// SampleInto draws one execution of the compiled graph into buf (reused
// when it has sufficient capacity): each node starts at the max finish
// time of its compiled dependencies and its latency is sampled from the
// node's opcode. It returns the per-node timings and the makespan.
// Latency opcodes consume RNG draws exactly as the distributions they
// encode, so for a full-graph Program the result is bit-identical to
// Graph.SampleInto with the same generator.
//
//rbvet:pure
//rbvet:noalloc
func (p *Program) SampleInto(r *stats.RNG, buf []Timing) ([]Timing, float64) {
	var timings []Timing
	if cap(buf) >= p.n {
		timings = buf[:p.n]
	} else {
		//rbvet:ignore noalloc — cold path: runs once per buffer size; steady-state calls reuse buf
		timings = make([]Timing, p.n)
	}
	var makespan float64
	for i := 0; i < p.n; i++ {
		start := 0.0
		for _, d := range p.deps[p.depStart[i]:p.depStart[i+1]] {
			if f := timings[d].Finish; f > start {
				start = f
			}
		}
		var lat float64
		switch p.op[i] {
		case opDet:
			lat = p.p0[i]
		case opNormal:
			lat = p.p0[i] + p.p1[i]*r.NormFloat64()
			if lat < 0 {
				lat = 0
			}
		case opLogNormal:
			lat = math.Exp(p.p0[i] + p.p1[i]*r.NormFloat64())
		case opUniform:
			lat = p.p0[i] + (p.p1[i]-p.p0[i])*r.Float64()
		case opExp:
			u := r.Float64()
			if u >= 1 {
				u = math.Nextafter(1, 0)
			}
			lat = -p.p0[i] * math.Log(1-u)
		case opPareto:
			u := r.Float64()
			if u == 0 {
				u = math.Nextafter(0, 1)
			}
			lat = p.p0[i] / math.Pow(u, 1/p.p1[i])
		case opRepeat:
			d := p.dists[p.aux[i]]
			for j := int32(0); j < p.cnt[i]; j++ {
				lat += d.Sample(r)
			}
		default:
			lat = p.dists[p.aux[i]].Sample(r)
		}
		f := start + lat
		timings[i] = Timing{Start: start, Finish: f}
		if f > makespan {
			makespan = f
		}
	}
	return timings, makespan
}
