package dag

import (
	"testing"

	"repro/internal/stats"
)

// opaque is a distribution type the compiler does not know, forcing the
// dist-table fallback opcode.
type opaque struct{ d stats.Dist }

func (o opaque) Sample(r *stats.RNG) float64 { return o.d.Sample(r) }
func (o opaque) Mean() float64               { return o.d.Mean() }
func (o opaque) String() string              { return "opaque(" + o.d.String() + ")" }

// mixedGraph builds a DAG exercising every opcode: all built-in
// distribution types, the Repeat sum, and an opaque fallback, over a
// diamond-and-chain dependency structure.
func mixedGraph() *Graph {
	g := New()
	a := g.AddNode(Scale, 0, -1, 0, stats.Exponential{MeanValue: 5})
	b := g.AddNode(InitInstance, 0, -1, 0, stats.Normal{Mu: 15, Sigma: 3}, a.ID)
	c := g.AddNode(InitInstance, 0, -1, 0, stats.LogNormal{Mu: 2, Sigma: 0.5}, a.ID)
	d := g.AddNode(Train, 0, 0, 2, stats.Uniform{Lo: 1, Hi: 4}, b.ID, c.ID)
	e := g.AddNode(Train, 0, 1, 2, stats.Pareto{Scale: 2, Alpha: 2.5}, b.ID, c.ID)
	f := g.AddNode(Train, 0, 2, 2, stats.Repeat{D: stats.Exponential{MeanValue: 0.5}, N: 7}, b.ID, c.ID)
	h := g.AddNode(Train, 0, 3, 2, opaque{stats.Normal{Mu: 4, Sigma: 1}}, d.ID)
	i := g.AddNode(Sync, 0, -1, 0, stats.Deterministic{Value: 0}, d.ID, e.ID, f.ID, h.ID)
	g.AddNode(Train, 1, 4, 4, stats.Normal{Mu: 30, Sigma: 6}, i.ID)
	return g
}

// TestProgramMatchesGraphSample: the compiled program is bit-identical to
// interface-dispatch sampling for every opcode, across many draws from a
// shared stream family.
func TestProgramMatchesGraphSample(t *testing.T) {
	g := mixedGraph()
	p := Compile(g)
	if p.Len() != g.Len() {
		t.Fatalf("program has %d nodes, graph %d", p.Len(), g.Len())
	}
	root := stats.NewRNG(42)
	var gbuf, pbuf []Timing
	for k := 0; k < 200; k++ {
		var gm, pm float64
		gbuf, gm = g.SampleInto(root.Stream(uint64(k)), gbuf)
		pbuf, pm = p.SampleInto(root.Stream(uint64(k)), pbuf)
		if gm != pm {
			t.Fatalf("draw %d: makespan %v != graph %v", k, pm, gm)
		}
		for i := range gbuf {
			if gbuf[i] != pbuf[i] {
				t.Fatalf("draw %d node %d: timing %+v != graph %+v", k, i, pbuf[i], gbuf[i])
			}
		}
	}
}

// TestCompileRangeDropsExternalDeps: a sub-program whose only external
// edges come from a single barrier samples the same schedule as the full
// graph shifted to start at zero — with deterministic latencies, exactly.
func TestCompileRangeDropsExternalDeps(t *testing.T) {
	g := New()
	a := g.AddNode(Train, 0, 0, 1, stats.Deterministic{Value: 3})
	s0 := g.AddNode(Sync, 0, -1, 0, stats.Deterministic{Value: 0}, a.ID)
	b := g.AddNode(Scale, 1, -1, 0, stats.Deterministic{Value: 2}, s0.ID)
	c := g.AddNode(Train, 1, 1, 1, stats.Deterministic{Value: 5}, b.ID, s0.ID)
	g.AddNode(Sync, 1, -1, 0, stats.Deterministic{Value: 0}, c.ID)

	sub := CompileRange(g, b.ID, g.Len())
	if sub.Len() != 3 {
		t.Fatalf("sub-program has %d nodes, want 3", sub.Len())
	}
	timings, makespan := sub.Sample(stats.NewRNG(1))
	if makespan != 7 { // scale 2 + train 5, zero-based
		t.Fatalf("sub makespan %v, want 7", makespan)
	}
	full, fm := g.Sample(stats.NewRNG(1))
	if fm != 10 {
		t.Fatalf("full makespan %v, want 10", fm)
	}
	base := full[s0.ID].Finish
	for i, ft := range full[b.ID:] {
		want := Timing{Start: ft.Start - base, Finish: ft.Finish - base}
		if timings[i] != want {
			t.Fatalf("sub node %d: %+v, want %+v", i, timings[i], want)
		}
	}
}

// TestCompileRangeBounds: out-of-range compiles panic rather than
// producing a silently wrong program.
func TestCompileRangeBounds(t *testing.T) {
	g := mixedGraph()
	for _, r := range [][2]int{{-1, 2}, {3, 2}, {0, g.Len() + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CompileRange(%d, %d) did not panic", r[0], r[1])
				}
			}()
			CompileRange(g, r[0], r[1])
		}()
	}
}

// TestProgramSampleZeroAlloc: with a warm scratch buffer, sampling the
// compiled program allocates nothing.
func TestProgramSampleZeroAlloc(t *testing.T) {
	p := Compile(mixedGraph())
	rng := stats.NewRNG(7)
	buf, _ := p.SampleInto(rng, nil)
	allocs := testing.AllocsPerRun(100, func() {
		buf, _ = p.SampleInto(rng, buf)
	})
	if allocs != 0 {
		t.Fatalf("Program.SampleInto allocates %v per draw, want 0", allocs)
	}
}

func BenchmarkProgramSample(b *testing.B) {
	p := Compile(mixedGraph())
	rng := stats.NewRNG(3)
	var buf []Timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = p.SampleInto(rng, buf)
	}
}
