package dag

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// gangGraph builds the gang-mode stage shape buildSegment produces:
// optional SCALE → inits iid INIT nodes → trials gang TRAIN nodes each
// depending on every INIT → closing SYNC.
func gangGraph(inits, trials int, initD, train stats.Dist) *Graph {
	g := New()
	var stageDeps []int
	if inits > 0 {
		scale := g.AddNode(Scale, 0, -1, 0, stats.Deterministic{Value: 5})
		for k := 0; k < inits; k++ {
			init := g.AddNode(InitInstance, 0, -1, 0, initD, scale.ID)
			stageDeps = append(stageDeps, init.ID)
		}
	}
	var trains []int
	for tr := 0; tr < trials; tr++ {
		n := g.AddNode(Train, 0, tr, 2, train, stageDeps...)
		trains = append(trains, n.ID)
	}
	g.AddNode(Sync, 0, -1, 0, stats.Deterministic{Value: 0}, trains...)
	return g
}

// serialGraph builds the serial-mode stage shape: trials TRAIN nodes
// round-robined over slots chains, chained within each slot, SYNC over
// every train (not just the chain tails — the dominance filter must
// prune the mid-chain nodes).
func serialGraph(inits, trials, slots int, initD, train stats.Dist) *Graph {
	g := New()
	var stageDeps []int
	if inits > 0 {
		scale := g.AddNode(Scale, 0, -1, 0, stats.Deterministic{Value: 5})
		for k := 0; k < inits; k++ {
			init := g.AddNode(InitInstance, 0, -1, 0, initD, scale.ID)
			stageDeps = append(stageDeps, init.ID)
		}
	}
	slotTail := make([]int, slots)
	for k := range slotTail {
		slotTail[k] = -1
	}
	var trains []int
	for tr := 0; tr < trials; tr++ {
		slot := tr % slots
		deps := stageDeps
		if slotTail[slot] >= 0 {
			deps = []int{slotTail[slot]}
		}
		n := g.AddNode(Train, 0, tr, 1, train, deps...)
		slotTail[slot] = n.ID
		trains = append(trains, n.ID)
	}
	g.AddNode(Sync, 0, -1, 0, stats.Deterministic{Value: 0}, trains...)
	return g
}

// sampleMakespan estimates the program's makespan moment plus the finish
// moment of one tracked node by Monte-Carlo.
func sampleMakespan(p *Program, n int, track int) (mk, fin stats.Moment) {
	r := stats.NewRNG(99)
	buf := make([]Timing, p.Len())
	var s1, s2, f1, f2 float64
	for k := 0; k < n; k++ {
		timings, m := p.SampleInto(r, buf)
		s1 += m
		s2 += m * m
		f := timings[track].Finish
		f1 += f
		f2 += f * f
	}
	nn := float64(n)
	mk = stats.Moment{Mean: s1 / nn, Var: s2/nn - (s1/nn)*(s1/nn)}
	fin = stats.Moment{Mean: f1 / nn, Var: f2/nn - (f1/nn)*(f1/nn)}
	return mk, fin
}

func checkMoments(t *testing.T, name string, got, want stats.Moment, meanTol, varTol float64) {
	t.Helper()
	if math.Abs(got.Mean-want.Mean) > meanTol*math.Abs(want.Mean)+1e-9 {
		t.Errorf("%s: mean %v, sampled %v", name, got.Mean, want.Mean)
	}
	if math.Abs(got.Var-want.Var) > varTol*want.Var+0.05 {
		t.Errorf("%s: var %v, sampled %v", name, got.Var, want.Var)
	}
}

// TestMomentsDeterministicExact: with deterministic latencies the pass is
// exact — every finish time and the makespan equal the single sampled
// schedule, bit for bit modulo float addition order.
func TestMomentsDeterministicExact(t *testing.T) {
	for _, g := range []*Graph{
		gangGraph(4, 6, stats.Deterministic{Value: 15}, stats.Deterministic{Value: 30}),
		serialGraph(2, 11, 3, stats.Deterministic{Value: 15}, stats.Deterministic{Value: 30}),
		serialGraph(0, 7, 2, nil, stats.Deterministic{Value: 12}),
	} {
		p := Compile(g)
		var sc MomentScratch
		mk, ok := p.MomentsInto(&sc)
		if !ok {
			t.Fatal("deterministic program unsupported")
		}
		timings, want := p.Sample(stats.NewRNG(1))
		if mk.Var != 0 || math.Abs(mk.Mean-want) > 1e-9 {
			t.Errorf("makespan %+v, want exactly %v", mk, want)
		}
		for i := 0; i < p.Len(); i++ {
			f := sc.Finish(i)
			if f.Var != 0 || math.Abs(f.Mean-timings[i].Finish) > 1e-9 {
				t.Errorf("node %d finish %+v, want %v", i, f, timings[i].Finish)
			}
		}
	}
}

// TestMomentsGangAgainstMC: gang-mode stages (iid init max barrier, iid
// train gang max) match Monte-Carlo to tight tolerance across gang sizes.
func TestMomentsGangAgainstMC(t *testing.T) {
	cases := []struct{ inits, trials int }{
		{0, 1}, {0, 8}, {1, 4}, {4, 1}, {4, 16}, {16, 64},
	}
	for _, c := range cases {
		p := Compile(gangGraph(c.inits, c.trials, stats.Normal{Mu: 15, Sigma: 2}, stats.Normal{Mu: 120, Sigma: 8}))
		var sc MomentScratch
		mk, ok := p.MomentsInto(&sc)
		if !ok {
			t.Fatalf("inits=%d trials=%d: unsupported", c.inits, c.trials)
		}
		want, _ := sampleMakespan(p, 200000, p.Len()-1)
		checkMoments(t, "gang", mk, want, 0.01, 0.3)
	}
}

// TestMomentsSerialAgainstMC: serial-mode stages (uneven chains, SYNC
// over every train) match Monte-Carlo — this exercises promotion,
// lifting to the common ancestor, and dominance pruning.
func TestMomentsSerialAgainstMC(t *testing.T) {
	cases := []struct{ inits, trials, slots int }{
		{0, 6, 2}, {2, 6, 2}, {2, 7, 3}, {1, 13, 4}, {0, 13, 4}, {3, 3, 3},
	}
	for _, c := range cases {
		p := Compile(serialGraph(c.inits, c.trials, c.slots, stats.Normal{Mu: 15, Sigma: 2}, stats.Normal{Mu: 60, Sigma: 5}))
		var sc MomentScratch
		mk, ok := p.MomentsInto(&sc)
		if !ok {
			t.Fatalf("%+v: unsupported", c)
		}
		want, _ := sampleMakespan(p, 200000, p.Len()-1)
		checkMoments(t, "serial", mk, want, 0.01, 0.3)
	}
}

// TestMomentsMixedDists: every supported latency opcode propagates to
// Monte-Carlo tolerance, including opRepeat and opaque Varer dists.
func TestMomentsMixedDists(t *testing.T) {
	g := New()
	a := g.AddNode(Scale, 0, -1, 0, stats.Uniform{Lo: 2, Hi: 8})
	b := g.AddNode(InitInstance, 0, -1, 0, stats.Exponential{MeanValue: 4}, a.ID)
	c := g.AddNode(InitInstance, 0, -1, 0, stats.LogNormal{Mu: 1.5, Sigma: 0.3}, a.ID)
	d := g.AddNode(Train, 0, 0, 1, stats.Repeat{D: stats.Normal{Mu: 3, Sigma: 0.4}, N: 20}, b.ID, c.ID)
	e := g.AddNode(Train, 0, 1, 1, stats.Pareto{Scale: 5, Alpha: 4}, b.ID, c.ID)
	f := g.AddNode(Train, 0, 2, 1, stats.Shifted{D: stats.Uniform{Lo: 0, Hi: 6}, Offset: 50}, b.ID, c.ID)
	g.AddNode(Sync, 0, -1, 0, stats.Deterministic{Value: 0}, d.ID, e.ID, f.ID)

	p := Compile(g)
	var sc MomentScratch
	mk, ok := p.MomentsInto(&sc)
	if !ok {
		t.Fatal("mixed program unsupported")
	}
	want, _ := sampleMakespan(p, 400000, p.Len()-1)
	checkMoments(t, "mixed", mk, want, 0.02, 0.35)
}

// TestMomentsTrackedNodes: the accessors sim relies on — the SCALE
// node's finish and per-node latency moments — agree with Monte-Carlo.
func TestMomentsTrackedNodes(t *testing.T) {
	p := Compile(gangGraph(4, 8, stats.Normal{Mu: 15, Sigma: 2}, stats.Normal{Mu: 120, Sigma: 8}))
	var sc MomentScratch
	if _, ok := p.MomentsInto(&sc); !ok {
		t.Fatal("unsupported")
	}
	// Node 0 is SCALE: deterministic queue delay of 5.
	if f := sc.Finish(0); f != (stats.Moment{Mean: 5}) {
		t.Errorf("scale finish %+v", f)
	}
	// Train latency moments are the train dist's moments.
	if l := sc.Latency(5); l.Mean != 120 || l.Var != 64 {
		t.Errorf("train latency %+v", l)
	}
	// A train node's sampled finish matches its analytic finish.
	_, fin := sampleMakespan(p, 200000, 5)
	checkMoments(t, "train finish", sc.Finish(5), fin, 0.01, 0.3)
}

// TestMomentsUnsupported: infinite-variance and Varer-less latencies
// report ok=false rather than wrong numbers, and SupportsMoments agrees.
func TestMomentsUnsupported(t *testing.T) {
	g := New()
	g.AddNode(Train, 0, 0, 1, stats.Pareto{Scale: 1, Alpha: 1.5})
	p := Compile(g)
	if p.SupportsMoments() {
		t.Error("SupportsMoments true for infinite-variance Pareto")
	}
	var sc MomentScratch
	if _, ok := p.MomentsInto(&sc); ok {
		t.Error("MomentsInto ok for infinite-variance Pareto")
	}
	if !Compile(gangGraph(2, 2, stats.Normal{Mu: 1, Sigma: 0.1}, stats.Normal{Mu: 1, Sigma: 0.1})).SupportsMoments() {
		t.Error("SupportsMoments false for a supported program")
	}
}

// TestMomentsZeroAlloc pins the steady-state pass at zero heap
// allocations: the batched frontier evaluator runs it per candidate.
func TestMomentsZeroAlloc(t *testing.T) {
	p := Compile(serialGraph(2, 13, 4, stats.Normal{Mu: 15, Sigma: 2}, stats.Normal{Mu: 60, Sigma: 5}))
	var sc MomentScratch
	if _, ok := p.MomentsInto(&sc); !ok { // warm the scratch
		t.Fatal("unsupported")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := p.MomentsInto(&sc); !ok {
			t.Fatal("unsupported")
		}
	})
	if allocs != 0 {
		t.Fatalf("MomentsInto allocates %v per run, want 0", allocs)
	}
}
