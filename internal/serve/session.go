package serve

import (
	"sync"

	"repro/internal/harness"
)

// ExpState is an experiment's lifecycle state.
type ExpState int

const (
	// StateQueued: accepted, waiting in its tenant queue.
	StateQueued ExpState = iota
	// StateRunning: admitted and executing on its virtual clock.
	StateRunning
	// StateDone: completed with a result and digest.
	StateDone
	// StateFailed: aborted with an error.
	StateFailed
)

// String renders the state for JSON.
func (s ExpState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Event is one entry in an experiment's streamed event feed: lifecycle
// transitions, the plan, stage boundaries and arbiter grants. Virtual
// times are the experiment's own seeded clock; the feed carries no wall
// times, so a replayed run streams the identical feed.
type Event struct {
	Seq     int     `json:"seq"`
	Type    string  `json:"type"` // queued|admitted|plan|grant|stage|done|failed
	VTime   float64 `json:"vtime,omitempty"`
	Stage   int     `json:"stage,omitempty"`
	Want    int     `json:"want,omitempty"`
	Granted int     `json:"granted,omitempty"`
	Alloc   []int   `json:"alloc,omitempty"`
	Planned *bool   `json:"planned,omitempty"`
	JCT     float64 `json:"jct,omitempty"`
	Cost    float64 `json:"cost,omitempty"`
	Digest  string  `json:"digest,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// Experiment is one submitted experiment's full service-side record:
// identity, live progress mirror, event feed, and final outcome. The
// mutex guards everything; the session goroutine writes, HTTP handlers
// read, and streamers wait on the notify channel (closed and replaced on
// every event append).
type Experiment struct {
	ID  string
	Sub Submission

	mu     sync.Mutex
	state  ExpState
	notify chan struct{}
	events []Event

	// Live progress mirror, updated by the session at stage boundaries
	// and every progress interval.
	stage    int
	vnow     float64
	cost     float64
	deadline float64
	planned  bool
	predJCT  float64
	predCost float64
	grants   []harness.GrantDecision

	// Outcome.
	digest  string
	jct     float64
	bestTrl int
	errMsg  string

	// Wall-clock ops surface (unix seconds; zero until reached). These
	// never feed the run or its digest.
	submittedAt float64
	startedAt   float64
	finishedAt  float64
}

// newExperiment builds a queued experiment record.
func newExperiment(id string, sub Submission) *Experiment {
	e := &Experiment{ID: id, Sub: sub, state: StateQueued, notify: make(chan struct{})}
	e.submittedAt = wallNow()
	e.publishLocked(Event{Type: "queued"})
	return e
}

// publishLocked appends an event and wakes streamers. Callers hold mu or
// have exclusive access (constructor).
func (e *Experiment) publishLocked(ev Event) {
	ev.Seq = len(e.events)
	e.events = append(e.events, ev)
	close(e.notify)
	e.notify = make(chan struct{})
}

// publish appends an event under the lock.
func (e *Experiment) publish(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.publishLocked(ev)
}

// next returns the event at index i when available, else the channel to
// wait on and whether the feed is finished (no more events will come).
func (e *Experiment) next(i int) (Event, bool, <-chan struct{}, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < len(e.events) {
		return e.events[i], true, nil, false
	}
	final := e.state == StateDone || e.state == StateFailed
	return Event{}, false, e.notify, final
}

// markAdmitted transitions to running. It precedes plan construction so
// the event feed shows the admission before the first stage's grant
// (which fires inside StartScenario).
func (e *Experiment) markAdmitted() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state = StateRunning
	e.startedAt = wallNow()
	e.publishLocked(Event{Type: "admitted"})
}

// notePlan records the started run's plan and prediction.
func (e *Experiment) notePlan(r *harness.Running) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.deadline = r.Deadline()
	e.planned = r.Planned()
	if e.planned {
		est := r.Estimate()
		e.predJCT, e.predCost = est.JCT, est.Cost
	}
	planned := e.planned
	e.publishLocked(Event{Type: "plan", Alloc: r.Plan().Alloc, Planned: &planned})
}

// noteGrant records one arbiter grant in the mirror and the feed.
func (e *Experiment) noteGrant(d harness.GrantDecision) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.grants = append(e.grants, d)
	e.publishLocked(Event{
		Type: "grant", VTime: d.At, Stage: d.Stage, Want: d.Want, Granted: d.Granted,
	})
}

// progress refreshes the live mirror and emits a stage event when the
// stage index advanced.
func (e *Experiment) progress(stage int, vnow, cost float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	adv := stage > e.stage
	e.stage, e.vnow, e.cost = stage, vnow, cost
	if adv {
		e.publishLocked(Event{Type: "stage", VTime: vnow, Stage: stage})
	}
}

// complete transitions to done with the run's outcome.
func (e *Experiment) complete(a *harness.Artifacts, digest harness.Digest) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state = StateDone
	e.finishedAt = wallNow()
	e.vnow, e.cost = a.Result.JCT, a.Result.Cost
	e.jct, e.bestTrl = a.Result.JCT, int(a.Result.BestTrial)
	e.digest = DigestString(digest)
	e.grants = append([]harness.GrantDecision(nil), a.Grants...)
	e.publishLocked(Event{
		Type: "done", VTime: a.Result.JCT,
		JCT: a.Result.JCT, Cost: a.Result.Cost, Digest: e.digest,
	})
}

// fail transitions to failed.
func (e *Experiment) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state = StateFailed
	e.finishedAt = wallNow()
	e.errMsg = err.Error()
	e.publishLocked(Event{Type: "failed", Error: e.errMsg})
}

// State returns the current lifecycle state.
func (e *Experiment) State() ExpState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// Wait blocks until the experiment reaches a final state.
func (e *Experiment) Wait() {
	for {
		e.mu.Lock()
		if e.state == StateDone || e.state == StateFailed {
			e.mu.Unlock()
			return
		}
		ch := e.notify
		e.mu.Unlock()
		<-ch
	}
}

// newRecoveredDone rebuilds a completed experiment from its replay tuple
// (restart path: the run finished in a previous process generation).
func newRecoveredDone(t ReplayTuple) *Experiment {
	e := &Experiment{ID: t.ID, Sub: t.Submission, state: StateDone, notify: make(chan struct{})}
	e.finishedAt = wallNow()
	e.vnow, e.jct, e.cost = t.JCT, t.JCT, t.Cost
	e.digest = t.Digest
	e.grants = append([]harness.GrantDecision(nil), t.Grants...)
	e.publishLocked(Event{Type: "queued"})
	e.publishLocked(Event{
		Type: "done", VTime: t.JCT, JCT: t.JCT, Cost: t.Cost, Digest: t.Digest,
	})
	return e
}

// Tuple returns the completed experiment's replay tuple and whether it
// is available (done runs only).
func (e *Experiment) Tuple() (ReplayTuple, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != StateDone {
		return ReplayTuple{}, false
	}
	return ReplayTuple{
		ID:         e.ID,
		Submission: e.Sub,
		Grants:     append([]harness.GrantDecision(nil), e.grants...),
		Digest:     e.digest,
		JCT:        e.jct,
		Cost:       e.cost,
	}, true
}

// Status is the JSON body of GET /v1/experiments/{id}.
type Status struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Name     string `json:"name,omitempty"`
	State    string `json:"state"`
	QueuePos int    `json:"queue_pos,omitempty"`

	// Plan-time prediction.
	Deadline      float64 `json:"deadline,omitempty"`
	Planned       bool    `json:"planned,omitempty"`
	PredictedJCT  float64 `json:"predicted_jct,omitempty"`
	PredictedCost float64 `json:"predicted_cost,omitempty"`

	// Live progress (virtual time).
	Stage     int     `json:"stage"`
	VNow      float64 `json:"vnow"`
	CostSoFar float64 `json:"cost_so_far"`
	Grants    int     `json:"grants"`

	// Outcome.
	JCT       float64 `json:"jct,omitempty"`
	Cost      float64 `json:"cost,omitempty"`
	BestTrial int     `json:"best_trial,omitempty"`
	Digest    string  `json:"digest,omitempty"`
	Error     string  `json:"error,omitempty"`

	// Wall-clock ops surface (unix seconds).
	SubmittedAt float64 `json:"submitted_at,omitempty"`
	StartedAt   float64 `json:"started_at,omitempty"`
	FinishedAt  float64 `json:"finished_at,omitempty"`
}

// StatusIn snapshots the experiment for the status endpoint; reg
// supplies the queue position for queued experiments.
func (e *Experiment) StatusIn(reg *Registry) Status {
	e.mu.Lock()
	st := Status{
		ID: e.ID, Tenant: e.Sub.Tenant, Name: e.Sub.Name, State: e.state.String(),
		Deadline: e.deadline, Planned: e.planned,
		PredictedJCT: e.predJCT, PredictedCost: e.predCost,
		Stage: e.stage, VNow: e.vnow, CostSoFar: e.cost, Grants: len(e.grants),
		JCT: e.jct, Cost: e.cost, BestTrial: e.bestTrl, Digest: e.digest, Error: e.errMsg,
		SubmittedAt: e.submittedAt, StartedAt: e.startedAt, FinishedAt: e.finishedAt,
	}
	queued := e.state == StateQueued
	e.mu.Unlock()
	if queued && reg != nil {
		st.QueuePos = reg.QueuePos(e)
	}
	return st
}
