package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/internal/journal"
)

// newTestServer builds a server and its HTTP front end, both torn down
// with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postSub submits sub and decodes the response.
func postSub(t *testing.T, ts *httptest.Server, sub Submission) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(sub)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// getJSON fetches path and decodes into v, returning the status code.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func smallSub(tenant string, seed uint64) Submission {
	return Submission{
		Tenant: tenant, Model: "resnet50",
		Stages: [][2]int{{4, 1}, {2, 1}},
		Seed:   seed, MaxGPUs: 4, DeadlineFactor: 2,
	}
}

// TestServerSubmitLifecycle: one experiment end to end over HTTP —
// accepted, executed, streamed, and its replay tuple verifies offline.
func TestServerSubmitLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Capacity: 4})
	resp, body := postSub(t, ts, smallSub("acme", 7))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Tenant != "acme" {
		t.Fatalf("accepted status = %+v", st)
	}
	s.Drain()

	if code := getJSON(t, ts, "/v1/experiments/"+st.ID, &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if st.State != "done" || st.Digest == "" || st.JCT <= 0 || st.Grants != 2 {
		t.Fatalf("final status = %+v", st)
	}

	// The full event feed: queued, admitted, grant(stage 0), plan, …, done.
	resp, err := http.Get(ts.URL + "/v1/experiments/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 5 {
		t.Fatalf("feed has %d events: %+v", len(events), events)
	}
	for i, wantType := range []string{"queued", "admitted", "grant", "plan"} {
		if events[i].Seq != i || events[i].Type != wantType {
			t.Fatalf("event %d = %+v, want type %s", i, events[i], wantType)
		}
	}
	grants := 0
	for _, ev := range events {
		if ev.Type == "grant" {
			grants++
		}
	}
	if grants != 2 {
		t.Fatalf("%d grant events for 2 stages", grants)
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.Digest != st.Digest {
		t.Fatalf("last event = %+v", last)
	}

	// ?from resumes mid-feed.
	resp2, err := http.Get(ts.URL + "/v1/experiments/" + st.ID + "/events?from=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	if !sc2.Scan() {
		t.Fatal("empty resumed feed")
	}
	var first Event
	if err := json.Unmarshal(sc2.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 2 {
		t.Fatalf("resumed feed starts at seq %d", first.Seq)
	}

	// The replay tuple round-trips to a bit-identical digest offline.
	var tup ReplayTuple
	if code := getJSON(t, ts, "/v1/experiments/"+st.ID+"/replay", &tup); code != http.StatusOK {
		t.Fatalf("replay: %d", code)
	}
	if _, err := VerifyReplay(tup); err != nil {
		t.Fatal(err)
	}

	// Fleet stats reflect the drained state.
	var fs FleetStats
	if code := getJSON(t, ts, "/v1/stats", &fs); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if fs.Capacity != 4 || fs.Live != 0 || fs.Total != 1 || fs.InUse != 0 {
		t.Fatalf("stats = %+v", fs)
	}
	var tn TenantStats
	if code := getJSON(t, ts, "/v1/tenants/acme", &tn); code != http.StatusOK {
		t.Fatalf("tenant: %d", code)
	}
	if tn.Completed != 1 {
		t.Fatalf("tenant stats = %+v", tn)
	}
}

// TestServerRejections: malformed and out-of-quota requests are refused
// with the right codes.
func TestServerRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 2, Quota: Quota{MaxQueued: 2, MaxLive: 1, MaxGPUs: 4}})

	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}

	bad := smallSub("acme", 1)
	bad.Model = "alexnet9000"
	if resp, body := postSub(t, ts, bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown model: %d %s", resp.StatusCode, body)
	}

	greedy := smallSub("acme", 1)
	greedy.MaxGPUs = 64 // above the tenant quota
	if resp, body := postSub(t, ts, greedy); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-quota gpus: %d %s", resp.StatusCode, body)
	}

	if code := getJSON(t, ts, "/v1/experiments/exp-9999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown status: %d", code)
	}
	if code := getJSON(t, ts, "/v1/experiments/exp-9999/events", nil); code != http.StatusNotFound {
		t.Fatalf("unknown events: %d", code)
	}
	if code := getJSON(t, ts, "/v1/experiments/exp-9999/replay", nil); code != http.StatusNotFound {
		t.Fatalf("unknown replay: %d", code)
	}
	if code := getJSON(t, ts, "/v1/tenants/Not-Valid", nil); code != http.StatusBadRequest {
		t.Fatalf("invalid tenant name: %d", code)
	}
}

// TestServerReplayConflictWhileRunning: the replay tuple is unavailable
// (409) until the experiment completes.
func TestServerReplayConflictWhileRunning(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Capacity: 2, DataDir: t.TempDir()})
	admitted := make(chan string, 1)
	s.armJournal = func(id string, jw *journal.Writer) {
		admitted <- id
		<-release
	}
	resp, body := postSub(t, ts, smallSub("acme", 3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	id := <-admitted
	if code := getJSON(t, ts, "/v1/experiments/"+id+"/replay", nil); code != http.StatusConflict {
		t.Fatalf("replay while running: %d", code)
	}
	// Bad ?from on a live feed.
	if code := getJSON(t, ts, "/v1/experiments/"+id+"/events?from=-1", nil); code != http.StatusBadRequest {
		t.Fatalf("bad from: %d", code)
	}
	close(release)
	s.Drain()
	var tup ReplayTuple
	if code := getJSON(t, ts, "/v1/experiments/"+id+"/replay", &tup); code != http.StatusOK {
		t.Fatalf("replay after done: %d", code)
	}
	if _, err := VerifyReplay(tup); err != nil {
		t.Fatal(err)
	}
}

// TestServerBackpressure is the queue-overflow contract: a full tenant
// queue returns 429 with a Retry-After hint, the overflowing submission
// is not enqueued, other tenants are unaffected, and once the backlog
// drains every admitted experiment completes exactly once in per-tenant
// FIFO order — checked by the fleet oracle over the arbiter's log.
func TestServerBackpressure(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Capacity: 4,
		Quota:    Quota{MaxQueued: 3, MaxLive: 1, MaxGPUs: 8},
		DataDir:  t.TempDir(),
	})
	s.armJournal = func(id string, jw *journal.Writer) { <-release }

	// First submission admits immediately (and parks in armJournal,
	// holding its tenant's single live slot).
	var ids []string
	for i := 0; i < 4; i++ {
		resp, body := postSub(t, ts, smallSub("acme", uint64(10+i)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	// Queue now holds 3 (MaxQueued): the next submission overflows.
	resp, body := postSub(t, ts, smallSub("acme", 99))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: %d %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if sec, err := strconv.Atoi(ra); err != nil || sec < 1 {
		t.Fatalf("Retry-After = %q", ra)
	}
	var eb struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.RetryAfter < 1 || eb.Error == "" {
		t.Fatalf("429 body = %s (%v)", body, err)
	}

	// Another tenant's queue is untouched by acme's backlog.
	resp, body = postSub(t, ts, smallSub("beta", 50))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("beta submit: %d %s", resp.StatusCode, body)
	}
	var bst Status
	if err := json.Unmarshal(body, &bst); err != nil {
		t.Fatal(err)
	}

	close(release)
	s.Drain()

	// Every accepted experiment completed with a digest; the rejected one
	// was never enqueued.
	for _, id := range append(ids, bst.ID) {
		var st Status
		if code := getJSON(t, ts, "/v1/experiments/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: %d", id, code)
		}
		if st.State != "done" || st.Digest == "" {
			t.Fatalf("%s = %+v", id, st)
		}
	}
	var fs FleetStats
	getJSON(t, ts, "/v1/stats", &fs)
	if fs.Total != 5 {
		t.Fatalf("%d experiments registered, want 5 (reject must not enqueue)", fs.Total)
	}

	// The arbiter's log passes the fleet oracle: capacity conservation,
	// exactly-once lifecycle (nothing lost, nothing double-run), per-
	// tenant FIFO admission, bounded admission wait.
	if vs := harness.CheckFleetInvariants(s.FleetLog(), 4, 4); len(vs) != 0 {
		t.Fatalf("fleet oracle: %v", vs)
	}

	// Explicit FIFO drain check: acme's admissions happen in submission
	// order.
	var acmeAdmits []string
	for _, e := range s.FleetLog() {
		if e.Kind == "admit" && e.Tenant == "acme" {
			acmeAdmits = append(acmeAdmits, e.Exp)
		}
	}
	if len(acmeAdmits) != 4 {
		t.Fatalf("acme admits = %v", acmeAdmits)
	}
	for i, id := range acmeAdmits {
		if id != ids[i] {
			t.Fatalf("acme admit order %v, want %v", acmeAdmits, ids)
		}
	}
}

// TestServerCloseRefusesSubmissions: a closed server answers 503 and
// admits nothing new.
func TestServerCloseRefusesSubmissions(t *testing.T) {
	s, ts := newTestServer(t, Config{Capacity: 2})
	s.Close()
	resp, body := postSub(t, ts, smallSub("acme", 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: %d %s", resp.StatusCode, body)
	}
}

// TestServerHundredConcurrentExperiments is the scale criterion: >= 100
// experiments live at once on one shared cluster, submitted concurrently
// over HTTP by 8 tenants, every one completing with a replay tuple that
// verifies offline to a bit-identical digest, and the whole fleet log
// passing the fairness oracle.
func TestServerHundredConcurrentExperiments(t *testing.T) {
	const (
		tenants   = 8
		perTenant = 13
		total     = tenants * perTenant // 104
		capacity  = 128
	)
	release := make(chan struct{})
	parked := make(chan string, total)
	s, ts := newTestServer(t, Config{
		Capacity: capacity,
		Quota:    Quota{MaxQueued: 32, MaxLive: perTenant, MaxGPUs: 4},
		DataDir:  t.TempDir(),
	})
	s.armJournal = func(id string, jw *journal.Writer) {
		parked <- id
		<-release
	}

	var wg sync.WaitGroup
	errs := make(chan error, total)
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", ti)
			for j := 0; j < perTenant; j++ {
				resp, body := postSub(t, ts, smallSub(tenant, uint64(1000*ti+j)))
				if resp.StatusCode != http.StatusAccepted {
					errs <- fmt.Errorf("%s submit %d: %d %s", tenant, j, resp.StatusCode, body)
					return
				}
			}
		}(ti)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Wait (on the admission channel, not the wall clock) until every
	// experiment's driver is parked: all 104 are admitted and live.
	for i := 0; i < total; i++ {
		<-parked
	}
	if live := s.arb.Live(); live < 100 {
		t.Fatalf("%d experiments live concurrently, want >= 100", live)
	}
	if used := s.arb.InUse(); used > capacity {
		t.Fatalf("%d/%d GPUs held", used, capacity)
	}

	close(release)
	s.Drain()

	// Every experiment completed; every replay tuple verifies offline.
	exps := s.reg.All()
	if len(exps) != total {
		t.Fatalf("%d experiments registered, want %d", len(exps), total)
	}
	digests := map[string]int{}
	for _, e := range exps {
		tup, ok := e.Tuple()
		if !ok {
			t.Fatalf("%s did not complete: %+v", e.ID, e.StatusIn(s.reg))
		}
		if _, err := VerifyReplay(tup); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		digests[tup.Digest]++
	}
	if len(digests) < 2 {
		t.Fatal("all digests identical: seeds not reaching the runs")
	}
	if vs := harness.CheckFleetInvariants(s.FleetLog(), capacity, total); len(vs) != 0 {
		t.Fatalf("fleet oracle: %v", vs)
	}
}
