package serve

import (
	"fmt"
	"sort"
	"sync"
)

// Quota bounds one tenant's footprint on the service.
type Quota struct {
	// MaxQueued bounds the tenant's submission queue; overflow is
	// rejected with 429 + Retry-After.
	MaxQueued int
	// MaxLive bounds the tenant's concurrently running experiments.
	MaxLive int
	// MaxGPUs caps a single submission's peak GPU request.
	MaxGPUs int
}

// DefaultQuota is the per-tenant default.
func DefaultQuota() Quota { return Quota{MaxQueued: 16, MaxLive: 4, MaxGPUs: 32} }

// ErrBacklog reports a full tenant queue; RetryAfterSeconds is the 429
// Retry-After hint (a coarse drain estimate, advisory only).
type ErrBacklog struct {
	Tenant            string
	Queued            int
	RetryAfterSeconds int
}

func (e *ErrBacklog) Error() string {
	return fmt.Sprintf("serve: tenant %s queue full (%d queued)", e.Tenant, e.Queued)
}

// tenantState tracks one tenant's bounded FIFO queue and live count.
type tenantState struct {
	queue []*Experiment
	live  int
	done  int
}

// Registry is the admission-control surface: per-tenant bounded FIFO
// queues drained round-robin across tenants. It owns experiment
// identity (ids, lookup) and lifecycle counters; the Arbiter owns GPUs.
type Registry struct {
	mu      sync.Mutex
	quota   Quota
	maxLive int // global live bound
	exps    map[string]*Experiment
	tenants map[string]*tenantState
	// rrCursor is the tenant name the round-robin drain last admitted
	// from; the next pick starts strictly after it in sorted order.
	rrCursor string
	nextID   int
	live     int
}

// NewRegistry builds a registry. maxLive bounds globally-live
// experiments (the server sets it to the arbiter capacity so every live
// experiment can hold its minimum GPU).
func NewRegistry(quota Quota, maxLive int) *Registry {
	return &Registry{
		quota:   quota,
		maxLive: maxLive,
		exps:    map[string]*Experiment{},
		tenants: map[string]*tenantState{},
	}
}

// Submit validates nothing (callers validate submissions) and enqueues a
// new experiment for the tenant, returning it with a fresh id — or
// ErrBacklog when the tenant's queue is full. accepted, when non-nil,
// runs under the registry lock after the experiment exists but before
// any other caller can see it: the server records the fleet-log submit
// event there, so no admission can ever precede its submission.
func (r *Registry) Submit(sub Submission, accepted func(*Experiment)) (*Experiment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[sub.Tenant]
	if t == nil {
		t = &tenantState{}
		r.tenants[sub.Tenant] = t
	}
	if len(t.queue) >= r.quota.MaxQueued {
		return nil, &ErrBacklog{
			Tenant: sub.Tenant, Queued: len(t.queue),
			// One coarse unit per queued experiment ahead: advisory.
			RetryAfterSeconds: 1 + len(t.queue),
		}
	}
	exp := newExperiment(fmt.Sprintf("exp-%04d", r.nextID), sub)
	r.nextID++
	r.exps[exp.ID] = exp
	t.queue = append(t.queue, exp)
	if accepted != nil {
		accepted(exp)
	}
	return exp, nil
}

// Get looks an experiment up by id.
func (r *Registry) Get(id string) (*Experiment, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.exps[id]
	return e, ok
}

// adopt registers a recovered experiment (restart path) as live without
// passing through a queue. The id counter advances past recovered ids so
// new submissions never collide.
func (r *Registry) adopt(exp *Experiment, live bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.exps[exp.ID] = exp
	var n int
	if _, err := fmt.Sscanf(exp.ID, "exp-%d", &n); err == nil && n >= r.nextID {
		r.nextID = n + 1
	}
	t := r.tenants[exp.Sub.Tenant]
	if t == nil {
		t = &tenantState{}
		r.tenants[exp.Sub.Tenant] = t
	}
	if live {
		t.live++
		r.live++
	} else {
		t.done++
	}
}

// NextRunnable picks the next experiment to admit: round-robin across
// tenants in sorted-name order starting after the previous pick, FIFO
// within a tenant, honoring the per-tenant and global live bounds. It
// returns nil when nothing is runnable. The picked experiment is counted
// live immediately so concurrent pumps cannot double-admit.
func (r *Registry) NextRunnable() *Experiment {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.live >= r.maxLive {
		return nil
	}
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	// Rotate so the scan starts after the round-robin cursor.
	start := 0
	for i, name := range names {
		if name > r.rrCursor {
			start = i
			break
		}
	}
	for i := 0; i < len(names); i++ {
		name := names[(start+i)%len(names)]
		t := r.tenants[name]
		if len(t.queue) == 0 || t.live >= r.quota.MaxLive {
			continue
		}
		exp := t.queue[0]
		t.queue = t.queue[1:]
		t.live++
		r.live++
		r.rrCursor = name
		return exp
	}
	return nil
}

// requeueFront undoes a NextRunnable pick: the experiment returns to the
// head of its tenant queue (FIFO preserved) and its live slots are
// released. Used when the pump loses the free-GPU race to a concurrent
// grant between picking and admitting.
func (r *Registry) requeueFront(exp *Experiment) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[exp.Sub.Tenant]
	if t == nil {
		return
	}
	t.queue = append([]*Experiment{exp}, t.queue...)
	t.live--
	r.live--
}

// All returns every known experiment sorted by id.
func (r *Registry) All() []*Experiment {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.exps))
	for id := range r.exps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Experiment, len(ids))
	for i, id := range ids {
		out[i] = r.exps[id]
	}
	return out
}

// Complete releases an experiment's live slot.
func (r *Registry) Complete(exp *Experiment) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.tenants[exp.Sub.Tenant]; t != nil {
		t.live--
		t.done++
	}
	r.live--
}

// QueuePos returns exp's 1-based position in its tenant queue (0 when
// not queued).
func (r *Registry) QueuePos(exp *Experiment) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[exp.Sub.Tenant]
	if t == nil {
		return 0
	}
	for i, q := range t.queue {
		if q == exp {
			return i + 1
		}
	}
	return 0
}

// TenantStats reports one tenant's queue and lifecycle counters.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Queued    int    `json:"queued"`
	Live      int    `json:"live"`
	Completed int    `json:"completed"`
	MaxQueued int    `json:"max_queued"`
	MaxLive   int    `json:"max_live"`
}

// Tenant returns one tenant's stats (zero-valued for unknown tenants).
func (r *Registry) Tenant(name string) TenantStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := TenantStats{Tenant: name, MaxQueued: r.quota.MaxQueued, MaxLive: r.quota.MaxLive}
	if t := r.tenants[name]; t != nil {
		s.Queued, s.Live, s.Completed = len(t.queue), t.live, t.done
	}
	return s
}

// Stats reports fleet-wide registry counters.
func (r *Registry) Stats() (live, queued, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.tenants {
		queued += len(t.queue)
	}
	return r.live, queued, len(r.exps)
}
