package serve

import (
	"errors"
	"testing"
)

func regSub(tenant string) Submission {
	return Submission{
		Tenant: tenant, Model: "resnet50",
		Stages: [][2]int{{4, 2}, {2, 2}},
		Seed:   1, MaxGPUs: 4, DeadlineFactor: 2,
	}
}

func mustSubmit(t *testing.T, r *Registry, tenant string) *Experiment {
	t.Helper()
	exp, err := r.Submit(regSub(tenant), nil)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// TestRegistryBacklog: the tenant queue is bounded; overflow returns
// ErrBacklog with a Retry-After hint that grows with the backlog, and
// other tenants are unaffected.
func TestRegistryBacklog(t *testing.T) {
	r := NewRegistry(Quota{MaxQueued: 2, MaxLive: 1, MaxGPUs: 8}, 4)
	mustSubmit(t, r, "acme")
	mustSubmit(t, r, "acme")
	_, err := r.Submit(regSub("acme"), nil)
	var bl *ErrBacklog
	if !errors.As(err, &bl) {
		t.Fatalf("overflow err = %v", err)
	}
	if bl.Tenant != "acme" || bl.Queued != 2 || bl.RetryAfterSeconds != 3 {
		t.Fatalf("backlog = %+v", bl)
	}
	// Another tenant still has a fresh queue.
	mustSubmit(t, r, "beta")
	// Draining one slot reopens the queue.
	if exp := r.NextRunnable(); exp == nil || exp.Sub.Tenant != "acme" {
		t.Fatalf("NextRunnable = %+v", exp)
	}
	mustSubmit(t, r, "acme")
}

// TestRegistryRoundRobinFIFO: drain order is round-robin across tenants
// in sorted order, FIFO within each tenant.
func TestRegistryRoundRobinFIFO(t *testing.T) {
	r := NewRegistry(Quota{MaxQueued: 8, MaxLive: 8, MaxGPUs: 8}, 16)
	// Interleave submissions: a0 a1 b0 c0 b1 a2.
	a0 := mustSubmit(t, r, "a-corp")
	a1 := mustSubmit(t, r, "a-corp")
	b0 := mustSubmit(t, r, "b-corp")
	c0 := mustSubmit(t, r, "c-corp")
	b1 := mustSubmit(t, r, "b-corp")
	a2 := mustSubmit(t, r, "a-corp")

	want := []*Experiment{a0, b0, c0, a1, b1, a2}
	for i, w := range want {
		got := r.NextRunnable()
		if got != w {
			t.Fatalf("pick %d = %v, want %v", i, got.ID, w.ID)
		}
	}
	if extra := r.NextRunnable(); extra != nil {
		t.Fatalf("empty registry still runnable: %v", extra.ID)
	}
}

// TestRegistryLiveBounds: per-tenant MaxLive and the global bound both
// gate NextRunnable; Complete releases the slots.
func TestRegistryLiveBounds(t *testing.T) {
	r := NewRegistry(Quota{MaxQueued: 8, MaxLive: 1, MaxGPUs: 8}, 2)
	a0 := mustSubmit(t, r, "acme")
	mustSubmit(t, r, "acme") // blocked by tenant MaxLive=1
	b0 := mustSubmit(t, r, "beta")
	c0 := mustSubmit(t, r, "ceta") // blocked by global maxLive=2

	if got := r.NextRunnable(); got != a0 {
		t.Fatalf("pick = %v", got.ID)
	}
	if got := r.NextRunnable(); got != b0 {
		t.Fatalf("pick = %v", got.ID)
	}
	if got := r.NextRunnable(); got != nil {
		t.Fatalf("global bound ignored: picked %v", got.ID)
	}
	r.Complete(b0)
	// acme is still at its tenant bound; ceta runs instead.
	if got := r.NextRunnable(); got != c0 {
		t.Fatalf("pick after completion = %v", got.ID)
	}
	r.Complete(a0)
	if got := r.NextRunnable(); got == nil || got.Sub.Tenant != "acme" {
		t.Fatalf("acme's second experiment not runnable: %+v", got)
	}
}

// TestRegistryRequeueFront: a requeued pick keeps its place at the head
// of the tenant queue.
func TestRegistryRequeueFront(t *testing.T) {
	r := NewRegistry(DefaultQuota(), 8)
	e0 := mustSubmit(t, r, "acme")
	e1 := mustSubmit(t, r, "acme")
	got := r.NextRunnable()
	if got != e0 {
		t.Fatalf("pick = %v", got.ID)
	}
	r.requeueFront(got)
	if live, _, _ := r.Stats(); live != 0 {
		t.Fatalf("live after requeue = %d", live)
	}
	if got := r.NextRunnable(); got != e0 {
		t.Fatalf("re-pick = %v, want %v", got.ID, e0.ID)
	}
	if got := r.NextRunnable(); got != e1 {
		t.Fatalf("next pick = %v, want %v", got.ID, e1.ID)
	}
}

// TestRegistryStatsAndLookup: queue positions, tenant stats, the sorted
// All view, and id lookup.
func TestRegistryStatsAndLookup(t *testing.T) {
	r := NewRegistry(DefaultQuota(), 8)
	e0 := mustSubmit(t, r, "acme")
	e1 := mustSubmit(t, r, "acme")
	if p := r.QueuePos(e0); p != 1 {
		t.Errorf("QueuePos(e0) = %d", p)
	}
	if p := r.QueuePos(e1); p != 2 {
		t.Errorf("QueuePos(e1) = %d", p)
	}
	if got, ok := r.Get(e0.ID); !ok || got != e0 {
		t.Errorf("Get(%s) = %v, %v", e0.ID, got, ok)
	}
	if _, ok := r.Get("exp-9999"); ok {
		t.Error("Get of unknown id succeeded")
	}
	ts := r.Tenant("acme")
	if ts.Queued != 2 || ts.Live != 0 || ts.Completed != 0 {
		t.Errorf("tenant stats = %+v", ts)
	}
	r.NextRunnable()
	if p := r.QueuePos(e0); p != 0 {
		t.Errorf("QueuePos of running experiment = %d", p)
	}
	all := r.All()
	if len(all) != 2 || all[0] != e0 || all[1] != e1 {
		t.Errorf("All = %v", all)
	}
	// Unknown tenants read as zero, not as an error.
	if ts := r.Tenant("nope"); ts.Queued != 0 || ts.Live != 0 {
		t.Errorf("unknown tenant stats = %+v", ts)
	}
}

// TestRegistryAdoptAdvancesIDs: recovered experiments advance the id
// counter so new submissions never collide with journaled runs.
func TestRegistryAdoptAdvancesIDs(t *testing.T) {
	r := NewRegistry(DefaultQuota(), 8)
	rec := newExperiment("exp-0007", regSub("acme"))
	r.adopt(rec, false)
	next := mustSubmit(t, r, "acme")
	if next.ID != "exp-0008" {
		t.Fatalf("post-adopt id = %s, want exp-0008", next.ID)
	}
	ts := r.Tenant("acme")
	if ts.Completed != 1 {
		t.Fatalf("adopted-done not counted: %+v", ts)
	}
	// Live adoption consumes a live slot.
	live := newExperiment("exp-0009", regSub("acme"))
	r.adopt(live, true)
	if l, _, _ := r.Stats(); l != 1 {
		t.Fatalf("live after adopt = %d", l)
	}
}
