package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/harness"
	"repro/internal/journal"
)

// RecoverReport summarizes one restart's recovery pass.
type RecoverReport struct {
	// Adopted counts completed runs re-registered from their replay
	// sidecars (no re-execution).
	Adopted int
	// Resumed counts unfinished runs re-driven to completion by verified
	// re-execution of their journals.
	Resumed int
	// Damaged lists experiment ids whose journals had truncated damage
	// (torn tail, corrupt suffix) — recovered anyway from the trusted
	// prefix.
	Damaged []string
	// Failed lists experiment ids whose recovery could not complete
	// (divergence, unreadable sidecar); they are registered as failed.
	Failed []string
}

// Recover scans DataDir for experiments from previous process
// generations and brings the server back to a consistent state:
// completed runs (replay.json present) are adopted as done, and
// unfinished runs are resumed by verified re-execution — the journaled
// prefix (including every Grant record) is byte-compared while the run
// is re-driven, then fresh stages arbitrate live. Resumption is
// sequential in (tenant, id) order, so recovered grant appends are
// deterministic given the journals. Call before serving traffic.
func (s *Server) Recover() (RecoverReport, error) {
	var rep RecoverReport
	if s.cfg.DataDir == "" {
		return rep, nil
	}
	refs, err := journal.ListRuns(s.cfg.DataDir)
	if err != nil {
		return rep, err
	}
	for _, ref := range refs {
		sc, err := readSidecar(filepath.Join(ref.Dir, "submission.json"))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// A directory with no submission sidecar never held an
				// admitted experiment; skip it.
				continue
			}
			return rep, fmt.Errorf("serve: recover %s/%s: %w", ref.Tenant, ref.Run, err)
		}
		if t, ok, err := readReplay(filepath.Join(ref.Dir, "replay.json")); err != nil {
			return rep, fmt.Errorf("serve: recover %s/%s: %w", ref.Tenant, ref.Run, err)
		} else if ok {
			s.reg.adopt(newRecoveredDone(t), false)
			rep.Adopted++
			continue
		}
		damaged, err := s.resume(sc)
		if damaged {
			rep.Damaged = append(rep.Damaged, sc.ID)
		}
		if err != nil {
			rep.Failed = append(rep.Failed, sc.ID)
			continue
		}
		rep.Resumed++
	}
	return rep, nil
}

// resume re-drives one unfinished run from its journal. The recovered
// experiment is admitted into the live arbiter; the journaled grant
// prefix is scripted (and byte-verified by the resumed writer), and any
// stages beyond the crash point arbitrate live.
func (s *Server) resume(side subSidecar) (damaged bool, err error) {
	exp := newExperiment(side.ID, side.Submission)
	s.reg.adopt(exp, true)
	s.arb.Note("submit", exp.ID, exp.Sub.Tenant)
	if err := s.arb.Admit(exp.ID, exp.Sub.Tenant); err != nil {
		// Sequential resumption on a quiesced server: only possible when
		// more unfinished runs exist than cluster GPUs. Fail this run
		// rather than wedge recovery.
		exp.fail(err)
		s.reg.Complete(exp)
		return false, err
	}
	dir, err := journal.RunDir(s.cfg.DataDir, exp.Sub.Tenant, exp.ID)
	if err != nil {
		s.finish(exp)
		exp.fail(err)
		return false, err
	}
	fb, err := journal.NewFileBackend(dir)
	if err != nil {
		s.finish(exp)
		exp.fail(err)
		return false, err
	}
	defer func() {
		if cerr := fb.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "rbserve: closing recovered journal:", cerr)
		}
	}()
	script, err := grantPrefix(fb)
	if err != nil {
		s.finish(exp)
		exp.fail(err)
		return false, err
	}
	jw, hdr, damage, err := journal.Resume(fb, s.cfg.SnapshotInterval)
	if err != nil {
		s.finish(exp)
		exp.fail(err)
		return damage != "", err
	}
	sc, err := BuildScenario(side.Submission)
	if err != nil {
		s.finish(exp)
		exp.fail(err)
		return damage != "", err
	}
	if hdr != nil && (hdr.BatchSeed != sc.BatchSeed || hdr.Index != int64(sc.Index)) {
		err := fmt.Errorf("serve: journal header (seed=%d index=%d) does not match submission (seed=%d index=%d)",
			hdr.BatchSeed, hdr.Index, sc.BatchSeed, sc.Index)
		s.finish(exp)
		exp.fail(err)
		return damage != "", err
	}
	if s.armJournal != nil {
		s.armJournal(exp.ID, jw)
	}
	s.run(exp, sc, jw, dir, script)
	if exp.State() == StateFailed {
		return damage != "", fmt.Errorf("serve: recovery run failed")
	}
	return damage != "", nil
}

// grantPrefix decodes the trusted records of a crashed journal and
// returns its Grant sequence — the arbitration decisions the previous
// generation's run consumed before dying. The resumed re-execution
// replays exactly these.
func grantPrefix(b journal.Backend) ([]harness.GrantDecision, error) {
	raw, err := b.Load()
	if err != nil {
		return nil, err
	}
	var out []harness.GrantDecision
	for _, payload := range raw.Records {
		rec, err := journal.DecodeRecord(payload)
		if err != nil {
			// Damage inside the trusted set would have been truncated by
			// Load; an undecodable record here is real corruption.
			return nil, fmt.Errorf("serve: grant prescan: %w", err)
		}
		if g, ok := rec.(*journal.Grant); ok {
			out = append(out, harness.GrantDecision{
				Stage: int(g.Stage), Want: int(g.Want), Granted: int(g.Granted), At: g.At,
			})
		}
	}
	return out, nil
}

// readSidecar loads a run's submission.json.
func readSidecar(path string) (subSidecar, error) {
	var side subSidecar
	data, err := os.ReadFile(path)
	if err != nil {
		return side, err
	}
	if err := json.Unmarshal(data, &side); err != nil {
		return side, fmt.Errorf("parsing %s: %w", path, err)
	}
	return side, nil
}

// readReplay loads a run's replay.json when present.
func readReplay(path string) (ReplayTuple, bool, error) {
	var t ReplayTuple
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return t, false, nil
	}
	if err != nil {
		return t, false, err
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return t, false, fmt.Errorf("parsing %s: %w", path, err)
	}
	return t, true, nil
}
