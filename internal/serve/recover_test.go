package serve

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	"repro/internal/harness"
	"repro/internal/journal"
)

// grantAll is the uncontended gate: every request granted in full.
func grantAll(req harness.GrantRequest) int { return req.Want }

// refRun executes sub's scenario uncontended and journaled offline,
// returning the reference digest and the journal's total record count
// (for picking crash points).
func refRun(t *testing.T, sub Submission) (harness.Digest, uint64) {
	t.Helper()
	sc, err := BuildScenario(sub)
	if err != nil {
		t.Fatal(err)
	}
	b := journal.NewMemBackend()
	w := journal.NewWriter(b, 8)
	r, err := harness.StartScenario(sc, harness.RunConfig{Journal: w, Gate: grantAll})
	if err != nil {
		t.Fatal(err)
	}
	for !r.Done() {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	a, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return harness.ComputeDigest(a), w.Seq()
}

// TestServerCrashRecoveryAcrossGenerations: generation A is killed
// mid-run with several live experiments (crash points injected into
// their journal writers, one with a torn tail); generation B starts on
// the same data directory, adopts the completed run from its replay
// sidecar, and resumes every unfinished journal by verified
// re-execution — each recovering to the same digest as an uninterrupted
// run. The cluster is uncontended (capacity >> demand) so grants are
// reproducible across generations and the uninterrupted reference is
// well-defined.
func TestServerCrashRecoveryAcrossGenerations(t *testing.T) {
	dataDir := t.TempDir()
	subs := []Submission{
		smallSub("acme", 301), // completes in generation A
		smallSub("acme", 302), // crashes early
		smallSub("beta", 303), // crashes mid-run, torn tail
		smallSub("ceta", 304), // crashes late
	}
	wantDigest := make([]harness.Digest, len(subs))
	totals := make([]uint64, len(subs))
	for i, sub := range subs {
		wantDigest[i], totals[i] = refRun(t, sub)
	}

	// Generation A: submissions arrive over HTTP; ids are assigned in
	// order (exp-0000..exp-0003). Crash points by id.
	cfg := Config{Capacity: 64, DataDir: dataDir, SnapshotInterval: 8}
	sA, tsA := newTestServer(t, cfg)
	crash := map[string][2]uint64{
		"exp-0001": {totals[1] / 4, 0},
		"exp-0002": {totals[2] / 2, 3},
		"exp-0003": {totals[3] * 3 / 4, 0},
	}
	sA.armJournal = func(id string, jw *journal.Writer) {
		if cp, ok := crash[id]; ok {
			jw.SetCrashPoint(cp[0], int(cp[1]))
		}
	}
	ids := make([]string, len(subs))
	for i, sub := range subs {
		resp, body := postSub(t, tsA, sub)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for i, want := range []string{"exp-0000", "exp-0001", "exp-0002", "exp-0003"} {
		if ids[i] != want {
			t.Fatalf("ids = %v", ids)
		}
	}
	sA.Drain()
	sA.Close() // all drivers finished; journals closed

	if st := mustGet(t, sA, ids[0]).State(); st != StateDone {
		t.Fatalf("gen A survivor state = %v", st)
	}
	for _, id := range ids[1:] {
		if st := mustGet(t, sA, id).State(); st != StateFailed {
			t.Fatalf("gen A %s state = %v, want failed", id, st)
		}
	}

	// Generation B: fresh process state, same data directory.
	sB, _ := newTestServer(t, cfg)
	rep, err := sB.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adopted != 1 || rep.Resumed != 3 || len(rep.Failed) != 0 {
		t.Fatalf("recover report = %+v", rep)
	}
	if len(rep.Damaged) != 1 || rep.Damaged[0] != "exp-0002" {
		t.Fatalf("damaged = %v, want [exp-0002] (torn tail)", rep.Damaged)
	}
	if live := sB.arb.Live(); live != 0 {
		t.Fatalf("%d experiments still hold GPUs after recovery", live)
	}

	// Every experiment — adopted and resumed — reads done with the same
	// digest as its uninterrupted reference, and its replay tuple
	// verifies offline.
	for i, id := range ids {
		exp := mustGet(t, sB, id)
		if st := exp.State(); st != StateDone {
			t.Fatalf("recovered %s state = %v", id, st)
		}
		tup, ok := exp.Tuple()
		if !ok {
			t.Fatalf("recovered %s has no tuple", id)
		}
		if tup.Digest != DigestString(wantDigest[i]) {
			t.Fatalf("%s recovered digest %s != uninterrupted %s", id, tup.Digest, DigestString(wantDigest[i]))
		}
		if _, err := VerifyReplay(tup); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}

	// New submissions never collide with recovered ids.
	exp, err := sB.reg.Submit(smallSub("acme", 999), nil)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "exp-0004" {
		t.Fatalf("post-recovery id = %s", exp.ID)
	}

	// Generation C: everything now has a replay sidecar — recovery is a
	// pure adoption pass, no re-execution.
	sC, _ := newTestServer(t, cfg)
	repC, err := sC.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if repC.Adopted != 4 || repC.Resumed != 0 || len(repC.Damaged) != 0 {
		t.Fatalf("gen C report = %+v", repC)
	}

	// The resumed journals carry the full grant record set on disk.
	for i, id := range ids {
		dir := filepath.Join(dataDir, subs[i].Tenant, id)
		fb, err := journal.NewFileBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		script, err := grantPrefix(fb)
		if cerr := fb.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(script) != len(subs[i].Stages) {
			t.Fatalf("%s journal holds %d grants for %d stages", id, len(script), len(subs[i].Stages))
		}
	}
}

// mustGet looks an experiment up in a server's registry.
func mustGet(t *testing.T, s *Server, id string) *Experiment {
	t.Helper()
	exp, ok := s.reg.Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	return exp
}
