package serve

import "time"

// wallNow is the package's single wall-clock read: an ops-only surface
// for submission/start/finish timestamps in status bodies. Nothing
// downstream of the grant gate reads it — wall time never feeds a run,
// a grant decision, or a digest, so the determinism boundary argued in
// the package doc holds by construction: grep for time. in this package
// and this is the only hit.
//
//rbvet:impure(ops wall-clock surface: HTTP status timestamps only, never feeds runs or digests)
func wallNow() float64 {
	return float64(time.Now().UnixMilli()) / 1000 //rbvet:ignore wallclock — ops status timestamps; outside the determinism boundary
}
