package serve

import (
	"testing"

	"repro/internal/harness"
)

func TestArbiterAdmitExchangeDone(t *testing.T) {
	arb, err := NewArbiter(8, PolicySlack)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewArbiter(0, PolicySlack); err == nil {
		t.Error("capacity 0 accepted")
	}
	if err := arb.Admit("a", "acme"); err != nil {
		t.Fatal(err)
	}
	if err := arb.Admit("a", "acme"); err == nil {
		t.Error("duplicate admission accepted")
	}
	if got := arb.InUse(); got != 1 {
		t.Fatalf("InUse after admit = %d", got)
	}
	g, err := arb.Exchange("a", 0, 6, 10)
	if err != nil || g != 6 {
		t.Fatalf("Exchange = %d, %v", g, err)
	}
	if arb.InUse() != 6 || arb.Free() != 2 {
		t.Fatalf("InUse/Free = %d/%d", arb.InUse(), arb.Free())
	}
	if _, err := arb.Exchange("ghost", 0, 1, 0); err == nil {
		t.Error("exchange for non-live experiment accepted")
	}
	arb.Done("a")
	if arb.InUse() != 0 || arb.Live() != 0 {
		t.Fatalf("after Done: InUse=%d Live=%d", arb.InUse(), arb.Live())
	}
	arb.Done("a") // idempotent
}

// TestArbiterNeverBlocksAndNeverOversubscribes: a sweep of random-ish
// exchange patterns keeps Σ holds ≤ capacity with every grant ≥ 1.
func TestArbiterNeverBlocksAndNeverOversubscribes(t *testing.T) {
	const capacity = 12
	for _, policy := range []Policy{PolicySlack, PolicyFIFO} {
		arb, err := NewArbiter(capacity, policy)
		if err != nil {
			t.Fatal(err)
		}
		ids := []string{"a", "b", "c", "d", "e"}
		for _, id := range ids {
			if err := arb.Admit(id, "t-"+id); err != nil {
				t.Fatalf("%v admit %s: %v", policy, id, err)
			}
		}
		// Deterministic pseudo-random exchange pattern.
		x := uint64(12345)
		for step := 0; step < 200; step++ {
			x = x*6364136223846793005 + 1442695040888963407
			id := ids[int(x>>33)%len(ids)]
			want := 1 + int((x>>17)%9)
			slack := float64(int(x%100) - 50)
			g, err := arb.Exchange(id, step, want, slack)
			if err != nil {
				t.Fatalf("%v exchange: %v", policy, err)
			}
			if g < 1 || g > want {
				t.Fatalf("%v: grant %d for want %d", policy, g, want)
			}
			if used := arb.InUse(); used > capacity {
				t.Fatalf("%v: %d/%d GPUs held", policy, used, capacity)
			}
		}
		// Synthesize completions, then replay the whole log through the
		// fleet oracle (capacity conservation, exactly-once lifecycle).
		for _, id := range ids {
			arb.Done(id)
		}
		evlog := arb.Log()
		// Prepend the submits the oracle expects.
		full := make([]harness.FleetEvent, 0, len(evlog)+len(ids))
		for i, id := range ids {
			full = append(full, harness.FleetEvent{Seq: i, Kind: "submit", Exp: id, Tenant: "t-" + id})
		}
		for _, e := range evlog {
			e.Seq += len(ids)
			full = append(full, e)
		}
		if vs := harness.CheckFleetInvariants(full, capacity, len(ids)); len(vs) != 0 {
			t.Fatalf("%v: fleet oracle: %v", policy, vs)
		}
	}
}

// TestArbiterSlackReservesForCritical: a slack-rich requester is
// squeezed by the unmet demand of a more critical live experiment; the
// critical requester itself is not.
func TestArbiterSlackReservesForCritical(t *testing.T) {
	arb, err := NewArbiter(10, PolicySlack)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"crit", "rich"} {
		if err := arb.Admit(id, id); err != nil {
			t.Fatal(err)
		}
	}
	// The critical experiment asks for 8 with slack -5 but only 6 are
	// free beyond rich's hold... first give rich a baseline hold.
	if g, _ := arb.Exchange("rich", 0, 4, 100); g != 4 {
		t.Fatalf("rich baseline grant = %d", g)
	}
	// Critical asks for 8: free = 10-4 = 6, no one stricter → grant 6.
	g, err := arb.Exchange("crit", 0, 8, -5)
	if err != nil || g != 6 {
		t.Fatalf("crit grant = %d, %v", g, err)
	}
	// Rich re-asks for 4: free = 10-6 = 4, but crit's unmet demand
	// (8-6=2) is reserved → rich squeezed to 2.
	g, err = arb.Exchange("rich", 1, 4, 100)
	if err != nil || g != 2 {
		t.Fatalf("rich squeezed grant = %d, %v", g, err)
	}
	// Crit re-asks: free = 10-2 = 8, nothing stricter → full 8.
	g, err = arb.Exchange("crit", 1, 8, -5)
	if err != nil || g != 8 {
		t.Fatalf("crit full grant = %d, %v", g, err)
	}
}

// TestArbiterFIFOStaticShare: the naive baseline caps every grant at
// capacity/live regardless of slack.
func TestArbiterFIFOStaticShare(t *testing.T) {
	arb, err := NewArbiter(10, PolicyFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if err := arb.Admit("a", "a"); err != nil {
		t.Fatal(err)
	}
	// Alone: share = 10.
	if g, _ := arb.Exchange("a", 0, 8, -100); g != 8 {
		t.Fatalf("solo grant = %d", g)
	}
	if err := arb.Admit("b", "b"); err != nil {
		t.Fatal(err)
	}
	// Two live: share = 5, even for a deadline-critical request.
	if g, _ := arb.Exchange("b", 0, 9, -1000); g != 2 {
		// free = 10-8 = 2 < share
		t.Fatalf("b grant = %d, want free-bound 2", g)
	}
	if g, _ := arb.Exchange("a", 1, 8, -100); g != 5 {
		t.Fatalf("a re-grant = %d, want share-bound 5", g)
	}
}

// TestArbiterAdmitRequiresFreeGPU: a fully-held cluster refuses
// admission (never blocks); a completion frees the slot.
func TestArbiterAdmitRequiresFreeGPU(t *testing.T) {
	arb, err := NewArbiter(2, PolicySlack)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := arb.Admit(id, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := arb.Admit("c", "c"); err == nil {
		t.Error("admission with no free GPU accepted")
	}
	arb.Done("a")
	if err := arb.Admit("c", "c"); err != nil {
		t.Errorf("admission after a completion refused: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"": PolicySlack, "slack": PolicySlack, "fifo": PolicyFIFO} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("bad policy accepted")
	}
}
