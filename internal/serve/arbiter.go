package serve

import (
	"fmt"
	"sync"

	"repro/internal/harness"
)

// Policy selects the arbiter's stage-boundary reallocation rule.
type Policy int

const (
	// PolicySlack is HyperSched-style deadline-slack arbitration: before
	// serving a request, headroom is reserved for every live experiment
	// that is more deadline-critical (smaller slack) and under-allocated,
	// so slack-rich jobs are squeezed toward deadline-critical ones.
	PolicySlack Policy = iota
	// PolicyFIFO is the naive baseline: every live experiment gets at
	// most an equal static share of the cluster, in admission order,
	// blind to deadlines. The differential tests hold PolicySlack to
	// meeting strictly more deadlines than this.
	PolicyFIFO
)

// String renders the policy for stats and flags.
func (p Policy) String() string {
	switch p {
	case PolicySlack:
		return "slack"
	case PolicyFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "slack":
		return PolicySlack, nil
	case "fifo":
		return PolicyFIFO, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want slack or fifo)", s)
	}
}

// hold is one live experiment's arbiter state: its current GPU hold and
// the latest request context (want, slack) used to rank criticality.
type hold struct {
	tenant string
	gpus   int
	want   int
	slack  float64
	asked  bool // has made at least one request (slack is meaningful)
	order  int  // admission sequence, FIFO tiebreak
}

// Arbiter is the cross-experiment resource ledger: a fixed GPU capacity
// shared by every live experiment. Admission reserves 1 GPU (the
// minimum viable stage grant); every stage boundary exchanges the
// experiment's hold for a fresh grant; completion releases it. The
// capacity invariant — Σ holds ≤ capacity — holds after every operation,
// and every exchange grants at least 1 GPU, so arbitration never blocks:
// a live experiment always makes progress through queued trial waves.
//
// Every action is appended to an event log (plain harness data) that the
// fleet-fairness oracle replays.
type Arbiter struct {
	mu       sync.Mutex
	capacity int
	policy   Policy
	holds    map[string]*hold
	admits   int
	log      []harness.FleetEvent
}

// NewArbiter builds an arbiter for a cluster of capacity GPUs.
func NewArbiter(capacity int, policy Policy) (*Arbiter, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("serve: arbiter capacity %d, want >= 1", capacity)
	}
	return &Arbiter{capacity: capacity, policy: policy, holds: map[string]*hold{}}, nil
}

// Capacity returns the shared cluster size in GPUs.
func (a *Arbiter) Capacity() int { return a.capacity }

// record appends one event to the log with the next global sequence.
func (a *Arbiter) record(e harness.FleetEvent) {
	e.Seq = len(a.log)
	a.log = append(a.log, e)
}

// Log returns a copy of the arbiter's event log.
func (a *Arbiter) Log() []harness.FleetEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]harness.FleetEvent(nil), a.log...)
}

// Note records a submission-side lifecycle event ("submit", "reject")
// into the shared log so the fairness oracle sees the full queue story.
func (a *Arbiter) Note(kind, exp, tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.record(harness.FleetEvent{Kind: kind, Exp: exp, Tenant: tenant})
}

// InUse returns the sum of live holds.
func (a *Arbiter) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUseLocked()
}

func (a *Arbiter) inUseLocked() int {
	sum := 0
	for _, h := range a.holds {
		sum += h.gpus
	}
	return sum
}

// Free returns the unheld capacity.
func (a *Arbiter) Free() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capacity - a.inUseLocked()
}

// Live returns the number of live experiments.
func (a *Arbiter) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.holds)
}

// Admit makes exp live, reserving the 1-GPU minimum its first stage is
// guaranteed. It fails when no GPU is free — admission control must gate
// on Free() — or on a duplicate admission.
func (a *Arbiter) Admit(exp, tenant string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.holds[exp]; dup {
		return fmt.Errorf("serve: experiment %s already admitted", exp)
	}
	if a.capacity-a.inUseLocked() < 1 {
		return fmt.Errorf("serve: no free GPU to admit %s (%d/%d held)", exp, a.inUseLocked(), a.capacity)
	}
	a.holds[exp] = &hold{tenant: tenant, gpus: 1, order: a.admits}
	a.admits++
	a.record(harness.FleetEvent{Kind: "admit", Exp: exp, Tenant: tenant, Held: 1})
	return nil
}

// Exchange is the stage-boundary arbitration: exp releases its current
// hold and requests want GPUs with the given deadline slack (deadline −
// now − predicted remaining; smaller or negative means more critical).
// The release and regrant are atomic, and the requester's own released
// hold is at least 1, so the grant is always at least 1 GPU.
func (a *Arbiter) Exchange(exp string, stage, want int, slack float64) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	h, ok := a.holds[exp]
	if !ok {
		return 0, fmt.Errorf("serve: exchange for non-live experiment %s", exp)
	}
	if want < 1 {
		want = 1
	}
	h.want, h.slack, h.asked = want, slack, true

	free := a.capacity
	for id, o := range a.holds {
		if id != exp {
			free -= o.gpus
		}
	}
	grant := want
	if grant > free {
		grant = free
	}
	switch a.policy {
	case PolicyFIFO:
		// Naive static split: at most capacity/live each, slack-blind.
		share := a.capacity / len(a.holds)
		if share < 1 {
			share = 1
		}
		if grant > share {
			grant = share
		}
	default:
		// Slack policy: reserve the unmet demand of every strictly more
		// critical live experiment, then serve from what remains. A
		// deadline-critical requester sees few or no reservations and
		// takes everything it needs; a slack-rich one is squeezed down to
		// its fair remainder (never below 1).
		reserve := 0
		for id, o := range a.holds {
			if id == exp || !o.asked {
				continue
			}
			if o.slack < slack && o.want > o.gpus {
				reserve += o.want - o.gpus
			}
		}
		if avail := free - reserve; grant > avail {
			grant = avail
		}
	}
	if grant < 1 {
		grant = 1
	}
	h.gpus = grant
	a.record(harness.FleetEvent{
		Kind: "grant", Exp: exp, Tenant: h.tenant,
		Stage: stage, Want: want, Granted: grant, Held: grant,
	})
	if used := a.inUseLocked(); used > a.capacity {
		// Unreachable by construction; fail loudly rather than
		// oversubscribe the cluster silently.
		panic(fmt.Sprintf("serve: arbiter oversubscribed: %d/%d GPUs after granting %s", used, a.capacity, exp))
	}
	return grant, nil
}

// Done releases exp's hold and removes it from the live set.
func (a *Arbiter) Done(exp string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	h, ok := a.holds[exp]
	if !ok {
		return
	}
	delete(a.holds, exp)
	a.record(harness.FleetEvent{Kind: "done", Exp: exp, Tenant: h.tenant})
}
