package serve

import (
	"fmt"
	"testing"

	"repro/internal/harness"
)

// fleetJobs builds deterministic fleet jobs from submissions.
func fleetJobs(t *testing.T, subs []Submission) []FleetJob {
	t.Helper()
	jobs := make([]FleetJob, len(subs))
	for i, sub := range subs {
		sc, err := BuildScenario(sub)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = FleetJob{ID: fmt.Sprintf("job-%02d", i), Tenant: sub.Tenant, Scenario: sc}
	}
	return jobs
}

// TestSlackPolicyBeatsFIFOOnDeadlines is the arbiter differential: a
// pinned three-tenant fleet where slack arbitration meets a deadline the
// FIFO static-share baseline misses. Two slack-rich jobs want 1 GPU
// each; the deadline-critical job needs 8 GPUs for its first stage. The
// slack policy grants from actual free capacity (12 − 2 = 10 → full 8);
// FIFO caps at capacity/live = 4 and blows the deadline. Neither policy
// may exceed cluster capacity, checked by replaying both logs through
// the fleet oracle.
func TestSlackPolicyBeatsFIFOOnDeadlines(t *testing.T) {
	const capacity = 12
	subs := []Submission{
		{Tenant: "loose-a", Model: "resnet50", Stages: [][2]int{{4, 2}, {2, 2}},
			Seed: 601, MaxGPUs: 2, DeadlineFactor: 4},
		{Tenant: "loose-b", Model: "resnet50", Stages: [][2]int{{4, 2}, {2, 2}},
			Seed: 602, MaxGPUs: 2, DeadlineFactor: 4},
		{Tenant: "tight", Model: "resnet50", Stages: [][2]int{{8, 4}, {4, 4}, {2, 6}},
			Seed: 603, MaxGPUs: 8, DeadlineFactor: 1.5},
	}
	jobs := fleetJobs(t, subs)

	slack, err := RunFleet(capacity, PolicySlack, jobs)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := RunFleet(capacity, PolicyFIFO, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*FleetResult{slack, fifo} {
		for _, j := range res.Jobs {
			if j.Err != nil {
				t.Fatalf("%s: %v", j.ID, j.Err)
			}
		}
	}

	// The differential: slack meets strictly more deadlines, and the
	// specific deadline it saves is the critical job's.
	if slack.Met() <= fifo.Met() {
		t.Fatalf("slack met %d deadlines, fifo met %d: no differential", slack.Met(), fifo.Met())
	}
	crit := 2
	if !slack.Jobs[crit].DeadlineMet {
		t.Fatalf("slack missed the critical deadline: jct %.1f > %.1f",
			slack.Jobs[crit].Artifacts.Result.JCT, slack.Jobs[crit].Artifacts.Deadline)
	}
	if fifo.Jobs[crit].DeadlineMet {
		t.Fatalf("fifo met the critical deadline: squeeze did not bind")
	}
	// The mechanism: slack grants the critical first stage in full, FIFO
	// caps it at the static share.
	sg, fg := slack.Jobs[crit].Artifacts.Grants, fifo.Jobs[crit].Artifacts.Grants
	if sg[0].Granted != 8 {
		t.Fatalf("slack stage-0 grant = %d, want 8", sg[0].Granted)
	}
	if fg[0].Granted != capacity/len(jobs) {
		t.Fatalf("fifo stage-0 grant = %d, want static share %d", fg[0].Granted, capacity/len(jobs))
	}
	// The slack-rich jobs still meet their deadlines under both policies:
	// feeding the critical job did not starve anyone past their slack.
	for _, i := range []int{0, 1} {
		if !slack.Jobs[i].DeadlineMet || !fifo.Jobs[i].DeadlineMet {
			t.Fatalf("slack-rich job %d missed its deadline", i)
		}
	}
	// Neither policy ever oversubscribes the cluster or loses a job.
	for name, res := range map[string]*FleetResult{"slack": slack, "fifo": fifo} {
		if vs := harness.CheckFleetInvariants(res.Log, capacity, len(jobs)); len(vs) != 0 {
			t.Fatalf("%s fleet oracle: %v", name, vs)
		}
	}
}

// TestRunFleetDeterministic: the fleet schedule is a pure function of
// (jobs, capacity, policy) — two runs produce identical digests and
// identical arbiter logs.
func TestRunFleetDeterministic(t *testing.T) {
	var subs []Submission
	for i := 0; i < 6; i++ {
		sub := smallSub(fmt.Sprintf("tenant-%d", i%3), uint64(700+i))
		subs = append(subs, sub)
	}
	jobs := fleetJobs(t, subs)
	a, err := RunFleet(5, PolicySlack, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(5, PolicySlack, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i].Err != nil || b.Jobs[i].Err != nil {
			t.Fatalf("job %d: %v / %v", i, a.Jobs[i].Err, b.Jobs[i].Err)
		}
		if a.Jobs[i].Digest != b.Jobs[i].Digest {
			t.Fatalf("job %d digests differ across identical fleet runs", i)
		}
	}
	if len(a.Log) != len(b.Log) {
		t.Fatalf("log lengths differ: %d vs %d", len(a.Log), len(b.Log))
	}
	for i := range a.Log {
		if a.Log[i] != b.Log[i] {
			t.Fatalf("log event %d differs: %+v vs %+v", i, a.Log[i], b.Log[i])
		}
	}
}

// TestRunFleetInvariantsUnderContention: more jobs than the cluster can
// hold at once, under both policies — admission queues, every job still
// completes exactly once within capacity.
func TestRunFleetInvariantsUnderContention(t *testing.T) {
	const capacity = 4
	var subs []Submission
	for i := 0; i < 9; i++ {
		subs = append(subs, smallSub(fmt.Sprintf("tenant-%d", i%3), uint64(800+i)))
	}
	jobs := fleetJobs(t, subs)
	for _, pol := range []Policy{PolicySlack, PolicyFIFO} {
		res, err := RunFleet(capacity, pol, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range res.Jobs {
			if j.Err != nil {
				t.Fatalf("%v %s: %v", pol, j.ID, j.Err)
			}
			if j.Artifacts == nil || j.Digest == 0 {
				t.Fatalf("%v %s: no artifacts", pol, j.ID)
			}
		}
		if vs := harness.CheckFleetInvariants(res.Log, capacity, len(jobs)); len(vs) != 0 {
			t.Fatalf("%v fleet oracle: %v", pol, vs)
		}
	}
}
