package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/harness"
	"repro/internal/journal"
)

// Config parameterizes a Server.
type Config struct {
	// Capacity is the shared simulated cluster size in GPUs.
	Capacity int
	// Policy selects the arbitration rule (default PolicySlack).
	Policy Policy
	// Quota is the per-tenant admission quota (zero value: DefaultQuota).
	Quota Quota
	// MaxLive bounds globally-live experiments (default Capacity, so every
	// live experiment can hold its 1-GPU minimum).
	MaxLive int
	// DataDir, when non-empty, is the durable root: every admitted
	// experiment journals under DataDir/<tenant>/<id>/ with submission and
	// replay sidecars, and Recover resumes unfinished runs from it.
	DataDir string
	// SnapshotInterval is the journal snapshot interval in records
	// (default 64; 0 after explicit set means disabled — use -1 sentinel
	// via cmd flag handling, the server takes the value as-is when >= 0).
	SnapshotInterval uint64
}

// Server is the control plane: a Registry for admission, an Arbiter for
// GPUs, and one driver goroutine per live experiment stepping its
// virtual clock. HTTP handlers only read experiment state and enqueue
// submissions; everything that mutates shared resources goes through the
// registry, the arbiter, or the pump.
type Server struct {
	cfg Config
	reg *Registry
	arb *Arbiter
	mux *http.ServeMux

	// pumpMu serializes admission (NextRunnable → Admit → spawn) so two
	// pumps cannot interleave their picks.
	pumpMu sync.Mutex
	wg     sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	rejects int

	// armJournal, when set (in-package tests only), sees every
	// experiment's journal writer before the run starts — the crash
	// injection point for kill/restart tests.
	armJournal func(id string, jw *journal.Writer)
}

// NewServer builds a server over a fresh registry and arbiter.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Quota == (Quota{}) {
		cfg.Quota = DefaultQuota()
	}
	if cfg.MaxLive == 0 {
		cfg.MaxLive = cfg.Capacity
	}
	if cfg.SnapshotInterval == 0 {
		cfg.SnapshotInterval = 64
	}
	arb, err := NewArbiter(cfg.Capacity, cfg.Policy)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg,
		reg: NewRegistry(cfg.Quota, cfg.MaxLive),
		arb: arb,
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/experiments/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/experiments/{id}/replay", s.handleReplay)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}", s.handleTenant)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s, nil
}

// Handler returns the HTTP API surface.
func (s *Server) Handler() http.Handler { return s.mux }

// FleetLog returns the arbiter's event log — the input of the
// harness fleet-fairness oracle.
func (s *Server) FleetLog() []harness.FleetEvent { return s.arb.Log() }

// Close stops admitting queued work and waits for every live driver to
// finish its (virtual-time) run.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// Drain blocks until every submitted experiment has reached a final
// state and the queues are empty — the test-side quiesce point before
// inspecting the fleet log.
func (s *Server) Drain() {
	for {
		exps := s.reg.All()
		for _, e := range exps {
			e.Wait()
		}
		live, queued, total := s.reg.Stats()
		if live == 0 && queued == 0 && total == len(exps) {
			return
		}
	}
}

// errBody is the JSON error envelope.
type errBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

// writeJSON writes a JSON response; an encode error means the client
// went away mid-write and there is nothing left to do on this
// connection.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}

// handleSubmit is POST /v1/experiments: validate, enqueue (429 +
// Retry-After on a full tenant queue), and pump the admission loop.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub Submission
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&sub); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{Error: "bad submission: " + err.Error()})
		return
	}
	if err := sub.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
		return
	}
	if sub.MaxGPUs > s.cfg.Quota.MaxGPUs {
		writeJSON(w, http.StatusBadRequest, errBody{
			Error: fmt.Sprintf("max_gpus %d exceeds tenant quota %d", sub.MaxGPUs, s.cfg.Quota.MaxGPUs),
		})
		return
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, errBody{Error: "server shutting down"})
		return
	}
	// The submit event is recorded inside the registry lock, before the
	// experiment becomes visible to any pump, so the fleet log never shows
	// an admission without its submission.
	exp, err := s.reg.Submit(sub, func(e *Experiment) {
		s.arb.Note("submit", e.ID, sub.Tenant)
	})
	var bl *ErrBacklog
	if errors.As(err, &bl) {
		s.mu.Lock()
		s.rejects++
		rid := fmt.Sprintf("reject-%04d", s.rejects)
		s.mu.Unlock()
		s.arb.Note("reject", rid, sub.Tenant)
		w.Header().Set("Retry-After", strconv.Itoa(bl.RetryAfterSeconds))
		writeJSON(w, http.StatusTooManyRequests, errBody{
			Error: bl.Error(), RetryAfter: bl.RetryAfterSeconds,
		})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, exp.StatusIn(s.reg))
	s.pump()
}

// handleStatus is GET /v1/experiments/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{Error: "unknown experiment"})
		return
	}
	writeJSON(w, http.StatusOK, exp.StatusIn(s.reg))
}

// handleEvents is GET /v1/experiments/{id}/events: the event feed as
// chunked ndjson, streamed live until the experiment reaches a final
// state or the client disconnects. ?from=N resumes from sequence N.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{Error: "unknown experiment"})
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errBody{Error: "bad from parameter"})
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for i := from; ; {
		ev, ok, ch, final := exp.next(i)
		if ok {
			if err := enc.Encode(ev); err != nil {
				return // client gone
			}
			if fl != nil {
				fl.Flush()
			}
			i++
			continue
		}
		if final {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-ch:
		}
	}
}

// handleReplay is GET /v1/experiments/{id}/replay: the completed
// experiment's (seed, spec, decisions) tuple — 409 until it is done.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{Error: "unknown experiment"})
		return
	}
	t, ok := exp.Tuple()
	if !ok {
		writeJSON(w, http.StatusConflict, errBody{Error: "experiment not completed"})
		return
	}
	writeJSON(w, http.StatusOK, t)
}

// handleTenant is GET /v1/tenants/{tenant}.
func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if !validName(name) {
		writeJSON(w, http.StatusBadRequest, errBody{Error: "invalid tenant name"})
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Tenant(name))
}

// FleetStats is the JSON body of GET /v1/stats.
type FleetStats struct {
	Capacity int    `json:"capacity"`
	Policy   string `json:"policy"`
	InUse    int    `json:"in_use"`
	Free     int    `json:"free"`
	Live     int    `json:"live"`
	Queued   int    `json:"queued"`
	Total    int    `json:"total"`
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	live, queued, total := s.reg.Stats()
	writeJSON(w, http.StatusOK, FleetStats{
		Capacity: s.arb.Capacity(),
		Policy:   s.cfg.Policy.String(),
		InUse:    s.arb.InUse(),
		Free:     s.arb.Free(),
		Live:     live,
		Queued:   queued,
		Total:    total,
	})
}

// pump runs the admission loop: while a GPU is free and the registry has
// runnable work, admit the next experiment and spawn its driver. Called
// after every submission, grant (a shrunken hold frees GPUs), and
// completion. pumpMu serializes picks; the Free check races only with
// concurrent grants, and a lost race requeues the pick at the head of
// its tenant queue (FIFO preserved) to retry on the next pump.
func (s *Server) pump() {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	for {
		if s.arb.Free() < 1 {
			return
		}
		exp := s.reg.NextRunnable()
		if exp == nil {
			return
		}
		if err := s.arb.Admit(exp.ID, exp.Sub.Tenant); err != nil {
			s.reg.requeueFront(exp)
			return
		}
		s.wg.Add(1)
		go s.drive(exp)
	}
}

// drive runs one admitted experiment start to finish.
func (s *Server) drive(exp *Experiment) {
	defer s.wg.Done()
	sc, err := BuildScenario(exp.Sub)
	if err != nil {
		// Unreachable: submissions are validated before enqueue. Release
		// the admission either way.
		s.finish(exp)
		exp.fail(err)
		return
	}
	jw, dir, cleanup, err := s.openJournal(exp)
	if err != nil {
		s.finish(exp)
		exp.fail(err)
		return
	}
	defer cleanup()
	s.run(exp, sc, jw, dir, nil)
}

// finish releases an experiment's admission: arbiter hold, registry live
// slot, and a pump for whatever the freed GPUs can now admit.
func (s *Server) finish(exp *Experiment) {
	s.arb.Done(exp.ID)
	s.reg.Complete(exp)
	s.pump()
}

// openJournal prepares the experiment's durable state under
// DataDir/<tenant>/<id>/: the submission sidecar and a file-backed
// journal writer. With no DataDir everything returns zero values.
func (s *Server) openJournal(exp *Experiment) (*journal.Writer, string, func(), error) {
	if s.cfg.DataDir == "" {
		return nil, "", func() {}, nil
	}
	dir, err := journal.RunDir(s.cfg.DataDir, exp.Sub.Tenant, exp.ID)
	if err != nil {
		return nil, "", nil, err
	}
	if err := writeSidecar(filepath.Join(dir, "submission.json"), subSidecar{ID: exp.ID, Submission: exp.Sub}); err != nil {
		return nil, "", nil, err
	}
	fb, err := journal.NewFileBackend(dir)
	if err != nil {
		return nil, "", nil, err
	}
	jw := journal.NewWriter(fb, s.cfg.SnapshotInterval)
	if s.armJournal != nil {
		s.armJournal(exp.ID, jw)
	}
	cleanup := func() {
		if err := fb.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rbserve: closing journal:", err)
		}
	}
	return jw, dir, cleanup, nil
}

// run drives exp's scenario on its own virtual clock, arbitrating every
// stage boundary through the shared arbiter. script, when non-empty,
// replays a recovered journal's grant prefix before going live — the
// resumed run's re-execution consumes exactly the grants the crashed
// generation was given, then fresh stages arbitrate normally.
func (s *Server) run(exp *Experiment, sc harness.Scenario, jw *journal.Writer, dir string, script []harness.GrantDecision) {
	defer s.finish(exp)
	si := 0
	gate := func(req harness.GrantRequest) int {
		var g int
		if si < len(script) {
			g = script[si].Granted
			si++
		} else {
			slack := req.Deadline - req.Now - req.PredictedRemaining
			live, err := s.arb.Exchange(exp.ID, req.Stage, req.Want, slack)
			if err != nil {
				// Unreachable while the driver holds the admission; grant
				// in full rather than wedge the run.
				live = req.Want
			}
			g = live
		}
		exp.noteGrant(harness.GrantDecision{Stage: req.Stage, Want: req.Want, Granted: g, At: req.Now})
		// A shrunken hold may have freed GPUs: let the pump admit into them.
		s.pump()
		return g
	}
	exp.markAdmitted()
	run, err := harness.StartScenario(sc, harness.RunConfig{Journal: jw, Gate: gate})
	if err != nil {
		exp.fail(err)
		return
	}
	exp.notePlan(run)
	// Mirror live progress every progressEvery virtual events: cheap
	// enough to keep the status endpoint fresh without a lock per event.
	const progressEvery = 256
	for !run.Done() {
		if err := run.Step(); err != nil {
			exp.fail(err)
			return
		}
		if st := run.Steps(); st%progressEvery == 0 {
			exp.progress(run.Stage(), run.Now(), run.CostSoFar())
		}
	}
	a, err := run.Finish()
	if err != nil {
		exp.fail(err)
		return
	}
	d := harness.ComputeDigest(a)
	exp.complete(a, d)
	if dir != "" {
		if t, ok := exp.Tuple(); ok {
			if err := writeSidecar(filepath.Join(dir, "replay.json"), t); err != nil {
				fmt.Fprintln(os.Stderr, "rbserve: writing replay sidecar:", err)
			}
		}
	}
}

// subSidecar is the submission.json schema: the experiment's identity
// half of the replay tuple, durable before the first journal record.
type subSidecar struct {
	ID         string     `json:"id"`
	Submission Submission `json:"submission"`
}

// writeSidecar marshals v to path.
func writeSidecar(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
