// Package serve is the multi-tenant tuning-as-a-service control plane:
// a long-running HTTP/JSON API (submit experiments, query live status,
// stream stage/grant events, fetch replay tuples) in front of a
// cross-experiment arbiter that admits tenants, enforces per-tenant
// quotas and bounded submission queues, and reallocates one shared
// simulated cluster across experiments at stage boundaries by marginal
// deadline slack (HyperSched-style: steal from slack-rich jobs, feed
// deadline-critical ones).
//
// The determinism boundary is explicit. The HTTP layer lives in wall
// time — request arrival order, goroutine interleaving, and therefore
// the arbiter's grant sequence are not reproducible run to run. But
// every admitted experiment runs on its own seeded virtual clock, and
// the only nondeterministic input it ever consumes is that grant
// sequence, injected at stage boundaries through the harness grant gate
// and recorded — in the experiment's journal (Grant records) and in its
// replay tuple. A completed experiment's (seed, spec, grants) tuple
// therefore replays offline to a bit-identical digest: VerifyReplay (and
// `rbfuzz -serve-replay`) re-runs the scenario with the recorded grants
// scripted and compares digests. Everything below the gate stays
// rbvet-taint-clean; the package's only wall-clock read is the annotated
// ops-surface helper in wall.go.
package serve

import (
	"fmt"
	"strconv"

	"repro/internal/cloud"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// Submission is the JSON body of POST /v1/experiments: a complete,
// self-contained experiment description. BuildScenario maps it to a
// harness scenario as a pure function — the submission plus the recorded
// grant sequence is the experiment's full replay tuple.
type Submission struct {
	// Tenant is the submitting tenant (journal.ValidName alphabet).
	Tenant string `json:"tenant"`
	// Name optionally labels the experiment for humans.
	Name string `json:"name,omitempty"`
	// Model names a zoo workload (resnet50, vgg16, resnet101, bert, …).
	Model string `json:"model"`
	// Stages is the successive-halving structure: [trials, iters] pairs
	// with non-increasing trial counts.
	Stages [][2]int `json:"stages"`
	// Seed drives every random stream of the experiment.
	Seed uint64 `json:"seed"`
	// MaxGPUs caps the experiment's peak cluster request.
	MaxGPUs int `json:"max_gpus"`
	// DeadlineFactor scales the analytic static-cluster JCT at MaxGPUs
	// into the job deadline (values near 1 are tight).
	DeadlineFactor float64 `json:"deadline_factor"`
	// Samples is the simulator's Monte-Carlo sample count (default 4).
	Samples int `json:"samples,omitempty"`
	// Estimator selects the estimator mode: "segment" (default), "full"
	// or "analytic".
	Estimator string `json:"estimator,omitempty"`
	// Instance names the cloud catalog worker type (default p3.2xlarge).
	Instance string `json:"instance,omitempty"`
}

// submission limits: bounds on accepted experiment shapes so one tenant
// cannot submit an experiment that monopolizes the service.
const (
	maxStages        = 8
	maxTrials        = 64
	maxIters         = 50
	maxSamples       = 64
	maxDeadlineScale = 100.0
)

// Validate checks the submission's structural limits. The tenant name
// shares the journal's directory-name alphabet so any valid submission
// can be journaled per tenant.
func (s *Submission) Validate() error {
	if !validName(s.Tenant) {
		return fmt.Errorf("invalid tenant %q: want 1-64 chars of [a-z0-9-]", s.Tenant)
	}
	if _, err := zooModel(s.Model); err != nil {
		return err
	}
	if len(s.Stages) == 0 || len(s.Stages) > maxStages {
		return fmt.Errorf("%d stages, want 1-%d", len(s.Stages), maxStages)
	}
	prev := maxTrials
	for i, st := range s.Stages {
		trials, iters := st[0], st[1]
		if trials < 1 || trials > prev {
			return fmt.Errorf("stage %d: %d trials, want 1-%d non-increasing", i, trials, prev)
		}
		if iters < 1 || iters > maxIters {
			return fmt.Errorf("stage %d: %d iters, want 1-%d", i, iters, maxIters)
		}
		prev = trials
	}
	if s.MaxGPUs < 1 {
		return fmt.Errorf("max_gpus %d, want >= 1", s.MaxGPUs)
	}
	if !(s.DeadlineFactor > 0 && s.DeadlineFactor <= maxDeadlineScale) {
		return fmt.Errorf("deadline_factor %v, want (0, %v]", s.DeadlineFactor, maxDeadlineScale)
	}
	if s.Samples < 0 || s.Samples > maxSamples {
		return fmt.Errorf("samples %d, want 0-%d", s.Samples, maxSamples)
	}
	if _, err := estimatorMode(s.Estimator); err != nil {
		return err
	}
	if _, err := cloud.DefaultCatalog().Lookup(instanceName(s.Instance)); err != nil {
		return fmt.Errorf("instance %q: %w", s.Instance, err)
	}
	return nil
}

// validName is the tenant/run directory alphabet, shared with the
// journal's per-tenant layout.
func validName(s string) bool { return journal.ValidName(s) }

// zooModel resolves a zoo workload by name.
func zooModel(name string) (*model.Model, error) {
	for _, m := range model.Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("unknown model %q", name)
}

// estimatorMode parses the estimator field ("" defaults to segment).
func estimatorMode(s string) (sim.EstimatorMode, error) {
	switch s {
	case "", "segment":
		return sim.EstimatorSegment, nil
	case "full":
		return sim.EstimatorFull, nil
	case "analytic":
		return sim.EstimatorAnalytic, nil
	default:
		return 0, fmt.Errorf("unknown estimator %q (want segment, full or analytic)", s)
	}
}

// instanceName applies the worker-type default.
func instanceName(s string) string {
	if s == "" {
		return "p3.2xlarge"
	}
	return s
}

// BuildScenario maps a validated submission to its harness scenario: a
// pure function, drawing no randomness, so the same submission always
// yields the same scenario. The cloud substrate is deterministic
// on-demand per-instance billing with zero queue delay — the service's
// nondeterminism budget is spent entirely on the arbiter's grants.
func BuildScenario(sub Submission) (harness.Scenario, error) {
	if err := sub.Validate(); err != nil {
		return harness.Scenario{}, fmt.Errorf("serve: submission: %w", err)
	}
	stages := make([]spec.Stage, len(sub.Stages))
	for i, st := range sub.Stages {
		stages[i] = spec.Stage{Trials: st[0], Iters: st[1]}
	}
	sp, err := spec.New(stages...)
	if err != nil {
		return harness.Scenario{}, fmt.Errorf("serve: spec: %w", err)
	}
	m, err := zooModel(sub.Model)
	if err != nil {
		return harness.Scenario{}, err
	}
	it, err := cloud.DefaultCatalog().Lookup(instanceName(sub.Instance))
	if err != nil {
		return harness.Scenario{}, err
	}
	est, err := estimatorMode(sub.Estimator)
	if err != nil {
		return harness.Scenario{}, err
	}
	space := searchspace.DefaultVisionSpace()
	if m.Name == "bert" {
		space = searchspace.DefaultNLPSpace()
	}
	samples := sub.Samples
	if samples == 0 {
		samples = 4
	}
	return harness.Scenario{
		BatchSeed: sub.Seed,
		Index:     0,
		Spec:      sp,
		Model:     m,
		Space:     space,
		Profile: sim.CloudProfile{
			Instance: it,
			Pricing:  cloud.Pricing{Billing: cloud.PerInstance, Market: cloud.OnDemand},
			Overheads: cloud.Overheads{
				QueueDelay:  stats.Deterministic{Value: 0},
				InitLatency: stats.Deterministic{Value: 5},
			},
		},
		RestoreSeconds: 2,
		MaxGPUs:        sub.MaxGPUs,
		Samples:        samples,
		DeadlineFactor: sub.DeadlineFactor,
		Estimator:      est,
	}, nil
}

// ReplayTuple is the server-reported (seed, spec, decisions) record of a
// completed experiment: everything needed to re-derive its digest
// offline, away from the live arbiter and the wall clock.
type ReplayTuple struct {
	ID         string                  `json:"id"`
	Submission Submission              `json:"submission"`
	Grants     []harness.GrantDecision `json:"grants"`
	Digest     string                  `json:"digest"`
	JCT        float64                 `json:"jct"`
	Cost       float64                 `json:"cost"`
}

// ScriptedGrants is a gate that re-issues a recorded grant sequence in
// order. Requests past the script's end are granted in full (a correct
// replay never reaches them: the script covers every stage).
func ScriptedGrants(grants []harness.GrantDecision) harness.GrantFn {
	i := 0
	return func(req harness.GrantRequest) int {
		if i < len(grants) {
			g := grants[i].Granted
			i++
			return g
		}
		return req.Want
	}
}

// VerifyReplay re-runs a replay tuple offline — the recorded grants
// scripted into a fresh gated run — and checks the digest matches the
// server-reported one bit for bit. It returns the recomputed digest.
func VerifyReplay(t ReplayTuple) (harness.Digest, error) {
	sc, err := BuildScenario(t.Submission)
	if err != nil {
		return 0, err
	}
	a, err := harness.RunScenarioArbitrated(sc, ScriptedGrants(t.Grants))
	if err != nil {
		return 0, fmt.Errorf("serve: replay run: %w", err)
	}
	if got, want := len(a.Grants), len(t.Grants); got != want {
		return 0, fmt.Errorf("serve: replay consumed %d grants, tuple records %d", got, want)
	}
	d := harness.ComputeDigest(a)
	want, err := strconv.ParseUint(t.Digest, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: tuple digest %q: %w", t.Digest, err)
	}
	if uint64(d) != want {
		return 0, fmt.Errorf("serve: replay digest %016x != recorded digest %s", uint64(d), t.Digest)
	}
	return d, nil
}

// DigestString renders a digest the way replay tuples store it.
func DigestString(d harness.Digest) string { return fmt.Sprintf("%016x", uint64(d)) }
