package serve

import (
	"fmt"

	"repro/internal/harness"
)

// FleetJob is one experiment in a deterministic in-process fleet run.
type FleetJob struct {
	ID       string
	Tenant   string
	Scenario harness.Scenario
}

// FleetJobResult is one fleet job's outcome.
type FleetJobResult struct {
	ID          string
	Artifacts   *harness.Artifacts
	Digest      harness.Digest
	DeadlineMet bool
	Err         error
}

// FleetResult bundles a fleet run's outcomes and the arbiter log.
type FleetResult struct {
	Jobs []FleetJobResult
	Log  []harness.FleetEvent
}

// Met counts jobs that finished within their deadline.
func (r *FleetResult) Met() int {
	n := 0
	for _, j := range r.Jobs {
		if j.DeadlineMet {
			n++
		}
	}
	return n
}

// RunFleet executes jobs against one shared arbiter without HTTP or
// goroutines: admission is FIFO as capacity frees, and execution
// interleaves the live runs by always stepping the one with the smallest
// (virtual time, submission index) — a deterministic schedule, so the
// differential tests (slack vs FIFO policy on identical fleets) compare
// exactly one changed variable. Every stage boundary arbitrates through
// Arbiter.Exchange with the harness-computed deadline slack, exactly as
// the live server's drivers do.
func RunFleet(capacity int, policy Policy, jobs []FleetJob) (*FleetResult, error) {
	arb, err := NewArbiter(capacity, policy)
	if err != nil {
		return nil, err
	}
	res := &FleetResult{Jobs: make([]FleetJobResult, len(jobs))}
	for i := range jobs {
		res.Jobs[i].ID = jobs[i].ID
		arb.Note("submit", jobs[i].ID, jobs[i].Tenant)
	}

	type liveRun struct {
		idx int
		run *harness.Running
	}
	var live []*liveRun
	next := 0 // next job to admit (FIFO)

	admit := func() error {
		for next < len(jobs) && arb.Free() >= 1 {
			j := jobs[next]
			idx := next
			next++
			if err := arb.Admit(j.ID, j.Tenant); err != nil {
				return err
			}
			gate := func(req harness.GrantRequest) int {
				slack := req.Deadline - req.Now - req.PredictedRemaining
				g, gerr := arb.Exchange(j.ID, req.Stage, req.Want, slack)
				if gerr != nil {
					return req.Want
				}
				return g
			}
			run, err := harness.StartScenario(j.Scenario, harness.RunConfig{Gate: gate})
			if err != nil {
				res.Jobs[idx].Err = fmt.Errorf("start %s: %w", j.ID, err)
				arb.Done(j.ID)
				continue
			}
			live = append(live, &liveRun{idx: idx, run: run})
		}
		return nil
	}

	finish := func(li int) error {
		lr := live[li]
		live = append(live[:li], live[li+1:]...)
		a, err := lr.run.Finish()
		jr := &res.Jobs[lr.idx]
		if err != nil {
			jr.Err = err
		} else {
			jr.Artifacts = a
			jr.Digest = harness.ComputeDigest(a)
			jr.DeadlineMet = a.Result.JCT <= a.Deadline
		}
		arb.Done(jobs[lr.idx].ID)
		return admit()
	}

	if err := admit(); err != nil {
		return nil, err
	}
	for len(live) > 0 {
		// Pick the live run with the smallest virtual clock, ties broken
		// by submission index.
		pick := 0
		for i := 1; i < len(live); i++ {
			if live[i].run.Now() < live[pick].run.Now() ||
				(live[i].run.Now() == live[pick].run.Now() && live[i].idx < live[pick].idx) {
				pick = i
			}
		}
		lr := live[pick]
		if lr.run.Done() {
			if err := finish(pick); err != nil {
				return nil, err
			}
			continue
		}
		if err := lr.run.Step(); err != nil {
			res.Jobs[lr.idx].Err = err
			live = append(live[:pick], live[pick+1:]...)
			arb.Done(jobs[lr.idx].ID)
			if err := admit(); err != nil {
				return nil, err
			}
			continue
		}
		if lr.run.Done() {
			if err := finish(pick); err != nil {
				return nil, err
			}
		}
	}
	res.Log = arb.Log()
	return res, nil
}
