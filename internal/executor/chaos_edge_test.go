package executor

// Edge-case tests distilled from the chaos harness (internal/harness):
// preemptions racing the synchronization barrier, preemption in the final
// stage's last iteration, repeated preemption of a trial that is still
// recovering, and the scatter-placement regression the harness's
// usage-metering oracle caught (see TestScatterPreservesRunningGangs).

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trial"
	"repro/internal/vclock"
)

// newHarnessOn is newHarness with a chosen worker instance type.
func newHarnessOn(t *testing.T, instName string, seed uint64) *harness {
	t.Helper()
	clock := vclock.New()
	pricing := cloud.DefaultPricing()
	pricing.MinChargeSeconds = 0
	ov := cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 0},
		InitLatency: stats.Deterministic{Value: 0},
	}
	provider, err := cloud.NewProvider(clock, stats.NewRNG(seed), pricing, ov, 0)
	if err != nil {
		t.Fatal(err)
	}
	it, err := cloud.DefaultCatalog().Lookup(instName)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := cluster.NewManager(provider, it, clock)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{clock: clock, provider: provider, cluster: mgr}
}

// preemptGangNode reclaims one node of the trial's current gang.
func preemptGangNode(t *testing.T, h *harness, job *Job, id trial.ID) {
	t.Helper()
	asg := job.r.plan[placement.TrialID(id)]
	if len(asg) == 0 {
		t.Fatalf("trial %d has no assignment", id)
	}
	best := cluster.NodeID(-1)
	for nid := range asg {
		if best < 0 || nid < best {
			//rbvet:ignore maporder — strict minimum by NodeID, a total order independent of iteration order
			best = nid
		}
	}
	node := job.r.nodeByID[best]
	if node == nil {
		t.Fatalf("node %d missing from executor view", best)
	}
	if !h.provider.Preempt(node.Instance) {
		t.Fatalf("node %d (instance %d) was not preemptible", best, node.Instance.ID)
	}
}

// checkLedgerCapacity asserts no instance metered more GPU-seconds than
// its GPU count times its billed lifetime — the harness's usage-metering
// oracle, inlined.
func checkLedgerCapacity(t *testing.T, h *harness, end vclock.Time) {
	t.Helper()
	for _, in := range h.provider.Instances() {
		if !in.Billing() {
			continue
		}
		if capacity := float64(in.Type.GPUs) * in.BilledLifetime(end); in.GPUSecondsUsed > capacity+1e-6 {
			t.Errorf("instance %d metered %v GPU-seconds, capacity x lifetime is %v",
				in.ID, in.GPUSecondsUsed, capacity)
		}
	}
}

func TestScatterPreservesRunningGangs(t *testing.T) {
	// Regression: chaos scenario seed=2 index=52 (and three others, all
	// scatter-mode) tripped the usage-metering oracle. On a queue
	// hand-off, scatter recomputed the whole plan from scratch and
	// "moved" running gangs to other nodes; the in-flight iteration kept
	// metering the old GPUs while the freed-looking ones were handed to
	// the next trial — double-booking hardware. A re-place must keep
	// live gangs pinned.
	nodes := []*cluster.Node{{ID: 0, GPUs: 1}, {ID: 1, GPUs: 1}}
	prev := placement.Plan{1: placement.Assignment{1: 1}}
	got := scatter(map[placement.TrialID]int{1: 1, 2: 1}, nodes, prev)
	if got == nil {
		t.Fatal("scatter failed")
	}
	if got[1][1] != 1 {
		t.Fatalf("running trial 1 moved off node 1: %v", got[1])
	}
	if got[2][0] != 1 {
		t.Fatalf("new trial 2 not placed on the freed node 0: %v", got[2])
	}

	// A gang whose node vanished (preemption) must be re-placed.
	gone := placement.Plan{1: placement.Assignment{9: 1}}
	got = scatter(map[placement.TrialID]int{1: 1}, nodes, gone)
	if got == nil || got[1][9] != 0 || got[1].GPUs() != 1 {
		t.Fatalf("vanished-node gang not re-placed: %v", got)
	}
}

func TestScatterHandoffKeepsLedgerWithinCapacity(t *testing.T) {
	// End-to-end shape of the same regression: noisy iteration latencies
	// stagger trial finishes, so queue hand-offs happen while other
	// trials are mid-iteration. Every hand-off re-places; the billing
	// ledger must never exceed physical capacity.
	h := newHarnessOn(t, "p3.2xlarge", 77)
	s := spec.Empty().AddStage(6, 3)
	m := quietModel()
	m.IterNoiseStd = 0.6
	cfg := runConfig(t, h, s, sim.NewPlan(2), m, 77)
	cfg.DisablePlacement = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerCapacity(t, h, vclock.Time(res.JCT))
}

func TestPreemptionRacingSyncBarrier(t *testing.T) {
	// Two trials finish their stage at the same virtual instant. Stop
	// the clock right after the first reaches the barrier and preempt
	// the second's node: its pending completion event is stale and must
	// be discarded, the finished trial keeps its results, and the stage
	// replays only for the victim.
	h := newHarnessOn(t, "p3.2xlarge", 60)
	s := spec.Empty().AddStage(2, 2).AddStage(1, 2)
	m := quietModel()
	m.IterNoiseStd = 0
	cfg := runConfig(t, h, s, sim.NewPlan(2, 1), m, 60)
	cfg.RestoreSeconds = 3
	job, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !h.clock.RunUntil(func() bool { return job.r.soa.doneCount == 1 }) {
		t.Fatal("no trial reached the barrier")
	}
	var victim trial.ID = -1
	for _, tr := range job.r.trials {
		if !job.r.soa.done[tr.ID()] && tr.State() == trial.Running {
			victim = tr.ID()
		}
	}
	if victim < 0 {
		t.Fatal("no running trial left to preempt")
	}
	preemptGangNode(t, h, job, victim)

	if !h.clock.RunUntil(job.Done) {
		t.Fatal("job did not complete")
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", res.Preemptions)
	}
	var completed, terminated int
	for _, tr := range res.Trials {
		switch tr.State() {
		case trial.Completed:
			completed++
			if tr.CumIters() != 4 {
				t.Fatalf("winner trained %d iterations, want 4", tr.CumIters())
			}
		case trial.Terminated:
			terminated++
			if tr.CumIters() != 2 {
				t.Fatalf("loser trained %d iterations, want its full stage-0 budget 2", tr.CumIters())
			}
		default:
			t.Fatalf("trial %d left in state %v", tr.ID(), tr.State())
		}
	}
	if completed != 1 || terminated != 1 {
		t.Fatalf("completed=%d terminated=%d, want 1/1", completed, terminated)
	}
	checkLedgerCapacity(t, h, vclock.Time(res.JCT))
}

func TestPreemptionDuringFinalStageLastIteration(t *testing.T) {
	// The stage-1 survivor loses its node one iteration before the
	// finish line: it must roll back to the stage-1 checkpoint, replay
	// the whole stage on the replacement node, and still complete.
	h := newHarnessOn(t, "p3.2xlarge", 61)
	s := spec.Empty().AddStage(2, 2).AddStage(1, 3)
	m := quietModel()
	m.IterNoiseStd = 0
	cfg := runConfig(t, h, s, sim.NewPlan(2, 1), m, 61)
	cfg.RestoreSeconds = 2
	job, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	survivorAt := func(cum int) (trial.ID, bool) {
		if job.r.stage != 1 {
			return -1, false
		}
		for _, id := range job.r.stageSet {
			if job.r.trials[int(id)].CumIters() == cum {
				return id, true
			}
		}
		return -1, false
	}
	if !h.clock.RunUntil(func() bool { _, ok := survivorAt(4); return ok }) {
		t.Fatal("survivor never reached its penultimate iteration")
	}
	id, _ := survivorAt(4)
	preemptGangNode(t, h, job, id)

	if !h.clock.RunUntil(job.Done) {
		t.Fatal("job did not complete")
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", res.Preemptions)
	}
	winner := res.Trials[int(id)]
	if winner.State() != trial.Completed {
		t.Fatalf("survivor ended %v, want completed", winner.State())
	}
	if winner.CumIters() != 5 {
		t.Fatalf("survivor trained %d iterations, want 5 (stage replayed)", winner.CumIters())
	}
	checkLedgerCapacity(t, h, vclock.Time(res.JCT))
}

func TestRepeatedPreemptionOfRecoveringTrial(t *testing.T) {
	// The same trial is preempted twice: once mid-stage, then again
	// right after it restarts on the replacement node. Each recovery
	// rolls back to the stage checkpoint; the run must still converge.
	h := newHarnessOn(t, "p3.2xlarge", 62)
	s := spec.Empty().AddStage(1, 2)
	m := quietModel()
	m.IterNoiseStd = 0
	cfg := runConfig(t, h, s, sim.NewPlan(1), m, 62)
	cfg.RestoreSeconds = 1
	job, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := func() *trial.Trial { return job.r.trials[0] }
	for round := 0; round < 2; round++ {
		if !h.clock.RunUntil(func() bool {
			return tr().State() == trial.Running && tr().CumIters() == 1
		}) {
			t.Fatalf("round %d: trial never reached mid-stage", round)
		}
		preemptGangNode(t, h, job, 0)
		if tr().State() == trial.Running {
			t.Fatalf("round %d: trial still running after losing its node", round)
		}
	}
	if !h.clock.RunUntil(job.Done) {
		t.Fatal("job did not complete")
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 2 {
		t.Fatalf("preemptions = %d, want 2", res.Preemptions)
	}
	if tr().State() != trial.Completed || tr().CumIters() != 2 {
		t.Fatalf("trial ended %v with %d iterations, want completed/2", tr().State(), tr().CumIters())
	}
	checkLedgerCapacity(t, h, vclock.Time(res.JCT))
}
