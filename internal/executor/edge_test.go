package executor

import (
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/trial"
)

func TestSingleTrialJob(t *testing.T) {
	// Degenerate tournament: one trial, one stage.
	h := newHarness(t, cloud.PerInstance, 0, 0, 50)
	s := spec.Empty().AddStage(1, 5)
	m := quietModel()
	m.IterNoiseStd = 0
	res, err := Run(runConfig(t, h, s, sim.NewPlan(4), m, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTrial != 0 {
		t.Fatalf("winner = %d", res.BestTrial)
	}
	// 5 iterations at 4 co-located GPUs.
	want := 5 * m.IterLatencyMean(m.BaseBatch, 4, 1)
	if math.Abs(res.JCT-want) > 1e-9 {
		t.Fatalf("JCT = %v, want %v", res.JCT, want)
	}
}

func TestMultiNodeTrialGang(t *testing.T) {
	// One trial spanning two 4-GPU nodes: the executor must place an
	// 8-GPU gang and the realized latency must reflect the 2-node
	// spread.
	h := newHarness(t, cloud.PerInstance, 0, 0, 51)
	s := spec.Empty().AddStage(1, 4)
	m := quietModel()
	m.IterNoiseStd = 0
	res, err := Run(runConfig(t, h, s, sim.NewPlan(8), m, 51))
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * m.IterLatencyMean(m.BaseBatch, 8, 2)
	if math.Abs(res.JCT-want) > 1e-9 {
		t.Fatalf("JCT = %v, want %v (2-node spread)", res.JCT, want)
	}
}

func TestScatterWithQueueing(t *testing.T) {
	// Scatter mode combined with queued trials: 6 trials on 2 GPU slots.
	h := newHarness(t, cloud.PerInstance, 0, 0, 52)
	s := spec.Empty().AddStage(6, 2)
	m := quietModel()
	m.IterNoiseStd = 0
	cfg := runConfig(t, h, s, sim.NewPlan(2), m, 52)
	cfg.DisablePlacement = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 waves of 2 iterations each at 1 GPU.
	want := 3 * 2 * m.IterLatencyMean(m.BaseBatch, 1, 1)
	if math.Abs(res.JCT-want) > 1e-9 {
		t.Fatalf("JCT = %v, want %v", res.JCT, want)
	}
}

func TestAllocLargerThanTrialsTimesNode(t *testing.T) {
	// A plan granting more GPUs than trials*nodeGPUs forces multi-node
	// gangs throughout; the run must still complete with a consistent
	// schedule.
	h := newHarness(t, cloud.PerInstance, 0, 0, 53)
	s := spec.Empty().AddStage(2, 3).AddStage(1, 3)
	res, err := Run(runConfig(t, h, s, sim.NewPlan(16, 8), quietModel(), 53))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule[0].GPUsPerTrial != 8 || res.Schedule[1].GPUsPerTrial != 8 {
		t.Fatalf("schedule = %+v", res.Schedule)
	}
}

func TestStageCostsSumToTotal(t *testing.T) {
	h := newHarness(t, cloud.PerInstance, 2, 10, 54)
	s := spec.MustSHA(8, 2, 16, 2)
	res, err := Run(runConfig(t, h, s, sim.NewPlan(8, 8, 4, 4), quietModel(), 54))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, row := range res.Schedule {
		if row.Cost < 0 {
			t.Fatalf("negative stage cost: %+v", row)
		}
		sum += row.Cost
	}
	if math.Abs(sum-res.Cost) > 1e-9 {
		t.Fatalf("stage costs %v != total %v", sum, res.Cost)
	}
}

func TestUtilizationOrdering(t *testing.T) {
	// A placement-aware run wastes less than a scattered one, so its
	// utilization (busy/provisioned GPU time) must be at least as high.
	s := spec.Empty().AddStage(4, 8)
	util := func(scatter bool) float64 {
		h := newHarness(t, cloud.PerInstance, 0, 0, 55)
		m := quietModel()
		m.IterNoiseStd = 0
		cfg := runConfig(t, h, s, sim.NewPlan(16), m, 55)
		cfg.DisablePlacement = scatter
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Utilization
	}
	placed, scattered := util(false), util(true)
	// Both runs keep GPUs busy the whole stage; but the scattered run's
	// "busy" time is less productive, not less busy — utilization is
	// equal here. The meaningful check: both are in (0, 1].
	for _, u := range []float64{placed, scattered} {
		if u <= 0 || u > 1 {
			t.Fatalf("utilization %v out of range", u)
		}
	}
}

func TestTraceRestoreEventsAtMigrations(t *testing.T) {
	h := newHarness(t, cloud.PerInstance, 0, 0, 56)
	s := spec.MustSHA(4, 2, 8, 2) // 3 stages: 4 -> 2 -> 1 trials
	rec := trace.New()
	cfg := runConfig(t, h, s, sim.Uniform(4, s.NumStages()), quietModel(), 56)
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// Stage 1's two survivors restore, then stage 2's single survivor:
	// three migrations in total.
	if got := rec.Count(trace.KindRestore); got != 3 {
		t.Fatalf("restores = %d, want 3", got)
	}
	// Barrier checkpoints: 2 after stage 0, 1 after stage 1.
	if got := rec.Count(trace.KindCheckpoint); got != 3 {
		t.Fatalf("barrier checkpoints = %d, want 3", got)
	}
}

func TestRankingBreaksTiesDeterministically(t *testing.T) {
	// With zero metric noise and identical configs, ties at the barrier
	// break by trial ID — the run must be reproducible.
	h := newHarness(t, cloud.PerInstance, 0, 0, 57)
	s := spec.Empty().AddStage(4, 2).AddStage(1, 2)
	m := quietModel()
	m.IterNoiseStd = 0
	m.Curve.NoiseStd = 0
	cfg := runConfig(t, h, s, sim.NewPlan(4, 4), m, 57)
	// Force identical configs.
	for i := range cfg.Configs {
		cfg.Configs[i] = cfg.Configs[0]
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTrial != 0 {
		t.Fatalf("tie broken to trial %d, want 0", res.BestTrial)
	}
	for _, tr := range res.Trials[1:] {
		if tr.State() != trial.Terminated {
			t.Fatalf("trial %d state %v", tr.ID(), tr.State())
		}
	}
}

func TestPerFunctionUsageExact(t *testing.T) {
	// Deterministic per-function bill: trials x iters x latency x GPUs.
	h := newHarness(t, cloud.PerFunction, 0, 0, 58)
	s := spec.Empty().AddStage(2, 5)
	m := quietModel()
	m.IterNoiseStd = 0
	res, err := Run(runConfig(t, h, s, sim.NewPlan(4), m, 58))
	if err != nil {
		t.Fatal(err)
	}
	it, _ := cloud.DefaultCatalog().Lookup("p3.8xlarge")
	perIter := m.IterLatencyMean(m.BaseBatch, 2, 1)
	want := 2 * 5 * perIter * 2 * it.PricePerGPUSecond(cloud.OnDemand)
	if math.Abs(res.Cost-want) > 1e-9 {
		t.Fatalf("per-function cost %v, want %v", res.Cost, want)
	}
}

func TestModelScalingAffectsJCTNotStructure(t *testing.T) {
	// Swapping the model changes latencies but never the tournament
	// structure.
	for _, m := range []*model.Model{model.ResNet101(), model.BERT()} {
		mm := *m
		mm.IterNoiseStd = 0
		mm.Curve.NoiseStd = 0.001
		h := newHarness(t, cloud.PerInstance, 0, 0, 59)
		s := spec.MustSHA(4, 1, 4, 2)
		res, err := Run(runConfig(t, h, s, sim.Uniform(4, s.NumStages()), &mm, 59))
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(res.Schedule) != s.NumStages() {
			t.Fatalf("%s: schedule rows %d", m.Name, len(res.Schedule))
		}
	}
}
