package executor

import (
	"repro/internal/placement"
	"repro/internal/trial"
)

// trialSoA holds the scheduler's per-trial state as dense parallel
// arrays indexed by trial ID — struct-of-arrays instead of the former
// map-per-field layout. At fleet scale (ROADMAP item 3: 10^6 concurrent
// trials) the maps dominated both memory and cache misses in the event
// hot loop; the arrays are allocated once at Start and never grow, so
// every per-event touch is an index into a contiguous block.
type trialSoA struct {
	// gen invalidates in-flight iteration events when a trial restarts
	// after a preemption: events carry the generation they were scheduled
	// under and return early on mismatch.
	gen []uint32
	// alloc is the trial's GPU allocation in the current stage, -1 when
	// it holds no slot (queued, finished, or between stages).
	alloc []int32
	// left is the trial's remaining iteration budget in the current
	// stage, maintained by the opcode dispatch loop.
	left []int32
	// done marks trials that finished their stage budget and are idling
	// at the barrier (their work survives preemption).
	done []bool
	// slots counts trials with alloc >= 0; doneCount counts done trials.
	slots     int
	doneCount int
}

func (s *trialSoA) init(n int) {
	s.gen = make([]uint32, n)
	s.alloc = make([]int32, n)
	s.left = make([]int32, n)
	s.done = make([]bool, n)
	for i := range s.alloc {
		s.alloc[i] = -1
	}
}

// resetStage clears the per-stage columns (allocations and barrier
// marks); generations persist for the whole run.
func (s *trialSoA) resetStage() {
	for i := range s.alloc {
		s.alloc[i] = -1
		s.done[i] = false
		s.left[i] = 0
	}
	s.slots, s.doneCount = 0, 0
}

func (s *trialSoA) setAlloc(id trial.ID, gpus int) {
	if s.alloc[id] < 0 {
		s.slots++
	}
	s.alloc[id] = int32(gpus)
}

func (s *trialSoA) clearAlloc(id trial.ID) {
	if s.alloc[id] >= 0 {
		s.slots--
	}
	s.alloc[id] = -1
}

// allocOf returns the trial's current allocation (0 when it has none,
// matching the old map's zero-value read).
func (s *trialSoA) allocOf(id trial.ID) int {
	if s.alloc[id] < 0 {
		return 0
	}
	return int(s.alloc[id])
}

func (s *trialSoA) markDone(id trial.ID) {
	if !s.done[id] {
		s.doneCount++
	}
	s.done[id] = true
}

// fold hashes every column into an FNV-1a fingerprint. Journal
// snapshots capture it so crash recovery can verify the re-executed
// scheduler state — not just trial-visible state — matches the
// original run bit for bit.
func (s *trialSoA) fold() uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 0x100000001b3
			v >>= 8
		}
	}
	mix(uint64(s.slots))
	mix(uint64(s.doneCount))
	for i := range s.gen {
		mix(uint64(s.gen[i]))
		mix(uint64(uint32(s.alloc[i])))
		mix(uint64(uint32(s.left[i])))
		if s.done[i] {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}

// allocsMap materializes the active allocations as the map form the
// placement controller consumes. Placement runs only at stage starts,
// slot hand-offs, and preemption recoveries — cold paths — so the
// transient map costs nothing where it matters.
func (r *run) allocsMap() map[placement.TrialID]int {
	m := make(map[placement.TrialID]int, r.soa.slots)
	for id, g := range r.soa.alloc {
		if g >= 0 {
			m[placement.TrialID(id)] = int(g)
		}
	}
	return m
}
