package executor

import (
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/trial"
	"repro/internal/vclock"
)

// harness bundles the substrate for one run.
type harness struct {
	clock    *vclock.Clock
	provider *cloud.Provider
	cluster  *cluster.Manager
}

func newHarness(t *testing.T, billing cloud.BillingModel, queue, initLat float64, seed uint64) *harness {
	t.Helper()
	clock := vclock.New()
	pricing := cloud.DefaultPricing()
	pricing.Billing = billing
	pricing.MinChargeSeconds = 0
	ov := cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: queue},
		InitLatency: stats.Deterministic{Value: initLat},
	}
	provider, err := cloud.NewProvider(clock, stats.NewRNG(seed), pricing, ov, 0)
	if err != nil {
		t.Fatal(err)
	}
	it, err := cloud.DefaultCatalog().Lookup("p3.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := cluster.NewManager(provider, it, clock)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{clock: clock, provider: provider, cluster: mgr}
}

// quietModel returns a ResNet-101-style model with tame noise so tests are
// tight.
func quietModel() *model.Model {
	m := model.ResNet101()
	m.IterNoiseStd = 0.01
	m.Curve.NoiseStd = 0.001
	return m
}

func runConfig(t *testing.T, h *harness, s *spec.ExperimentSpec, plan sim.Plan, m *model.Model, seed uint64) Config {
	t.Helper()
	rng := stats.NewRNG(seed)
	space := searchspace.DefaultVisionSpace()
	return Config{
		Spec:     s,
		Plan:     plan,
		Model:    m,
		Batch:    m.BaseBatch,
		Configs:  space.SampleN(rng, s.TotalTrials()),
		Provider: h.provider,
		Cluster:  h.cluster,
		Clock:    h.clock,
		RNG:      rng,
	}
}

func TestValidation(t *testing.T) {
	h := newHarness(t, cloud.PerInstance, 0, 0, 1)
	s := spec.MustSHA(8, 1, 4, 2)
	m := quietModel()
	good := runConfig(t, h, s, sim.Uniform(8, s.NumStages()), m, 1)

	bad := good
	bad.Spec = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil spec accepted")
	}
	bad = good
	bad.Plan = sim.NewPlan(1)
	if _, err := Run(bad); err == nil {
		t.Error("short plan accepted")
	}
	bad = good
	bad.Configs = bad.Configs[:2]
	if _, err := Run(bad); err == nil {
		t.Error("too few configs accepted")
	}
	bad = good
	bad.Batch = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero batch accepted")
	}
	bad = good
	bad.RestoreSeconds = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative restore accepted")
	}
}

func TestEndToEndCompletes(t *testing.T) {
	h := newHarness(t, cloud.PerInstance, 2, 5, 2)
	s := spec.MustSHA(8, 2, 16, 2)
	m := quietModel()
	rec := trace.New()
	cfg := runConfig(t, h, s, sim.NewPlan(8, 8, 4, 4), m, 2)
	cfg.Trace = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT <= 0 || res.Cost <= 0 {
		t.Fatalf("JCT=%v cost=%v", res.JCT, res.Cost)
	}
	if res.BestTrial < 0 {
		t.Fatal("no winner")
	}
	if res.BestAccuracy <= 0 || res.BestAccuracy > 1 {
		t.Fatalf("best accuracy %v", res.BestAccuracy)
	}
	// Exactly one trial completed; the rest terminated.
	completed, terminated := 0, 0
	for _, tr := range res.Trials {
		switch tr.State() {
		case trial.Completed:
			completed++
		case trial.Terminated:
			terminated++
		default:
			t.Fatalf("trial %d left in state %v", tr.ID(), tr.State())
		}
	}
	if completed != 1 || terminated != 7 {
		t.Fatalf("completed=%d terminated=%d", completed, terminated)
	}
	// One stage row per stage with monotone times.
	if len(res.Schedule) != s.NumStages() {
		t.Fatalf("schedule rows = %d", len(res.Schedule))
	}
	for i, row := range res.Schedule {
		if row.End < row.Start {
			t.Fatalf("row %d: end before start", i)
		}
		if i > 0 && row.Start < res.Schedule[i-1].End {
			t.Fatalf("row %d overlaps previous", i)
		}
	}
	// Stage events recorded.
	if rec.Count(trace.KindStageStart) != s.NumStages() || rec.Count(trace.KindStageEnd) != s.NumStages() {
		t.Fatal("missing stage events")
	}
	// All cluster nodes released at the end.
	if h.cluster.Size() != 0 {
		t.Fatalf("%d nodes leaked", h.cluster.Size())
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

func TestSurvivorsTrainFullBudget(t *testing.T) {
	h := newHarness(t, cloud.PerInstance, 0, 0, 3)
	s := spec.MustSHA(8, 2, 16, 2)
	res, err := Run(runConfig(t, h, s, sim.Uniform(8, s.NumStages()), quietModel(), 3))
	if err != nil {
		t.Fatal(err)
	}
	winner := res.Trials[int(res.BestTrial)]
	if winner.CumIters() != s.MaxIters() {
		t.Fatalf("winner trained %d iters, want %d", winner.CumIters(), s.MaxIters())
	}
	// Terminated trials trained exactly the budget of the stages they
	// survived.
	for _, tr := range res.Trials {
		if tr.State() != trial.Terminated {
			continue
		}
		legal := false
		cum := 0
		for i := 0; i < s.NumStages(); i++ {
			cum += s.Stage(i).Iters
			if tr.CumIters() == cum {
				legal = true
			}
		}
		if !legal {
			t.Fatalf("terminated trial %d trained %d iters (not a stage boundary)", tr.ID(), tr.CumIters())
		}
	}
}

func TestSHASelectsGoodConfig(t *testing.T) {
	// The winner should be near the best asymptote among the sampled
	// configs — SHA's whole point.
	h := newHarness(t, cloud.PerInstance, 0, 0, 4)
	s := spec.MustSHA(16, 2, 32, 2)
	m := quietModel()
	cfg := runConfig(t, h, s, sim.Uniform(16, s.NumStages()), m, 4)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bestAsym := 0.0
	for _, c := range cfg.Configs {
		if a := m.Asymptote(c); a > bestAsym {
			bestAsym = a
		}
	}
	if got := m.Asymptote(res.BestConfig); got < bestAsym-0.05 {
		t.Errorf("winner asymptote %v, best available %v", got, bestAsym)
	}
}

func TestQueueingWhenClusterSmall(t *testing.T) {
	// 8 trials on 2 GPUs: trials must queue, and JCT must reflect the
	// serialization (4 waves).
	h := newHarness(t, cloud.PerInstance, 0, 0, 5)
	s := spec.Empty().AddStage(8, 4)
	m := quietModel()
	m.IterNoiseStd = 0
	res, err := Run(runConfig(t, h, s, sim.NewPlan(2), m, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Each trial: 4 iters at 1 GPU = 4 * 36 s; 4 waves = 576 s.
	want := 4.0 * 4 * 36
	if math.Abs(res.JCT-want) > 1 {
		t.Fatalf("JCT = %v, want ~%v", res.JCT, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	runOnce := func() *Result {
		h := newHarness(t, cloud.PerInstance, 2, 10, 7)
		s := spec.MustSHA(8, 2, 8, 2)
		res, err := Run(runConfig(t, h, s, sim.NewPlan(8, 4, 4), quietModel(), 7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.JCT != b.JCT || a.Cost != b.Cost || a.BestTrial != b.BestTrial {
		t.Fatalf("nondeterministic: (%v,%v,%d) vs (%v,%v,%d)",
			a.JCT, a.Cost, a.BestTrial, b.JCT, b.Cost, b.BestTrial)
	}
}

func TestElasticCheaperThanStaticEndToEnd(t *testing.T) {
	// The headline claim, realized in execution rather than simulation:
	// a shrinking plan costs less than the static plan at modestly longer
	// JCT.
	s := spec.MustSHA(16, 2, 64, 2)

	run := func(plan sim.Plan) *Result {
		h := newHarness(t, cloud.PerInstance, 2, 10, 8)
		m := quietModel()
		res, err := Run(runConfig(t, h, s, plan, m, 8))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(sim.Uniform(16, s.NumStages()))
	elastic := run(sim.NewPlan(16, 16, 8, 4, 4))
	if len(elastic.Schedule) != s.NumStages() {
		t.Fatalf("stages = %d", len(elastic.Schedule))
	}
	if elastic.Cost >= static.Cost {
		t.Fatalf("elastic cost %v not below static %v", elastic.Cost, static.Cost)
	}
}

func TestPlacementAblationThroughput(t *testing.T) {
	// Table 1's mechanism: disabling placement scatters workers and
	// slows multi-GPU trials, raising JCT.
	s := spec.Empty().AddStage(4, 8)
	plan := sim.NewPlan(16) // 4 GPUs per trial on 4-GPU nodes

	run := func(disable bool) *Result {
		h := newHarness(t, cloud.PerInstance, 0, 0, 9)
		m := quietModel()
		m.IterNoiseStd = 0
		cfg := runConfig(t, h, s, plan, m, 9)
		cfg.DisablePlacement = disable
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	placed := run(false)
	scattered := run(true)
	if scattered.JCT <= placed.JCT*1.2 {
		t.Fatalf("scattering barely hurt: %v vs %v", scattered.JCT, placed.JCT)
	}
}

func TestRestoreLatencyCharged(t *testing.T) {
	s := spec.MustSHA(4, 2, 8, 2)
	run := func(restore float64) float64 {
		h := newHarness(t, cloud.PerInstance, 0, 0, 10)
		m := quietModel()
		m.IterNoiseStd = 0
		cfg := runConfig(t, h, s, sim.Uniform(4, s.NumStages()), m, 10)
		cfg.RestoreSeconds = restore
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.JCT
	}
	fast, slow := run(0), run(30)
	// Two migrations (stages 1 and 2) x 30 s each.
	if diff := slow - fast; math.Abs(diff-60) > 1 {
		t.Fatalf("restore latency contributed %v, want ~60", diff)
	}
}

func TestPerFunctionCheaperThanPerInstanceEndToEnd(t *testing.T) {
	s := spec.MustSHA(8, 2, 16, 2)
	m := model.ResNet101() // default straggler noise
	run := func(billing cloud.BillingModel) float64 {
		h := newHarness(t, billing, 0, 0, 11)
		res, err := Run(runConfig(t, h, s, sim.Uniform(8, s.NumStages()), m, 11))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}
	perInst := run(cloud.PerInstance)
	perFn := run(cloud.PerFunction)
	if perFn >= perInst {
		t.Fatalf("per-function %v not cheaper than per-instance %v", perFn, perInst)
	}
}

func TestScaleDownReleasesNodes(t *testing.T) {
	h := newHarness(t, cloud.PerInstance, 0, 0, 12)
	s := spec.Empty().AddStage(8, 2).AddStage(2, 4)
	m := quietModel()
	rec := trace.New()
	cfg := runConfig(t, h, s, sim.NewPlan(8, 2), m, 12)
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if rec.Count(trace.KindScaleDown) == 0 {
		t.Fatal("no scale-down recorded")
	}
	// Some instance must have been terminated before the job ended.
	terminatedEarly := false
	for _, in := range h.provider.Instances() {
		if in.State == cloud.Terminated && float64(in.TerminatedAt) < float64(h.clock.Now()) {
			terminatedEarly = true
		}
	}
	if !terminatedEarly {
		t.Fatal("no mid-job deprovisioning")
	}
}
