package executor

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/replan"
	"repro/internal/sim"
	"repro/internal/spec"
)

// TestStageGateClampsLivePlan: a gate's grants replace the planned
// allocations, clamped to [1, planned], and the executed plan reflects
// exactly the granted GPUs.
func TestStageGateClampsLivePlan(t *testing.T) {
	h := newHarness(t, cloud.PerInstance, 0, 0, 7)
	s := spec.MustSHA(8, 2, 4, 2)
	m := quietModel()
	cfg := runConfig(t, h, s, sim.Uniform(8, s.NumStages()), m, 7)

	var calls []int
	cfg.StageGate = func(stage, planned int) int {
		calls = append(calls, stage)
		switch stage {
		case 0:
			return 3 // squeeze below plan
		case 1:
			return 99 // above plan: must clamp to planned
		default:
			return -5 // nonsense: must clamp to 1
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != s.NumStages() {
		t.Fatalf("gate consulted %d times for %d stages", len(calls), s.NumStages())
	}
	for i, st := range calls {
		if st != i {
			t.Errorf("gate call %d was for stage %d", i, st)
		}
	}
	want := []int{3, 8}
	for i, w := range want {
		if got := res.FinalPlan.Alloc[i]; got != w {
			t.Errorf("stage %d executed %d GPUs, want %d", i, got, w)
		}
	}
	if res.JCT <= 0 {
		t.Fatalf("JCT = %v", res.JCT)
	}
}

// TestStageGateSingleGPUStillCompletes: a gate granting the 1-GPU
// minimum everywhere still finishes every trial via queued waves.
func TestStageGateSingleGPUStillCompletes(t *testing.T) {
	h := newHarness(t, cloud.PerInstance, 0, 0, 8)
	s := spec.MustSHA(6, 1, 3, 2)
	m := quietModel()
	cfg := runConfig(t, h, s, sim.Uniform(6, s.NumStages()), m, 8)
	cfg.StageGate = func(stage, planned int) int { return 1 }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.FinalPlan.Alloc {
		if res.FinalPlan.Alloc[i] != 1 {
			t.Errorf("stage %d executed %d GPUs, want 1", i, res.FinalPlan.Alloc[i])
		}
	}
	if res.BestTrial < 0 {
		t.Error("no winning trial")
	}
}

// TestStageGateExcludesReplan: the gate and the replan controller both
// rewrite the live plan; configuring both must be rejected.
func TestStageGateExcludesReplan(t *testing.T) {
	h := newHarness(t, cloud.PerInstance, 0, 0, 9)
	s := spec.MustSHA(4, 1, 2, 2)
	m := quietModel()
	cfg := runConfig(t, h, s, sim.Uniform(4, s.NumStages()), m, 9)
	cfg.StageGate = func(stage, planned int) int { return planned }
	cfg.Replan = &replan.Controller{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("StageGate + Replan accepted")
	}
}
